#!/usr/bin/env python3
"""Entry point for the semantic determinism analyzer.

Thin wrapper so CI and developers invoke one stable path:

    python3 scripts/run_analyzer.py                 # analyze src/
    python3 scripts/run_analyzer.py selftest        # fixture self-tests
    python3 scripts/run_analyzer.py --frontend=clang --build-dir=build run

All the logic lives in tools/analyze/ (see its README.md).
"""

import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "tools", "analyze"))

import driver  # noqa: E402

if __name__ == "__main__":
    sys.exit(driver.main())
