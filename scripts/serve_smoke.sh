#!/usr/bin/env bash
# Loopback smoke for the serving pipeline: start graphsig_serve on an
# ephemeral port, drive a short verified workload with graphsig_loadgen,
# then SIGTERM the server and require a clean drain. Used by the
# tool_serve_loadgen ctest and the CI server-smoke job.
#
#   serve_smoke.sh <graphsig_serve> <graphsig_loadgen> <model> <workload>
set -euo pipefail

SERVE_BIN=$1
LOADGEN_BIN=$2
MODEL=$3
WORKLOAD=$4

OUT=$(mktemp)
ERR=$(mktemp)
trap 'rm -f "$OUT" "$ERR"; [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT

"$SERVE_BIN" --model="$MODEL" --port=0 >"$OUT" 2>"$ERR" &
SERVE_PID=$!

for _ in $(seq 1 100); do
  grep -q "listening on" "$OUT" 2>/dev/null && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$ERR" >&2; exit 1; }
  sleep 0.1
done
PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\)$/\1/p' "$OUT")
[ -n "$PORT" ] || { echo "no port scraped from serve output" >&2; exit 1; }

"$LOADGEN_BIN" --port="$PORT" --input="$WORKLOAD" --qps=150 --duration=1 \
  --connections=2 --seed=7 --verify-model="$MODEL"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=
grep -q "drained:" "$ERR" || { echo "server did not drain" >&2; cat "$ERR" >&2; exit 1; }
