#!/usr/bin/env bash
# Loopback smoke for the serving pipeline: start graphsig_serve on an
# ephemeral port, drive a short verified workload with graphsig_loadgen,
# cross-check the server's Stats-RPC counters against the client-side
# tallies, then SIGTERM the server and require a clean drain. Used by
# the tool_serve_loadgen ctest and the CI server-smoke job.
#
#   serve_smoke.sh <graphsig_serve> <graphsig_loadgen> <model> <workload>
set -euo pipefail

SERVE_BIN=$1
LOADGEN_BIN=$2
MODEL=$3
WORKLOAD=$4

OUT=$(mktemp)
ERR=$(mktemp)
JSON=$(mktemp)
SERVE_PID=

# The trap must reap as well as kill: exiting mid-run with only a kill
# races the server's own drain (and on a recycled PID would signal an
# unrelated process); wait-ing pins the PID until we know it is gone.
cleanup() {
  if [ -n "$SERVE_PID" ]; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -f "$OUT" "$ERR" "$JSON"
}
trap cleanup EXIT

"$SERVE_BIN" --model="$MODEL" --port=0 >"$OUT" 2>"$ERR" &
SERVE_PID=$!

# Scrape the port inside the wait loop and fail loudly with the server's
# output if it never appears — a pattern drift in the "listening on"
# line must break the smoke, not silently hand sed an empty match.
PORT=
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\)$/\1/p' "$OUT")
  [ -n "$PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$ERR" >&2; exit 1; }
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "serve_smoke: failed to scrape port from serve output:" >&2
  cat "$OUT" "$ERR" >&2
  exit 1
fi

"$LOADGEN_BIN" --port="$PORT" --input="$WORKLOAD" --qps=150 --duration=1 \
  --connections=2 --seed=7 --verify-model="$MODEL" --json="$JSON"

# The server's Stats-RPC counters must agree exactly with what the
# client observed: every ok reply was a served request, every
# RETRY_LATER was counted as a sent retry, and the received frames are
# the queries plus the one Stats frame that took the snapshot.
python3 - "$JSON" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
totals, server = report["totals"], report["server"]
failures = []

def expect(name, got, want):
    if got != want:
        failures.append(f"{name}: server reports {got}, client saw {want}")

expect("requests_served", server["requests_served"], totals["ok"])
expect("retries_sent", server["retries_sent"], totals["retry_later"])
expect("frames_received", server["frames_received"],
       totals["ok"] + totals["retry_later"] + 1)
if not server["work_counters"]:
    failures.append("stats reply carries no work counters")
elif server["work_counters"].get("serve/queries") != totals["ok"]:
    failures.append(
        f"work counter serve/queries = "
        f"{server['work_counters'].get('serve/queries')}, "
        f"client saw {totals['ok']} ok replies")

for f in failures:
    print(f"serve_smoke: stats mismatch - {f}", file=sys.stderr)
sys.exit(1 if failures else 0)
EOF

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=
grep -q "drained:" "$ERR" || { echo "server did not drain" >&2; cat "$ERR" >&2; exit 1; }
