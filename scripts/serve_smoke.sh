#!/usr/bin/env bash
# Loopback smoke for the serving pipeline, run as a shard x mix matrix:
# for each shard count, start graphsig_serve on an ephemeral port with
# that --shards value (two event loops, so accept sharding is live),
# drive a short verified workload with graphsig_loadgen in both an
# exact-only and a mixed exact/approx shape, cross-check the server's
# Stats-RPC counters against the client-side tallies, then SIGTERM the
# server and require a clean drain. Used by the tool_serve_loadgen
# ctest and the CI server-smoke job.
#
#   serve_smoke.sh <graphsig_serve> <graphsig_loadgen> <model> <workload> \
#                  [shard counts, default "1 2"]
set -euo pipefail

SERVE_BIN=$1
LOADGEN_BIN=$2
MODEL=$3
WORKLOAD=$4
SHARD_COUNTS=${5:-"1 2"}

OUT=$(mktemp)
ERR=$(mktemp)
JSON=$(mktemp)
SERVE_PID=

# The trap must reap as well as kill: exiting mid-run with only a kill
# races the server's own drain (and on a recycled PID would signal an
# unrelated process); wait-ing pins the PID until we know it is gone.
cleanup() {
  if [ -n "$SERVE_PID" ]; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -f "$OUT" "$ERR" "$JSON"
}
trap cleanup EXIT

# One matrix cell: serve at $1 shards, load at mix fraction $2, verify
# replies against the model and the Stats counters against the tally.
run_case() {
  local shards=$1 mix=$2
  : >"$OUT"; : >"$ERR"

  "$SERVE_BIN" --model="$MODEL" --port=0 --shards="$shards" --threads=2 \
    --loops=2 >"$OUT" 2>"$ERR" &
  SERVE_PID=$!

  # Scrape the port inside the wait loop and fail loudly with the
  # server's output if it never appears — a pattern drift in the
  # "listening on" line must break the smoke, not silently hand sed an
  # empty match.
  local port=
  for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\)$/\1/p' "$OUT")
    [ -n "$port" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$ERR" >&2; exit 1; }
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "serve_smoke: failed to scrape port from serve output:" >&2
    cat "$OUT" "$ERR" >&2
    exit 1
  fi

  # --mix sends a deterministic slice of the schedule as approx
  # (sampled-support) queries; mix=0 keeps the run exact-only so both
  # workload shapes cross every shard topology.
  "$LOADGEN_BIN" --port="$port" --input="$WORKLOAD" --qps=150 --duration=1 \
    --connections=2 --seed=7 --mix="$mix" --approx-samples=32 \
    --verify-model="$MODEL" --json="$JSON"

  # The server's Stats-RPC counters must agree exactly with what the
  # client observed: every ok reply was a served request (split by class
  # into serve/queries and serve/approx_queries), every RETRY_LATER was
  # counted as a sent retry, the received frames are the requests plus
  # the one Stats frame that took the snapshot, and the reported shard
  # count is exactly what the server was launched with.
  python3 - "$JSON" "$shards" "$mix" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
shards, mix = int(sys.argv[2]), float(sys.argv[3])
totals, server = report["totals"], report["server"]
failures = []

def expect(name, got, want):
    if got != want:
        failures.append(f"{name}: server reports {got}, client saw {want}")

expect("requests_served", server["requests_served"], totals["ok"])
expect("retries_sent", server["retries_sent"], totals["retry_later"])
expect("frames_received", server["frames_received"],
       totals["ok"] + totals["retry_later"] + 1)
expect("shards", server.get("shards"), shards)
if mix > 0 and totals["ok_approx"] == 0:
    failures.append("mixed workload produced no ok approx replies")
if mix == 0 and totals["ok_approx"] != 0:
    failures.append("exact-only workload produced approx replies")
if not server["work_counters"]:
    failures.append("stats reply carries no work counters")
else:
    counters = server["work_counters"]
    expect("work counter serve/queries", counters.get("serve/queries"),
           totals["ok_exact"])
    if mix > 0:
        expect("work counter serve/approx_queries",
               counters.get("serve/approx_queries"), totals["ok_approx"])
        # Frame counters tick on receipt, so a RETRY_LATER'd approx frame
        # counts here without producing an ok reply; exact equality only
        # holds on a retry-free run.
        if totals["retry_later"] == 0:
            expect("work counter net/frames/approx_query",
                   counters.get("net/frames/approx_query"),
                   totals["ok_approx"])
        elif counters.get("net/frames/approx_query", 0) < totals["ok_approx"]:
            failures.append("net/frames/approx_query below ok approx replies")
        if counters.get("approx/samples_drawn", 0) <= 0:
            failures.append("approx queries drew no samples")

for f in failures:
    print(f"serve_smoke[shards={shards} mix={mix}]: stats mismatch - {f}",
          file=sys.stderr)
sys.exit(1 if failures else 0)
EOF

  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"
  SERVE_PID=
  grep -q "drained:" "$ERR" || {
    echo "server did not drain (shards=$shards mix=$mix)" >&2
    cat "$ERR" >&2
    exit 1
  }
}

for shards in $SHARD_COUNTS; do
  for mix in 0 0.3; do
    echo "serve_smoke: shards=$shards mix=$mix"
    run_case "$shards" "$mix"
  done
done
