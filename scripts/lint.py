#!/usr/bin/env python3
"""House lint for the GraphSig tree. No dependencies; CI runs it as a gate.

Rules (each can be waived on one line with a `lint:allow=<rule>` comment):

  raw-mutex     std::mutex / std::condition_variable (and the lock
                helpers that only work with them) anywhere outside
                src/util/sync.h. Everything must go through util::Mutex /
                util::CondVar so the Clang thread-safety analysis sees
                every lock in the program.

  seeded-rng    rand()/srand()/time() in src/. Library code must draw
                randomness from util::Rng with an explicit seed and take
                timestamps from callers; both are load-bearing for
                reproducible mining runs and the determinism tests.

  raw-printf    printf-family output in src/ (library code). Libraries
                report through util::Status or util/logging.h so output
                is capturable and flushed on GS_CHECK failure. Tools,
                benches, and tests may print freely. The log sink itself
                (src/util/logging.cc, src/util/check.cc) is allowlisted.

  todo-owner    TODO without an owner. Write TODO(name): so stale TODOs
                are attributable.

  raw-socket    socket/epoll syscalls (socket, connect, accept, send,
                recv, close, epoll_*, eventfd, ...) anywhere outside
                src/net/. All transport goes through the RAII + Status
                wrappers in src/net/socket.h so fd ownership, EINTR
                retries, and SIGPIPE suppression are written once.

  adhoc-atomic  std::atomic in src/ outside src/obs/ and src/util/.
                A bare atomic in library code is almost always a counter
                someone will want to read later — register it in
                obs::MetricsRegistry instead, where it is dumpable,
                resettable, and classified as deterministic-or-advisory.
                Genuine synchronization primitives belong in src/util/.

  raw-chrono    std::chrono in src/ outside src/obs/ and src/util/.
                Library code takes time from util::WallTimer or reports
                through obs trace spans; scattering clock reads breaks
                the "all wall time is advisory" fence the determinism
                contract relies on (DESIGN.md §12).

  fv-pointer-vector  std::vector<const FeatureVec*> anywhere outside
                src/features/feature_vector.h. The pointer-vector view of
                a feature population is retired: it scattered the hot
                dominance loops over the heap. Use
                features::PackedVectorSet (word-parallel kernels) or
                index spans over a contiguous std::vector<FeatureVec>.

  metric-name-literal  MetricsRegistry registration (GetCounter /
                GetAdvisoryCounter / GetGauge / GetHistogram / GetSpan)
                whose name argument is not a string literal, in src/
                outside src/obs/. The name is the metric's identity
                (DESIGN.md §12): a computed name forks the namespace at
                runtime, breaks the grep-able counter inventory, and
                desyncs the bench-regression baseline. The obs replay
                machinery (src/obs/work_capture.cc restoring captured
                names, the trace-span macro) is the sanctioned
                exception. The semantic analyzer's `metric-literal`
                checker proves the same property on the AST; this rule
                is its dependency-free line-level mirror.

  raw-std-random  <random> engines/distributions (std::mt19937,
                std::random_device, std::*_distribution, ...) anywhere
                outside src/util/. All randomness flows through
                util::Rng (src/util/rng.h): one engine, explicit seeds,
                and a stable draw sequence the cross-thread-determinism
                tests (and the approx tier's replayable estimates)
                depend on. std:: distributions are also not portable
                across standard-library implementations, so seeds would
                stop replaying the moment the toolchain changes.

Waiver hygiene: a `lint:allow=<rule>` comment is itself checked. A
waiver naming an unknown rule, or sitting on a line the named rule no
longer matches (the offending code was edited away, or the file is out
of the rule's scope), is reported as `stale-waiver` and fails the run —
waivers must never outlive the violation they document.

Directories named `fixtures/` are skipped: they hold deliberate
violations that drive the lint and analyzer self-tests.

Run with `--root <dir>` to lint a different tree (used by the
self-test, which lints small synthetic trees under /tmp).
"""

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ["src", "tools", "tests", "bench", "examples", "fuzz"]
SOURCE_SUFFIXES = {".h", ".cc"}

ALLOW = re.compile(r"lint:allow=([\w-]+)")

# (rule, regex, scope predicate, message)
RULES = [
    (
        "raw-mutex",
        re.compile(
            r"std::(mutex|condition_variable|shared_mutex|recursive_mutex"
            r"|lock_guard|scoped_lock|unique_lock)\b"
        ),
        lambda rel: rel != Path("src/util/sync.h"),
        "use util::Mutex/util::MutexLock/util::CondVar from src/util/sync.h "
        "(keeps the thread-safety analysis complete)",
    ),
    (
        "seeded-rng",
        re.compile(r"(?<![\w:])(std::)?(rand|srand|time)\s*\("),
        lambda rel: rel.parts[0] == "src",
        "library code must use util::Rng with an explicit seed / take "
        "timestamps from callers (reproducible runs)",
    ),
    (
        "raw-printf",
        re.compile(r"(?<![\w:])(std::)?(printf|fprintf|puts|fputs|vprintf"
                   r"|vfprintf)\s*\("),
        lambda rel: rel.parts[0] == "src"
        and rel not in (Path("src/util/logging.cc"), Path("src/util/check.cc")),
        "library code reports through util::Status or util/logging.h, "
        "not direct stdio",
    ),
    (
        "todo-owner",
        re.compile(r"\bTODO\b(?!\()"),
        lambda rel: True,
        "write TODO(owner): so stale TODOs are attributable",
    ),
    (
        # `(?<![\w:.>])` keeps method calls (socket.close(), s->connect())
        # and qualified names out; `::close(` IS caught via the allowlist
        # exception being src/net/ only.
        "raw-socket",
        re.compile(
            r"(?<![\w.>])(::)?(socket|connect|accept4?|bind|listen|send"
            r"|sendto|sendmsg|recv|recvfrom|recvmsg|shutdown|close"
            r"|epoll_create1?|epoll_ctl|epoll_wait|eventfd|setsockopt"
            r"|getsockopt|getsockname)\s*\("
        ),
        lambda rel: rel.parts[:2] != ("src", "net"),
        "socket/epoll syscalls live in src/net/socket.h wrappers only "
        "(one place for fd ownership, EINTR, SIGPIPE)",
    ),
    (
        "adhoc-atomic",
        re.compile(r"std::atomic\b"),
        lambda rel: rel.parts[0] == "src"
        and rel.parts[:2] not in (("src", "obs"), ("src", "util")),
        "register counters in obs::MetricsRegistry (src/obs/metrics.h) "
        "instead of ad-hoc atomics; sync primitives go in src/util/",
    ),
    (
        "fv-pointer-vector",
        re.compile(
            r"std::vector<\s*const\s+(features::)?FeatureVec\s*\*\s*>"
        ),
        lambda rel: rel != Path("src/features/feature_vector.h"),
        "pointer-vector feature populations are retired; use "
        "features::PackedVectorSet (src/features/packed_vector_set.h) or "
        "index spans over a contiguous std::vector<FeatureVec>",
    ),
    (
        # After strip_strings a literal argument still starts with its
        # quote character, so only identifier-led arguments (variables,
        # expressions) match. A call whose literal sits on the next line
        # leaves nothing after the '(' — also a pass.
        "metric-name-literal",
        re.compile(
            r"Get(Counter|AdvisoryCounter|Gauge|Histogram|Span)"
            r"\s*\(\s*[A-Za-z_]"
        ),
        lambda rel: rel.parts[0] == "src"
        and rel.parts[:2] != ("src", "obs"),
        "register metrics with a string-literal name (the name is the "
        "identity, DESIGN.md §12); computed names fork the namespace — "
        "the replay machinery in src/obs/ is the only exception",
    ),
    (
        "raw-std-random",
        re.compile(
            r"std::(mt19937(_64)?|minstd_rand0?|ranlux\w+|knuth_b"
            r"|default_random_engine|random_device|\w+_distribution"
            r"|seed_seq)\b"
            r"|#\s*include\s*<random>"
        ),
        lambda rel: rel.parts[:2] != ("src", "util"),
        "draw randomness from util::Rng (src/util/rng.h) with an explicit "
        "seed; std:: engines/distributions are unseeded-by-convention and "
        "not reproducible across standard libraries",
    ),
    (
        "raw-chrono",
        re.compile(r"std::chrono\b"),
        lambda rel: rel.parts[0] == "src"
        and rel.parts[:2] not in (("src", "obs"), ("src", "util")),
        "take wall time from util::WallTimer or obs trace spans, not "
        "raw std::chrono (keeps wall time fenced as advisory)",
    ),
]


def strip_strings(line: str) -> str:
    """Blank out string/char literal contents so rules don't fire on them."""
    out, i, n = [], 0, len(line)
    while i < n:
        c = line[i]
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and line[i] != quote:
                out.append(" " if line[i] != "\\" else " ")
                i += 2 if line[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


RULE_BY_NAME = {rule: (pattern, in_scope) for rule, pattern, in_scope, _
                in RULES}


def lint_file(path: Path, repo: Path) -> list:
    rel = path.relative_to(repo)
    findings = []
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return [(rel, 0, "encoding", "source files must be UTF-8")]
    for lineno, line in enumerate(text.splitlines(), start=1):
        allowed = set(ALLOW.findall(line))
        stripped = strip_strings(line)
        # todo-owner applies to comments too; the others look at code only.
        code = stripped.split("//", 1)[0]
        for rule, pattern, in_scope, message in RULES:
            if rule in allowed or not in_scope(rel):
                continue
            haystack = stripped if rule == "todo-owner" else code
            if pattern.search(haystack):
                findings.append((rel, lineno, rule, message))
        # Waiver hygiene: every waiver must name a real rule AND sit on
        # a line that rule would currently flag. Anything else is stale.
        for name in sorted(allowed):
            entry = RULE_BY_NAME.get(name)
            if entry is None:
                findings.append((
                    rel, lineno, "stale-waiver",
                    f"`lint:allow={name}` names an unknown rule — fix the "
                    f"spelling or remove the waiver"))
                continue
            pattern, in_scope = entry
            haystack = stripped if name == "todo-owner" else code
            if not in_scope(rel) or not pattern.search(haystack):
                findings.append((
                    rel, lineno, "stale-waiver",
                    f"`lint:allow={name}` no longer matches this line "
                    f"(rule out of scope here or the violation was edited "
                    f"away) — remove the waiver"))
    return findings


def collect_files(repo: Path) -> list:
    files = []
    for d in SOURCE_DIRS:
        root = repo / d
        if not root.is_dir():
            continue
        files.extend(
            p for p in sorted(root.rglob("*"))
            if p.suffix in SOURCE_SUFFIXES
            and "fixtures" not in p.relative_to(repo).parts
        )
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO,
                        help="tree to lint (default: this repo)")
    args = parser.parse_args()
    repo = args.root.resolve()
    files = collect_files(repo)
    findings = []
    for path in files:
        findings.extend(lint_file(path, repo))
    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    print(
        f"lint.py: scanned {len(files)} files, "
        f"{len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
