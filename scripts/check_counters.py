#!/usr/bin/env python3
"""CI gate over the deterministic work counters (src/obs).

Compares the "counters" and "spans" sections of one or more
--metrics-out dumps against the checked-in baseline
(bench/baselines/counters_baseline.json). Wall-clock numbers never
enter the comparison: the "advisory" section of each dump (timings,
queue depths, histograms, span wall_ns) is ignored entirely, which is
what makes the gate stable on noisy single-core CI runners — work
counters are byte-identical for a fixed seed regardless of machine
speed or thread count (tests/obs_test.cc proves the latter).

Failure conditions, per labeled dump:
  * a counter present in the baseline but missing from the run (work
    silently stopped being counted — or stopped happening),
  * a counter present in the run but missing from the baseline (new
    work appeared without the baseline being refreshed),
  * a value drifting more than --tolerance (default 2%) from baseline.

Usage (labels bind dumps to their baseline sections):

  check_counters.py --baseline=bench/baselines/counters_baseline.json \
      mine=/tmp/mine_metrics.json serve=/tmp/serve_metrics.json

Refreshing the baseline after an intentional change is the same
command with --refresh (scripts/bench_regression.sh --refresh runs the
whole seeded workload and does this in one step):

  check_counters.py --refresh --baseline=... mine=... serve=...
"""

import argparse
import json
import sys
from pathlib import Path


def flatten_work_values(dump: dict) -> dict:
    """The deterministic view of a DumpJson payload: work counters plus
    spans flattened to span/<path>/{calls,work}. Mirrors
    MetricsRegistry::WorkValues() in src/obs/metrics.cc."""
    values = {}
    for name, value in dump.get("counters", {}).items():
        values[name] = int(value)
    for path, span in dump.get("spans", {}).items():
        values[f"span/{path}/calls"] = int(span["calls"])
        values[f"span/{path}/work"] = int(span["work"])
    return values


def compare(label: str, baseline: dict, current: dict, tolerance: float):
    failures = []
    for name in sorted(baseline.keys() - current.keys()):
        failures.append(
            f"{label}: counter '{name}' is in the baseline but missing "
            f"from this run"
        )
    for name in sorted(current.keys() - baseline.keys()):
        failures.append(
            f"{label}: counter '{name}' is new (not in the baseline); "
            f"refresh the baseline if the work is intentional"
        )
    for name in sorted(baseline.keys() & current.keys()):
        base, cur = baseline[name], current[name]
        drift = abs(cur - base) / max(abs(base), 1)
        if drift > tolerance:
            failures.append(
                f"{label}: counter '{name}' drifted {drift:.1%} "
                f"(baseline {base}, got {cur}, tolerance {tolerance:.0%})"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--tolerance", type=float, default=0.02)
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="write the baseline from this run instead of comparing",
    )
    parser.add_argument(
        "dumps",
        nargs="+",
        metavar="LABEL=METRICS_JSON",
        help="a --metrics-out file and the baseline section it maps to",
    )
    args = parser.parse_args()

    runs = {}
    for spec in args.dumps:
        label, sep, path = spec.partition("=")
        if not sep or not label or not path:
            parser.error(f"expected LABEL=METRICS_JSON, got '{spec}'")
        if label in runs:
            parser.error(f"duplicate label '{label}'")
        with open(path, encoding="utf-8") as f:
            runs[label] = flatten_work_values(json.load(f))

    if args.refresh:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(runs, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline refreshed: {args.baseline} "
              f"({sum(len(v) for v in runs.values())} counters "
              f"across {len(runs)} sections)")
        return 0

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)

    failures = []
    for label in sorted(baseline.keys() - runs.keys()):
        failures.append(f"baseline section '{label}' was not provided")
    for label in sorted(runs.keys() - baseline.keys()):
        failures.append(
            f"section '{label}' has no baseline; refresh to add it"
        )
    for label in sorted(baseline.keys() & runs.keys()):
        failures.extend(
            compare(label, baseline[label], runs[label], args.tolerance)
        )

    checked = sum(len(v) for v in runs.values())
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        print(
            f"check_counters.py: {len(failures)} failure(s) across "
            f"{checked} counters",
            file=sys.stderr,
        )
        return 1
    print(
        f"check_counters.py: {checked} counters across "
        f"{len(runs)} sections match the baseline "
        f"(tolerance {args.tolerance:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
