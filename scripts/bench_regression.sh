#!/usr/bin/env bash
# Seeded mine+serve workload for the CI bench-regression job. Every
# number this produces and compares is a deterministic work counter
# (src/obs): wall-clock never enters the gate, so it holds on slow,
# noisy, single-core runners.
#
#   bench_regression.sh <build-dir>             # compare to baseline
#   bench_regression.sh <build-dir> --refresh   # rewrite the baseline
#
# The one-command baseline refresh after an intentional change to the
# mining pipeline or the instrumentation:
#
#   scripts/bench_regression.sh build --refresh
#
# Set BENCH_ARTIFACT_DIR to keep the metrics JSON files (CI uploads
# them as artifacts).
set -euo pipefail

BUILD=${1:?usage: bench_regression.sh <build-dir> [--refresh]}
MODE=${2:-}
REPO=$(cd "$(dirname "$0")/.." && pwd)
BASELINE="$REPO/bench/baselines/counters_baseline.json"
WORK=$(mktemp -d)
SERVE_PID=

cleanup() {
  if [ -n "$SERVE_PID" ]; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# --- Phase 1: seeded dataset + mine -----------------------------------
# The workload is a pure function of these flags; --threads only changes
# scheduling, never the work counters (tests/obs_test.cc asserts this).
"$BUILD/tools/graphsig_datagen" --screen=MCF-7 --size=60 --seed=3 \
  --active-fraction=0.3 --output="$WORK/screen.smi" >/dev/null

"$BUILD/tools/graphsig_mine" --input="$WORK/screen.smi" --active-only \
  --radius=4 --threads=2 --metrics-out="$WORK/mine_metrics.json" >/dev/null

# The approx tier's counters (samples drawn, walk steps, iso tests) are
# deterministic for a fixed seed, so they gate exactly like mining's.
"$BUILD/tools/graphsig_sample" --input="$WORK/screen.smi" --mode=topk \
  --k=5 --edges=3 --samples=400 --support-samples=64 --seed=11 \
  --threads=2 --metrics-out="$WORK/sample_metrics.json" >/dev/null

# Per-kernel counter phases (packed dominance, CSR-backed VF2, FVMine
# arena): fixed seeds, work counters only — wall clock never recorded.
"$BUILD/bench/bench_micro_kernels" \
  --counters-out="$WORK/micro_metrics.json" >/dev/null

# --- Phase 1b: streaming ingest (seeded append workload) --------------
# Append two seeded batches to a fresh log and mine after each; the
# second mine restores the first's checkpoint, so the stream/* reuse
# accounting (graphs replayed vs featurized, groups re-mined, log
# records) gates here alongside the mining counters. Byte-identity of
# the incremental artifact against a cold re-mine is tier-1
# (tests/stream_test.cc); this phase pins the work the shortcut saves.
"$BUILD/tools/graphsig_datagen" --screen=MCF-7 --size=40 --seed=5 \
  --active-fraction=0.3 --output="$WORK/batch1.smi" >/dev/null
"$BUILD/tools/graphsig_datagen" --screen=MCF-7 --size=20 --seed=6 \
  --active-fraction=0.3 --output="$WORK/batch2.smi" >/dev/null

"$BUILD/tools/graphsig_ingest" --log="$WORK/stream.gsl" \
  --append="$WORK/batch1.smi" --mine --radius=4 --threads=2 >/dev/null
"$BUILD/tools/graphsig_ingest" --log="$WORK/stream.gsl" \
  --append="$WORK/batch2.smi" --mine --tarone-alpha=0.05 --radius=4 \
  --threads=2 --metrics-out="$WORK/ingest_metrics.json" >/dev/null

# --- Phase 2: serve the indexed model, replay a seeded query load -----
"$BUILD/tools/graphsig_index" --input="$WORK/screen.smi" \
  --output="$WORK/model.gsig" --radius=4 --threads=2 >/dev/null

# --max-inflight far above the offered load: RETRY_LATER must never
# fire, or the served-request counters would depend on timing.
"$BUILD/tools/graphsig_serve" --model="$WORK/model.gsig" --port=0 \
  --max-inflight=4096 --metrics-out="$WORK/serve_metrics.json" \
  >"$WORK/serve.out" 2>"$WORK/serve.err" &
SERVE_PID=$!

PORT=
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\)$/\1/p' "$WORK/serve.out")
  [ -n "$PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.err" >&2; exit 1; }
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "bench_regression: failed to scrape port from serve output:" >&2
  cat "$WORK/serve.out" "$WORK/serve.err" >&2
  exit 1
fi

# --mix routes a fixed, seed-determined quarter of the schedule through
# the approx query class, so the served-side approx counters get pinned
# by the same baseline as the exact ones.
"$BUILD/tools/graphsig_loadgen" --port="$PORT" --input="$WORK/screen.smi" \
  --qps=400 --count=100 --connections=2 --seed=7 \
  --mix=0.25 --approx-samples=32 \
  --json="$WORK/loadgen.json"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=

# --- Phase 2b: the same load against a sharded, multi-loop server -----
# Two anchor shards, two-wide query fan-out, two event loops. The
# sharded path must report byte-for-byte the same deterministic work
# as the unsharded phase (scripts/shard_sweep.sh gates that identity
# directly); this phase pins it in the baseline so a counter regression
# in the shard merge shows up even outside the sweep job.
"$BUILD/tools/graphsig_serve" --model="$WORK/model.gsig" --port=0 \
  --shards=2 --threads=2 --loops=2 --max-inflight=4096 \
  --metrics-out="$WORK/serve_sharded_metrics.json" \
  >"$WORK/serve.out" 2>"$WORK/serve.err" &
SERVE_PID=$!

PORT=
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\)$/\1/p' "$WORK/serve.out")
  [ -n "$PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.err" >&2; exit 1; }
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "bench_regression: failed to scrape port from sharded serve:" >&2
  cat "$WORK/serve.out" "$WORK/serve.err" >&2
  exit 1
fi

"$BUILD/tools/graphsig_loadgen" --port="$PORT" --input="$WORK/screen.smi" \
  --qps=400 --count=100 --connections=2 --seed=7 \
  --mix=0.25 --approx-samples=32 \
  --json="$WORK/loadgen_sharded.json"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=

if [ -n "${BENCH_ARTIFACT_DIR:-}" ]; then
  mkdir -p "$BENCH_ARTIFACT_DIR"
  cp "$WORK/mine_metrics.json" "$WORK/sample_metrics.json" \
     "$WORK/serve_metrics.json" "$WORK/serve_sharded_metrics.json" \
     "$WORK/micro_metrics.json" "$WORK/ingest_metrics.json" \
     "$WORK/loadgen.json" "$WORK/loadgen_sharded.json" \
     "$BENCH_ARTIFACT_DIR/"
fi

# --- Phase 3: gate on the deterministic counters ----------------------
if [ "$MODE" = "--refresh" ]; then
  python3 "$REPO/scripts/check_counters.py" --refresh \
    --baseline="$BASELINE" \
    mine="$WORK/mine_metrics.json" sample="$WORK/sample_metrics.json" \
    serve="$WORK/serve_metrics.json" \
    serve_sharded="$WORK/serve_sharded_metrics.json" \
    micro="$WORK/micro_metrics.json" \
    ingest="$WORK/ingest_metrics.json"
else
  python3 "$REPO/scripts/check_counters.py" \
    --baseline="$BASELINE" \
    mine="$WORK/mine_metrics.json" sample="$WORK/sample_metrics.json" \
    serve="$WORK/serve_metrics.json" \
    serve_sharded="$WORK/serve_sharded_metrics.json" \
    micro="$WORK/micro_metrics.json" \
    ingest="$WORK/ingest_metrics.json"
fi
