#!/usr/bin/env bash
# Shard-sweep determinism gate for the CI shard-sweep job: one seeded
# dataset is indexed once, then served at every shard count x fan-out
# width in the matrix while graphsig_loadgen replays an identical
# seeded, model-verified workload against each topology. The gate:
#
#   1. every reply byte-matches the in-process model answer
#      (loadgen --verify-model), at every (shards, threads) point;
#   2. the deterministic work-counter dump (the "counters" and "spans"
#      sections of --metrics-out; advisory metrics are fenced) is
#      byte-identical across ALL matrix points — sharding and fan-out
#      may never change what work the server reports doing;
#   3. each server reports exactly the shard count it was launched
#      with in its Stats reply (loadgen JSON server.shards).
#
# Wall-clock never enters the gate, so it holds on slow, noisy,
# single-core runners (and under TSan, where CI runs it).
#
#   shard_sweep.sh <build-dir> [shard counts, default "1 2 4"] \
#                  [thread counts, default "1 4"]
set -euo pipefail

BUILD=${1:?usage: shard_sweep.sh <build-dir> [shards...] [threads...]}
SHARD_COUNTS=${2:-"1 2 4"}
THREAD_COUNTS=${3:-"1 4"}
WORK=$(mktemp -d)
SERVE_PID=

cleanup() {
  if [ -n "$SERVE_PID" ]; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# Seeded dataset + index, built once: every matrix point serves the
# same artifact, so any counter divergence is the server's fault.
"$BUILD/tools/graphsig_datagen" --screen=MCF-7 --size=60 --seed=3 \
  --active-fraction=0.3 --output="$WORK/screen.smi" >/dev/null
"$BUILD/tools/graphsig_index" --input="$WORK/screen.smi" \
  --output="$WORK/model.gsig" --radius=4 --threads=2 >/dev/null

BASELINE=
BASELINE_LABEL=
for threads in $THREAD_COUNTS; do
  for shards in $SHARD_COUNTS; do
    label="shards=${shards}_threads=${threads}"
    echo "shard_sweep: $label"
    metrics="$WORK/metrics_${shards}_${threads}.json"

    # --max-inflight far above the offered load: RETRY_LATER must never
    # fire, or the served-request counters would depend on timing. Two
    # event loops so accept sharding is always in the picture.
    "$BUILD/tools/graphsig_serve" --model="$WORK/model.gsig" --port=0 \
      --shards="$shards" --threads="$threads" --loops=2 \
      --max-inflight=4096 --metrics-out="$metrics" \
      >"$WORK/serve.out" 2>"$WORK/serve.err" &
    SERVE_PID=$!

    PORT=
    for _ in $(seq 1 100); do
      PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\)$/\1/p' "$WORK/serve.out")
      [ -n "$PORT" ] && break
      kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.err" >&2; exit 1; }
      sleep 0.1
    done
    if [ -z "$PORT" ]; then
      echo "shard_sweep: failed to scrape port from serve output:" >&2
      cat "$WORK/serve.out" "$WORK/serve.err" >&2
      exit 1
    fi

    # The same seeded schedule at every point, with a deterministic 30%
    # approx slice, every reply checked against the model in-process.
    "$BUILD/tools/graphsig_loadgen" --port="$PORT" \
      --input="$WORK/screen.smi" --qps=400 --count=100 --connections=2 \
      --seed=7 --mix=0.3 --approx-samples=32 \
      --verify-model="$WORK/model.gsig" --json="$WORK/loadgen.json"

    kill -TERM "$SERVE_PID"
    wait "$SERVE_PID"
    SERVE_PID=
    grep -q "drained:" "$WORK/serve.err" || {
      echo "shard_sweep: server did not drain ($label)" >&2
      cat "$WORK/serve.err" >&2
      exit 1
    }
    rm -f "$WORK/serve.out" "$WORK/serve.err"

    # Gate 3: the server told the client how many shards it runs.
    python3 - "$WORK/loadgen.json" "$shards" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
want = int(sys.argv[2])
got = report["server"].get("shards")
if got != want:
    print(f"shard_sweep: server reports {got} shards, launched with {want}",
          file=sys.stderr)
    sys.exit(1)
if report["totals"].get("retry_later", 0) != 0:
    print("shard_sweep: RETRY_LATER fired; counters are load-dependent",
          file=sys.stderr)
    sys.exit(1)
EOF

    # Gate 2: project out the deterministic sections ("counters" and
    # "spans" — the advisory block is allowed to vary with topology)
    # and require byte-identity with the first matrix point.
    stripped="$WORK/stripped_${shards}_${threads}.json"
    python3 - "$metrics" "$stripped" <<'EOF'
import json, sys
dump = json.load(open(sys.argv[1]))
deterministic = {"counters": dump["counters"], "spans": dump["spans"]}
with open(sys.argv[2], "w") as out:
    json.dump(deterministic, out, indent=1, sort_keys=True)
EOF
    if [ -z "$BASELINE" ]; then
      BASELINE=$stripped
      BASELINE_LABEL=$label
    elif ! cmp -s "$BASELINE" "$stripped"; then
      echo "shard_sweep: deterministic counters diverge:" \
        "$BASELINE_LABEL vs $label" >&2
      diff -u "$BASELINE" "$stripped" >&2 || true
      exit 1
    fi
  done
done
echo "shard_sweep: deterministic counters byte-identical across" \
  "shards {$SHARD_COUNTS} x threads {$THREAD_COUNTS}"
