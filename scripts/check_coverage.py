#!/usr/bin/env python3
"""Line-coverage floor gate for the CI coverage job.

Reads `llvm-cov export -summary-only` JSON (a file argument or stdin)
and enforces a minimum line-coverage percentage per source directory.
Aggregation is by line counts, not by averaging per-file percentages,
so a large barely-covered file cannot hide behind small fully-covered
neighbours.

  llvm-cov export -summary-only -instr-profile=cov.profdata BIN \
      | scripts/check_coverage.py --json=- src/util=80 src/net=75 src/obs=90
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--json", required=True, help="llvm-cov export JSON path, or - for stdin"
    )
    parser.add_argument(
        "floors",
        nargs="+",
        metavar="DIR=MIN_PERCENT",
        help="directory prefix (repo-relative) and its line-coverage floor",
    )
    args = parser.parse_args()

    floors = {}
    for spec in args.floors:
        prefix, sep, floor = spec.partition("=")
        if not sep:
            parser.error(f"expected DIR=MIN_PERCENT, got '{spec}'")
        floors[prefix.rstrip("/") + "/"] = float(floor)

    source = sys.stdin if args.json == "-" else open(args.json, encoding="utf-8")
    with source:
        export = json.load(source)

    totals = {prefix: [0, 0] for prefix in floors}  # prefix -> [covered, count]
    for data in export["data"]:
        for entry in data.get("files", []):
            filename = entry["filename"]
            lines = entry["summary"]["lines"]
            for prefix in floors:
                # llvm-cov emits absolute paths; match on the repo-relative
                # component so the gate is independent of the checkout dir.
                if f"/{prefix}" in filename or filename.startswith(prefix):
                    totals[prefix][0] += lines["covered"]
                    totals[prefix][1] += lines["count"]

    failures = 0
    for prefix, floor in sorted(floors.items()):
        covered, count = totals[prefix]
        if count == 0:
            print(f"FAIL {prefix}: no instrumented lines found "
                  f"(wrong binary or path filter?)")
            failures += 1
            continue
        percent = 100.0 * covered / count
        status = "ok  " if percent >= floor else "FAIL"
        if percent < floor:
            failures += 1
        print(f"{status} {prefix}: {percent:.1f}% line coverage "
              f"({covered}/{count} lines, floor {floor:.0f}%)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
