#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/sync.h"

namespace graphsig::util {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// The sink serializes record emission and target swaps. stdio already
// locks per call, but the explicit annotated mutex (a) makes the
// target pointer itself safe to swap while workers log and (b) lets the
// thread-safety analysis check the discipline at compile time.
struct LogSink {
  Mutex mutex;
  std::FILE* target GS_GUARDED_BY(mutex) = nullptr;  // nullptr = stderr
};

LogSink& Sink() {
  static LogSink sink;
  return sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogTarget(std::FILE* target) {
  LogSink& sink = Sink();
  MutexLock lock(&sink.mutex);
  sink.target = target;
}

void Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  // Pre-format the whole record outside the lock, then emit it with a
  // single stdio call under the sink mutex, so concurrent ParallelFor
  // workers cannot interleave one record inside another.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += LevelName(level);
  line += "] ";
  line += message;
  line += '\n';
  LogSink& sink = Sink();
  MutexLock lock(&sink.mutex);
  std::fputs(line.c_str(), sink.target != nullptr ? sink.target : stderr);
}

void FlushLogs() {
  LogSink& sink = Sink();
  MutexLock lock(&sink.mutex);
  std::fflush(sink.target != nullptr ? sink.target : stderr);
}

void LogDebug(const std::string& message) { Log(LogLevel::kDebug, message); }
void LogInfo(const std::string& message) { Log(LogLevel::kInfo, message); }
void LogWarning(const std::string& message) {
  Log(LogLevel::kWarning, message);
}
void LogError(const std::string& message) { Log(LogLevel::kError, message); }

}  // namespace graphsig::util
