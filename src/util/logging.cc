#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace graphsig::util {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  // Pre-format the whole record and emit it with a single stdio call:
  // stdio locks the stream per call, so concurrent ParallelFor workers
  // cannot interleave one record inside another.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += LevelName(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fputs(line.c_str(), stderr);
}

void LogDebug(const std::string& message) { Log(LogLevel::kDebug, message); }
void LogInfo(const std::string& message) { Log(LogLevel::kInfo, message); }
void LogWarning(const std::string& message) {
  Log(LogLevel::kWarning, message);
}
void LogError(const std::string& message) { Log(LogLevel::kError, message); }

}  // namespace graphsig::util
