#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "util/parallel.h"

namespace graphsig::util {
namespace {

// Scheduling telemetry. Task counts and queue depth depend on how the
// OS interleaves workers, so these are ADVISORY metrics — never work
// counters (DESIGN.md §12).
struct PoolMetrics {
  obs::Counter* submitted;
  obs::Counter* executed;
  obs::Gauge* queue_depth_hwm;

  static const PoolMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static const PoolMetrics m = {
        registry.GetAdvisoryCounter("pool/tasks_submitted"),
        registry.GetAdvisoryCounter("pool/tasks_executed"),
        registry.GetGauge("pool/queue_depth_hwm")};
    return m;
  }
};

// Identifies the pool (and worker slot) the current thread belongs to,
// so Submit() can route a worker's own submissions to its own deque and
// nested parallel regions stay on the hot path.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const size_t n = static_cast<size_t>(std::max(num_threads, 1));
  deques_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&sleep_mutex_);
    stopping_ = true;
  }
  sleep_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Global() {
  // Function-local static: joined cleanly at exit, so leak checkers stay
  // quiet and no worker outlives main.
  static ThreadPool pool(HardwareThreads());
  return pool;
}

bool ThreadPool::OnWorkerThread() const { return tls_pool == this; }

void ThreadPool::Submit(std::function<void()> task) {
  const size_t index =
      OnWorkerThread()
          ? tls_worker_index
          : submit_cursor_.fetch_add(1, std::memory_order_relaxed) %
                deques_.size();
  {
    MutexLock lock(&deques_[index]->mutex);
    deques_[index]->tasks.push_back(std::move(task));
  }
  const int64_t depth = queued_.fetch_add(1, std::memory_order_release) + 1;
  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.submitted->Increment();
  metrics.queue_depth_hwm->UpdateMax(depth);
  // Empty critical section: a worker between its queue check and its
  // cv wait holds sleep_mutex_, so this cannot slip past it unseen.
  { MutexLock lock(&sleep_mutex_); }
  sleep_cv_.NotifyOne();
}

bool ThreadPool::PopTask(size_t queue_index, bool lifo,
                         std::function<void()>* out) {
  WorkerDeque& dq = *deques_[queue_index];
  MutexLock lock(&dq.mutex);
  if (dq.tasks.empty()) return false;
  if (lifo) {
    *out = std::move(dq.tasks.back());
    dq.tasks.pop_back();
  } else {
    *out = std::move(dq.tasks.front());
    dq.tasks.pop_front();
  }
  queued_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::TryRunTask(size_t home_index) {
  std::function<void()> task;
  // Own deque first (LIFO: the task just pushed by a nested region is
  // the cache-hot one), then steal oldest-first from siblings.
  if (!PopTask(home_index, /*lifo=*/true, &task)) {
    bool found = false;
    for (size_t step = 1; step < deques_.size() && !found; ++step) {
      found = PopTask((home_index + step) % deques_.size(), /*lifo=*/false,
                      &task);
    }
    if (!found) return false;
  }
  PoolMetrics::Get().executed->Increment();
  task();
  return true;
}

bool ThreadPool::RunOneTask() {
  const size_t home = OnWorkerThread() ? tls_worker_index : 0;
  return TryRunTask(home);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_pool = this;
  tls_worker_index = worker_index;
  while (true) {
    if (TryRunTask(worker_index)) continue;
    MutexLock lock(&sleep_mutex_);
    while (!stopping_ && queued_.load(std::memory_order_acquire) <= 0) {
      sleep_cv_.Wait(&sleep_mutex_);
    }
    if (stopping_) return;
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  {
    MutexLock lock(&mutex_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    try {
      fn();
    } catch (...) {
      RecordException();
    }
    MutexLock lock(&mutex_);
    if (--pending_ == 0) done_cv_.NotifyAll();
  });
}

void TaskGroup::RunInline(const std::function<void()>& fn) {
  try {
    fn();
  } catch (...) {
    RecordException();
  }
}

void TaskGroup::RecordException() {
  MutexLock lock(&mutex_);
  if (first_exception_ == nullptr) {
    first_exception_ = std::current_exception();
  }
  failed_.store(true, std::memory_order_release);
}

void TaskGroup::WaitNoThrow() {
  while (true) {
    {
      MutexLock lock(&mutex_);
      if (pending_ == 0) return;
    }
    // Help instead of idling — this is what makes nested ParallelFor
    // safe: a worker waiting on an inner group keeps draining the pool,
    // so the inner tasks it depends on always make progress.
    if (pool_->RunOneTask()) continue;
    // Nothing stealable: our remaining tasks are mid-flight on other
    // threads. The timed wait covers the benign race where the last
    // task finishes between the pending check and this wait; the outer
    // loop re-checks pending_, so spurious wakeups only spin once.
    MutexLock lock(&mutex_);
    if (pending_ == 0) return;
    done_cv_.WaitFor(&mutex_, std::chrono::milliseconds(1));
    if (pending_ == 0) return;
  }
}

void TaskGroup::Wait() {
  WaitNoThrow();
  MutexLock lock(&mutex_);
  if (first_exception_ != nullptr) {
    std::exception_ptr e = first_exception_;
    first_exception_ = nullptr;
    failed_.store(false, std::memory_order_release);
    std::rethrow_exception(e);
  }
}

}  // namespace graphsig::util
