#ifndef GRAPHSIG_UTIL_LOGGING_H_
#define GRAPHSIG_UTIL_LOGGING_H_

#include <cstdio>
#include <string>

namespace graphsig::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped. Benches set
// this to kWarning so timing loops stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Redirects log output (default: stderr). `target` must stay valid until
// the next SetLogTarget call; pass nullptr to restore stderr. Used by
// tests that assert on emitted records.
void SetLogTarget(std::FILE* target);

// Writes "[LEVEL] message" to the log target if `level` passes the
// filter. Thread-safe: each record is emitted atomically.
void Log(LogLevel level, const std::string& message);

// Flushes the log target. GS_CHECK calls this before aborting so records
// buffered by stdio (e.g. when the target is a file) survive the crash;
// parallel-test diagnostics depend on it.
void FlushLogs();

void LogDebug(const std::string& message);
void LogInfo(const std::string& message);
void LogWarning(const std::string& message);
void LogError(const std::string& message);

}  // namespace graphsig::util

#endif  // GRAPHSIG_UTIL_LOGGING_H_
