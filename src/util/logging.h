#ifndef GRAPHSIG_UTIL_LOGGING_H_
#define GRAPHSIG_UTIL_LOGGING_H_

#include <string>

namespace graphsig::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped. Benches set
// this to kWarning so timing loops stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Writes "[LEVEL] message" to stderr if `level` passes the filter.
void Log(LogLevel level, const std::string& message);

void LogDebug(const std::string& message);
void LogInfo(const std::string& message);
void LogWarning(const std::string& message);
void LogError(const std::string& message);

}  // namespace graphsig::util

#endif  // GRAPHSIG_UTIL_LOGGING_H_
