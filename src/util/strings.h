#ifndef GRAPHSIG_UTIL_STRINGS_H_
#define GRAPHSIG_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace graphsig::util {

// Splits on any single character in `delims`; consecutive delimiters
// produce no empty tokens (whitespace-style splitting).
std::vector<std::string> SplitTokens(std::string_view input,
                                     std::string_view delims = " \t\r\n");

// Splits on exactly `delim`, preserving empty fields (CSV-style).
std::vector<std::string> SplitFields(std::string_view input, char delim);

// Joins with `sep` between elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

// Removes leading/trailing whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

// Strict integer / double parsing: the whole token must be consumed.
Result<int64_t> ParseInt(std::string_view token);
Result<double> ParseDouble(std::string_view token);

// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace graphsig::util

#endif  // GRAPHSIG_UTIL_STRINGS_H_
