#include "util/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace graphsig::util {

std::vector<std::string> SplitTokens(std::string_view input,
                                     std::string_view delims) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && delims.find(input[i]) != std::string_view::npos) {
      ++i;
    }
    size_t start = i;
    while (i < input.size() && delims.find(input[i]) == std::string_view::npos) {
      ++i;
    }
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> SplitFields(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt(std::string_view token) {
  if (token.empty()) return Status::ParseError("empty integer token");
  std::string buf(token);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view token) {
  if (token.empty()) return Status::ParseError("empty double token");
  std::string buf(token);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::ParseError("double out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in double: " + buf);
  }
  return v;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace graphsig::util
