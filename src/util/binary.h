#ifndef GRAPHSIG_UTIL_BINARY_H_
#define GRAPHSIG_UTIL_BINARY_H_

// Little-endian binary encoding primitives used by the model-artifact
// serialization layer (src/model/). ByteWriter appends fixed-width
// fields to a growable buffer; ByteReader consumes them with explicit
// bounds checking — every read reports truncation through util::Status
// instead of crashing, so corrupt files surface as clean errors.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace graphsig::util {

// Appends little-endian fixed-width values to an owned byte buffer.
// All multi-byte integers are written least-significant byte first
// regardless of host endianness, so artifacts are portable.
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI16(int16_t v) { WriteU16(static_cast<uint16_t>(v)); }
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  // IEEE-754 bit pattern as a u64.
  void WriteF64(double v);
  // Raw bytes, no length prefix.
  void WriteBytes(std::string_view bytes);
  // u64 length prefix + bytes.
  void WriteString(std::string_view s);

  // Overwrites previously written bytes at `offset` (e.g. to patch a
  // section table once section sizes are known). The range must already
  // exist.
  void PatchU32(size_t offset, uint32_t v);
  void PatchU64(size_t offset, uint64_t v);

  size_t size() const { return buffer_.size(); }
  const std::string& buffer() const { return buffer_; }
  std::string&& TakeBuffer() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Consumes little-endian fields from a byte view. Never reads past the
// end: each accessor returns a Status and leaves the cursor unchanged
// on failure. Every failure message names the section being decoded
// (set_section) and the byte offset of the failed read, so a corrupt
// artifact reports "truncated read in catalog at offset 132: ..."
// instead of a bare bounds error.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data,
                      std::string section = "input")
      : data_(data), section_(std::move(section)) {}

  // Labels subsequent error messages; decoders set this as they move
  // between logical sections of one buffer.
  void set_section(std::string section) { section_ = std::move(section); }
  const std::string& section() const { return section_; }

  Status ReadU8(uint8_t* out);
  Status ReadU16(uint16_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI16(int16_t* out);
  Status ReadI32(int32_t* out);
  Status ReadI64(int64_t* out);
  Status ReadF64(double* out);
  // u64 length prefix + bytes.
  Status ReadString(std::string* out);

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }
  // Repositions the cursor; `pos` must be within the data.
  Status Seek(size_t pos);

 private:
  Status Take(size_t n, const char** out);

  std::string_view data_;
  std::string section_;
  size_t pos_ = 0;
};

// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG convention) of `data`.
// Used as the artifact integrity checksum.
uint32_t Crc32(std::string_view data);

}  // namespace graphsig::util

#endif  // GRAPHSIG_UTIL_BINARY_H_
