#ifndef GRAPHSIG_UTIL_THREAD_POOL_H_
#define GRAPHSIG_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace graphsig::util {

// A persistent work-stealing thread pool. Workers are spawned once and
// reused across every parallel phase of the pipeline, so callers that
// fan out repeatedly (FVMine per label group, per-vector region mining,
// batched query serving) never pay per-call thread spawn/join costs.
//
// Each worker owns a deque: it pushes and pops its own work LIFO (hot
// caches for nested fan-out) and steals FIFO from siblings when its own
// deque drains (oldest work first, the classic Cilk/TBB discipline).
// Threads that block in TaskGroup::Wait help by stealing too, so nested
// parallel regions (a pool task that itself calls ParallelFor) cannot
// deadlock the pool.
//
// The pool itself imposes no ordering; determinism is the caller's
// contract (each task writes only its own slots, merges happen on the
// waiting thread in a fixed order).
class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Enqueues `task` for execution on some worker. Tasks submitted from a
  // worker thread go to that worker's own deque; external submissions are
  // spread round-robin. `task` must not throw out of the pool unwrapped —
  // use TaskGroup, which wraps tasks with exception capture.
  void Submit(std::function<void()> task);

  // Runs one pending task on the calling thread if any is queued.
  // Returns false without blocking when every deque is empty. Used by
  // TaskGroup::Wait to help instead of idling.
  bool RunOneTask();

  // The process-wide pool, created on first use with HardwareThreads()
  // workers. All ParallelFor traffic runs here.
  static ThreadPool& Global();

  // True when the calling thread is a worker of this pool.
  bool OnWorkerThread() const;

 private:
  struct WorkerDeque {
    Mutex mutex;
    std::deque<std::function<void()>> tasks GS_GUARDED_BY(mutex);
  };

  void WorkerLoop(size_t worker_index);
  bool TryRunTask(size_t home_index);
  bool PopTask(size_t queue_index, bool lifo, std::function<void()>* out);

  std::vector<std::unique_ptr<WorkerDeque>> deques_ GS_UNGUARDED_BY_DESIGN(
      "sized in the constructor before any worker starts; the vector "
      "itself is never resized afterwards (per-deque state is guarded "
      "by each WorkerDeque::mutex)");
  std::vector<std::thread> workers_ GS_UNGUARDED_BY_DESIGN(
      "populated in the constructor, joined in the destructor; no "
      "concurrent access in between");
  std::atomic<size_t> submit_cursor_{0};
  std::atomic<int64_t> queued_{0};  // tasks enqueued, not yet dequeued
  Mutex sleep_mutex_;
  CondVar sleep_cv_;
  bool stopping_ GS_GUARDED_BY(sleep_mutex_) = false;
};

// Tracks a batch of tasks submitted to a ThreadPool, propagating the
// first exception a task throws to the thread that calls Wait(). Not
// reusable after Wait() rethrows; create one group per parallel region.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool = &ThreadPool::Global())
      : pool_(pool) {}
  ~TaskGroup() { WaitNoThrow(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Submits fn to the pool. If fn throws, the first exception across the
  // group is captured and every later task sees failed() == true (tasks
  // poll it to drain their remaining work quickly).
  void Run(std::function<void()> fn);

  // Runs fn on the calling thread under the same exception capture as
  // Run() tasks — lets the caller participate in the work it fanned out.
  void RunInline(const std::function<void()>& fn);

  // Blocks until every task submitted through Run() has finished,
  // stealing pool work while it waits. Rethrows the first captured
  // exception (from Run or RunInline tasks) on this thread.
  void Wait();

  // True once any task in the group has thrown.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

 private:
  void RecordException();
  void WaitNoThrow();

  ThreadPool* const pool_;
  Mutex mutex_;
  CondVar done_cv_;
  int64_t pending_ GS_GUARDED_BY(mutex_) = 0;
  std::exception_ptr first_exception_ GS_GUARDED_BY(mutex_);
  std::atomic<bool> failed_{false};
};

}  // namespace graphsig::util

#endif  // GRAPHSIG_UTIL_THREAD_POOL_H_
