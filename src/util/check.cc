#include "util/check.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/strings.h"

namespace graphsig::util::internal {

void CheckFailed(const char* file, int line, const char* expr) {
  // Through the log sink first (so a redirected sink captures it), then
  // to stderr unconditionally in case the sink points elsewhere, then
  // flush both — abort() must not eat the diagnostic.
  const std::string message =
      StrPrintf("GS_CHECK failed at %s:%d: %s", file, line, expr);
  Log(LogLevel::kError, message);
  std::fprintf(stderr, "%s\n", message.c_str());
  FlushLogs();
  std::fflush(stderr);
  std::abort();
}

}  // namespace graphsig::util::internal
