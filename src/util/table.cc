#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"
#include "util/strings.h"

namespace graphsig::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GS_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  GS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  return StrPrintf("%.*f", precision, v);
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    const std::string& cell = cells[i];
    bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
    if (needs_quote) {
      os_ << '"';
      for (char ch : cell) {
        if (ch == '"') os_ << '"';
        os_ << ch;
      }
      os_ << '"';
    } else {
      os_ << cell;
    }
  }
  os_ << '\n';
}

}  // namespace graphsig::util
