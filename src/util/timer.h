#ifndef GRAPHSIG_UTIL_TIMER_H_
#define GRAPHSIG_UTIL_TIMER_H_

#include <chrono>

namespace graphsig::util {

// Monotonic wall-clock timer used by benches and by GraphSig's stage
// profiler (Fig. 10 reproduction).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across repeated start/stop intervals; one per pipeline
// stage in the GraphSig profiler.
class StageTimer {
 public:
  void Start() { running_ = WallTimer(); }
  void Stop() { total_seconds_ += running_.ElapsedSeconds(); }
  double total_seconds() const { return total_seconds_; }
  void Reset() { total_seconds_ = 0.0; }

 private:
  WallTimer running_;
  double total_seconds_ = 0.0;
};

}  // namespace graphsig::util

#endif  // GRAPHSIG_UTIL_TIMER_H_
