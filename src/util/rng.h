#ifndef GRAPHSIG_UTIL_RNG_H_
#define GRAPHSIG_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace graphsig::util {

// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
// Every randomized component in the library takes one of these with an
// explicit seed; there is no global RNG, so all experiments replay exactly.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Reseed(seed); }

  void Reseed(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t NextU64();

  // Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  // sampling (Lemire) to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Index in [0, weights.size()) sampled proportionally to `weights`.
  // Weights must be non-negative with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // Derives an independent child generator; useful for giving each graph
  // or each fold its own stream without correlation.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace graphsig::util

#endif  // GRAPHSIG_UTIL_RNG_H_
