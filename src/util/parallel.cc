#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/thread_pool.h"

namespace graphsig::util {

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelFor(int num_threads, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool& pool = ThreadPool::Global();
  // One claim loop per requested thread, capped by the work available
  // and by the pool width plus the caller (who participates too).
  const size_t loops =
      std::min({static_cast<size_t>(num_threads), count,
                static_cast<size_t>(pool.num_workers()) + 1});
  std::atomic<size_t> next{0};
  TaskGroup group(&pool);
  auto work = [&] {
    while (!group.failed()) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      fn(i);
    }
  };
  for (size_t t = 1; t < loops; ++t) group.Run(work);
  group.RunInline(work);
  group.Wait();  // rethrows the first captured exception, if any
}

}  // namespace graphsig::util
