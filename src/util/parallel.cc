#include "util/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace graphsig::util {

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelFor(int num_threads, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const size_t workers =
      std::min<size_t>(static_cast<size_t>(num_threads), count);
  std::atomic<size_t> next{0};
  auto work = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t t = 1; t < workers; ++t) threads.emplace_back(work);
  work();
  for (std::thread& t : threads) t.join();
}

}  // namespace graphsig::util
