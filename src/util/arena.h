#ifndef GRAPHSIG_UTIL_ARENA_H_
#define GRAPHSIG_UTIL_ARENA_H_

// Task-scoped monotonic bump allocator for the mining recursions
// (DESIGN.md §14). One Arena belongs to one task (one FvMine call, one
// gSpan projection) and never crosses threads; pointers into it die with
// the task. Allocation is a pointer bump; freeing happens either all at
// once (Reset) or stack-wise (Position/Rewind around a recursion frame),
// which is exactly the shape of a depth-first search: everything a frame
// allocates is dead once the frame's subtree has been explored.
//
// Only trivially-destructible types may live here — nothing is ever
// destroyed, memory is just reused. AllocateArray enforces this at
// compile time.
//
// bytes_requested()/allocations() tally every request (including ones
// later rewound). They depend only on the sequence of requests, never on
// chunk geometry, so they are valid deterministic work counters
// (DESIGN.md §12) and feed fvmine/arena_* and gspan/embeddings_arena_bytes.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace graphsig::util {

class Arena {
 public:
  explicit Arena(size_t min_chunk_bytes = 1 << 12)
      : min_chunk_bytes_(min_chunk_bytes) {
    GS_CHECK_GT(min_chunk_bytes, 0u);
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // A rewind point. Only valid for Rewind on the Arena it came from, and
  // only while no earlier mark has been rewound past it.
  struct Mark {
    size_t chunk = 0;
    size_t used = 0;
  };

  void* Allocate(size_t bytes, size_t alignment) {
    GS_CHECK_GT(alignment, 0u);
    GS_CHECK_LE(alignment, alignof(std::max_align_t));
    GS_CHECK_EQ(alignment & (alignment - 1), 0u);  // power of two
    bytes_requested_ += bytes;
    ++allocations_;
    while (true) {
      if (active_ < chunks_.size()) {
        Chunk& c = chunks_[active_];
        const size_t aligned = (c.used + alignment - 1) & ~(alignment - 1);
        if (aligned + bytes <= c.size) {
          c.used = aligned + bytes;
          return c.data.get() + aligned;
        }
        // Doesn't fit; try the next (possibly recycled) chunk.
        if (active_ + 1 < chunks_.size()) {
          ++active_;
          chunks_[active_].used = 0;
          continue;
        }
      }
      AddChunk(bytes + alignment);
    }
  }

  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena memory is reused, never destroyed");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  Mark Position() const {
    if (active_ >= chunks_.size()) return {0, 0};
    return {active_, chunks_[active_].used};
  }

  // Frees (for reuse) everything allocated since `mark`. Chunks are kept.
  void Rewind(const Mark& mark) {
    if (chunks_.empty()) return;
    GS_CHECK_LT(mark.chunk, chunks_.size());
    for (size_t i = mark.chunk + 1; i <= active_ && i < chunks_.size(); ++i) {
      chunks_[i].used = 0;
    }
    active_ = mark.chunk;
    chunks_[active_].used = mark.used;
  }

  // Frees everything for reuse; chunk memory is retained.
  void Reset() { Rewind({0, 0}); }

  // Deterministic tallies over every request ever made (rewinds do not
  // subtract): total bytes and number of Allocate calls.
  uint64_t bytes_requested() const { return bytes_requested_; }
  uint64_t allocations() const { return allocations_; }

  // Bytes of chunk capacity currently held (advisory; depends on growth).
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;  // operator new[] alignment (>= 16)
    size_t size = 0;
    size_t used = 0;
  };

  void AddChunk(size_t min_bytes) {
    size_t size = chunks_.empty() ? min_chunk_bytes_ : chunks_.back().size * 2;
    if (size < min_bytes) size = min_bytes;
    chunks_.push_back({std::make_unique<char[]>(size), size, 0});
    active_ = chunks_.size() - 1;
  }

  const size_t min_chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t active_ = 0;  // == chunks_.size() only before the first chunk
  uint64_t bytes_requested_ = 0;
  uint64_t allocations_ = 0;
};

}  // namespace graphsig::util

#endif  // GRAPHSIG_UTIL_ARENA_H_
