#ifndef GRAPHSIG_UTIL_PARALLEL_H_
#define GRAPHSIG_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace graphsig::util {

// Runs fn(i) for every i in [0, count), fanning out over the persistent
// global ThreadPool with up to `num_threads` concurrent claim loops
// (1 or 0 = run inline on the caller). Blocks until every call returns.
// Work is claimed through an atomic counter, so uneven per-item costs
// balance automatically. `fn` must be safe to call concurrently for
// distinct indices; results stay deterministic as long as each index
// writes only its own slots.
//
// If fn throws, the first exception is captured, the remaining indices
// are drained without being run, and the exception is rethrown on the
// caller's thread once every in-flight call has finished — so
// Status-style error handling (and GS_CHECK-adjacent throws in tests)
// behave the same as in serial code.
//
// Safe to nest: an fn that itself calls ParallelFor shares the same
// pool, and blocked callers help execute queued work instead of idling.
void ParallelFor(int num_threads, size_t count,
                 const std::function<void(size_t)>& fn);

// Number of hardware threads (>= 1).
int HardwareThreads();

}  // namespace graphsig::util

#endif  // GRAPHSIG_UTIL_PARALLEL_H_
