#ifndef GRAPHSIG_UTIL_PARALLEL_H_
#define GRAPHSIG_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace graphsig::util {

// Runs fn(i) for every i in [0, count), distributing indices over up to
// `num_threads` worker threads (1 or 0 = run inline on the caller).
// Blocks until every call returns. Work is claimed through an atomic
// counter, so uneven per-item costs balance automatically. `fn` must be
// safe to call concurrently for distinct indices; results stay
// deterministic as long as each index writes only its own slots.
void ParallelFor(int num_threads, size_t count,
                 const std::function<void(size_t)>& fn);

// Number of hardware threads (>= 1).
int HardwareThreads();

}  // namespace graphsig::util

#endif  // GRAPHSIG_UTIL_PARALLEL_H_
