#ifndef GRAPHSIG_UTIL_SYNC_H_
#define GRAPHSIG_UTIL_SYNC_H_

// Synchronization primitives carrying Clang thread-safety annotations.
//
// Every mutex and condition variable in the project lives behind these
// wrappers (scripts/lint.py bans naked std::mutex / std::condition_variable
// outside this header), so that under Clang the entire locking discipline
// is checked at compile time with -Wthread-safety -Werror=thread-safety:
// a field declared GS_GUARDED_BY(mu) cannot be touched without holding
// `mu`, a function declared GS_REQUIRES(mu) cannot be called without it,
// and a MutexLock cannot be forgotten on an early return. Under GCC the
// annotations compile to nothing and the wrappers are zero-cost veneers
// over the std primitives — this container builds with GCC; the Clang
// `-Werror=thread-safety` gate runs in CI (see .github/workflows/ci.yml).
//
// Usage:
//
//   class Counter {
//    public:
//     void Add(int64_t n) {
//       MutexLock lock(&mu_);
//       total_ += n;
//     }
//    private:
//     Mutex mu_;
//     int64_t total_ GS_GUARDED_BY(mu_) = 0;
//   };
//
// The annotation macros are prefixed GS_ to avoid colliding with other
// libraries' spellings of the same Clang attributes.

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define GS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GS_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define GS_CAPABILITY(x) GS_THREAD_ANNOTATION(capability(x))
#define GS_SCOPED_CAPABILITY GS_THREAD_ANNOTATION(scoped_lockable)
#define GS_GUARDED_BY(x) GS_THREAD_ANNOTATION(guarded_by(x))
#define GS_PT_GUARDED_BY(x) GS_THREAD_ANNOTATION(pt_guarded_by(x))
#define GS_ACQUIRED_BEFORE(...) \
  GS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define GS_ACQUIRED_AFTER(...) \
  GS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define GS_REQUIRES(...) \
  GS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GS_ACQUIRE(...) \
  GS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GS_RELEASE(...) \
  GS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GS_TRY_ACQUIRE(...) \
  GS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GS_EXCLUDES(...) GS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GS_RETURN_CAPABILITY(x) GS_THREAD_ANNOTATION(lock_returned(x))
#define GS_NO_THREAD_SAFETY_ANALYSIS \
  GS_THREAD_ANNOTATION(no_thread_safety_analysis)

// Marks a mutable member of a mutex-owning class as deliberately NOT
// guarded by that mutex, with the reason inline. The semantic analyzer
// (tools/analyze, checker `lock-coverage`) requires every non-const,
// non-atomic member of a class that owns a util::Mutex to carry either
// GS_GUARDED_BY or this marker, so an unprotected field is always a
// conscious, documented decision. Typical reasons: "written in the
// constructor before any thread exists, immutable afterwards" or
// "owned by the event-loop thread; never touched concurrently".
// Compiles to a Clang `annotate` attribute (visible in the AST dump the
// analyzer reads) and to nothing under GCC.
#define GS_UNGUARDED_BY_DESIGN(reason) \
  GS_THREAD_ANNOTATION(annotate("gs_unguarded: " reason))

namespace graphsig::util {

class CondVar;

// A standard mutex declared as a Clang capability so the analysis can
// track which locks a thread holds. Prefer MutexLock over manual
// Lock()/Unlock() pairs.
class GS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GS_ACQUIRE() { mu_.lock(); }
  void Unlock() GS_RELEASE() { mu_.unlock(); }
  bool TryLock() GS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock; the scoped_lockable annotation tells the analysis the
// capability is held for exactly the lifetime of this object.
class GS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) GS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() GS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable bound to the annotated Mutex. Wait() atomically
// releases and reacquires the mutex exactly like
// std::condition_variable::wait; callers must already hold it, which the
// GS_REQUIRES annotation enforces under Clang.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) GS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  // Waits until notified or `timeout` elapses; true when notified.
  // There are deliberately no predicate overloads: a predicate lambda
  // reading GS_GUARDED_BY fields defeats the analysis (lambdas do not
  // inherit the caller's lock set), so waiters write the standard
  //   while (!condition) cv.Wait(&mu);
  // loop instead, which the analysis checks field by field.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, std::chrono::duration<Rep, Period> timeout)
      GS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace graphsig::util

#endif  // GRAPHSIG_UTIL_SYNC_H_
