#ifndef GRAPHSIG_UTIL_TABLE_H_
#define GRAPHSIG_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace graphsig::util {

// Builds aligned plain-text tables; every bench prints its figure/table
// reproduction through one of these so outputs stay uniform.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends one row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` decimals.
  static std::string Num(double v, int precision = 3);

  // Renders with a header rule and right-padded columns.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Minimal CSV emitter (quotes fields containing comma/quote/newline) for
// piping bench series into plotting tools.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void WriteRow(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

}  // namespace graphsig::util

#endif  // GRAPHSIG_UTIL_TABLE_H_
