#ifndef GRAPHSIG_UTIL_CHECK_H_
#define GRAPHSIG_UTIL_CHECK_H_

// Invariant checks. These abort on failure; they guard programmer errors,
// not recoverable conditions (use util::Status for those). Enabled in all
// build types: the library's correctness claims depend on them.

namespace graphsig::util::internal {

// Out of line (util/check.cc) so the failure path can route the message
// through the log sink and flush it before aborting — diagnostics from a
// worker thread in a parallel test must not die in a stdio buffer.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);

}  // namespace graphsig::util::internal

#define GS_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::graphsig::util::internal::CheckFailed(__FILE__, __LINE__,     \
                                              #expr);                 \
    }                                                                 \
  } while (0)

#define GS_CHECK_EQ(a, b) GS_CHECK((a) == (b))
#define GS_CHECK_NE(a, b) GS_CHECK((a) != (b))
#define GS_CHECK_LT(a, b) GS_CHECK((a) < (b))
#define GS_CHECK_LE(a, b) GS_CHECK((a) <= (b))
#define GS_CHECK_GT(a, b) GS_CHECK((a) > (b))
#define GS_CHECK_GE(a, b) GS_CHECK((a) >= (b))

#endif  // GRAPHSIG_UTIL_CHECK_H_
