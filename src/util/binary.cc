#include "util/binary.h"

#include <array>
#include <bit>
#include <cstring>

#include "util/check.h"
#include "util/strings.h"

namespace graphsig::util {
namespace {

template <typename T>
void AppendLe(std::string* buffer, T v) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    buffer->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

template <typename T>
void PatchLe(std::string* buffer, size_t offset, T v) {
  GS_CHECK_LE(offset + sizeof(T), buffer->size());
  for (size_t i = 0; i < sizeof(T); ++i) {
    (*buffer)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

template <typename T>
T LoadLe(const char* p) {
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t n = 0; n < 256; ++n) {
    uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

void ByteWriter::WriteU16(uint16_t v) { AppendLe(&buffer_, v); }
void ByteWriter::WriteU32(uint32_t v) { AppendLe(&buffer_, v); }
void ByteWriter::WriteU64(uint64_t v) { AppendLe(&buffer_, v); }

void ByteWriter::WriteF64(double v) {
  WriteU64(std::bit_cast<uint64_t>(v));
}

void ByteWriter::WriteBytes(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
}

void ByteWriter::WriteString(std::string_view s) {
  WriteU64(s.size());
  WriteBytes(s);
}

void ByteWriter::PatchU32(size_t offset, uint32_t v) {
  PatchLe(&buffer_, offset, v);
}

void ByteWriter::PatchU64(size_t offset, uint64_t v) {
  PatchLe(&buffer_, offset, v);
}

Status ByteReader::Take(size_t n, const char** out) {
  if (n > remaining()) {
    return Status::OutOfRange(StrPrintf(
        "truncated read in %s at offset %zu: need %zu bytes, have %zu",
        section_.c_str(), pos_, n, remaining()));
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::ReadU8(uint8_t* out) {
  const char* p;
  Status s = Take(1, &p);
  if (!s.ok()) return s;
  *out = static_cast<uint8_t>(*p);
  return Status::Ok();
}

Status ByteReader::ReadU16(uint16_t* out) {
  const char* p;
  Status s = Take(2, &p);
  if (!s.ok()) return s;
  *out = LoadLe<uint16_t>(p);
  return Status::Ok();
}

Status ByteReader::ReadU32(uint32_t* out) {
  const char* p;
  Status s = Take(4, &p);
  if (!s.ok()) return s;
  *out = LoadLe<uint32_t>(p);
  return Status::Ok();
}

Status ByteReader::ReadU64(uint64_t* out) {
  const char* p;
  Status s = Take(8, &p);
  if (!s.ok()) return s;
  *out = LoadLe<uint64_t>(p);
  return Status::Ok();
}

Status ByteReader::ReadI16(int16_t* out) {
  uint16_t v;
  Status s = ReadU16(&v);
  if (!s.ok()) return s;
  *out = static_cast<int16_t>(v);
  return Status::Ok();
}

Status ByteReader::ReadI32(int32_t* out) {
  uint32_t v;
  Status s = ReadU32(&v);
  if (!s.ok()) return s;
  *out = static_cast<int32_t>(v);
  return Status::Ok();
}

Status ByteReader::ReadI64(int64_t* out) {
  uint64_t v;
  Status s = ReadU64(&v);
  if (!s.ok()) return s;
  *out = static_cast<int64_t>(v);
  return Status::Ok();
}

Status ByteReader::ReadF64(double* out) {
  uint64_t v;
  Status s = ReadU64(&v);
  if (!s.ok()) return s;
  *out = std::bit_cast<double>(v);
  return Status::Ok();
}

Status ByteReader::ReadString(std::string* out) {
  uint64_t length;
  Status s = ReadU64(&length);
  if (!s.ok()) return s;
  if (length > remaining()) {
    pos_ -= 8;  // leave the cursor where the caller can diagnose it
    return Status::OutOfRange(StrPrintf(
        "truncated string in %s at offset %zu: declared %llu bytes, "
        "have %zu",
        section_.c_str(), pos_, static_cast<unsigned long long>(length),
        remaining() - 8));
  }
  const char* p;
  s = Take(static_cast<size_t>(length), &p);
  if (!s.ok()) return s;
  out->assign(p, static_cast<size_t>(length));
  return Status::Ok();
}

Status ByteReader::Seek(size_t pos) {
  if (pos > data_.size()) {
    return Status::OutOfRange(StrPrintf(
        "seek in %s to offset %zu past end %zu", section_.c_str(), pos,
        data_.size()));
  }
  pos_ = pos;
  return Status::Ok();
}

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = 0xffffffffu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace graphsig::util
