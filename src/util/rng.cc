#include "util/rng.h"

#include <cmath>

namespace graphsig::util {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  GS_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  GS_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  GS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    GS_CHECK_GE(w, 0.0);
    total += w;
  }
  GS_CHECK_GT(total, 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Numerical edge: return last index with positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace graphsig::util
