#ifndef GRAPHSIG_UTIL_STATUS_H_
#define GRAPHSIG_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace graphsig::util {

// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kParseError,
};

// Returns a stable human-readable name for `code` ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

// Lightweight success-or-error value used by all recoverable operations in
// the library (parsing, file I/O, user-supplied configuration). Invariant
// violations use GS_CHECK instead; exceptions never cross public APIs.
class Status {
 public:
  // Success.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A Status plus a value of type T on success.
template <typename T>
class Result {
 public:
  // Implicit construction from a value (success) and from a Status (error)
  // keeps call sites terse: `return value;` / `return Status::...;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace graphsig::util

#endif  // GRAPHSIG_UTIL_STATUS_H_
