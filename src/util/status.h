#ifndef GRAPHSIG_UTIL_STATUS_H_
#define GRAPHSIG_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace graphsig::util {

// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kParseError,
  // The two transient network conditions (src/net/): the peer is
  // temporarily unable to take the request (backpressure, connection
  // refused) vs. the request ran out of time. Callers retry the former,
  // usually give up on the latter.
  kUnavailable,
  kDeadlineExceeded,
};

// Returns a stable human-readable name for `code` ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

// Lightweight success-or-error value used by all recoverable operations in
// the library (parsing, file I/O, user-supplied configuration). Invariant
// violations use GS_CHECK instead; exceptions never cross public APIs.
//
// The class is [[nodiscard]]: any call that produces a Status and drops
// it on the floor is a compile error under -Werror=unused-result (on by
// default, see the root CMakeLists). Callers that genuinely cannot act
// on a failure spell that out with a cast to void and a comment.
class [[nodiscard]] Status {
 public:
  // Success.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A Status plus a value of type T on success. [[nodiscard]] for the same
// reason as Status: a dropped Result is a dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value (success) and from a Status (error)
  // keeps call sites terse: `return value;` / `return Status::...;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace graphsig::util

// Propagates a failed Status to the caller. `expr` is evaluated once.
//
//   GS_RETURN_IF_ERROR(reader->ReadU32(&count));
#define GS_RETURN_IF_ERROR(expr)                      \
  do {                                                \
    ::graphsig::util::Status gs_status_ = (expr);     \
    if (!gs_status_.ok()) return gs_status_;          \
  } while (0)

#define GS_INTERNAL_CONCAT2(a, b) a##b
#define GS_INTERNAL_CONCAT(a, b) GS_INTERNAL_CONCAT2(a, b)

// Unwraps a Result<T> into `lhs` or propagates its Status. `lhs` may be
// a declaration ("auto db") or an existing lvalue.
//
//   GS_ASSIGN_OR_RETURN(auto db, graph::DecodeDatabase(&reader));
#define GS_ASSIGN_OR_RETURN(lhs, expr)                                  \
  auto GS_INTERNAL_CONCAT(gs_result_, __LINE__) = (expr);               \
  if (!GS_INTERNAL_CONCAT(gs_result_, __LINE__).ok()) {                 \
    return GS_INTERNAL_CONCAT(gs_result_, __LINE__).status();           \
  }                                                                     \
  lhs = std::move(GS_INTERNAL_CONCAT(gs_result_, __LINE__)).value()

#endif  // GRAPHSIG_UTIL_STATUS_H_
