#include "stats/distributions.h"

#include <cmath>

#include "util/check.h"

namespace graphsig::stats {
namespace {

// std::lgamma writes the process-global `signgam`, so concurrent
// p-value evaluations (FVMine groups, graph-space tasks) race on it.
// lgamma_r is the reentrant variant; fall back to std::lgamma where it
// is unavailable (single-threaded correctness is unaffected either way).
inline double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

// Continued-fraction kernel for the incomplete beta function
// (Numerical Recipes' betacf, modified Lentz method).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 500;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double LogBinomialCoefficient(int64_t n, int64_t k) {
  GS_CHECK_GE(k, 0);
  GS_CHECK_LE(k, n);
  return LogGamma(static_cast<double>(n) + 1.0) -
         LogGamma(static_cast<double>(k) + 1.0) -
         LogGamma(static_cast<double>(n - k) + 1.0);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  GS_CHECK_GT(a, 0.0);
  GS_CHECK_GT(b, 0.0);
  GS_CHECK_GE(x, 0.0);
  GS_CHECK_LE(x, 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = LogGamma(a + b) - LogGamma(a) -
                           LogGamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
  // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to stay in the
  // fast-converging regime of the continued fraction.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(log_front) * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - std::exp(log_front) * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double BinomialPmf(int64_t n, int64_t k, double p) {
  GS_CHECK_GE(n, 0);
  if (k < 0 || k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = LogBinomialCoefficient(n, k) +
                         k * std::log(p) + (n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double BinomialUpperTail(int64_t n, int64_t k, double p) {
  GS_CHECK_GE(n, 0);
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  if (p <= 0.0) return 0.0;  // k >= 1 but X is surely 0
  if (p >= 1.0) return 1.0;  // X is surely n >= k
  // P[X >= k] = I_p(k, n - k + 1).
  return RegularizedIncompleteBeta(static_cast<double>(k),
                                   static_cast<double>(n - k + 1), p);
}

double NormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double BinomialUpperTailNormal(int64_t n, int64_t k, double p) {
  GS_CHECK_GE(n, 0);
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  const double mean = n * p;
  const double stddev = std::sqrt(n * p * (1.0 - p));
  if (stddev == 0.0) return mean >= k ? 1.0 : 0.0;
  // Continuity correction: P[X >= k] ~ P[Z >= (k - 0.5 - mean) / sd].
  const double z = (static_cast<double>(k) - 0.5 - mean) / stddev;
  return 1.0 - NormalCdf(z);
}

}  // namespace graphsig::stats
