#ifndef GRAPHSIG_STATS_PVALUE_MODEL_H_
#define GRAPHSIG_STATS_PVALUE_MODEL_H_

#include <cstdint>
#include <vector>

#include "features/feature_vector.h"
#include "features/packed_vector_set.h"

namespace graphsig::stats {

// The statistical model of Section III. Feature priors P(y_i >= v) are
// estimated empirically from a vector population (one label group D_a in
// GraphSig). Under feature independence (Eqn. 4), the probability that a
// random vector dominates a sub-feature vector x is the product of the
// per-feature upper-tail priors; the support of x over m random vectors
// is then Binomial(m, P(x)) and the p-value is the exact upper tail
// (Eqns. 5-6).
class FeaturePriors {
 public:
  // Builds priors from a packed population (the production path: FVMine
  // and pattern scoring hand the same PackedVectorSet to both priors and
  // search). `bins` is the discretization bin count (values in [0, bins]).
  FeaturePriors(const features::PackedVectorSet& population, int bins);

  // Builds priors from a contiguous population; all vectors must share
  // one width.
  FeaturePriors(const std::vector<features::FeatureVec>& population,
                int bins);

  // Number of vectors the priors were estimated from (m).
  int64_t population_size() const { return population_size_; }
  size_t num_features() const { return tail_counts_.size(); }
  int bins() const { return bins_; }

  // Empirical P(y_i >= value) for one feature slot.
  double FeatureTailProbability(size_t slot, int value) const;

  // P(x): probability that a random vector is a super-vector of x
  // (Eqn. 4). Slots with x_i == 0 contribute probability 1.
  double ProbRandomSuperVector(const features::FeatureVec& x) const;
  double ProbRandomSuperVector(const features::PackedSlice& x) const;

  // Exact p-value of observing support >= observed_support over a
  // population of population_size() random vectors (Eqn. 6).
  double PValue(const features::FeatureVec& x,
                int64_t observed_support) const;
  double PValue(const features::PackedSlice& x,
                int64_t observed_support) const;

  // Minimum achievable p-value of x over this population: the exact
  // tail at the most extreme outcome (support = m), which is P(x)^m.
  // This is Tarone's testability statistic psi(x) (stream/tarone.h):
  // psi(x) <= PValue(x, s) for every achievable support s, so a vector
  // with psi > delta can never be significant at level delta.
  double MinAchievablePValue(const features::FeatureVec& x) const;
  double MinAchievablePValue(const features::PackedSlice& x) const;

  // Normal-approximation p-value (for large m*P; exposed for the
  // approximation-quality tests and as a faster alternative).
  double PValueNormal(const features::FeatureVec& x,
                      int64_t observed_support) const;
  double PValueNormal(const features::PackedSlice& x,
                      int64_t observed_support) const;

  // The paper's hybrid (Section III-B): the normal approximation when
  // both m*P(x) and m*(1-P(x)) exceed `large_threshold`, the exact
  // binomial tail otherwise.
  double PValueAuto(const features::FeatureVec& x, int64_t observed_support,
                    double large_threshold = 50.0) const;
  double PValueAuto(const features::PackedSlice& x, int64_t observed_support,
                    double large_threshold = 50.0) const;

 private:
  void CountValue(size_t slot, int value);
  void FinalizeTailCounts();
  double PValueAutoFromProb(double p, int64_t observed_support,
                            double large_threshold) const;

  int bins_;
  int64_t population_size_;
  // tail_counts_[slot][v] = number of vectors with value >= v; the v = 0
  // entry is always population_size_.
  std::vector<std::vector<int64_t>> tail_counts_;
};

}  // namespace graphsig::stats

#endif  // GRAPHSIG_STATS_PVALUE_MODEL_H_
