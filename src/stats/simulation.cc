#include "stats/simulation.h"

#include "graph/isomorphism.h"
#include "util/check.h"
#include "util/timer.h"

namespace graphsig::stats {

graph::Graph RandomizeGraph(const graph::Graph& g, util::Rng* rng,
                            int swaps_per_edge) {
  GS_CHECK(rng != nullptr);
  if (g.num_edges() < 2) return g;

  // Mutable edge list; adjacency is rebuilt at the end.
  std::vector<graph::EdgeRecord> edges = g.edges();
  auto has_edge = [&](graph::VertexId a, graph::VertexId b) {
    for (const graph::EdgeRecord& e : edges) {
      if ((e.u == a && e.v == b) || (e.u == b && e.v == a)) return true;
    }
    return false;
  };

  const int attempts = swaps_per_edge * g.num_edges();
  for (int t = 0; t < attempts; ++t) {
    const size_t i = rng->NextBounded(edges.size());
    const size_t j = rng->NextBounded(edges.size());
    if (i == j) continue;
    graph::EdgeRecord& a = edges[i];
    graph::EdgeRecord& b = edges[j];
    // Swap to (a.u - b.v) and (b.u - a.v); endpoints must stay distinct
    // and the new edges must not already exist.
    if (a.u == b.v || b.u == a.v) continue;
    if (a.u == b.u || a.v == b.v) continue;  // swap would be a no-op pair
    if (has_edge(a.u, b.v) || has_edge(b.u, a.v)) continue;
    std::swap(a.v, b.v);  // edge labels stay with their records
  }

  graph::Graph out(g.id());
  out.set_tag(g.tag());
  for (graph::Label l : g.vertex_labels()) out.AddVertex(l);
  for (const graph::EdgeRecord& e : edges) out.AddEdge(e.u, e.v, e.label);
  return out;
}

graph::GraphDatabase RandomizeDatabase(const graph::GraphDatabase& db,
                                       util::Rng* rng,
                                       int swaps_per_edge) {
  graph::GraphDatabase out;
  out.Reserve(db.size());
  for (const graph::Graph& g : db.graphs()) {
    out.Add(RandomizeGraph(g, rng, swaps_per_edge));
  }
  return out;
}

SimulatedPValue SimulatePatternPValue(const graph::GraphDatabase& db,
                                      const graph::Graph& pattern,
                                      int num_databases, uint64_t seed,
                                      int swaps_per_edge) {
  GS_CHECK_GT(num_databases, 0);
  util::WallTimer timer;
  SimulatedPValue result;
  result.num_databases = num_databases;
  for (const graph::Graph& g : db.graphs()) {
    result.observed_support += graph::IsSubgraphIsomorphic(pattern, g);
  }
  util::Rng rng(seed);
  for (int t = 0; t < num_databases; ++t) {
    graph::GraphDatabase randomized =
        RandomizeDatabase(db, &rng, swaps_per_edge);
    int64_t support = 0;
    for (const graph::Graph& g : randomized.graphs()) {
      support += graph::IsSubgraphIsomorphic(pattern, g);
    }
    if (support >= result.observed_support) ++result.exceed_count;
  }
  // Add-one smoothing: the estimator can never claim less than
  // 1/(N+1) — exactly the resolution limit the paper criticizes.
  result.p_value = static_cast<double>(result.exceed_count + 1) /
                   static_cast<double>(num_databases + 1);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace graphsig::stats
