#include "stats/pvalue_model.h"

#include <cmath>

#include "stats/distributions.h"
#include "util/check.h"

namespace graphsig::stats {

FeaturePriors::FeaturePriors(const features::PackedVectorSet& population,
                             int bins)
    : bins_(bins),
      population_size_(static_cast<int64_t>(population.size())) {
  GS_CHECK(!population.empty());
  GS_CHECK_GT(bins, 0);
  const size_t width = population.width();
  tail_counts_.assign(width,
                      std::vector<int64_t>(static_cast<size_t>(bins) + 1, 0));
  for (size_t i = 0; i < population.size(); ++i) {
    const features::PackedSlice row = population.slice(static_cast<int32_t>(i));
    for (size_t slot = 0; slot < width; ++slot) {
      CountValue(slot, row.slot(slot));
    }
  }
  FinalizeTailCounts();
}

FeaturePriors::FeaturePriors(
    const std::vector<features::FeatureVec>& population, int bins)
    : bins_(bins),
      population_size_(static_cast<int64_t>(population.size())) {
  GS_CHECK(!population.empty());
  GS_CHECK_GT(bins, 0);
  const size_t width = population[0].size();
  tail_counts_.assign(width,
                      std::vector<int64_t>(static_cast<size_t>(bins) + 1, 0));
  for (const features::FeatureVec& vec : population) {
    GS_CHECK_EQ(vec.size(), width);
    for (size_t slot = 0; slot < width; ++slot) {
      CountValue(slot, vec[slot]);
    }
  }
  FinalizeTailCounts();
}

void FeaturePriors::CountValue(size_t slot, int value) {
  GS_CHECK_GE(value, 0);
  GS_CHECK_LE(value, bins_);
  // Count the exact value; converted to tail counts in FinalizeTailCounts.
  ++tail_counts_[slot][value];
}

void FeaturePriors::FinalizeTailCounts() {
  // Suffix-sum each slot: tail[v] = #vectors with value >= v.
  for (auto& slot_counts : tail_counts_) {
    for (int v = bins_ - 1; v >= 0; --v) {
      slot_counts[v] += slot_counts[v + 1];
    }
    GS_CHECK_EQ(slot_counts[0], population_size_);
  }
}

double FeaturePriors::FeatureTailProbability(size_t slot, int value) const {
  GS_CHECK_LT(slot, tail_counts_.size());
  if (value <= 0) return 1.0;
  if (value > bins_) return 0.0;
  return static_cast<double>(tail_counts_[slot][value]) /
         static_cast<double>(population_size_);
}

double FeaturePriors::ProbRandomSuperVector(
    const features::FeatureVec& x) const {
  GS_CHECK_EQ(x.size(), tail_counts_.size());
  double prob = 1.0;
  for (size_t slot = 0; slot < x.size(); ++slot) {
    if (x[slot] > 0) {
      prob *= FeatureTailProbability(slot, x[slot]);
      if (prob == 0.0) break;
    }
  }
  return prob;
}

double FeaturePriors::ProbRandomSuperVector(
    const features::PackedSlice& x) const {
  GS_CHECK_EQ(x.width, tail_counts_.size());
  double prob = 1.0;
  for (size_t slot = 0; slot < x.width; ++slot) {
    const int16_t value = x.slot(slot);
    if (value > 0) {
      prob *= FeatureTailProbability(slot, value);
      if (prob == 0.0) break;
    }
  }
  return prob;
}

double FeaturePriors::PValue(const features::FeatureVec& x,
                             int64_t observed_support) const {
  const double p = ProbRandomSuperVector(x);
  return BinomialUpperTail(population_size_, observed_support, p);
}

double FeaturePriors::PValue(const features::PackedSlice& x,
                             int64_t observed_support) const {
  const double p = ProbRandomSuperVector(x);
  return BinomialUpperTail(population_size_, observed_support, p);
}

double FeaturePriors::MinAchievablePValue(
    const features::FeatureVec& x) const {
  // The tail at support = m collapses to P(X >= m) = P(x)^m.
  return std::pow(ProbRandomSuperVector(x),
                  static_cast<double>(population_size_));
}

double FeaturePriors::MinAchievablePValue(
    const features::PackedSlice& x) const {
  return std::pow(ProbRandomSuperVector(x),
                  static_cast<double>(population_size_));
}

double FeaturePriors::PValueNormal(const features::FeatureVec& x,
                                   int64_t observed_support) const {
  const double p = ProbRandomSuperVector(x);
  return BinomialUpperTailNormal(population_size_, observed_support, p);
}

double FeaturePriors::PValueNormal(const features::PackedSlice& x,
                                   int64_t observed_support) const {
  const double p = ProbRandomSuperVector(x);
  return BinomialUpperTailNormal(population_size_, observed_support, p);
}

double FeaturePriors::PValueAutoFromProb(double p, int64_t observed_support,
                                         double large_threshold) const {
  const double m = static_cast<double>(population_size_);
  if (m * p >= large_threshold && m * (1.0 - p) >= large_threshold) {
    return BinomialUpperTailNormal(population_size_, observed_support, p);
  }
  return BinomialUpperTail(population_size_, observed_support, p);
}

double FeaturePriors::PValueAuto(const features::FeatureVec& x,
                                 int64_t observed_support,
                                 double large_threshold) const {
  return PValueAutoFromProb(ProbRandomSuperVector(x), observed_support,
                            large_threshold);
}

double FeaturePriors::PValueAuto(const features::PackedSlice& x,
                                 int64_t observed_support,
                                 double large_threshold) const {
  return PValueAutoFromProb(ProbRandomSuperVector(x), observed_support,
                            large_threshold);
}

}  // namespace graphsig::stats
