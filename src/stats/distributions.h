#ifndef GRAPHSIG_STATS_DISTRIBUTIONS_H_
#define GRAPHSIG_STATS_DISTRIBUTIONS_H_

#include <cstdint>

namespace graphsig::stats {

// log(n choose k); requires 0 <= k <= n.
double LogBinomialCoefficient(int64_t n, int64_t k);

// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
// x in [0, 1], via the Lentz continued fraction in log space. Accurate to
// ~1e-12 over the ranges the p-value model uses.
double RegularizedIncompleteBeta(double a, double b, double x);

// P[X = k] for X ~ Binomial(n, p).
double BinomialPmf(int64_t n, int64_t k, double p);

// Exact upper tail P[X >= k] for X ~ Binomial(n, p), computed as
// I_p(k, n - k + 1) (Eqn. 6 of the paper reduces to this). k <= 0
// returns 1; k > n returns 0.
double BinomialUpperTail(int64_t n, int64_t k, double p);

// Standard normal CDF.
double NormalCdf(double z);

// Normal approximation to the binomial upper tail with continuity
// correction; the paper notes this is usable when n*p and n*(1-p) are
// both large.
double BinomialUpperTailNormal(int64_t n, int64_t k, double p);

}  // namespace graphsig::stats

#endif  // GRAPHSIG_STATS_DISTRIBUTIONS_H_
