#ifndef GRAPHSIG_STATS_SIMULATION_H_
#define GRAPHSIG_STATS_SIMULATION_H_

#include <cstdint>

#include "graph/graph_database.h"
#include "util/rng.h"

namespace graphsig::stats {

// The simulation approach GraphSig argues against (Section VII, Milo et
// al.): estimate a pattern's p-value by generating many randomized
// databases that preserve each graph's degree sequence and labels, and
// counting how often the pattern's support meets the observed one. This
// baseline exists to (a) validate the analytical feature-space model and
// (b) measure the cost gap the paper claims.

// Degree-preserving randomization of one graph: repeated double edge
// swaps (u1-v1, u2-v2) -> (u1-v2, u2-v1) that keep the graph simple.
// Vertex labels and degrees are preserved exactly; edge labels travel
// with the swapped edges. `swaps_per_edge` controls mixing (default 10).
graph::Graph RandomizeGraph(const graph::Graph& g, util::Rng* rng,
                            int swaps_per_edge = 10);

// Randomizes every graph in the database.
graph::GraphDatabase RandomizeDatabase(const graph::GraphDatabase& db,
                                       util::Rng* rng,
                                       int swaps_per_edge = 10);

struct SimulatedPValue {
  int64_t observed_support = 0;   // support in the real database
  int64_t exceed_count = 0;       // randomized DBs with support >= observed
  int64_t num_databases = 0;
  double p_value = 1.0;           // (exceed + 1) / (num + 1)
  double seconds = 0.0;
};

// Estimates P[support >= observed] over `num_databases` randomized
// copies. Resolution is bounded below by 1/(num_databases + 1) — the
// imprecision for small p-values the paper points out.
SimulatedPValue SimulatePatternPValue(const graph::GraphDatabase& db,
                                      const graph::Graph& pattern,
                                      int num_databases, uint64_t seed,
                                      int swaps_per_edge = 10);

}  // namespace graphsig::stats

#endif  // GRAPHSIG_STATS_SIMULATION_H_
