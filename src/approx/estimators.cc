#include "approx/estimators.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <utility>

#include "fsm/dfs_code.h"
#include "graph/isomorphism.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/strings.h"

namespace graphsig::approx {

namespace {

// Deterministic work accumulated locally per estimator call and flushed
// to the global registry once at the end — the counters are part of the
// byte-identical-across-thread-counts contract, so per-unit tallies are
// summed in unit-index order like every other merge here.
struct WorkTally {
  uint64_t samples_drawn = 0;
  uint64_t walk_steps = 0;
  uint64_t iso_tests = 0;
};

void FlushWork(const WorkTally& tally) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const samples =
      registry.GetCounter("approx/samples_drawn");
  static obs::Counter* const steps =
      registry.GetCounter("approx/walk_steps");
  static obs::Counter* const iso = registry.GetCounter("approx/iso_tests");
  samples->Add(tally.samples_drawn);
  steps->Add(tally.walk_steps);
  iso->Add(tally.iso_tests);
}

int ResolveThreads(int num_threads) {
  return num_threads <= 0 ? util::HardwareThreads() : num_threads;
}

util::Status ValidateCommon(const graph::GraphDatabase& db, int32_t units,
                            const char* units_name, double confidence) {
  if (db.empty()) {
    return util::Status::InvalidArgument(
        "approx estimators need a non-empty database");
  }
  if (units <= 0) {
    return util::Status::InvalidArgument(
        util::StrPrintf("%s must be positive", units_name));
  }
  // The negated comparison also rejects NaN.
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return util::Status::InvalidArgument(
        "confidence must be strictly inside (0, 1)");
  }
  return util::Status::Ok();
}

// Per-unit RNG streams, derived from the root seed BEFORE any parallel
// work: unit i always sees stream i no matter how ParallelFor schedules
// the indices, which is the whole determinism story.
std::vector<uint64_t> DrawUnitSeeds(util::Rng* root, int32_t count) {
  std::vector<uint64_t> seeds(static_cast<size_t>(count));
  for (auto& seed : seeds) seed = root->NextU64();
  return seeds;
}

}  // namespace

util::Result<SupportEstimate> EstimateSupport(const graph::GraphDatabase& db,
                                              const graph::Graph& pattern,
                                              const SupportConfig& config) {
  GS_RETURN_IF_ERROR(ValidateCommon(db, config.num_samples, "num_samples",
                                    config.confidence));
  const size_t n = static_cast<size_t>(config.num_samples);
  util::Rng root(config.seed);
  std::vector<size_t> picks(n);
  for (auto& pick : picks) pick = root.NextBounded(db.size());

  // One exact isomorphism test per sampled graph; each unit writes only
  // its own slot.
  std::vector<uint8_t> hit(n, 0);
  util::ParallelFor(ResolveThreads(config.num_threads), n, [&](size_t i) {
    hit[i] = graph::IsSubgraphIsomorphic(pattern, db.graph(picks[i])) ? 1 : 0;
  });

  SupportEstimate estimate;
  estimate.num_samples = config.num_samples;
  for (size_t i = 0; i < n; ++i) estimate.hits += hit[i];
  estimate.fraction =
      static_cast<double>(estimate.hits) / static_cast<double>(n);
  estimate.fraction_ci =
      WilsonInterval(estimate.hits, config.num_samples, config.confidence);
  const double db_size = static_cast<double>(db.size());
  estimate.support = estimate.fraction * db_size;
  estimate.support_ci = Scale(estimate.fraction_ci, db_size);

  WorkTally tally;
  tally.samples_drawn = n;
  tally.iso_tests = n;
  FlushWork(tally);
  return estimate;
}

namespace {

// Static walk plan for one pattern: a BFS vertex order rooted at vertex
// 0, the already-placed anchor each new vertex waddles out from, and
// every pattern edge back into the placed prefix (including the anchor
// edge itself) that a candidate image vertex must reproduce.
struct WaddlePlan {
  std::vector<graph::VertexId> order;
  std::vector<int> anchor_pos;  // position of the BFS parent; [0] unused
  std::vector<std::vector<std::pair<int, graph::Label>>> back_edges;
};

WaddlePlan BuildWaddlePlan(const graph::Graph& pattern) {
  const int n = pattern.num_vertices();
  WaddlePlan plan;
  plan.order.reserve(n);
  plan.anchor_pos.assign(n, -1);
  plan.back_edges.resize(n);
  std::vector<int> pos_of(n, -1);
  plan.order.push_back(0);
  pos_of[0] = 0;
  for (size_t head = 0; head < plan.order.size(); ++head) {
    const graph::VertexId u = plan.order[head];
    for (const graph::AdjEntry& e : pattern.neighbors(u)) {
      if (pos_of[e.to] != -1) continue;
      const int k = static_cast<int>(plan.order.size());
      pos_of[e.to] = k;
      plan.anchor_pos[k] = static_cast<int>(head);
      plan.order.push_back(e.to);
    }
  }
  GS_CHECK_EQ(plan.order.size(), static_cast<size_t>(n));  // connected
  for (int k = 1; k < n; ++k) {
    const graph::VertexId v = plan.order[k];
    for (const graph::AdjEntry& e : pattern.neighbors(v)) {
      if (pos_of[e.to] < k) {
        plan.back_edges[k].emplace_back(pos_of[e.to], e.label);
      }
    }
    std::sort(plan.back_edges[k].begin(), plan.back_edges[k].end());
  }
  return plan;
}

// One waddling walk: grow a candidate embedding in plan order, stepping
// to a uniform neighbor of the anchor at each position. Returns the
// inverse-probability weight on success (the estimator of the TOTAL
// embedding count, |db| * n_g * prod(anchor degrees)), 0 on any dead
// end or constraint violation. Each walk owns its Rng, so where a walk
// bails never affects any other walk's stream.
double RunWaddle(const graph::GraphDatabase& db, const graph::Graph& pattern,
                 const WaddlePlan& plan, util::Rng* rng, uint64_t* steps) {
  const graph::Graph& g = db.graph(rng->NextBounded(db.size()));
  const int n = g.num_vertices();
  if (n == 0) return 0.0;
  double weight = static_cast<double>(db.size()) * static_cast<double>(n);
  const int p = static_cast<int>(plan.order.size());
  std::vector<graph::VertexId> image(p, -1);
  const graph::VertexId w0 =
      static_cast<graph::VertexId>(rng->NextBounded(n));
  if (g.vertex_label(w0) != pattern.vertex_label(plan.order[0])) return 0.0;
  image[0] = w0;
  for (int k = 1; k < p; ++k) {
    const graph::VertexId anchor = image[plan.anchor_pos[k]];
    const auto& adj = g.neighbors(anchor);
    if (adj.empty()) return 0.0;
    ++*steps;
    const graph::VertexId w = adj[rng->NextBounded(adj.size())].to;
    weight *= static_cast<double>(adj.size());
    if (g.vertex_label(w) != pattern.vertex_label(plan.order[k])) return 0.0;
    for (int j = 0; j < k; ++j) {
      if (image[j] == w) return 0.0;  // embeddings are injective
    }
    for (const auto& [pos, edge_label] : plan.back_edges[k]) {
      if (g.EdgeLabelBetween(image[pos], w) != edge_label) return 0.0;
    }
    image[k] = w;
  }
  return weight;
}

}  // namespace

util::Result<FrequencyEstimate> EstimateFrequency(
    const graph::GraphDatabase& db, const graph::Graph& pattern,
    const FrequencyConfig& config) {
  GS_RETURN_IF_ERROR(
      ValidateCommon(db, config.num_walks, "num_walks", config.confidence));
  if (pattern.num_vertices() == 0) {
    return util::Status::InvalidArgument(
        "frequency estimation needs a non-empty pattern");
  }
  if (!pattern.IsConnected()) {
    return util::Status::InvalidArgument(
        "frequency estimation needs a connected pattern (walks grow "
        "along pattern edges)");
  }
  const WaddlePlan plan = BuildWaddlePlan(pattern);
  const size_t t = static_cast<size_t>(config.num_walks);
  util::Rng root(config.seed);
  const std::vector<uint64_t> seeds = DrawUnitSeeds(&root, config.num_walks);

  std::vector<double> weights(t, 0.0);
  std::vector<uint64_t> steps(t, 0);
  util::ParallelFor(ResolveThreads(config.num_threads), t, [&](size_t i) {
    util::Rng rng(seeds[i]);
    weights[i] = RunWaddle(db, pattern, plan, &rng, &steps[i]);
  });

  // Mean and variance in walk-index order: floating-point sums are
  // order-sensitive, and this order never depends on the thread count.
  double sum = 0.0;
  FrequencyEstimate estimate;
  estimate.num_walks = config.num_walks;
  WorkTally tally;
  tally.samples_drawn = t;
  for (size_t i = 0; i < t; ++i) {
    sum += weights[i];
    if (weights[i] > 0.0) ++estimate.hits;
    tally.walk_steps += steps[i];
  }
  const double mean = sum / static_cast<double>(t);
  double variance = 0.0;
  if (t >= 2) {
    double squared = 0.0;
    for (const double w : weights) squared += (w - mean) * (w - mean);
    variance = squared / static_cast<double>(t - 1);
  }
  estimate.embeddings = mean;
  estimate.ci =
      MeanInterval(mean, variance, config.num_walks, config.confidence);
  // A count is non-negative even when the normal tail dips below zero.
  estimate.ci.lo = std::max(0.0, estimate.ci.lo);
  FlushWork(tally);
  return estimate;
}

namespace {

// One FS^3 sample: pick a database graph, seed with a uniform edge, and
// grow by uniform frontier edges until `edge_budget` edges are chosen
// or the frontier dies. Returns the edge-induced subgraph (connected by
// construction) or nullopt for an undersized sample.
std::optional<graph::Graph> SampleSubgraph(const graph::GraphDatabase& db,
                                           int32_t edge_budget,
                                           util::Rng* rng, uint64_t* steps) {
  const graph::Graph& g = db.graph(rng->NextBounded(db.size()));
  if (g.num_edges() == 0) return std::nullopt;
  std::vector<int32_t> chosen;
  std::vector<uint8_t> edge_in(g.num_edges(), 0);
  std::vector<graph::VertexId> verts;
  std::vector<uint8_t> vert_in(g.num_vertices(), 0);
  const auto take = [&](int32_t e) {
    chosen.push_back(e);
    edge_in[e] = 1;
    for (const graph::VertexId v : {g.edge(e).u, g.edge(e).v}) {
      if (!vert_in[v]) {
        vert_in[v] = 1;
        verts.push_back(v);
      }
    }
  };
  take(static_cast<int32_t>(rng->NextBounded(g.num_edges())));
  std::vector<int32_t> frontier;
  std::vector<uint8_t> seen(g.num_edges(), 0);
  while (static_cast<int32_t>(chosen.size()) < edge_budget) {
    // Rebuilt each round in vertex insertion order, so the candidate
    // list (and the draw it feeds) is a pure function of the walk so
    // far.
    frontier.clear();
    std::fill(seen.begin(), seen.end(), 0);
    for (const graph::VertexId v : verts) {
      for (const graph::AdjEntry& e : g.neighbors(v)) {
        if (!edge_in[e.edge_index] && !seen[e.edge_index]) {
          seen[e.edge_index] = 1;
          frontier.push_back(e.edge_index);
        }
      }
    }
    if (frontier.empty()) return std::nullopt;
    ++*steps;
    take(frontier[rng->NextBounded(frontier.size())]);
  }
  // Edge-induced subgraph over the touched vertices, ascending so the
  // rebuilt graph is a pure function of the chosen edge set.
  std::sort(verts.begin(), verts.end());
  std::sort(chosen.begin(), chosen.end());
  std::vector<int32_t> new_index(g.num_vertices(), -1);
  graph::Graph sub;
  for (size_t i = 0; i < verts.size(); ++i) {
    new_index[verts[i]] = static_cast<int32_t>(i);
    sub.AddVertex(g.vertex_label(verts[i]));
  }
  for (const int32_t e : chosen) {
    sub.AddEdge(new_index[g.edge(e).u], new_index[g.edge(e).v],
                g.edge(e).label);
  }
  return sub;
}

}  // namespace

util::Result<TopKResult> SampleTopK(const graph::GraphDatabase& db,
                                    const TopKConfig& config) {
  GS_RETURN_IF_ERROR(ValidateCommon(db, config.num_samples, "num_samples",
                                    config.confidence));
  if (config.k <= 0) {
    return util::Status::InvalidArgument("k must be positive");
  }
  if (config.subgraph_edges <= 0) {
    return util::Status::InvalidArgument("subgraph_edges must be positive");
  }
  if (config.support_samples <= 0) {
    return util::Status::InvalidArgument(
        "support_samples must be positive");
  }

  const size_t n = static_cast<size_t>(config.num_samples);
  util::Rng root(config.seed);
  const std::vector<uint64_t> sample_seeds =
      DrawUnitSeeds(&root, config.num_samples);
  // Support seeds are drawn for all k slots up front, whether or not
  // the sample pass surfaces that many distinct patterns — the draw
  // count must not depend on the data-driven candidate count.
  const std::vector<uint64_t> support_seeds = DrawUnitSeeds(&root, config.k);

  struct Sample {
    std::string key;
    graph::Graph pattern;
    uint64_t steps = 0;
    bool kept = false;
  };
  std::vector<Sample> samples(n);
  util::ParallelFor(ResolveThreads(config.num_threads), n, [&](size_t i) {
    util::Rng rng(sample_seeds[i]);
    std::optional<graph::Graph> sub = SampleSubgraph(
        db, config.subgraph_edges, &rng, &samples[i].steps);
    if (!sub.has_value()) return;
    samples[i].key = fsm::CanonicalCode(*sub);
    samples[i].pattern = std::move(*sub);
    samples[i].kept = true;
  });

  TopKResult result;
  result.samples_drawn = config.num_samples;
  WorkTally tally;
  tally.samples_drawn = n;
  // Tally in sample-index order; the exemplar is the first draw of each
  // canonical key, so the reported graphs are thread-count-independent
  // too.
  std::map<std::string, std::pair<int64_t, size_t>> by_key;
  for (size_t i = 0; i < n; ++i) {
    tally.walk_steps += samples[i].steps;
    if (!samples[i].kept) continue;
    ++result.samples_kept;
    auto [it, inserted] = by_key.try_emplace(samples[i].key, 0, i);
    ++it->second.first;
  }
  result.distinct_patterns = static_cast<int64_t>(by_key.size());
  FlushWork(tally);

  std::vector<std::pair<const std::string*, std::pair<int64_t, size_t>>>
      ranked;
  ranked.reserve(by_key.size());
  for (const auto& [key, entry] : by_key) ranked.emplace_back(&key, entry);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second.first != b.second.first) {
                return a.second.first > b.second.first;
              }
              return *a.first < *b.first;
            });
  const size_t top_n =
      std::min(ranked.size(), static_cast<size_t>(config.k));

  SupportConfig support_config;
  support_config.num_samples = config.support_samples;
  support_config.confidence = config.confidence;
  support_config.num_threads = config.num_threads;
  for (size_t rank = 0; rank < top_n; ++rank) {
    TopKCandidate candidate;
    candidate.canonical_key = *ranked[rank].first;
    candidate.times_sampled = ranked[rank].second.first;
    candidate.pattern = samples[ranked[rank].second.second].pattern;
    support_config.seed = support_seeds[rank];
    // EstimateSupport parallelizes internally; candidates run in rank
    // order so their estimates land deterministically.
    GS_ASSIGN_OR_RETURN(
        candidate.support,
        EstimateSupport(db, candidate.pattern, support_config));
    result.top.push_back(std::move(candidate));
  }
  return result;
}

}  // namespace graphsig::approx
