#ifndef GRAPHSIG_APPROX_ESTIMATORS_H_
#define GRAPHSIG_APPROX_ESTIMATORS_H_

// The approximate mining tier: sampling-based estimators that answer
// support/frequency questions over a graph database without running the
// exact miner, trading exactness for a point estimate plus a confidence
// interval (approx/ci.h). Two estimator designs from the literature:
//
//   * EstimateSupport / SampleTopK — FS^3-style fixed-size sampling
//     (Saha & Al Hasan). Support is a binomial proportion over sampled
//     database graphs; top-k candidates come from sampling fixed-edge-
//     count connected subgraphs and ranking by how often each canonical
//     pattern (fsm::CanonicalCode) was drawn.
//   * EstimateFrequency — Waddling-Random-Walk-style estimation (Han &
//     Sethu): grow one candidate embedding per walk by stepping to
//     uniform neighbors of already-mapped vertices, weight successes by
//     the inverse of their sampling probability, and apply a CLT
//     interval to the per-walk weights. Unbiased for the total number
//     of embeddings (distinct vertex maps, matching CountEmbeddings).
//
// Determinism contract (DESIGN.md §13): every estimator takes an
// explicit seed and derives one independent util::Rng stream per sample
// or walk UP FRONT, so the work each unit does — and therefore the
// result, the merged statistics, and the approx/* work counters — is
// byte-identical for a fixed seed across num_threads values. Merges
// always run sequentially in unit-index order (floating-point sums are
// order-sensitive). Work counters registered with the global registry:
//   approx/samples_drawn   database-graph and subgraph sample draws
//   approx/walk_steps      random-walk steps + subgraph growth steps
//   approx/iso_tests       exact isomorphism tests spent on estimates

#include <cstdint>
#include <string>
#include <vector>

#include "approx/ci.h"
#include "graph/graph.h"
#include "graph/graph_database.h"
#include "util/status.h"

namespace graphsig::approx {

// The two estimator families, as exposed through the wire protocol's
// ApproxQuery message (src/net/wire.h) and graphsig_sample.
enum class ApproxMode : uint8_t {
  kSupport = 0,    // EstimateSupport: binomial support fraction
  kFrequency = 1,  // EstimateFrequency: total embedding count
};

// ---------------------------------------------------------------------
// Support estimation (FS^3-style fixed-size sampling).

struct SupportConfig {
  uint64_t seed = 1;
  // Database graphs sampled (with replacement); one exact isomorphism
  // test each.
  int32_t num_samples = 256;
  // Nominal two-sided coverage, strictly inside (0, 1).
  double confidence = 0.95;
  // 0 = one worker per hardware thread. Results never depend on this.
  int num_threads = 1;
};

struct SupportEstimate {
  // Sampled graphs that contained the pattern.
  int64_t hits = 0;
  int32_t num_samples = 0;
  // hits / num_samples, and its Wilson score interval.
  double fraction = 0.0;
  ConfidenceInterval fraction_ci;
  // fraction scaled by |database| — the estimated support count.
  double support = 0.0;
  ConfidenceInterval support_ci;
};

// Estimates the support of `pattern` in `db` by sampling graphs with
// replacement. Fails on an empty database or a bad config.
util::Result<SupportEstimate> EstimateSupport(const graph::GraphDatabase& db,
                                              const graph::Graph& pattern,
                                              const SupportConfig& config);

// ---------------------------------------------------------------------
// Frequency (embedding-count) estimation via waddling random walks.

struct FrequencyConfig {
  uint64_t seed = 1;
  // Independent walks; each tries to grow one embedding of the pattern.
  int32_t num_walks = 4096;
  double confidence = 0.95;
  int num_threads = 1;
};

struct FrequencyEstimate {
  // Estimated total embeddings (distinct vertex maps) of the pattern
  // across the whole database, with a CLT interval over walk weights.
  double embeddings = 0.0;
  ConfidenceInterval ci;
  // Walks that completed a valid embedding.
  int64_t hits = 0;
  int32_t num_walks = 0;
};

// Estimates how many embeddings `pattern` has across `db`. The pattern
// must be non-empty and connected (walks grow along pattern edges).
util::Result<FrequencyEstimate> EstimateFrequency(
    const graph::GraphDatabase& db, const graph::Graph& pattern,
    const FrequencyConfig& config);

// ---------------------------------------------------------------------
// Top-k frequent subgraph sampling (FS^3-style).

struct TopKConfig {
  uint64_t seed = 1;
  // Patterns to report.
  int32_t k = 10;
  // Edge count of every sampled subgraph (the FS^3 fixed size).
  int32_t subgraph_edges = 3;
  // Subgraph samples drawn before ranking.
  int32_t num_samples = 2000;
  // Per-candidate support samples (see SupportConfig::num_samples).
  int32_t support_samples = 128;
  double confidence = 0.95;
  int num_threads = 1;
};

struct TopKCandidate {
  // An exemplar of the pattern (the first sampled occurrence).
  graph::Graph pattern;
  // fsm::CanonicalCode key — equal iff isomorphic.
  std::string canonical_key;
  // How many of the kept samples drew this pattern.
  int64_t times_sampled = 0;
  // Independent support estimate for the candidate.
  SupportEstimate support;
};

struct TopKResult {
  // At most k candidates: times_sampled descending, canonical_key
  // ascending as the tie-break.
  std::vector<TopKCandidate> top;
  int64_t samples_drawn = 0;
  // Samples that reached the full subgraph_edges budget (the rest hit a
  // dead end — a graph too small or an exhausted frontier).
  int64_t samples_kept = 0;
  int64_t distinct_patterns = 0;
};

// Samples connected subgraphs of exactly `subgraph_edges` edges (seed
// edge + uniform frontier growth), ranks canonical patterns by draw
// count, and attaches a support estimate to each of the top k.
util::Result<TopKResult> SampleTopK(const graph::GraphDatabase& db,
                                    const TopKConfig& config);

}  // namespace graphsig::approx

#endif  // GRAPHSIG_APPROX_ESTIMATORS_H_
