#include "approx/ci.h"

#include <algorithm>
#include <cmath>

#include "stats/distributions.h"
#include "util/check.h"

namespace graphsig::approx {

double NormalQuantile(double p) {
  GS_CHECK(p > 0.0 && p < 1.0);
  // NormalCdf is monotone, so bisection converges unconditionally; the
  // bracket covers every quantile a representable p can ask for
  // (NormalCdf saturates to 0/1 well inside +/-40).
  double lo = -40.0;
  double hi = 40.0;
  for (int i = 0; i < 200 && hi - lo > 1e-12; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (stats::NormalCdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

ConfidenceInterval WilsonInterval(int64_t successes, int64_t trials,
                                  double confidence) {
  GS_CHECK_GE(trials, 1);
  GS_CHECK_GE(successes, 0);
  GS_CHECK_LE(successes, trials);
  GS_CHECK(confidence > 0.0 && confidence < 1.0);
  const double z = NormalQuantile(1.0 - (1.0 - confidence) / 2.0);
  const double n = static_cast<double>(trials);
  const double p_hat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p_hat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)) / denom;
  ConfidenceInterval ci;
  ci.lo = std::max(0.0, center - half);
  ci.hi = std::min(1.0, center + half);
  ci.confidence = confidence;
  return ci;
}

ConfidenceInterval MeanInterval(double mean, double sample_variance,
                                int64_t n, double confidence) {
  GS_CHECK_GE(n, 1);
  GS_CHECK(confidence > 0.0 && confidence < 1.0);
  ConfidenceInterval ci;
  ci.confidence = confidence;
  if (n < 2 || sample_variance <= 0.0) {
    ci.lo = mean;
    ci.hi = mean;
    return ci;
  }
  const double z = NormalQuantile(1.0 - (1.0 - confidence) / 2.0);
  const double half = z * std::sqrt(sample_variance / static_cast<double>(n));
  ci.lo = mean - half;
  ci.hi = mean + half;
  return ci;
}

ConfidenceInterval Scale(const ConfidenceInterval& ci, double factor) {
  GS_CHECK_GE(factor, 0.0);
  ConfidenceInterval scaled;
  scaled.lo = ci.lo * factor;
  scaled.hi = ci.hi * factor;
  scaled.confidence = ci.confidence;
  return scaled;
}

}  // namespace graphsig::approx
