#ifndef GRAPHSIG_APPROX_CI_H_
#define GRAPHSIG_APPROX_CI_H_

// Confidence-interval arithmetic for the sampling tier (src/approx).
// Every estimator in this subsystem returns a point estimate together
// with one of these intervals; the interval math lives here so the
// coverage test (tests/approx_test.cc) exercises exactly the code the
// estimators ship.
//
// Two interval families cover both estimators:
//   * WilsonInterval — a binomial proportion observed as successes out
//     of trials (the FS^3-style support estimator). Wilson's score
//     interval keeps near-nominal coverage even at p near 0 or 1,
//     where the naive Wald interval collapses.
//   * MeanInterval — a sample mean of i.i.d. draws with a CLT normal
//     approximation (the waddling random-walk frequency estimator,
//     whose per-walk inverse-probability weights are unbounded).
//
// Quantiles come from bisection over stats::NormalCdf, so no second
// normal approximation enters the codebase.

#include <cstdint>

namespace graphsig::approx {

// A two-sided interval with its nominal coverage (e.g. 0.95). The
// bounds are inclusive; Contains is what the coverage test counts.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double confidence = 0.0;

  bool Contains(double value) const { return lo <= value && value <= hi; }

  bool operator==(const ConfidenceInterval&) const = default;
};

// Inverse standard normal CDF: the z with NormalCdf(z) == p. `p` must
// be strictly inside (0, 1). Bisection to ~1e-12, deterministic.
double NormalQuantile(double p);

// Wilson score interval for a binomial proportion after observing
// `successes` out of `trials` (trials >= 1, 0 <= successes <= trials,
// confidence strictly inside (0, 1)). Bounds are clamped to [0, 1].
ConfidenceInterval WilsonInterval(int64_t successes, int64_t trials,
                                  double confidence);

// CLT interval for a sample mean: mean +/- z * sqrt(variance / n),
// where `sample_variance` is the unbiased (n-1 denominator) variance.
// With n == 1 or zero variance the interval degenerates to the point.
ConfidenceInterval MeanInterval(double mean, double sample_variance,
                                int64_t n, double confidence);

// The interval scaled by a non-negative factor (e.g. a sampled
// fraction rescaled to a support count over a database of known size).
ConfidenceInterval Scale(const ConfidenceInterval& ci, double factor);

}  // namespace graphsig::approx

#endif  // GRAPHSIG_APPROX_CI_H_
