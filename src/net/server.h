#ifndef GRAPHSIG_NET_SERVER_H_
#define GRAPHSIG_NET_SERVER_H_

// The GraphSig query server: N non-blocking epoll event loops feeding
// decoded requests to worker pools (DESIGN.md §17).
//
// Architecture (one box per thread role; multiply the left box by
// ServerConfig::num_loops):
//
//   event loop (one thread each)         workers (per-loop or shared)
//   ----------------------------         -------------------------
//   read / frame-split on OWN conns -->  decode payload, run the
//   per-loop admission control           catalog query, encode the
//   write replies, close, drain    <--   reply frame
//
// Accept sharding: loop 0 owns the listener and assigns each accepted
// connection to a loop round-robin; from then on exactly one loop owns
// that Connection for its whole lifetime (non-local assignments travel
// through a small mutex-guarded handoff queue plus the target loop's
// eventfd). Workers never touch a Connection. A dispatched request
// carries only (connection id, frame bytes); the finished reply comes
// back through the owning loop's completion queue, and the loop
// matches it to the connection — or drops it if the peer is gone. That
// split keeps all per-connection state single-threaded (no locks, no
// torn states) while queries themselves run concurrently.
//
// num_loops = 1 (the default) is byte-for-byte the original topology:
// one loop, no handoffs. Replies are pure functions of (request,
// catalog snapshot) either way, so the loop count — like the shard and
// worker counts — can never change what a client reads back.
//
// Backpressure is explicit and per loop: at most max_inflight_requests
// frames may be queued-or-executing per loop at once; a request over
// that bound is answered immediately with RETRY_LATER instead of
// buffering unboundedly (admission is counted per frame — a batch
// frame admits as one unit).
//
// Graceful drain (RequestShutdown, signal-safe): every loop stops
// accepting/reading, finishes its dispatched requests, flushes every
// reply, then exits; Serve() joins them all. Connections still open
// after drain_timeout_seconds are force-closed per loop; Serve()
// always waits for in-flight pool tasks before returning so no worker
// outlives the server.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "serve/catalog_handle.h"
#include "serve/pattern_catalog.h"
#include "serve/sharded_catalog.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace graphsig::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; read it back with Server::port().
  uint16_t port = 0;
  int listen_backlog = 128;
  // Hard cap on one frame's payload; larger announcements are protocol
  // errors and close the connection.
  size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
  // Admission bound PER LOOP: frames queued-or-executing before
  // RETRY_LATER.
  size_t max_inflight_requests = 64;
  // Worker claim-loop width for one BatchQuery frame (0 = hardware).
  int batch_threads = 0;
  // Single-Query fan-out width across catalog shards (>= 1). 1 walks
  // the shards serially inside the request's worker — still correct,
  // still byte-identical, just unsharded latency.
  int query_threads = 1;
  // Event loops (>= 1; clamped). Loop 0 owns the listener.
  int num_loops = 1;
  // Private worker pool size per loop — the loop's own worker slice.
  // 0 = all loops dispatch onto the shared global pool.
  int workers_per_loop = 0;
  // Force-close straggling connections this long after drain starts.
  double drain_timeout_seconds = 5.0;
  // Emit one structured "stats:" log line this often (0 = disabled).
  // The line carries the transport counters and serving totals, so a
  // long-running server leaves a coarse utilization trace in its logs.
  // Logged by loop 0.
  double stats_log_period_seconds = 0.0;
};

// Transport-level counters, readable from any thread. Aggregated
// across loops (one mutex-guarded struct, not per-loop copies), so the
// totals a Stats RPC reports are loop-count-independent.
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t frames_received = 0;
  uint64_t requests_served = 0;
  uint64_t protocol_errors = 0;
  uint64_t retries_sent = 0;
};

class Server {
 public:
  // `catalog` must outlive the server. The handle indirection is what
  // makes generation hot-swaps safe: every request handler snapshots
  // the current shard set exactly once (a shared_ptr copy) and runs
  // against that immutable snapshot, so the owner may Swap() in a new
  // generation at any moment without dropping in-flight queries — and
  // because the handle holds the WHOLE shard set behind one pointer,
  // no request can ever observe shards from two generations.
  Server(const serve::CatalogHandle* catalog, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and sets up every loop's epoll/eventfd pair (and
  // its private pool when workers_per_loop > 0). After Start(), port()
  // is the actual bound port.
  util::Status Start();
  uint16_t port() const { return port_; }

  // Runs loop 0 on the calling thread and loops 1..N-1 on spawned
  // threads until a drain completes everywhere. Requires Start() to
  // have succeeded.
  util::Status Serve();

  // Begins a graceful drain. Safe from any thread and from signal
  // handlers (one atomic store + one eventfd write per loop).
  // Idempotent.
  void RequestShutdown();

  ServerCounters counters() const;
  bool draining() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }
  int num_loops() const { return static_cast<int>(loops_.size()); }

 private:
  // One reply-in-order slot; see Connection::pending.
  struct ReplySlot {
    bool done = false;
    std::string frame;  // fully encoded reply frame, valid when done
  };

  struct Connection {
    Socket socket;
    wire::FrameDecoder decoder;
    std::string outbuf;      // reply bytes not yet accepted by the kernel
    int inflight = 0;        // requests dispatched, completion pending
    bool want_read = true;   // false: EOF seen, errored, or draining
    bool closing = false;    // erase once inflight drains + outbuf flushes
    bool broken = false;     // write side dead; drop pending replies
    uint32_t epoll_events = 0;  // currently registered interest set

    // FIFO reply ordering. The wire protocol has no request ids, so a
    // client pipelining N requests matches replies to requests purely
    // by order — but pool workers complete in any order. Every request
    // therefore claims a slot here at dispatch time (inline handlers
    // fill theirs immediately); only the filled prefix is ever written
    // to the socket. Slot seq - head_seq indexes into the deque.
    std::deque<ReplySlot> pending;
    uint64_t next_seq = 0;  // seq the next dispatched request gets
    uint64_t head_seq = 0;  // seq of pending.front()

    explicit Connection(Socket s, size_t max_frame)
        : socket(std::move(s)), decoder(max_frame) {}
  };

  struct Completion {
    uint64_t conn_id;
    uint64_t seq;       // reply slot within the connection
    std::string frame;  // fully encoded reply frame
  };

  // Everything one event loop owns. Constructed in Start() before any
  // loop thread exists; afterwards each instance is touched only by
  // its own loop thread, except the two mutex-guarded queues (workers
  // push completions; loop 0 pushes handoffs) and the eventfd, which
  // is written cross-thread by design.
  struct EventLoop {
    int index GS_UNGUARDED_BY_DESIGN(
        "written in Start() before loop threads exist") = 0;
    // epoll instance (RAII via Socket: it is just an fd).
    Socket epoll GS_UNGUARDED_BY_DESIGN(
        "created in Start(); polled only by this loop's thread");
    // eventfd: completions + handoffs + shutdown. Writing an eventfd
    // is atomic at the kernel boundary, so cross-thread writers need
    // no user-space lock.
    Socket wakeup GS_UNGUARDED_BY_DESIGN(
        "created in Start(); fd writes are kernel-atomic");
    // This loop's private worker slice; null = shared global pool.
    std::unique_ptr<util::ThreadPool> pool GS_UNGUARDED_BY_DESIGN(
        "created in Start(); ThreadPool is internally synchronized");

    std::map<uint64_t, std::unique_ptr<Connection>> connections
        GS_UNGUARDED_BY_DESIGN("owned by this loop's thread");
    // 0 = listener, 1 = wakeup sentinel (ids are per-loop: each loop
    // has its own epoll, so they never meet another loop's ids).
    uint64_t next_conn_id GS_UNGUARDED_BY_DESIGN(
        "owned by this loop's thread") = 2;
    size_t inflight_total GS_UNGUARDED_BY_DESIGN(
        "owned by this loop's thread") = 0;
    bool drain_started GS_UNGUARDED_BY_DESIGN(
        "owned by this loop's thread") = false;

    util::Mutex completions_mutex;
    std::deque<Completion> completions GS_GUARDED_BY(completions_mutex);

    // Sockets accepted by loop 0 awaiting adoption by this loop.
    util::Mutex handoff_mutex;
    std::vector<Socket> handoff GS_GUARDED_BY(handoff_mutex);
  };

  util::Status ServeLoop(EventLoop* loop);
  void HandleListener(EventLoop* loop);
  // Registers one accepted socket with `loop` (called on that loop's
  // thread). A socket adopted after the loop began draining is closed
  // after counting, exactly as if it had been connected at drain time.
  void AdoptConnection(EventLoop* loop, Socket sock);
  // Drains this loop's handoff queue into AdoptConnection.
  void AdoptHandoffs(EventLoop* loop);
  void HandleConnectionRead(EventLoop* loop, uint64_t id, Connection* conn);
  void HandleConnectionWrite(EventLoop* loop, uint64_t id, Connection* conn);
  // Splits buffered bytes into frames and dispatches them; returns
  // false when the connection hit a fatal protocol error.
  void ConsumeFrames(EventLoop* loop, uint64_t id, Connection* conn);
  void DispatchRequest(EventLoop* loop, uint64_t id, Connection* conn,
                       wire::Frame frame);
  // Executed on a pool worker: returns the encoded reply frame.
  std::string ProcessRequest(const wire::Frame& frame);
  std::string ProcessQuery(std::string_view payload);
  std::string ProcessBatchQuery(std::string_view payload);
  std::string ProcessApprox(std::string_view payload);
  std::string ProcessStats(std::string_view payload);
  std::string ProcessHealth();
  // One structured log line with the current counters (see
  // ServerConfig::stats_log_period_seconds).
  void LogStatsLine();
  void PushCompletion(EventLoop* loop, uint64_t conn_id, uint64_t seq,
                      std::string frame);
  void DrainCompletions(EventLoop* loop);
  // Claims the next in-order reply slot for a request on `conn`.
  uint64_t AllocateReplySlot(Connection* conn);
  // Fills slot `seq` and flushes the filled prefix of pending replies
  // to the socket, preserving request order.
  void QueueReply(Connection* conn, uint64_t seq, std::string frame);
  void SendFrame(Connection* conn, std::string frame);
  // Flushes as much outbuf as the kernel accepts right now.
  void FlushWrites(Connection* conn);
  void UpdateInterest(EventLoop* loop, uint64_t id, Connection* conn);
  void BeginDrain(EventLoop* loop);
  // Erases the connection if it is closing and fully settled.
  void MaybeErase(EventLoop* loop, uint64_t id);
  void EraseConnection(EventLoop* loop, uint64_t id);
  // The pool `loop` dispatches onto.
  util::ThreadPool* PoolFor(EventLoop* loop);

  const serve::CatalogHandle* catalog_ GS_UNGUARDED_BY_DESIGN(
      "set in the constructor, read-only afterwards; the handle itself "
      "is internally locked");
  ServerConfig config_ GS_UNGUARDED_BY_DESIGN(
      "set in the constructor, read-only afterwards");

  // Loop topology. The vector is built in Start() before any loop
  // thread exists and never resized afterwards; element ownership is
  // per loop (see EventLoop).
  std::vector<std::unique_ptr<EventLoop>> loops_ GS_UNGUARDED_BY_DESIGN(
      "sized in Start() before loop threads exist; elements are "
      "per-loop-owned");
  // Listener socket, owned and polled by loop 0 only.
  Socket listener_ GS_UNGUARDED_BY_DESIGN("loop 0's thread only");
  // Round-robin accept cursor (loop 0 only).
  uint64_t accept_rr_ GS_UNGUARDED_BY_DESIGN("loop 0's thread only") = 0;
  uint16_t port_ GS_UNGUARDED_BY_DESIGN(
      "written by Start() before the loops run") = 0;
  bool started_ GS_UNGUARDED_BY_DESIGN(
      "written by Start() before the loops run") = false;

  // Not a metric: this is the async-signal-safe shutdown flag, and a
  // registry lookup is not signal-safe.
  std::atomic<bool> shutdown_requested_{false};  // lint:allow=adhoc-atomic

  mutable util::Mutex counters_mutex_;
  ServerCounters counters_ GS_GUARDED_BY(counters_mutex_);
};

}  // namespace graphsig::net

#endif  // GRAPHSIG_NET_SERVER_H_
