#ifndef GRAPHSIG_NET_SERVER_H_
#define GRAPHSIG_NET_SERVER_H_

// The GraphSig query server: a single-threaded, non-blocking epoll
// event loop feeding decoded requests to the shared util::ThreadPool.
//
// Architecture (one box per thread role):
//
//   epoll loop (Serve's caller)          pool workers
//   ----------------------------         -------------------------
//   accept / read / frame-split    -->   decode payload, run the
//   admission control                    catalog query, encode the
//   write replies, close, drain    <--   reply frame
//
// The loop owns every Connection; workers never touch one. A dispatched
// request carries only (connection id, frame bytes); the finished reply
// comes back through a mutex-guarded completion queue plus an eventfd
// wakeup, and the loop matches it to the connection — or drops it if
// the peer is gone. That split keeps all per-connection state
// single-threaded (no locks, no torn states) while queries themselves
// run concurrently.
//
// Backpressure is explicit: at most `max_inflight_requests` frames may
// be queued-or-executing at once; a request over that bound is answered
// immediately with RETRY_LATER instead of buffering unboundedly
// (admission is counted per frame — a batch frame admits as one unit).
//
// Graceful drain (RequestShutdown, signal-safe): stop accepting, stop
// reading new frames, finish every dispatched request, flush every
// reply, then return from Serve(). Connections still open after
// `drain_timeout_seconds` are force-closed; Serve() always waits for
// in-flight pool tasks before returning so no worker outlives the
// server.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "net/socket.h"
#include "net/wire.h"
#include "serve/catalog_handle.h"
#include "serve/pattern_catalog.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace graphsig::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; read it back with Server::port().
  uint16_t port = 0;
  int listen_backlog = 128;
  // Hard cap on one frame's payload; larger announcements are protocol
  // errors and close the connection.
  size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
  // Admission bound: frames queued-or-executing before RETRY_LATER.
  size_t max_inflight_requests = 64;
  // Worker claim-loop width for one BatchQuery frame (0 = hardware).
  int batch_threads = 0;
  // Force-close straggling connections this long after drain starts.
  double drain_timeout_seconds = 5.0;
  // Emit one structured "stats:" log line this often (0 = disabled).
  // The line carries the transport counters and serving totals, so a
  // long-running server leaves a coarse utilization trace in its logs.
  double stats_log_period_seconds = 0.0;
};

// Transport-level counters, readable from any thread.
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t frames_received = 0;
  uint64_t requests_served = 0;
  uint64_t protocol_errors = 0;
  uint64_t retries_sent = 0;
};

class Server {
 public:
  // `catalog` must outlive the server. The handle indirection is what
  // makes generation hot-swaps safe: every request handler snapshots
  // the current catalog exactly once (a shared_ptr copy) and runs
  // against that immutable snapshot, so the owner may Swap() in a new
  // generation at any moment without dropping in-flight queries.
  Server(const serve::CatalogHandle* catalog, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and sets up epoll. After Start(), port() is the
  // actual bound port.
  util::Status Start();
  uint16_t port() const { return port_; }

  // Runs the event loop on the calling thread until a drain completes.
  // Requires Start() to have succeeded.
  util::Status Serve();

  // Begins a graceful drain. Safe from any thread and from signal
  // handlers (one atomic store + one eventfd write). Idempotent.
  void RequestShutdown();

  ServerCounters counters() const;
  bool draining() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

 private:
  // One reply-in-order slot; see Connection::pending.
  struct ReplySlot {
    bool done = false;
    std::string frame;  // fully encoded reply frame, valid when done
  };

  struct Connection {
    Socket socket;
    wire::FrameDecoder decoder;
    std::string outbuf;      // reply bytes not yet accepted by the kernel
    int inflight = 0;        // requests dispatched, completion pending
    bool want_read = true;   // false: EOF seen, errored, or draining
    bool closing = false;    // erase once inflight drains + outbuf flushes
    bool broken = false;     // write side dead; drop pending replies
    uint32_t epoll_events = 0;  // currently registered interest set

    // FIFO reply ordering. The wire protocol has no request ids, so a
    // client pipelining N requests matches replies to requests purely
    // by order — but pool workers complete in any order. Every request
    // therefore claims a slot here at dispatch time (inline handlers
    // fill theirs immediately); only the filled prefix is ever written
    // to the socket. Slot seq - head_seq indexes into the deque.
    std::deque<ReplySlot> pending;
    uint64_t next_seq = 0;  // seq the next dispatched request gets
    uint64_t head_seq = 0;  // seq of pending.front()

    explicit Connection(Socket s, size_t max_frame)
        : socket(std::move(s)), decoder(max_frame) {}
  };

  struct Completion {
    uint64_t conn_id;
    uint64_t seq;       // reply slot within the connection
    std::string frame;  // fully encoded reply frame
  };

  util::Status ServeLoop();
  void HandleListener();
  void HandleConnectionRead(uint64_t id, Connection* conn);
  void HandleConnectionWrite(uint64_t id, Connection* conn);
  // Splits buffered bytes into frames and dispatches them; returns
  // false when the connection hit a fatal protocol error.
  void ConsumeFrames(uint64_t id, Connection* conn);
  void DispatchRequest(uint64_t id, Connection* conn, wire::Frame frame);
  // Executed on a pool worker: returns the encoded reply frame.
  std::string ProcessRequest(const wire::Frame& frame);
  std::string ProcessQuery(std::string_view payload);
  std::string ProcessBatchQuery(std::string_view payload);
  std::string ProcessApprox(std::string_view payload);
  std::string ProcessStats(std::string_view payload);
  std::string ProcessHealth();
  // One structured log line with the current counters (see
  // ServerConfig::stats_log_period_seconds).
  void LogStatsLine();
  void PushCompletion(uint64_t conn_id, uint64_t seq, std::string frame);
  void DrainCompletions();
  // Claims the next in-order reply slot for a request on `conn`.
  uint64_t AllocateReplySlot(Connection* conn);
  // Fills slot `seq` and flushes the filled prefix of pending replies
  // to the socket, preserving request order.
  void QueueReply(Connection* conn, uint64_t seq, std::string frame);
  void SendFrame(Connection* conn, std::string frame);
  // Flushes as much outbuf as the kernel accepts right now.
  void FlushWrites(Connection* conn);
  void UpdateInterest(uint64_t id, Connection* conn);
  void BeginDrain();
  // Erases the connection if it is closing and fully settled.
  void MaybeErase(uint64_t id);
  void EraseConnection(uint64_t id);

  const serve::CatalogHandle* catalog_ GS_UNGUARDED_BY_DESIGN(
      "set in the constructor, read-only afterwards; the handle itself "
      "is internally locked");
  ServerConfig config_ GS_UNGUARDED_BY_DESIGN(
      "set in the constructor, read-only afterwards");

  // The fields below belong to the event-loop thread: written during
  // Start() (before the loop exists) and from Run() itself; worker
  // threads communicate with the loop only through completions_ and the
  // wakeup_ eventfd, never by touching loop state directly.
  Socket listener_ GS_UNGUARDED_BY_DESIGN("event-loop thread only");
  // epoll instance (RAII via Socket: it is just an fd).
  Socket epoll_ GS_UNGUARDED_BY_DESIGN("event-loop thread only");
  // eventfd: completions + shutdown.
  Socket wakeup_ GS_UNGUARDED_BY_DESIGN("event-loop thread only");
  uint16_t port_ GS_UNGUARDED_BY_DESIGN(
      "written by Start() before the loop runs") = 0;
  bool started_ GS_UNGUARDED_BY_DESIGN(
      "written by Start() before the loop runs") = false;

  std::map<uint64_t, std::unique_ptr<Connection>> connections_
      GS_UNGUARDED_BY_DESIGN("event-loop thread only");
  // 0 = listener, 1 = wakeup sentinel.
  uint64_t next_conn_id_ GS_UNGUARDED_BY_DESIGN(
      "event-loop thread only") = 2;
  size_t inflight_total_ GS_UNGUARDED_BY_DESIGN(
      "event-loop thread only") = 0;
  bool drain_started_ GS_UNGUARDED_BY_DESIGN(
      "event-loop thread only") = false;
  double drain_deadline_seconds_ GS_UNGUARDED_BY_DESIGN(
      "event-loop thread only") = 0.0;

  // Not a metric: this is the async-signal-safe shutdown flag, and a
  // registry lookup is not signal-safe.
  std::atomic<bool> shutdown_requested_{false};  // lint:allow=adhoc-atomic

  mutable util::Mutex counters_mutex_;
  ServerCounters counters_ GS_GUARDED_BY(counters_mutex_);

  util::Mutex completions_mutex_;
  std::deque<Completion> completions_ GS_GUARDED_BY(completions_mutex_);
};

}  // namespace graphsig::net

#endif  // GRAPHSIG_NET_SERVER_H_
