#ifndef GRAPHSIG_NET_WIRE_H_
#define GRAPHSIG_NET_WIRE_H_

// The GraphSig wire protocol: a versioned, length-prefixed binary frame
// format plus the typed request/response messages the query server
// speaks. Framing and payload encoding both ride on util/binary
// (ByteWriter/ByteReader), so every field is little-endian and every
// decode path reports malformed input as a clean util::Status — these
// bytes arrive from the network and are fully untrusted
// (fuzz/fuzz_wire_protocol.cc hammers exactly this surface).
//
// Frame layout (header is kFrameHeaderBytes = 16 bytes):
//
//   offset 0   u32 magic        0x31575347 ("GSW1" as bytes G S W 1)
//   offset 4   u8  version      see below; peers reject newer
//   offset 5   u8  type         MessageType
//   offset 6   u16 reserved     must be zero
//   offset 8   u32 payload size (bounded by the decoder's max)
//   offset 12  u32 payload CRC-32
//   offset 16  payload bytes
//
// Versioning (DESIGN.md §12): kWireVersion is the newest version this
// build understands; a frame is stamped with the LOWEST version whose
// decoder understands its payload, so a v1 peer keeps interoperating
// until someone actually uses a v2 feature. Version history:
//   v1  original protocol
//   v2  Stats request may carry a version byte; StatsReply may append a
//       named work-counter section (obs::MetricsRegistry export)
//   v3  ApproxQuery/ApproxReply: the sampling tier's estimate-with-
//       confidence-interval query class (src/approx)
//   v4  StatsReply may append the served catalog's ingest generation
//       after the work-counter section, so streaming clients can watch
//       catalog hot-swaps land (src/stream, DESIGN.md §16)
//   v5  StatsReply may append the serving shard count after the
//       generation, so clients can observe the catalog's shard
//       topology (serve::ShardedCatalog, DESIGN.md §17)
//
// Every reply payload is a pure function of the request and the served
// catalog — server-side latency is deliberately *not* in QueryReply (it
// aggregates into the Stats RPC instead), so a reply to the same query
// against the same artifact is byte-identical across runs, processes,
// and thread counts. The loopback e2e tests assert this.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "serve/pattern_catalog.h"
#include "util/status.h"

namespace graphsig::net::wire {

inline constexpr uint32_t kMagic = 0x31575347;  // "GSW1"
// Newest protocol version this build speaks (and the oldest that still
// interoperates: every v1 byte stream is valid v2).
inline constexpr uint8_t kWireVersion = 5;
// Version stamped on frames that use no post-v1 feature.
inline constexpr uint8_t kBaseWireVersion = 1;
// Version stamped on ApproxQuery/ApproxReply frames: the lowest version
// whose decoder knows the approx message pair.
inline constexpr uint8_t kApproxWireVersion = 3;
// Lowest version whose StatsReply decoder knows the trailing catalog
// generation field (and whose StatsRequest version byte asks for it).
inline constexpr uint8_t kStatsGenerationWireVersion = 4;
// Lowest version whose StatsReply decoder knows the shard-count field
// trailing the generation (and whose StatsRequest version byte asks
// for it).
inline constexpr uint8_t kStatsShardsWireVersion = 5;
inline constexpr size_t kFrameHeaderBytes = 16;
// Default cap on one frame's payload; a header announcing more is a
// protocol error, not an allocation.
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

enum class MessageType : uint8_t {
  // Requests (client -> server).
  kQuery = 1,
  kBatchQuery = 2,
  kStats = 3,
  kHealth = 4,
  kApproxQuery = 5,  // wire v3
  // Responses (server -> client); request type + 64.
  kQueryReply = 65,
  kBatchQueryReply = 66,
  kStatsReply = 67,
  kHealthReply = 68,
  kApproxReply = 69,  // wire v3
  // Error envelope for a request the server could not serve.
  kError = 96,
  // Backpressure: the admission queue is full; retry after a pause.
  // Carries no payload and closes nothing — the connection stays usable.
  kRetryLater = 97,
};

// Returns a stable name for logging ("Query", "RetryLater", ...).
const char* MessageTypeName(MessageType type);

// One decoded frame: the type tag plus its raw payload bytes (already
// CRC-verified). Typed decoding happens separately so the event loop
// can hand payloads to worker threads without parsing them first.
struct Frame {
  MessageType type = MessageType::kError;
  std::string payload;
  // Header version the sender stamped (<= kWireVersion once decoded).
  uint8_t version = kBaseWireVersion;
};

// Serializes a complete frame (header + payload) ready to write to a
// socket. `version` must be in [kBaseWireVersion, kWireVersion]; stamp
// the lowest version able to decode the payload so old peers keep
// accepting frames that use no new feature.
std::string EncodeFrame(MessageType type, std::string_view payload,
                        uint8_t version = kBaseWireVersion);

// Incremental frame parser for a byte stream. Feed arbitrary chunks
// with Append(); Next() yields completed frames in order, nullopt when
// more bytes are needed, and a Status error on any protocol violation
// (bad magic, unsupported version, nonzero reserved bits, oversized
// payload, CRC mismatch). Errors are fatal for the stream: the
// connection that produced them must be closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload_bytes = kDefaultMaxFrameBytes)
      : max_payload_bytes_(max_payload_bytes) {}

  void Append(std::string_view bytes) { buffer_.append(bytes); }

  util::Result<std::optional<Frame>> Next();

  // Bytes buffered but not yet consumed by a complete frame.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  size_t max_payload_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
};

// ---------------------------------------------------------------------
// Typed messages. Each has an Encode (to payload bytes) and a Decode
// (payload bytes -> Result). Requests carry the per-query compute
// flags; replies carry only deterministic fields (see header comment).

struct QueryOptions {
  bool compute_matches = true;
  bool compute_score = true;

  bool operator==(const QueryOptions&) const = default;
};

struct QueryRequest {
  QueryOptions options;
  graph::Graph query;

  bool operator==(const QueryRequest&) const = default;
};

struct BatchQueryRequest {
  QueryOptions options;
  std::vector<graph::Graph> queries;

  bool operator==(const BatchQueryRequest&) const = default;
};

struct QueryReply {
  std::vector<int32_t> matched_patterns;
  bool has_score = false;
  double score = 0.0;
  int32_t iso_calls = 0;
  int32_t pruned = 0;

  bool operator==(const QueryReply&) const = default;
};

// Stats request. v1 clients send an empty payload; v2 clients send one
// version byte asking for the extended reply. The empty encoding IS the
// v1 encoding, so old servers still accept new clients that ask for v1.
struct StatsRequest {
  uint8_t version = kBaseWireVersion;

  bool operator==(const StatsRequest&) const = default;
};

// Serving counters over the wire: the catalog's cumulative ServingStats
// snapshot plus the server's own transport counters. Since wire v2 the
// reply may also carry the server's named deterministic work counters
// (obs::MetricsRegistry::WorkValues()); `work_counters` stays empty for
// v1 peers and the encoding of an empty section is byte-identical to
// v1, so EncodeStatsReply picks the frame version from the value (see
// StatsReplyWireVersion). Since wire v4 the reply may additionally end
// with the served catalog's ingest generation; the field rides AFTER
// the counter section and is only encoded when that section is
// non-empty (an empty counter section encodes as nothing, which would
// leave a bare trailing u64 ambiguous), so `has_generation` without
// counters is silently dropped on the wire.
struct StatsReply {
  serve::ServingStats serving;
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t frames_received = 0;
  uint64_t requests_served = 0;
  uint64_t protocol_errors = 0;
  uint64_t retries_sent = 0;
  std::vector<std::pair<std::string, uint64_t>> work_counters;
  // v4 extension: the generation of the catalog the server is serving
  // (serve::PatternCatalog::generation(); 0 = batch artifact).
  bool has_generation = false;
  uint64_t generation = 0;
  // v5 extension: how many shards that generation is split across
  // (serve::ShardedCatalog::num_shards(); always >= 1 when present —
  // the encoder never writes 0, and the decoder rejects it as
  // non-canonical). Rides AFTER the generation and only when the
  // generation itself is encoded, extending the same carrier rule one
  // field further; `has_shards` without a generation (or with
  // num_shards == 0) is silently dropped on the wire.
  bool has_shards = false;
  uint32_t num_shards = 0;
};

// Lowest frame version able to carry this reply: kBaseWireVersion when
// work_counters is empty, kStatsShardsWireVersion when the shard count
// field is actually encoded, kStatsGenerationWireVersion when the
// generation is, 2 otherwise. Pass to EncodeFrame.
uint8_t StatsReplyWireVersion(const StatsReply& reply);

struct HealthReply {
  bool ok = false;
  bool draining = false;
  uint8_t wire_version = kWireVersion;
  uint64_t num_patterns = 0;
  bool has_classifier = false;

  bool operator==(const HealthReply&) const = default;
};

// Approximate-estimate request (wire v3, src/approx). `mode` is an
// approx::ApproxMode value: 0 asks for the sampled support of `pattern`
// in the served database, 1 for its waddling-random-walk embedding
// count. The RNG seed travels IN the request so the reply stays a pure
// function of (request, catalog) — byte-identical across runs, server
// processes, and thread counts like every other reply on this wire.
struct ApproxRequest {
  uint8_t mode = 0;
  uint64_t seed = 1;
  // Sample draws (mode 0) or walks (mode 1); must be >= 1 on the wire.
  uint32_t samples = 256;
  // Nominal CI coverage, strictly inside (0, 1).
  double confidence = 0.95;
  graph::Graph pattern;

  bool operator==(const ApproxRequest&) const = default;
};

// The estimate with its confidence interval. `estimate` is a support
// count (mode 0) or a total embedding count (mode 1); `hits` is the
// number of sampled graphs that contained the pattern (mode 0) or of
// walks that completed an embedding (mode 1), never above `samples`.
struct ApproxReply {
  uint8_t mode = 0;
  uint32_t samples = 0;
  uint64_t hits = 0;
  // Size of the served database the estimate extrapolates over.
  uint64_t db_size = 0;
  double estimate = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  double confidence = 0.0;

  bool operator==(const ApproxReply&) const = default;
};

struct ErrorReply {
  util::StatusCode code = util::StatusCode::kInternal;
  std::string message;

  bool operator==(const ErrorReply&) const = default;
  // Reconstructs the Status a failed RPC reported.
  util::Status ToStatus() const { return {code, message}; }
};

std::string EncodeQueryRequest(const QueryRequest& request);
util::Result<QueryRequest> DecodeQueryRequest(std::string_view payload);

std::string EncodeBatchQueryRequest(const BatchQueryRequest& request);
util::Result<BatchQueryRequest> DecodeBatchQueryRequest(
    std::string_view payload);

std::string EncodeQueryReply(const QueryReply& reply);
util::Result<QueryReply> DecodeQueryReply(std::string_view payload);

std::string EncodeBatchQueryReply(const std::vector<QueryReply>& replies);
util::Result<std::vector<QueryReply>> DecodeBatchQueryReply(
    std::string_view payload);

std::string EncodeStatsRequest(const StatsRequest& request);
util::Result<StatsRequest> DecodeStatsRequest(std::string_view payload);

std::string EncodeStatsReply(const StatsReply& reply);
util::Result<StatsReply> DecodeStatsReply(std::string_view payload);

std::string EncodeHealthReply(const HealthReply& reply);
util::Result<HealthReply> DecodeHealthReply(std::string_view payload);

std::string EncodeApproxRequest(const ApproxRequest& request);
util::Result<ApproxRequest> DecodeApproxRequest(std::string_view payload);

std::string EncodeApproxReply(const ApproxReply& reply);
util::Result<ApproxReply> DecodeApproxReply(std::string_view payload);

std::string EncodeErrorReply(const ErrorReply& reply);
util::Result<ErrorReply> DecodeErrorReply(std::string_view payload);

// Projects a served QueryResult onto the deterministic wire fields
// (drops latency; see the framing comment above).
QueryReply ReplyFromResult(const serve::QueryResult& result);

// Projects a served approximate estimate onto the wire reply.
ApproxReply ReplyFromApprox(const serve::ApproxResult& result);

}  // namespace graphsig::net::wire

#endif  // GRAPHSIG_NET_WIRE_H_
