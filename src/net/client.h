#ifndef GRAPHSIG_NET_CLIENT_H_
#define GRAPHSIG_NET_CLIENT_H_

// Blocking client for the GraphSig query server. One Client owns one
// TCP connection; it is NOT thread-safe — give each thread its own
// (the loadgen and the e2e tests do exactly that).
//
// Failure semantics callers can rely on:
//   * Unavailable      — connection refused, or the server answered
//                        RETRY_LATER (backpressure) / is draining.
//                        Retrying after a pause is the right move.
//   * DeadlineExceeded — connect or I/O timeout.
//   * IoError          — the connection died mid-RPC. The client
//                        reconnects and retries ONCE per RPC before
//                        surfacing this (queries are idempotent).
//   * other codes      — the server's typed Error reply, re-inflated
//                        into the Status the handler reported.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

namespace graphsig::net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  double connect_timeout_seconds = 5.0;
  // Per-socket-operation deadline (SO_RCVTIMEO/SO_SNDTIMEO).
  double io_timeout_seconds = 30.0;
  // Reconnect-and-retry attempts after a broken connection (not after
  // timeouts or typed errors). 0 disables reconnecting.
  int max_reconnect_attempts = 1;
};

class Client {
 public:
  explicit Client(ClientConfig config) : config_(std::move(config)) {}

  util::Status Connect();
  void Close() { socket_.Reset(); }
  bool connected() const { return socket_.valid(); }

  // One query, one round trip.
  util::Result<wire::QueryReply> Query(const graph::Graph& query,
                                       const wire::QueryOptions& options = {});

  // All queries in ONE BatchQuery frame; the server fans the batch out
  // across its pool. Replies align positionally with `queries`.
  util::Result<std::vector<wire::QueryReply>> BatchQuery(
      const std::vector<graph::Graph>& queries,
      const wire::QueryOptions& options = {});

  // Pipelining: writes every Query frame back-to-back, then reads the
  // replies in order — same positional result as BatchQuery but as N
  // independent server-side requests, so per-request admission control
  // applies (any RETRY_LATER fails the whole pipeline as Unavailable).
  util::Result<std::vector<wire::QueryReply>> PipelineQueries(
      const std::vector<graph::Graph>& queries,
      const wire::QueryOptions& options = {});

  // One approximate-estimate query (wire v3): the server runs the
  // seeded estimator `request` names and returns the estimate with its
  // confidence interval. Requires a v3-capable server; older servers
  // reject the frame version and the stream errors out.
  util::Result<wire::ApproxReply> Approx(const wire::ApproxRequest& request);

  // `version` selects the stats payload to ask for: kBaseWireVersion
  // requests the v1 reply (what a pre-v2 client sends on the wire —
  // also the right choice against an old server), anything newer asks
  // for the extended reply with named work counters.
  util::Result<wire::StatsReply> Stats(
      uint8_t version = wire::kWireVersion);
  util::Result<wire::HealthReply> Health();

 private:
  // Sends one request frame and reads one reply frame, reconnecting and
  // retrying once on a broken connection.
  util::Result<wire::Frame> RoundTrip(
      wire::MessageType type, const std::string& payload,
      uint8_t version = wire::kBaseWireVersion);
  util::Status SendFrame(wire::MessageType type, std::string_view payload,
                         uint8_t version = wire::kBaseWireVersion);
  util::Result<wire::Frame> ReadFrame();
  // Maps RetryLater/Error envelope frames to Status; returns the frame
  // unchanged if it matches `expected`.
  util::Result<wire::Frame> ExpectType(wire::Frame frame,
                                       wire::MessageType expected);

  ClientConfig config_;
  Socket socket_;
};

}  // namespace graphsig::net

#endif  // GRAPHSIG_NET_CLIENT_H_
