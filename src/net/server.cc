#include "net/server.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace graphsig::net {

namespace {

// Per-frame-type arrival counters. For a fixed workload the stream of
// request frames is deterministic, so these are work counters and land
// in the CI baseline (DESIGN.md §12). One static per case keeps the
// hot path at a single relaxed add after first use.
obs::Counter* FrameTypeCounter(wire::MessageType type) {
  auto& registry = obs::MetricsRegistry::Global();
  switch (type) {
    case wire::MessageType::kQuery: {
      static obs::Counter* const c = registry.GetCounter("net/frames/query");
      return c;
    }
    case wire::MessageType::kBatchQuery: {
      static obs::Counter* const c =
          registry.GetCounter("net/frames/batch_query");
      return c;
    }
    case wire::MessageType::kStats: {
      static obs::Counter* const c = registry.GetCounter("net/frames/stats");
      return c;
    }
    case wire::MessageType::kHealth: {
      static obs::Counter* const c =
          registry.GetCounter("net/frames/health");
      return c;
    }
    case wire::MessageType::kApproxQuery: {
      static obs::Counter* const c =
          registry.GetCounter("net/frames/approx_query");
      return c;
    }
    default: {
      // Reply/error types arriving as requests; counted, then rejected
      // by DispatchRequest.
      static obs::Counter* const c = registry.GetCounter("net/frames/other");
      return c;
    }
  }
}

// Reply sizes depend on scheduling only in their interleaving, but the
// histogram is advisory anyway: CI asserts on counts of frames, not
// byte distributions.
obs::Histogram* ReplyBytesHistogram() {
  static obs::Histogram* const h =
      obs::MetricsRegistry::Global().GetHistogram(
          "net/reply_bytes",
          {64, 256, 1024, 4096, 16384, 65536, 262144, 1048576});
  return h;
}

// epoll user-data sentinels; real connections start at id 2.
constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeupId = 1;
// One nonblocking read per EPOLLIN wakeup; level-triggered epoll
// re-notifies while more bytes are pending, so a flooding client cannot
// starve other connections.
constexpr size_t kReadChunkBytes = 64 * 1024;

std::string ErrorFrame(const util::Status& status) {
  wire::ErrorReply reply;
  reply.code = status.code();
  reply.message = status.message();
  return wire::EncodeFrame(wire::MessageType::kError,
                           wire::EncodeErrorReply(reply));
}

util::Status Errno(const char* what) {
  return util::Status::IoError(
      util::StrPrintf("%s: %s", what, strerror(errno)));
}

}  // namespace

Server::Server(const serve::CatalogHandle* catalog, ServerConfig config)
    : catalog_(catalog), config_(std::move(config)) {}

Server::~Server() = default;

util::Status Server::Start() {
  if (started_) {
    return util::Status::FailedPrecondition("server already started");
  }
  GS_ASSIGN_OR_RETURN(
      listener_,
      ListenTcp(config_.host, config_.port, config_.listen_backlog));
  GS_RETURN_IF_ERROR(SetNonBlocking(listener_.fd(), true));
  GS_ASSIGN_OR_RETURN(port_, LocalPort(listener_));

  const int epfd = ::epoll_create1(0);
  if (epfd < 0) return Errno("epoll_create1");
  epoll_.Reset(epfd);
  const int evfd = ::eventfd(0, EFD_NONBLOCK);
  if (evfd < 0) return Errno("eventfd");
  wakeup_.Reset(evfd);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  if (::epoll_ctl(epoll_.fd(), EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    return Errno("epoll_ctl(listener)");
  }
  ev.data.u64 = kWakeupId;
  if (::epoll_ctl(epoll_.fd(), EPOLL_CTL_ADD, wakeup_.fd(), &ev) != 0) {
    return Errno("epoll_ctl(eventfd)");
  }
  started_ = true;
  util::LogInfo(util::StrPrintf("server listening on %s:%u",
                                config_.host.c_str(), port_));
  return util::Status::Ok();
}

void Server::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  // Async-signal-safe wakeup: one 8-byte write to the eventfd. The
  // loop notices the flag on the next iteration even if this write is
  // lost to a full counter.
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      ::write(wakeup_.fd(), &one, sizeof(one));
}

ServerCounters Server::counters() const {
  util::MutexLock lock(&counters_mutex_);
  return counters_;
}

util::Status Server::Serve() {
  if (!started_) {
    return util::Status::FailedPrecondition("Start() must succeed first");
  }
  const util::Status status = ServeLoop();
  util::LogInfo(util::StrPrintf(
      "server on port %u drained: %llu connections served, %llu requests, "
      "%llu protocol errors, %llu retries",
      port_,
      static_cast<unsigned long long>(counters().connections_accepted),
      static_cast<unsigned long long>(counters().requests_served),
      static_cast<unsigned long long>(counters().protocol_errors),
      static_cast<unsigned long long>(counters().retries_sent)));
  util::FlushLogs();
  return status;
}

util::Status Server::ServeLoop() {
  util::WallTimer drain_timer;
  util::WallTimer stats_log_timer;
  std::array<epoll_event, 64> events;
  while (!(drain_started_ && connections_.empty() &&
           inflight_total_ == 0)) {
    // Block indefinitely in steady state; tick during drain so the
    // force-close deadline fires even with no socket activity. With
    // periodic stats logging enabled, wake at least often enough that
    // the next line is at most half a period late on an idle server.
    int timeout_ms = drain_started_ ? 50 : -1;
    if (config_.stats_log_period_seconds > 0.0) {
      if (stats_log_timer.ElapsedSeconds() >=
          config_.stats_log_period_seconds) {
        LogStatsLine();
        stats_log_timer.Restart();
      }
      const int tick_ms = static_cast<int>(
          config_.stats_log_period_seconds * 500.0) + 1;
      if (timeout_ms < 0 || tick_ms < timeout_ms) timeout_ms = tick_ms;
    }
    const int n = ::epoll_wait(epoll_.fd(), events.data(),
                               static_cast<int>(events.size()),
                               timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        HandleListener();
        continue;
      }
      if (id == kWakeupId) {
        uint64_t drained;
        while (::read(wakeup_.fd(), &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection* conn = it->second.get();
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        HandleConnectionRead(id, conn);
      }
      // The read may have erased the connection; re-find before writing.
      it = connections_.find(id);
      if (it != connections_.end() && (events[i].events & EPOLLOUT)) {
        HandleConnectionWrite(id, it->second.get());
      }
    }
    if (shutdown_requested_.load(std::memory_order_acquire) &&
        !drain_started_) {
      BeginDrain();
      drain_timer.Restart();
    }
    if (drain_started_ && !connections_.empty() &&
        drain_timer.ElapsedSeconds() > config_.drain_timeout_seconds) {
      util::LogWarning(util::StrPrintf(
          "drain timeout: force-closing %zu connection(s)",
          connections_.size()));
      while (!connections_.empty()) {
        EraseConnection(connections_.begin()->first);
      }
    }
  }
  return util::Status::Ok();
}

void Server::HandleListener() {
  while (true) {
    bool would_block = false;
    auto accepted = AcceptConnection(listener_, &would_block);
    if (!accepted.ok()) {
      // Transient accept failures (EMFILE under fd pressure) must not
      // kill the loop; log and keep serving existing connections.
      util::LogWarning("accept failed: " + accepted.status().ToString());
      return;
    }
    if (would_block) return;
    Socket sock = std::move(accepted).value();
    if (util::Status nb = SetNonBlocking(sock.fd(), true); !nb.ok()) {
      util::LogWarning("new connection dropped: " + nb.ToString());
      continue;
    }
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(std::move(sock),
                                             config_.max_frame_bytes);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_.fd(), EPOLL_CTL_ADD, conn->socket.fd(), &ev) !=
        0) {
      util::LogWarning(Errno("epoll_ctl(add connection)").ToString());
      continue;
    }
    conn->epoll_events = EPOLLIN;
    connections_.emplace(id, std::move(conn));
    util::MutexLock lock(&counters_mutex_);
    ++counters_.connections_accepted;
    ++counters_.connections_active;
  }
}

void Server::HandleConnectionRead(uint64_t id, Connection* conn) {
  if (!conn->want_read) {
    // Drain/half-close: EPOLLHUP can still tick; nothing to read.
    MaybeErase(id);
    return;
  }
  std::string chunk;
  util::Status error;
  switch (ReadSome(conn->socket.fd(), kReadChunkBytes, &chunk, &error)) {
    case IoState::kOk:
      conn->decoder.Append(chunk);
      ConsumeFrames(id, conn);
      break;
    case IoState::kWouldBlock:
      break;
    case IoState::kEof:
      // Half-close: the peer is done sending but may still read
      // replies. Serve the in-flight requests, flush, then close.
      conn->want_read = false;
      conn->closing = true;
      break;
    case IoState::kError:
      conn->broken = true;
      conn->closing = true;
      conn->want_read = false;
      conn->outbuf.clear();
      break;
  }
  auto it = connections_.find(id);
  if (it != connections_.end()) {
    UpdateInterest(id, conn);
    MaybeErase(id);
  }
}

void Server::ConsumeFrames(uint64_t id, Connection* conn) {
  while (conn->want_read) {
    auto next = conn->decoder.Next();
    if (!next.ok()) {
      // Protocol violation: report it on the wire, then close once the
      // error (and any already-dispatched replies) have flushed.
      {
        util::MutexLock lock(&counters_mutex_);
        ++counters_.protocol_errors;
      }
      util::LogWarning(util::StrPrintf(
          "connection %llu protocol error: %s",
          static_cast<unsigned long long>(id),
          next.status().ToString().c_str()));
      // Queued, not sent directly: replies to requests that were
      // already dispatched must still go out first.
      QueueReply(conn, AllocateReplySlot(conn), ErrorFrame(next.status()));
      conn->want_read = false;
      conn->closing = true;
      return;
    }
    if (!next.value().has_value()) return;  // need more bytes
    {
      util::MutexLock lock(&counters_mutex_);
      ++counters_.frames_received;
    }
    FrameTypeCounter(next.value()->type)->Increment();
    DispatchRequest(id, conn, std::move(*next.value()));
  }
}

void Server::DispatchRequest(uint64_t id, Connection* conn,
                             wire::Frame frame) {
  switch (frame.type) {
    case wire::MessageType::kStats:
      // Stats and health answer inline on the loop thread: they are a
      // few mutex-guarded reads, and keeping them outside admission
      // control means monitoring still works while the server sheds
      // query load. They still claim a reply slot so pipelined replies
      // keep request order.
      QueueReply(conn, AllocateReplySlot(conn),
                 ProcessStats(frame.payload));
      return;
    case wire::MessageType::kHealth:
      QueueReply(conn, AllocateReplySlot(conn), ProcessHealth());
      return;
    case wire::MessageType::kQuery:
    case wire::MessageType::kBatchQuery:
    case wire::MessageType::kApproxQuery:
      break;
    default: {
      util::MutexLock lock(&counters_mutex_);
      ++counters_.protocol_errors;
    }
      QueueReply(conn, AllocateReplySlot(conn),
                 ErrorFrame(util::Status::InvalidArgument(util::StrPrintf(
                     "%s is not a request",
                     wire::MessageTypeName(frame.type)))));
      conn->want_read = false;
      conn->closing = true;
      return;
  }
  if (inflight_total_ >= config_.max_inflight_requests) {
    {
      util::MutexLock lock(&counters_mutex_);
      ++counters_.retries_sent;
    }
    QueueReply(conn, AllocateReplySlot(conn),
               wire::EncodeFrame(wire::MessageType::kRetryLater, ""));
    return;
  }
  ++inflight_total_;
  ++conn->inflight;
  const uint64_t seq = AllocateReplySlot(conn);
  auto shared = std::make_shared<wire::Frame>(std::move(frame));
  util::ThreadPool::Global().Submit([this, id, seq, shared] {
    std::string reply;
    // Submit() tasks must not throw; anything escaping the handlers
    // becomes an Internal error reply so the connection learns of it.
    try {
      reply = ProcessRequest(*shared);
    } catch (const std::exception& e) {
      reply = ErrorFrame(util::Status::Internal(
          util::StrPrintf("request handler threw: %s", e.what())));
    } catch (...) {
      reply = ErrorFrame(
          util::Status::Internal("request handler threw a non-exception"));
    }
    PushCompletion(id, seq, std::move(reply));
  });
}

std::string Server::ProcessRequest(const wire::Frame& frame) {
  switch (frame.type) {
    case wire::MessageType::kQuery:
      return ProcessQuery(frame.payload);
    case wire::MessageType::kBatchQuery:
      return ProcessBatchQuery(frame.payload);
    case wire::MessageType::kApproxQuery:
      return ProcessApprox(frame.payload);
    default:
      return ErrorFrame(util::Status::Internal("unreachable request type"));
  }
}

std::string Server::ProcessQuery(std::string_view payload) {
  auto request = wire::DecodeQueryRequest(payload);
  if (!request.ok()) return ErrorFrame(request.status());
  serve::CatalogQueryConfig config;
  config.num_threads = 1;  // one frame, one worker
  config.compute_matches = request.value().options.compute_matches;
  config.compute_score = request.value().options.compute_score;
  // One snapshot per request: a generation swap mid-query is invisible.
  const auto catalog = catalog_->Current();
  const serve::QueryResult result =
      catalog->Query(request.value().query, config);
  return wire::EncodeFrame(
      wire::MessageType::kQueryReply,
      wire::EncodeQueryReply(wire::ReplyFromResult(result)));
}

std::string Server::ProcessBatchQuery(std::string_view payload) {
  auto request = wire::DecodeBatchQueryRequest(payload);
  if (!request.ok()) return ErrorFrame(request.status());
  serve::CatalogQueryConfig config;
  config.num_threads = config_.batch_threads;
  config.compute_matches = request.value().options.compute_matches;
  config.compute_score = request.value().options.compute_score;
  const auto catalog = catalog_->Current();
  const std::vector<serve::QueryResult> results =
      catalog->QueryBatch(request.value().queries, config);
  std::vector<wire::QueryReply> replies;
  replies.reserve(results.size());
  for (const serve::QueryResult& r : results) {
    replies.push_back(wire::ReplyFromResult(r));
  }
  return wire::EncodeFrame(wire::MessageType::kBatchQueryReply,
                           wire::EncodeBatchQueryReply(replies));
}

std::string Server::ProcessApprox(std::string_view payload) {
  auto request = wire::DecodeApproxRequest(payload);
  if (!request.ok()) return ErrorFrame(request.status());
  serve::ApproxQueryConfig config;
  config.mode = static_cast<approx::ApproxMode>(request.value().mode);
  config.seed = request.value().seed;
  config.samples = static_cast<int32_t>(request.value().samples);
  config.confidence = request.value().confidence;
  // Estimator-internal parallelism stays off: each request is one pool
  // task, and the reply must not depend on worker count anyway.
  config.num_threads = 1;
  const auto catalog = catalog_->Current();
  auto result = catalog->ApproxQuery(request.value().pattern, config);
  if (!result.ok()) return ErrorFrame(result.status());
  return wire::EncodeFrame(wire::MessageType::kApproxReply,
                           wire::EncodeApproxReply(
                               wire::ReplyFromApprox(result.value())),
                           wire::kApproxWireVersion);
}

std::string Server::ProcessStats(std::string_view payload) {
  auto request = wire::DecodeStatsRequest(payload);
  if (!request.ok()) return ErrorFrame(request.status());
  wire::StatsReply reply;
  const auto catalog = catalog_->Current();
  reply.serving = catalog->Snapshot();
  const ServerCounters counters = this->counters();
  reply.connections_accepted = counters.connections_accepted;
  reply.connections_active = counters.connections_active;
  reply.frames_received = counters.frames_received;
  reply.requests_served = counters.requests_served;
  reply.protocol_errors = counters.protocol_errors;
  reply.retries_sent = counters.retries_sent;
  if (request.value().version >= 2) {
    // v2 extension: export the process's deterministic work counters
    // by name. The map is already sorted, so the section is stable.
    for (const auto& [name, value] :
         obs::MetricsRegistry::Global().WorkValues()) {
      reply.work_counters.emplace_back(name, value);
    }
  }
  if (request.value().version >= wire::kStatsGenerationWireVersion) {
    // v4 extension: which catalog generation answered this request.
    // The counter section above is never empty here (serving this very
    // request already bumped net/ counters), so the trailer always has
    // its carrier.
    reply.has_generation = true;
    reply.generation = catalog->generation();
  }
  // Stamp the lowest version able to carry the payload: a v1 client
  // gets a v1 frame it can decode even though the server speaks v2.
  return wire::EncodeFrame(wire::MessageType::kStatsReply,
                           wire::EncodeStatsReply(reply),
                           wire::StatsReplyWireVersion(reply));
}

std::string Server::ProcessHealth() {
  wire::HealthReply reply;
  reply.ok = true;
  reply.draining = draining();
  reply.wire_version = wire::kWireVersion;
  const auto catalog = catalog_->Current();
  reply.num_patterns = catalog->num_patterns();
  reply.has_classifier = catalog->has_classifier();
  return wire::EncodeFrame(wire::MessageType::kHealthReply,
                           wire::EncodeHealthReply(reply));
}

void Server::LogStatsLine() {
  const ServerCounters counters = this->counters();
  const serve::ServingStats serving = catalog_->Current()->Snapshot();
  // One line, valid JSON after the "stats: " prefix, so log scrapers
  // can parse it without a bespoke format.
  util::LogInfo(util::StrPrintf(
      "stats: {\"connections_active\": %llu, \"frames_received\": %llu, "
      "\"requests_served\": %llu, \"protocol_errors\": %llu, "
      "\"retries_sent\": %llu, \"queries\": %lld, \"iso_calls\": %lld, "
      "\"pattern_matches\": %lld}",
      static_cast<unsigned long long>(counters.connections_active),
      static_cast<unsigned long long>(counters.frames_received),
      static_cast<unsigned long long>(counters.requests_served),
      static_cast<unsigned long long>(counters.protocol_errors),
      static_cast<unsigned long long>(counters.retries_sent),
      static_cast<long long>(serving.queries),
      static_cast<long long>(serving.iso_calls),
      static_cast<long long>(serving.pattern_matches)));
}

void Server::PushCompletion(uint64_t conn_id, uint64_t seq,
                            std::string frame) {
  {
    util::MutexLock lock(&completions_mutex_);
    completions_.push_back({conn_id, seq, std::move(frame)});
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wakeup_.fd(), &one, sizeof(one));
}

void Server::DrainCompletions() {
  std::deque<Completion> batch;
  {
    util::MutexLock lock(&completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    --inflight_total_;
    {
      util::MutexLock lock(&counters_mutex_);
      ++counters_.requests_served;
    }
    auto it = connections_.find(done.conn_id);
    if (it == connections_.end()) continue;  // peer gone; drop the reply
    Connection* conn = it->second.get();
    --conn->inflight;
    QueueReply(conn, done.seq, std::move(done.frame));
    UpdateInterest(done.conn_id, conn);
    MaybeErase(done.conn_id);
  }
}

uint64_t Server::AllocateReplySlot(Connection* conn) {
  conn->pending.emplace_back();
  return conn->next_seq++;
}

void Server::QueueReply(Connection* conn, uint64_t seq, std::string frame) {
  ReplySlot& slot = conn->pending[seq - conn->head_seq];
  slot.done = true;
  slot.frame = std::move(frame);
  // Ship the filled prefix: replies leave in exactly the order their
  // requests arrived, whatever order the workers finished in.
  while (!conn->pending.empty() && conn->pending.front().done) {
    SendFrame(conn, std::move(conn->pending.front().frame));
    conn->pending.pop_front();
    ++conn->head_seq;
  }
}

void Server::SendFrame(Connection* conn, std::string frame) {
  if (conn->broken) return;
  ReplyBytesHistogram()->Observe(frame.size());
  conn->outbuf.append(frame);
  FlushWrites(conn);
}

void Server::FlushWrites(Connection* conn) {
  while (!conn->outbuf.empty() && !conn->broken) {
    size_t written = 0;
    util::Status error;
    switch (WriteSome(conn->socket.fd(), conn->outbuf, &written, &error)) {
      case IoState::kOk:
        conn->outbuf.erase(0, written);
        break;
      case IoState::kWouldBlock:
        return;
      case IoState::kEof:  // not produced by writes
      case IoState::kError:
        conn->broken = true;
        conn->closing = true;
        conn->want_read = false;
        conn->outbuf.clear();
        return;
    }
  }
}

void Server::HandleConnectionWrite(uint64_t id, Connection* conn) {
  FlushWrites(conn);
  UpdateInterest(id, conn);
  MaybeErase(id);
}

void Server::UpdateInterest(uint64_t id, Connection* conn) {
  uint32_t desired = 0;
  if (conn->want_read) desired |= EPOLLIN;
  if (!conn->outbuf.empty() && !conn->broken) desired |= EPOLLOUT;
  if (desired == conn->epoll_events) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.u64 = id;
  if (::epoll_ctl(epoll_.fd(), EPOLL_CTL_MOD, conn->socket.fd(), &ev) ==
      0) {
    conn->epoll_events = desired;
  }
}

void Server::BeginDrain() {
  drain_started_ = true;
  util::LogInfo(util::StrPrintf(
      "drain: stopped accepting; %zu connection(s) open, %zu request(s) "
      "in flight",
      connections_.size(), inflight_total_));
  if (listener_.valid()) {
    [[maybe_unused]] int rc = ::epoll_ctl(epoll_.fd(), EPOLL_CTL_DEL,
                                          listener_.fd(), nullptr);
    listener_.Reset();
  }
  // Stop reading everywhere; in-flight requests finish and their
  // replies flush before each connection closes.
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    Connection* conn = it->second.get();
    conn->want_read = false;
    conn->closing = true;
    UpdateInterest(id, conn);
    MaybeErase(id);
  }
}

void Server::MaybeErase(uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  const Connection& conn = *it->second;
  const bool settled =
      conn.inflight == 0 && (conn.outbuf.empty() || conn.broken);
  if (conn.closing && settled) EraseConnection(id);
}

void Server::EraseConnection(uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  [[maybe_unused]] int rc = ::epoll_ctl(
      epoll_.fd(), EPOLL_CTL_DEL, it->second->socket.fd(), nullptr);
  connections_.erase(it);
  util::MutexLock lock(&counters_mutex_);
  --counters_.connections_active;
}

}  // namespace graphsig::net
