#include "net/server.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace graphsig::net {

namespace {

// Per-frame-type arrival counters. For a fixed workload the stream of
// request frames is deterministic, so these are work counters and land
// in the CI baseline (DESIGN.md §12). One static per case keeps the
// hot path at a single relaxed add after first use.
obs::Counter* FrameTypeCounter(wire::MessageType type) {
  auto& registry = obs::MetricsRegistry::Global();
  switch (type) {
    case wire::MessageType::kQuery: {
      static obs::Counter* const c = registry.GetCounter("net/frames/query");
      return c;
    }
    case wire::MessageType::kBatchQuery: {
      static obs::Counter* const c =
          registry.GetCounter("net/frames/batch_query");
      return c;
    }
    case wire::MessageType::kStats: {
      static obs::Counter* const c = registry.GetCounter("net/frames/stats");
      return c;
    }
    case wire::MessageType::kHealth: {
      static obs::Counter* const c =
          registry.GetCounter("net/frames/health");
      return c;
    }
    case wire::MessageType::kApproxQuery: {
      static obs::Counter* const c =
          registry.GetCounter("net/frames/approx_query");
      return c;
    }
    default: {
      // Reply/error types arriving as requests; counted, then rejected
      // by DispatchRequest.
      static obs::Counter* const c = registry.GetCounter("net/frames/other");
      return c;
    }
  }
}

// Reply sizes depend on scheduling only in their interleaving, but the
// histogram is advisory anyway: CI asserts on counts of frames, not
// byte distributions.
obs::Histogram* ReplyBytesHistogram() {
  static obs::Histogram* const h =
      obs::MetricsRegistry::Global().GetHistogram(
          "net/reply_bytes",
          {64, 256, 1024, 4096, 16384, 65536, 262144, 1048576});
  return h;
}

// Cross-loop connection handoffs: how often loop 0 accepted for
// another loop. Scales with num_loops, so advisory by construction.
obs::Counter* HandoffCounter() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetAdvisoryCounter("net/loop_handoffs");
  return c;
}

// epoll user-data sentinels; real connections start at id 2.
constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeupId = 1;
// One nonblocking read per EPOLLIN wakeup; level-triggered epoll
// re-notifies while more bytes are pending, so a flooding client cannot
// starve other connections.
constexpr size_t kReadChunkBytes = 64 * 1024;
// Sanity cap on configured event loops; anything near it is a
// misconfiguration on any real machine.
constexpr int kMaxLoops = 64;

std::string ErrorFrame(const util::Status& status) {
  wire::ErrorReply reply;
  reply.code = status.code();
  reply.message = status.message();
  return wire::EncodeFrame(wire::MessageType::kError,
                           wire::EncodeErrorReply(reply));
}

util::Status Errno(const char* what) {
  return util::Status::IoError(
      util::StrPrintf("%s: %s", what, strerror(errno)));
}

}  // namespace

Server::Server(const serve::CatalogHandle* catalog, ServerConfig config)
    : catalog_(catalog), config_(std::move(config)) {}

Server::~Server() = default;

util::Status Server::Start() {
  if (started_) {
    return util::Status::FailedPrecondition("server already started");
  }
  GS_ASSIGN_OR_RETURN(
      listener_,
      ListenTcp(config_.host, config_.port, config_.listen_backlog));
  GS_RETURN_IF_ERROR(SetNonBlocking(listener_.fd(), true));
  GS_ASSIGN_OR_RETURN(port_, LocalPort(listener_));

  const int num_loops =
      std::clamp(config_.num_loops, 1, kMaxLoops);
  loops_.reserve(static_cast<size_t>(num_loops));
  for (int i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->index = i;
    const int epfd = ::epoll_create1(0);
    if (epfd < 0) return Errno("epoll_create1");
    loop->epoll.Reset(epfd);
    const int evfd = ::eventfd(0, EFD_NONBLOCK);
    if (evfd < 0) return Errno("eventfd");
    loop->wakeup.Reset(evfd);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeupId;
    if (::epoll_ctl(loop->epoll.fd(), EPOLL_CTL_ADD, loop->wakeup.fd(),
                    &ev) != 0) {
      return Errno("epoll_ctl(eventfd)");
    }
    if (i == 0) {
      ev.data.u64 = kListenerId;
      if (::epoll_ctl(loop->epoll.fd(), EPOLL_CTL_ADD, listener_.fd(),
                      &ev) != 0) {
        return Errno("epoll_ctl(listener)");
      }
    }
    if (config_.workers_per_loop > 0) {
      loop->pool =
          std::make_unique<util::ThreadPool>(config_.workers_per_loop);
    }
    loops_.push_back(std::move(loop));
  }
  started_ = true;
  util::LogInfo(util::StrPrintf(
      "server listening on %s:%u (%d event loop(s), %s workers)",
      config_.host.c_str(), port_, num_loops,
      config_.workers_per_loop > 0
          ? util::StrPrintf("%d per-loop", config_.workers_per_loop).c_str()
          : "shared-pool"));
  return util::Status::Ok();
}

void Server::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  // Async-signal-safe wakeup: one 8-byte write per loop's eventfd (the
  // vector is immutable after Start(), so iterating it allocates
  // nothing). Each loop notices the flag on its next iteration even if
  // a write is lost to a full counter.
  const uint64_t one = 1;
  for (const auto& loop : loops_) {
    [[maybe_unused]] ssize_t n =
        ::write(loop->wakeup.fd(), &one, sizeof(one));
  }
}

ServerCounters Server::counters() const {
  util::MutexLock lock(&counters_mutex_);
  return counters_;
}

util::ThreadPool* Server::PoolFor(EventLoop* loop) {
  return loop->pool != nullptr ? loop->pool.get()
                               : &util::ThreadPool::Global();
}

util::Status Server::Serve() {
  if (!started_) {
    return util::Status::FailedPrecondition("Start() must succeed first");
  }
  std::vector<util::Status> statuses(loops_.size(), util::Status::Ok());
  std::vector<std::thread> threads;
  threads.reserve(loops_.size() - 1);
  for (size_t i = 1; i < loops_.size(); ++i) {
    threads.emplace_back([this, i, &statuses] {
      statuses[i] = ServeLoop(loops_[i].get());
      // A loop dying on an epoll error must not leave its siblings
      // serving half a server; fail the whole process into a drain.
      if (!statuses[i].ok()) RequestShutdown();
    });
  }
  statuses[0] = ServeLoop(loops_[0].get());
  if (!statuses[0].ok()) RequestShutdown();
  for (std::thread& t : threads) t.join();

  // A socket can be left in a handoff queue when its target loop
  // exited between the push and the wakeup (only possible in the
  // accept/drain race window). Closing it here is the same outcome the
  // client would have seen connecting a moment later: EOF, no reply.
  for (const auto& loop : loops_) {
    util::MutexLock lock(&loop->handoff_mutex);
    loop->handoff.clear();
  }

  util::LogInfo(util::StrPrintf(
      "server on port %u drained: %llu connections served, %llu requests, "
      "%llu protocol errors, %llu retries",
      port_,
      static_cast<unsigned long long>(counters().connections_accepted),
      static_cast<unsigned long long>(counters().requests_served),
      static_cast<unsigned long long>(counters().protocol_errors),
      static_cast<unsigned long long>(counters().retries_sent)));
  util::FlushLogs();
  for (const util::Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return util::Status::Ok();
}

util::Status Server::ServeLoop(EventLoop* loop) {
  util::WallTimer drain_timer;
  util::WallTimer stats_log_timer;
  std::array<epoll_event, 64> events;
  while (!(loop->drain_started && loop->connections.empty() &&
           loop->inflight_total == 0)) {
    // Block indefinitely in steady state; tick during drain so the
    // force-close deadline fires even with no socket activity. With
    // periodic stats logging enabled, loop 0 wakes at least often
    // enough that the next line is at most half a period late on an
    // idle server.
    int timeout_ms = loop->drain_started ? 50 : -1;
    if (loop->index == 0 && config_.stats_log_period_seconds > 0.0) {
      if (stats_log_timer.ElapsedSeconds() >=
          config_.stats_log_period_seconds) {
        LogStatsLine();
        stats_log_timer.Restart();
      }
      const int tick_ms = static_cast<int>(
          config_.stats_log_period_seconds * 500.0) + 1;
      if (timeout_ms < 0 || tick_ms < timeout_ms) timeout_ms = tick_ms;
    }
    const int n = ::epoll_wait(loop->epoll.fd(), events.data(),
                               static_cast<int>(events.size()),
                               timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        HandleListener(loop);
        continue;
      }
      if (id == kWakeupId) {
        uint64_t drained;
        while (::read(loop->wakeup.fd(), &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions(loop);
        AdoptHandoffs(loop);
        continue;
      }
      auto it = loop->connections.find(id);
      if (it == loop->connections.end()) continue;  // closed this batch
      Connection* conn = it->second.get();
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        HandleConnectionRead(loop, id, conn);
      }
      // The read may have erased the connection; re-find before writing.
      it = loop->connections.find(id);
      if (it != loop->connections.end() && (events[i].events & EPOLLOUT)) {
        HandleConnectionWrite(loop, id, it->second.get());
      }
    }
    if (shutdown_requested_.load(std::memory_order_acquire) &&
        !loop->drain_started) {
      BeginDrain(loop);
      drain_timer.Restart();
    }
    if (loop->drain_started && !loop->connections.empty() &&
        drain_timer.ElapsedSeconds() > config_.drain_timeout_seconds) {
      util::LogWarning(util::StrPrintf(
          "loop %d drain timeout: force-closing %zu connection(s)",
          loop->index, loop->connections.size()));
      while (!loop->connections.empty()) {
        EraseConnection(loop, loop->connections.begin()->first);
      }
    }
  }
  return util::Status::Ok();
}

void Server::HandleListener(EventLoop* loop) {
  while (true) {
    bool would_block = false;
    auto accepted = AcceptConnection(listener_, &would_block);
    if (!accepted.ok()) {
      // Transient accept failures (EMFILE under fd pressure) must not
      // kill the loop; log and keep serving existing connections.
      util::LogWarning("accept failed: " + accepted.status().ToString());
      return;
    }
    if (would_block) return;
    Socket sock = std::move(accepted).value();
    if (util::Status nb = SetNonBlocking(sock.fd(), true); !nb.ok()) {
      util::LogWarning("new connection dropped: " + nb.ToString());
      continue;
    }
    // Accept sharding: connection ownership rotates across loops. The
    // owning loop does everything else for this socket's lifetime.
    EventLoop* target =
        loops_[accept_rr_++ % loops_.size()].get();
    if (target == loop) {
      AdoptConnection(loop, std::move(sock));
      continue;
    }
    HandoffCounter()->Increment();
    {
      util::MutexLock lock(&target->handoff_mutex);
      target->handoff.push_back(std::move(sock));
    }
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(target->wakeup.fd(), &one, sizeof(one));
  }
}

void Server::AdoptConnection(EventLoop* loop, Socket sock) {
  const uint64_t id = loop->next_conn_id++;
  auto conn = std::make_unique<Connection>(std::move(sock),
                                           config_.max_frame_bytes);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  if (::epoll_ctl(loop->epoll.fd(), EPOLL_CTL_ADD, conn->socket.fd(),
                  &ev) != 0) {
    util::LogWarning(Errno("epoll_ctl(add connection)").ToString());
    return;
  }
  conn->epoll_events = EPOLLIN;
  Connection* raw = conn.get();
  loop->connections.emplace(id, std::move(conn));
  {
    util::MutexLock lock(&counters_mutex_);
    ++counters_.connections_accepted;
    ++counters_.connections_active;
  }
  if (loop->drain_started) {
    // Raced in behind the drain (accepted by loop 0 just before the
    // flag flipped): treat exactly like a connection that was open at
    // drain time — no reads, flush nothing pending, close.
    raw->want_read = false;
    raw->closing = true;
    UpdateInterest(loop, id, raw);
    MaybeErase(loop, id);
  }
}

void Server::AdoptHandoffs(EventLoop* loop) {
  std::vector<Socket> adopted;
  {
    util::MutexLock lock(&loop->handoff_mutex);
    adopted.swap(loop->handoff);
  }
  for (Socket& sock : adopted) {
    AdoptConnection(loop, std::move(sock));
  }
}

void Server::HandleConnectionRead(EventLoop* loop, uint64_t id,
                                  Connection* conn) {
  if (!conn->want_read) {
    // Drain/half-close: EPOLLHUP can still tick; nothing to read.
    MaybeErase(loop, id);
    return;
  }
  std::string chunk;
  util::Status error;
  switch (ReadSome(conn->socket.fd(), kReadChunkBytes, &chunk, &error)) {
    case IoState::kOk:
      conn->decoder.Append(chunk);
      ConsumeFrames(loop, id, conn);
      break;
    case IoState::kWouldBlock:
      break;
    case IoState::kEof:
      // Half-close: the peer is done sending but may still read
      // replies. Serve the in-flight requests, flush, then close.
      conn->want_read = false;
      conn->closing = true;
      break;
    case IoState::kError:
      conn->broken = true;
      conn->closing = true;
      conn->want_read = false;
      conn->outbuf.clear();
      break;
  }
  auto it = loop->connections.find(id);
  if (it != loop->connections.end()) {
    UpdateInterest(loop, id, conn);
    MaybeErase(loop, id);
  }
}

void Server::ConsumeFrames(EventLoop* loop, uint64_t id, Connection* conn) {
  while (conn->want_read) {
    auto next = conn->decoder.Next();
    if (!next.ok()) {
      // Protocol violation: report it on the wire, then close once the
      // error (and any already-dispatched replies) have flushed.
      {
        util::MutexLock lock(&counters_mutex_);
        ++counters_.protocol_errors;
      }
      util::LogWarning(util::StrPrintf(
          "connection %llu protocol error: %s",
          static_cast<unsigned long long>(id),
          next.status().ToString().c_str()));
      // Queued, not sent directly: replies to requests that were
      // already dispatched must still go out first.
      QueueReply(conn, AllocateReplySlot(conn), ErrorFrame(next.status()));
      conn->want_read = false;
      conn->closing = true;
      return;
    }
    if (!next.value().has_value()) return;  // need more bytes
    {
      util::MutexLock lock(&counters_mutex_);
      ++counters_.frames_received;
    }
    FrameTypeCounter(next.value()->type)->Increment();
    DispatchRequest(loop, id, conn, std::move(*next.value()));
  }
}

void Server::DispatchRequest(EventLoop* loop, uint64_t id, Connection* conn,
                             wire::Frame frame) {
  switch (frame.type) {
    case wire::MessageType::kStats:
      // Stats and health answer inline on the loop thread: they are a
      // few mutex-guarded reads, and keeping them outside admission
      // control means monitoring still works while the server sheds
      // query load. They still claim a reply slot so pipelined replies
      // keep request order.
      QueueReply(conn, AllocateReplySlot(conn),
                 ProcessStats(frame.payload));
      return;
    case wire::MessageType::kHealth:
      QueueReply(conn, AllocateReplySlot(conn), ProcessHealth());
      return;
    case wire::MessageType::kQuery:
    case wire::MessageType::kBatchQuery:
    case wire::MessageType::kApproxQuery:
      break;
    default: {
      util::MutexLock lock(&counters_mutex_);
      ++counters_.protocol_errors;
    }
      QueueReply(conn, AllocateReplySlot(conn),
                 ErrorFrame(util::Status::InvalidArgument(util::StrPrintf(
                     "%s is not a request",
                     wire::MessageTypeName(frame.type)))));
      conn->want_read = false;
      conn->closing = true;
      return;
  }
  if (loop->inflight_total >= config_.max_inflight_requests) {
    {
      util::MutexLock lock(&counters_mutex_);
      ++counters_.retries_sent;
    }
    QueueReply(conn, AllocateReplySlot(conn),
               wire::EncodeFrame(wire::MessageType::kRetryLater, ""));
    return;
  }
  ++loop->inflight_total;
  ++conn->inflight;
  const uint64_t seq = AllocateReplySlot(conn);
  auto shared = std::make_shared<wire::Frame>(std::move(frame));
  PoolFor(loop)->Submit([this, loop, id, seq, shared] {
    std::string reply;
    // Submit() tasks must not throw; anything escaping the handlers
    // becomes an Internal error reply so the connection learns of it.
    try {
      reply = ProcessRequest(*shared);
    } catch (const std::exception& e) {
      reply = ErrorFrame(util::Status::Internal(
          util::StrPrintf("request handler threw: %s", e.what())));
    } catch (...) {
      reply = ErrorFrame(
          util::Status::Internal("request handler threw a non-exception"));
    }
    PushCompletion(loop, id, seq, std::move(reply));
  });
}

std::string Server::ProcessRequest(const wire::Frame& frame) {
  switch (frame.type) {
    case wire::MessageType::kQuery:
      return ProcessQuery(frame.payload);
    case wire::MessageType::kBatchQuery:
      return ProcessBatchQuery(frame.payload);
    case wire::MessageType::kApproxQuery:
      return ProcessApprox(frame.payload);
    default:
      return ErrorFrame(util::Status::Internal("unreachable request type"));
  }
}

std::string Server::ProcessQuery(std::string_view payload) {
  auto request = wire::DecodeQueryRequest(payload);
  if (!request.ok()) return ErrorFrame(request.status());
  serve::CatalogQueryConfig config;
  // One frame, one worker — unless the catalog is sharded and the
  // operator asked for intra-query fan-out across the shard slices.
  config.num_threads = std::max(1, config_.query_threads);
  config.compute_matches = request.value().options.compute_matches;
  config.compute_score = request.value().options.compute_score;
  // One snapshot per request: a generation swap mid-query is invisible,
  // and the snapshot is the WHOLE shard set (one pointer), so a swap
  // can never interleave shards of two generations.
  const auto catalog = catalog_->Current();
  const serve::QueryResult result =
      catalog->Query(request.value().query, config);
  return wire::EncodeFrame(
      wire::MessageType::kQueryReply,
      wire::EncodeQueryReply(wire::ReplyFromResult(result)));
}

std::string Server::ProcessBatchQuery(std::string_view payload) {
  auto request = wire::DecodeBatchQueryRequest(payload);
  if (!request.ok()) return ErrorFrame(request.status());
  serve::CatalogQueryConfig config;
  config.num_threads = config_.batch_threads;
  config.compute_matches = request.value().options.compute_matches;
  config.compute_score = request.value().options.compute_score;
  const auto catalog = catalog_->Current();
  const std::vector<serve::QueryResult> results =
      catalog->QueryBatch(request.value().queries, config);
  std::vector<wire::QueryReply> replies;
  replies.reserve(results.size());
  for (const serve::QueryResult& r : results) {
    replies.push_back(wire::ReplyFromResult(r));
  }
  return wire::EncodeFrame(wire::MessageType::kBatchQueryReply,
                           wire::EncodeBatchQueryReply(replies));
}

std::string Server::ProcessApprox(std::string_view payload) {
  auto request = wire::DecodeApproxRequest(payload);
  if (!request.ok()) return ErrorFrame(request.status());
  serve::ApproxQueryConfig config;
  config.mode = static_cast<approx::ApproxMode>(request.value().mode);
  config.seed = request.value().seed;
  config.samples = static_cast<int32_t>(request.value().samples);
  config.confidence = request.value().confidence;
  // Estimator-internal parallelism stays off: each request is one pool
  // task, and the reply must not depend on worker count anyway.
  config.num_threads = 1;
  const auto catalog = catalog_->Current();
  auto result = catalog->ApproxQuery(request.value().pattern, config);
  if (!result.ok()) return ErrorFrame(result.status());
  return wire::EncodeFrame(wire::MessageType::kApproxReply,
                           wire::EncodeApproxReply(
                               wire::ReplyFromApprox(result.value())),
                           wire::kApproxWireVersion);
}

std::string Server::ProcessStats(std::string_view payload) {
  auto request = wire::DecodeStatsRequest(payload);
  if (!request.ok()) return ErrorFrame(request.status());
  wire::StatsReply reply;
  const auto catalog = catalog_->Current();
  reply.serving = catalog->Snapshot();
  const ServerCounters counters = this->counters();
  reply.connections_accepted = counters.connections_accepted;
  reply.connections_active = counters.connections_active;
  reply.frames_received = counters.frames_received;
  reply.requests_served = counters.requests_served;
  reply.protocol_errors = counters.protocol_errors;
  reply.retries_sent = counters.retries_sent;
  if (request.value().version >= 2) {
    // v2 extension: export the process's deterministic work counters
    // by name. The map is already sorted, so the section is stable.
    for (const auto& [name, value] :
         obs::MetricsRegistry::Global().WorkValues()) {
      reply.work_counters.emplace_back(name, value);
    }
  }
  if (request.value().version >= wire::kStatsGenerationWireVersion) {
    // v4 extension: which catalog generation answered this request.
    // The counter section above is never empty here (serving this very
    // request already bumped net/ counters), so the trailer always has
    // its carrier.
    reply.has_generation = true;
    reply.generation = catalog->generation();
  }
  if (request.value().version >= wire::kStatsShardsWireVersion) {
    // v5 extension: how many shards that generation is split across.
    // Rides behind the generation trailer (same carrier rule).
    reply.has_shards = true;
    reply.num_shards = static_cast<uint32_t>(catalog->num_shards());
  }
  // Stamp the lowest version able to carry the payload: a v1 client
  // gets a v1 frame it can decode even though the server speaks v2.
  return wire::EncodeFrame(wire::MessageType::kStatsReply,
                           wire::EncodeStatsReply(reply),
                           wire::StatsReplyWireVersion(reply));
}

std::string Server::ProcessHealth() {
  wire::HealthReply reply;
  reply.ok = true;
  reply.draining = draining();
  reply.wire_version = wire::kWireVersion;
  const auto catalog = catalog_->Current();
  reply.num_patterns = catalog->num_patterns();
  reply.has_classifier = catalog->has_classifier();
  return wire::EncodeFrame(wire::MessageType::kHealthReply,
                           wire::EncodeHealthReply(reply));
}

void Server::LogStatsLine() {
  const ServerCounters counters = this->counters();
  const serve::ServingStats serving = catalog_->Current()->Snapshot();
  // One line, valid JSON after the "stats: " prefix, so log scrapers
  // can parse it without a bespoke format.
  util::LogInfo(util::StrPrintf(
      "stats: {\"connections_active\": %llu, \"frames_received\": %llu, "
      "\"requests_served\": %llu, \"protocol_errors\": %llu, "
      "\"retries_sent\": %llu, \"queries\": %lld, \"iso_calls\": %lld, "
      "\"pattern_matches\": %lld}",
      static_cast<unsigned long long>(counters.connections_active),
      static_cast<unsigned long long>(counters.frames_received),
      static_cast<unsigned long long>(counters.requests_served),
      static_cast<unsigned long long>(counters.protocol_errors),
      static_cast<unsigned long long>(counters.retries_sent),
      static_cast<long long>(serving.queries),
      static_cast<long long>(serving.iso_calls),
      static_cast<long long>(serving.pattern_matches)));
}

void Server::PushCompletion(EventLoop* loop, uint64_t conn_id, uint64_t seq,
                            std::string frame) {
  {
    util::MutexLock lock(&loop->completions_mutex);
    loop->completions.push_back({conn_id, seq, std::move(frame)});
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      ::write(loop->wakeup.fd(), &one, sizeof(one));
}

void Server::DrainCompletions(EventLoop* loop) {
  std::deque<Completion> batch;
  {
    util::MutexLock lock(&loop->completions_mutex);
    batch.swap(loop->completions);
  }
  for (Completion& done : batch) {
    --loop->inflight_total;
    {
      util::MutexLock lock(&counters_mutex_);
      ++counters_.requests_served;
    }
    auto it = loop->connections.find(done.conn_id);
    if (it == loop->connections.end()) continue;  // peer gone; drop it
    Connection* conn = it->second.get();
    --conn->inflight;
    QueueReply(conn, done.seq, std::move(done.frame));
    UpdateInterest(loop, done.conn_id, conn);
    MaybeErase(loop, done.conn_id);
  }
}

uint64_t Server::AllocateReplySlot(Connection* conn) {
  conn->pending.emplace_back();
  return conn->next_seq++;
}

void Server::QueueReply(Connection* conn, uint64_t seq, std::string frame) {
  ReplySlot& slot = conn->pending[seq - conn->head_seq];
  slot.done = true;
  slot.frame = std::move(frame);
  // Ship the filled prefix: replies leave in exactly the order their
  // requests arrived, whatever order the workers finished in.
  while (!conn->pending.empty() && conn->pending.front().done) {
    SendFrame(conn, std::move(conn->pending.front().frame));
    conn->pending.pop_front();
    ++conn->head_seq;
  }
}

void Server::SendFrame(Connection* conn, std::string frame) {
  if (conn->broken) return;
  ReplyBytesHistogram()->Observe(frame.size());
  conn->outbuf.append(frame);
  FlushWrites(conn);
}

void Server::FlushWrites(Connection* conn) {
  while (!conn->outbuf.empty() && !conn->broken) {
    size_t written = 0;
    util::Status error;
    switch (WriteSome(conn->socket.fd(), conn->outbuf, &written, &error)) {
      case IoState::kOk:
        conn->outbuf.erase(0, written);
        break;
      case IoState::kWouldBlock:
        return;
      case IoState::kEof:  // not produced by writes
      case IoState::kError:
        conn->broken = true;
        conn->closing = true;
        conn->want_read = false;
        conn->outbuf.clear();
        return;
    }
  }
}

void Server::HandleConnectionWrite(EventLoop* loop, uint64_t id,
                                   Connection* conn) {
  FlushWrites(conn);
  UpdateInterest(loop, id, conn);
  MaybeErase(loop, id);
}

void Server::UpdateInterest(EventLoop* loop, uint64_t id, Connection* conn) {
  uint32_t desired = 0;
  if (conn->want_read) desired |= EPOLLIN;
  if (!conn->outbuf.empty() && !conn->broken) desired |= EPOLLOUT;
  if (desired == conn->epoll_events) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.u64 = id;
  if (::epoll_ctl(loop->epoll.fd(), EPOLL_CTL_MOD, conn->socket.fd(),
                  &ev) == 0) {
    conn->epoll_events = desired;
  }
}

void Server::BeginDrain(EventLoop* loop) {
  loop->drain_started = true;
  // Connections accepted for this loop but not yet adopted become
  // ordinary (immediately-closing) connections first, so the drain
  // accounting below covers them too.
  AdoptHandoffs(loop);
  util::LogInfo(util::StrPrintf(
      "loop %d drain: %zu connection(s) open, %zu request(s) in flight",
      loop->index, loop->connections.size(), loop->inflight_total));
  if (loop->index == 0 && listener_.valid()) {
    [[maybe_unused]] int rc = ::epoll_ctl(loop->epoll.fd(), EPOLL_CTL_DEL,
                                          listener_.fd(), nullptr);
    listener_.Reset();
  }
  // Stop reading everywhere; in-flight requests finish and their
  // replies flush before each connection closes.
  std::vector<uint64_t> ids;
  ids.reserve(loop->connections.size());
  for (const auto& [id, conn] : loop->connections) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = loop->connections.find(id);
    if (it == loop->connections.end()) continue;
    Connection* conn = it->second.get();
    conn->want_read = false;
    conn->closing = true;
    UpdateInterest(loop, id, conn);
    MaybeErase(loop, id);
  }
}

void Server::MaybeErase(EventLoop* loop, uint64_t id) {
  auto it = loop->connections.find(id);
  if (it == loop->connections.end()) return;
  const Connection& conn = *it->second;
  const bool settled =
      conn.inflight == 0 && (conn.outbuf.empty() || conn.broken);
  if (conn.closing && settled) EraseConnection(loop, id);
}

void Server::EraseConnection(EventLoop* loop, uint64_t id) {
  auto it = loop->connections.find(id);
  if (it == loop->connections.end()) return;
  [[maybe_unused]] int rc = ::epoll_ctl(
      loop->epoll.fd(), EPOLL_CTL_DEL, it->second->socket.fd(), nullptr);
  loop->connections.erase(it);
  util::MutexLock lock(&counters_mutex_);
  --counters_.connections_active;
}

}  // namespace graphsig::net
