#include "net/wire.h"

#include <utility>

#include "graph/serialize.h"
#include "util/binary.h"
#include "util/check.h"
#include "util/strings.h"

namespace graphsig::net::wire {

namespace {

// Decoders reject payloads with trailing garbage: a well-formed message
// consumes its payload exactly, and accepting extra bytes would let two
// different byte strings decode to the same value (breaking the
// re-encode round-trip the fuzzer pins).
util::Status ExpectExhausted(const util::ByteReader& reader) {
  if (!reader.exhausted()) {
    return util::Status::ParseError(util::StrPrintf(
        "%s: %zu trailing bytes after message", reader.section().c_str(),
        reader.remaining()));
  }
  return util::Status::Ok();
}

void EncodeOptions(const QueryOptions& options, util::ByteWriter* w) {
  uint8_t flags = 0;
  if (options.compute_matches) flags |= 1;
  if (options.compute_score) flags |= 2;
  w->WriteU8(flags);
}

util::Result<QueryOptions> DecodeOptions(util::ByteReader* reader) {
  uint8_t flags = 0;
  GS_RETURN_IF_ERROR(reader->ReadU8(&flags));
  if (flags & ~uint8_t{3}) {
    return util::Status::ParseError(
        util::StrPrintf("unknown query option bits 0x%02x", flags));
  }
  QueryOptions options;
  options.compute_matches = (flags & 1) != 0;
  options.compute_score = (flags & 2) != 0;
  return options;
}

util::Result<QueryReply> DecodeOneReply(util::ByteReader* reader) {
  QueryReply reply;
  uint32_t num_matches = 0;
  GS_RETURN_IF_ERROR(reader->ReadU32(&num_matches));
  // Each id costs 4 payload bytes, so a count the buffer cannot back is
  // rejected before any allocation.
  if (num_matches > reader->remaining() / 4) {
    return util::Status::ParseError(util::StrPrintf(
        "match count %u exceeds remaining payload", num_matches));
  }
  reply.matched_patterns.resize(num_matches);
  for (uint32_t i = 0; i < num_matches; ++i) {
    GS_RETURN_IF_ERROR(reader->ReadI32(&reply.matched_patterns[i]));
  }
  uint8_t has_score = 0;
  GS_RETURN_IF_ERROR(reader->ReadU8(&has_score));
  if (has_score > 1) {
    return util::Status::ParseError("has_score flag must be 0 or 1");
  }
  reply.has_score = has_score != 0;
  GS_RETURN_IF_ERROR(reader->ReadF64(&reply.score));
  GS_RETURN_IF_ERROR(reader->ReadI32(&reply.iso_calls));
  GS_RETURN_IF_ERROR(reader->ReadI32(&reply.pruned));
  return reply;
}

void EncodeOneReply(const QueryReply& reply, util::ByteWriter* w) {
  w->WriteU32(static_cast<uint32_t>(reply.matched_patterns.size()));
  for (int32_t id : reply.matched_patterns) w->WriteI32(id);
  w->WriteU8(reply.has_score ? 1 : 0);
  w->WriteF64(reply.score);
  w->WriteI32(reply.iso_calls);
  w->WriteI32(reply.pruned);
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kQuery:
      return "Query";
    case MessageType::kBatchQuery:
      return "BatchQuery";
    case MessageType::kStats:
      return "Stats";
    case MessageType::kHealth:
      return "Health";
    case MessageType::kApproxQuery:
      return "ApproxQuery";
    case MessageType::kQueryReply:
      return "QueryReply";
    case MessageType::kBatchQueryReply:
      return "BatchQueryReply";
    case MessageType::kStatsReply:
      return "StatsReply";
    case MessageType::kHealthReply:
      return "HealthReply";
    case MessageType::kApproxReply:
      return "ApproxReply";
    case MessageType::kError:
      return "Error";
    case MessageType::kRetryLater:
      return "RetryLater";
  }
  return "Unknown";
}

namespace {

bool IsKnownType(uint8_t raw) {
  switch (static_cast<MessageType>(raw)) {
    case MessageType::kQuery:
    case MessageType::kBatchQuery:
    case MessageType::kStats:
    case MessageType::kHealth:
    case MessageType::kApproxQuery:
    case MessageType::kQueryReply:
    case MessageType::kBatchQueryReply:
    case MessageType::kStatsReply:
    case MessageType::kHealthReply:
    case MessageType::kApproxReply:
    case MessageType::kError:
    case MessageType::kRetryLater:
      return true;
  }
  return false;
}

}  // namespace

std::string EncodeFrame(MessageType type, std::string_view payload,
                        uint8_t version) {
  GS_CHECK_GE(version, kBaseWireVersion);
  GS_CHECK_LE(version, kWireVersion);
  util::ByteWriter w;
  w.WriteU32(kMagic);
  w.WriteU8(version);
  w.WriteU8(static_cast<uint8_t>(type));
  w.WriteU16(0);  // reserved
  w.WriteU32(static_cast<uint32_t>(payload.size()));
  w.WriteU32(util::Crc32(payload));
  w.WriteBytes(payload);
  return std::move(w.TakeBuffer());
}

util::Result<std::optional<Frame>> FrameDecoder::Next() {
  // Drop the consumed prefix lazily, once it dominates the buffer, so a
  // pipelined burst of small frames is not O(n^2) in memmoves.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const std::string_view pending =
      std::string_view(buffer_).substr(consumed_);
  if (pending.size() < kFrameHeaderBytes) return std::optional<Frame>();

  util::ByteReader reader(pending, "frame header");
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t raw_type = 0;
  uint16_t reserved = 0;
  uint32_t payload_size = 0;
  uint32_t payload_crc = 0;
  GS_RETURN_IF_ERROR(reader.ReadU32(&magic));
  GS_RETURN_IF_ERROR(reader.ReadU8(&version));
  GS_RETURN_IF_ERROR(reader.ReadU8(&raw_type));
  GS_RETURN_IF_ERROR(reader.ReadU16(&reserved));
  GS_RETURN_IF_ERROR(reader.ReadU32(&payload_size));
  GS_RETURN_IF_ERROR(reader.ReadU32(&payload_crc));
  if (magic != kMagic) {
    return util::Status::ParseError(
        util::StrPrintf("bad frame magic 0x%08x", magic));
  }
  if (version > kWireVersion) {
    return util::Status::FailedPrecondition(util::StrPrintf(
        "frame version %u newer than supported %u", version, kWireVersion));
  }
  if (version < kBaseWireVersion) {
    return util::Status::ParseError(
        util::StrPrintf("frame version %u below minimum %u", version,
                        kBaseWireVersion));
  }
  if (reserved != 0) {
    return util::Status::ParseError(util::StrPrintf(
        "reserved frame header bits set: 0x%04x", reserved));
  }
  if (!IsKnownType(raw_type)) {
    return util::Status::ParseError(
        util::StrPrintf("unknown message type %u", raw_type));
  }
  if (payload_size > max_payload_bytes_) {
    return util::Status::OutOfRange(util::StrPrintf(
        "frame payload of %u bytes exceeds limit %zu", payload_size,
        max_payload_bytes_));
  }
  if (pending.size() - kFrameHeaderBytes < payload_size) {
    return std::optional<Frame>();  // wait for the rest of the payload
  }
  Frame frame;
  frame.type = static_cast<MessageType>(raw_type);
  frame.version = version;
  frame.payload.assign(pending.substr(kFrameHeaderBytes, payload_size));
  if (util::Crc32(frame.payload) != payload_crc) {
    return util::Status::ParseError(util::StrPrintf(
        "frame payload CRC mismatch (%s, %u bytes)",
        MessageTypeName(frame.type), payload_size));
  }
  consumed_ += kFrameHeaderBytes + payload_size;
  return std::optional<Frame>(std::move(frame));
}

std::string EncodeQueryRequest(const QueryRequest& request) {
  util::ByteWriter w;
  EncodeOptions(request.options, &w);
  graph::EncodeGraph(request.query, &w);
  return std::move(w.TakeBuffer());
}

util::Result<QueryRequest> DecodeQueryRequest(std::string_view payload) {
  util::ByteReader reader(payload, "query request");
  QueryRequest request;
  GS_ASSIGN_OR_RETURN(request.options, DecodeOptions(&reader));
  GS_ASSIGN_OR_RETURN(request.query, graph::DecodeGraph(&reader));
  GS_RETURN_IF_ERROR(ExpectExhausted(reader));
  return request;
}

std::string EncodeBatchQueryRequest(const BatchQueryRequest& request) {
  util::ByteWriter w;
  EncodeOptions(request.options, &w);
  w.WriteU32(static_cast<uint32_t>(request.queries.size()));
  for (const graph::Graph& g : request.queries) graph::EncodeGraph(g, &w);
  return std::move(w.TakeBuffer());
}

util::Result<BatchQueryRequest> DecodeBatchQueryRequest(
    std::string_view payload) {
  util::ByteReader reader(payload, "batch query request");
  BatchQueryRequest request;
  GS_ASSIGN_OR_RETURN(request.options, DecodeOptions(&reader));
  uint32_t count = 0;
  GS_RETURN_IF_ERROR(reader.ReadU32(&count));
  // No reserve on the announced count: graphs decode one at a time and
  // a lying count fails on the first missing byte.
  for (uint32_t i = 0; i < count; ++i) {
    reader.set_section(util::StrPrintf("batch query graph %u", i));
    GS_ASSIGN_OR_RETURN(graph::Graph g, graph::DecodeGraph(&reader));
    request.queries.push_back(std::move(g));
  }
  GS_RETURN_IF_ERROR(ExpectExhausted(reader));
  return request;
}

std::string EncodeQueryReply(const QueryReply& reply) {
  util::ByteWriter w;
  EncodeOneReply(reply, &w);
  return std::move(w.TakeBuffer());
}

util::Result<QueryReply> DecodeQueryReply(std::string_view payload) {
  util::ByteReader reader(payload, "query reply");
  GS_ASSIGN_OR_RETURN(QueryReply reply, DecodeOneReply(&reader));
  GS_RETURN_IF_ERROR(ExpectExhausted(reader));
  return reply;
}

std::string EncodeBatchQueryReply(const std::vector<QueryReply>& replies) {
  util::ByteWriter w;
  w.WriteU32(static_cast<uint32_t>(replies.size()));
  for (const QueryReply& reply : replies) EncodeOneReply(reply, &w);
  return std::move(w.TakeBuffer());
}

util::Result<std::vector<QueryReply>> DecodeBatchQueryReply(
    std::string_view payload) {
  util::ByteReader reader(payload, "batch query reply");
  uint32_t count = 0;
  GS_RETURN_IF_ERROR(reader.ReadU32(&count));
  std::vector<QueryReply> replies;
  for (uint32_t i = 0; i < count; ++i) {
    reader.set_section(util::StrPrintf("batch reply %u", i));
    GS_ASSIGN_OR_RETURN(QueryReply reply, DecodeOneReply(&reader));
    replies.push_back(std::move(reply));
  }
  GS_RETURN_IF_ERROR(ExpectExhausted(reader));
  return replies;
}

std::string EncodeStatsRequest(const StatsRequest& request) {
  // The v1 encoding is the empty payload; a version byte below 2 would
  // be a second spelling of the same request, so it is never emitted.
  if (request.version <= kBaseWireVersion) return std::string();
  util::ByteWriter w;
  w.WriteU8(request.version);
  return std::move(w.TakeBuffer());
}

util::Result<StatsRequest> DecodeStatsRequest(std::string_view payload) {
  StatsRequest request;
  if (payload.empty()) return request;  // v1 client
  util::ByteReader reader(payload, "stats request");
  GS_RETURN_IF_ERROR(reader.ReadU8(&request.version));
  if (request.version <= kBaseWireVersion) {
    // Non-canonical: version 1 is spelled as the empty payload.
    return util::Status::ParseError(util::StrPrintf(
        "stats request version byte %u must be >= 2", request.version));
  }
  GS_RETURN_IF_ERROR(ExpectExhausted(reader));
  return request;
}

uint8_t StatsReplyWireVersion(const StatsReply& reply) {
  if (reply.work_counters.empty()) return kBaseWireVersion;
  if (!reply.has_generation) return 2;
  return reply.has_shards && reply.num_shards > 0
             ? kStatsShardsWireVersion
             : kStatsGenerationWireVersion;
}

std::string EncodeStatsReply(const StatsReply& reply) {
  util::ByteWriter w;
  w.WriteI64(reply.serving.queries);
  w.WriteF64(reply.serving.total_latency_ms);
  w.WriteF64(reply.serving.max_latency_ms);
  w.WriteI64(reply.serving.iso_calls);
  w.WriteI64(reply.serving.pruned);
  w.WriteI64(reply.serving.pattern_matches);
  w.WriteU64(reply.connections_accepted);
  w.WriteU64(reply.connections_active);
  w.WriteU64(reply.frames_received);
  w.WriteU64(reply.requests_served);
  w.WriteU64(reply.protocol_errors);
  w.WriteU64(reply.retries_sent);
  // v2 work-counter section. An empty section is encoded as *nothing*
  // (not a zero count), so the empty reply stays byte-identical to v1
  // and keeps decoding on old peers.
  if (!reply.work_counters.empty()) {
    w.WriteU32(static_cast<uint32_t>(reply.work_counters.size()));
    for (const auto& [name, value] : reply.work_counters) {
      w.WriteString(name);
      w.WriteU64(value);
    }
    // v4 catalog-generation trailer. It needs the counter section as a
    // carrier: without one the reply must stay byte-identical to v1,
    // and a bare trailing u64 after the fixed fields would be
    // indistinguishable from a truncated counter section.
    if (reply.has_generation) {
      w.WriteU64(reply.generation);
      // v5 shard-count trailer: the carrier rule again, one field
      // further out — it rides only behind an encoded generation, and
      // a shard count of 0 is never written (a ShardedCatalog has at
      // least one shard), so the decoder can treat 0 as non-canonical.
      if (reply.has_shards && reply.num_shards > 0) {
        w.WriteU32(reply.num_shards);
      }
    }
  }
  return std::move(w.TakeBuffer());
}

util::Result<StatsReply> DecodeStatsReply(std::string_view payload) {
  util::ByteReader reader(payload, "stats reply");
  StatsReply reply;
  GS_RETURN_IF_ERROR(reader.ReadI64(&reply.serving.queries));
  GS_RETURN_IF_ERROR(reader.ReadF64(&reply.serving.total_latency_ms));
  GS_RETURN_IF_ERROR(reader.ReadF64(&reply.serving.max_latency_ms));
  GS_RETURN_IF_ERROR(reader.ReadI64(&reply.serving.iso_calls));
  GS_RETURN_IF_ERROR(reader.ReadI64(&reply.serving.pruned));
  GS_RETURN_IF_ERROR(reader.ReadI64(&reply.serving.pattern_matches));
  GS_RETURN_IF_ERROR(reader.ReadU64(&reply.connections_accepted));
  GS_RETURN_IF_ERROR(reader.ReadU64(&reply.connections_active));
  GS_RETURN_IF_ERROR(reader.ReadU64(&reply.frames_received));
  GS_RETURN_IF_ERROR(reader.ReadU64(&reply.requests_served));
  GS_RETURN_IF_ERROR(reader.ReadU64(&reply.protocol_errors));
  GS_RETURN_IF_ERROR(reader.ReadU64(&reply.retries_sent));
  if (reader.exhausted()) return reply;  // v1 reply: no counter section
  uint32_t count = 0;
  GS_RETURN_IF_ERROR(reader.ReadU32(&count));
  if (count == 0) {
    return util::Status::ParseError(
        "stats reply counter section present but empty (non-canonical)");
  }
  // Each entry costs at least 12 bytes (u32 name length + u64 value), so
  // a count the buffer cannot back is rejected before any allocation.
  if (count > reader.remaining() / 12) {
    return util::Status::ParseError(util::StrPrintf(
        "work counter count %u exceeds remaining payload", count));
  }
  reply.work_counters.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    uint64_t value = 0;
    GS_RETURN_IF_ERROR(reader.ReadString(&name));
    GS_RETURN_IF_ERROR(reader.ReadU64(&value));
    reply.work_counters.emplace_back(std::move(name), value);
  }
  // v4: bytes after the counter section are the catalog generation.
  if (!reader.exhausted()) {
    GS_RETURN_IF_ERROR(reader.ReadU64(&reply.generation));
    reply.has_generation = true;
  }
  // v5: a u32 shard count may trail the generation.
  if (!reader.exhausted()) {
    GS_RETURN_IF_ERROR(reader.ReadU32(&reply.num_shards));
    if (reply.num_shards == 0) {
      return util::Status::ParseError(
          "stats reply shard count 0 (non-canonical)");
    }
    reply.has_shards = true;
  }
  GS_RETURN_IF_ERROR(ExpectExhausted(reader));
  return reply;
}

std::string EncodeHealthReply(const HealthReply& reply) {
  util::ByteWriter w;
  w.WriteU8(reply.ok ? 1 : 0);
  w.WriteU8(reply.draining ? 1 : 0);
  w.WriteU8(reply.wire_version);
  w.WriteU64(reply.num_patterns);
  w.WriteU8(reply.has_classifier ? 1 : 0);
  return std::move(w.TakeBuffer());
}

util::Result<HealthReply> DecodeHealthReply(std::string_view payload) {
  util::ByteReader reader(payload, "health reply");
  HealthReply reply;
  uint8_t ok = 0, draining = 0, has_classifier = 0;
  GS_RETURN_IF_ERROR(reader.ReadU8(&ok));
  GS_RETURN_IF_ERROR(reader.ReadU8(&draining));
  GS_RETURN_IF_ERROR(reader.ReadU8(&reply.wire_version));
  GS_RETURN_IF_ERROR(reader.ReadU64(&reply.num_patterns));
  GS_RETURN_IF_ERROR(reader.ReadU8(&has_classifier));
  if (ok > 1 || draining > 1 || has_classifier > 1) {
    return util::Status::ParseError("health flags must be 0 or 1");
  }
  reply.ok = ok != 0;
  reply.draining = draining != 0;
  reply.has_classifier = has_classifier != 0;
  GS_RETURN_IF_ERROR(ExpectExhausted(reader));
  return reply;
}

std::string EncodeApproxRequest(const ApproxRequest& request) {
  util::ByteWriter w;
  w.WriteU8(request.mode);
  w.WriteU64(request.seed);
  w.WriteU32(request.samples);
  w.WriteF64(request.confidence);
  graph::EncodeGraph(request.pattern, &w);
  return std::move(w.TakeBuffer());
}

util::Result<ApproxRequest> DecodeApproxRequest(std::string_view payload) {
  util::ByteReader reader(payload, "approx request");
  ApproxRequest request;
  GS_RETURN_IF_ERROR(reader.ReadU8(&request.mode));
  if (request.mode > 1) {
    return util::Status::ParseError(util::StrPrintf(
        "unknown approx estimator mode %u", request.mode));
  }
  GS_RETURN_IF_ERROR(reader.ReadU64(&request.seed));
  GS_RETURN_IF_ERROR(reader.ReadU32(&request.samples));
  if (request.samples == 0) {
    return util::Status::ParseError("approx sample count must be >= 1");
  }
  GS_RETURN_IF_ERROR(reader.ReadF64(&request.confidence));
  // The negated comparison also rejects NaN, which would otherwise
  // survive decode and break the request's value round trip.
  if (!(request.confidence > 0.0 && request.confidence < 1.0)) {
    return util::Status::ParseError(
        "approx confidence must be strictly inside (0, 1)");
  }
  GS_ASSIGN_OR_RETURN(request.pattern, graph::DecodeGraph(&reader));
  GS_RETURN_IF_ERROR(ExpectExhausted(reader));
  return request;
}

std::string EncodeApproxReply(const ApproxReply& reply) {
  util::ByteWriter w;
  w.WriteU8(reply.mode);
  w.WriteU32(reply.samples);
  w.WriteU64(reply.hits);
  w.WriteU64(reply.db_size);
  w.WriteF64(reply.estimate);
  w.WriteF64(reply.ci_lo);
  w.WriteF64(reply.ci_hi);
  w.WriteF64(reply.confidence);
  return std::move(w.TakeBuffer());
}

util::Result<ApproxReply> DecodeApproxReply(std::string_view payload) {
  util::ByteReader reader(payload, "approx reply");
  ApproxReply reply;
  GS_RETURN_IF_ERROR(reader.ReadU8(&reply.mode));
  if (reply.mode > 1) {
    return util::Status::ParseError(
        util::StrPrintf("unknown approx estimator mode %u", reply.mode));
  }
  GS_RETURN_IF_ERROR(reader.ReadU32(&reply.samples));
  GS_RETURN_IF_ERROR(reader.ReadU64(&reply.hits));
  if (reply.hits > reply.samples) {
    return util::Status::ParseError(util::StrPrintf(
        "approx reply hits %llu exceed sample count %u",
        static_cast<unsigned long long>(reply.hits), reply.samples));
  }
  GS_RETURN_IF_ERROR(reader.ReadU64(&reply.db_size));
  GS_RETURN_IF_ERROR(reader.ReadF64(&reply.estimate));
  GS_RETURN_IF_ERROR(reader.ReadF64(&reply.ci_lo));
  GS_RETURN_IF_ERROR(reader.ReadF64(&reply.ci_hi));
  GS_RETURN_IF_ERROR(reader.ReadF64(&reply.confidence));
  GS_RETURN_IF_ERROR(ExpectExhausted(reader));
  return reply;
}

std::string EncodeErrorReply(const ErrorReply& reply) {
  util::ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(reply.code));
  w.WriteString(reply.message);
  return std::move(w.TakeBuffer());
}

util::Result<ErrorReply> DecodeErrorReply(std::string_view payload) {
  util::ByteReader reader(payload, "error reply");
  ErrorReply reply;
  uint8_t code = 0;
  GS_RETURN_IF_ERROR(reader.ReadU8(&code));
  if (code == 0 ||
      code > static_cast<uint8_t>(util::StatusCode::kDeadlineExceeded)) {
    return util::Status::ParseError(
        util::StrPrintf("error reply carries invalid status code %u", code));
  }
  reply.code = static_cast<util::StatusCode>(code);
  GS_RETURN_IF_ERROR(reader.ReadString(&reply.message));
  GS_RETURN_IF_ERROR(ExpectExhausted(reader));
  return reply;
}

QueryReply ReplyFromResult(const serve::QueryResult& result) {
  QueryReply reply;
  reply.matched_patterns = result.matched_patterns;
  reply.has_score = result.has_score;
  reply.score = result.score;
  reply.iso_calls = result.iso_calls;
  reply.pruned = result.pruned;
  return reply;
}

ApproxReply ReplyFromApprox(const serve::ApproxResult& result) {
  ApproxReply reply;
  reply.mode = static_cast<uint8_t>(result.mode);
  reply.samples = static_cast<uint32_t>(result.samples);
  reply.hits = static_cast<uint64_t>(result.hits);
  reply.db_size = result.db_size;
  reply.estimate = result.estimate;
  reply.ci_lo = result.ci.lo;
  reply.ci_hi = result.ci.hi;
  reply.confidence = result.ci.confidence;
  return reply;
}

}  // namespace graphsig::net::wire
