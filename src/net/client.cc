#include "net/client.h"

#include <utility>

#include "util/binary.h"
#include "util/strings.h"

namespace graphsig::net {

namespace {

// Frame headers are validated with the same FrameDecoder the server
// uses, so both sides enforce identical limits.
util::Result<wire::Frame> ParseOneFrame(wire::FrameDecoder* decoder) {
  auto next = decoder->Next();
  GS_RETURN_IF_ERROR(next.status());
  if (!next.value().has_value()) {
    return util::Status::Internal("frame decoder demanded more bytes "
                                  "after a full frame was read");
  }
  return std::move(*next.value());
}

}  // namespace

util::Status Client::Connect() {
  Close();
  GS_ASSIGN_OR_RETURN(
      socket_, ConnectTcp(config_.host, config_.port,
                          config_.connect_timeout_seconds));
  GS_RETURN_IF_ERROR(
      SetIoTimeout(socket_.fd(), config_.io_timeout_seconds));
  return util::Status::Ok();
}

util::Status Client::SendFrame(wire::MessageType type,
                               std::string_view payload,
                               uint8_t version) {
  if (!connected()) {
    return util::Status::FailedPrecondition("client is not connected");
  }
  return WriteAll(socket_.fd(), wire::EncodeFrame(type, payload, version));
}

util::Result<wire::Frame> Client::ReadFrame() {
  if (!connected()) {
    return util::Status::FailedPrecondition("client is not connected");
  }
  std::string header;
  GS_RETURN_IF_ERROR(
      ReadExact(socket_.fd(), wire::kFrameHeaderBytes, &header));
  wire::FrameDecoder decoder;
  decoder.Append(header);
  // The header alone never completes a frame unless the payload is
  // empty; probe once, then read the announced payload.
  auto probe = decoder.Next();
  GS_RETURN_IF_ERROR(probe.status());
  if (probe.value().has_value()) return std::move(*probe.value());
  // Header is valid (Next would have errored otherwise) but the payload
  // is pending; its size lives at offset 8.
  util::ByteReader size_reader(std::string_view(header).substr(8),
                               "frame size");
  uint32_t payload_size = 0;
  GS_RETURN_IF_ERROR(size_reader.ReadU32(&payload_size));
  std::string payload;
  GS_RETURN_IF_ERROR(ReadExact(socket_.fd(), payload_size, &payload));
  decoder.Append(payload);
  return ParseOneFrame(&decoder);
}

util::Result<wire::Frame> Client::RoundTrip(wire::MessageType type,
                                            const std::string& payload,
                                            uint8_t version) {
  util::Status last = util::Status::Ok();
  for (int attempt = 0; attempt <= config_.max_reconnect_attempts;
       ++attempt) {
    if (!connected()) {
      const util::Status reconnected = Connect();
      if (!reconnected.ok()) {
        last = reconnected;
        continue;
      }
    }
    util::Status sent = SendFrame(type, payload, version);
    if (sent.ok()) {
      auto frame = ReadFrame();
      if (frame.ok()) return frame;
      last = frame.status();
    } else {
      last = sent;
    }
    // Timeouts and protocol violations are not cured by reconnecting
    // with the same request; only a broken connection is.
    if (last.code() != util::StatusCode::kIoError) return last;
    Close();
  }
  return last;
}

util::Result<wire::Frame> Client::ExpectType(wire::Frame frame,
                                             wire::MessageType expected) {
  if (frame.type == expected) return frame;
  if (frame.type == wire::MessageType::kRetryLater) {
    return util::Status::Unavailable(
        "server busy: admission queue full, retry later");
  }
  if (frame.type == wire::MessageType::kError) {
    auto error = wire::DecodeErrorReply(frame.payload);
    if (!error.ok()) return error.status();
    return error.value().ToStatus();
  }
  return util::Status::ParseError(util::StrPrintf(
      "expected %s reply, got %s", wire::MessageTypeName(expected),
      wire::MessageTypeName(frame.type)));
}

util::Result<wire::QueryReply> Client::Query(
    const graph::Graph& query, const wire::QueryOptions& options) {
  wire::QueryRequest request;
  request.options = options;
  request.query = query;
  GS_ASSIGN_OR_RETURN(
      wire::Frame raw,
      RoundTrip(wire::MessageType::kQuery,
                wire::EncodeQueryRequest(request)));
  GS_ASSIGN_OR_RETURN(
      wire::Frame frame,
      ExpectType(std::move(raw), wire::MessageType::kQueryReply));
  return wire::DecodeQueryReply(frame.payload);
}

util::Result<std::vector<wire::QueryReply>> Client::BatchQuery(
    const std::vector<graph::Graph>& queries,
    const wire::QueryOptions& options) {
  wire::BatchQueryRequest request;
  request.options = options;
  request.queries = queries;
  GS_ASSIGN_OR_RETURN(
      wire::Frame raw,
      RoundTrip(wire::MessageType::kBatchQuery,
                wire::EncodeBatchQueryRequest(request)));
  GS_ASSIGN_OR_RETURN(
      wire::Frame frame,
      ExpectType(std::move(raw), wire::MessageType::kBatchQueryReply));
  GS_ASSIGN_OR_RETURN(std::vector<wire::QueryReply> replies,
                      wire::DecodeBatchQueryReply(frame.payload));
  if (replies.size() != queries.size()) {
    return util::Status::Internal(util::StrPrintf(
        "batch reply carries %zu results for %zu queries",
        replies.size(), queries.size()));
  }
  return replies;
}

util::Result<std::vector<wire::QueryReply>> Client::PipelineQueries(
    const std::vector<graph::Graph>& queries,
    const wire::QueryOptions& options) {
  if (!connected()) GS_RETURN_IF_ERROR(Connect());
  // Write every request first (no reconnect mid-pipeline: replies for
  // already-sent requests would be lost), then read replies in order.
  for (const graph::Graph& query : queries) {
    wire::QueryRequest request;
    request.options = options;
    request.query = query;
    util::Status sent = SendFrame(wire::MessageType::kQuery,
                                  wire::EncodeQueryRequest(request));
    if (!sent.ok()) {
      Close();
      return sent;
    }
  }
  std::vector<wire::QueryReply> replies;
  replies.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto raw = ReadFrame();
    if (!raw.ok()) {
      Close();
      return raw.status();
    }
    GS_ASSIGN_OR_RETURN(
        wire::Frame frame,
        ExpectType(std::move(raw).value(), wire::MessageType::kQueryReply));
    GS_ASSIGN_OR_RETURN(wire::QueryReply reply,
                        wire::DecodeQueryReply(frame.payload));
    replies.push_back(std::move(reply));
  }
  return replies;
}

util::Result<wire::ApproxReply> Client::Approx(
    const wire::ApproxRequest& request) {
  GS_ASSIGN_OR_RETURN(
      wire::Frame raw,
      RoundTrip(wire::MessageType::kApproxQuery,
                wire::EncodeApproxRequest(request),
                wire::kApproxWireVersion));
  GS_ASSIGN_OR_RETURN(
      wire::Frame frame,
      ExpectType(std::move(raw), wire::MessageType::kApproxReply));
  return wire::DecodeApproxReply(frame.payload);
}

util::Result<wire::StatsReply> Client::Stats(uint8_t version) {
  wire::StatsRequest request;
  request.version = version;
  const std::string payload = wire::EncodeStatsRequest(request);
  // A version-byte payload is a v2 construct, so the frame is stamped
  // v2; the plain (empty) request stays on v1 frames and old servers
  // keep accepting it.
  GS_ASSIGN_OR_RETURN(
      wire::Frame raw,
      RoundTrip(wire::MessageType::kStats, payload,
                payload.empty() ? wire::kBaseWireVersion : uint8_t{2}));
  GS_ASSIGN_OR_RETURN(
      wire::Frame frame,
      ExpectType(std::move(raw), wire::MessageType::kStatsReply));
  return wire::DecodeStatsReply(frame.payload);
}

util::Result<wire::HealthReply> Client::Health() {
  GS_ASSIGN_OR_RETURN(wire::Frame raw,
                      RoundTrip(wire::MessageType::kHealth, ""));
  GS_ASSIGN_OR_RETURN(
      wire::Frame frame,
      ExpectType(std::move(raw), wire::MessageType::kHealthReply));
  return wire::DecodeHealthReply(frame.payload);
}

}  // namespace graphsig::net
