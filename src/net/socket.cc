#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cmath>

#include "util/strings.h"

namespace graphsig::net {

namespace {

util::Status Errno(const std::string& what) {
  return util::Status::IoError(
      util::StrPrintf("%s: %s", what.c_str(), strerror(errno)));
}

// Numeric IPv4 only (plus the "localhost" alias): the tools serve and
// bench over loopback; DNS would drag in resolver state we don't need.
util::Result<in_addr> ParseHost(const std::string& host) {
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  in_addr addr{};
  if (inet_pton(AF_INET, numeric.c_str(), &addr) != 1) {
    return util::Status::InvalidArgument(
        "host must be an IPv4 address or \"localhost\": " + host);
  }
  return addr;
}

sockaddr_in MakeAddr(in_addr host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = host;
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

void Socket::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

util::Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                               int backlog) {
  GS_ASSIGN_OR_RETURN(const in_addr addr, ParseHost(host));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one)) != 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in bind_addr = MakeAddr(addr, port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&bind_addr),
             sizeof(bind_addr)) != 0) {
    return Errno(util::StrPrintf("bind %s:%u", host.c_str(), port));
  }
  if (::listen(sock.fd(), backlog) != 0) return Errno("listen");
  return sock;
}

util::Result<uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

util::Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                                double timeout_seconds) {
  GS_ASSIGN_OR_RETURN(const in_addr addr, ParseHost(host));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");

  // Nonblocking connect + poll gives a real connect timeout; blocking
  // connect can hang for minutes on an unreachable host.
  GS_RETURN_IF_ERROR(SetNonBlocking(sock.fd(), true));
  const sockaddr_in peer = MakeAddr(addr, port);
  int rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&peer),
                     sizeof(peer));
  if (rc != 0 && errno != EINPROGRESS) {
    if (errno == ECONNREFUSED) {
      return util::Status::Unavailable(util::StrPrintf(
          "connection refused by %s:%u", host.c_str(), port));
    }
    return Errno(util::StrPrintf("connect %s:%u", host.c_str(), port));
  }
  if (rc != 0) {
    pollfd pfd{sock.fd(), POLLOUT, 0};
    const int timeout_ms =
        timeout_seconds <= 0
            ? -1
            : static_cast<int>(std::ceil(timeout_seconds * 1000.0));
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return Errno("poll(connect)");
    if (rc == 0) {
      return util::Status::DeadlineExceeded(util::StrPrintf(
          "connect to %s:%u timed out after %.1fs", host.c_str(), port,
          timeout_seconds));
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) !=
        0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (so_error != 0) {
      if (so_error == ECONNREFUSED) {
        return util::Status::Unavailable(util::StrPrintf(
            "connection refused by %s:%u", host.c_str(), port));
      }
      return util::Status::IoError(util::StrPrintf(
          "connect %s:%u: %s", host.c_str(), port, strerror(so_error)));
    }
  }
  GS_RETURN_IF_ERROR(SetNonBlocking(sock.fd(), false));
  const int one = 1;
  if (::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return sock;
}

util::Result<Socket> AcceptConnection(const Socket& listener,
                                      bool* would_block) {
  *would_block = false;
  int fd;
  do {
    fd = ::accept(listener.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return Socket();
    }
    return Errno("accept");
  }
  Socket sock(fd);
  const int one = 1;
  if (::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return sock;
}

util::Status SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int wanted =
      nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, wanted) != 0) return Errno("fcntl(F_SETFL)");
  return util::Status::Ok();
}

util::Status SetIoTimeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_SNDTIMEO)");
  }
  return util::Status::Ok();
}

util::Status WriteAll(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n =
        ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return util::Status::DeadlineExceeded("send timed out");
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return util::Status::IoError("connection closed by peer");
      }
      return Errno("send");
    }
    bytes.remove_prefix(static_cast<size_t>(n));
  }
  return util::Status::Ok();
}

util::Status ReadExact(int fd, size_t n, std::string* out) {
  const size_t start = out->size();
  out->resize(start + n);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out->data() + start + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      out->resize(start + got);
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return util::Status::DeadlineExceeded("recv timed out");
      }
      if (errno == ECONNRESET) {
        return util::Status::IoError("connection reset by peer");
      }
      return Errno("recv");
    }
    if (r == 0) {
      out->resize(start + got);
      return util::Status::IoError(util::StrPrintf(
          "connection closed with %zu of %zu bytes read", got, n));
    }
    got += static_cast<size_t>(r);
  }
  return util::Status::Ok();
}

IoState ReadSome(int fd, size_t max_bytes, std::string* buf,
                 util::Status* error) {
  const size_t start = buf->size();
  buf->resize(start + max_bytes);
  ssize_t r;
  do {
    r = ::recv(fd, buf->data() + start, max_bytes, 0);
  } while (r < 0 && errno == EINTR);
  buf->resize(start + (r > 0 ? static_cast<size_t>(r) : 0));
  if (r > 0) return IoState::kOk;
  if (r == 0) return IoState::kEof;
  if (errno == EAGAIN || errno == EWOULDBLOCK) return IoState::kWouldBlock;
  *error = Errno("recv");
  return IoState::kError;
}

IoState WriteSome(int fd, std::string_view bytes, size_t* written,
                  util::Status* error) {
  *written = 0;
  if (bytes.empty()) return IoState::kOk;
  ssize_t n;
  do {
    n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  } while (n < 0 && errno == EINTR);
  if (n >= 0) {
    *written = static_cast<size_t>(n);
    return IoState::kOk;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) return IoState::kWouldBlock;
  if (errno == EPIPE || errno == ECONNRESET) {
    *error = util::Status::IoError("connection closed by peer");
    return IoState::kError;
  }
  *error = Errno("send");
  return IoState::kError;
}

}  // namespace graphsig::net
