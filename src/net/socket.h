#ifndef GRAPHSIG_NET_SOCKET_H_
#define GRAPHSIG_NET_SOCKET_H_

// Thin RAII + Status layer over POSIX TCP sockets. Every raw socket
// syscall in the project lives in socket.cc (scripts/lint.py bans
// send/recv/close/epoll_* outside src/net/), so error handling,
// SIGPIPE suppression (MSG_NOSIGNAL), and EINTR retries are written
// exactly once.
//
// Two I/O styles, matching the two sides of the protocol:
//   * blocking exact-count helpers (WriteAll/ReadExact) with socket
//     timeouts — the client and the tools;
//   * nonblocking chunk helpers (ReadSome/WriteSome) reporting
//     would-block as a state, not an error — the epoll server loop.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace graphsig::net {

// Owns one file descriptor; closes it on destruction. Movable so
// accept loops can hand connections around; not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Reset(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  // Closes the current fd (if any) and adopts `fd`.
  void Reset(int fd = -1);
  // Relinquishes ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

// Binds and listens on host:port (IPv4 dotted quad, or "localhost").
// Port 0 binds an ephemeral port — read it back with LocalPort. The
// returned socket has SO_REUSEADDR set and is left blocking; the server
// switches it to nonblocking itself.
util::Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                               int backlog);

// The locally bound port of a listening or connected socket.
util::Result<uint16_t> LocalPort(const Socket& socket);

// Connects to host:port, failing with DeadlineExceeded after
// `timeout_seconds` (<= 0 means block indefinitely). The returned
// socket is blocking with TCP_NODELAY set (the protocol is
// request/response; Nagle only adds latency).
util::Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                                double timeout_seconds);

// Accepts one pending connection from a listening socket.
// Would-block (no pending connection on a nonblocking listener) is
// reported as an invalid Socket with ok() status via `*would_block`.
util::Result<Socket> AcceptConnection(const Socket& listener,
                                      bool* would_block);

util::Status SetNonBlocking(int fd, bool nonblocking);

// SO_RCVTIMEO / SO_SNDTIMEO for the blocking client paths; timed-out
// I/O surfaces as DeadlineExceeded from ReadExact/WriteAll.
util::Status SetIoTimeout(int fd, double seconds);

// Writes all of `bytes` (blocking socket), retrying short writes and
// EINTR. SIGPIPE is suppressed; a closed peer returns IoError.
util::Status WriteAll(int fd, std::string_view bytes);

// Reads exactly `n` bytes into *out (appending). EOF before `n` bytes
// is IoError("connection closed..."); a receive timeout is
// DeadlineExceeded.
util::Status ReadExact(int fd, size_t n, std::string* out);

// Nonblocking I/O outcome for the event loop.
enum class IoState {
  kOk,          // made progress
  kWouldBlock,  // no progress possible now; wait for epoll
  kEof,         // peer closed (read side only)
  kError,       // hard error; see the Status out-param
};

// Reads up to `max_bytes`, appending to *buf.
IoState ReadSome(int fd, size_t max_bytes, std::string* buf,
                 util::Status* error);

// Writes a prefix of `bytes`; *written reports how many were accepted.
IoState WriteSome(int fd, std::string_view bytes, size_t* written,
                  util::Status* error);

}  // namespace graphsig::net

#endif  // GRAPHSIG_NET_SOCKET_H_
