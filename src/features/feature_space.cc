#include "features/feature_space.h"

#include <algorithm>
#include <set>

#include "util/check.h"
#include "util/strings.h"

namespace graphsig::features {

void FeatureSpace::AddVertexFeature(graph::Label label) {
  if (vertex_slots_.count(label)) return;
  vertex_slots_[label] = static_cast<int>(vertex_order_.size());
  vertex_order_.push_back(label);
}

void FeatureSpace::AddEdgeFeature(graph::Label a, graph::Label b,
                                  graph::Label edge_label) {
  if (a > b) std::swap(a, b);
  auto key = std::make_tuple(a, b, edge_label);
  if (edge_slots_.count(key)) return;
  edge_slots_[key] = static_cast<int>(edge_order_.size());
  edge_order_.push_back({a, b, edge_label});
}

int FeatureSpace::VertexFeature(graph::Label label) const {
  auto it = vertex_slots_.find(label);
  return it == vertex_slots_.end() ? -1 : it->second;
}

int FeatureSpace::EdgeFeature(graph::Label a, graph::Label b,
                              graph::Label edge_label) const {
  if (a > b) std::swap(a, b);
  auto it = edge_slots_.find(std::make_tuple(a, b, edge_label));
  if (it == edge_slots_.end()) return -1;
  // Edge slots come after all vertex slots in the flat layout.
  return static_cast<int>(vertex_order_.size()) + it->second;
}

std::string FeatureSpace::FeatureName(
    size_t slot, const graph::LabelDictionary* vdict,
    const graph::LabelDictionary* edict) const {
  GS_CHECK_LT(slot, size());
  auto vname = [&](graph::Label l) -> std::string {
    if (vdict != nullptr && vdict->Contains(l)) return vdict->Name(l);
    return std::to_string(l);
  };
  auto ename = [&](graph::Label l) -> std::string {
    if (edict != nullptr && edict->Contains(l)) return edict->Name(l);
    return std::to_string(l);
  };
  if (slot < vertex_order_.size()) {
    return "atom:" + vname(vertex_order_[slot]);
  }
  const EdgeType& e = edge_order_[slot - vertex_order_.size()];
  return "edge:" + vname(e.a) + "-" + ename(e.edge_label) + "-" + vname(e.b);
}

FeatureSpace FeatureSpace::ForChemicalDatabase(const graph::GraphDatabase& db,
                                               int top_k_atoms) {
  FeatureSpace fs;
  auto counts = db.VertexLabelCounts();
  // All atom types are features, in frequency-descending order so slots
  // are stable and the common atoms come first.
  std::vector<std::pair<int64_t, graph::Label>> ranked;
  for (const auto& [label, count] : counts) ranked.push_back({count, label});
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second < y.second;
  });
  for (const auto& [count, label] : ranked) fs.AddVertexFeature(label);

  // Edge types between the top-k atoms.
  std::set<graph::Label> top;
  for (int i = 0; i < top_k_atoms && i < static_cast<int>(ranked.size());
       ++i) {
    top.insert(ranked[i].second);
  }
  for (const graph::Graph& g : db.graphs()) {
    for (const graph::EdgeRecord& e : g.edges()) {
      graph::Label la = g.vertex_label(e.u);
      graph::Label lb = g.vertex_label(e.v);
      if (top.count(la) && top.count(lb)) {
        fs.AddEdgeFeature(la, lb, e.label);
      }
    }
  }
  return fs;
}

FeatureSpace FeatureSpace::VertexLabelsOnly(const graph::GraphDatabase& db) {
  FeatureSpace fs;
  for (const auto& [label, count] : db.VertexLabelCounts()) {
    fs.AddVertexFeature(label);
  }
  return fs;
}

FeatureSpace FeatureSpace::AllEdgeTypes(const graph::GraphDatabase& db) {
  FeatureSpace fs;
  for (const graph::Graph& g : db.graphs()) {
    for (const graph::EdgeRecord& e : g.edges()) {
      fs.AddEdgeFeature(g.vertex_label(e.u), g.vertex_label(e.v), e.label);
    }
  }
  return fs;
}

}  // namespace graphsig::features
