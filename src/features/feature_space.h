#ifndef GRAPHSIG_FEATURES_FEATURE_SPACE_H_
#define GRAPHSIG_FEATURES_FEATURE_SPACE_H_

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "graph/graph_database.h"
#include "graph/io.h"

namespace graphsig::features {

// An edge-type feature: an unordered pair of endpoint labels plus the
// edge label (a <= b).
struct EdgeType {
  graph::Label a;
  graph::Label b;
  graph::Label edge_label;

  friend auto operator<=>(const EdgeType&, const EdgeType&) = default;
};

// The feature set F of Section II: a fixed, ordered collection of vertex-
// label features and edge-type features. RWR distributes its visit mass
// over these slots.
//
// The chemical-compound recipe (Section II-B) is ForChemicalDatabase():
// every atom type is a vertex feature, and every edge type whose two
// endpoints are both among the top-k most frequent atoms is an edge
// feature. An atom feature only accumulates mass when the walker arrives
// over an edge whose type is NOT itself a feature.
class FeatureSpace {
 public:
  FeatureSpace() = default;

  // All vertex labels of `db` as features, plus edge types between the
  // `top_k_atoms` most frequent vertex labels (paper default: 5).
  static FeatureSpace ForChemicalDatabase(const graph::GraphDatabase& db,
                                          int top_k_atoms = 5);

  // Vertex-label features only (loses adjacency structure).
  static FeatureSpace VertexLabelsOnly(const graph::GraphDatabase& db);

  // Every edge type in `db` as a feature, no vertex features (the
  // Fig. 6 running-example configuration).
  static FeatureSpace AllEdgeTypes(const graph::GraphDatabase& db);

  // Manual construction.
  void AddVertexFeature(graph::Label label);
  void AddEdgeFeature(graph::Label a, graph::Label b,
                      graph::Label edge_label);

  size_t size() const {
    return vertex_order_.size() + edge_order_.size();
  }
  size_t num_vertex_features() const { return vertex_order_.size(); }
  size_t num_edge_features() const { return edge_order_.size(); }

  // Feature slot for a vertex label, or -1 if not a feature.
  int VertexFeature(graph::Label label) const;
  // Feature slot for an edge type (endpoint order irrelevant), or -1.
  int EdgeFeature(graph::Label a, graph::Label b,
                  graph::Label edge_label) const;

  // Human-readable slot name ("atom:C", "edge:C-1-N"); dictionaries are
  // optional (numeric ids otherwise).
  std::string FeatureName(size_t slot,
                          const graph::LabelDictionary* vdict = nullptr,
                          const graph::LabelDictionary* edict = nullptr) const;

  // Features in slot order — replaying these through AddVertexFeature /
  // AddEdgeFeature reconstructs an equal space (the serialization
  // contract of model::EncodeArtifact).
  const std::vector<graph::Label>& vertex_features() const {
    return vertex_order_;
  }
  const std::vector<EdgeType>& edge_features() const { return edge_order_; }

  friend bool operator==(const FeatureSpace&, const FeatureSpace&) = default;

 private:
  std::map<graph::Label, int> vertex_slots_;
  std::map<std::tuple<graph::Label, graph::Label, graph::Label>, int>
      edge_slots_;
  std::vector<graph::Label> vertex_order_;
  std::vector<EdgeType> edge_order_;
};

}  // namespace graphsig::features

#endif  // GRAPHSIG_FEATURES_FEATURE_SPACE_H_
