#include "features/rwr.h"

#include <cmath>

#include "graph/csr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/parallel.h"

namespace graphsig::features {
namespace {

// Work counters for the power iteration (DESIGN.md §12). All three are
// deterministic: iteration counts and the float-op tally depend only on
// the graph and the config, never on scheduling. Hot loops accumulate
// into locals and flush once per source to keep the per-step cost zero.
struct RwrMetrics {
  obs::Counter* sources;
  obs::Counter* iterations;
  obs::Counter* float_ops;

  static const RwrMetrics& Get() {
    static const RwrMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("rwr/sources"),
        obs::MetricsRegistry::Global().GetCounter("rwr/power_iterations"),
        obs::MetricsRegistry::Global().GetCounter("rwr/float_ops")};
    return m;
  }

  void Flush(uint64_t iters, uint64_t flops) const {
    sources->Increment();
    iterations->Add(iters);
    float_ops->Add(flops);
  }
};

// Accumulates per-feature mass from a stationary node distribution.
// `in_window[v]` marks nodes reachable by the (possibly radius-confined)
// walk; edges with an endpoint outside the window carry no mass because
// the stationary probability there is zero.
std::vector<double> AccumulateFeatureMass(const graph::Graph& g,
                                          const std::vector<double>& p,
                                          const FeatureSpace& features) {
  std::vector<double> mass(features.size(), 0.0);
  for (const graph::EdgeRecord& e : g.edges()) {
    const double rate_uv =
        g.degree(e.u) > 0 ? p[e.u] / g.degree(e.u) : 0.0;
    const double rate_vu =
        g.degree(e.v) > 0 ? p[e.v] / g.degree(e.v) : 0.0;
    const graph::Label lu = g.vertex_label(e.u);
    const graph::Label lv = g.vertex_label(e.v);
    const int edge_slot = features.EdgeFeature(lu, lv, e.label);
    if (edge_slot >= 0) {
      // Feature edge: traversal in either direction feeds the edge slot.
      mass[edge_slot] += rate_uv + rate_vu;
    } else {
      // Non-feature edge: arrivals feed the destination's atom slot
      // (Section II-B: "an atom-based feature is updated only when the
      // edge-type traversed is not in F").
      const int slot_v = features.VertexFeature(lv);
      if (slot_v >= 0) mass[slot_v] += rate_uv;
      const int slot_u = features.VertexFeature(lu);
      if (slot_u >= 0) mass[slot_u] += rate_vu;
    }
  }
  double total = 0.0;
  for (double m : mass) total += m;
  if (total > 0.0) {
    for (double& m : mass) m /= total;
  }
  return mass;
}

}  // namespace

namespace {

// Fast path for the unconfined walk (radius <= 0): no window bookkeeping,
// effective out-degree is the plain degree. This is the hot loop of both
// GraphSig featurization and query-time classification. Templated over
// the graph representation: GraphToVectors runs it on CsrGraph (one CSR
// build amortized over all of a graph's sources), the Graph overload
// keeps one-off callers working. Both instantiations visit neighbors in
// the same order, so the float accumulation — and therefore every output
// byte and the rwr/* work counters — is identical.
template <typename GraphT>
std::vector<double> RwrWholeGraph(const GraphT& g,
                                  graph::VertexId source,
                                  const RwrConfig& config) {
  const double alpha = config.restart_prob;
  std::vector<double> p(g.num_vertices(), 0.0);
  p[source] = 1.0;
  std::vector<double> next(g.num_vertices(), 0.0);
  uint64_t iters = 0, flops = 0;
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    ++iters;
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (p[v] == 0.0) continue;
      const int degree = g.degree(v);
      if (degree == 0) {
        dangling += p[v];
        ++flops;
        continue;
      }
      const double share = (1.0 - alpha) * p[v] / degree;
      flops += 2 + static_cast<uint64_t>(degree);
      for (const graph::AdjEntry& adj : g.neighbors(v)) {
        next[adj.to] += share;
      }
    }
    next[source] += alpha * (1.0 - dangling) + dangling;
    double delta = 0.0;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      delta += std::abs(next[v] - p[v]);
    }
    flops += 2 * static_cast<uint64_t>(g.num_vertices());
    p.swap(next);
    if (delta < config.epsilon) break;
  }
  RwrMetrics::Get().Flush(iters, flops);
  return p;
}

// Radius-confined walk (radius > 0); same representation-templating and
// determinism argument as RwrWholeGraph above.
template <typename GraphT>
std::vector<double> RwrConfined(const GraphT& g, graph::VertexId source,
                                const RwrConfig& config) {
  std::vector<bool> in_window(g.num_vertices(), false);
  for (graph::VertexId v : g.VerticesWithinRadius(source, config.radius)) {
    in_window[v] = true;
  }

  // Effective out-degree counts only in-window neighbors; a walker at a
  // node with no usable neighbor restarts deterministically.
  std::vector<int> out_degree(g.num_vertices(), 0);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!in_window[v]) continue;
    for (const graph::AdjEntry& adj : g.neighbors(v)) {
      if (in_window[adj.to]) ++out_degree[v];
    }
  }

  const double alpha = config.restart_prob;
  std::vector<double> p(g.num_vertices(), 0.0);
  p[source] = 1.0;
  std::vector<double> next(g.num_vertices(), 0.0);
  uint64_t iters = 0, flops = 0;
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    ++iters;
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;  // mass at nodes with no onward move
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (p[v] == 0.0 || !in_window[v]) continue;
      if (out_degree[v] == 0) {
        dangling += p[v];
        ++flops;
        continue;
      }
      const double share = (1.0 - alpha) * p[v] / out_degree[v];
      flops += 2 + static_cast<uint64_t>(out_degree[v]);
      for (const graph::AdjEntry& adj : g.neighbors(v)) {
        if (in_window[adj.to]) next[adj.to] += share;
      }
    }
    next[source] += alpha * (1.0 - dangling) + dangling;
    double delta = 0.0;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      delta += std::abs(next[v] - p[v]);
    }
    flops += 2 * static_cast<uint64_t>(g.num_vertices());
    p.swap(next);
    if (delta < config.epsilon) break;
  }
  RwrMetrics::Get().Flush(iters, flops);
  return p;
}

template <typename GraphT>
std::vector<double> RwrStationaryImpl(const GraphT& g,
                                      graph::VertexId source,
                                      const RwrConfig& config) {
  GS_CHECK_GE(source, 0);
  GS_CHECK_LT(source, g.num_vertices());
  GS_CHECK_GT(config.restart_prob, 0.0);
  GS_CHECK_LE(config.restart_prob, 1.0);
  if (config.radius <= 0) return RwrWholeGraph(g, source, config);
  return RwrConfined(g, source, config);
}

}  // namespace

std::vector<double> RwrStationaryDistribution(const graph::Graph& g,
                                              graph::VertexId source,
                                              const RwrConfig& config) {
  return RwrStationaryImpl(g, source, config);
}

std::vector<double> RwrStationaryDistribution(const graph::CsrGraph& g,
                                              graph::VertexId source,
                                              const RwrConfig& config) {
  return RwrStationaryImpl(g, source, config);
}

std::vector<double> RwrFeatureDistribution(const graph::Graph& g,
                                           graph::VertexId source,
                                           const FeatureSpace& features,
                                           const RwrConfig& config) {
  std::vector<double> p = RwrStationaryDistribution(g, source, config);
  return AccumulateFeatureMass(g, p, features);
}

std::vector<double> CountFeatureDistribution(const graph::Graph& g,
                                             graph::VertexId source,
                                             const FeatureSpace& features,
                                             int radius) {
  std::vector<bool> in_window(g.num_vertices(), false);
  if (radius > 0) {
    for (graph::VertexId v : g.VerticesWithinRadius(source, radius)) {
      in_window[v] = true;
    }
  } else {
    in_window.assign(g.num_vertices(), true);
  }
  std::vector<double> mass(features.size(), 0.0);
  for (const graph::EdgeRecord& e : g.edges()) {
    if (!in_window[e.u] || !in_window[e.v]) continue;
    const graph::Label lu = g.vertex_label(e.u);
    const graph::Label lv = g.vertex_label(e.v);
    const int edge_slot = features.EdgeFeature(lu, lv, e.label);
    if (edge_slot >= 0) {
      mass[edge_slot] += 1.0;
    } else {
      const int slot_u = features.VertexFeature(lu);
      if (slot_u >= 0) mass[slot_u] += 1.0;
      const int slot_v = features.VertexFeature(lv);
      if (slot_v >= 0) mass[slot_v] += 1.0;
    }
  }
  double total = 0.0;
  for (double m : mass) total += m;
  if (total > 0.0) {
    for (double& m : mass) m /= total;
  }
  return mass;
}

FeatureVec Discretize(const std::vector<double>& distribution, int bins) {
  GS_CHECK_GT(bins, 0);
  FeatureVec out(distribution.size(), 0);
  for (size_t i = 0; i < distribution.size(); ++i) {
    GS_CHECK_GE(distribution[i], -1e-12);
    int v = static_cast<int>(std::lround(distribution[i] * bins));
    if (v < 0) v = 0;
    if (v > bins) v = bins;
    out[i] = static_cast<int16_t>(v);
  }
  return out;
}

std::vector<NodeVector> GraphToVectors(const graph::Graph& g,
                                       int32_t graph_index,
                                       const FeatureSpace& features,
                                       const RwrConfig& config) {
  std::vector<NodeVector> out;
  out.reserve(g.num_vertices());
  // One CSR build serves every source of this graph. The mass
  // accumulation intentionally stays on the Graph's flat edge list: its
  // float-add order is part of the byte-identical output contract.
  const graph::CsrGraph csr(g);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    NodeVector nv;
    nv.graph_index = graph_index;
    nv.node = v;
    nv.node_label = g.vertex_label(v);
    const std::vector<double> distribution =
        config.featurizer == Featurizer::kRwr
            ? AccumulateFeatureMass(
                  g, RwrStationaryDistribution(csr, v, config), features)
            : CountFeatureDistribution(g, v, features, config.radius);
    nv.values = Discretize(distribution, config.bins);
    out.push_back(std::move(nv));
  }
  return out;
}

std::vector<NodeVector> DatabaseToVectors(const graph::GraphDatabase& db,
                                          const FeatureSpace& features,
                                          const RwrConfig& config,
                                          int num_threads) {
  GS_TRACE_SPAN_NAMED(span, "features/vectorize");
  // Pre-size the output so each graph writes a disjoint slice and the
  // result is independent of scheduling.
  std::vector<size_t> offsets(db.size() + 1, 0);
  for (size_t i = 0; i < db.size(); ++i) {
    offsets[i + 1] = offsets[i] + db.graph(i).num_vertices();
  }
  std::vector<NodeVector> out(offsets.back());
  util::ParallelFor(num_threads, db.size(), [&](size_t i) {
    auto vectors = GraphToVectors(db.graph(i), static_cast<int32_t>(i),
                                  features, config);
    for (size_t k = 0; k < vectors.size(); ++k) {
      out[offsets[i] + k] = std::move(vectors[k]);
    }
  });
  span.AddWork(offsets.back());  // one unit per node vector produced
  return out;
}

}  // namespace graphsig::features
