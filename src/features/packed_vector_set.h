#ifndef GRAPHSIG_FEATURES_PACKED_VECTOR_SET_H_
#define GRAPHSIG_FEATURES_PACKED_VECTOR_SET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "features/feature_vector.h"

namespace graphsig::features {

// --- 4-bit SWAR lane primitives (DESIGN.md §14) ------------------------
//
// Feature slots hold values in [0, bins] with bins = 10, so each fits in
// an unsigned 4-bit lane; 16 lanes pack into one uint64_t word. The
// kernels below compare / min / max all 16 lanes of a word at once with
// no spare carry bit (values may use bit 3), via the classic
// borrow-propagation trick:
//
//   t = (y | H) - (x & ~H)   gives per-lane 8 + y_low - x_low  (in [1,15],
//                            so no borrow ever crosses a lane boundary)
//   bit 3 of t is set  <=>  y_low >= x_low
//   x_lane > y_lane    <=>  (xh & ~yh) | (xh == yh  &  x_low > y_low)
//
// which assembles into the single mask below with the lane-high bit set
// exactly where x's lane exceeds y's.

inline constexpr uint64_t kPackedLaneHigh = 0x8888888888888888ull;
inline constexpr size_t kPackedSlotsPerWord = 16;
inline constexpr int16_t kPackedMaxSlotValue = 15;

// Lane-high bit set in every lane where x's 4-bit lane > y's.
inline uint64_t PackedGtMask(uint64_t x, uint64_t y) {
  const uint64_t t = (y | kPackedLaneHigh) - (x & ~kPackedLaneHigh);
  return ((x & ~y) | (~(x ^ y) & ~t)) & kPackedLaneHigh;
}

// Spread each lane-high bit to the full nibble: 0x8 -> 0xF per lane.
inline uint64_t PackedLaneFill(uint64_t high_bits) {
  return (high_bits >> 3) * 0xFull;
}

// Lane-wise min / max of two packed words.
inline uint64_t PackedMin(uint64_t x, uint64_t y) {
  const uint64_t take_y = PackedLaneFill(PackedGtMask(x, y));
  return (x & ~take_y) | (y & take_y);
}
inline uint64_t PackedMax(uint64_t x, uint64_t y) {
  const uint64_t take_x = PackedLaneFill(PackedGtMask(x, y));
  return (y & ~take_x) | (x & take_x);
}

// Mask covering the low `slots` lanes of a word (slots in [0, 16]).
inline uint64_t PackedLowSlotsMask(size_t slots) {
  return slots >= kPackedSlotsPerWord ? ~0ull
                                      : (1ull << (4 * slots)) - 1;
}

// Deterministic work tallies for the packed kernels. Callers accumulate
// into a local instance inside the hot loop and flush once per task via
// FlushPackedOpStats (DESIGN.md §12).
struct PackedOpStats {
  uint64_t words_compared = 0;          // SWAR word ops in compare/min/max
  uint64_t vectors_pruned_wordwise = 0; // dominance rejects before last word
};

// Adds `stats` to the fv/words_compared and fv/vectors_pruned_wordwise
// work counters.
void FlushPackedOpStats(const PackedOpStats& stats);

// Non-owning view of one packed vector (`width` slots starting at word 0).
struct PackedSlice {
  const uint64_t* words = nullptr;
  size_t width = 0;

  int16_t slot(size_t i) const {
    return static_cast<int16_t>(
        (words[i / kPackedSlotsPerWord] >> ((i % kPackedSlotsPerWord) * 4)) &
        0xF);
  }
};

// Unpack `width` slots of a packed row into a FeatureVec.
FeatureVec UnpackWords(const uint64_t* words, size_t width);

// Columnar store for one label-group's feature-vector population: row i
// is vector i, packed 16 slots per uint64_t word. Slots beyond `width`
// in the last word are always zero. This is the canonical population
// container for FVMine and pattern scoring; the old
// std::vector<const FeatureVec*> idiom is banned by lint.
class PackedVectorSet {
 public:
  PackedVectorSet() = default;
  explicit PackedVectorSet(size_t width)
      : width_(width),
        words_per_vector_(
            (width + kPackedSlotsPerWord - 1) / kPackedSlotsPerWord) {}

  // Packs a contiguous population; all vectors must share one width.
  static PackedVectorSet FromVectors(const std::vector<FeatureVec>& vectors);

  void Reserve(size_t count) { words_.reserve(count * words_per_vector_); }

  // Appends a vector (values must fit 4 bits); returns its row index.
  int32_t Add(const FeatureVec& v);

  size_t size() const {
    return words_per_vector_ == 0 ? 0 : words_.size() / words_per_vector_;
  }
  bool empty() const { return words_.empty(); }
  size_t width() const { return width_; }
  size_t words_per_vector() const { return words_per_vector_; }

  const uint64_t* row(int32_t i) const {
    return words_.data() + static_cast<size_t>(i) * words_per_vector_;
  }
  PackedSlice slice(int32_t i) const { return {row(i), width_}; }

  // Slot `s` of vector `i`.
  int16_t at(int32_t i, size_t s) const { return slice(i).slot(s); }

  FeatureVec Unpack(int32_t i) const { return UnpackWords(row(i), width_); }

  // True iff x <= row(y) slot-wise, where x points at words_per_vector()
  // packed words (Definition 3, word-parallel). Early-exits on the first
  // word with any violating lane.
  bool Dominates(const uint64_t* x, int32_t y, PackedOpStats* stats) const;

  // Slot-wise min / max over rows[indices] (non-empty), written into
  // `out` (words_per_vector() words).
  void FloorInto(std::span<const int32_t> indices, uint64_t* out,
                 PackedOpStats* stats) const;
  void CeilingInto(std::span<const int32_t> indices, uint64_t* out,
                   PackedOpStats* stats) const;

 private:
  size_t width_ = 0;
  size_t words_per_vector_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace graphsig::features

#endif  // GRAPHSIG_FEATURES_PACKED_VECTOR_SET_H_
