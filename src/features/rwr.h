#ifndef GRAPHSIG_FEATURES_RWR_H_
#define GRAPHSIG_FEATURES_RWR_H_

#include <vector>

#include "features/feature_space.h"
#include "features/feature_vector.h"
#include "graph/csr.h"
#include "graph/graph_database.h"

namespace graphsig::features {

// Random Walk with Restart featurization (Section II-C): the "sliding
// window" of GraphSig. The walker starts at a source node; each step it
// restarts to the source with probability `restart_prob`, otherwise it
// moves to a uniformly random neighbor. The stationary visit distribution
// is computed by deterministic power iteration, then converted to a mass
// over features: each edge feature receives the stationary rate at which
// that edge is traversed; each vertex-label feature receives the rate of
// arrivals at such a vertex over edges whose type is NOT a feature. The
// distribution is normalized and discretized into `bins` bins by
// round(bins * value) — paper: 0.07 -> 1, 0.34 -> 3 at bins = 10.
// Which featurizer GraphToVectors applies. kRwr is the paper's method;
// kWindowCount is the ablation it argues against (plain occurrence
// counts, no proximity information).
enum class Featurizer { kRwr, kWindowCount };

struct RwrConfig {
  double restart_prob = 0.25;  // alpha; ~1/alpha jumps per excursion
  double epsilon = 1e-9;       // L1 convergence threshold
  int max_iterations = 1000;   // safety cap for power iteration
  int bins = 10;
  // If > 0, the walk is confined to the BFS ball of this radius around
  // the source (a hard window). 0 lets the restart do the localizing,
  // which is the paper's configuration. For the kWindowCount featurizer
  // this is the counting window (0 = whole graph).
  int radius = 0;
  Featurizer featurizer = Featurizer::kRwr;
};

// Stationary node-visit distribution of RWR from `source`. Entry v is the
// stationary probability of the walker standing at v.
std::vector<double> RwrStationaryDistribution(const graph::Graph& g,
                                              graph::VertexId source,
                                              const RwrConfig& config);

// CSR overload: same values, same rwr/* work counters, byte for byte —
// the power iteration visits neighbors in the same order. GraphToVectors
// uses this so one CSR build amortizes over all of a graph's sources.
std::vector<double> RwrStationaryDistribution(const graph::CsrGraph& g,
                                              graph::VertexId source,
                                              const RwrConfig& config);

// Continuous feature-mass distribution (one slot per feature of
// `features`), normalized to sum 1 when any mass exists.
std::vector<double> RwrFeatureDistribution(const graph::Graph& g,
                                           graph::VertexId source,
                                           const FeatureSpace& features,
                                           const RwrConfig& config);

// Ablation featurizer (Table II discussion): plain occurrence counts of
// features inside the radius window (radius <= 0 means the whole graph),
// normalized the same way. Preserves strictly less structure than RWR.
std::vector<double> CountFeatureDistribution(const graph::Graph& g,
                                             graph::VertexId source,
                                             const FeatureSpace& features,
                                             int radius);

// round(bins * value) per slot, clamped to [0, bins].
FeatureVec Discretize(const std::vector<double>& distribution, int bins);

// One NodeVector per node of `g` (RWR featurizer).
std::vector<NodeVector> GraphToVectors(const graph::Graph& g,
                                       int32_t graph_index,
                                       const FeatureSpace& features,
                                       const RwrConfig& config);

// One NodeVector per node of every graph of `db` — the D of Algorithm 2.
// With num_threads > 1 the graphs are featurized in parallel; the output
// order (graph 0's nodes, graph 1's nodes, ...) and every value are
// identical to the single-threaded run.
std::vector<NodeVector> DatabaseToVectors(const graph::GraphDatabase& db,
                                          const FeatureSpace& features,
                                          const RwrConfig& config,
                                          int num_threads = 1);

}  // namespace graphsig::features

#endif  // GRAPHSIG_FEATURES_RWR_H_
