#include "features/selection.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace graphsig::features {

std::vector<AtomCoverage> CumulativeAtomCoverage(
    const graph::GraphDatabase& db) {
  auto counts = db.VertexLabelCounts();
  std::vector<AtomCoverage> out;
  int64_t total = 0;
  for (const auto& [label, count] : counts) {
    out.push_back({label, count, 0.0});
    total += count;
  }
  std::sort(out.begin(), out.end(),
            [](const AtomCoverage& a, const AtomCoverage& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.label < b.label;
            });
  int64_t running = 0;
  for (AtomCoverage& row : out) {
    running += row.count;
    row.cumulative_percent =
        total > 0 ? 100.0 * static_cast<double>(running) / total : 0.0;
  }
  return out;
}

std::vector<graph::Label> TopKAtoms(const graph::GraphDatabase& db, int k) {
  auto coverage = CumulativeAtomCoverage(db);
  std::vector<graph::Label> out;
  for (int i = 0; i < k && i < static_cast<int>(coverage.size()); ++i) {
    out.push_back(coverage[i].label);
  }
  return out;
}

std::vector<size_t> GreedySelect(
    size_t num_candidates, int k,
    const std::function<double(size_t)>& importance,
    const std::function<double(size_t, size_t)>& similarity, double w1,
    double w2) {
  GS_CHECK_GE(k, 0);
  std::vector<size_t> chosen;
  std::vector<bool> used(num_candidates, false);
  while (chosen.size() < static_cast<size_t>(k) &&
         chosen.size() < num_candidates) {
    double best_score = -std::numeric_limits<double>::infinity();
    size_t best = num_candidates;
    for (size_t f = 0; f < num_candidates; ++f) {
      if (used[f]) continue;
      double penalty = 0.0;
      if (!chosen.empty()) {
        for (size_t prior : chosen) penalty += similarity(prior, f);
        penalty *= w2 / static_cast<double>(chosen.size());
      }
      const double score = w1 * importance(f) - penalty;
      if (score > best_score) {
        best_score = score;
        best = f;
      }
    }
    GS_CHECK_LT(best, num_candidates);
    used[best] = true;
    chosen.push_back(best);
  }
  return chosen;
}

std::vector<fsm::Pattern> SelectSubgraphFeatures(
    const graph::GraphDatabase& db, const SubgraphFeatureOptions& options) {
  fsm::MinerConfig miner_config;
  miner_config.min_support =
      fsm::SupportFromPercent(options.min_support_percent, db.size());
  miner_config.max_edges = options.max_edges;
  miner_config.min_edges = options.min_edges;
  miner_config.max_patterns = options.max_candidates;
  fsm::MineResult mined = fsm::MineFrequentGSpan(db, miner_config);
  if (mined.patterns.empty()) return {};

  auto importance = [&](size_t i) {
    return static_cast<double>(mined.patterns[i].support) /
           static_cast<double>(db.size());
  };
  auto similarity = [&](size_t a, size_t b) {
    const std::vector<int32_t>& sa = mined.patterns[a].supporting;
    const std::vector<int32_t>& sb = mined.patterns[b].supporting;
    std::vector<int32_t> common;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::back_inserter(common));
    const size_t unions = sa.size() + sb.size() - common.size();
    return unions == 0
               ? 0.0
               : static_cast<double>(common.size()) / unions;
  };
  std::vector<size_t> chosen =
      GreedySelect(mined.patterns.size(), options.k, importance, similarity,
                   options.w1, options.w2);
  std::vector<fsm::Pattern> out;
  out.reserve(chosen.size());
  for (size_t i : chosen) out.push_back(mined.patterns[i]);
  return out;
}

}  // namespace graphsig::features
