#ifndef GRAPHSIG_FEATURES_FEATURE_VECTOR_H_
#define GRAPHSIG_FEATURES_FEATURE_VECTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace graphsig::features {

// Discretized feature vector: one slot per feature in a FeatureSpace,
// values in [0, bins] (10 bins by default, per the paper).
using FeatureVec = std::vector<int16_t>;

// The feature vector produced by RWR from one node, plus its provenance.
// GraphSig groups these by node_label and mines them with FVMine.
struct NodeVector {
  int32_t graph_index = -1;   // index of the source graph in its database
  graph::VertexId node = -1;  // source node within that graph
  graph::Label node_label = -1;
  FeatureVec values;
};

// True iff x <= y slot-wise (Definition 3: x is a sub-feature vector).
bool IsSubVector(const FeatureVec& x, const FeatureVec& y);

// Slot-wise min / max over base[indices] (non-empty), where `base` is a
// contiguous population array (Definition 5). The result is written into
// *out, which is resized to the vector width and may be reused across
// calls. These are the scalar reference kernels; the word-parallel
// production forms live on features::PackedVectorSet (packed_vector_set.h)
// and must agree with these exactly.
void FloorInto(const FeatureVec* base, std::span<const int32_t> indices,
               FeatureVec* out);
void CeilingInto(const FeatureVec* base, std::span<const int32_t> indices,
                 FeatureVec* out);

}  // namespace graphsig::features

#endif  // GRAPHSIG_FEATURES_FEATURE_VECTOR_H_
