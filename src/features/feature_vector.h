#ifndef GRAPHSIG_FEATURES_FEATURE_VECTOR_H_
#define GRAPHSIG_FEATURES_FEATURE_VECTOR_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace graphsig::features {

// Discretized feature vector: one slot per feature in a FeatureSpace,
// values in [0, bins] (10 bins by default, per the paper).
using FeatureVec = std::vector<int16_t>;

// The feature vector produced by RWR from one node, plus its provenance.
// GraphSig groups these by node_label and mines them with FVMine.
struct NodeVector {
  int32_t graph_index = -1;   // index of the source graph in its database
  graph::VertexId node = -1;  // source node within that graph
  graph::Label node_label = -1;
  FeatureVec values;
};

// True iff x <= y slot-wise (Definition 3: x is a sub-feature vector).
bool IsSubVector(const FeatureVec& x, const FeatureVec& y);

// Slot-wise min / max over a non-empty set (Definition 5).
FeatureVec Floor(const std::vector<const FeatureVec*>& vectors);
FeatureVec Ceiling(const std::vector<const FeatureVec*>& vectors);

// Index-set overloads: slot-wise min / max over population[indices]
// (non-empty), written into *out, which is resized to the vector width
// and may be reused across calls. These exist for FVMine's inner loop,
// which would otherwise build a temporary pointer vector per Search
// call just to adapt to the set-of-pointers API above.
void FloorInto(const std::vector<const FeatureVec*>& population,
               const std::vector<int32_t>& indices, FeatureVec* out);
void CeilingInto(const std::vector<const FeatureVec*>& population,
                 const std::vector<int32_t>& indices, FeatureVec* out);

}  // namespace graphsig::features

#endif  // GRAPHSIG_FEATURES_FEATURE_VECTOR_H_
