#include "features/feature_vector.h"

#include <algorithm>

#include "util/check.h"

namespace graphsig::features {

bool IsSubVector(const FeatureVec& x, const FeatureVec& y) {
  GS_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] > y[i]) return false;
  }
  return true;
}

void FloorInto(const FeatureVec* base, std::span<const int32_t> indices,
               FeatureVec* out) {
  GS_CHECK(!indices.empty());
  *out = base[indices[0]];
  for (size_t k = 1; k < indices.size(); ++k) {
    const FeatureVec& v = base[indices[k]];
    GS_CHECK_EQ(v.size(), out->size());
    for (size_t i = 0; i < out->size(); ++i) {
      (*out)[i] = std::min((*out)[i], v[i]);
    }
  }
}

void CeilingInto(const FeatureVec* base, std::span<const int32_t> indices,
                 FeatureVec* out) {
  GS_CHECK(!indices.empty());
  *out = base[indices[0]];
  for (size_t k = 1; k < indices.size(); ++k) {
    const FeatureVec& v = base[indices[k]];
    GS_CHECK_EQ(v.size(), out->size());
    for (size_t i = 0; i < out->size(); ++i) {
      (*out)[i] = std::max((*out)[i], v[i]);
    }
  }
}

}  // namespace graphsig::features
