#include "features/packed_vector_set.h"

#include "obs/metrics.h"
#include "util/check.h"

namespace graphsig::features {

void FlushPackedOpStats(const PackedOpStats& stats) {
  struct Metrics {
    obs::Counter* words_compared;
    obs::Counter* pruned_wordwise;
  };
  auto& registry = obs::MetricsRegistry::Global();
  static const Metrics m = {
      registry.GetCounter("fv/words_compared"),
      registry.GetCounter("fv/vectors_pruned_wordwise")};
  m.words_compared->Add(stats.words_compared);
  m.pruned_wordwise->Add(stats.vectors_pruned_wordwise);
}

FeatureVec UnpackWords(const uint64_t* words, size_t width) {
  FeatureVec out(width);
  for (size_t i = 0; i < width; ++i) {
    out[i] = static_cast<int16_t>(
        (words[i / kPackedSlotsPerWord] >> ((i % kPackedSlotsPerWord) * 4)) &
        0xF);
  }
  return out;
}

PackedVectorSet PackedVectorSet::FromVectors(
    const std::vector<FeatureVec>& vectors) {
  GS_CHECK(!vectors.empty());
  PackedVectorSet set(vectors[0].size());
  set.Reserve(vectors.size());
  for (const FeatureVec& v : vectors) set.Add(v);
  return set;
}

int32_t PackedVectorSet::Add(const FeatureVec& v) {
  GS_CHECK_EQ(v.size(), width_);
  const int32_t index = static_cast<int32_t>(size());
  words_.resize(words_.size() + words_per_vector_, 0);
  uint64_t* row = words_.data() + static_cast<size_t>(index) * words_per_vector_;
  for (size_t i = 0; i < width_; ++i) {
    GS_CHECK_GE(v[i], 0);
    GS_CHECK_LE(v[i], kPackedMaxSlotValue);
    row[i / kPackedSlotsPerWord] |= static_cast<uint64_t>(v[i])
                                    << ((i % kPackedSlotsPerWord) * 4);
  }
  return index;
}

bool PackedVectorSet::Dominates(const uint64_t* x, int32_t y,
                                PackedOpStats* stats) const {
  const uint64_t* r = row(y);
  for (size_t w = 0; w < words_per_vector_; ++w) {
    ++stats->words_compared;
    if (PackedGtMask(x[w], r[w]) != 0) {
      if (w + 1 < words_per_vector_) ++stats->vectors_pruned_wordwise;
      return false;
    }
  }
  return true;
}

void PackedVectorSet::FloorInto(std::span<const int32_t> indices,
                                uint64_t* out, PackedOpStats* stats) const {
  GS_CHECK(!indices.empty());
  const uint64_t* first = row(indices[0]);
  for (size_t w = 0; w < words_per_vector_; ++w) out[w] = first[w];
  for (size_t k = 1; k < indices.size(); ++k) {
    const uint64_t* r = row(indices[k]);
    for (size_t w = 0; w < words_per_vector_; ++w) {
      out[w] = PackedMin(out[w], r[w]);
    }
  }
  stats->words_compared += (indices.size() - 1) * words_per_vector_;
}

void PackedVectorSet::CeilingInto(std::span<const int32_t> indices,
                                  uint64_t* out, PackedOpStats* stats) const {
  GS_CHECK(!indices.empty());
  const uint64_t* first = row(indices[0]);
  for (size_t w = 0; w < words_per_vector_; ++w) out[w] = first[w];
  for (size_t k = 1; k < indices.size(); ++k) {
    const uint64_t* r = row(indices[k]);
    for (size_t w = 0; w < words_per_vector_; ++w) {
      out[w] = PackedMax(out[w], r[w]);
    }
  }
  stats->words_compared += (indices.size() - 1) * words_per_vector_;
}

}  // namespace graphsig::features
