#ifndef GRAPHSIG_FEATURES_SELECTION_H_
#define GRAPHSIG_FEATURES_SELECTION_H_

#include <functional>
#include <vector>

#include "fsm/miner.h"
#include "graph/graph_database.h"

namespace graphsig::features {

// One row of the Fig. 4 analysis: atom types ranked by frequency with
// the cumulative percentage of all atom occurrences they cover.
struct AtomCoverage {
  graph::Label label;
  int64_t count;
  double cumulative_percent;  // coverage of ranks 1..this one
};

// Frequency-descending atom ranking with cumulative coverage (Fig. 4).
std::vector<AtomCoverage> CumulativeAtomCoverage(
    const graph::GraphDatabase& db);

// The k most frequent vertex labels.
std::vector<graph::Label> TopKAtoms(const graph::GraphDatabase& db, int k);

// Greedy feature selection (Eq. 2): picks k items maximizing
//   w1 * importance(f) - (w2 / (chosen)) * sum_i sim(chosen_i, f).
// Works over abstract candidate indices so callers define importance and
// similarity for their own feature type (subgraphs, descriptors, ...).
// The first pick is the most important candidate. Returns chosen indices
// in pick order.
std::vector<size_t> GreedySelect(
    size_t num_candidates, int k,
    const std::function<double(size_t)>& importance,
    const std::function<double(size_t, size_t)>& similarity, double w1 = 1.0,
    double w2 = 1.0);

// Section II-A's concrete instantiation of Eq. 2 for subgraph features:
// enumerate frequent subgraphs as candidates, then greedily pick k with
// importance = relative frequency and similarity = Jaccard overlap of
// the candidates' supporting-graph sets (two patterns covering the same
// molecules are redundant features).
struct SubgraphFeatureOptions {
  double min_support_percent = 10.0;
  int max_edges = 5;
  int min_edges = 1;
  int k = 10;
  double w1 = 1.0;
  double w2 = 1.0;
  size_t max_candidates = 50000;
};

std::vector<fsm::Pattern> SelectSubgraphFeatures(
    const graph::GraphDatabase& db, const SubgraphFeatureOptions& options);

}  // namespace graphsig::features

#endif  // GRAPHSIG_FEATURES_SELECTION_H_
