#include "classify/frequent_baseline.h"

#include <algorithm>
#include <set>

#include "fsm/miner.h"
#include "graph/isomorphism.h"
#include "util/check.h"

namespace graphsig::classify {

void FrequentPatternClassifier::Train(const graph::GraphDatabase& training) {
  GS_CHECK(!training.empty());
  fsm::MinerConfig miner_config;
  miner_config.min_support = fsm::SupportFromPercent(
      config_.min_support_percent, training.size());
  miner_config.max_edges = config_.max_edges;
  miner_config.max_patterns = config_.max_patterns_mined;
  fsm::MineResult mined = fsm::MineFrequentGSpan(training, miner_config);
  GS_CHECK(!mined.patterns.empty());

  // Most frequent first, larger patterns breaking ties (a 1-edge pattern
  // carries almost no information); distinct occurrence signatures only.
  std::sort(mined.patterns.begin(), mined.patterns.end(),
            [](const fsm::Pattern& a, const fsm::Pattern& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.graph.num_edges() > b.graph.num_edges();
            });
  patterns_.clear();
  std::set<std::vector<int32_t>> signatures;
  for (const fsm::Pattern& p : mined.patterns) {
    if (patterns_.size() >= config_.top_k_patterns) break;
    if (!signatures.insert(p.supporting).second) continue;
    patterns_.push_back(p.graph);
  }

  std::vector<std::vector<double>> examples;
  std::vector<int> labels;
  examples.reserve(training.size());
  for (const graph::Graph& g : training.graphs()) {
    examples.push_back(Featurize(g));
    labels.push_back(g.tag() == 1 ? 1 : -1);
  }
  svm_ = LinearSvm(config_.svm);
  svm_.Train(examples, labels);
}

std::vector<double> FrequentPatternClassifier::Featurize(
    const graph::Graph& g) const {
  std::vector<double> features(patterns_.size(), 0.0);
  for (size_t i = 0; i < patterns_.size(); ++i) {
    features[i] = graph::IsSubgraphIsomorphic(patterns_[i], g) ? 1.0 : 0.0;
  }
  return features;
}

double FrequentPatternClassifier::Score(const graph::Graph& query) const {
  GS_CHECK(!patterns_.empty());
  return svm_.Decision(Featurize(query));
}

}  // namespace graphsig::classify
