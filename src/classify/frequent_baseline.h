#ifndef GRAPHSIG_CLASSIFY_FREQUENT_BASELINE_H_
#define GRAPHSIG_CLASSIFY_FREQUENT_BASELINE_H_

#include <vector>

#include "classify/classifier.h"
#include "classify/svm.h"
#include "graph/graph.h"

namespace graphsig::classify {

// The straw-man Section V argues against: a classifier whose features
// are simply the most FREQUENT subgraphs of the training set (class
// labels play no part in feature selection). Frequent patterns like
// benzene are ubiquitous in both classes, so this baseline should trail
// the significant-pattern classifier — the ablation bench measures by
// how much.
struct FrequentPatternConfig {
  double min_support_percent = 10.0;
  int max_edges = 8;
  size_t top_k_patterns = 20;  // most frequent first
  size_t max_patterns_mined = 100000;
  SvmConfig svm;
};

class FrequentPatternClassifier : public GraphClassifier {
 public:
  explicit FrequentPatternClassifier(FrequentPatternConfig config = {})
      : config_(config) {}

  void Train(const graph::GraphDatabase& training) override;
  double Score(const graph::Graph& query) const override;
  std::string name() const override { return "FreqSVM"; }

  const std::vector<graph::Graph>& patterns() const { return patterns_; }

 private:
  std::vector<double> Featurize(const graph::Graph& g) const;

  FrequentPatternConfig config_;
  std::vector<graph::Graph> patterns_;
  LinearSvm svm_;
};

}  // namespace graphsig::classify

#endif  // GRAPHSIG_CLASSIFY_FREQUENT_BASELINE_H_
