#include "classify/evaluation.h"

#include <algorithm>
#include <cmath>

#include "classify/auc.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace graphsig::classify {
namespace {

// Splits indices into `folds` chunks after shuffling.
std::vector<std::vector<size_t>> FoldSplit(std::vector<size_t> indices,
                                           int folds, util::Rng* rng) {
  rng->Shuffle(&indices);
  std::vector<std::vector<size_t>> out(folds);
  for (size_t i = 0; i < indices.size(); ++i) {
    out[i % folds].push_back(indices[i]);
  }
  return out;
}

graph::GraphDatabase BalancedFromPools(
    const graph::GraphDatabase& db, const std::vector<size_t>& pos_pool,
    const std::vector<size_t>& neg_pool, double active_fraction,
    util::Rng* rng) {
  GS_CHECK(!pos_pool.empty());
  GS_CHECK(!neg_pool.empty());
  std::vector<size_t> pos = pos_pool;
  std::vector<size_t> neg = neg_pool;
  rng->Shuffle(&pos);
  rng->Shuffle(&neg);
  size_t take_pos = std::max<size_t>(
      1, static_cast<size_t>(std::llround(active_fraction * pos.size())));
  take_pos = std::min(take_pos, pos.size());
  const size_t take_neg = std::min(take_pos, neg.size());

  std::vector<size_t> chosen(pos.begin(), pos.begin() + take_pos);
  chosen.insert(chosen.end(), neg.begin(), neg.begin() + take_neg);
  rng->Shuffle(&chosen);
  return db.Subset(chosen);
}

}  // namespace

graph::GraphDatabase BalancedTrainingSample(const graph::GraphDatabase& pool,
                                            double active_fraction,
                                            uint64_t seed) {
  util::Rng rng(seed);
  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < pool.size(); ++i) {
    (pool.graph(i).tag() == 1 ? pos : neg).push_back(i);
  }
  return BalancedFromPools(pool, pos, neg, active_fraction, &rng);
}

EvalSummary CrossValidate(const graph::GraphDatabase& db,
                          const ClassifierFactory& factory,
                          const EvalOptions& options) {
  GS_CHECK_GE(options.folds, 2);
  util::Rng rng(options.seed);

  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < db.size(); ++i) {
    (db.graph(i).tag() == 1 ? pos : neg).push_back(i);
  }
  GS_CHECK_GE(static_cast<int>(pos.size()), options.folds);
  GS_CHECK_GE(static_cast<int>(neg.size()), options.folds);

  auto pos_folds = FoldSplit(pos, options.folds, &rng);
  auto neg_folds = FoldSplit(neg, options.folds, &rng);

  EvalSummary summary;
  for (int fold = 0; fold < options.folds; ++fold) {
    std::vector<size_t> train_pos, train_neg, test;
    for (int f = 0; f < options.folds; ++f) {
      if (f == fold) {
        test.insert(test.end(), pos_folds[f].begin(), pos_folds[f].end());
        test.insert(test.end(), neg_folds[f].begin(), neg_folds[f].end());
      } else {
        train_pos.insert(train_pos.end(), pos_folds[f].begin(),
                         pos_folds[f].end());
        train_neg.insert(train_neg.end(), neg_folds[f].begin(),
                         neg_folds[f].end());
      }
    }
    graph::GraphDatabase training = BalancedFromPools(
        db, train_pos, train_neg, options.active_train_fraction, &rng);

    FoldOutcome outcome;
    outcome.train_size = training.size();
    outcome.test_size = test.size();

    std::unique_ptr<GraphClassifier> classifier = factory();
    util::WallTimer train_timer;
    classifier->Train(training);
    outcome.train_seconds = train_timer.ElapsedSeconds();

    util::WallTimer test_timer;
    std::vector<ScoredExample> scored;
    scored.reserve(test.size());
    for (size_t idx : test) {
      scored.push_back(
          {classifier->Score(db.graph(idx)), db.graph(idx).tag() == 1});
    }
    outcome.test_seconds = test_timer.ElapsedSeconds();
    outcome.auc = AreaUnderRoc(scored);
    summary.folds.push_back(outcome);
  }

  double sum = 0.0;
  for (const FoldOutcome& f : summary.folds) {
    sum += f.auc;
    summary.total_train_seconds += f.train_seconds;
    summary.total_test_seconds += f.test_seconds;
  }
  summary.mean_auc = sum / summary.folds.size();
  double var = 0.0;
  for (const FoldOutcome& f : summary.folds) {
    var += (f.auc - summary.mean_auc) * (f.auc - summary.mean_auc);
  }
  summary.std_auc = std::sqrt(var / summary.folds.size());
  return summary;
}

}  // namespace graphsig::classify
