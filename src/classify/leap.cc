#include "classify/leap.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "fsm/miner.h"
#include "graph/isomorphism.h"
#include "util/check.h"

namespace graphsig::classify {

double GTestScore(double positive_rate, double negative_rate,
                  int64_t num_pos) {
  constexpr double kEps = 1e-6;
  const double p = std::clamp(positive_rate, kEps, 1.0 - kEps);
  const double q = std::clamp(negative_rate, kEps, 1.0 - kEps);
  return 2.0 * static_cast<double>(num_pos) *
         (p * std::log(p / q) + (1.0 - p) * std::log((1.0 - p) / (1.0 - q)));
}

namespace {

struct RankedPattern {
  const fsm::Pattern* pattern;
  double score;
};

// Mines at one support threshold and returns patterns ranked by G-test.
std::pair<fsm::MineResult, std::vector<RankedPattern>> MineRound(
    const graph::GraphDatabase& training, const LeapConfig& config,
    double support_percent, int64_t num_pos, int64_t num_neg) {
  fsm::MinerConfig miner_config;
  miner_config.min_support =
      fsm::SupportFromPercent(support_percent, training.size());
  miner_config.max_edges = config.max_edges;
  miner_config.max_patterns = config.max_patterns_mined;
  fsm::MineResult mined = fsm::MineFrequentGSpan(training, miner_config);

  std::vector<RankedPattern> ranked;
  ranked.reserve(mined.patterns.size());
  for (const fsm::Pattern& p : mined.patterns) {
    int64_t pos = 0;
    for (int32_t gid : p.supporting) {
      pos += training.graph(gid).tag() == 1;
    }
    const int64_t neg = p.support - pos;
    ranked.push_back(
        {&p, GTestScore(static_cast<double>(pos) / num_pos,
                        static_cast<double>(neg) / num_neg, num_pos)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedPattern& a, const RankedPattern& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.pattern->graph.num_edges() >
                     b.pattern->graph.num_edges();
            });
  return {std::move(mined), std::move(ranked)};
}

// Summed score of the top-k distinct-signature patterns; also fills
// `keep` with those patterns if non-null.
double TopKScore(const std::vector<RankedPattern>& ranked, size_t k,
                 std::vector<graph::Graph>* keep) {
  std::set<std::vector<int32_t>> signatures;
  double total = 0.0;
  for (const RankedPattern& r : ranked) {
    if (signatures.size() >= k) break;
    if (!signatures.insert(r.pattern->supporting).second) continue;
    total += r.score;
    if (keep != nullptr) keep->push_back(r.pattern->graph);
  }
  return total;
}

}  // namespace

void LeapClassifier::Train(const graph::GraphDatabase& training) {
  GS_CHECK(!training.empty());
  int64_t num_pos = 0, num_neg = 0;
  for (const graph::Graph& g : training.graphs()) {
    (g.tag() == 1 ? num_pos : num_neg) += 1;
  }
  GS_CHECK_GT(num_pos, 0);
  GS_CHECK_GT(num_neg, 0);

  // Frequency-descending rounds: halve the support threshold until the
  // top-k objective stops improving (or the floor is hit).
  double best_score = -1.0;
  patterns_.clear();
  double theta = config_.start_support_percent;
  while (true) {
    auto [mined, ranked] =
        MineRound(training, config_, theta, num_pos, num_neg);
    std::vector<graph::Graph> round_patterns;
    const double round_score =
        TopKScore(ranked, config_.top_k_patterns, &round_patterns);
    const bool improved =
        round_score >
        best_score * (1.0 + config_.convergence_ratio) + 1e-12;
    if (round_score > best_score && !round_patterns.empty()) {
      best_score = round_score;
      patterns_ = std::move(round_patterns);
    }
    if (theta <= config_.min_support_percent) break;
    if (best_score > 0.0 && !improved) break;  // converged
    theta = std::max(theta / 2.0, config_.min_support_percent);
  }
  GS_CHECK(!patterns_.empty());

  std::vector<std::vector<double>> examples;
  std::vector<int> labels;
  examples.reserve(training.size());
  for (const graph::Graph& g : training.graphs()) {
    examples.push_back(Featurize(g));
    labels.push_back(g.tag() == 1 ? 1 : -1);
  }
  svm_ = LinearSvm(config_.svm);
  svm_.Train(examples, labels);
}

std::vector<double> LeapClassifier::Featurize(const graph::Graph& g) const {
  std::vector<double> features(patterns_.size(), 0.0);
  for (size_t i = 0; i < patterns_.size(); ++i) {
    features[i] = graph::IsSubgraphIsomorphic(patterns_[i], g) ? 1.0 : 0.0;
  }
  return features;
}

double LeapClassifier::Score(const graph::Graph& query) const {
  GS_CHECK(!patterns_.empty());
  return svm_.Decision(Featurize(query));
}

}  // namespace graphsig::classify
