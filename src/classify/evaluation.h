#ifndef GRAPHSIG_CLASSIFY_EVALUATION_H_
#define GRAPHSIG_CLASSIFY_EVALUATION_H_

#include <functional>
#include <memory>
#include <vector>

#include "classify/classifier.h"
#include "graph/graph_database.h"

namespace graphsig::classify {

// The paper's evaluation protocol (Section VI-D): stratified k-fold
// cross validation where each fold trains on a BALANCED sample —
// `active_train_fraction` of the fold's training actives plus an equal
// number of training inactives — and scores the held-out fold by AUC.
struct EvalOptions {
  int folds = 5;
  double active_train_fraction = 0.3;  // paper: 30% (10% for OA)
  uint64_t seed = 1;
};

struct FoldOutcome {
  double auc = 0.0;
  double train_seconds = 0.0;
  double test_seconds = 0.0;
  size_t train_size = 0;
  size_t test_size = 0;
};

struct EvalSummary {
  std::vector<FoldOutcome> folds;
  double mean_auc = 0.0;
  double std_auc = 0.0;
  double total_train_seconds = 0.0;
  double total_test_seconds = 0.0;
};

// Builds a fresh classifier per fold.
using ClassifierFactory =
    std::function<std::unique_ptr<GraphClassifier>()>;

// Runs the protocol. The database must contain both tags and enough
// actives for the requested fold count.
EvalSummary CrossValidate(const graph::GraphDatabase& db,
                          const ClassifierFactory& factory,
                          const EvalOptions& options);

// Builds one balanced training set from `pool` (no CV): the sampled
// actives plus an equal number of inactives, shuffled. Exposed for the
// runtime bench (Fig. 17) and the examples.
graph::GraphDatabase BalancedTrainingSample(const graph::GraphDatabase& pool,
                                            double active_fraction,
                                            uint64_t seed);

}  // namespace graphsig::classify

#endif  // GRAPHSIG_CLASSIFY_EVALUATION_H_
