#include "classify/svm.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace graphsig::classify {

void KernelSvm::Train(const std::vector<std::vector<double>>& gram,
                      const std::vector<int>& labels) {
  const size_t n = gram.size();
  GS_CHECK_GT(n, 0u);
  GS_CHECK_EQ(labels.size(), n);
  for (const auto& row : gram) GS_CHECK_EQ(row.size(), n);
  for (int y : labels) GS_CHECK(y == 1 || y == -1);

  labels_ = labels;
  alphas_.assign(n, 0.0);
  bias_ = 0.0;
  util::Rng rng(config_.seed);

  auto decision_on_train = [&](size_t k) {
    double sum = bias_;
    for (size_t i = 0; i < n; ++i) {
      if (alphas_[i] != 0.0) sum += alphas_[i] * labels_[i] * gram[i][k];
    }
    return sum;
  };

  int passes = 0;
  int iterations = 0;
  while (passes < config_.max_passes &&
         iterations < config_.max_iterations) {
    ++iterations;
    int changed = 0;
    for (size_t i = 0; i < n; ++i) {
      const double e_i = decision_on_train(i) - labels_[i];
      const bool violates =
          (labels_[i] * e_i < -config_.tolerance &&
           alphas_[i] < config_.c) ||
          (labels_[i] * e_i > config_.tolerance && alphas_[i] > 0.0);
      if (!violates) continue;
      size_t j = rng.NextBounded(n - 1);
      if (j >= i) ++j;
      const double e_j = decision_on_train(j) - labels_[j];

      const double alpha_i_old = alphas_[i];
      const double alpha_j_old = alphas_[j];
      double low, high;
      if (labels_[i] != labels_[j]) {
        low = std::max(0.0, alpha_j_old - alpha_i_old);
        high = std::min(config_.c, config_.c + alpha_j_old - alpha_i_old);
      } else {
        low = std::max(0.0, alpha_i_old + alpha_j_old - config_.c);
        high = std::min(config_.c, alpha_i_old + alpha_j_old);
      }
      if (low >= high) continue;
      const double eta = 2.0 * gram[i][j] - gram[i][i] - gram[j][j];
      if (eta >= 0.0) continue;
      double alpha_j = alpha_j_old - labels_[j] * (e_i - e_j) / eta;
      alpha_j = std::clamp(alpha_j, low, high);
      if (std::fabs(alpha_j - alpha_j_old) < 1e-7) continue;
      const double alpha_i =
          alpha_i_old + labels_[i] * labels_[j] * (alpha_j_old - alpha_j);
      alphas_[i] = alpha_i;
      alphas_[j] = alpha_j;

      const double b1 = bias_ - e_i -
                        labels_[i] * (alpha_i - alpha_i_old) * gram[i][i] -
                        labels_[j] * (alpha_j - alpha_j_old) * gram[i][j];
      const double b2 = bias_ - e_j -
                        labels_[i] * (alpha_i - alpha_i_old) * gram[i][j] -
                        labels_[j] * (alpha_j - alpha_j_old) * gram[j][j];
      if (alpha_i > 0.0 && alpha_i < config_.c) {
        bias_ = b1;
      } else if (alpha_j > 0.0 && alpha_j < config_.c) {
        bias_ = b2;
      } else {
        bias_ = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = (changed == 0) ? passes + 1 : 0;
  }
}

double KernelSvm::Decision(const std::vector<double>& kernel_row) const {
  GS_CHECK_EQ(kernel_row.size(), alphas_.size());
  double sum = bias_;
  for (size_t i = 0; i < alphas_.size(); ++i) {
    if (alphas_[i] != 0.0) {
      sum += alphas_[i] * labels_[i] * kernel_row[i];
    }
  }
  return sum;
}

void LinearSvm::Train(const std::vector<std::vector<double>>& examples,
                      const std::vector<int>& labels) {
  const size_t n = examples.size();
  GS_CHECK_GT(n, 0u);
  const size_t dim = examples[0].size();
  std::vector<std::vector<double>> gram(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    GS_CHECK_EQ(examples[i].size(), dim);
    for (size_t j = i; j < n; ++j) {
      double dot = 0.0;
      for (size_t d = 0; d < dim; ++d) dot += examples[i][d] * examples[j][d];
      gram[i][j] = gram[j][i] = dot;
    }
  }
  KernelSvm svm(config_);
  svm.Train(gram, labels);
  weights_.assign(dim, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double coeff = svm.alphas()[i] * labels[i];
    if (coeff == 0.0) continue;
    for (size_t d = 0; d < dim; ++d) weights_[d] += coeff * examples[i][d];
  }
  bias_ = svm.bias();
}

double LinearSvm::Decision(const std::vector<double>& example) const {
  GS_CHECK_EQ(example.size(), weights_.size());
  double sum = bias_;
  for (size_t d = 0; d < weights_.size(); ++d) {
    sum += weights_[d] * example[d];
  }
  return sum;
}

}  // namespace graphsig::classify
