#include "classify/auc.h"

#include <algorithm>

#include "util/check.h"

namespace graphsig::classify {

double AreaUnderRoc(const std::vector<ScoredExample>& examples) {
  int64_t positives = 0;
  int64_t negatives = 0;
  for (const ScoredExample& e : examples) {
    if (e.positive) {
      ++positives;
    } else {
      ++negatives;
    }
  }
  GS_CHECK_GT(positives, 0);
  GS_CHECK_GT(negatives, 0);

  std::vector<ScoredExample> sorted = examples;
  std::sort(sorted.begin(), sorted.end(),
            [](const ScoredExample& a, const ScoredExample& b) {
              return a.score < b.score;
            });
  // Midrank assignment over tie groups; U statistic from positive ranks.
  double rank_sum_positive = 0.0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j < sorted.size() && sorted[j].score == sorted[i].score) ++j;
    const double midrank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
    for (size_t k = i; k < j; ++k) {
      if (sorted[k].positive) rank_sum_positive += midrank;
    }
    i = j;
  }
  const double u = rank_sum_positive -
                   static_cast<double>(positives) * (positives + 1) / 2.0;
  return u / (static_cast<double>(positives) * negatives);
}

std::vector<RocPoint> RocCurve(const std::vector<ScoredExample>& examples) {
  int64_t positives = 0;
  int64_t negatives = 0;
  for (const ScoredExample& e : examples) {
    if (e.positive) {
      ++positives;
    } else {
      ++negatives;
    }
  }
  GS_CHECK_GT(positives, 0);
  GS_CHECK_GT(negatives, 0);

  std::vector<ScoredExample> sorted = examples;
  std::sort(sorted.begin(), sorted.end(),
            [](const ScoredExample& a, const ScoredExample& b) {
              return a.score > b.score;
            });
  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0});
  int64_t tp = 0, fp = 0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j < sorted.size() && sorted[j].score == sorted[i].score) ++j;
    for (size_t k = i; k < j; ++k) {
      if (sorted[k].positive) {
        ++tp;
      } else {
        ++fp;
      }
    }
    curve.push_back({static_cast<double>(fp) / negatives,
                     static_cast<double>(tp) / positives});
    i = j;
  }
  return curve;
}

}  // namespace graphsig::classify
