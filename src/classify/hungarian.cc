#include "classify/hungarian.h"

#include <cstddef>
#include <limits>

#include "util/check.h"

namespace graphsig::classify {

std::vector<int> MaxWeightAssignment(
    const std::vector<std::vector<double>>& scores) {
  const int n = static_cast<int>(scores.size());
  GS_CHECK_GT(n, 0);
  for (const auto& row : scores) GS_CHECK_EQ(static_cast<int>(row.size()), n);

  // Classic 1-based potentials implementation of the Hungarian algorithm
  // on costs; maximization is handled by negating the scores.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0);    // p[j] = row matched to column j
  std::vector<int> way(n + 1, 0);  // alternating-path bookkeeping

  auto cost = [&](int i, int j) { return -scores[i - 1][j - 1]; };

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0, j) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      GS_CHECK_GE(j1, 1);
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path.
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> assignment(n, -1);
  for (int j = 1; j <= n; ++j) {
    if (p[j] >= 1) assignment[p[j] - 1] = j - 1;
  }
  for (int i = 0; i < n; ++i) GS_CHECK_GE(assignment[i], 0);
  return assignment;
}

double AssignmentValue(const std::vector<std::vector<double>>& scores,
                       const std::vector<int>& assignment) {
  GS_CHECK_EQ(scores.size(), assignment.size());
  double total = 0.0;
  for (size_t i = 0; i < assignment.size(); ++i) {
    total += scores[i][assignment[i]];
  }
  return total;
}

}  // namespace graphsig::classify
