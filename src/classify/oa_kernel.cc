#include "classify/oa_kernel.h"

#include <algorithm>
#include <cmath>

#include "classify/hungarian.h"
#include "util/check.h"
#include "util/parallel.h"

namespace graphsig::classify {
namespace {

double NodeKernel(const NodeDescriptor& a, const NodeDescriptor& b,
                  double gamma) {
  if (a.label != b.label) return 0.0;
  GS_CHECK_EQ(a.distribution.size(), b.distribution.size());
  double sq = 0.0;
  for (size_t i = 0; i < a.distribution.size(); ++i) {
    const double d = a.distribution[i] - b.distribution[i];
    sq += d * d;
  }
  return std::exp(-gamma * sq);
}

}  // namespace

double OaKernelValue(const GraphDescriptor& a, const GraphDescriptor& b,
                     double gamma) {
  if (a.empty() || b.empty()) return 0.0;
  const size_t n = std::max(a.size(), b.size());
  // Pad the score matrix with zeros (unmatched nodes contribute nothing).
  std::vector<std::vector<double>> scores(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      scores[i][j] = NodeKernel(a[i], b[j], gamma);
    }
  }
  std::vector<int> assignment = MaxWeightAssignment(scores);
  return AssignmentValue(scores, assignment) / static_cast<double>(n);
}

GraphDescriptor OaKernelClassifier::Describe(const graph::Graph& g) const {
  GraphDescriptor desc;
  desc.reserve(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    desc.push_back(
        {g.vertex_label(v),
         features::RwrFeatureDistribution(g, v, space_, config_.rwr)});
  }
  return desc;
}

void OaKernelClassifier::Train(const graph::GraphDatabase& training) {
  GS_CHECK(!training.empty());
  space_ = features::FeatureSpace::ForChemicalDatabase(training,
                                                       config_.top_k_atoms);
  const size_t n = training.size();
  train_descriptors_.clear();
  train_descriptors_.reserve(n);
  std::vector<int> labels;
  labels.reserve(n);
  for (const graph::Graph& g : training.graphs()) {
    train_descriptors_.push_back(Describe(g));
    labels.push_back(g.tag() == 1 ? 1 : -1);
  }

  train_self_kernels_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    train_self_kernels_[i] =
        OaKernelValue(train_descriptors_[i], train_descriptors_[i],
                      config_.gamma);
    GS_CHECK_GT(train_self_kernels_[i], 0.0);
  }

  std::vector<std::vector<double>> gram(n, std::vector<double>(n, 0.0));
  util::ParallelFor(config_.num_threads, n, [&](size_t i) {
    gram[i][i] = 1.0;
    for (size_t j = i + 1; j < n; ++j) {
      const double raw = OaKernelValue(train_descriptors_[i],
                                       train_descriptors_[j], config_.gamma);
      const double normalized =
          raw / std::sqrt(train_self_kernels_[i] * train_self_kernels_[j]);
      gram[i][j] = gram[j][i] = normalized;
    }
  });
  svm_ = KernelSvm(config_.svm);
  svm_.Train(gram, labels);
}

double OaKernelClassifier::Score(const graph::Graph& query) const {
  GS_CHECK(svm_.trained());
  const GraphDescriptor qdesc = Describe(query);
  const double self = OaKernelValue(qdesc, qdesc, config_.gamma);
  GS_CHECK_GT(self, 0.0);
  std::vector<double> row(train_descriptors_.size());
  for (size_t i = 0; i < train_descriptors_.size(); ++i) {
    const double raw =
        OaKernelValue(qdesc, train_descriptors_[i], config_.gamma);
    row[i] = raw / std::sqrt(self * train_self_kernels_[i]);
  }
  return svm_.Decision(row);
}

}  // namespace graphsig::classify
