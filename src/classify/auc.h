#ifndef GRAPHSIG_CLASSIFY_AUC_H_
#define GRAPHSIG_CLASSIFY_AUC_H_

#include <vector>

namespace graphsig::classify {

// One scored example: the classifier's decision value and the truth.
struct ScoredExample {
  double score;
  bool positive;
};

// Area under the ROC curve via the rank-sum (Mann-Whitney) estimator
// with midrank tie handling. Requires at least one positive and one
// negative example. 0.5 = chance, 1.0 = perfect ranking.
double AreaUnderRoc(const std::vector<ScoredExample>& examples);

// One point of an ROC curve.
struct RocPoint {
  double false_positive_rate;
  double true_positive_rate;
};

// The full ROC curve (threshold swept over distinct scores, descending),
// starting at (0,0) and ending at (1,1).
std::vector<RocPoint> RocCurve(const std::vector<ScoredExample>& examples);

}  // namespace graphsig::classify

#endif  // GRAPHSIG_CLASSIFY_AUC_H_
