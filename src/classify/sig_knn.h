#ifndef GRAPHSIG_CLASSIFY_SIG_KNN_H_
#define GRAPHSIG_CLASSIFY_SIG_KNN_H_

#include <vector>

#include "classify/classifier.h"
#include "core/graphsig.h"
#include "features/feature_space.h"
#include "features/feature_vector.h"

namespace graphsig::classify {

// Algorithm 4: distance from vector x to the closest sub-feature vector
// in `set`. A member v contributes sum_i (x_i - v_i) if v ⊆ x, else
// infinity. Returns infinity when no member is a sub-vector of x.
double MinDistToSubVector(const features::FeatureVec& x,
                          const std::vector<features::FeatureVec>& set);

struct SigKnnConfig {
  // Feature-phase thresholds used to mine the significant vectors from
  // each training class.
  core::GraphSigConfig mining;
  int k = 9;            // paper's value in Section VI-D
  double delta = 1e-3;  // the small additive before inverting distances
};

// The trained state of GraphSigClassifier, detached from the class so it
// can be serialized into a model artifact (src/model/) and rebuilt in a
// query-serving process without re-mining. Everything Score() depends on
// is here: the k-NN parameters, the RWR featurization config that query
// vectors must be computed with, the shared feature space, and the
// significant sub-feature vectors of both classes.
struct SigKnnModel {
  int32_t k = 9;
  double delta = 1e-3;
  features::RwrConfig rwr;
  features::FeatureSpace space;
  std::vector<features::FeatureVec> positive;
  std::vector<features::FeatureVec> negative;

  // A model with no feature space cannot score anything.
  bool empty() const { return space.size() == 0; }
};

// The classifier of Section V (Algorithm 3): mine significant
// sub-feature vectors from the positive and the negative training
// graphs, then classify a query by a distance-weighted vote of the k
// globally closest significant vectors over the query's node vectors.
class GraphSigClassifier : public GraphClassifier {
 public:
  explicit GraphSigClassifier(SigKnnConfig config = {}) : config_(config) {}

  void Train(const graph::GraphDatabase& training) override;
  double Score(const graph::Graph& query) const override;
  std::string name() const override { return "GraphSig"; }

  // Snapshot of the trained state for serialization. Requires a trained
  // (or imported) classifier.
  SigKnnModel ExportModel() const;
  // Rebuilds a ready-to-score classifier from a snapshot; the scan
  // indexes are reconstructed, so FromModel(ExportModel()) scores
  // identically to the original.
  static GraphSigClassifier FromModel(const SigKnnModel& model);

  const features::FeatureSpace& feature_space() const { return space_; }
  const std::vector<features::FeatureVec>& positive_vectors() const {
    return positive_;
  }
  const std::vector<features::FeatureVec>& negative_vectors() const {
    return negative_;
  }

 private:
  // Distinct vectors sorted by slot-sum descending plus their sums. For
  // any sub-vector v of x, dist(x, v) = sum(x) - sum(v), so the first
  // sub-vector found in descending-sum order is the closest — the scan
  // exits early instead of touching every training vector.
  struct VectorIndex {
    std::vector<features::FeatureVec> vectors;  // sum-descending
    std::vector<int32_t> sums;
  };
  static VectorIndex BuildIndex(std::vector<features::FeatureVec> vectors);
  static double MinDistIndexed(const features::FeatureVec& x,
                               const VectorIndex& index);

  SigKnnConfig config_;
  features::FeatureSpace space_;
  std::vector<features::FeatureVec> positive_;
  std::vector<features::FeatureVec> negative_;
  VectorIndex positive_index_;
  VectorIndex negative_index_;
};

}  // namespace graphsig::classify

#endif  // GRAPHSIG_CLASSIFY_SIG_KNN_H_
