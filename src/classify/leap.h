#ifndef GRAPHSIG_CLASSIFY_LEAP_H_
#define GRAPHSIG_CLASSIFY_LEAP_H_

#include <vector>

#include "classify/classifier.h"
#include "classify/svm.h"
#include "graph/graph.h"

namespace graphsig::classify {

// G-test discriminativeness of a pattern: positive rate p vs negative
// rate q over `num_pos` positive examples. This is the objective family
// LEAP (Yan et al., SIGMOD'08) optimizes. Rates are clamped away from
// {0, 1} for stability.
double GTestScore(double positive_rate, double negative_rate,
                  int64_t num_pos);

struct LeapConfig {
  // Frequency-descending search (LEAP Section 4.2): mining starts at
  // start_support_percent, halves each round, and stops when the summed
  // G-test score of the top-k patterns improves by less than
  // convergence_ratio — or when min_support_percent is reached.
  double start_support_percent = 20.0;
  double min_support_percent = 2.0;
  double convergence_ratio = 0.05;
  int max_edges = 10;
  size_t max_patterns_mined = 200000;
  // Number of top discriminative patterns kept as features.
  size_t top_k_patterns = 20;
  SvmConfig svm;
};

// Pattern-based baseline in the style of LEAP: enumerate frequent
// subgraphs of the training set, rank by G-test between classes, keep
// the top-k patterns with distinct occurrence signatures, and train a
// linear SVM over binary pattern-presence features. (Substitution note:
// LEAP's structural-leap pruning is replaced by full enumeration at the
// same support threshold + objective selection — same classifier
// architecture and cost profile, simpler search.)
class LeapClassifier : public GraphClassifier {
 public:
  explicit LeapClassifier(LeapConfig config = {}) : config_(config) {}

  void Train(const graph::GraphDatabase& training) override;
  double Score(const graph::Graph& query) const override;
  std::string name() const override { return "LEAP"; }

  const std::vector<graph::Graph>& patterns() const { return patterns_; }

 private:
  std::vector<double> Featurize(const graph::Graph& g) const;

  LeapConfig config_;
  std::vector<graph::Graph> patterns_;
  LinearSvm svm_;
};

}  // namespace graphsig::classify

#endif  // GRAPHSIG_CLASSIFY_LEAP_H_
