#include "classify/sig_knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "features/rwr.h"
#include "util/check.h"

namespace graphsig::classify {

double MinDistToSubVector(const features::FeatureVec& x,
                          const std::vector<features::FeatureVec>& set) {
  double best = std::numeric_limits<double>::infinity();
  for (const features::FeatureVec& v : set) {
    GS_CHECK_EQ(v.size(), x.size());
    double dist = 0.0;
    bool sub = true;
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i] > x[i]) {
        sub = false;
        break;
      }
      dist += static_cast<double>(x[i] - v[i]);
    }
    if (sub && dist < best) best = dist;
  }
  return best;
}

void GraphSigClassifier::Train(const graph::GraphDatabase& training) {
  graph::GraphDatabase positives = training.FilterByTag(1);
  graph::GraphDatabase negatives = training.FilterByTag(0);
  GS_CHECK(!positives.empty());
  GS_CHECK(!negatives.empty());

  // One shared feature space so class vectors and queries line up.
  space_ = features::FeatureSpace::ForChemicalDatabase(
      training, config_.mining.top_k_atoms);

  core::GraphSig miner(config_.mining);
  positive_.clear();
  negative_.clear();
  for (const auto& [label, sv] :
       miner.MineSignificantVectors(positives, nullptr, &space_)) {
    positive_.push_back(sv.vector);
  }
  for (const auto& [label, sv] :
       miner.MineSignificantVectors(negatives, nullptr, &space_)) {
    negative_.push_back(sv.vector);
  }
  positive_index_ = BuildIndex(positive_);
  negative_index_ = BuildIndex(negative_);
}

SigKnnModel GraphSigClassifier::ExportModel() const {
  GS_CHECK_GT(space_.size(), 0u);  // must be trained
  SigKnnModel model;
  model.k = config_.k;
  model.delta = config_.delta;
  model.rwr = config_.mining.rwr;
  model.space = space_;
  model.positive = positive_;
  model.negative = negative_;
  return model;
}

GraphSigClassifier GraphSigClassifier::FromModel(const SigKnnModel& model) {
  SigKnnConfig config;
  config.k = model.k;
  config.delta = model.delta;
  config.mining.rwr = model.rwr;
  GraphSigClassifier classifier(config);
  classifier.space_ = model.space;
  classifier.positive_ = model.positive;
  classifier.negative_ = model.negative;
  classifier.positive_index_ = BuildIndex(model.positive);
  classifier.negative_index_ = BuildIndex(model.negative);
  return classifier;
}

GraphSigClassifier::VectorIndex GraphSigClassifier::BuildIndex(
    std::vector<features::FeatureVec> vectors) {
  std::sort(vectors.begin(), vectors.end());
  vectors.erase(std::unique(vectors.begin(), vectors.end()), vectors.end());
  std::stable_sort(vectors.begin(), vectors.end(),
                   [](const features::FeatureVec& a,
                      const features::FeatureVec& b) {
                     int32_t sa = 0, sb = 0;
                     for (int16_t v : a) sa += v;
                     for (int16_t v : b) sb += v;
                     return sa > sb;
                   });
  VectorIndex index;
  index.sums.reserve(vectors.size());
  for (const features::FeatureVec& v : vectors) {
    int32_t sum = 0;
    for (int16_t x : v) sum += x;
    index.sums.push_back(sum);
  }
  index.vectors = std::move(vectors);
  return index;
}

double GraphSigClassifier::MinDistIndexed(const features::FeatureVec& x,
                                          const VectorIndex& index) {
  int32_t x_sum = 0;
  for (int16_t v : x) x_sum += v;
  for (size_t i = 0; i < index.vectors.size(); ++i) {
    if (index.sums[i] > x_sum) continue;  // cannot be a sub-vector
    const features::FeatureVec& v = index.vectors[i];
    bool sub = true;
    for (size_t s = 0; s < v.size(); ++s) {
      if (v[s] > x[s]) {
        sub = false;
        break;
      }
    }
    if (sub) return static_cast<double>(x_sum - index.sums[i]);
  }
  return std::numeric_limits<double>::infinity();
}

double GraphSigClassifier::Score(const graph::Graph& query) const {
  GS_CHECK_GT(space_.size(), 0u);  // must be trained
  auto node_vectors = features::GraphToVectors(query, /*graph_index=*/-1,
                                               space_, config_.mining.rwr);
  // Keep the k globally smallest (distance, class) pairs (Algorithm 3's
  // priority queue): a max-heap holding at most k entries.
  using Entry = std::pair<double, int>;  // distance, +1 / -1
  std::priority_queue<Entry> heap;
  for (const features::NodeVector& nv : node_vectors) {
    const double pos_dist = MinDistIndexed(nv.values, positive_index_);
    const double neg_dist = MinDistIndexed(nv.values, negative_index_);
    if (std::isinf(pos_dist) && std::isinf(neg_dist)) continue;
    Entry entry = neg_dist < pos_dist ? Entry{neg_dist, -1}
                                      : Entry{pos_dist, +1};
    heap.push(entry);
    if (heap.size() > static_cast<size_t>(config_.k)) heap.pop();
  }
  double score = 0.0;
  while (!heap.empty()) {
    const auto& [dist, cls] = heap.top();
    score += static_cast<double>(cls) / (dist + config_.delta);
    heap.pop();
  }
  return score;
}

}  // namespace graphsig::classify
