#ifndef GRAPHSIG_CLASSIFY_SVM_H_
#define GRAPHSIG_CLASSIFY_SVM_H_

#include <cstdint>
#include <vector>

namespace graphsig::classify {

// Soft-margin C-SVM trained with simplified SMO (Platt). Stands in for
// LIBSVM in the baseline classifiers (OA kernel and LEAP both use an SVM
// in the paper's comparison).
struct SvmConfig {
  double c = 1.0;
  double tolerance = 1e-3;
  int max_passes = 10;         // consecutive no-change passes before stop
  int max_iterations = 20000;  // hard cap on optimization sweeps
  uint64_t seed = 42;          // SMO's random partner selection
};

// SVM over a precomputed kernel. The caller supplies the Gram matrix at
// training time and kernel rows (query vs every training example) at
// prediction time.
class KernelSvm {
 public:
  explicit KernelSvm(SvmConfig config = {}) : config_(config) {}

  // `gram[i][j]` = K(x_i, x_j) (symmetric PSD); labels are +1 / -1.
  void Train(const std::vector<std::vector<double>>& gram,
             const std::vector<int>& labels);

  // Decision value sum_i alpha_i y_i K(x_i, q) + b for a query with the
  // given kernel row. Positive -> class +1.
  double Decision(const std::vector<double>& kernel_row) const;

  const std::vector<double>& alphas() const { return alphas_; }
  double bias() const { return bias_; }
  bool trained() const { return !alphas_.empty(); }

 private:
  SvmConfig config_;
  std::vector<double> alphas_;
  std::vector<int> labels_;
  double bias_ = 0.0;
};

// Linear SVM over explicit feature vectors; keeps the primal weight
// vector for O(dim) scoring. Used by the LEAP-style pattern classifier.
class LinearSvm {
 public:
  explicit LinearSvm(SvmConfig config = {}) : config_(config) {}

  void Train(const std::vector<std::vector<double>>& examples,
             const std::vector<int>& labels);

  double Decision(const std::vector<double>& example) const;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  SvmConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace graphsig::classify

#endif  // GRAPHSIG_CLASSIFY_SVM_H_
