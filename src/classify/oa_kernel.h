#ifndef GRAPHSIG_CLASSIFY_OA_KERNEL_H_
#define GRAPHSIG_CLASSIFY_OA_KERNEL_H_

#include <vector>

#include "classify/classifier.h"
#include "classify/svm.h"
#include "features/feature_space.h"
#include "features/rwr.h"

namespace graphsig::classify {

// Per-node descriptor used by the optimal-assignment kernel: the node's
// label plus its continuous RWR feature distribution.
struct NodeDescriptor {
  graph::Label label;
  std::vector<double> distribution;
};

using GraphDescriptor = std::vector<NodeDescriptor>;

struct OaKernelConfig {
  features::RwrConfig rwr;
  int top_k_atoms = 5;
  // RBF width of the node kernel exp(-gamma * ||da - db||^2); nodes with
  // different labels score 0.
  double gamma = 8.0;
  SvmConfig svm;
  // Worker threads for Gram-matrix rows; results are identical.
  int num_threads = 1;
};

// Raw (unnormalized) optimal-assignment kernel value between two graph
// descriptors: maximum-weight node assignment (Hungarian) over the node
// kernel, divided by max(|a|, |b|). Symmetric and in [0, 1].
double OaKernelValue(const GraphDescriptor& a, const GraphDescriptor& b,
                     double gamma);

// The paper's kernel baseline (Froehlich et al.'s optimal assignment
// kernel + SVM). Each training pair costs an O(n^3) assignment, which is
// what makes OA unscalable in Fig. 17.
class OaKernelClassifier : public GraphClassifier {
 public:
  explicit OaKernelClassifier(OaKernelConfig config = {})
      : config_(config), svm_(config.svm) {}

  void Train(const graph::GraphDatabase& training) override;
  double Score(const graph::Graph& query) const override;
  std::string name() const override { return "OA"; }

 private:
  GraphDescriptor Describe(const graph::Graph& g) const;

  OaKernelConfig config_;
  features::FeatureSpace space_;
  std::vector<GraphDescriptor> train_descriptors_;
  std::vector<double> train_self_kernels_;  // for cosine normalization
  KernelSvm svm_;
};

}  // namespace graphsig::classify

#endif  // GRAPHSIG_CLASSIFY_OA_KERNEL_H_
