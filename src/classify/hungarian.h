#ifndef GRAPHSIG_CLASSIFY_HUNGARIAN_H_
#define GRAPHSIG_CLASSIFY_HUNGARIAN_H_

#include <vector>

namespace graphsig::classify {

// Maximum-weight perfect assignment on an n x n score matrix
// (scores[i][j] = value of assigning row i to column j) via the O(n^3)
// potentials form of the Hungarian algorithm. Returns the column chosen
// for each row. This is the inner solver of the optimal-assignment graph
// kernel (Froehlich et al.), which the paper's OA baseline uses.
std::vector<int> MaxWeightAssignment(
    const std::vector<std::vector<double>>& scores);

// Total score of an assignment.
double AssignmentValue(const std::vector<std::vector<double>>& scores,
                       const std::vector<int>& assignment);

}  // namespace graphsig::classify

#endif  // GRAPHSIG_CLASSIFY_HUNGARIAN_H_
