#ifndef GRAPHSIG_CLASSIFY_CLASSIFIER_H_
#define GRAPHSIG_CLASSIFY_CLASSIFIER_H_

#include <string>

#include "graph/graph_database.h"

namespace graphsig::classify {

// Interface for the binary graph classifiers compared in Section VI-D.
// Training labels are the graphs' tags (1 = positive/active, 0 =
// negative/inactive).
class GraphClassifier {
 public:
  virtual ~GraphClassifier() = default;

  // Fits the model. Called once per cross-validation fold.
  virtual void Train(const graph::GraphDatabase& training) = 0;

  // Continuous decision value for a query graph; larger means more
  // positive. The ROC/AUC machinery varies a threshold over this.
  virtual double Score(const graph::Graph& query) const = 0;

  // Hard decision at threshold 0.
  bool Classify(const graph::Graph& query) const {
    return Score(query) > 0.0;
  }

  virtual std::string name() const = 0;
};

}  // namespace graphsig::classify

#endif  // GRAPHSIG_CLASSIFY_CLASSIFIER_H_
