#ifndef GRAPHSIG_OBS_TRACE_H_
#define GRAPHSIG_OBS_TRACE_H_

// Scoped trace spans over the obs::MetricsRegistry.
//
//   void MinePhase() {
//     GS_TRACE_SPAN("mine/fvmine");           // counts the call + wall ns
//     ...
//   }
//
//   util::Result<...> Expand() {
//     GS_TRACE_SPAN_NAMED(span, "fvmine/search");
//     ...
//     span.AddWork(states_explored);          // deterministic work units
//   }
//
// The string literal is the span's full path — '/'-separated components
// form the per-phase tree ("mine" is the parent of "mine/fvmine") in the
// DumpJson "spans" section, which sorts by path so parents precede
// children. Paths are deliberately NOT derived from runtime nesting:
// ParallelFor bodies run inline on the caller at --threads=1 but on
// pool workers otherwise, so a nesting-derived path would depend on the
// thread count and break the determinism contract for {calls, work}.
//
// Per-span accounting is {calls, work} (deterministic — asserted by CI)
// and wall_ns (advisory; timing is allowed to vary run to run). The
// span pointer is resolved once per call site via a function-local
// static, so steady-state cost is one clock read at entry/exit and one
// relaxed atomic flush in the destructor.

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace graphsig::obs {

// RAII span instance. Work accumulates locally and flushes to the
// shared SpanStats once, in the destructor, together with the call
// count and elapsed wall time.
class TraceSpan {
 public:
  explicit TraceSpan(SpanStats* stats)
      : stats_(stats), start_(std::chrono::steady_clock::now()) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    stats_->RecordCall(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        work_);
  }

  // Attributes deterministic work units to this span.
  void AddWork(uint64_t n) { work_ += n; }

 private:
  SpanStats* const stats_;
  uint64_t work_ = 0;
  const std::chrono::steady_clock::time_point start_;
};

}  // namespace graphsig::obs

#define GS_OBS_CONCAT_INNER(a, b) a##b
#define GS_OBS_CONCAT(a, b) GS_OBS_CONCAT_INNER(a, b)

// Anonymous scoped span: counts one call + wall time for this scope.
#define GS_TRACE_SPAN(path) \
  GS_TRACE_SPAN_NAMED(GS_OBS_CONCAT(gs_trace_span_, __LINE__), path)

// Named scoped span; call `var.AddWork(n)` to attribute work units.
#define GS_TRACE_SPAN_NAMED(var, path)                               \
  static ::graphsig::obs::SpanStats* GS_OBS_CONCAT(var, _stats) =    \
      ::graphsig::obs::MetricsRegistry::Global().GetSpan(path);      \
  ::graphsig::obs::TraceSpan var(GS_OBS_CONCAT(var, _stats))

#endif  // GRAPHSIG_OBS_TRACE_H_
