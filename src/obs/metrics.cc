#include "obs/metrics.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace graphsig::obs {
namespace {

// Minimal JSON string escaping; metric names are code literals, but the
// dump must stay valid JSON even if one ever carries a quote.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Emits `"name": value` lines for a sorted {name -> scalar} section.
template <typename Map, typename ValueFn>
void AppendScalarSection(const Map& map, const char* indent, ValueFn value,
                         std::string* out) {
  bool first = true;
  for (const auto& [name, metric] : map) {
    if (!first) *out += ",\n";
    first = false;
    *out += indent;
    *out += "\"" + JsonEscape(name) + "\": " + std::to_string(value(*metric));
  }
  if (!map.empty()) *out += "\n";
}

template <typename T>
T* FindOrNull(const std::map<std::string, std::unique_ptr<T>, std::less<>>& m,
              std::string_view name) {
  auto it = m.find(name);
  return it == m.end() ? nullptr : it->second.get();
}

}  // namespace

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  GS_CHECK(!bounds_.empty());
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    GS_CHECK_LT(bounds_[i], bounds_[i + 1]);
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

uint64_t Histogram::total_count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::ResetValue() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry;
  return *instance;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  util::MutexLock lock(&mu_);
  GS_CHECK(FindOrNull(advisory_counters_, name) == nullptr);
  if (Counter* existing = FindOrNull(counters_, name)) return existing;
  auto [it, inserted] = counters_.emplace(
      std::string(name), std::unique_ptr<Counter>(new Counter));
  return it->second.get();
}

Counter* MetricsRegistry::GetAdvisoryCounter(std::string_view name) {
  util::MutexLock lock(&mu_);
  GS_CHECK(FindOrNull(counters_, name) == nullptr);
  if (Counter* existing = FindOrNull(advisory_counters_, name)) {
    return existing;
  }
  auto [it, inserted] = advisory_counters_.emplace(
      std::string(name), std::unique_ptr<Counter>(new Counter));
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  util::MutexLock lock(&mu_);
  if (Gauge* existing = FindOrNull(gauges_, name)) return existing;
  auto [it, inserted] =
      gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge));
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<uint64_t> bounds) {
  util::MutexLock lock(&mu_);
  if (Histogram* existing = FindOrNull(histograms_, name)) {
    GS_CHECK(existing->bounds() == bounds);
    return existing;
  }
  auto [it, inserted] = histograms_.emplace(
      std::string(name),
      std::unique_ptr<Histogram>(new Histogram(std::move(bounds))));
  return it->second.get();
}

SpanStats* MetricsRegistry::GetSpan(std::string_view path) {
  util::MutexLock lock(&mu_);
  if (SpanStats* existing = FindOrNull(spans_, path)) return existing;
  auto [it, inserted] = spans_.emplace(
      std::string(path), std::unique_ptr<SpanStats>(new SpanStats));
  return it->second.get();
}

std::string MetricsRegistry::DumpJson(const DumpOptions& options) const {
  util::MutexLock lock(&mu_);
  std::string out = "{\n";

  out += "  \"counters\": {\n";
  AppendScalarSection(
      counters_, "    ", [](const Counter& c) { return c.value(); }, &out);
  out += "  },\n";

  out += "  \"spans\": {\n";
  {
    bool first = true;
    for (const auto& [path, span] : spans_) {
      if (!first) out += ",\n";
      first = false;
      out += "    \"" + JsonEscape(path) +
             "\": {\"calls\": " + std::to_string(span->calls()) +
             ", \"work\": " + std::to_string(span->work()) + "}";
    }
    if (!spans_.empty()) out += "\n";
  }
  out += options.include_advisory ? "  },\n" : "  }\n";

  if (options.include_advisory) {
    out += "  \"advisory\": {\n";
    out += "    \"counters\": {\n";
    AppendScalarSection(
        advisory_counters_, "      ",
        [](const Counter& c) { return c.value(); }, &out);
    out += "    },\n";

    out += "    \"gauges\": {\n";
    AppendScalarSection(
        gauges_, "      ", [](const Gauge& g) { return g.value(); }, &out);
    out += "    },\n";

    out += "    \"histograms\": {\n";
    {
      bool first = true;
      for (const auto& [name, hist] : histograms_) {
        if (!first) out += ",\n";
        first = false;
        out += "      \"" + JsonEscape(name) + "\": {\"bounds\": [";
        for (size_t i = 0; i < hist->bounds().size(); ++i) {
          if (i > 0) out += ", ";
          out += std::to_string(hist->bounds()[i]);
        }
        out += "], \"counts\": [";
        for (size_t i = 0; i <= hist->bounds().size(); ++i) {
          if (i > 0) out += ", ";
          out += std::to_string(hist->bucket_count(i));
        }
        out += "], \"sum\": " + std::to_string(hist->sum()) + "}";
      }
      if (!histograms_.empty()) out += "\n";
    }
    out += "    },\n";

    out += "    \"span_wall_ns\": {\n";
    AppendScalarSection(
        spans_, "      ", [](const SpanStats& s) { return s.wall_ns(); },
        &out);
    out += "    }\n";
    out += "  }\n";
  }

  out += "}\n";
  return out;
}

std::map<std::string, uint64_t> MetricsRegistry::WorkValues() const {
  util::MutexLock lock(&mu_);
  std::map<std::string, uint64_t> values;
  for (const auto& [name, counter] : counters_) {
    values[name] = counter->value();
  }
  for (const auto& [path, span] : spans_) {
    values["span/" + path + "/calls"] = span->calls();
    values["span/" + path + "/work"] = span->work();
  }
  return values;
}

std::string MetricsRegistry::CounterName(const Counter* counter) const {
  util::MutexLock lock(&mu_);
  for (const auto& [name, c] : counters_) {
    if (c.get() == counter) return name;
  }
  return std::string();
}

std::string MetricsRegistry::SpanPath(const SpanStats* span) const {
  util::MutexLock lock(&mu_);
  for (const auto& [path, s] : spans_) {
    if (s.get() == span) return path;
  }
  return std::string();
}

void MetricsRegistry::Reset() {
  util::MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->ResetValue();
  for (auto& [name, c] : advisory_counters_) c->ResetValue();
  for (auto& [name, g] : gauges_) g->ResetValue();
  for (auto& [name, h] : histograms_) h->ResetValue();
  for (auto& [name, s] : spans_) s->ResetValue();
}

}  // namespace graphsig::obs
