#ifndef GRAPHSIG_OBS_WORK_CAPTURE_H_
#define GRAPHSIG_OBS_WORK_CAPTURE_H_

// Capture-and-replay for deterministic work metrics.
//
// The incremental miner (src/stream) promises that a delta mine emits
// the exact work-counter dump a cold full mine of the same database
// would emit — even for units of work it did not re-execute. The
// mechanism is this module: while a WorkCapture is live on a thread,
// every deterministic Counter::Add and SpanStats write on that thread
// also lands in the capture frame. Take() resolves the touched metric
// pointers to their registered names (dropping advisory counters and
// span wall time, which are outside the determinism contract) and
// returns a WorkDelta — a named, serializable record of exactly what
// the unit of work contributed to the registry. Replaying the delta
// later re-applies those contributions without redoing the work.
//
// Validity rules:
//   * One WorkCapture per thread at a time; frames nest by
//     save/restore, and writes land in the innermost frame only.
//   * The captured unit must run entirely on the capturing thread
//     (true for every cacheable unit in the pipeline: each runs inside
//     one ParallelFor task).
//   * Replay totals are deterministic because WorkDelta keys are
//     names, merged and sorted, never pointers.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace graphsig::obs {

// {calls, work} contribution to one trace-span path.
struct SpanDelta {
  uint64_t calls = 0;
  uint64_t work = 0;

  bool operator==(const SpanDelta&) const = default;
};

// Named record of one unit's deterministic metric contributions.
struct WorkDelta {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, SpanDelta> spans;

  bool empty() const { return counters.empty() && spans.empty(); }
  bool operator==(const WorkDelta&) const = default;
};

// RAII capture frame for the current thread. Writes made between
// construction and Take()/destruction are recorded in addition to
// landing in the registry as usual.
class WorkCapture {
 public:
  WorkCapture();
  ~WorkCapture();

  WorkCapture(const WorkCapture&) = delete;
  WorkCapture& operator=(const WorkCapture&) = delete;

  // Resolves the recorded writes to a named WorkDelta and clears the
  // frame. Advisory counters resolve to no name and are dropped.
  WorkDelta Take();

 private:
  internal::CaptureFrame* frame_;
  internal::CaptureFrame* previous_;
};

// Re-applies a captured delta to the global registry: counters by name,
// spans by path (calls + work; wall time is never replayed).
void ReplayWorkDelta(const WorkDelta& delta);

// Merges `from` into `into` (sum per name) — for units whose captured
// work is persisted in pieces.
void MergeWorkDelta(const WorkDelta& from, WorkDelta* into);

}  // namespace graphsig::obs

#endif  // GRAPHSIG_OBS_WORK_CAPTURE_H_
