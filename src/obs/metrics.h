#ifndef GRAPHSIG_OBS_METRICS_H_
#define GRAPHSIG_OBS_METRICS_H_

// Process-wide observability registry: named monotonic counters, gauges,
// fixed-bucket histograms, and trace-span aggregates (see obs/trace.h).
//
// The registry exists to answer "where did this run spend its work" at
// runtime, and to give CI a perf-regression signal that survives noisy
// single-core runners. That forces a hard split between two kinds of
// numbers, and the split is the design:
//
//   * WORK COUNTERS (GetCounter) count deterministic units of algorithmic
//     work — FVMine expansions, RWR iterations, region-cut cache misses,
//     wire frames by type. For a fixed seed they are byte-identical
//     across runs and across --threads=1/4/8 (tests/obs_test.cc asserts
//     this; scripts/check_counters.py gates CI on it). Never count
//     anything scheduling-dependent here.
//
//   * ADVISORY metrics (GetAdvisoryCounter / GetGauge / GetHistogram,
//     plus span wall_ns) record whatever the scheduler happened to do:
//     thread-pool task executions, queue depths, latencies, reply-size
//     distributions. Useful for humans, useless for CI assertions —
//     DumpJson() fences them into an "advisory" section that
//     check_counters.py never reads, and can omit them entirely
//     (include_advisory = false) so the determinism tests can diff dumps
//     bytewise.
//
// Concurrency: the fast path (Add/Set/Observe on a metric you already
// hold) is a relaxed atomic op, no locks. The registry map itself is
// guarded by util::Mutex with thread-safety annotations; Get* takes the
// lock once, after which the returned pointer is stable for the process
// lifetime (metrics are never destroyed, only Reset() to zero). Hot
// loops should not even pay the relaxed-atomic cost per step: accumulate
// into a local uint64_t and flush once per call, which also keeps the
// totals deterministic regardless of interleaving.
//
// Naming scheme (DESIGN.md §12): "<subsystem>/<what>", lowercase,
// '/'-separated, e.g. "fvmine/expansions", "net/frames/query". The name
// is the identity: two Get* calls with the same name return the same
// metric; the same name with a different kind is a programming error
// (GS_CHECK).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"

namespace graphsig::obs {

class Counter;
class SpanStats;

namespace internal {
// Per-thread capture hook (obs/work_capture.h). When a WorkCapture is
// live on this thread, every deterministic metric write also lands in
// its frame so the delta can be persisted and replayed later — the
// mechanism the incremental miner uses to keep cached work
// counter-transparent. Null (one TLS load, no branch taken) otherwise.
struct CaptureFrame;
extern thread_local CaptureFrame* tls_capture_frame;
void CaptureCounterWrite(Counter* counter, uint64_t n);
void CaptureSpanWrite(SpanStats* span, uint64_t calls, uint64_t work);
}  // namespace internal

// Monotonic counter. Add() is lock-free (relaxed atomic); totals from
// concurrent adders are exact.
class Counter {
 public:
  void Add(uint64_t n) {
    value_.fetch_add(n, std::memory_order_relaxed);
    if (internal::tls_capture_frame != nullptr) {
      internal::CaptureCounterWrite(this, n);
    }
  }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void ResetValue() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<uint64_t> value_{0};
};

// Scoped local accumulator for one Counter: the "accumulate into a
// local uint64_t and flush once" idiom from the header comment,
// packaged so per-task code (a ShardedCatalog shard slice, a pool
// worker's claim loop) cannot forget the flush. Add() is a plain
// integer add — no atomic traffic, no capture-hook branch — and the
// destructor publishes the total in a single Counter::Add, which is
// also what keeps the flushed totals byte-identical across shard and
// thread counts: N tasks flushing partial sums add up to exactly the
// one sum a serial pass would flush.
class CounterTally {
 public:
  explicit CounterTally(Counter* counter) : counter_(counter) {}
  ~CounterTally() { Flush(); }

  CounterTally(const CounterTally&) = delete;
  CounterTally& operator=(const CounterTally&) = delete;

  void Add(uint64_t n) { pending_ += n; }
  void Increment() { ++pending_; }
  // Publishes the pending total now (idempotent; the destructor then
  // has nothing left to add).
  void Flush() {
    if (pending_ != 0) {
      counter_->Add(pending_);
      pending_ = 0;
    }
  }
  uint64_t pending() const { return pending_; }

 private:
  Counter* const counter_;
  uint64_t pending_ = 0;
};

// Last-write-wins instantaneous value, plus a monotonic-max mode for
// high-water marks. Advisory by construction.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  // Raises the gauge to `v` if above the current value (CAS loop).
  void UpdateMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void ResetValue() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram over uint64 samples (latencies, sizes). Bucket
// i counts samples v with v <= bounds[i] (and > bounds[i-1]); one
// overflow bucket catches v > bounds.back(). Bounds are fixed at
// registration so concurrent Observe() is a single relaxed atomic add.
class Histogram {
 public:
  void Observe(uint64_t v) {
    size_t lo = 0, hi = bounds_.size();
    while (lo < hi) {  // lower_bound over the sorted bucket bounds
      const size_t mid = (lo + hi) / 2;
      if (bounds_[mid] < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    buckets_[lo].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t total_count() const;
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<uint64_t> bounds);
  void ResetValue();

  const std::vector<uint64_t> bounds_;                // ascending, nonempty
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> sum_{0};
};

// Aggregate for one trace-span path: deterministic {calls, work units}
// plus advisory wall time. Written by obs::TraceSpan (trace.h).
class SpanStats {
 public:
  void RecordCall(uint64_t wall_ns, uint64_t work) {
    calls_.fetch_add(1, std::memory_order_relaxed);
    work_.fetch_add(work, std::memory_order_relaxed);
    wall_ns_.fetch_add(wall_ns, std::memory_order_relaxed);
    if (internal::tls_capture_frame != nullptr) {
      internal::CaptureSpanWrite(this, 1, work);
    }
  }
  void AddWork(uint64_t n) {
    work_.fetch_add(n, std::memory_order_relaxed);
    if (internal::tls_capture_frame != nullptr) {
      internal::CaptureSpanWrite(this, 0, n);
    }
  }
  // Re-applies a previously captured {calls, work} delta without
  // touching wall time — wall is advisory and never replayed.
  void AddReplay(uint64_t calls, uint64_t work) {
    calls_.fetch_add(calls, std::memory_order_relaxed);
    work_.fetch_add(work, std::memory_order_relaxed);
    if (internal::tls_capture_frame != nullptr) {
      internal::CaptureSpanWrite(this, calls, work);
    }
  }

  uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  uint64_t work() const { return work_.load(std::memory_order_relaxed); }
  uint64_t wall_ns() const {
    return wall_ns_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  SpanStats() = default;
  void ResetValue() {
    calls_.store(0, std::memory_order_relaxed);
    work_.store(0, std::memory_order_relaxed);
    wall_ns_.store(0, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> work_{0};   // deterministic work units
  std::atomic<uint64_t> wall_ns_{0};  // advisory
};

struct DumpOptions {
  // When false, the dump contains only the deterministic sections
  // ("counters" and "spans" calls/work) — the byte-comparable payload
  // the determinism tests and the CI baseline use.
  bool include_advisory = true;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide instance every GS_TRACE_SPAN / instrumented
  // subsystem reports into. Tests may construct private registries.
  static MetricsRegistry& Global();

  // Deterministic work counter (see the header comment for the
  // contract). The returned pointer is valid for the registry lifetime.
  Counter* GetCounter(std::string_view name) GS_EXCLUDES(mu_);
  // Scheduling-dependent counter; dumped under "advisory".
  Counter* GetAdvisoryCounter(std::string_view name) GS_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name) GS_EXCLUDES(mu_);
  // `bounds` must be nonempty and strictly ascending; re-registration
  // with different bounds is a programming error.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<uint64_t> bounds) GS_EXCLUDES(mu_);
  SpanStats* GetSpan(std::string_view path) GS_EXCLUDES(mu_);

  // Pretty JSON (2-space indent), keys sorted, trailing newline —
  // byte-stable for identical metric values.
  std::string DumpJson(const DumpOptions& options = {}) const
      GS_EXCLUDES(mu_);

  // Flat view of the deterministic values: every work counter, plus
  // "span/<path>/calls" and "span/<path>/work". What the determinism
  // tests compare.
  std::map<std::string, uint64_t> WorkValues() const GS_EXCLUDES(mu_);

  // Reverse lookups for obs/work_capture.h: the registered name of a
  // deterministic work counter (or span path), empty when the pointer
  // is not a deterministic metric of this registry — which is how a
  // captured frame drops advisory counters at resolution time.
  std::string CounterName(const Counter* counter) const GS_EXCLUDES(mu_);
  std::string SpanPath(const SpanStats* span) const GS_EXCLUDES(mu_);

  // Zeroes every registered value. Metric pointers stay valid; safe
  // against concurrent writers (they just land in the fresh epoch).
  void Reset() GS_EXCLUDES(mu_);

 private:
  template <typename T>
  using MetricMap = std::map<std::string, std::unique_ptr<T>, std::less<>>;

  mutable util::Mutex mu_;
  MetricMap<Counter> counters_ GS_GUARDED_BY(mu_);
  MetricMap<Counter> advisory_counters_ GS_GUARDED_BY(mu_);
  MetricMap<Gauge> gauges_ GS_GUARDED_BY(mu_);
  MetricMap<Histogram> histograms_ GS_GUARDED_BY(mu_);
  MetricMap<SpanStats> spans_ GS_GUARDED_BY(mu_);
};

}  // namespace graphsig::obs

#endif  // GRAPHSIG_OBS_METRICS_H_
