#include "obs/work_capture.h"

#include <utility>

namespace graphsig::obs {

namespace internal {

// Append-only write log. Entries are merged by *name* at Take(), so
// the pointer order in which writes arrived never escapes.
struct CaptureFrame {
  std::vector<std::pair<Counter*, uint64_t>> counter_writes;
  std::vector<std::pair<SpanStats*, SpanDelta>> span_writes;
};

thread_local CaptureFrame* tls_capture_frame = nullptr;

void CaptureCounterWrite(Counter* counter, uint64_t n) {
  tls_capture_frame->counter_writes.emplace_back(counter, n);
}

void CaptureSpanWrite(SpanStats* span, uint64_t calls, uint64_t work) {
  tls_capture_frame->span_writes.emplace_back(span,
                                              SpanDelta{calls, work});
}

}  // namespace internal

WorkCapture::WorkCapture()
    : frame_(new internal::CaptureFrame),
      previous_(internal::tls_capture_frame) {
  internal::tls_capture_frame = frame_;
}

WorkCapture::~WorkCapture() {
  internal::tls_capture_frame = previous_;
  delete frame_;
}

WorkDelta WorkCapture::Take() {
  // Detach before resolving: CounterName takes the registry lock, and
  // resolution itself must not record into the frame.
  internal::tls_capture_frame = previous_;
  WorkDelta delta;
  auto& registry = MetricsRegistry::Global();
  // Resolve each distinct pointer once; advisory counters (and metrics
  // from a non-global registry) resolve to "" and are dropped.
  std::map<const void*, std::string> names;
  for (const auto& [counter, n] : frame_->counter_writes) {
    auto it = names.find(counter);
    if (it == names.end()) {
      it = names.emplace(counter, registry.CounterName(counter)).first;
    }
    if (it->second.empty()) continue;
    delta.counters[it->second] += n;
  }
  names.clear();
  for (const auto& [span, d] : frame_->span_writes) {
    auto it = names.find(span);
    if (it == names.end()) {
      it = names.emplace(span, registry.SpanPath(span)).first;
    }
    if (it->second.empty()) continue;
    SpanDelta& merged = delta.spans[it->second];
    merged.calls += d.calls;
    merged.work += d.work;
  }
  frame_->counter_writes.clear();
  frame_->span_writes.clear();
  internal::tls_capture_frame = frame_;
  return delta;
}

void ReplayWorkDelta(const WorkDelta& delta) {
  auto& registry = MetricsRegistry::Global();
  for (const auto& [name, n] : delta.counters) {
    // Names originate from literal-named capture sites; replay restores
    // them verbatim, it never mints new ones.
    registry.GetCounter(name)->Add(n);
  }
  for (const auto& [path, d] : delta.spans) {
    registry.GetSpan(path)->AddReplay(d.calls, d.work);
  }
}

void MergeWorkDelta(const WorkDelta& from, WorkDelta* into) {
  for (const auto& [name, n] : from.counters) into->counters[name] += n;
  for (const auto& [path, d] : from.spans) {
    SpanDelta& merged = into->spans[path];
    merged.calls += d.calls;
    merged.work += d.work;
  }
}

}  // namespace graphsig::obs
