#ifndef GRAPHSIG_FSM_DFS_CODE_H_
#define GRAPHSIG_FSM_DFS_CODE_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace graphsig::fsm {

// One edge of a DFS code (gSpan, Yan & Han 2002): a 5-tuple
// (from, to, from_label, edge_label, to_label) over DFS discovery ids.
// Forward edges have from < to; backward edges have from > to.
struct DfsEdge {
  int32_t from;
  int32_t to;
  graph::Label from_label;
  graph::Label edge_label;
  graph::Label to_label;

  bool IsForward() const { return from < to; }

  friend bool operator==(const DfsEdge& a, const DfsEdge& b) = default;
};

// A DFS code: an edge sequence describing one DFS traversal of a
// connected pattern. The lexicographically minimal code over all
// traversals is the pattern's canonical form.
class DfsCode {
 public:
  DfsCode() = default;

  void Push(const DfsEdge& e) { edges_.push_back(e); }
  void Pop() { edges_.pop_back(); }
  void Clear() { edges_.clear(); }

  size_t size() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }
  const DfsEdge& operator[](size_t i) const { return edges_[i]; }
  const std::vector<DfsEdge>& edges() const { return edges_; }

  // Number of distinct DFS vertex ids in the code.
  int32_t NumVertices() const;

  // Materializes the pattern graph; vertex k of the result is DFS id k.
  graph::Graph ToGraph() const;

  // Indices (into the edge sequence) of the forward edges on the
  // rightmost path, ordered from the rightmost vertex back to the root.
  // Mirrors gSpan's RMPath.
  std::vector<int> BuildRmPath() const;

  // Stable text form, e.g. "(0,1,6,1,6)(1,2,6,1,8)"; usable as a map key
  // once the code is minimal.
  std::string ToString() const;

  friend bool operator==(const DfsCode& a, const DfsCode& b) = default;

 private:
  std::vector<DfsEdge> edges_;
};

// Total order over DFS edge tuples as defined by gSpan's neighborhood
// restriction; used to compare candidate extensions.
bool DfsEdgeLess(const DfsEdge& a, const DfsEdge& b);

// Builds the minimal (canonical) DFS code of a connected graph. Aborts on
// disconnected or empty input.
DfsCode BuildMinDfsCode(const graph::Graph& g);

// True iff `code` is its pattern's minimal DFS code.
bool IsMinimalDfsCode(const DfsCode& code);

// Canonical string key of a connected graph: ToString() of its minimal
// DFS code (plus a vertex-label sentinel for single-vertex graphs). Two
// connected graphs get equal keys iff they are isomorphic.
std::string CanonicalCode(const graph::Graph& g);

}  // namespace graphsig::fsm

#endif  // GRAPHSIG_FSM_DFS_CODE_H_
