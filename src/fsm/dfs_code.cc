#include "fsm/dfs_code.h"

#include <algorithm>
#include <tuple>

#include "util/check.h"
#include "util/strings.h"

namespace graphsig::fsm {

int32_t DfsCode::NumVertices() const {
  int32_t max_id = -1;
  for (const DfsEdge& e : edges_) {
    max_id = std::max(max_id, std::max(e.from, e.to));
  }
  return max_id + 1;
}

graph::Graph DfsCode::ToGraph() const {
  graph::Graph g;
  int32_t n = NumVertices();
  std::vector<graph::Label> labels(n, -1);
  for (const DfsEdge& e : edges_) {
    labels[e.from] = e.from_label;
    labels[e.to] = e.to_label;
  }
  for (int32_t v = 0; v < n; ++v) {
    GS_CHECK_GE(labels[v], 0);
    g.AddVertex(labels[v]);
  }
  for (const DfsEdge& e : edges_) {
    g.AddEdge(e.from, e.to, e.edge_label);
  }
  return g;
}

std::vector<int> DfsCode::BuildRmPath() const {
  // Walk the code backwards collecting the chain of forward edges that
  // ends at the rightmost vertex: index order is rightmost-first.
  std::vector<int> rmpath;
  int32_t old_from = -1;
  for (int i = static_cast<int>(edges_.size()) - 1; i >= 0; --i) {
    const DfsEdge& e = edges_[i];
    if (e.IsForward() && (rmpath.empty() || old_from == e.to)) {
      rmpath.push_back(i);
      old_from = e.from;
    }
  }
  return rmpath;
}

std::string DfsCode::ToString() const {
  std::string out;
  for (const DfsEdge& e : edges_) {
    out += util::StrPrintf("(%d,%d,%d,%d,%d)", e.from, e.to, e.from_label,
                           e.edge_label, e.to_label);
  }
  return out;
}

bool DfsEdgeLess(const DfsEdge& a, const DfsEdge& b) {
  // Comparator for candidate extensions of one common prefix:
  // backward edges precede forward edges; backward edges order by
  // (to asc, edge_label asc); forward edges by (from desc, edge_label asc,
  // to_label asc).
  const bool a_fwd = a.IsForward();
  const bool b_fwd = b.IsForward();
  if (a_fwd != b_fwd) return !a_fwd;
  if (!a_fwd) {
    return std::tie(a.to, a.edge_label) < std::tie(b.to, b.edge_label);
  }
  if (a.from != b.from) return a.from > b.from;
  return std::tie(a.edge_label, a.to_label) <
         std::tie(b.edge_label, b.to_label);
}

namespace {

// Embedding of a DFS-code prefix into the pattern graph itself, used by
// the canonical (minimum) code construction. Patterns are small, so a
// dense representation is simplest and fast enough.
struct Emb {
  std::vector<graph::VertexId> dfs_to_g;  // DFS id -> graph vertex
  std::vector<bool> edge_used;            // indexed by edge index
  std::vector<bool> vertex_used;          // indexed by graph vertex
};

}  // namespace

DfsCode BuildMinDfsCode(const graph::Graph& g) {
  GS_CHECK_GT(g.num_vertices(), 0);
  GS_CHECK(g.IsConnected());
  DfsCode code;
  if (g.num_edges() == 0) {
    GS_CHECK_EQ(g.num_vertices(), 1);
    return code;  // single vertex: empty code
  }

  // Seed with the minimal (from_label, edge_label, to_label) edge over all
  // directed instances.
  using Triple = std::tuple<graph::Label, graph::Label, graph::Label>;
  Triple best{INT32_MAX, INT32_MAX, INT32_MAX};
  for (const graph::EdgeRecord& e : g.edges()) {
    Triple ab{g.vertex_label(e.u), e.label, g.vertex_label(e.v)};
    Triple ba{g.vertex_label(e.v), e.label, g.vertex_label(e.u)};
    best = std::min(best, std::min(ab, ba));
  }
  code.Push({0, 1, std::get<0>(best), std::get<1>(best), std::get<2>(best)});

  std::vector<Emb> embs;
  for (int32_t ei = 0; ei < g.num_edges(); ++ei) {
    const graph::EdgeRecord& e = g.edge(ei);
    for (int dir = 0; dir < 2; ++dir) {
      graph::VertexId a = dir == 0 ? e.u : e.v;
      graph::VertexId b = dir == 0 ? e.v : e.u;
      if (Triple{g.vertex_label(a), e.label, g.vertex_label(b)} != best) {
        continue;
      }
      Emb emb;
      emb.dfs_to_g = {a, b};
      emb.edge_used.assign(g.num_edges(), false);
      emb.edge_used[ei] = true;
      emb.vertex_used.assign(g.num_vertices(), false);
      emb.vertex_used[a] = emb.vertex_used[b] = true;
      embs.push_back(std::move(emb));
    }
  }
  GS_CHECK(!embs.empty());

  const graph::Label min_label = std::get<0>(best);

  while (static_cast<int32_t>(code.size()) < g.num_edges()) {
    std::vector<int> rmpath = code.BuildRmPath();
    const int32_t maxtoc = code[rmpath[0]].to;  // rightmost vertex DFS id
    const graph::Label rm_vertex_label = code[rmpath[0]].to_label;

    // --- Backward extensions: smallest (to, edge_label) wins. Iterate
    // rmpath from the root side so 'to' ascends; first hit is minimal in
    // 'to', then take the minimal edge label for that 'to'.
    bool extended = false;
    for (int j = static_cast<int>(rmpath.size()) - 1; j >= 1 && !extended;
         --j) {
      const DfsEdge& e1 = code[rmpath[j]];
      const int32_t to_dfs = e1.from;
      graph::Label best_elabel = INT32_MAX;
      for (const Emb& emb : embs) {
        graph::VertexId rm_g = emb.dfs_to_g[maxtoc];
        graph::VertexId to_g = emb.dfs_to_g[to_dfs];
        for (const graph::AdjEntry& adj : g.neighbors(rm_g)) {
          if (adj.to != to_g) continue;
          if (emb.edge_used[adj.edge_index]) continue;
          // Canonical-growth legality (gSpan get_backward): the new
          // backward edge must not precede the rmpath edge it closes on.
          if (e1.edge_label < adj.label ||
              (e1.edge_label == adj.label &&
               e1.to_label <= rm_vertex_label)) {
            best_elabel = std::min(best_elabel, adj.label);
          }
        }
      }
      if (best_elabel == INT32_MAX) continue;
      // Extend embeddings along the chosen backward edge.
      std::vector<Emb> next;
      for (const Emb& emb : embs) {
        graph::VertexId rm_g = emb.dfs_to_g[maxtoc];
        graph::VertexId to_g = emb.dfs_to_g[to_dfs];
        for (const graph::AdjEntry& adj : g.neighbors(rm_g)) {
          if (adj.to != to_g || adj.label != best_elabel) continue;
          if (emb.edge_used[adj.edge_index]) continue;
          Emb copy = emb;
          copy.edge_used[adj.edge_index] = true;
          next.push_back(std::move(copy));
        }
      }
      GS_CHECK(!next.empty());
      code.Push(
          {maxtoc, to_dfs, rm_vertex_label, best_elabel, e1.from_label});
      embs = std::move(next);
      extended = true;
    }
    if (extended) continue;

    // --- Forward extensions: largest 'from' wins (rightmost vertex
    // first, then up the rightmost path), then smallest (elabel, tolabel).
    struct FwdPick {
      int32_t from_dfs;
      graph::Label from_label;
      graph::Label elabel;
      graph::Label tolabel;
    };
    std::optional<FwdPick> pick;

    auto consider = [&](int32_t from_dfs, graph::Label from_label,
                        graph::Label elabel, graph::Label tolabel) {
      if (!pick.has_value() ||
          std::tie(elabel, tolabel) < std::tie(pick->elabel, pick->tolabel)) {
        pick = FwdPick{from_dfs, from_label, elabel, tolabel};
      }
    };

    // Pure forward from the rightmost vertex.
    for (const Emb& emb : embs) {
      graph::VertexId rm_g = emb.dfs_to_g[maxtoc];
      for (const graph::AdjEntry& adj : g.neighbors(rm_g)) {
        if (emb.vertex_used[adj.to]) continue;
        if (g.vertex_label(adj.to) < min_label) continue;
        consider(maxtoc, rm_vertex_label, adj.label,
                 g.vertex_label(adj.to));
      }
    }
    // Forward off the rightmost path, from rightmost-1 back to root,
    // only if the rightmost vertex produced nothing.
    if (!pick.has_value()) {
      for (size_t j = 0; j < rmpath.size() && !pick.has_value(); ++j) {
        const DfsEdge& e1 = code[rmpath[j]];
        const int32_t from_dfs = e1.from;
        for (const Emb& emb : embs) {
          graph::VertexId from_g = emb.dfs_to_g[from_dfs];
          for (const graph::AdjEntry& adj : g.neighbors(from_g)) {
            if (emb.vertex_used[adj.to]) continue;
            graph::Label tolabel = g.vertex_label(adj.to);
            if (tolabel < min_label) continue;
            // Legality (gSpan get_forward_rmpath): the branch must not
            // precede the rmpath edge it shares a source with.
            if (e1.edge_label < adj.label ||
                (e1.edge_label == adj.label && e1.to_label <= tolabel)) {
              consider(from_dfs, e1.from_label, adj.label, tolabel);
            }
          }
        }
      }
    }
    GS_CHECK(pick.has_value());  // connected graph must extend

    const int32_t new_dfs = maxtoc + 1;
    std::vector<Emb> next;
    for (const Emb& emb : embs) {
      graph::VertexId from_g = emb.dfs_to_g[pick->from_dfs];
      for (const graph::AdjEntry& adj : g.neighbors(from_g)) {
        if (emb.vertex_used[adj.to]) continue;
        if (adj.label != pick->elabel) continue;
        if (g.vertex_label(adj.to) != pick->tolabel) continue;
        Emb copy = emb;
        copy.edge_used[adj.edge_index] = true;
        copy.vertex_used[adj.to] = true;
        copy.dfs_to_g.push_back(adj.to);
        next.push_back(std::move(copy));
      }
    }
    GS_CHECK(!next.empty());
    code.Push({pick->from_dfs, new_dfs, pick->from_label, pick->elabel,
               pick->tolabel});
    embs = std::move(next);
  }
  return code;
}

bool IsMinimalDfsCode(const DfsCode& code) {
  if (code.empty()) return true;
  return BuildMinDfsCode(code.ToGraph()) == code;
}

std::string CanonicalCode(const graph::Graph& g) {
  GS_CHECK_GT(g.num_vertices(), 0);
  if (g.num_edges() == 0) {
    GS_CHECK_EQ(g.num_vertices(), 1);
    return util::StrPrintf("v%d", g.vertex_label(0));
  }
  return BuildMinDfsCode(g).ToString();
}

}  // namespace graphsig::fsm
