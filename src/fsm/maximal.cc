#include "fsm/maximal.h"

#include <algorithm>

#include "graph/isomorphism.h"

namespace graphsig::fsm {

std::vector<Pattern> FilterMaximal(std::vector<Pattern> patterns) {
  // Sort largest-first so containment checks only need to look at the
  // prefix of strictly larger patterns.
  std::sort(patterns.begin(), patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.graph.num_edges() != b.graph.num_edges()) {
                return a.graph.num_edges() > b.graph.num_edges();
              }
              return a.graph.num_vertices() > b.graph.num_vertices();
            });
  std::vector<Pattern> maximal;
  for (const Pattern& p : patterns) {
    bool contained = false;
    for (const Pattern& q : maximal) {
      const bool strictly_larger =
          q.graph.num_edges() > p.graph.num_edges() ||
          (q.graph.num_edges() == p.graph.num_edges() &&
           q.graph.num_vertices() > p.graph.num_vertices());
      if (!strictly_larger) continue;
      if (graph::IsSubgraphIsomorphic(p.graph, q.graph)) {
        contained = true;
        break;
      }
    }
    if (!contained) maximal.push_back(p);
  }
  return maximal;
}

std::vector<Pattern> FilterClosed(std::vector<Pattern> patterns) {
  std::sort(patterns.begin(), patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.graph.num_edges() != b.graph.num_edges()) {
                return a.graph.num_edges() > b.graph.num_edges();
              }
              return a.graph.num_vertices() > b.graph.num_vertices();
            });
  std::vector<Pattern> closed;
  for (const Pattern& p : patterns) {
    bool absorbed = false;
    for (const Pattern& q : closed) {
      const bool strictly_larger =
          q.graph.num_edges() > p.graph.num_edges() ||
          (q.graph.num_edges() == p.graph.num_edges() &&
           q.graph.num_vertices() > p.graph.num_vertices());
      if (!strictly_larger || q.support != p.support) continue;
      if (graph::IsSubgraphIsomorphic(p.graph, q.graph)) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) closed.push_back(p);
  }
  return closed;
}

MineResult MineMaximalGSpan(const graph::GraphDatabase& db,
                            const MinerConfig& config) {
  MineResult result = MineFrequentGSpan(db, config);
  result.patterns = FilterMaximal(std::move(result.patterns));
  return result;
}

MineResult MineClosedGSpan(const graph::GraphDatabase& db,
                           const MinerConfig& config) {
  MineResult result = MineFrequentGSpan(db, config);
  result.patterns = FilterClosed(std::move(result.patterns));
  return result;
}

}  // namespace graphsig::fsm
