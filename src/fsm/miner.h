#ifndef GRAPHSIG_FSM_MINER_H_
#define GRAPHSIG_FSM_MINER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph_database.h"

namespace graphsig::fsm {

// One mined frequent pattern.
struct Pattern {
  graph::Graph graph;               // the pattern itself
  int64_t support = 0;              // number of database graphs containing it
  std::vector<int32_t> supporting;  // ascending DB indices of those graphs
};

// Shared knobs for the frequent-subgraph miners. Caps beyond min_support
// exist so the deliberately-exponential baselines (Figs. 2, 9, 11) can be
// run to a bounded budget; a capped run reports completed=false.
struct MinerConfig {
  int64_t min_support = 1;  // absolute graph count
  int32_t min_edges = 1;    // only report patterns with >= this many edges
  int32_t max_edges = std::numeric_limits<int32_t>::max();
  size_t max_patterns = std::numeric_limits<size_t>::max();
  double budget_seconds = std::numeric_limits<double>::infinity();
  // Also report frequent single-vertex patterns (min_edges permitting).
  bool include_single_vertices = false;
  // Apriori miner only: candidate generation enumerates extensions from at
  // most this many supporting graphs per pattern. Candidates are purely
  // structural and a frequent extension occurs in >= min_support of the
  // parent's supporting graphs, so a few dozen generators see it with
  // near-certainty; support counting afterwards is always exact.
  size_t apriori_generation_sample = 32;
};

struct MineResult {
  std::vector<Pattern> patterns;
  bool completed = true;  // false if a cap or the time budget fired
  double seconds = 0.0;
  uint64_t states_expanded = 0;  // search states / candidates evaluated
  // gSpan only: bytes of embedding-chain scratch served by the task's
  // arena (deterministic; 0 for the apriori miner).
  uint64_t embedding_arena_bytes = 0;
};

// ceil(relative * db_size / 100) clamped to >= 1 — converts the paper's
// percentage thresholds ("theta") to absolute support.
int64_t SupportFromPercent(double percent, size_t db_size);

// Pattern-growth miner (gSpan: minimum DFS codes + rightmost-path
// extension over projected embeddings).
MineResult MineFrequentGSpan(const graph::GraphDatabase& db,
                             const MinerConfig& config);

// Level-wise apriori miner in the style of FSG: breadth-first candidate
// generation, canonical dedup, downward-closure pruning, and explicit
// support counting against TID lists.
MineResult MineFrequentApriori(const graph::GraphDatabase& db,
                               const MinerConfig& config);

}  // namespace graphsig::fsm

#endif  // GRAPHSIG_FSM_MINER_H_
