#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "fsm/dfs_code.h"
#include "fsm/miner.h"
#include "graph/csr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/timer.h"

namespace graphsig::fsm {

int64_t SupportFromPercent(double percent, size_t db_size) {
  GS_CHECK_GE(percent, 0.0);
  int64_t s = static_cast<int64_t>(
      std::ceil(percent * static_cast<double>(db_size) / 100.0));
  return std::max<int64_t>(s, 1);
}

namespace {

using graph::AdjEntry;
using graph::CsrGraph;
using graph::GraphDatabase;
using graph::Label;
using graph::VertexId;

// One edge of an embedding chain. `edge` points into the per-graph CSR
// half-edge array; `prev` points into the miner's arena. Walking prev
// links reconstructs the full embedding of the code. Trivially
// destructible by design: chains live in the task's Arena and are freed
// by rewinding, never destroyed.
struct Emb {
  int32_t gid;
  VertexId from;        // graph vertex the instance starts at
  const AdjEntry* edge;  // instance: (to, label, edge_index)
  const Emb* prev;
};

using Projected = std::vector<const Emb*>;

// Expanded view of one embedding: which graph edges/vertices it uses and
// where each DFS id landed.
struct History {
  std::vector<bool> edge_used;
  std::vector<bool> vertex_used;
  std::vector<VertexId> dfs_to_g;

  History(const CsrGraph& g, const DfsCode& code, const Emb* emb) {
    edge_used.assign(g.num_edges(), false);
    vertex_used.assign(g.num_vertices(), false);
    std::vector<const Emb*> chain;
    for (const Emb* e = emb; e != nullptr; e = e->prev) chain.push_back(e);
    std::reverse(chain.begin(), chain.end());
    GS_CHECK_EQ(chain.size(), code.size());
    dfs_to_g.assign(code.NumVertices(), -1);
    for (size_t i = 0; i < chain.size(); ++i) {
      const Emb* e = chain[i];
      edge_used[e->edge->edge_index] = true;
      vertex_used[e->from] = true;
      vertex_used[e->edge->to] = true;
      if (i == 0) dfs_to_g[code[0].from] = e->from;
      if (code[i].IsForward()) dfs_to_g[code[i].to] = e->edge->to;
    }
  }
};

struct DfsEdgeCmp {
  bool operator()(const DfsEdge& a, const DfsEdge& b) const {
    return DfsEdgeLess(a, b);
  }
};

class GSpanMiner {
 public:
  GSpanMiner(const GraphDatabase& db, const MinerConfig& config)
      : db_(db), config_(config) {}

  MineResult Run() {
    util::WallTimer timer;
    if (config_.include_single_vertices && config_.min_edges <= 0) {
      ReportSingleVertices();
    }

    // Flatten every database graph to CSR once; all extension loops and
    // embedding chains reference these half-edge arrays.
    csrs_.reserve(db_.size());
    for (size_t gid = 0; gid < db_.size(); ++gid) {
      csrs_.emplace_back(db_.graph(gid));
    }

    // Frequent 1-edge seeds, grouped by (from_label, elabel, to_label)
    // with from_label <= to_label; both orientations are kept as
    // embeddings when the endpoint labels are equal. Root embeddings are
    // allocated before any Project frame marks the arena, so they outlive
    // every rewind.
    std::map<std::tuple<Label, Label, Label>, Projected> roots;
    for (size_t gid = 0; gid < csrs_.size(); ++gid) {
      const CsrGraph& g = csrs_[gid];
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        for (const AdjEntry& adj : g.neighbors(v)) {
          if (g.vertex_label(v) > g.vertex_label(adj.to)) continue;
          roots[{g.vertex_label(v), adj.label, g.vertex_label(adj.to)}]
              .push_back(NewEmb(static_cast<int32_t>(gid), v, &adj, nullptr));
        }
      }
    }

    DfsCode code;
    for (const auto& [key, projected] : roots) {
      if (stopped_) break;
      code.Push({0, 1, std::get<0>(key), std::get<1>(key),
                 std::get<2>(key)});
      Project(code, projected);
      code.Pop();
    }

    result_.seconds = timer.ElapsedSeconds();
    result_.completed = !stopped_;
    result_.embedding_arena_bytes = arena_.bytes_requested();
    return std::move(result_);
  }

 private:
  void ReportSingleVertices() {
    std::map<Label, std::vector<int32_t>> by_label;
    for (size_t gid = 0; gid < db_.size(); ++gid) {
      const graph::Graph& g = db_.graph(gid);
      std::map<Label, bool> seen;
      for (Label l : g.vertex_labels()) {
        if (!seen[l]) {
          seen[l] = true;
          by_label[l].push_back(static_cast<int32_t>(gid));
        }
      }
    }
    for (const auto& [label, gids] : by_label) {
      if (static_cast<int64_t>(gids.size()) < config_.min_support) continue;
      Pattern p;
      p.graph.AddVertex(label);
      p.support = static_cast<int64_t>(gids.size());
      p.supporting = gids;
      Emit(std::move(p));
      if (stopped_) return;
    }
  }

  const Emb* NewEmb(int32_t gid, VertexId from, const AdjEntry* edge,
                    const Emb* prev) {
    Emb* e = arena_.AllocateArray<Emb>(1);
    *e = {gid, from, edge, prev};
    return e;
  }

  static std::vector<int32_t> DistinctGids(const Projected& projected) {
    std::vector<int32_t> gids;
    for (const Emb* e : projected) gids.push_back(e->gid);
    std::sort(gids.begin(), gids.end());
    gids.erase(std::unique(gids.begin(), gids.end()), gids.end());
    return gids;
  }

  void Emit(Pattern p) {
    result_.patterns.push_back(std::move(p));
    if (result_.patterns.size() >= config_.max_patterns) stopped_ = true;
  }

  void Project(DfsCode& code, const Projected& projected) {
    if (stopped_) return;
    std::vector<int32_t> gids = DistinctGids(projected);
    if (static_cast<int64_t>(gids.size()) < config_.min_support) return;
    if (!IsMinimalDfsCode(code)) return;

    ++result_.states_expanded;
    if ((result_.states_expanded & 0x3f) == 0 &&
        budget_timer_.ElapsedSeconds() > config_.budget_seconds) {
      stopped_ = true;
      return;
    }

    if (static_cast<int32_t>(code.size()) >= config_.min_edges) {
      Pattern p;
      p.graph = code.ToGraph();
      p.support = static_cast<int64_t>(gids.size());
      p.supporting = std::move(gids);
      Emit(std::move(p));
      if (stopped_) return;
    }
    if (static_cast<int32_t>(code.size()) >= config_.max_edges) return;

    const std::vector<int> rmpath = code.BuildRmPath();
    const int32_t maxtoc = code[rmpath[0]].to;
    const Label rm_vertex_label = code[rmpath[0]].to_label;
    const Label min_label = code[0].from_label;

    // Child embeddings live in this frame's arena region and are freed by
    // rewinding once all child branches have been explored (chains only
    // point parent-ward, so a rewind never strands a live chain).
    const util::Arena::Mark frame_mark = arena_.Position();
    std::map<DfsEdge, Projected, DfsEdgeCmp> extensions;

    for (const Emb* emb : projected) {
      const CsrGraph& g = csrs_[emb->gid];
      History h(g, code, emb);
      const VertexId rm_g = h.dfs_to_g[maxtoc];

      // Backward extensions off the rightmost vertex, closing onto a
      // rightmost-path vertex (root side first).
      for (int j = static_cast<int>(rmpath.size()) - 1; j >= 1; --j) {
        const DfsEdge& e1 = code[rmpath[j]];
        const VertexId to_g = h.dfs_to_g[e1.from];
        for (const AdjEntry& adj : g.neighbors(rm_g)) {
          if (adj.to != to_g) continue;
          if (h.edge_used[adj.edge_index]) continue;
          if (e1.edge_label < adj.label ||
              (e1.edge_label == adj.label &&
               e1.to_label <= rm_vertex_label)) {
            DfsEdge key{maxtoc, e1.from, rm_vertex_label, adj.label,
                        e1.from_label};
            extensions[key].push_back(NewEmb(emb->gid, rm_g, &adj, emb));
          }
        }
      }

      // Pure forward from the rightmost vertex.
      for (const AdjEntry& adj : g.neighbors(rm_g)) {
        if (h.vertex_used[adj.to]) continue;
        const Label tolabel = g.vertex_label(adj.to);
        if (tolabel < min_label) continue;
        DfsEdge key{maxtoc, maxtoc + 1, rm_vertex_label, adj.label,
                    tolabel};
        extensions[key].push_back(NewEmb(emb->gid, rm_g, &adj, emb));
      }

      // Forward branching off the rightmost path.
      for (size_t j = 0; j < rmpath.size(); ++j) {
        const DfsEdge& e1 = code[rmpath[j]];
        const VertexId from_g = h.dfs_to_g[e1.from];
        for (const AdjEntry& adj : g.neighbors(from_g)) {
          if (h.vertex_used[adj.to]) continue;
          const Label tolabel = g.vertex_label(adj.to);
          if (tolabel < min_label) continue;
          if (e1.edge_label < adj.label ||
              (e1.edge_label == adj.label && e1.to_label <= tolabel)) {
            DfsEdge key{e1.from, maxtoc + 1, e1.from_label, adj.label,
                        tolabel};
            extensions[key].push_back(NewEmb(emb->gid, from_g, &adj, emb));
          }
        }
      }
    }

    for (const auto& [edge, child_projected] : extensions) {
      if (stopped_) break;
      code.Push(edge);
      Project(code, child_projected);
      code.Pop();
    }
    arena_.Rewind(frame_mark);
  }

  const GraphDatabase& db_;
  const MinerConfig config_;
  MineResult result_;
  std::vector<CsrGraph> csrs_;  // one flat adjacency per database graph
  util::Arena arena_;           // embedding-chain storage (task-scoped)
  util::WallTimer budget_timer_;
  bool stopped_ = false;
};

}  // namespace

MineResult MineFrequentGSpan(const GraphDatabase& db,
                             const MinerConfig& config) {
  GS_CHECK_GE(config.min_support, 1);
  GS_TRACE_SPAN_NAMED(span, "mine/fsm/gspan");
  GSpanMiner miner(db, config);
  MineResult result = miner.Run();
  // Candidate totals come straight out of the single-threaded search,
  // so they are deterministic work counters (DESIGN.md §12).
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const candidates =
      registry.GetCounter("gspan/candidates");
  static obs::Counter* const patterns =
      registry.GetCounter("gspan/patterns");
  static obs::Counter* const arena_bytes =
      registry.GetCounter("gspan/embeddings_arena_bytes");
  candidates->Add(result.states_expanded);
  patterns->Add(result.patterns.size());
  arena_bytes->Add(result.embedding_arena_bytes);
  span.AddWork(result.states_expanded);
  return result;
}

}  // namespace graphsig::fsm
