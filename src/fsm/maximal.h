#ifndef GRAPHSIG_FSM_MAXIMAL_H_
#define GRAPHSIG_FSM_MAXIMAL_H_

#include <vector>

#include "fsm/miner.h"

namespace graphsig::fsm {

// Keeps only the maximal patterns of a frequent-pattern set: those not
// subgraph-isomorphic to any other pattern in the set. Supports are
// preserved. Quadratic in the set size (fine at GraphSig's high
// per-set thresholds, where sets are small).
std::vector<Pattern> FilterMaximal(std::vector<Pattern> patterns);

// Keeps only the closed patterns: those with no super-pattern in the set
// of EQUAL support (CloseGraph's notion, the graph-space analogue of
// FVMine's closed vectors). Lossless: every frequent pattern's support
// is recoverable from the closed set.
std::vector<Pattern> FilterClosed(std::vector<Pattern> patterns);

// Convenience used by GraphSig's last stage (Algorithm 2, line 13):
// complete gSpan mining followed by the maximality filter.
MineResult MineMaximalGSpan(const graph::GraphDatabase& db,
                            const MinerConfig& config);

// Complete gSpan mining followed by the closedness filter.
MineResult MineClosedGSpan(const graph::GraphDatabase& db,
                           const MinerConfig& config);

}  // namespace graphsig::fsm

#endif  // GRAPHSIG_FSM_MAXIMAL_H_
