#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "fsm/dfs_code.h"
#include "fsm/miner.h"
#include "graph/isomorphism.h"
#include "util/check.h"
#include "util/timer.h"

namespace graphsig::fsm {
namespace {

using graph::Graph;
using graph::GraphDatabase;
using graph::Label;
using graph::VertexId;

// Cap on embeddings enumerated per (pattern, graph) during candidate
// generation. Extensions are structural, so a handful of embeddings per
// occurrence already exposes them; the cap guards pathological symmetry.
constexpr uint64_t kEmbeddingCap = 256;

struct Candidate {
  Graph graph;
  std::vector<int32_t> tids;  // superset of possible supporting graphs
};

// Intersection of two ascending id lists.
std::vector<int32_t> Intersect(const std::vector<int32_t>& a,
                               const std::vector<int32_t>& b) {
  std::vector<int32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// All connected k-edge sub-patterns reachable by deleting one edge of a
// (k+1)-edge pattern; used for the apriori downward-closure check.
std::vector<Graph> OneEdgeDeletions(const Graph& g) {
  std::vector<Graph> out;
  for (int32_t drop = 0; drop < g.num_edges(); ++drop) {
    Graph reduced;
    reduced.set_id(g.id());
    // Copy all vertices, then all edges but `drop`; strip any vertex that
    // becomes isolated (a deleted leaf edge leaves one).
    std::vector<int32_t> degree(g.num_vertices(), 0);
    for (int32_t e = 0; e < g.num_edges(); ++e) {
      if (e == drop) continue;
      ++degree[g.edge(e).u];
      ++degree[g.edge(e).v];
    }
    std::vector<VertexId> keep;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (degree[v] > 0) keep.push_back(v);
    }
    if (keep.empty()) continue;  // the 1-edge pattern has no 0-edge parent
    std::vector<VertexId> map(g.num_vertices(), -1);
    for (size_t i = 0; i < keep.size(); ++i) {
      map[keep[i]] = static_cast<VertexId>(i);
      reduced.AddVertex(g.vertex_label(keep[i]));
    }
    for (int32_t e = 0; e < g.num_edges(); ++e) {
      if (e == drop) continue;
      const graph::EdgeRecord& rec = g.edge(e);
      reduced.AddEdge(map[rec.u], map[rec.v], rec.label);
    }
    if (!reduced.IsConnected()) continue;  // not a valid apriori parent
    out.push_back(std::move(reduced));
  }
  return out;
}

}  // namespace

MineResult MineFrequentApriori(const GraphDatabase& db,
                               const MinerConfig& config) {
  GS_CHECK_GE(config.min_support, 1);
  util::WallTimer timer;
  MineResult result;
  bool stopped = false;

  auto over_budget = [&]() {
    return timer.ElapsedSeconds() > config.budget_seconds;
  };
  auto emit = [&](const Pattern& p) {
    if (p.graph.num_edges() >= config.min_edges) {
      result.patterns.push_back(p);
      if (result.patterns.size() >= config.max_patterns) stopped = true;
    }
  };

  if (config.include_single_vertices && config.min_edges <= 0) {
    std::map<Label, std::vector<int32_t>> by_label;
    for (size_t gid = 0; gid < db.size() && !stopped; ++gid) {
      std::set<Label> seen(db.graph(gid).vertex_labels().begin(),
                           db.graph(gid).vertex_labels().end());
      for (Label l : seen) by_label[l].push_back(static_cast<int32_t>(gid));
    }
    for (const auto& [label, gids] : by_label) {
      if (static_cast<int64_t>(gids.size()) < config.min_support) continue;
      Pattern p;
      p.graph.AddVertex(label);
      p.support = static_cast<int64_t>(gids.size());
      p.supporting = gids;
      emit(p);
      if (stopped) break;
    }
  }

  // --- Level 1: frequent single-edge patterns.
  std::map<std::tuple<Label, Label, Label>, std::vector<int32_t>> triples;
  for (size_t gid = 0; gid < db.size(); ++gid) {
    const Graph& g = db.graph(gid);
    std::set<std::tuple<Label, Label, Label>> seen;
    for (const graph::EdgeRecord& e : g.edges()) {
      Label a = g.vertex_label(e.u);
      Label b = g.vertex_label(e.v);
      if (a > b) std::swap(a, b);
      seen.insert({a, e.label, b});
    }
    for (const auto& t : seen) {
      triples[t].push_back(static_cast<int32_t>(gid));
    }
  }

  std::map<std::string, Pattern> current;  // canonical code -> pattern
  for (const auto& [t, gids] : triples) {
    ++result.states_expanded;
    if (static_cast<int64_t>(gids.size()) < config.min_support) continue;
    Pattern p;
    p.graph.AddVertex(std::get<0>(t));
    p.graph.AddVertex(std::get<2>(t));
    p.graph.AddEdge(0, 1, std::get<1>(t));
    p.support = static_cast<int64_t>(gids.size());
    p.supporting = gids;
    if (!stopped) emit(p);
    current.emplace(CanonicalCode(p.graph), std::move(p));
  }

  // --- Level-wise growth.
  int32_t level = 1;
  while (!current.empty() && level < config.max_edges && !stopped &&
         !over_budget()) {
    // Candidate generation: grow every frequent pattern by one edge using
    // its embeddings, dedupe by canonical code, tighten TID lists by
    // intersecting across generating parents.
    std::map<std::string, Candidate> candidates;
    for (const auto& [key, p] : current) {
      if (stopped || over_budget()) break;
      size_t generators = 0;
      for (int32_t gid : p.supporting) {
        if (generators++ >= config.apriori_generation_sample) break;
        const Graph& host = db.graph(gid);
        auto embeddings =
            graph::FindAllEmbeddings(p.graph, host, kEmbeddingCap);
        for (const auto& emb : embeddings) {
          std::vector<VertexId> inverse(host.num_vertices(), -1);
          for (size_t pv = 0; pv < emb.size(); ++pv) {
            inverse[emb[pv]] = static_cast<VertexId>(pv);
          }
          for (const graph::EdgeRecord& e : host.edges()) {
            VertexId pu = inverse[e.u];
            VertexId pv = inverse[e.v];
            Graph grown = p.graph;
            if (pu >= 0 && pv >= 0) {
              if (grown.HasEdge(pu, pv)) continue;  // already in pattern
              grown.AddEdge(pu, pv, e.label);
            } else if (pu >= 0) {
              VertexId nv = grown.AddVertex(host.vertex_label(e.v));
              grown.AddEdge(pu, nv, e.label);
            } else if (pv >= 0) {
              VertexId nv = grown.AddVertex(host.vertex_label(e.u));
              grown.AddEdge(pv, nv, e.label);
            } else {
              continue;  // edge does not touch the embedding
            }
            std::string ckey = CanonicalCode(grown);
            auto it = candidates.find(ckey);
            if (it == candidates.end()) {
              candidates.emplace(ckey,
                                 Candidate{std::move(grown), p.supporting});
            } else {
              it->second.tids = Intersect(it->second.tids, p.supporting);
            }
          }
        }
        if (over_budget()) break;
      }
    }

    // Downward-closure pruning: every connected one-edge-deleted
    // sub-pattern must itself be frequent at the previous level.
    std::map<std::string, Pattern> next;
    for (auto& [ckey, cand] : candidates) {
      if (stopped || over_budget()) break;
      ++result.states_expanded;
      bool closed_downward = true;
      for (const Graph& parent : OneEdgeDeletions(cand.graph)) {
        if (current.find(CanonicalCode(parent)) == current.end()) {
          closed_downward = false;
          break;
        }
      }
      if (!closed_downward) continue;

      // Support counting against the TID list.
      Pattern p;
      p.graph = std::move(cand.graph);
      for (int32_t gid : cand.tids) {
        if (graph::IsSubgraphIsomorphic(p.graph, db.graph(gid))) {
          p.supporting.push_back(gid);
        }
      }
      p.support = static_cast<int64_t>(p.supporting.size());
      if (p.support < config.min_support) continue;
      emit(p);
      next.emplace(ckey, std::move(p));
    }
    current = std::move(next);
    ++level;
  }

  result.completed = !stopped && !over_budget();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace graphsig::fsm
