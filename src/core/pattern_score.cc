#include "core/pattern_score.h"

#include <map>

#include "features/packed_vector_set.h"
#include "features/rwr.h"
#include "graph/isomorphism.h"
#include "stats/pvalue_model.h"
#include "util/check.h"

namespace graphsig::core {

PatternScore ScorePattern(const graph::GraphDatabase& db,
                          const graph::Graph& pattern,
                          const GraphSigConfig& config) {
  GS_CHECK_GT(pattern.num_vertices(), 0);
  PatternScore score;
  if (db.empty()) return score;

  // Anchor: the pattern vertex whose label is rarest in the database.
  auto label_counts = db.VertexLabelCounts();
  graph::VertexId anchor = 0;
  int64_t rarest = INT64_MAX;
  for (graph::VertexId v = 0; v < pattern.num_vertices(); ++v) {
    auto it = label_counts.find(pattern.vertex_label(v));
    const int64_t count = it == label_counts.end() ? 0 : it->second;
    if (count < rarest) {
      rarest = count;
      anchor = v;
    }
  }
  const graph::Label anchor_label = pattern.vertex_label(anchor);

  // Locate occurrences; collect the anchor's image in one embedding per
  // graph (the region the pattern describes there).
  std::vector<std::pair<int32_t, graph::VertexId>> anchors;
  for (size_t gid = 0; gid < db.size(); ++gid) {
    auto embedding = graph::FindEmbedding(pattern, db.graph(gid));
    if (!embedding.has_value()) continue;
    ++score.frequency;
    anchors.push_back({static_cast<int32_t>(gid), (*embedding)[anchor]});
  }
  if (anchors.empty()) return score;
  score.found = true;

  // Featurize the whole anchor-label group (the priors' population).
  features::FeatureSpace space = features::FeatureSpace::ForChemicalDatabase(
      db, config.top_k_atoms);
  auto vectors =
      features::DatabaseToVectors(db, space, config.rwr, config.num_threads);
  features::PackedVectorSet group(space.size());
  std::map<std::pair<int32_t, graph::VertexId>, int32_t> by_node;
  for (const features::NodeVector& nv : vectors) {
    if (nv.node_label != anchor_label) continue;
    by_node[{nv.graph_index, nv.node}] = group.Add(nv.values);
  }
  GS_CHECK(!group.empty());

  // Floor of the occurrence vectors = the pattern's feature-space
  // description; its support is the number of dominating group vectors.
  std::vector<int32_t> occurrence_rows;
  occurrence_rows.reserve(anchors.size());
  for (const auto& key : anchors) {
    auto it = by_node.find(key);
    GS_CHECK(it != by_node.end());
    occurrence_rows.push_back(it->second);
  }
  features::PackedOpStats ops;
  std::vector<uint64_t> floor(group.words_per_vector());
  group.FloorInto(occurrence_rows, floor.data(), &ops);
  int64_t support = 0;
  for (size_t i = 0; i < group.size(); ++i) {
    if (group.Dominates(floor.data(), static_cast<int32_t>(i), &ops)) {
      ++support;
    }
  }
  features::FlushPackedOpStats(ops);
  stats::FeaturePriors priors(group, config.rwr.bins);
  score.vector_support = support;
  score.p_value =
      priors.PValue(features::PackedSlice{floor.data(), group.width()},
                    support);
  return score;
}

}  // namespace graphsig::core
