#ifndef GRAPHSIG_CORE_REPORT_H_
#define GRAPHSIG_CORE_REPORT_H_

#include <ostream>

#include "core/graphsig.h"

namespace graphsig::core {

// Serializers for mining results, so downstream pipelines can consume
// GraphSig output without linking the library.

// Human-readable report: stats, profile, then one block per subgraph
// (p-value, supports, SMILES, edge list with atom/bond symbols).
void WriteReport(const GraphSigResult& result, size_t db_size,
                 std::ostream& os, size_t max_patterns = SIZE_MAX);

// Machine-readable CSV: one row per significant subgraph with columns
// rank,p_value,anchor,vector_support,set_support,set_size,db_frequency,
// edges,vertices,smiles.
void WriteCsv(const GraphSigResult& result, std::ostream& os);

}  // namespace graphsig::core

#endif  // GRAPHSIG_CORE_REPORT_H_
