#ifndef GRAPHSIG_CORE_GRAPHSIG_H_
#define GRAPHSIG_CORE_GRAPHSIG_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "features/feature_space.h"
#include "features/rwr.h"
#include "fvmine/fvmine.h"
#include "graph/graph_database.h"

namespace graphsig::core {

// Configuration of the end-to-end GraphSig pipeline (Algorithm 2).
// Defaults follow the paper's Table IV.
struct GraphSigConfig {
  features::RwrConfig rwr;  // alpha = 0.25, 10 bins

  // Feature selection: top-k atoms whose pairwise edge types become
  // features (Section II-B).
  int top_k_atoms = 5;

  // FVMine thresholds (Table IV): maxPvalue = 0.1; minFreq = 0.1%.
  // The frequency threshold is relative to the anchor-label group D_a
  // each FVMine call runs on — this is what lets GraphSig surface
  // patterns around rare atoms (Sb/Bi, Fig. 15) whose global frequency
  // is far below any workable database-wide threshold.
  double max_pvalue = 0.1;
  double min_freq_percent = 0.1;
  // Absolute floor under the relative threshold (tiny groups would
  // otherwise mine "patterns" supported by a single region).
  int64_t min_support_floor = 3;

  // Region extraction: CutGraph radius (Table IV: 8) and the relative
  // frequency threshold for maximal FSM on each region set (Table IV:
  // fsgFreq = 80%).
  int cutoff_radius = 8;
  double fsg_freq_percent = 80.0;

  // Engineering guards. A region set needs at least `min_set_size`
  // regions to be mined (a high relative threshold over one graph would
  // degenerate to support 1 and enumerate everything); `fsm_max_edges`
  // bounds pattern size inside region mining.
  size_t min_set_size = 3;
  int32_t fsm_max_edges = 25;
  size_t fsm_max_patterns = 100000;
  // Large region sets are evenly subsampled to this many regions before
  // maximal FSM; the 80% relative threshold is computed on the sample.
  // A pattern present in >= 80% of the set is present in ~80% of any
  // even sample, so this bounds per-set mining cost without changing
  // which cores surface.
  size_t max_regions_per_set = 128;

  // Caps forwarded to FVMine.
  size_t fvmine_max_results = std::numeric_limits<size_t>::max();
  double fvmine_budget_seconds = std::numeric_limits<double>::infinity();
  bool use_ceiling_prune = true;

  // Family-wise error control (stream/tarone.h): > 0 runs FVMine in
  // Tarone testability mode at this alpha and keeps only vectors whose
  // p-value clears the solved threshold delta* <= alpha. 0 (default)
  // preserves the paper's uncorrected per-vector test — and the
  // pre-existing counter baseline.
  double tarone_alpha = 0.0;

  // Worker threads for every pipeline phase: RWR featurization,
  // per-label-group FVMine, region cutting, and per-vector graph-space
  // mining (1 = serial). Output is bit-identical for any value — each
  // phase merges its per-task results in a fixed order.
  int num_threads = 1;

  // Compute each output pattern's frequency over the full database
  // (needed by the Fig. 16 analysis; one subgraph-iso scan per pattern).
  bool compute_db_frequency = true;
};

// One mined significant subgraph with the evidence trail back through
// the pipeline.
struct SignificantSubgraph {
  graph::Graph subgraph;
  // Feature-space evidence: the closed significant sub-feature vector
  // that selected this region set.
  features::FeatureVec vector;
  double vector_pvalue = 1.0;
  int64_t vector_support = 0;
  graph::Label anchor_label = -1;  // the D_a group it came from
  // Graph-space evidence.
  int64_t set_size = 0;     // regions mined
  int64_t set_support = 0;  // regions containing the pattern
  int64_t db_frequency = -1;  // graphs of the full DB containing it
};

// Wall-time share of each pipeline stage (the Fig. 10 profile).
struct GraphSigProfile {
  double rwr_seconds = 0.0;       // featurization (RWR + discretize)
  double feature_seconds = 0.0;   // priors + FVMine + region location
  double fsm_seconds = 0.0;       // cutting + maximal frequent mining
  double total_seconds = 0.0;
};

struct GraphSigStats {
  int64_t num_vectors = 0;             // |D|
  int64_t num_groups = 0;              // distinct anchor labels
  int64_t num_significant_vectors = 0;  // FVMine outputs across groups
  int64_t num_sets_mined = 0;          // region sets that reached FSM
  int64_t num_sets_filtered = 0;       // false-positive sets (no pattern)
  // Region-cut cache effectiveness: cuts requested across all region
  // sets vs distinct (graph, node) cuts actually computed. Their ratio
  // is the dedup factor the cache buys.
  int64_t num_region_requests = 0;
  int64_t num_unique_regions = 0;
  // Tarone mode only (tarone_alpha > 0): the solved family-wise
  // threshold delta* = alpha / k_T, the family size N (candidate states
  // across all groups), and how many candidates delta* filtered out.
  double tarone_delta_star = 0.0;
  int64_t tarone_family_size = 0;
  int64_t tarone_filtered_vectors = 0;
};

struct GraphSigResult {
  std::vector<SignificantSubgraph> subgraphs;
  GraphSigProfile profile;
  GraphSigStats stats;
  features::FeatureSpace feature_space;
};

// The GraphSig miner. Stateless between calls; one instance can mine
// many databases.
class GraphSig {
 public:
  explicit GraphSig(GraphSigConfig config) : config_(config) {}

  // Runs Algorithm 2 over `db` and returns the significant subgraphs,
  // deduplicated by canonical form (keeping the lowest vector p-value).
  GraphSigResult Mine(const graph::GraphDatabase& db) const;

  // Runs only the feature-space half (RWR + grouping + FVMine): the
  // significant sub-feature vectors per anchor label. This is what the
  // classifier trains on (Section V). If `space` is non-null it is used
  // instead of deriving one from `db` — the classifier passes a shared
  // space so positive/negative vectors and queries are comparable.
  std::vector<std::pair<graph::Label, fvmine::SignificantVector>>
  MineSignificantVectors(const graph::GraphDatabase& db,
                         GraphSigProfile* profile = nullptr,
                         const features::FeatureSpace* space = nullptr) const;

  const GraphSigConfig& config() const { return config_; }

 private:
  GraphSigConfig config_;
};

}  // namespace graphsig::core

#endif  // GRAPHSIG_CORE_GRAPHSIG_H_
