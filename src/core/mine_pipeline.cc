#include "core/mine_pipeline.h"

#include <algorithm>
#include <cmath>

#include "features/packed_vector_set.h"
#include "fsm/dfs_code.h"
#include "fsm/maximal.h"
#include "fsm/miner.h"
#include "graph/isomorphism.h"
#include "obs/metrics.h"
#include "stats/pvalue_model.h"
#include "util/parallel.h"

namespace graphsig::core::pipeline {

using features::NodeVector;
using graph::GraphDatabase;
using graph::Label;

std::vector<std::pair<Label, std::vector<int32_t>>> GroupByAnchorLabel(
    const std::vector<NodeVector>& node_vectors) {
  std::map<Label, std::vector<int32_t>> groups;
  for (size_t i = 0; i < node_vectors.size(); ++i) {
    groups[node_vectors[i].node_label].push_back(static_cast<int32_t>(i));
  }
  std::vector<std::pair<Label, std::vector<int32_t>>> ordered;
  ordered.reserve(groups.size());
  for (auto& [label, members] : groups) {
    ordered.emplace_back(label, std::move(members));
  }
  return ordered;
}

GroupMineOutput MineLabelGroup(const GraphSigConfig& config,
                               const std::vector<NodeVector>& node_vectors,
                               const std::vector<int32_t>& members) {
  GroupMineOutput out;
  // Group-relative frequency threshold (see GraphSigConfig).
  const int64_t min_support = std::max<int64_t>(
      config.min_support_floor,
      static_cast<int64_t>(
          std::ceil(config.min_freq_percent / 100.0 * members.size())));
  if (static_cast<int64_t>(members.size()) < min_support) return out;
  features::PackedVectorSet population(
      node_vectors[members[0]].values.size());
  population.Reserve(members.size());
  for (int32_t idx : members) {
    population.Add(node_vectors[idx].values);
  }
  stats::FeaturePriors priors(population, config.rwr.bins);
  fvmine::FvMineConfig fv_config;
  fv_config.min_support = min_support;
  fv_config.max_pvalue = config.max_pvalue;
  fv_config.max_results = config.fvmine_max_results;
  fv_config.budget_seconds = config.fvmine_budget_seconds;
  fv_config.use_ceiling_prune = config.use_ceiling_prune;
  fv_config.tarone_alpha = config.tarone_alpha;
  fvmine::FvMineResult mined = fvmine::FvMine(population, priors, fv_config);
  out.vectors.reserve(mined.vectors.size());
  for (fvmine::SignificantVector& sv : mined.vectors) {
    for (int32_t& idx : sv.supporting) idx = members[idx];
    out.vectors.push_back(std::move(sv));
  }
  out.psis = std::move(mined.candidate_psis);
  return out;
}

int64_t RegionCutKey(int32_t graph_index, graph::VertexId node) {
  return (static_cast<int64_t>(graph_index) << 32) |
         static_cast<int64_t>(static_cast<uint32_t>(node));
}

RegionPlan PlanRegionTasks(
    const GraphSigConfig& config,
    const std::vector<std::pair<Label, fvmine::SignificantVector>>&
        significant,
    const std::vector<NodeVector>& node_vectors) {
  RegionPlan plan;
  for (size_t v = 0; v < significant.size(); ++v) {
    const auto& [label, sv] = significant[v];
    if (sv.supporting.size() < config.min_set_size) continue;
    RegionTask task;
    task.label = label;
    task.sv_index = static_cast<int32_t>(v);
    // Evenly subsample oversized sets (see max_regions_per_set).
    if (sv.supporting.size() > config.max_regions_per_set) {
      task.chosen.reserve(config.max_regions_per_set);
      const double stride = static_cast<double>(sv.supporting.size()) /
                            static_cast<double>(config.max_regions_per_set);
      for (size_t k = 0; k < config.max_regions_per_set; ++k) {
        task.chosen.push_back(
            sv.supporting[static_cast<size_t>(k * stride)]);
      }
    } else {
      task.chosen = sv.supporting;
    }
    for (int32_t vector_index : task.chosen) {
      const NodeVector& nv = node_vectors[vector_index];
      if (plan.cut_slot
              .emplace(RegionCutKey(nv.graph_index, nv.node),
                       static_cast<int32_t>(plan.cut_owner.size()))
              .second) {
        plan.cut_owner.push_back(vector_index);
      }
    }
    plan.num_region_requests += static_cast<int64_t>(task.chosen.size());
    plan.tasks.push_back(std::move(task));
  }
  plan.num_unique_regions = static_cast<int64_t>(plan.cut_owner.size());
  // Cache accounting: every request beyond the first for a (graph, node)
  // cut is a hit. Both totals fall out of the serial pass 1, so they are
  // deterministic work counters (DESIGN.md §12).
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const cache_hits =
      registry.GetCounter("mine/region_cache_hits");
  static obs::Counter* const cache_misses =
      registry.GetCounter("mine/region_cache_misses");
  cache_hits->Add(static_cast<uint64_t>(plan.num_region_requests -
                                        plan.num_unique_regions));
  cache_misses->Add(static_cast<uint64_t>(plan.num_unique_regions));
  return plan;
}

graph::Graph CutRegion(const graph::Graph& host, int32_t graph_index,
                       graph::VertexId node, int cutoff_radius) {
  graph::Graph cut =
      host.InducedSubgraph(host.VerticesWithinRadius(node, cutoff_radius));
  cut.set_id(graph_index);
  return cut;
}

RegionTaskOutput MineRegionTask(const GraphSigConfig& config, Label label,
                                const fvmine::SignificantVector& sv,
                                const GraphDatabase& regions) {
  RegionTaskOutput output;
  fsm::MinerConfig miner_config;
  miner_config.min_support = std::max<int64_t>(
      2,
      fsm::SupportFromPercent(config.fsg_freq_percent, regions.size()));
  miner_config.max_edges = config.fsm_max_edges;
  miner_config.max_patterns = config.fsm_max_patterns;
  fsm::MineResult mined = fsm::MineMaximalGSpan(regions, miner_config);
  if (mined.patterns.empty()) {
    // False positive: similar vectors, no common structure (the line-13
    // pruning the paper describes).
    output.filtered = true;
    return output;
  }
  for (const fsm::Pattern& pattern : mined.patterns) {
    if (pattern.graph.num_edges() < 1) continue;
    SignificantSubgraph candidate;
    candidate.subgraph = pattern.graph;
    candidate.vector = sv.vector;
    candidate.vector_pvalue = sv.p_value;
    candidate.vector_support = sv.support;
    candidate.anchor_label = label;
    candidate.set_size = static_cast<int64_t>(regions.size());
    candidate.set_support = pattern.support;
    output.dedup.emplace(fsm::CanonicalCode(pattern.graph),
                         std::move(candidate));
  }
  return output;
}

void MergeRegionOutput(RegionTaskOutput&& output,
                       std::map<std::string, SignificantSubgraph>* dedup,
                       GraphSigStats* stats) {
  ++stats->num_sets_mined;
  if (output.filtered) ++stats->num_sets_filtered;
  for (auto& [key, candidate] : output.dedup) {
    auto it = dedup->find(key);
    if (it == dedup->end()) {
      dedup->emplace(key, std::move(candidate));
    } else if (candidate.vector_pvalue < it->second.vector_pvalue ||
               (candidate.vector_pvalue == it->second.vector_pvalue &&
                candidate.set_support > it->second.set_support)) {
      it->second = std::move(candidate);
    }
  }
}

void ComputeDbFrequencies(const GraphSigConfig& config,
                          const GraphDatabase& db,
                          std::vector<SignificantSubgraph>* subgraphs) {
  if (!config.compute_db_frequency) return;
  util::ParallelFor(config.num_threads, subgraphs->size(), [&](size_t i) {
    SignificantSubgraph& sg = (*subgraphs)[i];
    int64_t frequency = 0;
    for (const graph::Graph& g : db.graphs()) {
      if (graph::IsSubgraphIsomorphic(sg.subgraph, g)) ++frequency;
    }
    sg.db_frequency = frequency;
  });
}

void SortBySignificance(std::vector<SignificantSubgraph>* subgraphs) {
  std::sort(subgraphs->begin(), subgraphs->end(),
            [](const SignificantSubgraph& a, const SignificantSubgraph& b) {
              if (a.vector_pvalue != b.vector_pvalue) {
                return a.vector_pvalue < b.vector_pvalue;
              }
              return a.subgraph.num_edges() > b.subgraph.num_edges();
            });
}

}  // namespace graphsig::core::pipeline
