#include "core/graphsig.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <unordered_map>

#include "features/packed_vector_set.h"
#include "fsm/dfs_code.h"
#include "fsm/maximal.h"
#include "fsm/miner.h"
#include "graph/isomorphism.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/pvalue_model.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace graphsig::core {
namespace {

using features::NodeVector;
using graph::GraphDatabase;
using graph::Label;

struct FeaturePhaseOutput {
  features::FeatureSpace feature_space;
  std::vector<NodeVector> node_vectors;
  // Significant closed sub-feature vectors per anchor label; supporting
  // lists are re-based to indices into `node_vectors`.
  std::vector<std::pair<Label, fvmine::SignificantVector>> significant;
  double rwr_seconds = 0.0;
  double feature_seconds = 0.0;
  GraphSigStats stats;
};

FeaturePhaseOutput RunFeaturePhase(const GraphSigConfig& config,
                                   const GraphDatabase& db,
                                   const features::FeatureSpace* space) {
  FeaturePhaseOutput out;
  util::WallTimer timer;

  // Feature selection + RWR featurization (Algorithm 2, lines 3-4).
  out.feature_space =
      space != nullptr
          ? *space
          : features::FeatureSpace::ForChemicalDatabase(db,
                                                        config.top_k_atoms);
  out.node_vectors = features::DatabaseToVectors(
      db, out.feature_space, config.rwr, config.num_threads);
  out.rwr_seconds = timer.ElapsedSeconds();
  out.stats.num_vectors = static_cast<int64_t>(out.node_vectors.size());
  if (out.node_vectors.empty()) return out;

  timer.Restart();
  GS_TRACE_SPAN_NAMED(feature_span, "mine/feature");
  // Group by anchor label (line 6) and run FVMine per group (line 7).
  std::map<Label, std::vector<int32_t>> groups;
  for (size_t i = 0; i < out.node_vectors.size(); ++i) {
    groups[out.node_vectors[i].node_label].push_back(
        static_cast<int32_t>(i));
  }
  out.stats.num_groups = static_cast<int64_t>(groups.size());

  // Groups are independent minings, so they fan out over the pool; each
  // writes its own slot and the slots concatenate in label order below,
  // making the output identical for any thread count.
  std::vector<const std::vector<int32_t>*> group_members;
  std::vector<Label> group_labels;
  group_members.reserve(groups.size());
  group_labels.reserve(groups.size());
  for (const auto& [label, member_indices] : groups) {
    group_labels.push_back(label);
    group_members.push_back(&member_indices);
  }
  std::vector<std::vector<fvmine::SignificantVector>> per_group(
      groups.size());
  util::ParallelFor(config.num_threads, groups.size(), [&](size_t g) {
    const std::vector<int32_t>& member_indices = *group_members[g];
    // Group-relative frequency threshold (see GraphSigConfig).
    const int64_t min_support = std::max<int64_t>(
        config.min_support_floor,
        static_cast<int64_t>(std::ceil(config.min_freq_percent / 100.0 *
                                       member_indices.size())));
    if (static_cast<int64_t>(member_indices.size()) < min_support) return;
    features::PackedVectorSet population(
        out.node_vectors[member_indices[0]].values.size());
    population.Reserve(member_indices.size());
    for (int32_t idx : member_indices) {
      population.Add(out.node_vectors[idx].values);
    }
    stats::FeaturePriors priors(population, config.rwr.bins);
    fvmine::FvMineConfig fv_config;
    fv_config.min_support = min_support;
    fv_config.max_pvalue = config.max_pvalue;
    fv_config.max_results = config.fvmine_max_results;
    fv_config.budget_seconds = config.fvmine_budget_seconds;
    fv_config.use_ceiling_prune = config.use_ceiling_prune;
    fvmine::FvMineResult mined = fvmine::FvMine(population, priors, fv_config);
    for (fvmine::SignificantVector& sv : mined.vectors) {
      for (int32_t& idx : sv.supporting) idx = member_indices[idx];
      per_group[g].push_back(std::move(sv));
    }
  });
  for (size_t g = 0; g < per_group.size(); ++g) {
    for (fvmine::SignificantVector& sv : per_group[g]) {
      out.significant.emplace_back(group_labels[g], std::move(sv));
    }
  }
  out.stats.num_significant_vectors =
      static_cast<int64_t>(out.significant.size());
  feature_span.AddWork(out.significant.size());
  out.feature_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace

std::vector<std::pair<Label, fvmine::SignificantVector>>
GraphSig::MineSignificantVectors(const GraphDatabase& db,
                                 GraphSigProfile* profile,
                                 const features::FeatureSpace* space) const {
  FeaturePhaseOutput phase = RunFeaturePhase(config_, db, space);
  if (profile != nullptr) {
    profile->rwr_seconds = phase.rwr_seconds;
    profile->feature_seconds = phase.feature_seconds;
    profile->fsm_seconds = 0.0;
    profile->total_seconds = phase.rwr_seconds + phase.feature_seconds;
  }
  return std::move(phase.significant);
}

GraphSigResult GraphSig::Mine(const GraphDatabase& db) const {
  GS_TRACE_SPAN("mine");
  GraphSigResult result;
  util::WallTimer total_timer;

  FeaturePhaseOutput phase = RunFeaturePhase(config_, db, nullptr);
  result.feature_space = phase.feature_space;
  result.stats = phase.stats;
  result.profile.rwr_seconds = phase.rwr_seconds;
  result.profile.feature_seconds = phase.feature_seconds;

  util::WallTimer fsm_timer;
  GS_TRACE_SPAN_NAMED(fsm_span, "mine/fsm");
  // Graph-space phase (Algorithm 2, lines 8-13): each significant vector
  // selects the regions it describes; cut them out and mine maximally at
  // a high relative threshold. The per-vector minings are independent,
  // so each runs as a pool task that dedups into its own local map; the
  // local maps merge at the barrier in significant-vector order — the
  // order the old serial loop used — so output is identical for any
  // thread count.

  // Pass 1 (serial, cheap): pick each vector's region sample and collect
  // the distinct (graph, node) cuts the samples need. Nearby significant
  // vectors keep re-selecting the same nodes, so the same BFS + induced
  // subgraph would otherwise be recomputed once per selecting vector;
  // the cache computes each cut exactly once (radius is fixed per run,
  // so (graph_index, node) identifies a cut).
  struct VectorTask {
    Label label;
    const fvmine::SignificantVector* sv;
    std::vector<int32_t> chosen;  // node-vector indices after subsampling
  };
  std::vector<VectorTask> tasks;
  std::unordered_map<int64_t, int32_t> cut_slot;  // cut key -> cache slot
  std::vector<int32_t> cut_owner;  // slot -> node-vector index to cut at
  const auto cut_key = [](int32_t graph_index, graph::VertexId node) {
    return (static_cast<int64_t>(graph_index) << 32) |
           static_cast<int64_t>(static_cast<uint32_t>(node));
  };
  for (const auto& [label, sv] : phase.significant) {
    if (sv.supporting.size() < config_.min_set_size) continue;
    VectorTask task;
    task.label = label;
    task.sv = &sv;
    // Evenly subsample oversized sets (see max_regions_per_set).
    if (sv.supporting.size() > config_.max_regions_per_set) {
      task.chosen.reserve(config_.max_regions_per_set);
      const double stride = static_cast<double>(sv.supporting.size()) /
                            static_cast<double>(config_.max_regions_per_set);
      for (size_t k = 0; k < config_.max_regions_per_set; ++k) {
        task.chosen.push_back(sv.supporting[static_cast<size_t>(k * stride)]);
      }
    } else {
      task.chosen = sv.supporting;
    }
    for (int32_t vector_index : task.chosen) {
      const NodeVector& nv = phase.node_vectors[vector_index];
      if (cut_slot
              .emplace(cut_key(nv.graph_index, nv.node),
                       static_cast<int32_t>(cut_owner.size()))
              .second) {
        cut_owner.push_back(vector_index);
      }
    }
    result.stats.num_region_requests +=
        static_cast<int64_t>(task.chosen.size());
    tasks.push_back(std::move(task));
  }
  result.stats.num_unique_regions = static_cast<int64_t>(cut_owner.size());
  // Cache accounting: every request beyond the first for a (graph, node)
  // cut is a hit. Both totals fall out of the serial pass 1, so they are
  // deterministic work counters (DESIGN.md §12).
  {
    auto& registry = obs::MetricsRegistry::Global();
    static obs::Counter* const cache_hits =
        registry.GetCounter("mine/region_cache_hits");
    static obs::Counter* const cache_misses =
        registry.GetCounter("mine/region_cache_misses");
    cache_hits->Add(static_cast<uint64_t>(result.stats.num_region_requests -
                                          result.stats.num_unique_regions));
    cache_misses->Add(
        static_cast<uint64_t>(result.stats.num_unique_regions));
  }

  // Pass 2: compute each distinct cut once, in parallel (each slot is
  // written by exactly one task; the cut is a pure function of its key).
  std::vector<graph::Graph> cuts(cut_owner.size());
  util::ParallelFor(config_.num_threads, cut_owner.size(), [&](size_t i) {
    const NodeVector& nv = phase.node_vectors[cut_owner[i]];
    const graph::Graph& host = db.graph(nv.graph_index);
    graph::Graph cut = host.InducedSubgraph(
        host.VerticesWithinRadius(nv.node, config_.cutoff_radius));
    cut.set_id(nv.graph_index);
    cuts[i] = std::move(cut);
  });

  // Pass 3: mine every region set as a pool task. `cut_slot` and `cuts`
  // are read-only from here on.
  struct TaskOutput {
    std::map<std::string, SignificantSubgraph> dedup;  // canonical -> best
    bool filtered = false;
  };
  std::vector<TaskOutput> outputs(tasks.size());
  util::ParallelFor(config_.num_threads, tasks.size(), [&](size_t t) {
    const VectorTask& task = tasks[t];
    const fvmine::SignificantVector& sv = *task.sv;
    GraphDatabase regions;
    regions.Reserve(task.chosen.size());
    for (int32_t vector_index : task.chosen) {
      const NodeVector& nv = phase.node_vectors[vector_index];
      regions.Add(
          cuts[cut_slot.at(cut_key(nv.graph_index, nv.node))]);
    }

    fsm::MinerConfig miner_config;
    miner_config.min_support = std::max<int64_t>(
        2, fsm::SupportFromPercent(config_.fsg_freq_percent,
                                   regions.size()));
    miner_config.max_edges = config_.fsm_max_edges;
    miner_config.max_patterns = config_.fsm_max_patterns;
    fsm::MineResult mined = fsm::MineMaximalGSpan(regions, miner_config);
    if (mined.patterns.empty()) {
      // False positive: similar vectors, no common structure (the line-13
      // pruning the paper describes).
      outputs[t].filtered = true;
      return;
    }

    for (const fsm::Pattern& pattern : mined.patterns) {
      if (pattern.graph.num_edges() < 1) continue;
      SignificantSubgraph candidate;
      candidate.subgraph = pattern.graph;
      candidate.vector = sv.vector;
      candidate.vector_pvalue = sv.p_value;
      candidate.vector_support = sv.support;
      candidate.anchor_label = task.label;
      candidate.set_size = static_cast<int64_t>(regions.size());
      candidate.set_support = pattern.support;
      outputs[t].dedup.emplace(fsm::CanonicalCode(pattern.graph),
                               std::move(candidate));
    }
  });

  // Deterministic merge: task order is significant-vector order, and the
  // better-candidate rule matches the old serial loop, so ties resolve
  // identically regardless of which worker mined what.
  std::map<std::string, SignificantSubgraph> dedup;  // canonical -> best
  for (size_t t = 0; t < outputs.size(); ++t) {
    ++result.stats.num_sets_mined;
    if (outputs[t].filtered) ++result.stats.num_sets_filtered;
    for (auto& [key, candidate] : outputs[t].dedup) {
      auto it = dedup.find(key);
      if (it == dedup.end()) {
        dedup.emplace(key, std::move(candidate));
      } else if (candidate.vector_pvalue < it->second.vector_pvalue ||
                 (candidate.vector_pvalue == it->second.vector_pvalue &&
                  candidate.set_support > it->second.set_support)) {
        it->second = std::move(candidate);
      }
    }
  }

  result.subgraphs.reserve(dedup.size());
  for (auto& [key, subgraph] : dedup) {
    result.subgraphs.push_back(std::move(subgraph));
  }
  if (config_.compute_db_frequency) {
    util::ParallelFor(
        config_.num_threads, result.subgraphs.size(), [&](size_t i) {
          SignificantSubgraph& sg = result.subgraphs[i];
          int64_t frequency = 0;
          for (const graph::Graph& g : db.graphs()) {
            if (graph::IsSubgraphIsomorphic(sg.subgraph, g)) ++frequency;
          }
          sg.db_frequency = frequency;
        });
  }
  std::sort(result.subgraphs.begin(), result.subgraphs.end(),
            [](const SignificantSubgraph& a, const SignificantSubgraph& b) {
              if (a.vector_pvalue != b.vector_pvalue) {
                return a.vector_pvalue < b.vector_pvalue;
              }
              return a.subgraph.num_edges() > b.subgraph.num_edges();
            });

  fsm_span.AddWork(static_cast<uint64_t>(result.stats.num_sets_mined));
  result.profile.fsm_seconds = fsm_timer.ElapsedSeconds();
  result.profile.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace graphsig::core
