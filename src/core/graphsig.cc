#include "core/graphsig.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "core/mine_pipeline.h"
#include "obs/trace.h"
#include "stream/tarone.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace graphsig::core {
namespace {

using features::NodeVector;
using graph::GraphDatabase;
using graph::Label;

struct FeaturePhaseOutput {
  features::FeatureSpace feature_space;
  std::vector<NodeVector> node_vectors;
  // Significant closed sub-feature vectors per anchor label; supporting
  // lists are re-based to indices into `node_vectors`.
  std::vector<std::pair<Label, fvmine::SignificantVector>> significant;
  double rwr_seconds = 0.0;
  double feature_seconds = 0.0;
  GraphSigStats stats;
};

FeaturePhaseOutput RunFeaturePhase(const GraphSigConfig& config,
                                   const GraphDatabase& db,
                                   const features::FeatureSpace* space) {
  FeaturePhaseOutput out;
  util::WallTimer timer;

  // Feature selection + RWR featurization (Algorithm 2, lines 3-4).
  out.feature_space =
      space != nullptr
          ? *space
          : features::FeatureSpace::ForChemicalDatabase(db,
                                                        config.top_k_atoms);
  out.node_vectors = features::DatabaseToVectors(
      db, out.feature_space, config.rwr, config.num_threads);
  out.rwr_seconds = timer.ElapsedSeconds();
  out.stats.num_vectors = static_cast<int64_t>(out.node_vectors.size());
  if (out.node_vectors.empty()) return out;

  timer.Restart();
  GS_TRACE_SPAN_NAMED(feature_span, "mine/feature");
  // Group by anchor label (line 6) and run FVMine per group (line 7).
  const auto groups = pipeline::GroupByAnchorLabel(out.node_vectors);
  out.stats.num_groups = static_cast<int64_t>(groups.size());

  // Groups are independent minings, so they fan out over the pool; each
  // writes its own slot and the slots concatenate in label order below,
  // making the output identical for any thread count.
  std::vector<pipeline::GroupMineOutput> per_group(groups.size());
  util::ParallelFor(config.num_threads, groups.size(), [&](size_t g) {
    per_group[g] =
        pipeline::MineLabelGroup(config, out.node_vectors, groups[g].second);
  });
  for (size_t g = 0; g < per_group.size(); ++g) {
    for (fvmine::SignificantVector& sv : per_group[g].vectors) {
      out.significant.emplace_back(groups[g].first, std::move(sv));
    }
  }

  if (config.tarone_alpha > 0.0) {
    // Solve for the family-wise threshold over the psis of every state
    // FVMine evaluated, concatenated in group-label order, then keep
    // only candidates that clear delta* (stream/tarone.h).
    std::vector<double> psis;
    for (const pipeline::GroupMineOutput& group : per_group) {
      psis.insert(psis.end(), group.psis.begin(), group.psis.end());
    }
    const stream::TaroneResult tarone =
        stream::TaroneThreshold::Compute(std::move(psis),
                                         config.tarone_alpha);
    const size_t candidates = out.significant.size();
    std::erase_if(out.significant, [&](const auto& entry) {
      return entry.second.p_value > tarone.delta_star;
    });
    out.stats.tarone_delta_star = tarone.delta_star;
    out.stats.tarone_family_size =
        static_cast<int64_t>(tarone.family_size);
    out.stats.tarone_filtered_vectors =
        static_cast<int64_t>(candidates - out.significant.size());
  }

  out.stats.num_significant_vectors =
      static_cast<int64_t>(out.significant.size());
  feature_span.AddWork(out.significant.size());
  out.feature_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace

std::vector<std::pair<Label, fvmine::SignificantVector>>
GraphSig::MineSignificantVectors(const GraphDatabase& db,
                                 GraphSigProfile* profile,
                                 const features::FeatureSpace* space) const {
  FeaturePhaseOutput phase = RunFeaturePhase(config_, db, space);
  if (profile != nullptr) {
    profile->rwr_seconds = phase.rwr_seconds;
    profile->feature_seconds = phase.feature_seconds;
    profile->fsm_seconds = 0.0;
    profile->total_seconds = phase.rwr_seconds + phase.feature_seconds;
  }
  return std::move(phase.significant);
}

GraphSigResult GraphSig::Mine(const GraphDatabase& db) const {
  GS_TRACE_SPAN("mine");
  GraphSigResult result;
  util::WallTimer total_timer;

  FeaturePhaseOutput phase = RunFeaturePhase(config_, db, nullptr);
  result.feature_space = phase.feature_space;
  result.stats = phase.stats;
  result.profile.rwr_seconds = phase.rwr_seconds;
  result.profile.feature_seconds = phase.feature_seconds;

  util::WallTimer fsm_timer;
  GS_TRACE_SPAN_NAMED(fsm_span, "mine/fsm");
  // Graph-space phase (Algorithm 2, lines 8-13): each significant vector
  // selects the regions it describes; cut them out and mine maximally at
  // a high relative threshold. The per-vector minings are independent,
  // so each runs as a pool task that dedups into its own local map; the
  // local maps merge at the barrier in significant-vector order — the
  // order the old serial loop used — so output is identical for any
  // thread count.

  // Pass 1 (serial, cheap): pick each vector's region sample and collect
  // the distinct (graph, node) cuts the samples need. Nearby significant
  // vectors keep re-selecting the same nodes, so the same BFS + induced
  // subgraph would otherwise be recomputed once per selecting vector;
  // the cache computes each cut exactly once (radius is fixed per run,
  // so (graph_index, node) identifies a cut).
  pipeline::RegionPlan plan =
      pipeline::PlanRegionTasks(config_, phase.significant,
                                phase.node_vectors);
  result.stats.num_region_requests = plan.num_region_requests;
  result.stats.num_unique_regions = plan.num_unique_regions;

  // Pass 2: compute each distinct cut once, in parallel (each slot is
  // written by exactly one task; the cut is a pure function of its key).
  std::vector<graph::Graph> cuts(plan.cut_owner.size());
  util::ParallelFor(
      config_.num_threads, plan.cut_owner.size(), [&](size_t i) {
        const NodeVector& nv = phase.node_vectors[plan.cut_owner[i]];
        cuts[i] = pipeline::CutRegion(db.graph(nv.graph_index),
                                      nv.graph_index, nv.node,
                                      config_.cutoff_radius);
      });

  // Pass 3: mine every region set as a pool task. `plan` and `cuts` are
  // read-only from here on.
  std::vector<pipeline::RegionTaskOutput> outputs(plan.tasks.size());
  util::ParallelFor(
      config_.num_threads, plan.tasks.size(), [&](size_t t) {
        const pipeline::RegionTask& task = plan.tasks[t];
        const fvmine::SignificantVector& sv =
            phase.significant[task.sv_index].second;
        GraphDatabase regions;
        regions.Reserve(task.chosen.size());
        for (int32_t vector_index : task.chosen) {
          const NodeVector& nv = phase.node_vectors[vector_index];
          regions.Add(cuts[plan.cut_slot.at(
              pipeline::RegionCutKey(nv.graph_index, nv.node))]);
        }
        outputs[t] =
            pipeline::MineRegionTask(config_, task.label, sv, regions);
      });

  // Deterministic merge: task order is significant-vector order, and the
  // better-candidate rule matches the old serial loop, so ties resolve
  // identically regardless of which worker mined what.
  std::map<std::string, SignificantSubgraph> dedup;  // canonical -> best
  for (size_t t = 0; t < outputs.size(); ++t) {
    pipeline::MergeRegionOutput(std::move(outputs[t]), &dedup,
                                &result.stats);
  }

  result.subgraphs.reserve(dedup.size());
  for (auto& [key, subgraph] : dedup) {
    result.subgraphs.push_back(std::move(subgraph));
  }
  pipeline::ComputeDbFrequencies(config_, db, &result.subgraphs);
  pipeline::SortBySignificance(&result.subgraphs);

  fsm_span.AddWork(static_cast<uint64_t>(result.stats.num_sets_mined));
  result.profile.fsm_seconds = fsm_timer.ElapsedSeconds();
  result.profile.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace graphsig::core
