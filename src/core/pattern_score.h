#ifndef GRAPHSIG_CORE_PATTERN_SCORE_H_
#define GRAPHSIG_CORE_PATTERN_SCORE_H_

#include <cstdint>

#include "core/graphsig.h"
#include "graph/graph_database.h"

namespace graphsig::core {

// Feature-space significance of one GIVEN subgraph (the query direction
// of GraphRank / the paper's Fig. 16 benzene check): locate the
// pattern's occurrences in the database, take the RWR vectors of the
// nodes matching the pattern's anchor vertex, and score the floor of
// those vectors against the anchor group's priors.
struct PatternScore {
  int64_t frequency = 0;       // graphs containing the pattern
  int64_t vector_support = 0;  // anchor nodes whose vector dominates floor
  double p_value = 1.0;        // significance of the floor vector
  bool found = false;          // false if the pattern never occurs
};

// `config` supplies the featurization (rwr, top_k_atoms). The anchor is
// the pattern vertex with the rarest label in `db` (the most informative
// group). Cost: one subgraph-iso scan plus the featurization of `db`.
PatternScore ScorePattern(const graph::GraphDatabase& db,
                          const graph::Graph& pattern,
                          const GraphSigConfig& config);

}  // namespace graphsig::core

#endif  // GRAPHSIG_CORE_PATTERN_SCORE_H_
