#include "core/report.h"

#include "data/elements.h"
#include "data/smiles.h"
#include "util/strings.h"
#include "util/table.h"

namespace graphsig::core {

void WriteReport(const GraphSigResult& result, size_t db_size,
                 std::ostream& os, size_t max_patterns) {
  os << util::StrPrintf(
      "GraphSig result: %zu significant subgraphs\n"
      "vectors=%lld groups=%lld significant-vectors=%lld "
      "sets-mined=%lld sets-filtered=%lld\n"
      "time: total=%.3fs rwr=%.3fs feature=%.3fs fsm=%.3fs\n\n",
      result.subgraphs.size(),
      static_cast<long long>(result.stats.num_vectors),
      static_cast<long long>(result.stats.num_groups),
      static_cast<long long>(result.stats.num_significant_vectors),
      static_cast<long long>(result.stats.num_sets_mined),
      static_cast<long long>(result.stats.num_sets_filtered),
      result.profile.total_seconds, result.profile.rwr_seconds,
      result.profile.feature_seconds, result.profile.fsm_seconds);
  size_t shown = 0;
  for (const SignificantSubgraph& sg : result.subgraphs) {
    if (shown >= max_patterns) break;
    os << util::StrPrintf("#%zu p=%.3e anchor=%s set=%lld/%lld", shown,
                          sg.vector_pvalue,
                          data::AtomSymbol(sg.anchor_label).c_str(),
                          static_cast<long long>(sg.set_support),
                          static_cast<long long>(sg.set_size));
    if (sg.db_frequency >= 0 && db_size > 0) {
      os << util::StrPrintf(" freq=%lld/%zu (%.2f%%)",
                            static_cast<long long>(sg.db_frequency),
                            db_size,
                            100.0 * static_cast<double>(sg.db_frequency) /
                                static_cast<double>(db_size));
    }
    os << "\n  " << data::WriteSmiles(sg.subgraph) << "\n";
    for (const graph::EdgeRecord& e : sg.subgraph.edges()) {
      os << util::StrPrintf(
          "  %s(%d) %s %s(%d)\n",
          data::AtomSymbol(sg.subgraph.vertex_label(e.u)).c_str(), e.u,
          data::BondSymbol(e.label).c_str(),
          data::AtomSymbol(sg.subgraph.vertex_label(e.v)).c_str(), e.v);
    }
    os << "\n";
    ++shown;
  }
}

void WriteCsv(const GraphSigResult& result, std::ostream& os) {
  util::CsvWriter csv(os);
  csv.WriteRow({"rank", "p_value", "anchor", "vector_support",
                "set_support", "set_size", "db_frequency", "edges",
                "vertices", "smiles"});
  size_t rank = 0;
  for (const SignificantSubgraph& sg : result.subgraphs) {
    csv.WriteRow({std::to_string(rank),
                  util::StrPrintf("%.6e", sg.vector_pvalue),
                  data::AtomSymbol(sg.anchor_label),
                  std::to_string(sg.vector_support),
                  std::to_string(sg.set_support),
                  std::to_string(sg.set_size),
                  std::to_string(sg.db_frequency),
                  std::to_string(sg.subgraph.num_edges()),
                  std::to_string(sg.subgraph.num_vertices()),
                  data::WriteSmiles(sg.subgraph)});
    ++rank;
  }
}

}  // namespace graphsig::core
