#ifndef GRAPHSIG_CORE_MINE_PIPELINE_H_
#define GRAPHSIG_CORE_MINE_PIPELINE_H_

// The GraphSig mining pipeline, decomposed into its deterministic units
// of work. core::GraphSig::Mine composes these into the cold full mine
// of Algorithm 2; stream::IncrementalMiner composes the *same*
// functions per unit so it can cache a unit's output (plus its captured
// work-counter delta, obs/work_capture.h) and replay it instead of
// recomputing — which is what makes an incremental mine byte-identical,
// artifact and counter dump both, to a cold re-mine of the final
// database.
//
// Every function here is a pure function of its arguments (plus the
// deterministic work counters it bumps); none touches global state
// other than the metrics registry. Units that run inside ParallelFor
// tasks (MineLabelGroup, CutRegion, MineRegionTask) are internally
// single-threaded, which is what makes their metric writes capturable
// per unit.

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/graphsig.h"
#include "features/feature_vector.h"
#include "fvmine/fvmine.h"
#include "graph/graph_database.h"

namespace graphsig::core::pipeline {

// Node-vector indices per anchor label, in ascending label order (the
// line-6 grouping; label order is the deterministic merge order for
// everything downstream).
std::vector<std::pair<graph::Label, std::vector<int32_t>>>
GroupByAnchorLabel(const std::vector<features::NodeVector>& node_vectors);

struct GroupMineOutput {
  // Significant closed sub-feature vectors, supporting lists re-based
  // to indices into the full node-vector array.
  std::vector<fvmine::SignificantVector> vectors;
  // Tarone mode only: the group's testability statistics in DFS order.
  std::vector<double> psis;
};

// Priors + FVMine over one anchor-label group (Algorithm 2 line 7).
// Returns empty output for groups below the support threshold.
GroupMineOutput MineLabelGroup(
    const GraphSigConfig& config,
    const std::vector<features::NodeVector>& node_vectors,
    const std::vector<int32_t>& members);

// One graph-space mining task: a significant vector and the node-vector
// indices (after even subsampling) whose regions it selects.
struct RegionTask {
  graph::Label label = -1;
  int32_t sv_index = 0;  // index into the significant-vector list
  std::vector<int32_t> chosen;
};

// Pass-1 output: the task list plus the distinct (graph, node) cuts the
// tasks need. `cut_slot` maps RegionCutKey -> slot, `cut_owner` maps
// slot -> node-vector index to cut at.
struct RegionPlan {
  std::vector<RegionTask> tasks;
  std::unordered_map<int64_t, int32_t> cut_slot;
  std::vector<int32_t> cut_owner;
  int64_t num_region_requests = 0;
  int64_t num_unique_regions = 0;
};

// (graph_index, node) packed into one map key; radius is fixed per run,
// so this identifies a cut.
int64_t RegionCutKey(int32_t graph_index, graph::VertexId node);

// Serial pass 1: selects each vector's region sample and dedups the
// cuts. Bumps the mine/region_cache_hits|misses work counters.
RegionPlan PlanRegionTasks(
    const GraphSigConfig& config,
    const std::vector<std::pair<graph::Label, fvmine::SignificantVector>>&
        significant,
    const std::vector<features::NodeVector>& node_vectors);

// One region cut: the induced subgraph of the radius ball around
// `node`, stamped with the host graph's database index.
graph::Graph CutRegion(const graph::Graph& host, int32_t graph_index,
                       graph::VertexId node, int cutoff_radius);

struct RegionTaskOutput {
  std::map<std::string, SignificantSubgraph> dedup;  // canonical -> best
  bool filtered = false;  // no common structure (line-13 pruning)
};

// Pass-3 body: maximal FSM over one assembled region set.
RegionTaskOutput MineRegionTask(const GraphSigConfig& config,
                                graph::Label label,
                                const fvmine::SignificantVector& sv,
                                const graph::GraphDatabase& regions);

// Folds one task's output into the global dedup map; must be called in
// task order with the same better-candidate rule for every thread
// count. Also advances the sets-mined/filtered stats.
void MergeRegionOutput(RegionTaskOutput&& output,
                       std::map<std::string, SignificantSubgraph>* dedup,
                       GraphSigStats* stats);

// Full-database frequency scan (compute_db_frequency) and the final
// (p-value asc, edges desc) ordering.
void ComputeDbFrequencies(const GraphSigConfig& config,
                          const graph::GraphDatabase& db,
                          std::vector<SignificantSubgraph>* subgraphs);
void SortBySignificance(std::vector<SignificantSubgraph>* subgraphs);

}  // namespace graphsig::core::pipeline

#endif  // GRAPHSIG_CORE_MINE_PIPELINE_H_
