#ifndef GRAPHSIG_DATA_DATASETS_H_
#define GRAPHSIG_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "data/generator.h"
#include "data/motifs.h"
#include "graph/graph_database.h"

namespace graphsig::data {

// Synthetic stand-ins for the paper's twelve chemical screens (DTP-AIDS
// plus eleven PubChem anti-cancer screens). Each dataset plants known
// motifs so the quality experiments have exact ground truth:
//   * benzene in ~70% of ALL molecules (frequent, not significant);
//   * a dataset-specific "signature" motif in ~55% of actives and ~1% of
//     inactives (the classification signal, Table VI);
//   * for MOLT-4, the Sb and Bi analog cores in ~12% of actives each
//     (global frequency well below 1% — the Fig. 15 pair);
//   * for UACC-257, the signature motif is methyl-triphenylphosphonium
//     (Fig. 14); for AIDS, the AZT and FDT cores (Fig. 13).
// Graph tags: 1 = active, 0 = inactive (~5% active like the screens).
struct DatasetOptions {
  size_t size = 2000;
  double active_fraction = 0.05;
  uint64_t seed = 1;
  double benzene_rate = 0.70;
  double signature_rate_active = 0.55;
  double signature_rate_inactive = 0.01;
  double rare_analog_rate_active = 0.12;  // MOLT-4's Sb/Bi cores
  MoleculeGenConfig molecule;
};

// Names of the eleven cancer-screen datasets (Table V).
const std::vector<std::string>& CancerScreenNames();

// Paper sizes of the screens (Table V), keyed like CancerScreenNames();
// benches scale these down proportionally.
size_t PaperDatasetSize(const std::string& name);

// The AIDS-like dataset: actives carry the AZT core (60% of the
// signature plants) or the FDT core (40%).
graph::GraphDatabase MakeAidsLike(const DatasetOptions& options);

// One of the eleven cancer screens by name.
graph::GraphDatabase MakeCancerScreen(const std::string& name,
                                      const DatasetOptions& options);

// The signature motif planted into `name`'s active class (for recovery
// checks). For "AIDS" this is the AZT core.
graph::Graph SignatureMotif(const std::string& name);

}  // namespace graphsig::data

#endif  // GRAPHSIG_DATA_DATASETS_H_
