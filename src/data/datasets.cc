#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "data/elements.h"
#include "util/check.h"

namespace graphsig::data {
namespace {

struct PlantRule {
  graph::Graph motif;
  double rate_active;
  double rate_inactive;
};

// Deterministic distinctive core for one screen: a five-ring of common
// atoms with a characteristic rare heteroatom pendant and a ketone, so
// each screen's active class deviates from background chemistry in its
// own way.
graph::Graph GeneratedSignature(uint64_t seed, graph::Label rare_atom) {
  util::Rng rng(seed);
  graph::Graph g;
  const graph::Label ring_choices[3] = {kCarbon, kNitrogen, kOxygen};
  for (int i = 0; i < 5; ++i) {
    g.AddVertex(ring_choices[rng.NextBounded(3)]);
  }
  for (int i = 0; i < 5; ++i) {
    g.AddEdge(i, (i + 1) % 5,
              rng.NextBernoulli(0.4) ? kAromaticBond : kSingleBond);
  }
  graph::VertexId rare = g.AddVertex(rare_atom);
  g.AddEdge(static_cast<graph::VertexId>(rng.NextBounded(5)), rare,
            kSingleBond);
  graph::VertexId keto = g.AddVertex(kOxygen);
  // Attach the ketone to a different ring atom than the rare pendant when
  // valence allows; fall back to any ring atom.
  graph::VertexId host = static_cast<graph::VertexId>(rng.NextBounded(5));
  if (g.HasEdge(host, rare)) host = (host + 1) % 5;
  g.AddEdge(host, keto, kDoubleBond);
  return g;
}

int ScreenIndex(const std::string& name) {
  const auto& names = CancerScreenNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

graph::GraphDatabase BuildDataset(const DatasetOptions& options,
                                  const std::vector<PlantRule>& rules) {
  GS_CHECK_GT(options.size, 0u);
  util::Rng rng(options.seed);
  const size_t num_active = static_cast<size_t>(
      std::llround(options.active_fraction * options.size));
  const graph::Graph benzene = BenzeneMotif();

  std::vector<graph::Graph> molecules;
  molecules.reserve(options.size);
  for (size_t i = 0; i < options.size; ++i) {
    const bool active = i < num_active;
    graph::Graph g = GenerateMolecule(options.molecule, &rng);
    g.set_tag(active ? 1 : 0);
    if (rng.NextBernoulli(options.benzene_rate)) {
      PlantMotif(&g, benzene, &rng);
    }
    for (const PlantRule& rule : rules) {
      const double rate = active ? rule.rate_active : rule.rate_inactive;
      if (rng.NextBernoulli(rate)) {
        PlantMotif(&g, rule.motif, &rng);
      }
    }
    molecules.push_back(std::move(g));
  }
  rng.Shuffle(&molecules);
  graph::GraphDatabase db;
  db.Reserve(molecules.size());
  for (size_t i = 0; i < molecules.size(); ++i) {
    molecules[i].set_id(static_cast<int64_t>(i));
    db.Add(std::move(molecules[i]));
  }
  return db;
}

}  // namespace

const std::vector<std::string>& CancerScreenNames() {
  static const std::vector<std::string>& names =
      *new std::vector<std::string>{
          "MCF-7",  "MOLT-4",   "NCI-H23", "OVCAR-8", "P388",  "PC-3",
          "SF-295", "SN12C",    "SW-620",  "UACC-257", "Yeast"};
  return names;
}

size_t PaperDatasetSize(const std::string& name) {
  if (name == "AIDS") return 43905;
  if (name == "MCF-7") return 28972;
  if (name == "MOLT-4") return 41810;
  if (name == "NCI-H23") return 42164;
  if (name == "OVCAR-8") return 42386;
  if (name == "P388") return 46440;
  if (name == "PC-3") return 28679;
  if (name == "SF-295") return 40350;
  if (name == "SN12C") return 41855;
  if (name == "SW-620") return 42405;
  if (name == "UACC-257") return 41864;
  if (name == "Yeast") return 83933;
  GS_CHECK(false);
  return 0;
}

graph::Graph SignatureMotif(const std::string& name) {
  if (name == "AIDS") return AztCoreMotif();
  if (name == "UACC-257") return PhosphoniumMotif();
  const int index = ScreenIndex(name);
  GS_CHECK_GE(index, 0);
  static constexpr graph::Label kRareCycle[5] = {
      kPhosphorus, kFluorine, kBromine, kIodine, kSodium};
  return GeneratedSignature(0xC0FFEEull + 7919ull * index,
                            kRareCycle[index % 5]);
}

graph::GraphDatabase MakeAidsLike(const DatasetOptions& options) {
  std::vector<PlantRule> rules;
  rules.push_back({AztCoreMotif(), options.signature_rate_active * 0.6,
                   options.signature_rate_inactive * 0.6});
  rules.push_back({FdtCoreMotif(), options.signature_rate_active * 0.4,
                   options.signature_rate_inactive * 0.4});
  return BuildDataset(options, rules);
}

graph::GraphDatabase MakeCancerScreen(const std::string& name,
                                      const DatasetOptions& options) {
  GS_CHECK_GE(ScreenIndex(name), 0);
  std::vector<PlantRule> rules;
  rules.push_back({SignatureMotif(name), options.signature_rate_active,
                   options.signature_rate_inactive});
  if (name == "MOLT-4") {
    rules.push_back({MetalloidMotif(kAntimony),
                     options.rare_analog_rate_active,
                     options.rare_analog_rate_active / 100.0});
    rules.push_back({MetalloidMotif(kBismuth),
                     options.rare_analog_rate_active,
                     options.rare_analog_rate_active / 100.0});
  }
  return BuildDataset(options, rules);
}

}  // namespace graphsig::data
