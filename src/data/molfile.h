#ifndef GRAPHSIG_DATA_MOLFILE_H_
#define GRAPHSIG_DATA_MOLFILE_H_

#include <ostream>
#include <string>
#include <string_view>

#include "graph/graph_database.h"
#include "util/status.h"

namespace graphsig::data {

// MDL molfile (V2000) / SD-file support — the other format the NCI and
// PubChem screens ship in. Coordinates are accepted and discarded
// (GraphSig works on topology); written files carry zero coordinates.
// Bond types map 1/2/3/4 <-> single/double/triple/aromatic.

// Parses a single V2000 molfile block (up to and including "M  END").
util::Result<graph::Graph> ParseMolBlock(std::string_view block);

// Writes one molfile block. Labels must be understood by AtomSymbol().
std::string WriteMolBlock(const graph::Graph& g, const std::string& name);

// Parses an SD file: molfile blocks separated by "$$$$", each optionally
// followed by data fields. A "> <activity>" (or "> <ACTIVITY>") field
// with integer content sets the graph's tag.
util::Result<graph::GraphDatabase> ParseSdf(std::string_view text);

// Writes an SD file; every graph gets an "activity" field from its tag.
std::string WriteSdf(const graph::GraphDatabase& db);

}  // namespace graphsig::data

#endif  // GRAPHSIG_DATA_MOLFILE_H_
