#ifndef GRAPHSIG_DATA_SMILES_H_
#define GRAPHSIG_DATA_SMILES_H_

#include <string>
#include <string_view>

#include "graph/graph_database.h"
#include "util/status.h"

namespace graphsig::data {

// SMILES support for the subset chemical screens actually use. The
// NCI/PubChem datasets the paper evaluates on ship as SMILES/SDF, so a
// downstream user needs this to feed real data through GraphSig.
//
// Supported grammar:
//   * organic-subset atoms: B C N O P S F Cl Br I (two-letter symbols
//     recognized greedily), plus any AtomSymbol() in brackets: [Sb],
//     [Bi], [Na], [X12], ... (charges/H-counts inside brackets are
//     accepted and ignored);
//   * aromatic lowercase atoms: b c n o p s (an unspecified bond between
//     two aromatic atoms becomes an aromatic bond);
//   * bonds: '-' single, '=' double, '#' triple, ':' aromatic
//     (unspecified defaults to single, or aromatic as above);
//   * branches '(' ... ')' and ring closures 1-9, %nn.
//
// Not supported (rejected with ParseError): stereo markers (/ \ @),
// isotopes, multi-component '.' SMILES.

// Parses one SMILES string into a labeled graph.
util::Result<graph::Graph> ParseSmiles(std::string_view smiles);

// Writes a molecule as SMILES (uppercase symbols, explicit =/#/: bonds,
// ring-closure digits for cycles). Round-trips through ParseSmiles to an
// isomorphic graph. The graph must be connected and non-empty, with
// labels understood by AtomSymbol()/BondSymbol().
std::string WriteSmiles(const graph::Graph& g);

// Parses a line-oriented file: "SMILES[ tag[ id]]" per line, '#' for
// comments. Tag (activity class) and id are optional integers.
util::Result<graph::GraphDatabase> ParseSmilesLines(std::string_view text);

// Writes the database in the same line format.
std::string WriteSmilesLines(const graph::GraphDatabase& db);

}  // namespace graphsig::data

#endif  // GRAPHSIG_DATA_SMILES_H_
