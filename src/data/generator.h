#ifndef GRAPHSIG_DATA_GENERATOR_H_
#define GRAPHSIG_DATA_GENERATOR_H_

#include "graph/graph.h"
#include "util/rng.h"

namespace graphsig::data {

// Random molecule-like graph generator calibrated to the statistics the
// paper reports for the NCI screens: ~25.4 atoms and ~27.3 bonds per
// molecule on average, atom types drawn from the skewed AtomAbundance()
// distribution (top-5 atoms ~99% of mass), valence-capped connectivity,
// and occasional ring closures.
struct MoleculeGenConfig {
  int min_atoms = 12;
  int max_atoms = 38;              // uniform size => mean 25 atoms
  double ring_closure_rate = 0.08;  // expected extra (cycle) edges per atom
  double double_bond_prob = 0.12;
  double triple_bond_prob = 0.02;
  int max_valence = 4;
};

// One random molecule. Always connected; never empty.
graph::Graph GenerateMolecule(const MoleculeGenConfig& config,
                              util::Rng* rng);

// Splices `motif` into `*g`: motif vertices and edges are appended intact
// and one motif vertex is attached to a random existing vertex with a
// single bond, so the motif is guaranteed to remain a subgraph of *g.
void PlantMotif(graph::Graph* g, const graph::Graph& motif, util::Rng* rng);

}  // namespace graphsig::data

#endif  // GRAPHSIG_DATA_GENERATOR_H_
