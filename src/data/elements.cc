#include "data/elements.h"

#include "util/check.h"
#include "util/strings.h"

namespace graphsig::data {

std::string AtomSymbol(graph::Label label) {
  switch (label) {
    case kCarbon:
      return "C";
    case kOxygen:
      return "O";
    case kNitrogen:
      return "N";
    case kSulfur:
      return "S";
    case kChlorine:
      return "Cl";
    case kPhosphorus:
      return "P";
    case kFluorine:
      return "F";
    case kBromine:
      return "Br";
    case kIodine:
      return "I";
    case kSodium:
      return "Na";
    case kAntimony:
      return "Sb";
    case kBismuth:
      return "Bi";
    default:
      GS_CHECK_GE(label, 0);
      GS_CHECK_LT(label, kNumAtomTypes);
      return util::StrPrintf("X%d", label);
  }
}

std::string BondSymbol(graph::Label label) {
  switch (label) {
    case kSingleBond:
      return "-";
    case kDoubleBond:
      return "=";
    case kTripleBond:
      return "#";
    case kAromaticBond:
      return ":";
  }
  GS_CHECK(false);
  return "?";
}

const std::vector<double>& AtomAbundance() {
  static const std::vector<double>& abundance = *[] {
    auto* v = new std::vector<double>(kNumAtomTypes, 0.0);
    // Top five: ~99% coverage, carbon-dominated like the NCI screens.
    (*v)[kCarbon] = 0.660;
    (*v)[kOxygen] = 0.134;
    (*v)[kNitrogen] = 0.124;
    (*v)[kSulfur] = 0.035;
    (*v)[kChlorine] = 0.030;
    // Next few named heteroatoms.
    (*v)[kPhosphorus] = 0.0030;
    (*v)[kFluorine] = 0.0025;
    (*v)[kBromine] = 0.0020;
    (*v)[kIodine] = 0.0012;
    (*v)[kSodium] = 0.0010;
    (*v)[kAntimony] = 0.0004;
    (*v)[kBismuth] = 0.0004;
    // Geometric tail over the anonymous rare types.
    double rest = 1.0;
    for (double x : *v) rest -= x;
    double weight = 0.30;  // fraction of `rest` for the next type
    double remaining = rest;
    for (int label = 12; label < kNumAtomTypes; ++label) {
      double share = (label + 1 == kNumAtomTypes)
                         ? remaining
                         : remaining * weight;
      (*v)[label] = share;
      remaining -= share;
    }
    return v;
  }();
  return abundance;
}

}  // namespace graphsig::data
