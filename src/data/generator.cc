#include "data/generator.h"

#include <cmath>

#include "data/elements.h"
#include "util/check.h"

namespace graphsig::data {

graph::Graph GenerateMolecule(const MoleculeGenConfig& config,
                              util::Rng* rng) {
  GS_CHECK_GE(config.min_atoms, 1);
  GS_CHECK_LE(config.min_atoms, config.max_atoms);
  const int n = static_cast<int>(
      rng->NextInt(config.min_atoms, config.max_atoms));
  const std::vector<double>& abundance = AtomAbundance();

  graph::Graph g;
  for (int i = 0; i < n; ++i) {
    g.AddVertex(static_cast<graph::Label>(rng->NextWeighted(abundance)));
  }

  auto sample_bond = [&]() -> graph::Label {
    const double r = rng->NextDouble();
    if (r < config.triple_bond_prob) return kTripleBond;
    if (r < config.triple_bond_prob + config.double_bond_prob) {
      return kDoubleBond;
    }
    return kSingleBond;
  };

  // Random spanning tree with valence-capped attachment: new atoms prefer
  // parents with free valence, giving chains and branches like real
  // molecules instead of hubs.
  for (int i = 1; i < n; ++i) {
    std::vector<double> weights(i);
    double total = 0.0;
    for (int j = 0; j < i; ++j) {
      const int free = config.max_valence - g.degree(j);
      weights[j] = free > 0 ? static_cast<double>(free) : 0.0;
      total += weights[j];
    }
    graph::VertexId parent;
    if (total > 0.0) {
      parent = static_cast<graph::VertexId>(rng->NextWeighted(weights));
    } else {
      parent = static_cast<graph::VertexId>(rng->NextBounded(i));
    }
    g.AddEdge(parent, i, sample_bond());
  }

  // Ring closures between non-adjacent atoms with free valence.
  const int closures = static_cast<int>(
      std::floor(config.ring_closure_rate * n)) +
      (rng->NextBernoulli(config.ring_closure_rate * n -
                          std::floor(config.ring_closure_rate * n))
           ? 1
           : 0);
  int added = 0;
  for (int attempt = 0; attempt < 20 * closures && added < closures;
       ++attempt) {
    graph::VertexId u = static_cast<graph::VertexId>(rng->NextBounded(n));
    graph::VertexId v = static_cast<graph::VertexId>(rng->NextBounded(n));
    if (u == v || g.HasEdge(u, v)) continue;
    if (g.degree(u) >= config.max_valence ||
        g.degree(v) >= config.max_valence) {
      continue;
    }
    g.AddEdge(u, v, rng->NextBernoulli(0.5) ? kAromaticBond : kSingleBond);
    ++added;
  }
  return g;
}

void PlantMotif(graph::Graph* g, const graph::Graph& motif,
                util::Rng* rng) {
  GS_CHECK(g != nullptr);
  GS_CHECK_GT(motif.num_vertices(), 0);
  const graph::VertexId base = g->num_vertices();
  for (graph::VertexId v = 0; v < motif.num_vertices(); ++v) {
    g->AddVertex(motif.vertex_label(v));
  }
  for (const graph::EdgeRecord& e : motif.edges()) {
    g->AddEdge(base + e.u, base + e.v, e.label);
  }
  if (base > 0) {
    // Attach one motif vertex to the existing molecule.
    const graph::VertexId anchor =
        static_cast<graph::VertexId>(rng->NextBounded(base));
    const graph::VertexId motif_vertex =
        base + static_cast<graph::VertexId>(
                   rng->NextBounded(motif.num_vertices()));
    g->AddEdge(anchor, motif_vertex, kSingleBond);
  }
}

}  // namespace graphsig::data
