#ifndef GRAPHSIG_DATA_MOTIFS_H_
#define GRAPHSIG_DATA_MOTIFS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace graphsig::data {

// Hand-built active-core motifs modeled on the substructures the paper
// reports GraphSig recovering (Figs. 13-15). These are the ground-truth
// patterns the synthetic datasets plant into their active classes, so the
// quality benches can measure recovery exactly.

// Plain benzene ring: 6 aromatic carbons. Ubiquitous (planted broadly),
// frequent but NOT significant — the Fig. 16 negative control.
graph::Graph BenzeneMotif();

// Azido-pyrimidine-like core (Fig. 13a, the AZT family): a mixed C/N
// six-ring with a ketone oxygen and an azide-like N=N tail.
graph::Graph AztCoreMotif();

// Fluorinated analog of the AZT core (Fig. 13b, the FDT family):
// same scaffold with a fluorine replacing the azide tail.
graph::Graph FdtCoreMotif();

// Methyl-triphenylphosphonium core (Fig. 14): phosphorus bonded to three
// ring-carbon stubs and one free methyl carbon.
graph::Graph PhosphoniumMotif();

// Metalloid motif (Fig. 15): an organometallic scaffold around `metal`
// (use kAntimony / kBismuth). The two instances differ in exactly the
// metal atom — the analog pair the paper highlights.
graph::Graph MetalloidMotif(graph::Label metal);

struct NamedMotif {
  std::string name;
  graph::Graph graph;
};

// All motifs above with stable names ("benzene", "azt_core", ...).
std::vector<NamedMotif> AllNamedMotifs();

}  // namespace graphsig::data

#endif  // GRAPHSIG_DATA_MOTIFS_H_
