#ifndef GRAPHSIG_DATA_ELEMENTS_H_
#define GRAPHSIG_DATA_ELEMENTS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace graphsig::data {

// Atom-type labels used by the synthetic chemistry. The first five are
// the dominant organic atoms (the paper's NCI datasets draw ~99% of all
// atom occurrences from their top five types); the remainder form the
// long tail up to kNumAtomTypes = 58 distinct types, matching the AIDS
// screen's label-universe size.
enum AtomLabel : graph::Label {
  kCarbon = 0,
  kOxygen = 1,
  kNitrogen = 2,
  kSulfur = 3,
  kChlorine = 4,
  kPhosphorus = 5,
  kFluorine = 6,
  kBromine = 7,
  kIodine = 8,
  kSodium = 9,
  kAntimony = 10,  // Sb — the Fig. 15(a) metal
  kBismuth = 11,   // Bi — the Fig. 15(b) metal
  // Labels 12..57 are anonymous rare heteroatoms.
};

inline constexpr int kNumAtomTypes = 58;

// Bond-type labels.
enum BondLabel : graph::Label {
  kSingleBond = 0,
  kDoubleBond = 1,
  kTripleBond = 2,
  kAromaticBond = 3,
};

inline constexpr int kNumBondTypes = 4;

// Symbol for an atom label ("C", "O", ..., "X12" for tail atoms).
std::string AtomSymbol(graph::Label label);

// Symbol for a bond label ("-", "=", "#", ":").
std::string BondSymbol(graph::Label label);

// Relative abundance of each atom type, normalized to sum 1. Calibrated
// so the top five types cover ~99% of occurrences (Fig. 4) with a
// geometric tail over the remaining 53.
const std::vector<double>& AtomAbundance();

}  // namespace graphsig::data

#endif  // GRAPHSIG_DATA_ELEMENTS_H_
