#include "data/motifs.h"

#include "data/elements.h"
#include "util/check.h"

namespace graphsig::data {

graph::Graph BenzeneMotif() {
  graph::Graph g;
  for (int i = 0; i < 6; ++i) g.AddVertex(kCarbon);
  for (int i = 0; i < 6; ++i) g.AddEdge(i, (i + 1) % 6, kAromaticBond);
  return g;
}

namespace {

// Shared pyrimidine-like scaffold: ring N(0)-C(1)-N(2)-C(3)-C(4)-C(5)
// with a ketone oxygen on C(1). Tail attaches at C(3).
graph::Graph PyrimidinoneScaffold() {
  graph::Graph g;
  g.AddVertex(kNitrogen);  // 0
  g.AddVertex(kCarbon);    // 1
  g.AddVertex(kNitrogen);  // 2
  g.AddVertex(kCarbon);    // 3
  g.AddVertex(kCarbon);    // 4
  g.AddVertex(kCarbon);    // 5
  g.AddEdge(0, 1, kSingleBond);
  g.AddEdge(1, 2, kSingleBond);
  g.AddEdge(2, 3, kSingleBond);
  g.AddEdge(3, 4, kDoubleBond);
  g.AddEdge(4, 5, kSingleBond);
  g.AddEdge(5, 0, kSingleBond);
  g.AddVertex(kOxygen);  // 6: ketone on C1
  g.AddEdge(1, 6, kDoubleBond);
  return g;
}

}  // namespace

graph::Graph AztCoreMotif() {
  graph::Graph g = PyrimidinoneScaffold();
  // Azide-like tail on C3: N-N=N.
  graph::VertexId n1 = g.AddVertex(kNitrogen);
  graph::VertexId n2 = g.AddVertex(kNitrogen);
  graph::VertexId n3 = g.AddVertex(kNitrogen);
  g.AddEdge(3, n1, kSingleBond);
  g.AddEdge(n1, n2, kDoubleBond);
  g.AddEdge(n2, n3, kDoubleBond);
  return g;
}

graph::Graph FdtCoreMotif() {
  graph::Graph g = PyrimidinoneScaffold();
  // Fluorine replaces the azide tail (fluorinated AZT analog).
  graph::VertexId f = g.AddVertex(kFluorine);
  g.AddEdge(3, f, kSingleBond);
  return g;
}

graph::Graph PhosphoniumMotif() {
  graph::Graph g;
  graph::VertexId p = g.AddVertex(kPhosphorus);  // 0
  // Three phenyl stubs: C with two aromatic ring carbons each.
  for (int arm = 0; arm < 3; ++arm) {
    graph::VertexId ipso = g.AddVertex(kCarbon);
    graph::VertexId ortho1 = g.AddVertex(kCarbon);
    graph::VertexId ortho2 = g.AddVertex(kCarbon);
    g.AddEdge(p, ipso, kSingleBond);
    g.AddEdge(ipso, ortho1, kAromaticBond);
    g.AddEdge(ipso, ortho2, kAromaticBond);
  }
  // The free methyl carbon where binding occurs.
  graph::VertexId methyl = g.AddVertex(kCarbon);
  g.AddEdge(p, methyl, kSingleBond);
  return g;
}

graph::Graph MetalloidMotif(graph::Label metal) {
  GS_CHECK(metal == kAntimony || metal == kBismuth);
  graph::Graph g;
  graph::VertexId m = g.AddVertex(metal);  // 0
  // Two carboxylate-like arms: O=C-O bridging to the metal.
  for (int arm = 0; arm < 2; ++arm) {
    graph::VertexId o_bridge = g.AddVertex(kOxygen);
    graph::VertexId c = g.AddVertex(kCarbon);
    graph::VertexId o_keto = g.AddVertex(kOxygen);
    g.AddEdge(m, o_bridge, kSingleBond);
    g.AddEdge(o_bridge, c, kSingleBond);
    g.AddEdge(c, o_keto, kDoubleBond);
  }
  // One direct metal-carbon bond.
  graph::VertexId c_direct = g.AddVertex(kCarbon);
  g.AddEdge(m, c_direct, kSingleBond);
  return g;
}

std::vector<NamedMotif> AllNamedMotifs() {
  return {
      {"benzene", BenzeneMotif()},
      {"azt_core", AztCoreMotif()},
      {"fdt_core", FdtCoreMotif()},
      {"phosphonium", PhosphoniumMotif()},
      {"sb_core", MetalloidMotif(kAntimony)},
      {"bi_core", MetalloidMotif(kBismuth)},
  };
}

}  // namespace graphsig::data
