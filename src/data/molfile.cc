#include "data/molfile.h"

#include <map>
#include <sstream>
#include <vector>

#include "data/elements.h"
#include "util/check.h"
#include "util/strings.h"

namespace graphsig::data {
namespace {

using graph::Graph;
using graph::Label;

const std::map<std::string, Label>& SymbolTable() {
  static const std::map<std::string, Label>& table = *[] {
    auto* m = new std::map<std::string, Label>();
    for (Label l = 0; l < kNumAtomTypes; ++l) {
      (*m)[AtomSymbol(l)] = l;
    }
    return m;
  }();
  return table;
}

util::Result<Label> BondFromMolType(int64_t type) {
  switch (type) {
    case 1:
      return static_cast<Label>(kSingleBond);
    case 2:
      return static_cast<Label>(kDoubleBond);
    case 3:
      return static_cast<Label>(kTripleBond);
    case 4:
      return static_cast<Label>(kAromaticBond);
    default:
      return util::Status::ParseError(
          util::StrPrintf("unsupported bond type %lld",
                          static_cast<long long>(type)));
  }
}

int MolTypeFromBond(Label bond) {
  switch (bond) {
    case kSingleBond:
      return 1;
    case kDoubleBond:
      return 2;
    case kTripleBond:
      return 3;
    case kAromaticBond:
      return 4;
  }
  GS_CHECK(false);
  return 1;
}

}  // namespace

util::Result<Graph> ParseMolBlock(std::string_view block) {
  std::vector<std::string> lines =
      util::SplitFields(std::string(block), '\n');
  // Header: name, program, comment, counts.
  if (lines.size() < 4) {
    return util::Status::ParseError("molfile block too short");
  }
  const std::string counts(util::Trim(lines[3]));
  if (counts.find("V2000") == std::string::npos) {
    return util::Status::ParseError("only V2000 molfiles are supported");
  }
  std::vector<std::string> count_tokens = util::SplitTokens(counts);
  if (count_tokens.size() < 2) {
    return util::Status::ParseError("malformed counts line");
  }
  auto natoms = util::ParseInt(count_tokens[0]);
  auto nbonds = util::ParseInt(count_tokens[1]);
  if (!natoms.ok()) return natoms.status();
  if (!nbonds.ok()) return nbonds.status();
  if (natoms.value() < 0 || nbonds.value() < 0 ||
      lines.size() < 4 + static_cast<size_t>(natoms.value()) +
                         static_cast<size_t>(nbonds.value())) {
    return util::Status::ParseError("molfile truncated");
  }

  Graph g;
  for (int64_t i = 0; i < natoms.value(); ++i) {
    const std::string& line = lines[4 + i];
    // Atom line: x y z SYMBOL ... — token 3 is the symbol.
    std::vector<std::string> tokens = util::SplitTokens(line);
    if (tokens.size() < 4) {
      return util::Status::ParseError(
          util::StrPrintf("malformed atom line %lld",
                          static_cast<long long>(i)));
    }
    auto it = SymbolTable().find(tokens[3]);
    if (it == SymbolTable().end()) {
      return util::Status::ParseError(
          "unknown atom symbol: " + tokens[3]);
    }
    g.AddVertex(it->second);
  }
  for (int64_t i = 0; i < nbonds.value(); ++i) {
    const std::string& line = lines[4 + natoms.value() + i];
    std::vector<std::string> tokens = util::SplitTokens(line);
    if (tokens.size() < 3) {
      return util::Status::ParseError(
          util::StrPrintf("malformed bond line %lld",
                          static_cast<long long>(i)));
    }
    auto u = util::ParseInt(tokens[0]);
    auto v = util::ParseInt(tokens[1]);
    auto t = util::ParseInt(tokens[2]);
    if (!u.ok()) return u.status();
    if (!v.ok()) return v.status();
    if (!t.ok()) return t.status();
    if (u.value() < 1 || u.value() > g.num_vertices() || v.value() < 1 ||
        v.value() > g.num_vertices() || u.value() == v.value()) {
      return util::Status::ParseError("bond endpoint out of range");
    }
    auto bond = BondFromMolType(t.value());
    if (!bond.ok()) return bond.status();
    const graph::VertexId a = static_cast<graph::VertexId>(u.value() - 1);
    const graph::VertexId b = static_cast<graph::VertexId>(v.value() - 1);
    if (g.HasEdge(a, b)) {
      return util::Status::ParseError("duplicate bond");
    }
    g.AddEdge(a, b, bond.value());
  }
  return g;
}

std::string WriteMolBlock(const Graph& g, const std::string& name) {
  std::string out = name + "\n  graphsig\n\n";
  out += util::StrPrintf("%3d%3d  0  0  0  0  0  0  0  0999 V2000\n",
                         g.num_vertices(), g.num_edges());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    out += util::StrPrintf("    0.0000    0.0000    0.0000 %-3s 0  0\n",
                           AtomSymbol(g.vertex_label(v)).c_str());
  }
  for (const graph::EdgeRecord& e : g.edges()) {
    out += util::StrPrintf("%3d%3d%3d  0\n", e.u + 1, e.v + 1,
                           MolTypeFromBond(e.label));
  }
  out += "M  END\n";
  return out;
}

util::Result<graph::GraphDatabase> ParseSdf(std::string_view text) {
  graph::GraphDatabase db;
  std::vector<std::string> lines =
      util::SplitFields(std::string(text), '\n');
  size_t i = 0;
  while (i < lines.size()) {
    // Skip blank padding between records.
    while (i < lines.size() && util::Trim(lines[i]).empty()) ++i;
    if (i >= lines.size()) break;
    // Collect the mol block up to "M  END".
    std::string block;
    bool saw_end = false;
    while (i < lines.size()) {
      block += lines[i];
      block += '\n';
      if (util::StartsWith(util::Trim(lines[i]), "M") &&
          util::Trim(lines[i]).find("END") != std::string::npos) {
        ++i;
        saw_end = true;
        break;
      }
      ++i;
    }
    if (!saw_end) {
      return util::Status::ParseError("molfile block missing M  END");
    }
    auto parsed = ParseMolBlock(block);
    if (!parsed.ok()) return parsed.status();
    Graph g = std::move(parsed).value();
    g.set_id(static_cast<int64_t>(db.size()));

    // Data fields until "$$$$".
    while (i < lines.size() && util::Trim(lines[i]) != "$$$$") {
      std::string_view line = util::Trim(lines[i]);
      if (util::StartsWith(line, ">") &&
          (line.find("<activity>") != std::string_view::npos ||
           line.find("<ACTIVITY>") != std::string_view::npos)) {
        if (i + 1 < lines.size()) {
          auto tag = util::ParseInt(util::Trim(lines[i + 1]));
          if (tag.ok()) g.set_tag(static_cast<int32_t>(tag.value()));
        }
      }
      ++i;
    }
    if (i < lines.size()) ++i;  // consume "$$$$"
    db.Add(std::move(g));
  }
  return db;
}

std::string WriteSdf(const graph::GraphDatabase& db) {
  std::string out;
  for (const Graph& g : db.graphs()) {
    out += WriteMolBlock(
        g, util::StrPrintf("mol%lld", static_cast<long long>(g.id())));
    out += util::StrPrintf("> <activity>\n%d\n\n$$$$\n", g.tag());
  }
  return out;
}

}  // namespace graphsig::data
