#include "data/smiles.h"

#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "data/elements.h"
#include "util/check.h"
#include "util/strings.h"

namespace graphsig::data {
namespace {

using graph::Graph;
using graph::Label;
using graph::VertexId;

const std::map<std::string, Label>& SymbolTable() {
  static const std::map<std::string, Label>& table = *[] {
    auto* m = new std::map<std::string, Label>();
    for (Label l = 0; l < kNumAtomTypes; ++l) {
      (*m)[AtomSymbol(l)] = l;
    }
    return m;
  }();
  return table;
}

bool IsOrganicSubset(const std::string& symbol) {
  static const char* kOrganic[] = {"B", "C", "N", "O", "P",
                                   "S", "F", "Cl", "Br", "I"};
  for (const char* s : kOrganic) {
    if (symbol == s) return true;
  }
  return false;
}

struct RingBond {
  VertexId atom;
  Label explicit_bond;  // -1 if unspecified at the opening occurrence
  bool aromatic_atom;
};

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  util::Result<Graph> Run() {
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c == '(') {
        if (prev_ < 0) return Error("branch before any atom");
        stack_.push_back(prev_);
        ++pos_;
      } else if (c == ')') {
        if (stack_.empty()) return Error("unbalanced ')'");
        prev_ = stack_.back();
        stack_.pop_back();
        ++pos_;
      } else if (c == '-' || c == '=' || c == '#' || c == ':') {
        if (pending_bond_ >= 0) return Error("two bond symbols in a row");
        pending_bond_ = BondFromChar(c);
        ++pos_;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        util::Status s = RingClosure(c - '0');
        if (!s.ok()) return s;
        ++pos_;
      } else if (c == '%') {
        if (pos_ + 2 >= input_.size() ||
            !std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])) ||
            !std::isdigit(static_cast<unsigned char>(input_[pos_ + 2]))) {
          return Error("malformed %nn ring closure");
        }
        const int number =
            (input_[pos_ + 1] - '0') * 10 + (input_[pos_ + 2] - '0');
        util::Status s = RingClosure(number);
        if (!s.ok()) return s;
        pos_ += 3;
      } else if (c == '[') {
        util::Status s = BracketAtom();
        if (!s.ok()) return s;
      } else if (std::isalpha(static_cast<unsigned char>(c))) {
        util::Status s = BareAtom();
        if (!s.ok()) return s;
      } else if (c == '.' || c == '/' || c == '\\' || c == '@') {
        return Error(util::StrPrintf("unsupported SMILES feature '%c'", c));
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        break;  // trailing whitespace ends the molecule
      } else {
        return Error(util::StrPrintf("unexpected character '%c'", c));
      }
    }
    if (!stack_.empty()) return Error("unbalanced '('");
    if (!open_rings_.empty()) return Error("unclosed ring bond");
    if (pending_bond_ >= 0) return Error("dangling bond symbol");
    if (graph_.num_vertices() == 0) return Error("empty SMILES");
    return std::move(graph_);
  }

 private:
  util::Status Error(std::string message) const {
    return util::Status::ParseError(util::StrPrintf(
        "SMILES position %zu: %s", pos_, message.c_str()));
  }

  static Label BondFromChar(char c) {
    switch (c) {
      case '-':
        return kSingleBond;
      case '=':
        return kDoubleBond;
      case '#':
        return kTripleBond;
      case ':':
        return kAromaticBond;
    }
    GS_CHECK(false);
    return kSingleBond;
  }

  // Resolves the bond for a new attachment given the explicit symbol (if
  // any) and the aromaticity of both endpoints.
  static Label ResolveBond(Label explicit_bond, bool a_aromatic,
                           bool b_aromatic) {
    if (explicit_bond >= 0) return explicit_bond;
    return (a_aromatic && b_aromatic) ? kAromaticBond : kSingleBond;
  }

  util::Status AttachAtom(Label label, bool aromatic) {
    const VertexId v = graph_.AddVertex(label);
    aromatic_.push_back(aromatic);
    if (prev_ >= 0) {
      const Label bond =
          ResolveBond(pending_bond_, aromatic_[prev_], aromatic);
      graph_.AddEdge(prev_, v, bond);
    } else if (pending_bond_ >= 0) {
      return Error("bond symbol before the first atom");
    }
    pending_bond_ = -1;
    prev_ = v;
    return util::Status::Ok();
  }

  util::Status RingClosure(int number) {
    if (prev_ < 0) return Error("ring closure before any atom");
    auto it = open_rings_.find(number);
    if (it == open_rings_.end()) {
      open_rings_[number] = {prev_, pending_bond_, aromatic_[prev_]};
      pending_bond_ = -1;
      return util::Status::Ok();
    }
    RingBond open = it->second;
    open_rings_.erase(it);
    if (open.atom == prev_) return Error("ring closure onto the same atom");
    Label explicit_bond = open.explicit_bond;
    if (pending_bond_ >= 0) {
      if (explicit_bond >= 0 && explicit_bond != pending_bond_) {
        return Error("conflicting bond symbols on ring closure");
      }
      explicit_bond = pending_bond_;
      pending_bond_ = -1;
    }
    if (graph_.HasEdge(open.atom, prev_)) {
      return Error("duplicate ring bond");
    }
    graph_.AddEdge(open.atom, prev_,
                   ResolveBond(explicit_bond, open.aromatic_atom,
                               aromatic_[prev_]));
    return util::Status::Ok();
  }

  util::Status BareAtom() {
    const char c = input_[pos_];
    // Two-letter organic symbols first (Cl, Br).
    if (pos_ + 1 < input_.size()) {
      std::string two = {c, input_[pos_ + 1]};
      if (two == "Cl" || two == "Br") {
        pos_ += 2;
        return AttachAtom(SymbolTable().at(two), false);
      }
    }
    const bool aromatic = std::islower(static_cast<unsigned char>(c));
    std::string symbol(1, static_cast<char>(
                              std::toupper(static_cast<unsigned char>(c))));
    if (aromatic && symbol != "B" && symbol != "C" && symbol != "N" &&
        symbol != "O" && symbol != "P" && symbol != "S") {
      return Error(util::StrPrintf("invalid aromatic atom '%c'", c));
    }
    auto it = SymbolTable().find(symbol);
    if (it == SymbolTable().end() || !IsOrganicSubset(symbol)) {
      return Error(util::StrPrintf(
          "atom '%s' must be written in brackets", symbol.c_str()));
    }
    ++pos_;
    return AttachAtom(it->second, aromatic);
  }

  util::Status BracketAtom() {
    const size_t close = input_.find(']', pos_);
    if (close == std::string_view::npos) return Error("unterminated '['");
    std::string_view body = input_.substr(pos_ + 1, close - pos_ - 1);
    size_t i = 0;
    // Optional isotope digits (accepted, ignored).
    while (i < body.size() &&
           std::isdigit(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    if (i >= body.size() ||
        !std::isalpha(static_cast<unsigned char>(body[i]))) {
      return Error("missing atom symbol in brackets");
    }
    const bool aromatic = std::islower(static_cast<unsigned char>(body[i]));
    std::string symbol(1, static_cast<char>(std::toupper(
                              static_cast<unsigned char>(body[i]))));
    ++i;
    // Lowercase letters extend the symbol ("Sb", "Na"); digits extend it
    // only for the synthetic X-series ("X12") — otherwise digits are
    // hydrogen counts.
    while (i < body.size()) {
      const char c = body[i];
      if (std::islower(static_cast<unsigned char>(c)) ||
          (std::isdigit(static_cast<unsigned char>(c)) &&
           symbol[0] == 'X')) {
        symbol += c;
        ++i;
      } else {
        break;
      }
    }
    // Accept and ignore hydrogen counts and charges: H, H2, +, ++, -, -2.
    while (i < body.size()) {
      const char c = body[i];
      if (c == 'H' || c == '+' || c == '-' ||
          std::isdigit(static_cast<unsigned char>(c))) {
        ++i;
      } else {
        return Error(util::StrPrintf(
            "unsupported bracket content '%c'", c));
      }
    }
    auto it = SymbolTable().find(symbol);
    if (it == SymbolTable().end()) {
      return Error(
          util::StrPrintf("unknown atom symbol '%s'", symbol.c_str()));
    }
    pos_ = close + 1;
    return AttachAtom(it->second, aromatic);
  }

  std::string_view input_;
  size_t pos_ = 0;
  Graph graph_;
  std::vector<bool> aromatic_;
  VertexId prev_ = -1;
  Label pending_bond_ = -1;
  std::vector<VertexId> stack_;
  std::map<int, RingBond> open_rings_;
};

// --- Writer.

class Writer {
 public:
  explicit Writer(const Graph& g) : g_(g), visited_(g.num_vertices(), false) {
    GS_CHECK_GT(g.num_vertices(), 0);
    GS_CHECK(g.IsConnected());
    AssignRingNumbers();
  }

  std::string Run() {
    Emit(0, -1);
    return out_;
  }

 private:
  // Walks a DFS once to classify edges; every non-tree edge gets a ring
  // number emitted at both endpoints.
  void AssignRingNumbers() {
    std::vector<bool> seen(g_.num_vertices(), false);
    std::vector<bool> edge_tree(g_.num_edges(), false);
    std::vector<VertexId> order;
    order.push_back(0);
    seen[0] = true;
    // Iterative DFS matching Emit()'s traversal order.
    Classify(0, seen, edge_tree);
    int next_number = 1;
    for (int32_t e = 0; e < g_.num_edges(); ++e) {
      if (!edge_tree[e]) {
        ring_number_[e] = next_number++;
      }
    }
  }

  void Classify(VertexId v, std::vector<bool>& seen,
                std::vector<bool>& edge_tree) {
    for (const graph::AdjEntry& adj : g_.neighbors(v)) {
      if (!seen[adj.to]) {
        seen[adj.to] = true;
        edge_tree[adj.edge_index] = true;
        Classify(adj.to, seen, edge_tree);
      }
    }
  }

  void EmitBond(Label bond) {
    switch (bond) {
      case kSingleBond:
        break;  // implicit
      case kDoubleBond:
        out_ += '=';
        break;
      case kTripleBond:
        out_ += '#';
        break;
      case kAromaticBond:
        out_ += ':';
        break;
      default:
        GS_CHECK(false);
    }
  }

  void EmitAtom(VertexId v) {
    const std::string symbol = AtomSymbol(g_.vertex_label(v));
    if (IsOrganicSubset(symbol)) {
      out_ += symbol;
    } else {
      out_ += '[';
      out_ += symbol;
      out_ += ']';
    }
  }

  void EmitRingNumber(int number) {
    if (number < 10) {
      out_ += static_cast<char>('0' + number);
    } else {
      out_ += '%';
      out_ += static_cast<char>('0' + number / 10);
      out_ += static_cast<char>('0' + number % 10);
    }
  }

  void Emit(VertexId v, Label incoming_bond) {
    if (incoming_bond >= 0) EmitBond(incoming_bond);
    EmitAtom(v);
    visited_[v] = true;
    // Ring-closure digits at this atom (bond symbol at the first
    // occurrence only).
    for (const graph::AdjEntry& adj : g_.neighbors(v)) {
      auto it = ring_number_.find(adj.edge_index);
      if (it == ring_number_.end()) continue;
      if (!ring_opened_.count(it->second)) {
        ring_opened_.insert(it->second);
        EmitBond(adj.label);
      }
      EmitRingNumber(it->second);
    }
    // Tree children: every child but the last goes in parentheses.
    std::vector<const graph::AdjEntry*> children;
    for (const graph::AdjEntry& adj : g_.neighbors(v)) {
      if (!visited_[adj.to] && !ring_number_.count(adj.edge_index)) {
        children.push_back(&adj);
      }
    }
    for (size_t i = 0; i < children.size(); ++i) {
      // A child may have been visited through an earlier sibling only if
      // its edge were a ring bond, which is excluded above.
      GS_CHECK(!visited_[children[i]->to]);
      if (i + 1 < children.size()) {
        out_ += '(';
        Emit(children[i]->to, children[i]->label);
        out_ += ')';
      } else {
        Emit(children[i]->to, children[i]->label);
      }
    }
  }

  const Graph& g_;
  std::vector<bool> visited_;
  std::map<int32_t, int> ring_number_;  // edge index -> ring digit
  std::set<int> ring_opened_;
  std::string out_;
};

}  // namespace

util::Result<Graph> ParseSmiles(std::string_view smiles) {
  Parser parser(util::Trim(smiles));
  return parser.Run();
}

std::string WriteSmiles(const Graph& g) {
  Writer writer(g);
  return writer.Run();
}

util::Result<graph::GraphDatabase> ParseSmilesLines(std::string_view text) {
  graph::GraphDatabase db;
  size_t line_no = 0;
  for (const std::string& raw :
       util::SplitFields(std::string(text), '\n')) {
    ++line_no;
    std::string_view line = util::Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tokens = util::SplitTokens(line);
    auto parsed = ParseSmiles(tokens[0]);
    if (!parsed.ok()) {
      return util::Status::ParseError(util::StrPrintf(
          "line %zu: %s", line_no, parsed.status().message().c_str()));
    }
    Graph g = std::move(parsed).value();
    g.set_id(static_cast<int64_t>(db.size()));
    if (tokens.size() >= 2) {
      auto tag = util::ParseInt(tokens[1]);
      if (!tag.ok()) return tag.status();
      g.set_tag(static_cast<int32_t>(tag.value()));
    }
    if (tokens.size() >= 3) {
      auto id = util::ParseInt(tokens[2]);
      if (!id.ok()) return id.status();
      g.set_id(id.value());
    }
    db.Add(std::move(g));
  }
  return db;
}

std::string WriteSmilesLines(const graph::GraphDatabase& db) {
  std::string out;
  for (const Graph& g : db.graphs()) {
    out += WriteSmiles(g);
    out += util::StrPrintf(" %d %lld\n", g.tag(),
                           static_cast<long long>(g.id()));
  }
  return out;
}

}  // namespace graphsig::data
