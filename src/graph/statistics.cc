#include "graph/statistics.h"

#include <algorithm>
#include <vector>

#include "util/strings.h"

namespace graphsig::graph {

DatabaseStatistics ComputeStatistics(const GraphDatabase& db) {
  DatabaseStatistics stats;
  stats.num_graphs = db.size();
  stats.total_vertices = db.TotalVertices();
  stats.total_edges = db.TotalEdges();
  if (!db.empty()) {
    stats.mean_vertices =
        static_cast<double>(stats.total_vertices) / db.size();
    stats.mean_edges = static_cast<double>(stats.total_edges) / db.size();
  }
  for (const Graph& g : db.graphs()) {
    stats.max_vertices = std::max(stats.max_vertices, g.num_vertices());
    stats.num_tagged_positive += (g.tag() == 1);
  }
  auto vcounts = db.VertexLabelCounts();
  stats.num_vertex_labels = vcounts.size();
  stats.num_edge_labels = db.EdgeLabelCounts().size();
  if (stats.total_vertices > 0) {
    std::vector<int64_t> counts;
    counts.reserve(vcounts.size());
    for (const auto& [label, count] : vcounts) counts.push_back(count);
    std::sort(counts.rbegin(), counts.rend());
    int64_t top5 = 0;
    for (size_t i = 0; i < counts.size() && i < 5; ++i) top5 += counts[i];
    stats.top5_vertex_label_coverage_percent =
        100.0 * static_cast<double>(top5) /
        static_cast<double>(stats.total_vertices);
  }
  return stats;
}

std::string DescribeDatabase(const GraphDatabase& db) {
  const DatabaseStatistics s = ComputeStatistics(db);
  return util::StrPrintf(
      "%zu graphs (%zu positive), %.1f vertices / %.1f edges per graph "
      "(max %d vertices), %zu vertex labels (top-5 cover %.1f%%), "
      "%zu edge labels",
      s.num_graphs, s.num_tagged_positive, s.mean_vertices, s.mean_edges,
      s.max_vertices, s.num_vertex_labels,
      s.top5_vertex_label_coverage_percent, s.num_edge_labels);
}

}  // namespace graphsig::graph
