#ifndef GRAPHSIG_GRAPH_ISOMORPHISM_H_
#define GRAPHSIG_GRAPH_ISOMORPHISM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace graphsig::graph {

// Subgraph isomorphism (monomorphism) for labeled undirected graphs:
// an injective vertex map where every pattern edge maps to a target edge
// with matching vertex and edge labels. This is the FSM notion of
// containment — the target may have extra edges among mapped vertices.
//
// The matcher is VF2-flavored backtracking: pattern vertices are visited
// in a connected order starting from the globally rarest-labeled vertex,
// with label/degree feasibility pruning. Molecule-scale graphs (tens of
// vertices) resolve in microseconds.

// True iff `pattern` occurs in `target`. An empty pattern always matches.
bool IsSubgraphIsomorphic(const Graph& pattern, const Graph& target);

// One embedding if it exists: element k is the target vertex that pattern
// vertex k maps to.
std::optional<std::vector<VertexId>> FindEmbedding(const Graph& pattern,
                                                   const Graph& target);

// Number of distinct embeddings (vertex maps), counted up to `limit`.
uint64_t CountEmbeddings(const Graph& pattern, const Graph& target,
                         uint64_t limit = UINT64_MAX);

// Up to `limit` distinct embeddings; each element maps pattern vertex k
// to a target vertex. Used by the apriori miner's candidate generation.
std::vector<std::vector<VertexId>> FindAllEmbeddings(
    const Graph& pattern, const Graph& target, uint64_t limit = UINT64_MAX);

// Exact isomorphism: equal vertex/edge counts plus a monomorphism.
bool AreIsomorphic(const Graph& a, const Graph& b);

}  // namespace graphsig::graph

#endif  // GRAPHSIG_GRAPH_ISOMORPHISM_H_
