#include "graph/csr.h"

#include <deque>

#include "obs/metrics.h"
#include "util/check.h"

namespace graphsig::graph {

CsrGraph::CsrGraph(const Graph& g) {
  const int32_t n = g.num_vertices();
  labels_ = g.vertex_labels();
  num_edges_ = g.num_edges();
  offsets_.resize(static_cast<size_t>(n) + 1);
  size_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    offsets_[v] = static_cast<int32_t>(total);
    total += g.neighbors(v).size();
  }
  offsets_[n] = static_cast<int32_t>(total);
  entries_.reserve(total);
  for (VertexId v = 0; v < n; ++v) {
    const std::vector<AdjEntry>& adj = g.neighbors(v);
    entries_.insert(entries_.end(), adj.begin(), adj.end());
  }
  static obs::Counter* const builds =
      obs::MetricsRegistry::Global().GetCounter("graph/csr_builds");
  builds->Add(1);
}

Label CsrGraph::EdgeLabelBetween(VertexId u, VertexId v) const {
  if (u < 0 || u >= num_vertices() || v < 0 || v >= num_vertices()) {
    return -1;
  }
  const VertexId a = degree(u) <= degree(v) ? u : v;
  const VertexId b = (a == u) ? v : u;
  for (const AdjEntry& entry : neighbors(a)) {
    if (entry.to == b) return entry.label;
  }
  return -1;
}

std::vector<VertexId> CsrGraph::VerticesWithinRadius(VertexId center,
                                                     int radius) const {
  GS_CHECK_GE(center, 0);
  GS_CHECK_LT(center, num_vertices());
  std::vector<int> dist(static_cast<size_t>(num_vertices()), -1);
  std::vector<VertexId> order;
  std::deque<VertexId> queue;
  dist[center] = 0;
  queue.push_back(center);
  order.push_back(center);
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    if (dist[u] == radius) continue;
    for (const AdjEntry& entry : neighbors(u)) {
      if (dist[entry.to] < 0) {
        dist[entry.to] = dist[u] + 1;
        queue.push_back(entry.to);
        order.push_back(entry.to);
      }
    }
  }
  return order;
}

}  // namespace graphsig::graph
