#ifndef GRAPHSIG_GRAPH_STATISTICS_H_
#define GRAPHSIG_GRAPH_STATISTICS_H_

#include <string>

#include "graph/graph_database.h"

namespace graphsig::graph {

// Summary statistics of a graph database — the numbers the paper's
// Section VI-A reports for its screens (sizes, mean vertices/edges,
// label universe, class balance).
struct DatabaseStatistics {
  size_t num_graphs = 0;
  int64_t total_vertices = 0;
  int64_t total_edges = 0;
  double mean_vertices = 0.0;
  double mean_edges = 0.0;
  int32_t max_vertices = 0;
  size_t num_vertex_labels = 0;
  size_t num_edge_labels = 0;
  size_t num_tagged_positive = 0;  // tag == 1
  double top5_vertex_label_coverage_percent = 0.0;
};

DatabaseStatistics ComputeStatistics(const GraphDatabase& db);

// One-paragraph rendering ("2000 graphs, 25.4 atoms / 27.3 bonds ...").
std::string DescribeDatabase(const GraphDatabase& db);

}  // namespace graphsig::graph

#endif  // GRAPHSIG_GRAPH_STATISTICS_H_
