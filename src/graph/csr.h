#ifndef GRAPHSIG_GRAPH_CSR_H_
#define GRAPHSIG_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace graphsig::graph {

// Immutable compressed-sparse-row adjacency view of one Graph
// (DESIGN.md §14). All half-edges live in one flat array indexed by a
// per-vertex offset table, so the hot traversal loops (VF2 feasibility,
// gSpan rightmost extension, RWR power iteration) walk contiguous memory
// instead of chasing one heap vector per vertex.
//
// The per-vertex neighbor ORDER is copied from the source adjacency
// lists verbatim. That is a correctness requirement, not an
// optimization: RWR accumulates floating point in neighbor order and
// gSpan enumerates extensions in neighbor order, and both must stay
// byte-identical to the adjacency-list implementation.
//
// Construction cost is tallied in the deterministic work counter
// graph/csr_builds.
class CsrGraph {
 public:
  explicit CsrGraph(const Graph& g);

  int32_t num_vertices() const {
    return static_cast<int32_t>(labels_.size());
  }
  int32_t num_edges() const { return num_edges_; }

  Label vertex_label(VertexId v) const { return labels_[v]; }
  const std::vector<Label>& vertex_labels() const { return labels_; }

  std::span<const AdjEntry> neighbors(VertexId v) const {
    return {entries_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }
  int32_t degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  // Label of edge (u, v), or -1 if absent; scans the shorter of the two
  // neighbor spans, same as Graph::EdgeLabelBetween.
  Label EdgeLabelBetween(VertexId u, VertexId v) const;

  // All vertices at hop distance <= radius from `center` (BFS), including
  // `center`, in the same BFS order as Graph::VerticesWithinRadius.
  std::vector<VertexId> VerticesWithinRadius(VertexId center,
                                             int radius) const;

 private:
  std::vector<int32_t> offsets_;  // size num_vertices + 1
  std::vector<AdjEntry> entries_;
  std::vector<Label> labels_;
  int32_t num_edges_ = 0;
};

}  // namespace graphsig::graph

#endif  // GRAPHSIG_GRAPH_CSR_H_
