#include "graph/graph.h"

#include <deque>

#include "util/check.h"
#include "util/strings.h"

namespace graphsig::graph {

VertexId Graph::AddVertex(Label label) {
  vertex_labels_.push_back(label);
  adjacency_.emplace_back();
  return static_cast<VertexId>(vertex_labels_.size() - 1);
}

int32_t Graph::AddEdge(VertexId u, VertexId v, Label label) {
  GS_CHECK_GE(u, 0);
  GS_CHECK_GE(v, 0);
  GS_CHECK_LT(u, num_vertices());
  GS_CHECK_LT(v, num_vertices());
  GS_CHECK_NE(u, v);
  GS_CHECK(!HasEdge(u, v));
  int32_t index = static_cast<int32_t>(edges_.size());
  edges_.push_back({u, v, label});
  adjacency_[u].push_back({v, label, index});
  adjacency_[v].push_back({u, label, index});
  return index;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  return EdgeLabelBetween(u, v) >= 0;
}

Label Graph::EdgeLabelBetween(VertexId u, VertexId v) const {
  if (u < 0 || u >= num_vertices() || v < 0 || v >= num_vertices()) {
    return -1;
  }
  // Scan the shorter adjacency list.
  const VertexId a = degree(u) <= degree(v) ? u : v;
  const VertexId b = (a == u) ? v : u;
  for (const AdjEntry& entry : adjacency_[a]) {
    if (entry.to == b) return entry.label;
  }
  return -1;
}

std::vector<VertexId> Graph::VerticesWithinRadius(VertexId center,
                                                  int radius) const {
  GS_CHECK_GE(center, 0);
  GS_CHECK_LT(center, num_vertices());
  std::vector<int> dist(num_vertices(), -1);
  std::vector<VertexId> order;
  std::deque<VertexId> queue;
  dist[center] = 0;
  queue.push_back(center);
  order.push_back(center);
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    if (dist[u] == radius) continue;
    for (const AdjEntry& entry : adjacency_[u]) {
      if (dist[entry.to] < 0) {
        dist[entry.to] = dist[u] + 1;
        queue.push_back(entry.to);
        order.push_back(entry.to);
      }
    }
  }
  return order;
}

Graph Graph::InducedSubgraph(const std::vector<VertexId>& vertices) const {
  Graph sub(id_);
  sub.set_tag(tag_);
  std::vector<VertexId> map(num_vertices(), -1);
  for (size_t k = 0; k < vertices.size(); ++k) {
    VertexId v = vertices[k];
    GS_CHECK_GE(v, 0);
    GS_CHECK_LT(v, num_vertices());
    GS_CHECK_EQ(map[v], -1);  // distinct
    map[v] = static_cast<VertexId>(k);
    sub.AddVertex(vertex_labels_[v]);
  }
  for (const EdgeRecord& e : edges_) {
    if (map[e.u] >= 0 && map[e.v] >= 0) {
      sub.AddEdge(map[e.u], map[e.v], e.label);
    }
  }
  return sub;
}

bool Graph::IsConnected() const {
  if (num_vertices() == 0) return true;
  std::vector<VertexId> reached = VerticesWithinRadius(0, num_vertices());
  return static_cast<int32_t>(reached.size()) == num_vertices();
}

std::string Graph::ToString() const {
  std::string out = util::StrPrintf("graph id=%lld tag=%d\n",
                                    static_cast<long long>(id_), tag_);
  for (VertexId v = 0; v < num_vertices(); ++v) {
    out += util::StrPrintf("  v %d %d\n", v, vertex_labels_[v]);
  }
  for (const EdgeRecord& e : edges_) {
    out += util::StrPrintf("  e %d %d %d\n", e.u, e.v, e.label);
  }
  return out;
}

}  // namespace graphsig::graph
