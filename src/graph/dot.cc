#include "graph/dot.h"

#include "util/strings.h"

namespace graphsig::graph {

std::string ToDot(
    const Graph& g, const std::string& name,
    const std::function<std::string(Label)>& vertex_label_name,
    const std::function<std::string(Label)>& edge_label_name) {
  auto vname = [&](Label l) {
    return vertex_label_name ? vertex_label_name(l) : std::to_string(l);
  };
  auto ename = [&](Label l) {
    return edge_label_name ? edge_label_name(l) : std::to_string(l);
  };
  std::string out = "graph " + name + " {\n";
  out += "  node [shape=circle];\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out += util::StrPrintf("  n%d [label=\"%s\"];\n", v,
                           vname(g.vertex_label(v)).c_str());
  }
  for (const EdgeRecord& e : g.edges()) {
    out += util::StrPrintf("  n%d -- n%d [label=\"%s\"];\n", e.u, e.v,
                           ename(e.label).c_str());
  }
  out += "}\n";
  return out;
}

}  // namespace graphsig::graph
