#ifndef GRAPHSIG_GRAPH_DOT_H_
#define GRAPHSIG_GRAPH_DOT_H_

#include <functional>
#include <string>

#include "graph/graph.h"

namespace graphsig::graph {

// Graphviz DOT rendering of one graph, for inspecting mined patterns
// ("dot -Tpng pattern.dot"). Label printers default to the numeric ids;
// callers pass e.g. data::AtomSymbol / data::BondSymbol for chemistry.
std::string ToDot(
    const Graph& g, const std::string& name = "g",
    const std::function<std::string(Label)>& vertex_label_name = nullptr,
    const std::function<std::string(Label)>& edge_label_name = nullptr);

}  // namespace graphsig::graph

#endif  // GRAPHSIG_GRAPH_DOT_H_
