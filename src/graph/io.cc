#include "graph/io.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace graphsig::graph {

namespace {

bool LooksNumeric(const std::string& token) {
  if (token.empty()) return false;
  size_t i = (token[0] == '-') ? 1 : 0;
  if (i == token.size()) return false;
  for (; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) return false;
  }
  return true;
}

// Resolves a label token to an id: numeric tokens parse directly,
// symbolic tokens intern through `dict`.
util::Result<Label> ResolveLabel(const std::string& token,
                                 LabelDictionary* dict, int line_no) {
  if (LooksNumeric(token)) {
    auto parsed = util::ParseInt(token);
    if (!parsed.ok()) return parsed.status();
    return static_cast<Label>(parsed.value());
  }
  if (dict == nullptr) {
    return util::Status::ParseError(util::StrPrintf(
        "line %d: symbolic label '%s' but no dictionary supplied", line_no,
        token.c_str()));
  }
  return dict->Intern(token);
}

}  // namespace

Label LabelDictionary::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  Label id = static_cast<Label>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

std::optional<Label> LabelDictionary::Find(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& LabelDictionary::Name(Label id) const {
  GS_CHECK(Contains(id));
  return names_[id];
}

util::Result<GraphDatabase> ParseGSpanText(std::string_view text,
                                           LabelDictionary* vertex_dict,
                                           LabelDictionary* edge_dict) {
  GraphDatabase db;
  Graph current;
  bool in_graph = false;
  int line_no = 0;

  auto flush = [&]() {
    if (in_graph) db.Add(std::move(current));
    current = Graph();
    in_graph = false;
  };

  std::string text_copy(text);
  std::istringstream stream(text_copy);
  std::string line;
  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> tokens = util::SplitTokens(trimmed);
    const std::string& kind = tokens[0];

    if (kind == "t") {
      // "t # <id> [tag]"
      if (tokens.size() < 3 || tokens[1] != "#") {
        return util::Status::ParseError(
            util::StrPrintf("line %d: malformed 't' line", line_no));
      }
      flush();
      auto id = util::ParseInt(tokens[2]);
      if (!id.ok()) return id.status();
      current.set_id(id.value());
      if (tokens.size() >= 4) {
        auto tag = util::ParseInt(tokens[3]);
        if (!tag.ok()) return tag.status();
        current.set_tag(static_cast<int32_t>(tag.value()));
      }
      in_graph = true;
    } else if (kind == "v") {
      if (!in_graph) {
        return util::Status::ParseError(
            util::StrPrintf("line %d: 'v' before any 't'", line_no));
      }
      if (tokens.size() != 3) {
        return util::Status::ParseError(
            util::StrPrintf("line %d: malformed 'v' line", line_no));
      }
      auto vid = util::ParseInt(tokens[1]);
      if (!vid.ok()) return vid.status();
      if (vid.value() != current.num_vertices()) {
        return util::Status::ParseError(util::StrPrintf(
            "line %d: vertex ids must be dense ascending (got %lld, "
            "expected %d)",
            line_no, static_cast<long long>(vid.value()),
            current.num_vertices()));
      }
      auto label = ResolveLabel(tokens[2], vertex_dict, line_no);
      if (!label.ok()) return label.status();
      current.AddVertex(label.value());
    } else if (kind == "e") {
      if (!in_graph) {
        return util::Status::ParseError(
            util::StrPrintf("line %d: 'e' before any 't'", line_no));
      }
      if (tokens.size() != 4) {
        return util::Status::ParseError(
            util::StrPrintf("line %d: malformed 'e' line", line_no));
      }
      auto u = util::ParseInt(tokens[1]);
      auto v = util::ParseInt(tokens[2]);
      if (!u.ok()) return u.status();
      if (!v.ok()) return v.status();
      auto label = ResolveLabel(tokens[3], edge_dict, line_no);
      if (!label.ok()) return label.status();
      if (u.value() < 0 || u.value() >= current.num_vertices() ||
          v.value() < 0 || v.value() >= current.num_vertices()) {
        return util::Status::ParseError(util::StrPrintf(
            "line %d: edge endpoint out of range", line_no));
      }
      if (u.value() == v.value()) {
        return util::Status::ParseError(
            util::StrPrintf("line %d: self-loop rejected", line_no));
      }
      VertexId uu = static_cast<VertexId>(u.value());
      VertexId vv = static_cast<VertexId>(v.value());
      if (current.HasEdge(uu, vv)) {
        return util::Status::ParseError(
            util::StrPrintf("line %d: duplicate edge rejected", line_no));
      }
      current.AddEdge(uu, vv, label.value());
    } else {
      return util::Status::ParseError(util::StrPrintf(
          "line %d: unknown record type '%s'", line_no, kind.c_str()));
    }
  }
  flush();
  return db;
}

util::Result<GraphDatabase> ReadGSpanFile(const std::string& path,
                                          LabelDictionary* vertex_dict,
                                          LabelDictionary* edge_dict) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseGSpanText(buffer.str(), vertex_dict, edge_dict);
}

void WriteGSpanText(const GraphDatabase& db, std::ostream& os,
                    const LabelDictionary* vertex_dict,
                    const LabelDictionary* edge_dict) {
  auto vertex_label_name = [&](Label l) -> std::string {
    if (vertex_dict != nullptr && vertex_dict->Contains(l)) {
      return vertex_dict->Name(l);
    }
    return std::to_string(l);
  };
  auto edge_label_name = [&](Label l) -> std::string {
    if (edge_dict != nullptr && edge_dict->Contains(l)) {
      return edge_dict->Name(l);
    }
    return std::to_string(l);
  };
  for (size_t i = 0; i < db.size(); ++i) {
    const Graph& g = db.graph(i);
    os << "t # " << g.id();
    if (g.tag() != 0) os << ' ' << g.tag();
    os << '\n';
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      os << "v " << v << ' ' << vertex_label_name(g.vertex_label(v)) << '\n';
    }
    for (const EdgeRecord& e : g.edges()) {
      os << "e " << e.u << ' ' << e.v << ' ' << edge_label_name(e.label)
         << '\n';
    }
  }
}

util::Status WriteGSpanFile(const GraphDatabase& db, const std::string& path,
                            const LabelDictionary* vertex_dict,
                            const LabelDictionary* edge_dict) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open file: " + path);
  WriteGSpanText(db, out, vertex_dict, edge_dict);
  // Flush before checking: a short write can sit in the stream buffer
  // and only fail at close, which the destructor would swallow.
  out.flush();
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

}  // namespace graphsig::graph
