#ifndef GRAPHSIG_GRAPH_IO_H_
#define GRAPHSIG_GRAPH_IO_H_

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/graph_database.h"
#include "util/status.h"

namespace graphsig::graph {

// Interns symbolic labels ("C", "N", "aromatic") to dense integer ids so
// the core structures stay numeric. Separate dictionaries are used for
// vertex and edge labels.
class LabelDictionary {
 public:
  // Returns the id of `name`, creating it if new.
  Label Intern(const std::string& name);
  // Returns the id of `name` if present.
  std::optional<Label> Find(const std::string& name) const;
  // Name for an interned id; aborts on unknown ids.
  const std::string& Name(Label id) const;
  bool Contains(Label id) const {
    return id >= 0 && static_cast<size_t>(id) < names_.size();
  }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Label> ids_;
};

// Parses the line-oriented gSpan transaction format:
//
//   t # <graph-id> [tag]
//   v <vertex-id> <label>
//   e <u> <v> <label>
//
// Vertex ids must be dense and ascending within each graph. Labels may be
// integers or symbols; symbols are interned through the dictionaries
// (which must then be non-null). Lines starting with '#' and blank lines
// are ignored.
util::Result<GraphDatabase> ParseGSpanText(std::string_view text,
                                           LabelDictionary* vertex_dict,
                                           LabelDictionary* edge_dict);

util::Result<GraphDatabase> ReadGSpanFile(const std::string& path,
                                          LabelDictionary* vertex_dict,
                                          LabelDictionary* edge_dict);

// Writes the same format. If dictionaries are given, labels are written
// symbolically; otherwise numerically. Tags are written when non-zero.
void WriteGSpanText(const GraphDatabase& db, std::ostream& os,
                    const LabelDictionary* vertex_dict = nullptr,
                    const LabelDictionary* edge_dict = nullptr);

util::Status WriteGSpanFile(const GraphDatabase& db, const std::string& path,
                            const LabelDictionary* vertex_dict = nullptr,
                            const LabelDictionary* edge_dict = nullptr);

}  // namespace graphsig::graph

#endif  // GRAPHSIG_GRAPH_IO_H_
