#ifndef GRAPHSIG_GRAPH_GRAPH_H_
#define GRAPHSIG_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace graphsig::graph {

// Vertex index within one graph.
using VertexId = int32_t;
// Integer label for a vertex (atom type) or edge (bond type). Symbolic
// labels are mapped to these through io::LabelDictionary.
using Label = int32_t;

// Half-edge stored in an adjacency list.
struct AdjEntry {
  VertexId to;
  Label label;
  int32_t edge_index;  // index into Graph's flat edge list

  friend bool operator==(const AdjEntry& a, const AdjEntry& b) = default;
};

// Full edge record in the flat edge list; u < v is not enforced, but each
// undirected edge appears exactly once here.
struct EdgeRecord {
  VertexId u;
  VertexId v;
  Label label;

  friend bool operator==(const EdgeRecord& a, const EdgeRecord& b) = default;
};

// An undirected, vertex- and edge-labeled graph. This is the unit stored
// in a GraphDatabase: one chemical compound, one mined pattern, one cut
// region. Vertices are dense [0, num_vertices). Parallel edges and
// self-loops are rejected (molecule graphs are simple).
class Graph {
 public:
  Graph() = default;
  explicit Graph(int64_t id) : id_(id) {}

  // Identifier within a database (compound id). Not used structurally.
  int64_t id() const { return id_; }
  void set_id(int64_t id) { id_ = id; }

  // Free-form class tag (e.g. 1 = active, 0 = inactive). Defaults to 0.
  int32_t tag() const { return tag_; }
  void set_tag(int32_t tag) { tag_ = tag; }

  // Adds a vertex and returns its id.
  VertexId AddVertex(Label label);

  // Adds an undirected edge; returns its index in edges(). Aborts on
  // self-loops, duplicate edges, or out-of-range endpoints — those are
  // construction bugs, not data conditions (I/O validates before calling).
  int32_t AddEdge(VertexId u, VertexId v, Label label);

  int32_t num_vertices() const {
    return static_cast<int32_t>(vertex_labels_.size());
  }
  int32_t num_edges() const { return static_cast<int32_t>(edges_.size()); }

  Label vertex_label(VertexId v) const { return vertex_labels_[v]; }
  const std::vector<Label>& vertex_labels() const { return vertex_labels_; }

  const std::vector<AdjEntry>& neighbors(VertexId v) const {
    return adjacency_[v];
  }
  int32_t degree(VertexId v) const {
    return static_cast<int32_t>(adjacency_[v].size());
  }

  const std::vector<EdgeRecord>& edges() const { return edges_; }
  const EdgeRecord& edge(int32_t e) const { return edges_[e]; }

  bool HasEdge(VertexId u, VertexId v) const;
  // Label of edge (u, v), or -1 if absent.
  Label EdgeLabelBetween(VertexId u, VertexId v) const;

  // All vertices at hop distance <= radius from `center` (BFS),
  // including `center` itself, in BFS order.
  std::vector<VertexId> VerticesWithinRadius(VertexId center,
                                             int radius) const;

  // Vertex-induced subgraph. `vertices` must be distinct and in range.
  // The result keeps this graph's id and tag; vertex k of the result
  // corresponds to vertices[k].
  Graph InducedSubgraph(const std::vector<VertexId>& vertices) const;

  // True iff the graph is connected (the empty graph counts as connected).
  bool IsConnected() const;

  // Debug rendering: "v 0 C-ish ... e 0 1 1 ..." with numeric labels.
  std::string ToString() const;

  bool operator==(const Graph& other) const = default;

 private:
  int64_t id_ = -1;
  int32_t tag_ = 0;
  std::vector<Label> vertex_labels_;
  std::vector<std::vector<AdjEntry>> adjacency_;
  std::vector<EdgeRecord> edges_;
};

}  // namespace graphsig::graph

#endif  // GRAPHSIG_GRAPH_GRAPH_H_
