#ifndef GRAPHSIG_GRAPH_GRAPH_DATABASE_H_
#define GRAPHSIG_GRAPH_GRAPH_DATABASE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.h"

namespace graphsig::graph {

// An ordered collection of graphs — the D of the paper. Provides the
// label statistics that feature selection (Fig. 4) and the significance
// priors are computed from.
class GraphDatabase {
 public:
  GraphDatabase() = default;

  void Add(Graph g) { graphs_.push_back(std::move(g)); }
  void Reserve(size_t n) { graphs_.reserve(n); }

  size_t size() const { return graphs_.size(); }
  bool empty() const { return graphs_.empty(); }

  const Graph& graph(size_t i) const { return graphs_[i]; }
  Graph& mutable_graph(size_t i) { return graphs_[i]; }

  const std::vector<Graph>& graphs() const { return graphs_; }

  // Total vertex occurrences per vertex label across the database.
  std::map<Label, int64_t> VertexLabelCounts() const;
  // Total edge occurrences per edge label across the database.
  std::map<Label, int64_t> EdgeLabelCounts() const;

  // Sum of num_vertices over all graphs.
  int64_t TotalVertices() const;
  int64_t TotalEdges() const;

  // Subset by graph index; preserves order of `indices`.
  GraphDatabase Subset(const std::vector<size_t>& indices) const;

  // Graphs whose tag equals `tag` (e.g. the medically active set).
  GraphDatabase FilterByTag(int32_t tag) const;

 private:
  std::vector<Graph> graphs_;
};

}  // namespace graphsig::graph

#endif  // GRAPHSIG_GRAPH_GRAPH_DATABASE_H_
