#include "graph/serialize.h"

#include "util/strings.h"

namespace graphsig::graph {
namespace {

// Per-element lower bounds used to reject absurd counts before looping:
// a count can never exceed remaining_bytes / min_encoded_size, so a
// corrupted length field fails fast instead of driving a huge loop.
constexpr size_t kMinVertexBytes = 4;   // one i32 label
constexpr size_t kMinEdgeBytes = 12;    // u, v, label
constexpr size_t kMinGraphBytes = 20;   // id + tag + two counts

util::Status CountError(const util::ByteReader& reader, const char* what,
                        uint64_t count) {
  return util::Status::ParseError(util::StrPrintf(
      "implausible %s count %llu in %s at offset %zu (%zu bytes remain)",
      what, static_cast<unsigned long long>(count),
      reader.section().c_str(), reader.position(), reader.remaining()));
}

}  // namespace

void EncodeGraph(const Graph& g, util::ByteWriter* writer) {
  writer->WriteI64(g.id());
  writer->WriteI32(g.tag());
  writer->WriteU32(static_cast<uint32_t>(g.num_vertices()));
  for (Label label : g.vertex_labels()) writer->WriteI32(label);
  writer->WriteU32(static_cast<uint32_t>(g.num_edges()));
  for (const EdgeRecord& e : g.edges()) {
    writer->WriteI32(e.u);
    writer->WriteI32(e.v);
    writer->WriteI32(e.label);
  }
}

util::Result<Graph> DecodeGraph(util::ByteReader* reader) {
  int64_t id;
  int32_t tag;
  uint32_t num_vertices, num_edges;
  GS_RETURN_IF_ERROR(reader->ReadI64(&id));
  GS_RETURN_IF_ERROR(reader->ReadI32(&tag));
  GS_RETURN_IF_ERROR(reader->ReadU32(&num_vertices));
  if (num_vertices > reader->remaining() / kMinVertexBytes) {
    return CountError(*reader, "vertex", num_vertices);
  }
  Graph g(id);
  g.set_tag(tag);
  for (uint32_t i = 0; i < num_vertices; ++i) {
    int32_t label;
    GS_RETURN_IF_ERROR(reader->ReadI32(&label));
    g.AddVertex(label);
  }
  GS_RETURN_IF_ERROR(reader->ReadU32(&num_edges));
  if (num_edges > reader->remaining() / kMinEdgeBytes) {
    return CountError(*reader, "edge", num_edges);
  }
  for (uint32_t i = 0; i < num_edges; ++i) {
    int32_t u, v, label;
    GS_RETURN_IF_ERROR(reader->ReadI32(&u));
    GS_RETURN_IF_ERROR(reader->ReadI32(&v));
    GS_RETURN_IF_ERROR(reader->ReadI32(&label));
    // Validate here: Graph::AddEdge treats violations as programmer
    // errors and aborts, but in a decoder they are data conditions.
    if (u < 0 || v < 0 || u >= g.num_vertices() || v >= g.num_vertices()) {
      return util::Status::ParseError(util::StrPrintf(
          "edge (%d, %d) out of range for %d vertices in %s at offset "
          "%zu",
          u, v, g.num_vertices(), reader->section().c_str(),
          reader->position()));
    }
    if (u == v) {
      return util::Status::ParseError(util::StrPrintf(
          "self-loop on vertex %d in %s at offset %zu", u,
          reader->section().c_str(), reader->position()));
    }
    if (g.HasEdge(u, v)) {
      return util::Status::ParseError(util::StrPrintf(
          "duplicate edge (%d, %d) in %s at offset %zu", u, v,
          reader->section().c_str(), reader->position()));
    }
    g.AddEdge(u, v, label);
  }
  return g;
}

void EncodeDatabase(const GraphDatabase& db, util::ByteWriter* writer) {
  writer->WriteU64(db.size());
  for (const Graph& g : db.graphs()) EncodeGraph(g, writer);
}

util::Result<GraphDatabase> DecodeDatabase(util::ByteReader* reader) {
  uint64_t count;
  GS_RETURN_IF_ERROR(reader->ReadU64(&count));
  if (count > reader->remaining() / kMinGraphBytes) {
    return CountError(*reader, "graph", count);
  }
  GraphDatabase db;
  db.Reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    GS_ASSIGN_OR_RETURN(Graph g, DecodeGraph(reader));
    db.Add(std::move(g));
  }
  return db;
}

}  // namespace graphsig::graph
