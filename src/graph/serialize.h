#ifndef GRAPHSIG_GRAPH_SERIALIZE_H_
#define GRAPHSIG_GRAPH_SERIALIZE_H_

// Binary codec for Graph and GraphDatabase, used by the model-artifact
// layer (src/model/).
//
// Canonical serialization order: vertices are written in vertex-id order
// and edges in edge-index (construction) order with endpoints exactly as
// stored, so encoding is a pure function of the in-memory value —
// encoding the same graph twice yields identical bytes, and a decoded
// graph compares operator==-equal to its source (ids, tags, adjacency
// construction order included). Decoding validates structure (endpoint
// range, self-loops, duplicate edges) and returns util::Status on
// malformed input rather than tripping the Graph invariant checks.

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "util/binary.h"
#include "util/status.h"

namespace graphsig::graph {

// Appends `g` to `writer`.
void EncodeGraph(const Graph& g, util::ByteWriter* writer);

// Decodes one graph written by EncodeGraph.
util::Result<Graph> DecodeGraph(util::ByteReader* reader);

// Appends all graphs of `db` in database order.
void EncodeDatabase(const GraphDatabase& db, util::ByteWriter* writer);

util::Result<GraphDatabase> DecodeDatabase(util::ByteReader* reader);

}  // namespace graphsig::graph

#endif  // GRAPHSIG_GRAPH_SERIALIZE_H_
