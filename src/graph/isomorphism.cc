#include "graph/isomorphism.h"

#include <algorithm>
#include <map>

#include "graph/csr.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace graphsig::graph {
namespace {

// Shared backtracking state for one (pattern, target) match run. Both
// graphs are flattened to CSR up front so the inner feasibility /
// candidate loops walk contiguous half-edge arrays (DESIGN.md §14); the
// visit order, candidate order, and results are unchanged.
class Matcher {
 public:
  Matcher(const Graph& pattern, const Graph& target, uint64_t limit)
      : pattern_(pattern),
        target_(target),
        limit_(limit),
        pattern_to_target_(pattern.num_vertices(), -1),
        target_used_(target.num_vertices(), false) {
    BuildOrder();
  }

  // Runs the search. Returns the number of embeddings found (up to the
  // limit). If `capture` is non-null, the first embedding is stored there.
  // If `collect` is non-null, every embedding found is appended to it.
  uint64_t Run(std::vector<VertexId>* capture,
               std::vector<std::vector<VertexId>>* collect = nullptr) {
    capture_ = capture;
    collect_ = collect;
    found_ = 0;
    if (pattern_.num_vertices() == 0) {
      // Empty pattern: one trivial embedding.
      if (capture_ != nullptr) capture_->clear();
      if (collect_ != nullptr) collect_->emplace_back();
      return 1;
    }
    Extend(0);
    // Deterministic work counter (DESIGN.md §12): the candidate pairs
    // examined depend only on the two graphs, so the tally is
    // byte-identical for any thread count. Flushed once per run.
    static obs::Counter* const feasibility_checks =
        obs::MetricsRegistry::Global().GetCounter(
            "graph/vf2_feasibility_checks");
    feasibility_checks->Add(feasibility_checks_);
    return found_;
  }

 private:
  // Chooses a connected visit order over pattern vertices, seeded at the
  // vertex whose label is rarest in the target (cheapest first branch).
  // Disconnected patterns continue with a fresh rare seed per component.
  void BuildOrder() {
    const int n = pattern_.num_vertices();
    std::map<Label, int> target_label_count;
    for (Label l : target_.vertex_labels()) ++target_label_count[l];
    auto rarity = [&](VertexId v) {
      auto it = target_label_count.find(pattern_.vertex_label(v));
      return it == target_label_count.end() ? 0 : it->second;
    };

    std::vector<bool> placed(n, false);
    order_.reserve(n);
    while (static_cast<int>(order_.size()) < n) {
      // Prefer a frontier vertex (adjacent to placed ones) with max
      // placed-degree, tie-broken by rarity; otherwise seed a component.
      VertexId best = -1;
      int best_attached = -1;
      int best_rarity = INT32_MAX;
      for (VertexId v = 0; v < n; ++v) {
        if (placed[v]) continue;
        int attached = 0;
        for (const AdjEntry& e : pattern_.neighbors(v)) {
          if (placed[e.to]) ++attached;
        }
        if (!order_.empty() && attached == 0) continue;
        int r = rarity(v);
        if (attached > best_attached ||
            (attached == best_attached && r < best_rarity)) {
          best = v;
          best_attached = attached;
          best_rarity = r;
        }
      }
      if (best < 0) {
        // All remaining vertices are in untouched components; seed one.
        for (VertexId v = 0; v < n; ++v) {
          if (!placed[v]) {
            int r = rarity(v);
            if (best < 0 || r < best_rarity) {
              best = v;
              best_rarity = r;
            }
          }
        }
      }
      placed[best] = true;
      order_.push_back(best);
    }
  }

  // Can pattern vertex `pv` map to target vertex `tv` given current map?
  bool Feasible(VertexId pv, VertexId tv) {
    ++feasibility_checks_;
    if (target_used_[tv]) return false;
    if (pattern_.vertex_label(pv) != target_.vertex_label(tv)) return false;
    if (target_.degree(tv) < pattern_.degree(pv)) return false;
    for (const AdjEntry& e : pattern_.neighbors(pv)) {
      VertexId mapped = pattern_to_target_[e.to];
      if (mapped < 0) continue;
      if (target_.EdgeLabelBetween(tv, mapped) != e.label) return false;
    }
    return true;
  }

  void Extend(size_t depth) {
    if (found_ >= limit_) return;
    if (depth == order_.size()) {
      ++found_;
      if (capture_ != nullptr && found_ == 1) {
        *capture_ = pattern_to_target_;
      }
      if (collect_ != nullptr) collect_->push_back(pattern_to_target_);
      return;
    }
    const VertexId pv = order_[depth];

    // Candidate set: neighbors of an already-mapped pattern neighbor, or
    // (for component seeds) all target vertices.
    VertexId anchor_target = -1;
    for (const AdjEntry& e : pattern_.neighbors(pv)) {
      if (pattern_to_target_[e.to] >= 0) {
        anchor_target = pattern_to_target_[e.to];
        break;
      }
    }
    if (anchor_target >= 0) {
      for (const AdjEntry& e : target_.neighbors(anchor_target)) {
        TryMap(pv, e.to, depth);
        if (found_ >= limit_) return;
      }
    } else {
      for (VertexId tv = 0; tv < target_.num_vertices(); ++tv) {
        TryMap(pv, tv, depth);
        if (found_ >= limit_) return;
      }
    }
  }

  void TryMap(VertexId pv, VertexId tv, size_t depth) {
    if (!Feasible(pv, tv)) return;
    pattern_to_target_[pv] = tv;
    target_used_[tv] = true;
    Extend(depth + 1);
    pattern_to_target_[pv] = -1;
    target_used_[tv] = false;
  }

  const CsrGraph pattern_;
  const CsrGraph target_;
  const uint64_t limit_;
  std::vector<VertexId> order_;
  std::vector<VertexId> pattern_to_target_;
  std::vector<bool> target_used_;
  std::vector<VertexId>* capture_ = nullptr;
  std::vector<std::vector<VertexId>>* collect_ = nullptr;
  uint64_t found_ = 0;
  // Local tally, flushed once in Run().
  uint64_t feasibility_checks_ = 0;
};

}  // namespace

bool IsSubgraphIsomorphic(const Graph& pattern, const Graph& target) {
  if (pattern.num_vertices() > target.num_vertices()) return false;
  if (pattern.num_edges() > target.num_edges()) return false;
  Matcher matcher(pattern, target, /*limit=*/1);
  return matcher.Run(nullptr) > 0;
}

std::optional<std::vector<VertexId>> FindEmbedding(const Graph& pattern,
                                                   const Graph& target) {
  if (pattern.num_vertices() > target.num_vertices()) return std::nullopt;
  if (pattern.num_edges() > target.num_edges()) return std::nullopt;
  std::vector<VertexId> embedding;
  Matcher matcher(pattern, target, /*limit=*/1);
  if (matcher.Run(&embedding) == 0) return std::nullopt;
  return embedding;
}

uint64_t CountEmbeddings(const Graph& pattern, const Graph& target,
                         uint64_t limit) {
  if (pattern.num_vertices() > target.num_vertices()) return 0;
  if (pattern.num_edges() > target.num_edges()) return 0;
  Matcher matcher(pattern, target, limit);
  return matcher.Run(nullptr);
}

std::vector<std::vector<VertexId>> FindAllEmbeddings(const Graph& pattern,
                                                     const Graph& target,
                                                     uint64_t limit) {
  std::vector<std::vector<VertexId>> out;
  if (pattern.num_vertices() > target.num_vertices()) return out;
  if (pattern.num_edges() > target.num_edges()) return out;
  Matcher matcher(pattern, target, limit);
  matcher.Run(nullptr, &out);
  return out;
}

bool AreIsomorphic(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_edges() != b.num_edges()) return false;
  return IsSubgraphIsomorphic(a, b);
}

}  // namespace graphsig::graph
