#include "graph/graph_database.h"

#include "util/check.h"

namespace graphsig::graph {

std::map<Label, int64_t> GraphDatabase::VertexLabelCounts() const {
  std::map<Label, int64_t> counts;
  for (const Graph& g : graphs_) {
    for (Label l : g.vertex_labels()) ++counts[l];
  }
  return counts;
}

std::map<Label, int64_t> GraphDatabase::EdgeLabelCounts() const {
  std::map<Label, int64_t> counts;
  for (const Graph& g : graphs_) {
    for (const EdgeRecord& e : g.edges()) ++counts[e.label];
  }
  return counts;
}

int64_t GraphDatabase::TotalVertices() const {
  int64_t total = 0;
  for (const Graph& g : graphs_) total += g.num_vertices();
  return total;
}

int64_t GraphDatabase::TotalEdges() const {
  int64_t total = 0;
  for (const Graph& g : graphs_) total += g.num_edges();
  return total;
}

GraphDatabase GraphDatabase::Subset(const std::vector<size_t>& indices) const {
  GraphDatabase out;
  out.Reserve(indices.size());
  for (size_t i : indices) {
    GS_CHECK_LT(i, graphs_.size());
    out.Add(graphs_[i]);
  }
  return out;
}

GraphDatabase GraphDatabase::FilterByTag(int32_t tag) const {
  GraphDatabase out;
  for (const Graph& g : graphs_) {
    if (g.tag() == tag) out.Add(g);
  }
  return out;
}

}  // namespace graphsig::graph
