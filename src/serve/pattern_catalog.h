#ifndef GRAPHSIG_SERVE_PATTERN_CATALOG_H_
#define GRAPHSIG_SERVE_PATTERN_CATALOG_H_

// The online half of the offline-index/online-query split: PatternCatalog
// loads a model artifact (src/model/) once and then answers per-molecule
// queries — "which significant patterns does this graph contain, and what
// is its k-NN activity score?" — without touching the miner.
//
// Pattern matching is exact subgraph isomorphism, but most catalog
// patterns are rejected before any isomorphism call by two cheap layers:
//   1. an inverted index keyed on each pattern's rarest vertex label
//      (rarest over the indexed database), so a query only considers
//      patterns whose anchor label it actually contains;
//   2. per-pattern signatures — vertex/edge counts, the edge-type
//      multiset (endpoint labels + bond label), and per-vertex-label
//      sorted degree sequences — that must all be dominated by the
//      query's.
// Both layers are necessary conditions for containment, so the matched
// set is identical to brute-force scanning (asserted in serve tests).

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "approx/estimators.h"
#include "classify/sig_knn.h"
#include "graph/graph.h"
#include "model/artifact.h"
#include "util/status.h"
#include "util/sync.h"

namespace graphsig::serve {

struct CatalogQueryConfig {
  // Worker threads for QueryBatch; 0 = util::HardwareThreads().
  int num_threads = 0;
  // Skip the pattern-matching half (score only) or the k-NN score
  // (matches only).
  bool compute_matches = true;
  bool compute_score = true;
};

// One answered query.
struct QueryResult {
  // Indices into catalog() of every pattern contained in the query,
  // ascending.
  std::vector<int32_t> matched_patterns;
  // Distance-weighted k-NN activity score (0 when the artifact has no
  // classifier or compute_score is off).
  double score = 0.0;
  bool has_score = false;
  double latency_ms = 0.0;
  // Pruning telemetry: patterns that reached the isomorphism test vs.
  // patterns rejected by the index/signature layers.
  int32_t iso_calls = 0;
  int32_t pruned = 0;
};

// Latency/throughput summary over a batch (printed by graphsig_query).
struct LatencySummary {
  size_t count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
  double wall_seconds = 0.0;
  double qps = 0.0;
};

// Order statistics over per-query latencies plus throughput against the
// batch wall time. Percentiles use the nearest-rank method.
LatencySummary SummarizeLatencies(std::vector<double> latencies_ms,
                                  double wall_seconds);

// The second query class: a sampling-based estimate (src/approx) over
// the INDEXED DATABASE rather than the pattern catalog. The seed is
// part of the query, so the result is a pure function of (query,
// catalog) just like exact queries.
struct ApproxQueryConfig {
  approx::ApproxMode mode = approx::ApproxMode::kSupport;
  uint64_t seed = 1;
  // Sample draws (kSupport) or walks (kFrequency); capped server-side
  // by kMaxApproxSamplesPerQuery.
  int32_t samples = 256;
  double confidence = 0.95;
  // Estimator-internal parallelism. Server handlers keep this at 1 —
  // under load, concurrency comes from concurrent requests.
  int num_threads = 1;
};

// One request's worth of estimator work is bounded so a single frame
// cannot buy unbounded CPU (mirrors the max-frame-bytes cap).
inline constexpr int32_t kMaxApproxSamplesPerQuery = 1 << 20;

struct ApproxResult {
  approx::ApproxMode mode = approx::ApproxMode::kSupport;
  // Support count (kSupport) or total embedding count (kFrequency).
  double estimate = 0.0;
  approx::ConfidenceInterval ci;
  // Hit samples (kSupport) or completed walks (kFrequency).
  int64_t hits = 0;
  int32_t samples = 0;
  uint64_t db_size = 0;
};

// Cumulative serving telemetry across every Query()/QueryBatch() call on
// one catalog — the counters a long-lived server exports. Snapshot via
// PatternCatalog::stats().
struct ServingStats {
  int64_t queries = 0;
  double total_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  int64_t iso_calls = 0;
  int64_t pruned = 0;
  int64_t pattern_matches = 0;

  double mean_latency_ms() const {
    return queries > 0 ? total_latency_ms / static_cast<double>(queries)
                       : 0.0;
  }
};

class PatternCatalog {
 public:
  // The query-side half of the containment signature: what one graph
  // offers, precomputed once so it can be tested against many pattern
  // signatures (and, for a sharded catalog, against many anchor slices
  // without rebuilding).
  struct QueryProfile {
    int32_t num_vertices = 0;
    int32_t num_edges = 0;
    std::map<std::tuple<graph::Label, graph::Label, graph::Label>, int32_t>
        edge_type_counts;
    std::map<graph::Label, std::vector<int32_t>> degrees_by_label;
  };

  // The match work of one anchor slice: pattern ids that passed the
  // exact isomorphism test (in slice iteration order, NOT sorted) plus
  // how many isomorphism calls the slice cost. Sliced totals sum to the
  // full-index totals because every pattern lives under exactly one
  // anchor label.
  struct AnchorMatches {
    std::vector<int32_t> matched_patterns;
    int32_t iso_calls = 0;
  };

  // Builds the serving indexes from a loaded artifact (moves it in).
  // Fails if the artifact's catalog contains an empty-graph pattern
  // (nothing in the pipeline produces one; treat as corruption).
  static util::Result<PatternCatalog> FromArtifact(
      model::ModelArtifact artifact);
  // LoadArtifact + FromArtifact.
  static util::Result<PatternCatalog> LoadFromFile(const std::string& path);

  static QueryProfile BuildProfile(const graph::Graph& g);

  // Runs the index/signature/isomorphism cascade for the patterns in
  // `anchors` only (any subset of patterns_by_anchor(), e.g. one
  // ShardedCatalog shard). Pure — no counters, no stats; callers
  // aggregate and flush. Thread-safe.
  AnchorMatches MatchAnchors(
      const graph::Graph& query, const QueryProfile& profile,
      const std::map<graph::Label, std::vector<int32_t>>& anchors) const;

  // Distance-weighted k-NN activity score. Requires has_classifier().
  double ClassifierScore(const graph::Graph& query) const {
    return classifier_.Score(query);
  }

  // Folds one finished query into the cumulative ServingStats (the
  // mutex-guarded aggregate Snapshot() reads). ShardedCatalog calls
  // this from its merge step so sharded and unsharded serving report
  // through one set of totals.
  void AggregateServingStats(const QueryResult& result) const;

  // Answers one query. Thread-safe: the catalog is immutable after
  // construction.
  QueryResult Query(const graph::Graph& query,
                    const CatalogQueryConfig& config = {}) const;

  // Answers a batch in parallel (util::ParallelFor over queries, which
  // fans out on the persistent global ThreadPool — back-to-back batches
  // pay no thread spawn/join cost). Results are positionally aligned
  // with `queries` and identical to serial Query() calls.
  std::vector<QueryResult> QueryBatch(
      const std::vector<graph::Graph>& queries,
      const CatalogQueryConfig& config = {}) const;

  // Answers one approximate query (the wire's ApproxQuery class) over
  // the indexed database. Deterministic for a fixed config; increments
  // the serve/approx_queries work counter on success. Thread-safe.
  util::Result<ApproxResult> ApproxQuery(
      const graph::Graph& pattern, const ApproxQueryConfig& config) const;

  // Atomic snapshot of the cumulative counters: one lock acquisition
  // copies the whole aggregate set, so a reader interleaving with
  // concurrent Query() writers can never observe a torn mix (e.g. a new
  // `queries` count with an old `total_latency_ms`). Both the
  // graphsig_query exit summary and the server's Stats RPC read through
  // this.
  ServingStats Snapshot() const;
  void ResetStats() const;

  size_t num_patterns() const { return artifact_.catalog.size(); }
  bool has_classifier() const { return !artifact_.classifier.empty(); }
  // Ingest-log generation the artifact was mined at; 0 for batch
  // (non-streaming) artifacts. Reported by the server's Stats RPC so
  // clients can observe catalog hot-swaps.
  uint64_t generation() const { return artifact_.generation; }
  const std::vector<core::SignificantSubgraph>& catalog() const {
    return artifact_.catalog;
  }
  const model::ModelArtifact& artifact() const { return artifact_; }
  // The full anchor index — what ShardedCatalog partitions.
  const std::map<graph::Label, std::vector<int32_t>>& patterns_by_anchor()
      const {
    return patterns_by_anchor_;
  }

 private:
  PatternCatalog() = default;

  // An edge type: endpoint labels normalized a <= b, plus the edge
  // label.
  using EdgeTypeKey = std::tuple<graph::Label, graph::Label, graph::Label>;

  // Monotone containment signature of one catalog pattern: every field
  // of a contained pattern is dominated by the corresponding field of
  // the containing graph. A monomorphism maps each pattern vertex to a
  // same-labeled query vertex of >= degree and each pattern edge to a
  // distinct query edge of the same type, so label-wise descending
  // degree sequences and edge-type counts must all be dominated.
  struct PatternSignature {
    int32_t num_vertices = 0;
    int32_t num_edges = 0;
    // (edge type, count), ascending by type.
    std::vector<std::pair<EdgeTypeKey, int32_t>> edge_type_counts;
    // Per vertex label, the degrees of that label's vertices sorted
    // descending; ascending by label.
    std::vector<std::pair<graph::Label, std::vector<int32_t>>>
        degrees_by_label;
  };

  static PatternSignature BuildSignature(const graph::Graph& g);
  static bool SignatureDominated(const PatternSignature& pattern,
                                 const QueryProfile& query);

  // Heap-allocated so PatternCatalog stays movable (util::Mutex is not);
  // concurrent QueryBatch workers all aggregate into this one object.
  struct Counters {
    mutable util::Mutex mutex;
    ServingStats stats GS_GUARDED_BY(mutex);
  };

  model::ModelArtifact artifact_;
  classify::GraphSigClassifier classifier_;
  std::vector<PatternSignature> signatures_;
  // Inverted index: anchor label (the pattern's rarest vertex label in
  // the indexed database) -> catalog indices, ascending.
  std::map<graph::Label, std::vector<int32_t>> patterns_by_anchor_;
  std::shared_ptr<Counters> counters_ = std::make_shared<Counters>();
};

}  // namespace graphsig::serve

#endif  // GRAPHSIG_SERVE_PATTERN_CATALOG_H_
