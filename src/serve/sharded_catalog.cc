#include "serve/sharded_catalog.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace graphsig::serve {

ShardedCatalog::ShardedCatalog(
    std::shared_ptr<const PatternCatalog> catalog, int num_shards)
    : catalog_(std::move(catalog)) {
  GS_CHECK(catalog_ != nullptr);
  if (num_shards < 1) num_shards = 1;
  shards_.resize(static_cast<size_t>(num_shards));

  // Deterministic greedy balance: anchors by descending pattern count
  // (ties: ascending label) onto the least-loaded shard (ties: lowest
  // index). Sorting by weight first keeps a heavy-tailed anchor
  // distribution from stacking the big anchors on one shard, and every
  // tie-break is total, so the partition is a pure function of
  // (catalog, num_shards).
  std::vector<std::pair<graph::Label, const std::vector<int32_t>*>> anchors;
  anchors.reserve(catalog_->patterns_by_anchor().size());
  for (const auto& [label, patterns] : catalog_->patterns_by_anchor()) {
    anchors.emplace_back(label, &patterns);
  }
  std::sort(anchors.begin(), anchors.end(),
            [](const auto& a, const auto& b) {
              if (a.second->size() != b.second->size()) {
                return a.second->size() > b.second->size();
              }
              return a.first < b.first;
            });
  for (const auto& [label, patterns] : anchors) {
    size_t target = 0;
    for (size_t s = 1; s < shards_.size(); ++s) {
      if (shards_[s].num_patterns < shards_[target].num_patterns) target = s;
    }
    shards_[target].patterns_by_anchor.emplace(label, *patterns);
    shards_[target].num_patterns += patterns->size();
  }

  // Topology gauge: advisory by construction (its value depends on the
  // deployment's --shards, which must never leak into the
  // byte-compared deterministic sections).
  obs::MetricsRegistry::Global().GetGauge("serve/shards")
      ->Set(static_cast<int64_t>(shards_.size()));
}

QueryResult ShardedCatalog::Query(const graph::Graph& query,
                                  const CatalogQueryConfig& config) const {
  util::WallTimer timer;
  QueryResult result;
  if (config.compute_matches && catalog_->num_patterns() > 0) {
    const PatternCatalog::QueryProfile profile =
        PatternCatalog::BuildProfile(query);
    // Slot-owned slices: shard s writes slices[s] and nothing else, so
    // the fan-out is race-free and the merge below reads a fully
    // deterministic vector whatever the scheduling.
    std::vector<PatternCatalog::AnchorMatches> slices(shards_.size());
    auto run_slice = [&](size_t s) {
      slices[s] = catalog_->MatchAnchors(query, profile,
                                         shards_[s].patterns_by_anchor);
      // Per-shard flush of the per-shard work. The slices partition the
      // pattern set, so these partial sums total exactly what one
      // unsharded pass flushes — the deterministic dump stays
      // byte-identical across shard AND thread counts. The task count
      // itself scales with --shards, so it is advisory.
      auto& registry = obs::MetricsRegistry::Global();
      static obs::Counter* const iso_calls =
          registry.GetCounter("serve/iso_calls");
      static obs::Counter* const matches =
          registry.GetCounter("serve/pattern_matches");
      static obs::Counter* const shard_tasks =
          registry.GetAdvisoryCounter("serve/shard_tasks");
      obs::CounterTally iso_tally(iso_calls);
      obs::CounterTally match_tally(matches);
      iso_tally.Add(static_cast<uint64_t>(slices[s].iso_calls));
      match_tally.Add(slices[s].matched_patterns.size());
      shard_tasks->Increment();
    };
    const int threads =
        config.num_threads == 0 ? util::HardwareThreads()
                                : config.num_threads;
    util::ParallelFor(threads, shards_.size(), run_slice);

    // Merge in shard-index order; the trailing ascending sort makes the
    // reply independent of the partition entirely.
    size_t total = 0;
    for (const auto& slice : slices) total += slice.matched_patterns.size();
    result.matched_patterns.reserve(total);
    for (const auto& slice : slices) {
      result.iso_calls += slice.iso_calls;
      result.matched_patterns.insert(result.matched_patterns.end(),
                                     slice.matched_patterns.begin(),
                                     slice.matched_patterns.end());
    }
    result.pruned = static_cast<int32_t>(catalog_->num_patterns()) -
                    result.iso_calls;
    std::sort(result.matched_patterns.begin(),
              result.matched_patterns.end());
  }
  if (config.compute_score && catalog_->has_classifier()) {
    result.score = catalog_->ClassifierScore(query);
    result.has_score = true;
  }
  result.latency_ms = timer.ElapsedMillis();
  {
    // The query-level counters flush once at the merge (iso_calls and
    // pattern_matches already flushed per shard) — the same five
    // metric names PatternCatalog::Query writes, with the same totals.
    auto& registry = obs::MetricsRegistry::Global();
    static obs::Counter* const queries =
        registry.GetCounter("serve/queries");
    static obs::Counter* const pruned = registry.GetCounter("serve/pruned");
    static obs::Histogram* const latency_us = registry.GetHistogram(
        "serve/query_latency_us",
        {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000,
         500000});
    queries->Increment();
    pruned->Add(static_cast<uint64_t>(result.pruned));
    latency_us->Observe(static_cast<uint64_t>(result.latency_ms * 1000.0));
  }
  catalog_->AggregateServingStats(result);
  return result;
}

std::vector<QueryResult> ShardedCatalog::QueryBatch(
    const std::vector<graph::Graph>& queries,
    const CatalogQueryConfig& config) const {
  const int threads =
      config.num_threads == 0 ? util::HardwareThreads() : config.num_threads;
  CatalogQueryConfig per_query = config;
  per_query.num_threads = 1;  // concurrency across queries, not shards
  std::vector<QueryResult> results(queries.size());
  util::ParallelFor(threads, queries.size(), [&](size_t i) {
    results[i] = Query(queries[i], per_query);
  });
  return results;
}

}  // namespace graphsig::serve
