#include "serve/pattern_catalog.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/isomorphism.h"
#include "obs/metrics.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "util/timer.h"

namespace graphsig::serve {

LatencySummary SummarizeLatencies(std::vector<double> latencies_ms,
                                  double wall_seconds) {
  LatencySummary summary;
  summary.count = latencies_ms.size();
  summary.wall_seconds = wall_seconds;
  if (latencies_ms.empty()) return summary;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  // Nearest-rank percentile: ceil(p * n) elements at or below the value.
  auto rank = [&](double p) {
    size_t r = static_cast<size_t>(
        std::ceil(p * static_cast<double>(latencies_ms.size())));
    if (r == 0) r = 1;
    return latencies_ms[r - 1];
  };
  summary.p50_ms = rank(0.50);
  summary.p95_ms = rank(0.95);
  summary.max_ms = latencies_ms.back();
  if (wall_seconds > 0.0) {
    summary.qps = static_cast<double>(latencies_ms.size()) / wall_seconds;
  }
  return summary;
}

PatternCatalog::QueryProfile PatternCatalog::BuildProfile(
    const graph::Graph& g) {
  QueryProfile profile;
  profile.num_vertices = g.num_vertices();
  profile.num_edges = g.num_edges();
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    profile.degrees_by_label[g.vertex_label(v)].push_back(g.degree(v));
  }
  for (auto& [label, degrees] : profile.degrees_by_label) {
    std::sort(degrees.begin(), degrees.end(), std::greater<int32_t>());
  }
  for (const graph::EdgeRecord& e : g.edges()) {
    graph::Label a = g.vertex_label(e.u);
    graph::Label b = g.vertex_label(e.v);
    if (a > b) std::swap(a, b);
    ++profile.edge_type_counts[{a, b, e.label}];
  }
  return profile;
}

PatternCatalog::PatternSignature PatternCatalog::BuildSignature(
    const graph::Graph& g) {
  const QueryProfile profile = BuildProfile(g);
  PatternSignature sig;
  sig.num_vertices = profile.num_vertices;
  sig.num_edges = profile.num_edges;
  sig.edge_type_counts.assign(profile.edge_type_counts.begin(),
                              profile.edge_type_counts.end());
  sig.degrees_by_label.assign(profile.degrees_by_label.begin(),
                              profile.degrees_by_label.end());
  return sig;
}

bool PatternCatalog::SignatureDominated(const PatternSignature& pattern,
                                        const QueryProfile& query) {
  if (pattern.num_vertices > query.num_vertices) return false;
  if (pattern.num_edges > query.num_edges) return false;
  for (const auto& [type, count] : pattern.edge_type_counts) {
    auto it = query.edge_type_counts.find(type);
    if (it == query.edge_type_counts.end() || it->second < count) {
      return false;
    }
  }
  for (const auto& [label, degrees] : pattern.degrees_by_label) {
    auto it = query.degrees_by_label.find(label);
    if (it == query.degrees_by_label.end() ||
        it->second.size() < degrees.size()) {
      return false;
    }
    // Both sides sorted descending: a greedy matching exists iff the
    // k-th largest pattern degree fits under the k-th largest query
    // degree for that label.
    for (size_t k = 0; k < degrees.size(); ++k) {
      if (degrees[k] > it->second[k]) return false;
    }
  }
  return true;
}

util::Result<PatternCatalog> PatternCatalog::FromArtifact(
    model::ModelArtifact artifact) {
  PatternCatalog catalog;
  catalog.artifact_ = std::move(artifact);
  if (!catalog.artifact_.classifier.empty()) {
    catalog.classifier_ = classify::GraphSigClassifier::FromModel(
        catalog.artifact_.classifier);
  }

  // Anchor selection ranks labels by database frequency so each pattern
  // is indexed under its most selective label; labels the database never
  // saw rank rarest of all.
  const std::map<graph::Label, int64_t> db_counts =
      catalog.artifact_.database.VertexLabelCounts();
  auto db_count = [&](graph::Label label) -> int64_t {
    auto it = db_counts.find(label);
    return it == db_counts.end() ? 0 : it->second;
  };

  catalog.signatures_.reserve(catalog.artifact_.catalog.size());
  for (size_t i = 0; i < catalog.artifact_.catalog.size(); ++i) {
    const graph::Graph& pattern = catalog.artifact_.catalog[i].subgraph;
    if (pattern.num_vertices() == 0) {
      return util::Status::FailedPrecondition(
          "catalog contains an empty pattern graph");
    }
    catalog.signatures_.push_back(BuildSignature(pattern));
    graph::Label anchor = pattern.vertex_label(0);
    for (graph::VertexId v = 1; v < pattern.num_vertices(); ++v) {
      const graph::Label label = pattern.vertex_label(v);
      if (db_count(label) < db_count(anchor) ||
          (db_count(label) == db_count(anchor) && label < anchor)) {
        anchor = label;
      }
    }
    catalog.patterns_by_anchor_[anchor].push_back(static_cast<int32_t>(i));
  }
  return catalog;
}

util::Result<PatternCatalog> PatternCatalog::LoadFromFile(
    const std::string& path) {
  auto artifact = model::LoadArtifact(path);
  if (!artifact.ok()) return artifact.status();
  return FromArtifact(std::move(artifact).value());
}

PatternCatalog::AnchorMatches PatternCatalog::MatchAnchors(
    const graph::Graph& query, const QueryProfile& profile,
    const std::map<graph::Label, std::vector<int32_t>>& anchors) const {
  AnchorMatches out;
  for (const auto& [label, _] : profile.degrees_by_label) {
    auto it = anchors.find(label);
    if (it == anchors.end()) continue;
    for (int32_t pattern_id : it->second) {
      if (!SignatureDominated(signatures_[pattern_id], profile)) continue;
      ++out.iso_calls;
      if (graph::IsSubgraphIsomorphic(artifact_.catalog[pattern_id].subgraph,
                                      query)) {
        out.matched_patterns.push_back(pattern_id);
      }
    }
  }
  return out;
}

QueryResult PatternCatalog::Query(const graph::Graph& query,
                                  const CatalogQueryConfig& config) const {
  util::WallTimer timer;
  QueryResult result;
  if (config.compute_matches && !signatures_.empty()) {
    const QueryProfile profile = BuildProfile(query);
    AnchorMatches matches = MatchAnchors(query, profile, patterns_by_anchor_);
    result.matched_patterns = std::move(matches.matched_patterns);
    result.iso_calls = matches.iso_calls;
    // Patterns whose anchor label the query lacks count as pruned too:
    // the index skipped them without even touching their signature.
    result.pruned =
        static_cast<int32_t>(signatures_.size()) - result.iso_calls;
    std::sort(result.matched_patterns.begin(),
              result.matched_patterns.end());
  }
  if (config.compute_score && has_classifier()) {
    result.score = classifier_.Score(query);
    result.has_score = true;
  }
  result.latency_ms = timer.ElapsedMillis();
  {
    // Per-query totals are pure functions of (query, catalog), so the
    // registry copies are deterministic work counters; the latency
    // histogram is advisory (DESIGN.md §12). ShardedCatalog flushes the
    // same names from its own fan-out/merge path, so the dumped totals
    // are invariant in the shard count as well as the thread count.
    auto& registry = obs::MetricsRegistry::Global();
    static obs::Counter* const queries =
        registry.GetCounter("serve/queries");
    static obs::Counter* const iso_calls =
        registry.GetCounter("serve/iso_calls");
    static obs::Counter* const pruned = registry.GetCounter("serve/pruned");
    static obs::Counter* const matches =
        registry.GetCounter("serve/pattern_matches");
    static obs::Histogram* const latency_us = registry.GetHistogram(
        "serve/query_latency_us",
        {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000,
         500000});
    queries->Increment();
    iso_calls->Add(static_cast<uint64_t>(result.iso_calls));
    pruned->Add(static_cast<uint64_t>(result.pruned));
    matches->Add(result.matched_patterns.size());
    latency_us->Observe(static_cast<uint64_t>(result.latency_ms * 1000.0));
  }
  AggregateServingStats(result);
  return result;
}

void PatternCatalog::AggregateServingStats(const QueryResult& result) const {
  util::MutexLock lock(&counters_->mutex);
  ServingStats& stats = counters_->stats;
  ++stats.queries;
  stats.total_latency_ms += result.latency_ms;
  stats.max_latency_ms = std::max(stats.max_latency_ms, result.latency_ms);
  stats.iso_calls += result.iso_calls;
  stats.pruned += result.pruned;
  stats.pattern_matches +=
      static_cast<int64_t>(result.matched_patterns.size());
}

util::Result<ApproxResult> PatternCatalog::ApproxQuery(
    const graph::Graph& pattern, const ApproxQueryConfig& config) const {
  if (config.samples > kMaxApproxSamplesPerQuery) {
    return util::Status::InvalidArgument(util::StrPrintf(
        "approx sample count %d exceeds per-query cap %d", config.samples,
        kMaxApproxSamplesPerQuery));
  }
  ApproxResult result;
  result.mode = config.mode;
  result.samples = config.samples;
  result.db_size = artifact_.database.size();
  switch (config.mode) {
    case approx::ApproxMode::kSupport: {
      approx::SupportConfig support;
      support.seed = config.seed;
      support.num_samples = config.samples;
      support.confidence = config.confidence;
      support.num_threads = config.num_threads;
      GS_ASSIGN_OR_RETURN(
          const approx::SupportEstimate estimate,
          approx::EstimateSupport(artifact_.database, pattern, support));
      result.estimate = estimate.support;
      result.ci = estimate.support_ci;
      result.hits = estimate.hits;
      break;
    }
    case approx::ApproxMode::kFrequency: {
      approx::FrequencyConfig frequency;
      frequency.seed = config.seed;
      frequency.num_walks = config.samples;
      frequency.confidence = config.confidence;
      frequency.num_threads = config.num_threads;
      GS_ASSIGN_OR_RETURN(
          const approx::FrequencyEstimate estimate,
          approx::EstimateFrequency(artifact_.database, pattern, frequency));
      result.estimate = estimate.embeddings;
      result.ci = estimate.ci;
      result.hits = estimate.hits;
      break;
    }
  }
  // Only successful estimates count: the smoke script cross-checks this
  // counter against the loadgen's per-class OK totals.
  static obs::Counter* const approx_queries =
      obs::MetricsRegistry::Global().GetCounter("serve/approx_queries");
  approx_queries->Increment();
  return result;
}

ServingStats PatternCatalog::Snapshot() const {
  util::MutexLock lock(&counters_->mutex);
  return counters_->stats;
}

void PatternCatalog::ResetStats() const {
  util::MutexLock lock(&counters_->mutex);
  counters_->stats = ServingStats{};
}

std::vector<QueryResult> PatternCatalog::QueryBatch(
    const std::vector<graph::Graph>& queries,
    const CatalogQueryConfig& config) const {
  const int threads =
      config.num_threads == 0 ? util::HardwareThreads() : config.num_threads;
  std::vector<QueryResult> results(queries.size());
  // Each query writes only its own slot, so the batch is deterministic;
  // the claim loops run on the shared persistent pool.
  util::ParallelFor(threads, queries.size(), [&](size_t i) {
    results[i] = Query(queries[i], config);
  });
  return results;
}

}  // namespace graphsig::serve
