#ifndef GRAPHSIG_SERVE_SHARDED_CATALOG_H_
#define GRAPHSIG_SERVE_SHARDED_CATALOG_H_

// Anchor-sharded view over one immutable PatternCatalog: the serving
// unit the server actually holds (DESIGN.md §17).
//
// The catalog's inverted index assigns every pattern to exactly ONE
// anchor label (its rarest vertex label in the indexed database), so
// partitioning anchors partitions patterns — no pattern is tested
// twice, none is missed, and per-shard match sets are disjoint. A
// query fans out to one MatchAnchors() slice per shard and the merge
// concatenates in shard-index order before the final ascending sort,
// so the reply is byte-identical to the unsharded catalog for any
// shard count and any fan-out width (tests/sharded_catalog_test.cc
// asserts this against shards ∈ {1,2,4,8} × threads ∈ {1,4}).
//
// The partition itself is deterministic: anchors sorted by descending
// pattern count (ties: ascending label) are greedily assigned to the
// least-loaded shard (ties: lowest index). Nothing here assumes the
// chemistry database's label skew — a heavy-tailed anchor
// distribution just lands the heavy anchors on distinct shards first.
//
// Shards hold only index slices; the artifact, signatures, and
// classifier live once in the shared PatternCatalog. That is what
// makes hot reload generation-coherent for free: a new ShardedCatalog
// wraps a new PatternCatalog, and CatalogHandle swaps the whole shard
// set as one shared_ptr — no query can observe shards from two
// generations.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "serve/pattern_catalog.h"
#include "util/status.h"

namespace graphsig::serve {

class ShardedCatalog {
 public:
  // Wraps `catalog` (non-null) into `num_shards` anchor slices;
  // num_shards is clamped to >= 1. Shards may be empty when the
  // catalog has fewer anchors than shards.
  ShardedCatalog(std::shared_ptr<const PatternCatalog> catalog,
                 int num_shards);

  // Answers one query by fanning the shard slices out and merging in
  // shard-index order. config.num_threads > 1 runs slices on the
  // global pool; <= 1 (and the one-shard case) runs them serially on
  // the caller. Replies are byte-identical either way. Thread-safe.
  QueryResult Query(const graph::Graph& query,
                    const CatalogQueryConfig& config = {}) const;

  // Batch counterpart: parallelism is spent across queries (each query
  // walks its shards serially), matching PatternCatalog::QueryBatch's
  // slot-owned determinism.
  std::vector<QueryResult> QueryBatch(
      const std::vector<graph::Graph>& queries,
      const CatalogQueryConfig& config = {}) const;

  // The approx tier estimates over the indexed database, not the
  // pattern index, so it has no shard dimension: straight delegation.
  util::Result<ApproxResult> ApproxQuery(
      const graph::Graph& pattern, const ApproxQueryConfig& config) const {
    return catalog_->ApproxQuery(pattern, config);
  }

  ServingStats Snapshot() const { return catalog_->Snapshot(); }
  void ResetStats() const { catalog_->ResetStats(); }

  size_t num_patterns() const { return catalog_->num_patterns(); }
  bool has_classifier() const { return catalog_->has_classifier(); }
  uint64_t generation() const { return catalog_->generation(); }
  const PatternCatalog& catalog() const { return *catalog_; }

  size_t num_shards() const { return shards_.size(); }
  // Patterns assigned to shard `s` (its anchor slices' total size).
  size_t shard_num_patterns(size_t s) const {
    return shards_[s].num_patterns;
  }
  const std::map<graph::Label, std::vector<int32_t>>& shard_anchors(
      size_t s) const {
    return shards_[s].patterns_by_anchor;
  }

 private:
  struct Shard {
    std::map<graph::Label, std::vector<int32_t>> patterns_by_anchor;
    size_t num_patterns = 0;
  };

  std::shared_ptr<const PatternCatalog> catalog_;
  std::vector<Shard> shards_;
};

}  // namespace graphsig::serve

#endif  // GRAPHSIG_SERVE_SHARDED_CATALOG_H_
