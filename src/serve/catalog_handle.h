#ifndef GRAPHSIG_SERVE_CATALOG_HANDLE_H_
#define GRAPHSIG_SERVE_CATALOG_HANDLE_H_

// Hot-swappable catalog reference for generation-aware serving.
//
// The streaming pipeline re-mines as batches arrive; each mine produces
// a new artifact stamped with its ingest-log generation. A long-lived
// server must switch to the new catalog without dropping in-flight
// queries, so the server holds a CatalogHandle instead of a raw
// catalog pointer:
//
//   * every request handler snapshots Current() exactly once and runs
//     against that immutable catalog for its whole lifetime — a swap
//     mid-request is invisible to it,
//   * Swap() publishes the next generation; the previous catalog stays
//     alive (shared_ptr) until the last in-flight request holding it
//     finishes.
//
// tests/net_test.cc drives a live server through swaps under load (and
// under TSan) asserting zero dropped queries and that Stats reports the
// new generation.

#include <memory>
#include <utility>

#include "serve/pattern_catalog.h"
#include "util/sync.h"

namespace graphsig::serve {

class CatalogHandle {
 public:
  explicit CatalogHandle(std::shared_ptr<const PatternCatalog> catalog)
      : catalog_(std::move(catalog)) {}

  CatalogHandle(const CatalogHandle&) = delete;
  CatalogHandle& operator=(const CatalogHandle&) = delete;

  // The catalog to serve this request from. Never null.
  std::shared_ptr<const PatternCatalog> Current() const GS_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    return catalog_;
  }

  // Publishes `next` and returns the catalog it replaced. In-flight
  // requests keep their snapshot; new requests see `next`.
  std::shared_ptr<const PatternCatalog> Swap(
      std::shared_ptr<const PatternCatalog> next) GS_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    std::swap(catalog_, next);
    return next;
  }

 private:
  mutable util::Mutex mu_;
  std::shared_ptr<const PatternCatalog> catalog_ GS_GUARDED_BY(mu_);
};

}  // namespace graphsig::serve

#endif  // GRAPHSIG_SERVE_CATALOG_HANDLE_H_
