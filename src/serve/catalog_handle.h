#ifndef GRAPHSIG_SERVE_CATALOG_HANDLE_H_
#define GRAPHSIG_SERVE_CATALOG_HANDLE_H_

// Hot-swappable catalog reference for generation-aware serving.
//
// The streaming pipeline re-mines as batches arrive; each mine produces
// a new artifact stamped with its ingest-log generation. A long-lived
// server must switch to the new catalog without dropping in-flight
// queries, so the server holds a CatalogHandle instead of a raw
// catalog pointer:
//
//   * every request handler snapshots Current() exactly once and runs
//     against that immutable catalog for its whole lifetime — a swap
//     mid-request is invisible to it,
//   * Swap() publishes the next generation; the previous catalog stays
//     alive (shared_ptr) until the last in-flight request holding it
//     finishes.
//
// The handle holds a ShardedCatalog — the whole shard set behind ONE
// shared_ptr — so a reload replaces every shard atomically: a request
// that snapshotted generation G fans out over G's shards only, never a
// mix of G and G+1 (DESIGN.md §17). The PatternCatalog overloads wrap
// the catalog as a single shard, keeping unsharded callers unchanged.
//
// tests/net_test.cc drives a live server through swaps under load (and
// under TSan) asserting zero dropped queries and that Stats reports the
// new generation.

#include <memory>
#include <utility>

#include "serve/pattern_catalog.h"
#include "serve/sharded_catalog.h"
#include "util/sync.h"

namespace graphsig::serve {

class CatalogHandle {
 public:
  explicit CatalogHandle(std::shared_ptr<const ShardedCatalog> catalog)
      : catalog_(std::move(catalog)) {}
  // Wraps an unsharded catalog as one shard.
  explicit CatalogHandle(std::shared_ptr<const PatternCatalog> catalog)
      : CatalogHandle(std::make_shared<const ShardedCatalog>(
            std::move(catalog), 1)) {}

  CatalogHandle(const CatalogHandle&) = delete;
  CatalogHandle& operator=(const CatalogHandle&) = delete;

  // The shard set to serve this request from. Never null.
  std::shared_ptr<const ShardedCatalog> Current() const GS_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    return catalog_;
  }

  // Publishes `next` (a complete shard set) and returns the one it
  // replaced. In-flight requests keep their snapshot; new requests see
  // `next`.
  std::shared_ptr<const ShardedCatalog> Swap(
      std::shared_ptr<const ShardedCatalog> next) GS_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    std::swap(catalog_, next);
    return next;
  }
  // Single-shard convenience for unsharded callers and tests.
  std::shared_ptr<const ShardedCatalog> Swap(
      std::shared_ptr<const PatternCatalog> next) GS_EXCLUDES(mu_) {
    return Swap(std::make_shared<const ShardedCatalog>(std::move(next), 1));
  }

 private:
  mutable util::Mutex mu_;
  std::shared_ptr<const ShardedCatalog> catalog_ GS_GUARDED_BY(mu_);
};

}  // namespace graphsig::serve

#endif  // GRAPHSIG_SERVE_CATALOG_HANDLE_H_
