#include "stream/ingest_log.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "graph/serialize.h"
#include "obs/metrics.h"
#include "util/binary.h"
#include "util/strings.h"

namespace graphsig::stream {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::Result;
using util::Status;

constexpr size_t kMagicSize = 8;
constexpr size_t kHeaderSize = kMagicSize + 4;     // magic + version
constexpr size_t kRecordHeaderSize = 4 + 1 + 8;    // crc + type + size
constexpr size_t kMinGraphBytes = 20;  // id + tag + two counts

std::string FrameRecord(LogRecordType type, std::string_view payload) {
  ByteWriter body;
  body.WriteU8(static_cast<uint8_t>(type));
  body.WriteU64(payload.size());
  body.WriteBytes(payload);
  ByteWriter record;
  record.WriteU32(util::Crc32(body.buffer()));
  record.WriteBytes(body.buffer());
  return std::move(record.TakeBuffer());
}

Status DecodeBatchPayload(std::string_view payload, uint64_t expected_gen,
                          LogBatch* out) {
  ByteReader r(payload, "batch record");
  GS_RETURN_IF_ERROR(r.ReadU64(&out->generation));
  if (out->generation != expected_gen) {
    return Status::ParseError(util::StrPrintf(
        "batch generation %llu out of order (expected %llu)",
        static_cast<unsigned long long>(out->generation),
        static_cast<unsigned long long>(expected_gen)));
  }
  uint32_t count;
  GS_RETURN_IF_ERROR(r.ReadU32(&count));
  if (count > r.remaining() / kMinGraphBytes) {
    return Status::ParseError(util::StrPrintf(
        "implausible graph count %u in batch record", count));
  }
  out->graphs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    GS_ASSIGN_OR_RETURN(graph::Graph g, graph::DecodeGraph(&r));
    out->graphs.push_back(std::move(g));
  }
  if (!r.exhausted()) {
    return Status::ParseError(util::StrPrintf(
        "batch record has %zu trailing bytes", r.remaining()));
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeBatchRecord(uint64_t generation,
                              const std::vector<graph::Graph>& graphs) {
  ByteWriter payload;
  payload.WriteU64(generation);
  payload.WriteU32(static_cast<uint32_t>(graphs.size()));
  for (const graph::Graph& g : graphs) graph::EncodeGraph(g, &payload);
  return FrameRecord(LogRecordType::kBatch, payload.buffer());
}

std::string EncodeCheckpointRecord(uint64_t generation,
                                   std::string_view state) {
  ByteWriter payload;
  payload.WriteU64(generation);
  payload.WriteBytes(state);
  return FrameRecord(LogRecordType::kCheckpoint, payload.buffer());
}

Result<IngestLogContents> DecodeIngestLog(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::ParseError(util::StrPrintf(
        "ingest log too short: %zu bytes", bytes.size()));
  }
  if (bytes.substr(0, kMagicSize) !=
      std::string_view(kLogMagic, kMagicSize)) {
    return Status::ParseError("bad magic: not a GraphSig ingest log");
  }
  ByteReader header(bytes, "log header");
  GS_RETURN_IF_ERROR(header.Seek(kMagicSize));
  uint32_t version = 0;
  GS_RETURN_IF_ERROR(header.ReadU32(&version));
  if (version == 0 || version > kLogFormatVersion) {
    return Status::FailedPrecondition(util::StrPrintf(
        "ingest log format version %u unsupported (max %u)", version,
        kLogFormatVersion));
  }

  IngestLogContents contents;
  size_t pos = kHeaderSize;
  while (pos < bytes.size()) {
    // A record that runs past end-of-file is a torn tail from a crashed
    // append: the valid prefix stands. Anything wrong *inside* a fully
    // present record is corruption and fails the whole decode.
    if (bytes.size() - pos < kRecordHeaderSize) {
      contents.torn_tail = true;
      break;
    }
    ByteReader r(bytes, "record header");
    GS_RETURN_IF_ERROR(r.Seek(pos));
    uint32_t stored_crc = 0;
    uint8_t type = 0;
    uint64_t payload_size = 0;
    GS_RETURN_IF_ERROR(r.ReadU32(&stored_crc));
    GS_RETURN_IF_ERROR(r.ReadU8(&type));
    GS_RETURN_IF_ERROR(r.ReadU64(&payload_size));
    if (payload_size > bytes.size() - pos - kRecordHeaderSize) {
      contents.torn_tail = true;
      break;
    }
    const std::string_view body = bytes.substr(
        pos + 4, 1 + 8 + static_cast<size_t>(payload_size));
    const uint32_t actual_crc = util::Crc32(body);
    if (stored_crc != actual_crc) {
      return Status::ParseError(util::StrPrintf(
          "record checksum mismatch at offset %zu: stored %08x, "
          "computed %08x", pos, stored_crc, actual_crc));
    }
    const std::string_view payload =
        body.substr(1 + 8, static_cast<size_t>(payload_size));
    switch (static_cast<LogRecordType>(type)) {
      case LogRecordType::kBatch: {
        LogBatch batch;
        GS_RETURN_IF_ERROR(DecodeBatchPayload(
            payload, contents.batches.size() + 1, &batch));
        contents.batches.push_back(std::move(batch));
        break;
      }
      case LogRecordType::kCheckpoint: {
        ByteReader cp(payload, "checkpoint record");
        uint64_t generation = 0;
        GS_RETURN_IF_ERROR(cp.ReadU64(&generation));
        if (generation == 0 ||
            generation > contents.last_generation()) {
          return Status::ParseError(util::StrPrintf(
              "checkpoint generation %llu exceeds last batch %llu",
              static_cast<unsigned long long>(generation),
              static_cast<unsigned long long>(
                  contents.last_generation())));
        }
        // Last checkpoint wins; earlier ones are superseded.
        contents.checkpoint.assign(payload.substr(8));
        contents.checkpoint_generation = generation;
        break;
      }
      default:
        return Status::ParseError(util::StrPrintf(
            "unknown record type %u at offset %zu", type, pos));
    }
    pos += kRecordHeaderSize + static_cast<size_t>(payload_size);
    contents.valid_bytes = pos;
  }
  if (!contents.torn_tail) contents.valid_bytes = bytes.size();
  if (contents.valid_bytes < kHeaderSize) {
    contents.valid_bytes = kHeaderSize;
  }
  return contents;
}

Result<IngestLog> IngestLog::Open(const std::string& path) {
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      if (!in && !in.eof()) {
        return Status::IoError("read failed: " + path);
      }
      bytes = buffer.str();
    }
  }
  if (bytes.empty()) {
    // Fresh log: write the header.
    ByteWriter w;
    w.WriteBytes(std::string_view(kLogMagic, kMagicSize));
    w.WriteU32(kLogFormatVersion);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot create: " + path);
    out.write(w.buffer().data(),
              static_cast<std::streamsize>(w.size()));
    out.flush();
    if (!out) return Status::IoError("write failed: " + path);
    return IngestLog(path, IngestLogContents{.valid_bytes = kHeaderSize});
  }
  GS_ASSIGN_OR_RETURN(IngestLogContents contents, DecodeIngestLog(bytes));
  if (contents.torn_tail) {
    // Truncate the partial record so the next append starts clean.
    auto& registry = obs::MetricsRegistry::Global();
    static obs::Counter* const torn =
        registry.GetCounter("stream/log_torn_tails");
    torn->Add(1);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot truncate: " + path);
    out.write(bytes.data(),
              static_cast<std::streamsize>(contents.valid_bytes));
    out.flush();
    if (!out) return Status::IoError("truncate failed: " + path);
    contents.torn_tail = false;
  }
  return IngestLog(path, std::move(contents));
}

Status IngestLog::AppendRecord(std::string_view record) {
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) return Status::IoError("cannot open for append: " + path_);
  out.write(record.data(), static_cast<std::streamsize>(record.size()));
  out.flush();
  if (!out) return Status::IoError("append failed: " + path_);
  contents_.valid_bytes += record.size();
  return Status::Ok();
}

Result<uint64_t> IngestLog::AppendBatch(
    const std::vector<graph::Graph>& graphs) {
  const uint64_t generation = last_generation() + 1;
  GS_RETURN_IF_ERROR(AppendRecord(EncodeBatchRecord(generation, graphs)));
  LogBatch batch;
  batch.generation = generation;
  batch.graphs = graphs;
  contents_.batches.push_back(std::move(batch));

  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const batches =
      registry.GetCounter("stream/log_batches");
  static obs::Counter* const graphs_appended =
      registry.GetCounter("stream/log_graphs");
  batches->Add(1);
  graphs_appended->Add(graphs.size());
  return generation;
}

Status IngestLog::AppendCheckpoint(uint64_t generation,
                                   std::string_view state) {
  if (generation == 0 || generation > last_generation()) {
    return Status::InvalidArgument(util::StrPrintf(
        "checkpoint generation %llu not in appended range [1, %llu]",
        static_cast<unsigned long long>(generation),
        static_cast<unsigned long long>(last_generation())));
  }
  GS_RETURN_IF_ERROR(
      AppendRecord(EncodeCheckpointRecord(generation, state)));
  contents_.checkpoint.assign(state);
  contents_.checkpoint_generation = generation;

  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const checkpoints =
      registry.GetCounter("stream/log_checkpoints");
  checkpoints->Add(1);
  return Status::Ok();
}

graph::GraphDatabase IngestLog::ReplayDatabase() const {
  graph::GraphDatabase db;
  size_t total = 0;
  for (const LogBatch& batch : contents_.batches) {
    total += batch.graphs.size();
  }
  db.Reserve(total);
  for (const LogBatch& batch : contents_.batches) {
    for (const graph::Graph& g : batch.graphs) db.Add(g);
  }
  return db;
}

}  // namespace graphsig::stream
