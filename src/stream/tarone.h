#ifndef GRAPHSIG_STREAM_TARONE_H_
#define GRAPHSIG_STREAM_TARONE_H_

// Tarone testability correction for GraphSig's per-vector significance
// test (Tarone 1990; Sugiyama & Borgwardt's significant-subgraph-mining
// formulation, see PAPERS.md).
//
// The problem: FVMine evaluates a whole family of candidate vectors,
// and accepting each at per-comparison level alpha inflates the
// family-wise error rate. Bonferroni divides alpha by the family size
// N, but most members of the family cannot reach significance at any
// outcome: the p-value of a vector x with super-vector probability
// P(x) over m population vectors is bounded below by its testability
// statistic psi(x) = P(x)^m (the tail at the most extreme support,
// m). Untestable members — psi above the threshold — can never produce
// a false positive, so they need no correction budget.
//
// Tarone's threshold: with the family's psis in hand, let
//     m(k) = |{ i : psi_i <= alpha / k }|     (testable at alpha/k)
// and k_T = min{ k >= 1 : m(k) <= k }. Then delta* = alpha / k_T
// controls FWER at alpha, and since k_T <= N it never falls below the
// Bonferroni threshold alpha / N — Tarone's yield dominates
// Bonferroni's (tests/tarone_test.cc calibrates both claims). m(k) is
// non-increasing and k strictly increasing, so m(k) - k crosses zero
// once and k_T falls out of a binary search over sorted psis.
//
// Determinism: Compute() is a pure function of (psis, alpha); callers
// assemble psis in group-label order, so delta* is byte-identical
// across thread counts and across incremental-vs-cold mines.

#include <cstdint>
#include <vector>

namespace graphsig::stream {

struct TaroneResult {
  // Family-wise significance threshold delta* = alpha / k_T. A pattern
  // is reported only when its p-value is <= delta*; delta* <= alpha
  // always holds (k_T >= 1).
  double delta_star = 0.0;
  uint64_t k_tarone = 1;
  uint64_t family_size = 0;  // N: candidates whose psi entered the solve
  uint64_t testable = 0;     // m(k_T): members testable at delta*
};

class TaroneThreshold {
 public:
  // Solves for delta* over one family of testability statistics.
  // Bumps the deterministic stream/tarone_candidates and
  // stream/tarone_testable work counters (equal for incremental and
  // cold mines of the same database by construction).
  static TaroneResult Compute(std::vector<double> psis, double alpha);
};

}  // namespace graphsig::stream

#endif  // GRAPHSIG_STREAM_TARONE_H_
