#ifndef GRAPHSIG_STREAM_MINE_STATE_H_
#define GRAPHSIG_STREAM_MINE_STATE_H_

// The incremental miner's durable cache: everything IncrementalMiner
// (stream/incremental.h) carries between mines, serializable as the
// checkpoint payload of an ingest-log record (DESIGN.md §16).
//
// Each cached unit pairs its *output* with the work-counter delta
// (obs/work_capture.h) its computation emitted. Re-using the unit means
// replaying the delta, which is what keeps an incremental mine's
// counter dump byte-identical to a cold full re-mine.
//
// The state is only valid for one config: `config_fingerprint` encodes
// every GraphSigConfig field that influences output (not num_threads —
// output is thread-invariant by design). A fingerprint mismatch on
// restore discards the state.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/graphsig.h"
#include "features/feature_space.h"
#include "features/feature_vector.h"
#include "fvmine/fvmine.h"
#include "obs/work_capture.h"
#include "util/status.h"

namespace graphsig::stream {

inline constexpr uint32_t kMineStateVersion = 1;

// Cached graph-space mining of one feature-vector candidate (the
// pipeline::MineRegionTask output for candidate `i` of a group).
// Entries are filled lazily — a candidate filtered by delta* in every
// mine so far has never been region-mined — hence the present flag.
struct GroupFsmEntry {
  bool present = false;
  bool filtered = false;  // no common structure (line-13 pruning)
  std::map<std::string, core::SignificantSubgraph> dedup;
  obs::WorkDelta delta;
};

// Cached FVMine of one anchor-label group. Valid while the group's
// member list (node-vector indices) is unchanged — appends that add
// vectors to the group change `members` and invalidate the entry.
struct GroupCacheEntry {
  graph::Label label = -1;
  std::vector<int32_t> members;  // ascending node-vector indices
  // MineLabelGroup output: candidates (supporting lists re-based to
  // node-vector indices) and, in Tarone mode, the psi family.
  std::vector<fvmine::SignificantVector> vectors;
  std::vector<double> psis;
  obs::WorkDelta delta;
  std::vector<GroupFsmEntry> fsm;  // parallel to `vectors`
};

struct MineState {
  std::string config_fingerprint;
  uint64_t generation = 0;
  features::FeatureSpace feature_space;
  // One NodeVector per node of every featurized graph, in database
  // order — indices are stable under append, which is what makes every
  // cache below reusable.
  std::vector<features::NodeVector> node_vectors;
  // Per-graph featurization deltas (rwr/* and csr counters), parallel
  // to the database prefix already featurized.
  std::vector<obs::WorkDelta> featurize_deltas;
  // The ingest generation that introduced each graph (region-cut cache
  // keys, stream/region_cut_cache.h); parallel to featurize_deltas.
  std::vector<uint64_t> graph_generations;
  std::vector<GroupCacheEntry> groups;  // ascending label order
};

// Every output-affecting config field, pipe-separated. Two configs with
// equal fingerprints mine identical artifacts from identical databases.
std::string ConfigFingerprint(const core::GraphSigConfig& config);

std::string EncodeMineState(const MineState& state);

// Hostile-input safe (fuzzed alongside the log decoder): corrupt or
// truncated state comes back as a clean error.
util::Result<MineState> DecodeMineState(std::string_view bytes);

}  // namespace graphsig::stream

#endif  // GRAPHSIG_STREAM_MINE_STATE_H_
