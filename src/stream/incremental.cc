#include "stream/incremental.h"

#include <algorithm>
#include <map>
#include <utility>

#include "core/mine_pipeline.h"
#include "features/rwr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/work_capture.h"
#include "stream/tarone.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace graphsig::stream {
namespace {

using core::pipeline::GroupMineOutput;
using features::NodeVector;
using graph::GraphDatabase;
using graph::Label;

// True iff `prefix` is an exact prefix of `full` — the lineage check:
// cached per-graph generation stamps must agree with the log's.
bool IsPrefix(const std::vector<uint64_t>& prefix,
              const std::vector<uint64_t>& full) {
  return prefix.size() <= full.size() &&
         std::equal(prefix.begin(), prefix.end(), full.begin());
}

}  // namespace

IncrementalMiner::IncrementalMiner(core::GraphSigConfig config)
    : config_(std::move(config)) {
  state_.config_fingerprint = ConfigFingerprint(config_);
}

util::Result<bool> IncrementalMiner::Restore(std::string_view checkpoint) {
  auto decoded = DecodeMineState(checkpoint);
  if (!decoded.ok()) {
    if (decoded.status().code() == util::StatusCode::kFailedPrecondition) {
      return false;  // version from another build: start cold
    }
    return decoded.status();
  }
  if (decoded.value().config_fingerprint != state_.config_fingerprint) {
    return false;  // mined under a different config: start cold
  }
  state_ = std::move(decoded.value());
  return true;
}

core::GraphSigResult IncrementalMiner::Mine(
    const GraphDatabase& db,
    const std::vector<uint64_t>& graph_generations, uint64_t generation,
    IncrementalMineStats* mine_stats) {
  GS_CHECK_EQ(graph_generations.size(), db.size());
  GS_TRACE_SPAN("mine");
  core::GraphSigResult result;
  IncrementalMineStats local_stats;
  IncrementalMineStats& acct = mine_stats ? *mine_stats : local_stats;
  util::WallTimer total_timer;
  util::WallTimer timer;

  // The state is only reusable against the same database lineage,
  // extended append-only.
  if (!IsPrefix(state_.graph_generations, graph_generations)) {
    state_.node_vectors.clear();
    state_.featurize_deltas.clear();
    state_.graph_generations.clear();
    state_.groups.clear();
    state_.feature_space = features::FeatureSpace();
    cut_cache_.Clear();
  }

  // Feature selection is global: an append can change the top-k atom
  // set, which re-shapes every vector. Recompute and compare — a change
  // invalidates vectors and groups, but not region cuts (cuts depend
  // only on graph content).
  features::FeatureSpace space =
      features::FeatureSpace::ForChemicalDatabase(db, config_.top_k_atoms);
  if (!state_.node_vectors.empty() && !(space == state_.feature_space)) {
    state_.node_vectors.clear();
    state_.featurize_deltas.clear();
    state_.groups.clear();
    acct.invalidated_feature_space = true;
  }
  state_.feature_space = space;
  result.feature_space = space;

  // --- incremental featurization -------------------------------------
  // Only graphs appended since the last mine run RWR; earlier graphs
  // replay their captured rwr/* deltas. The features/vectorize span is
  // emitted here with the same calls/work a cold DatabaseToVectors
  // would record.
  {
    GS_TRACE_SPAN_NAMED(vec_span, "features/vectorize");
    for (const obs::WorkDelta& delta : state_.featurize_deltas) {
      obs::ReplayWorkDelta(delta);
    }
    acct.graphs_reused =
        static_cast<int64_t>(state_.featurize_deltas.size());
    const size_t old_graphs = state_.featurize_deltas.size();
    const size_t new_graphs = db.size() - old_graphs;
    std::vector<std::vector<NodeVector>> fresh(new_graphs);
    std::vector<obs::WorkDelta> fresh_deltas(new_graphs);
    util::ParallelFor(config_.num_threads, new_graphs, [&](size_t k) {
      const size_t graph_index = old_graphs + k;
      obs::WorkCapture capture;
      fresh[k] = features::GraphToVectors(
          db.graph(graph_index), static_cast<int32_t>(graph_index),
          state_.feature_space, config_.rwr);
      fresh_deltas[k] = capture.Take();
    });
    for (size_t k = 0; k < new_graphs; ++k) {
      state_.node_vectors.insert(
          state_.node_vectors.end(),
          std::make_move_iterator(fresh[k].begin()),
          std::make_move_iterator(fresh[k].end()));
      state_.featurize_deltas.push_back(std::move(fresh_deltas[k]));
    }
    state_.graph_generations = graph_generations;
    acct.graphs_featurized = static_cast<int64_t>(new_graphs);
    vec_span.AddWork(state_.node_vectors.size());
  }
  result.profile.rwr_seconds = timer.ElapsedSeconds();
  result.stats.num_vectors =
      static_cast<int64_t>(state_.node_vectors.size());

  // --- delta FVMine ----------------------------------------------------
  // Candidate list in (label, DFS) order plus, per candidate, its
  // (group slot, in-group index) for FSM-cache addressing.
  std::vector<std::pair<Label, fvmine::SignificantVector>> significant;
  std::vector<std::pair<size_t, size_t>> origin;  // (group slot, index)
  std::vector<GroupCacheEntry> new_groups;

  timer.Restart();
  if (!state_.node_vectors.empty()) {
    GS_TRACE_SPAN_NAMED(feature_span, "mine/feature");
    const auto groups =
        core::pipeline::GroupByAnchorLabel(state_.node_vectors);
    result.stats.num_groups = static_cast<int64_t>(groups.size());

    // Index the cached groups by label, then decide per group: members
    // unchanged -> reuse output + replay delta; changed (or new label)
    // -> re-mine under capture. A changed member list means the group's
    // priors changed, so nothing downstream of it is reusable.
    std::map<Label, GroupCacheEntry*> cached;
    for (GroupCacheEntry& entry : state_.groups) {
      cached[entry.label] = &entry;
    }
    new_groups.resize(groups.size());
    std::vector<size_t> to_mine;
    for (size_t g = 0; g < groups.size(); ++g) {
      auto it = cached.find(groups[g].first);
      if (it != cached.end() && it->second->members == groups[g].second) {
        new_groups[g] = std::move(*it->second);
        obs::ReplayWorkDelta(new_groups[g].delta);
        ++acct.groups_reused;
      } else {
        to_mine.push_back(g);
      }
    }
    util::ParallelFor(config_.num_threads, to_mine.size(), [&](size_t i) {
      const size_t g = to_mine[i];
      obs::WorkCapture capture;
      GroupMineOutput out = core::pipeline::MineLabelGroup(
          config_, state_.node_vectors, groups[g].second);
      GroupCacheEntry& entry = new_groups[g];
      entry.delta = capture.Take();
      entry.label = groups[g].first;
      entry.members = groups[g].second;
      entry.vectors = std::move(out.vectors);
      entry.psis = std::move(out.psis);
      entry.fsm.assign(entry.vectors.size(), GroupFsmEntry{});
    });
    acct.groups_mined = static_cast<int64_t>(to_mine.size());

    for (size_t g = 0; g < new_groups.size(); ++g) {
      for (size_t c = 0; c < new_groups[g].vectors.size(); ++c) {
        significant.emplace_back(new_groups[g].label,
                                 new_groups[g].vectors[c]);
        origin.emplace_back(g, c);
      }
    }

    if (config_.tarone_alpha > 0.0) {
      std::vector<double> psis;
      for (const GroupCacheEntry& entry : new_groups) {
        psis.insert(psis.end(), entry.psis.begin(), entry.psis.end());
      }
      const TaroneResult tarone =
          TaroneThreshold::Compute(std::move(psis), config_.tarone_alpha);
      size_t kept = 0;
      for (size_t i = 0; i < significant.size(); ++i) {
        if (significant[i].second.p_value <= tarone.delta_star) {
          significant[kept] = std::move(significant[i]);
          origin[kept] = origin[i];
          ++kept;
        }
      }
      result.stats.tarone_filtered_vectors =
          static_cast<int64_t>(significant.size() - kept);
      significant.resize(kept);
      origin.resize(kept);
      result.stats.tarone_delta_star = tarone.delta_star;
      result.stats.tarone_family_size =
          static_cast<int64_t>(tarone.family_size);
    }

    result.stats.num_significant_vectors =
        static_cast<int64_t>(significant.size());
    feature_span.AddWork(significant.size());
  }
  result.profile.feature_seconds = timer.ElapsedSeconds();

  // --- graph-space phase ----------------------------------------------
  util::WallTimer fsm_timer;
  {
    GS_TRACE_SPAN_NAMED(fsm_span, "mine/fsm");
    core::pipeline::RegionPlan plan = core::pipeline::PlanRegionTasks(
        config_, significant, state_.node_vectors);
    result.stats.num_region_requests = plan.num_region_requests;
    result.stats.num_unique_regions = plan.num_unique_regions;

    // Cuts: serve from the generation-keyed cache, compute the misses
    // in parallel (cuts bump no work counters, so skipping recomputes
    // is counter-transparent by construction).
    std::vector<graph::Graph> cuts(plan.cut_owner.size());
    std::vector<RegionCutCache::Key> keys(plan.cut_owner.size());
    std::vector<size_t> missing;
    for (size_t i = 0; i < plan.cut_owner.size(); ++i) {
      const NodeVector& nv = state_.node_vectors[plan.cut_owner[i]];
      keys[i] = RegionCutCache::Key{
          state_.graph_generations[nv.graph_index], nv.graph_index,
          nv.node};
      if (const graph::Graph* hit = cut_cache_.Lookup(keys[i])) {
        cuts[i] = *hit;
        ++acct.cuts_reused;
      } else {
        missing.push_back(i);
      }
    }
    util::ParallelFor(config_.num_threads, missing.size(), [&](size_t m) {
      const size_t i = missing[m];
      const NodeVector& nv = state_.node_vectors[plan.cut_owner[i]];
      cuts[i] = core::pipeline::CutRegion(db.graph(nv.graph_index),
                                          nv.graph_index, nv.node,
                                          config_.cutoff_radius);
    });
    for (size_t i : missing) cut_cache_.Insert(keys[i], cuts[i]);
    acct.cuts_computed = static_cast<int64_t>(missing.size());

    // Region mining: a cached (group, candidate) entry is replayed; the
    // rest mine fresh under capture and land in the cache. A reused
    // group can still have absent entries — delta* may admit candidates
    // this mine that it filtered before.
    std::vector<core::pipeline::RegionTaskOutput> outputs(
        plan.tasks.size());
    std::vector<size_t> to_run;
    for (size_t t = 0; t < plan.tasks.size(); ++t) {
      const auto [g, c] = origin[plan.tasks[t].sv_index];
      GroupFsmEntry& entry = new_groups[g].fsm[c];
      if (entry.present) {
        outputs[t].dedup = entry.dedup;
        outputs[t].filtered = entry.filtered;
        obs::ReplayWorkDelta(entry.delta);
        ++acct.fsm_tasks_replayed;
      } else {
        to_run.push_back(t);
      }
    }
    util::ParallelFor(config_.num_threads, to_run.size(), [&](size_t i) {
      const size_t t = to_run[i];
      const core::pipeline::RegionTask& task = plan.tasks[t];
      const fvmine::SignificantVector& sv =
          significant[task.sv_index].second;
      GraphDatabase regions;
      regions.Reserve(task.chosen.size());
      for (int32_t vector_index : task.chosen) {
        const NodeVector& nv = state_.node_vectors[vector_index];
        regions.Add(cuts[plan.cut_slot.at(
            core::pipeline::RegionCutKey(nv.graph_index, nv.node))]);
      }
      obs::WorkCapture capture;
      outputs[t] = core::pipeline::MineRegionTask(config_, task.label, sv,
                                                  regions);
      const auto [g, c] = origin[task.sv_index];
      GroupFsmEntry& entry = new_groups[g].fsm[c];
      entry.delta = capture.Take();
      entry.present = true;
      entry.filtered = outputs[t].filtered;
      entry.dedup = outputs[t].dedup;
    });
    acct.fsm_tasks_mined = static_cast<int64_t>(to_run.size());

    std::map<std::string, core::SignificantSubgraph> dedup;
    for (size_t t = 0; t < outputs.size(); ++t) {
      core::pipeline::MergeRegionOutput(std::move(outputs[t]), &dedup,
                                        &result.stats);
    }
    result.subgraphs.reserve(dedup.size());
    for (auto& [key, subgraph] : dedup) {
      result.subgraphs.push_back(std::move(subgraph));
    }
    core::pipeline::ComputeDbFrequencies(config_, db, &result.subgraphs);
    core::pipeline::SortBySignificance(&result.subgraphs);
    fsm_span.AddWork(static_cast<uint64_t>(result.stats.num_sets_mined));
  }
  result.profile.fsm_seconds = fsm_timer.ElapsedSeconds();
  result.profile.total_seconds = total_timer.ElapsedSeconds();

  state_.groups = std::move(new_groups);
  state_.generation = generation;

  // Ingest-side accounting: stream/* counters are the documented
  // exception to cold-mine counter equivalence (they only exist on the
  // incremental path). Bumped here, outside any capture frame, so they
  // can never leak into a cached delta.
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const graphs_featurized =
      registry.GetCounter("stream/inc_graphs_featurized");
  static obs::Counter* const graphs_reused =
      registry.GetCounter("stream/inc_graphs_reused");
  static obs::Counter* const groups_mined =
      registry.GetCounter("stream/inc_groups_mined");
  static obs::Counter* const groups_reused =
      registry.GetCounter("stream/inc_groups_reused");
  static obs::Counter* const fsm_mined =
      registry.GetCounter("stream/inc_fsm_mined");
  static obs::Counter* const fsm_replayed =
      registry.GetCounter("stream/inc_fsm_replayed");
  static obs::Counter* const cuts_computed =
      registry.GetCounter("stream/inc_cuts_computed");
  static obs::Counter* const cuts_reused =
      registry.GetCounter("stream/inc_cuts_reused");
  graphs_featurized->Add(static_cast<uint64_t>(acct.graphs_featurized));
  graphs_reused->Add(static_cast<uint64_t>(acct.graphs_reused));
  groups_mined->Add(static_cast<uint64_t>(acct.groups_mined));
  groups_reused->Add(static_cast<uint64_t>(acct.groups_reused));
  fsm_mined->Add(static_cast<uint64_t>(acct.fsm_tasks_mined));
  fsm_replayed->Add(static_cast<uint64_t>(acct.fsm_tasks_replayed));
  cuts_computed->Add(static_cast<uint64_t>(acct.cuts_computed));
  cuts_reused->Add(static_cast<uint64_t>(acct.cuts_reused));
  return result;
}

}  // namespace graphsig::stream
