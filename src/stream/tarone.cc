#include "stream/tarone.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace graphsig::stream {

TaroneResult TaroneThreshold::Compute(std::vector<double> psis,
                                      double alpha) {
  GS_CHECK_GT(alpha, 0.0);
  std::sort(psis.begin(), psis.end());
  const uint64_t n = psis.size();
  const auto testable_at = [&](uint64_t k) {
    const double delta = alpha / static_cast<double>(k);
    return static_cast<uint64_t>(
        std::upper_bound(psis.begin(), psis.end(), delta) - psis.begin());
  };
  // m(k) - k is strictly decreasing, and m(n) <= n trivially, so the
  // smallest k with m(k) <= k sits in [1, max(n, 1)].
  uint64_t lo = 1, hi = std::max<uint64_t>(n, 1);
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (testable_at(mid) <= mid) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  TaroneResult result;
  result.k_tarone = lo;
  result.delta_star = alpha / static_cast<double>(lo);
  result.family_size = n;
  result.testable = testable_at(lo);

  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const candidates =
      registry.GetCounter("stream/tarone_candidates");
  static obs::Counter* const testable =
      registry.GetCounter("stream/tarone_testable");
  candidates->Add(result.family_size);
  testable->Add(result.testable);
  return result;
}

}  // namespace graphsig::stream
