#ifndef GRAPHSIG_STREAM_INCREMENTAL_H_
#define GRAPHSIG_STREAM_INCREMENTAL_H_

// Incremental GraphSig mining over an append-only database
// (DESIGN.md §16).
//
// The miner composes the same pipeline units as core::GraphSig::Mine
// (core/mine_pipeline.h) but carries a MineState between calls:
//
//   * featurization — RWR vectors are computed only for graphs appended
//     since the last mine; earlier graphs replay their captured
//     work-counter deltas,
//   * FVMine — only anchor-label groups whose member lists (and hence
//     priors) changed are re-mined; unchanged groups reuse their cached
//     candidates, psi family, and delta,
//   * region mining — per-candidate FSM outputs are cached keyed by
//     (group, candidate index); region cuts are cached keyed by
//     (generation, graph, node) (stream/region_cut_cache.h).
//
// The headline guarantee, asserted by tests/stream_test.cc: a mine
// after N appends produces an artifact AND a deterministic work-counter
// dump byte-identical to a cold core::GraphSig::Mine of the final
// database, at any thread count. Counter transparency comes from
// obs/work_capture.h — every cached unit replays the exact metric
// contributions its original computation made. The stream/* counters
// this module bumps for its own accounting (cache hits, graphs
// featurized, ...) are ingest-side observability and are the one
// documented exception to that equivalence.
//
// Invalidation: a changed config fingerprint or a restored state whose
// per-graph generation stamps disagree with the log's discards
// everything; a changed feature space (appends shifted the top-k atom
// set) discards vectors and groups but keeps region cuts, which depend
// only on graph content.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/graphsig.h"
#include "graph/graph_database.h"
#include "stream/mine_state.h"
#include "stream/region_cut_cache.h"
#include "util/status.h"

namespace graphsig::stream {

// Per-mine reuse accounting (also exported as stream/* counters).
struct IncrementalMineStats {
  int64_t graphs_featurized = 0;
  int64_t graphs_reused = 0;
  int64_t groups_mined = 0;
  int64_t groups_reused = 0;
  int64_t fsm_tasks_mined = 0;
  int64_t fsm_tasks_replayed = 0;
  int64_t cuts_computed = 0;
  int64_t cuts_reused = 0;
  bool invalidated_feature_space = false;
};

class IncrementalMiner {
 public:
  explicit IncrementalMiner(core::GraphSigConfig config);

  // Restores cached state from a checkpoint (mine_state.h). Returns
  // false — with the miner left cold — when the checkpoint was written
  // under a different config fingerprint or an unsupported version;
  // errors only on corrupt bytes.
  util::Result<bool> Restore(std::string_view checkpoint);

  // Serializes the current state for IngestLog::AppendCheckpoint.
  std::string Checkpoint() const { return EncodeMineState(state_); }

  // Mines the full current database. `graph_generations[i]` is the
  // ingest generation that introduced db graph i (parallel to db);
  // `generation` is the log's last generation and is recorded in the
  // state. The database must extend the one previously mined — same
  // graphs, same order, new ones appended.
  core::GraphSigResult Mine(const graph::GraphDatabase& db,
                            const std::vector<uint64_t>& graph_generations,
                            uint64_t generation,
                            IncrementalMineStats* mine_stats = nullptr);

  const MineState& state() const { return state_; }
  const core::GraphSigConfig& config() const { return config_; }

 private:
  core::GraphSigConfig config_;
  MineState state_;
  RegionCutCache cut_cache_;  // in-memory only, rebuilt on restart
};

}  // namespace graphsig::stream

#endif  // GRAPHSIG_STREAM_INCREMENTAL_H_
