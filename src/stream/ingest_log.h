#ifndef GRAPHSIG_STREAM_INGEST_LOG_H_
#define GRAPHSIG_STREAM_INGEST_LOG_H_

// The append-only ingest log: the durable record of every graph batch
// the streaming pipeline has accepted, plus optional mine-state
// checkpoints (DESIGN.md §16).
//
// File layout (all integers little-endian):
//
//   offset 0  magic "GSIGLOG1" (8 bytes)
//   offset 8  u32 format version (kLogFormatVersion)
//   ...       records, each:
//               u32 CRC-32 of the rest of the record (type + size +
//                   payload)
//               u8  record type
//               u64 payload size
//               payload bytes
//
// Record types:
//   1 (batch):      u64 generation | u32 graph count | graphs
//                   (graph::EncodeGraph each)
//   2 (checkpoint): u64 generation | opaque mine-state bytes
//                   (stream/mine_state.h; the log does not interpret
//                   them)
//
// Generations are assigned by the log: the first batch is generation 1
// and every append increments by one. A decoded log whose batch
// generations are not exactly 1..N in order is corrupt. Checkpoints
// must be stamped with an already-appended generation; the last
// checkpoint in the file wins (earlier ones are superseded and
// skipped).
//
// Torn tails: a crash mid-append leaves a trailing partial record.
// Decoding distinguishes that (not enough bytes left for the record the
// header promises → recoverable, the valid prefix stands) from
// corruption inside a fully-present record (CRC or payload decode
// failure → hard error). IngestLog::Open truncates a torn tail away so
// the next append lands on a clean boundary.
//
// Decoding is fuzzed (fuzz/fuzz_ingest_log.cc): DecodeIngestLog must
// return a clean error on arbitrary hostile input, never crash.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph_database.h"
#include "util/status.h"

namespace graphsig::stream {

inline constexpr char kLogMagic[] = "GSIGLOG1";  // 8 bytes, no terminator
inline constexpr uint32_t kLogFormatVersion = 1;

enum class LogRecordType : uint8_t {
  kBatch = 1,
  kCheckpoint = 2,
};

struct LogBatch {
  uint64_t generation = 0;
  std::vector<graph::Graph> graphs;
};

// Everything a decode pass recovers from a log image.
struct IngestLogContents {
  std::vector<LogBatch> batches;  // generation order, 1..batches.size()
  // Last checkpoint at or before the final batch; empty when none.
  std::string checkpoint;
  uint64_t checkpoint_generation = 0;  // 0 = no checkpoint
  // Byte length of the prefix that parsed cleanly (header + whole
  // records). Shorter than the input iff torn_tail is set.
  size_t valid_bytes = 0;
  bool torn_tail = false;

  uint64_t last_generation() const {
    return batches.empty() ? 0 : batches.back().generation;
  }
};

// Encoders for one record (shared by the log writer and tests).
std::string EncodeBatchRecord(uint64_t generation,
                              const std::vector<graph::Graph>& graphs);
std::string EncodeCheckpointRecord(uint64_t generation,
                                   std::string_view state);

// Decodes a full log image. Hostile-input safe; a trailing partial
// record sets torn_tail instead of failing.
util::Result<IngestLogContents> DecodeIngestLog(std::string_view bytes);

// The durable log. All mutation goes through appends; the in-memory
// contents mirror the file.
class IngestLog {
 public:
  // Opens `path`, creating an empty log if absent. A torn tail is
  // truncated away (and counted in stream/log_torn_tails); any other
  // decode failure is fatal.
  static util::Result<IngestLog> Open(const std::string& path);

  const IngestLogContents& contents() const { return contents_; }
  uint64_t last_generation() const { return contents_.last_generation(); }

  // Appends `graphs` as the next batch and returns its generation.
  util::Result<uint64_t> AppendBatch(
      const std::vector<graph::Graph>& graphs);

  // Appends a checkpoint of the mine state at `generation`, which must
  // be an already-appended generation.
  util::Status AppendCheckpoint(uint64_t generation,
                                std::string_view state);

  // The full database the log describes: every batch's graphs
  // concatenated in generation order.
  graph::GraphDatabase ReplayDatabase() const;

 private:
  IngestLog(std::string path, IngestLogContents contents)
      : path_(std::move(path)), contents_(std::move(contents)) {}

  util::Status AppendRecord(std::string_view record);

  std::string path_;
  IngestLogContents contents_;
};

}  // namespace graphsig::stream

#endif  // GRAPHSIG_STREAM_INGEST_LOG_H_
