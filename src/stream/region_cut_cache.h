#ifndef GRAPHSIG_STREAM_REGION_CUT_CACHE_H_
#define GRAPHSIG_STREAM_REGION_CUT_CACHE_H_

// Generation-keyed cache of region cuts (pipeline::CutRegion outputs)
// for the incremental miner.
//
// A cut is a pure function of (graph content, node, radius), and a
// graph's content never changes once its batch is appended — so the key
// carries the ingest generation that *introduced* the graph, which is
// stable across later appends. The generation component exists for
// lineage safety: state restored against a different log (a rebuilt or
// compacted one whose graph indices mean something else) stamps
// different generations, so its lookups miss instead of serving cuts
// from the wrong database. tests/stream_test.cc asserts the
// stale-generation miss.
//
// Cuts bump no work counters (the cache-accounting counters live in
// pipeline::PlanRegionTasks), so serving a hit is counter-transparent
// by construction: skipping the recompute changes no dump byte.
//
// Not thread-safe: the miner fills it from a serial section and reads
// it from parallel tasks only after filling completes.

#include <cstdint>
#include <map>
#include <tuple>

#include "graph/graph.h"

namespace graphsig::stream {

class RegionCutCache {
 public:
  struct Key {
    uint64_t generation = 0;  // generation that introduced graph_index
    int32_t graph_index = -1;
    graph::VertexId node = -1;

    friend bool operator<(const Key& a, const Key& b) {
      return std::tie(a.generation, a.graph_index, a.node) <
             std::tie(b.generation, b.graph_index, b.node);
    }
  };

  // Null on miss. The pointer is stable until the next Insert/Clear.
  const graph::Graph* Lookup(const Key& key) const {
    auto it = cuts_.find(key);
    return it == cuts_.end() ? nullptr : &it->second;
  }

  // Overwrites any existing entry (idempotent: a recomputed cut is
  // byte-identical to the cached one).
  void Insert(const Key& key, graph::Graph cut) {
    cuts_.insert_or_assign(key, std::move(cut));
  }

  void Clear() { cuts_.clear(); }
  size_t size() const { return cuts_.size(); }

 private:
  std::map<Key, graph::Graph> cuts_;
};

}  // namespace graphsig::stream

#endif  // GRAPHSIG_STREAM_REGION_CUT_CACHE_H_
