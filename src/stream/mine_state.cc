#include "stream/mine_state.h"

#include <utility>

#include "graph/serialize.h"
#include "util/binary.h"
#include "util/strings.h"

namespace graphsig::stream {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::Result;
using util::Status;

Status CountError(const ByteReader& r, const char* what, uint64_t count) {
  return Status::ParseError(util::StrPrintf(
      "implausible %s count %llu in %s at offset %zu", what,
      static_cast<unsigned long long>(count), r.section().c_str(),
      r.position()));
}

// --- field codecs (mirror the model-artifact encodings) ---------------

void EncodeFeatureVec(const features::FeatureVec& vec, ByteWriter* w) {
  w->WriteU32(static_cast<uint32_t>(vec.size()));
  for (int16_t v : vec) w->WriteI16(v);
}

Status DecodeFeatureVec(ByteReader* r, features::FeatureVec* out) {
  uint32_t size;
  GS_RETURN_IF_ERROR(r->ReadU32(&size));
  if (size > r->remaining() / 2) {
    return CountError(*r, "feature-vector", size);
  }
  out->clear();
  out->reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    int16_t v;
    GS_RETURN_IF_ERROR(r->ReadI16(&v));
    out->push_back(v);
  }
  return Status::Ok();
}

void EncodeFeatureSpace(const features::FeatureSpace& space, ByteWriter* w) {
  w->WriteU32(static_cast<uint32_t>(space.num_vertex_features()));
  for (graph::Label label : space.vertex_features()) w->WriteI32(label);
  w->WriteU32(static_cast<uint32_t>(space.num_edge_features()));
  for (const features::EdgeType& e : space.edge_features()) {
    w->WriteI32(e.a);
    w->WriteI32(e.b);
    w->WriteI32(e.edge_label);
  }
}

Status DecodeFeatureSpace(ByteReader* r, features::FeatureSpace* out) {
  uint32_t num_vertex;
  GS_RETURN_IF_ERROR(r->ReadU32(&num_vertex));
  if (num_vertex > r->remaining() / 4) {
    return CountError(*r, "vertex-feature", num_vertex);
  }
  features::FeatureSpace space;
  for (uint32_t i = 0; i < num_vertex; ++i) {
    int32_t label;
    GS_RETURN_IF_ERROR(r->ReadI32(&label));
    space.AddVertexFeature(label);
  }
  uint32_t num_edge;
  GS_RETURN_IF_ERROR(r->ReadU32(&num_edge));
  if (num_edge > r->remaining() / 12) {
    return CountError(*r, "edge-feature", num_edge);
  }
  for (uint32_t i = 0; i < num_edge; ++i) {
    int32_t a, b, edge_label;
    GS_RETURN_IF_ERROR(r->ReadI32(&a));
    GS_RETURN_IF_ERROR(r->ReadI32(&b));
    GS_RETURN_IF_ERROR(r->ReadI32(&edge_label));
    space.AddEdgeFeature(a, b, edge_label);
  }
  if (space.num_vertex_features() != num_vertex ||
      space.num_edge_features() != num_edge) {
    return Status::ParseError("duplicate features in feature space");
  }
  *out = std::move(space);
  return Status::Ok();
}

void EncodeWorkDelta(const obs::WorkDelta& delta, ByteWriter* w) {
  w->WriteU32(static_cast<uint32_t>(delta.counters.size()));
  for (const auto& [name, value] : delta.counters) {
    w->WriteString(name);
    w->WriteU64(value);
  }
  w->WriteU32(static_cast<uint32_t>(delta.spans.size()));
  for (const auto& [path, d] : delta.spans) {
    w->WriteString(path);
    w->WriteU64(d.calls);
    w->WriteU64(d.work);
  }
}

Status DecodeWorkDelta(ByteReader* r, obs::WorkDelta* out) {
  uint32_t num_counters;
  GS_RETURN_IF_ERROR(r->ReadU32(&num_counters));
  if (num_counters > r->remaining() / 16) {
    return CountError(*r, "delta counter", num_counters);
  }
  out->counters.clear();
  out->spans.clear();
  for (uint32_t i = 0; i < num_counters; ++i) {
    std::string name;
    uint64_t value;
    GS_RETURN_IF_ERROR(r->ReadString(&name));
    GS_RETURN_IF_ERROR(r->ReadU64(&value));
    if (!out->counters.emplace(std::move(name), value).second) {
      return Status::ParseError("duplicate counter in work delta");
    }
  }
  uint32_t num_spans;
  GS_RETURN_IF_ERROR(r->ReadU32(&num_spans));
  if (num_spans > r->remaining() / 24) {
    return CountError(*r, "delta span", num_spans);
  }
  for (uint32_t i = 0; i < num_spans; ++i) {
    std::string path;
    obs::SpanDelta d;
    GS_RETURN_IF_ERROR(r->ReadString(&path));
    GS_RETURN_IF_ERROR(r->ReadU64(&d.calls));
    GS_RETURN_IF_ERROR(r->ReadU64(&d.work));
    if (!out->spans.emplace(std::move(path), d).second) {
      return Status::ParseError("duplicate span in work delta");
    }
  }
  return Status::Ok();
}

void EncodeNodeVector(const features::NodeVector& nv, ByteWriter* w) {
  w->WriteI32(nv.graph_index);
  w->WriteI32(nv.node);
  w->WriteI32(nv.node_label);
  EncodeFeatureVec(nv.values, w);
}

Status DecodeNodeVector(ByteReader* r, features::NodeVector* out) {
  GS_RETURN_IF_ERROR(r->ReadI32(&out->graph_index));
  GS_RETURN_IF_ERROR(r->ReadI32(&out->node));
  GS_RETURN_IF_ERROR(r->ReadI32(&out->node_label));
  return DecodeFeatureVec(r, &out->values);
}

void EncodeSignificantVector(const fvmine::SignificantVector& sv,
                             ByteWriter* w) {
  EncodeFeatureVec(sv.vector, w);
  w->WriteU32(static_cast<uint32_t>(sv.supporting.size()));
  for (int32_t idx : sv.supporting) w->WriteI32(idx);
  w->WriteI64(sv.support);
  w->WriteF64(sv.p_value);
}

Status DecodeSignificantVector(ByteReader* r,
                               fvmine::SignificantVector* out) {
  GS_RETURN_IF_ERROR(DecodeFeatureVec(r, &out->vector));
  uint32_t num_supporting;
  GS_RETURN_IF_ERROR(r->ReadU32(&num_supporting));
  if (num_supporting > r->remaining() / 4) {
    return CountError(*r, "supporting-index", num_supporting);
  }
  out->supporting.clear();
  out->supporting.reserve(num_supporting);
  for (uint32_t i = 0; i < num_supporting; ++i) {
    int32_t idx;
    GS_RETURN_IF_ERROR(r->ReadI32(&idx));
    out->supporting.push_back(idx);
  }
  GS_RETURN_IF_ERROR(r->ReadI64(&out->support));
  GS_RETURN_IF_ERROR(r->ReadF64(&out->p_value));
  return Status::Ok();
}

void EncodeSubgraph(const core::SignificantSubgraph& sg, ByteWriter* w) {
  graph::EncodeGraph(sg.subgraph, w);
  EncodeFeatureVec(sg.vector, w);
  w->WriteF64(sg.vector_pvalue);
  w->WriteI64(sg.vector_support);
  w->WriteI32(sg.anchor_label);
  w->WriteI64(sg.set_size);
  w->WriteI64(sg.set_support);
  w->WriteI64(sg.db_frequency);
}

Status DecodeSubgraph(ByteReader* r, core::SignificantSubgraph* out) {
  GS_ASSIGN_OR_RETURN(out->subgraph, graph::DecodeGraph(r));
  GS_RETURN_IF_ERROR(DecodeFeatureVec(r, &out->vector));
  GS_RETURN_IF_ERROR(r->ReadF64(&out->vector_pvalue));
  GS_RETURN_IF_ERROR(r->ReadI64(&out->vector_support));
  GS_RETURN_IF_ERROR(r->ReadI32(&out->anchor_label));
  GS_RETURN_IF_ERROR(r->ReadI64(&out->set_size));
  GS_RETURN_IF_ERROR(r->ReadI64(&out->set_support));
  GS_RETURN_IF_ERROR(r->ReadI64(&out->db_frequency));
  return Status::Ok();
}

void EncodeFsmEntry(const GroupFsmEntry& entry, ByteWriter* w) {
  w->WriteU8(entry.present ? 1 : 0);
  if (!entry.present) return;
  w->WriteU8(entry.filtered ? 1 : 0);
  w->WriteU32(static_cast<uint32_t>(entry.dedup.size()));
  for (const auto& [canonical, sg] : entry.dedup) {
    w->WriteString(canonical);
    EncodeSubgraph(sg, w);
  }
  EncodeWorkDelta(entry.delta, w);
}

Status DecodeFsmEntry(ByteReader* r, GroupFsmEntry* out) {
  uint8_t present;
  GS_RETURN_IF_ERROR(r->ReadU8(&present));
  if (present > 1) return Status::ParseError("bad fsm presence flag");
  out->present = present == 1;
  if (!out->present) return Status::Ok();
  uint8_t filtered;
  GS_RETURN_IF_ERROR(r->ReadU8(&filtered));
  if (filtered > 1) return Status::ParseError("bad fsm filtered flag");
  out->filtered = filtered == 1;
  uint32_t num_patterns;
  GS_RETURN_IF_ERROR(r->ReadU32(&num_patterns));
  if (num_patterns > r->remaining() / 60) {
    return CountError(*r, "fsm pattern", num_patterns);
  }
  for (uint32_t i = 0; i < num_patterns; ++i) {
    std::string canonical;
    core::SignificantSubgraph sg;
    GS_RETURN_IF_ERROR(r->ReadString(&canonical));
    GS_RETURN_IF_ERROR(DecodeSubgraph(r, &sg));
    if (!out->dedup.emplace(std::move(canonical), std::move(sg)).second) {
      return Status::ParseError("duplicate canonical code in fsm entry");
    }
  }
  return DecodeWorkDelta(r, &out->delta);
}

void EncodeGroup(const GroupCacheEntry& group, ByteWriter* w) {
  w->WriteI32(group.label);
  w->WriteU32(static_cast<uint32_t>(group.members.size()));
  for (int32_t idx : group.members) w->WriteI32(idx);
  w->WriteU32(static_cast<uint32_t>(group.vectors.size()));
  for (const fvmine::SignificantVector& sv : group.vectors) {
    EncodeSignificantVector(sv, w);
  }
  w->WriteU32(static_cast<uint32_t>(group.psis.size()));
  for (double psi : group.psis) w->WriteF64(psi);
  EncodeWorkDelta(group.delta, w);
  for (const GroupFsmEntry& entry : group.fsm) EncodeFsmEntry(entry, w);
}

Status DecodeGroup(ByteReader* r, GroupCacheEntry* out) {
  GS_RETURN_IF_ERROR(r->ReadI32(&out->label));
  uint32_t num_members;
  GS_RETURN_IF_ERROR(r->ReadU32(&num_members));
  if (num_members > r->remaining() / 4) {
    return CountError(*r, "group-member", num_members);
  }
  out->members.reserve(num_members);
  for (uint32_t i = 0; i < num_members; ++i) {
    int32_t idx;
    GS_RETURN_IF_ERROR(r->ReadI32(&idx));
    out->members.push_back(idx);
  }
  uint32_t num_vectors;
  GS_RETURN_IF_ERROR(r->ReadU32(&num_vectors));
  if (num_vectors > r->remaining() / 24) {
    return CountError(*r, "group-candidate", num_vectors);
  }
  out->vectors.resize(num_vectors);
  for (uint32_t i = 0; i < num_vectors; ++i) {
    GS_RETURN_IF_ERROR(DecodeSignificantVector(r, &out->vectors[i]));
  }
  uint32_t num_psis;
  GS_RETURN_IF_ERROR(r->ReadU32(&num_psis));
  if (num_psis > r->remaining() / 8) {
    return CountError(*r, "group-psi", num_psis);
  }
  out->psis.resize(num_psis);
  for (uint32_t i = 0; i < num_psis; ++i) {
    GS_RETURN_IF_ERROR(r->ReadF64(&out->psis[i]));
  }
  GS_RETURN_IF_ERROR(DecodeWorkDelta(r, &out->delta));
  out->fsm.resize(num_vectors);
  for (uint32_t i = 0; i < num_vectors; ++i) {
    GS_RETURN_IF_ERROR(DecodeFsmEntry(r, &out->fsm[i]));
  }
  return Status::Ok();
}

}  // namespace

std::string ConfigFingerprint(const core::GraphSigConfig& config) {
  // num_threads is deliberately absent: output is thread-invariant, so
  // a checkpoint mined at one thread count restores at any other.
  return util::StrPrintf(
      "v1|rwr=%.17g,%.17g,%d,%d,%d,%d|topk=%d|pv=%.17g|freq=%.17g|"
      "floor=%lld|radius=%d|fsg=%.17g|minset=%zu|maxe=%d|maxp=%zu|"
      "maxr=%zu|cap=%zu|budget=%.17g|ceil=%d|tarone=%.17g|dbfreq=%d",
      config.rwr.restart_prob, config.rwr.epsilon,
      config.rwr.max_iterations, config.rwr.bins, config.rwr.radius,
      static_cast<int>(config.rwr.featurizer), config.top_k_atoms,
      config.max_pvalue, config.min_freq_percent,
      static_cast<long long>(config.min_support_floor),
      config.cutoff_radius, config.fsg_freq_percent, config.min_set_size,
      config.fsm_max_edges, config.fsm_max_patterns,
      config.max_regions_per_set, config.fvmine_max_results,
      config.fvmine_budget_seconds,
      config.use_ceiling_prune ? 1 : 0, config.tarone_alpha,
      config.compute_db_frequency ? 1 : 0);
}

std::string EncodeMineState(const MineState& state) {
  ByteWriter w;
  w.WriteU32(kMineStateVersion);
  w.WriteString(state.config_fingerprint);
  w.WriteU64(state.generation);
  EncodeFeatureSpace(state.feature_space, &w);
  w.WriteU64(state.node_vectors.size());
  for (const features::NodeVector& nv : state.node_vectors) {
    EncodeNodeVector(nv, &w);
  }
  w.WriteU64(state.featurize_deltas.size());
  for (const obs::WorkDelta& delta : state.featurize_deltas) {
    EncodeWorkDelta(delta, &w);
  }
  for (uint64_t g : state.graph_generations) w.WriteU64(g);
  w.WriteU64(state.groups.size());
  for (const GroupCacheEntry& group : state.groups) {
    EncodeGroup(group, &w);
  }
  return std::move(w.TakeBuffer());
}

util::Result<MineState> DecodeMineState(std::string_view bytes) {
  ByteReader r(bytes, "mine state");
  uint32_t version;
  GS_RETURN_IF_ERROR(r.ReadU32(&version));
  if (version == 0 || version > kMineStateVersion) {
    return Status::FailedPrecondition(util::StrPrintf(
        "mine-state version %u unsupported (max %u)", version,
        kMineStateVersion));
  }
  MineState state;
  GS_RETURN_IF_ERROR(r.ReadString(&state.config_fingerprint));
  GS_RETURN_IF_ERROR(r.ReadU64(&state.generation));
  GS_RETURN_IF_ERROR(DecodeFeatureSpace(&r, &state.feature_space));
  uint64_t num_vectors;
  GS_RETURN_IF_ERROR(r.ReadU64(&num_vectors));
  if (num_vectors > r.remaining() / 16) {
    return CountError(r, "node-vector", num_vectors);
  }
  state.node_vectors.resize(static_cast<size_t>(num_vectors));
  for (uint64_t i = 0; i < num_vectors; ++i) {
    GS_RETURN_IF_ERROR(DecodeNodeVector(&r, &state.node_vectors[i]));
  }
  uint64_t num_graphs;
  GS_RETURN_IF_ERROR(r.ReadU64(&num_graphs));
  if (num_graphs > r.remaining() / 16) {
    return CountError(r, "graph-delta", num_graphs);
  }
  state.featurize_deltas.resize(static_cast<size_t>(num_graphs));
  for (uint64_t i = 0; i < num_graphs; ++i) {
    GS_RETURN_IF_ERROR(DecodeWorkDelta(&r, &state.featurize_deltas[i]));
  }
  state.graph_generations.resize(static_cast<size_t>(num_graphs));
  for (uint64_t i = 0; i < num_graphs; ++i) {
    GS_RETURN_IF_ERROR(r.ReadU64(&state.graph_generations[i]));
  }
  uint64_t num_groups;
  GS_RETURN_IF_ERROR(r.ReadU64(&num_groups));
  if (num_groups > r.remaining() / 24) {
    return CountError(r, "group", num_groups);
  }
  state.groups.resize(static_cast<size_t>(num_groups));
  graph::Label previous_label = -1;
  for (uint64_t i = 0; i < num_groups; ++i) {
    GS_RETURN_IF_ERROR(DecodeGroup(&r, &state.groups[i]));
    if (i > 0 && state.groups[i].label <= previous_label) {
      return Status::ParseError("group labels out of order");
    }
    previous_label = state.groups[i].label;
  }
  if (!r.exhausted()) {
    return Status::ParseError(util::StrPrintf(
        "mine state has %zu trailing bytes", r.remaining()));
  }
  return state;
}

}  // namespace graphsig::stream
