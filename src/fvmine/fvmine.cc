#include "fvmine/fvmine.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace graphsig::fvmine {
namespace {

using features::FeatureVec;

// Deterministic work counters for the closed-vector search (DESIGN.md
// §12). The recursion accumulates into Searcher locals and flushes once
// per FvMine() call — the hot path never touches an atomic.
struct FvMineMetrics {
  obs::Counter* expansions;       // Search() states entered
  obs::Counter* support_checks;   // S' supporting-set scans
  obs::Counter* ceiling_prunes;   // subtrees cut by the optimistic bound
  obs::Counter* duplicate_prunes; // states reachable from earlier branches
  obs::Counter* significant;      // vectors emitted

  static const FvMineMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static const FvMineMetrics m = {
        registry.GetCounter("fvmine/expansions"),
        registry.GetCounter("fvmine/support_checks"),
        registry.GetCounter("fvmine/ceiling_prunes"),
        registry.GetCounter("fvmine/duplicate_prunes"),
        registry.GetCounter("fvmine/significant_vectors")};
    return m;
  }
};

class Searcher {
 public:
  Searcher(const std::vector<const FeatureVec*>& population,
           const stats::FeaturePriors& priors, const FvMineConfig& config)
      : population_(population), priors_(priors), config_(config) {
    GS_CHECK(!population.empty());
    GS_CHECK_EQ(priors.population_size(),
                static_cast<int64_t>(population.size()));
    width_ = population[0]->size();
  }

  FvMineResult Run() {
    GS_TRACE_SPAN_NAMED(span, "mine/fvmine");
    std::vector<int32_t> all(population_.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int32_t>(i);
    FeatureVec x;
    features::FloorInto(population_, all, &x);
    if (static_cast<int64_t>(all.size()) >= config_.min_support) {
      Search(x, all, 0);
    }
    result_.completed = !stopped_;
    span.AddWork(static_cast<uint64_t>(result_.states_explored));
    const FvMineMetrics& m = FvMineMetrics::Get();
    m.expansions->Add(static_cast<uint64_t>(result_.states_explored));
    m.support_checks->Add(support_checks_);
    m.ceiling_prunes->Add(ceiling_prunes_);
    m.duplicate_prunes->Add(duplicate_prunes_);
    m.significant->Add(result_.vectors.size());
    return std::move(result_);
  }

 private:
  double Evaluate(const FeatureVec& x, int64_t support) const {
    return config_.use_normal_approximation
               ? priors_.PValueAuto(x, support)
               : priors_.PValue(x, support);
  }

  // Algorithm 1: x is the current closed vector (floor of S), S its
  // supporting set, b the first feature position allowed to grow.
  void Search(const FeatureVec& x, const std::vector<int32_t>& s, size_t b) {
    if (stopped_) return;
    ++result_.states_explored;
    if ((result_.states_explored & 0xff) == 0 &&
        timer_.ElapsedSeconds() > config_.budget_seconds) {
      stopped_ = true;
      return;
    }

    const double p_value = Evaluate(x, static_cast<int64_t>(s.size()));
    if (p_value <= config_.max_pvalue) {
      SignificantVector sv;
      sv.vector = x;
      sv.supporting = s;
      sv.support = static_cast<int64_t>(s.size());
      sv.p_value = p_value;
      result_.vectors.push_back(std::move(sv));
      if (result_.vectors.size() >= config_.max_results) {
        stopped_ = true;
        return;
      }
    }

    for (size_t i = b; i < width_; ++i) {
      // S' = vectors of S strictly above x on feature i.
      ++support_checks_;
      std::vector<int32_t> s_prime;
      for (int32_t idx : s) {
        if ((*population_[idx])[i] > x[i]) s_prime.push_back(idx);
      }
      if (static_cast<int64_t>(s_prime.size()) < config_.min_support) {
        continue;
      }
      FeatureVec x_prime;
      features::FloorInto(population_, s_prime, &x_prime);
      // Duplicate state: if the floor also rose on a feature before i,
      // this state is reachable from an earlier branch.
      bool duplicate = false;
      for (size_t j = 0; j < i; ++j) {
        if (x_prime[j] > x[j]) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) {
        ++duplicate_prunes_;
        continue;
      }
      if (config_.use_ceiling_prune) {
        // Optimistic bound: no descendant can beat the ceiling's p-value
        // at the current support. The ceiling is consumed immediately,
        // so one buffer serves every Search call.
        features::CeilingInto(population_, s_prime, &ceiling_buffer_);
        const double best_possible = Evaluate(
            ceiling_buffer_, static_cast<int64_t>(s_prime.size()));
        if (best_possible >= config_.max_pvalue) {
          ++ceiling_prunes_;
          continue;
        }
      }
      Search(x_prime, s_prime, i);
      if (stopped_) return;
    }
  }

  const std::vector<const FeatureVec*>& population_;
  const stats::FeaturePriors& priors_;
  const FvMineConfig config_;
  size_t width_;
  FvMineResult result_;
  util::WallTimer timer_;
  FeatureVec ceiling_buffer_;
  bool stopped_ = false;
  // Local work tallies, flushed to the registry once in Run().
  uint64_t support_checks_ = 0;
  uint64_t ceiling_prunes_ = 0;
  uint64_t duplicate_prunes_ = 0;
};

}  // namespace

FvMineResult FvMine(
    const std::vector<const features::FeatureVec*>& population,
    const stats::FeaturePriors& priors, const FvMineConfig& config) {
  Searcher searcher(population, priors, config);
  return searcher.Run();
}

}  // namespace graphsig::fvmine
