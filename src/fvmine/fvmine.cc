#include "fvmine/fvmine.h"

#include <algorithm>
#include <span>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/timer.h"

namespace graphsig::fvmine {
namespace {

using features::FeatureVec;
using features::PackedSlice;
using features::PackedVectorSet;

// Deterministic work counters for the closed-vector search (DESIGN.md
// §12). The recursion accumulates into Searcher locals and flushes once
// per FvMine() call — the hot path never touches an atomic.
struct FvMineMetrics {
  obs::Counter* expansions;       // Search() states entered
  obs::Counter* support_checks;   // S' supporting-set scans
  obs::Counter* ceiling_prunes;   // subtrees cut by the optimistic bound
  obs::Counter* duplicate_prunes; // states reachable from earlier branches
  obs::Counter* significant;      // vectors emitted
  obs::Counter* arena_bytes;      // recursion scratch served by the arena
  obs::Counter* arena_allocs;     // arena requests (vs heap mallocs: ~0)

  static const FvMineMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static const FvMineMetrics m = {
        registry.GetCounter("fvmine/expansions"),
        registry.GetCounter("fvmine/support_checks"),
        registry.GetCounter("fvmine/ceiling_prunes"),
        registry.GetCounter("fvmine/duplicate_prunes"),
        registry.GetCounter("fvmine/significant_vectors"),
        registry.GetCounter("fvmine/arena_bytes"),
        registry.GetCounter("fvmine/arena_allocs")};
    return m;
  }
};

class Searcher {
 public:
  Searcher(const PackedVectorSet& population,
           const stats::FeaturePriors& priors, const FvMineConfig& config)
      : population_(population), priors_(priors), config_(config) {
    GS_CHECK(!population.empty());
    GS_CHECK_EQ(priors.population_size(),
                static_cast<int64_t>(population.size()));
    width_ = population.width();
    words_ = population.words_per_vector();
    ceiling_buffer_.resize(words_);
    tarone_ = config_.tarone_alpha > 0.0;
    emit_bound_ = tarone_
                      ? std::min(config_.max_pvalue, config_.tarone_alpha)
                      : config_.max_pvalue;
  }

  FvMineResult Run() {
    GS_TRACE_SPAN_NAMED(span, "mine/fvmine");
    const size_t n = population_.size();
    int32_t* all = arena_.AllocateArray<int32_t>(n);
    for (size_t i = 0; i < n; ++i) all[i] = static_cast<int32_t>(i);
    uint64_t* x = arena_.AllocateArray<uint64_t>(words_);
    population_.FloorInto({all, n}, x, &ops_);
    if (static_cast<int64_t>(n) >= config_.min_support) {
      Search(x, {all, n}, 0);
    }
    result_.completed = !stopped_;
    span.AddWork(static_cast<uint64_t>(result_.states_explored));
    const FvMineMetrics& m = FvMineMetrics::Get();
    m.expansions->Add(static_cast<uint64_t>(result_.states_explored));
    m.support_checks->Add(support_checks_);
    m.ceiling_prunes->Add(ceiling_prunes_);
    m.duplicate_prunes->Add(duplicate_prunes_);
    m.significant->Add(result_.vectors.size());
    m.arena_bytes->Add(arena_.bytes_requested());
    m.arena_allocs->Add(arena_.allocations());
    features::FlushPackedOpStats(ops_);
    return std::move(result_);
  }

 private:
  double Evaluate(const uint64_t* x, int64_t support) const {
    const PackedSlice slice{x, width_};
    return config_.use_normal_approximation
               ? priors_.PValueAuto(slice, support)
               : priors_.PValue(slice, support);
  }

  // Algorithm 1: x is the current closed vector (floor of S, packed), S
  // its supporting set, b the first feature position allowed to grow.
  // All per-frame scratch (S', x') lives in the arena and is rewound
  // when the frame's subtree is done.
  void Search(const uint64_t* x, std::span<const int32_t> s, size_t b) {
    if (stopped_) return;
    ++result_.states_explored;
    if ((result_.states_explored & 0xff) == 0 &&
        timer_.ElapsedSeconds() > config_.budget_seconds) {
      stopped_ = true;
      return;
    }

    if (tarone_) {
      // Every evaluated state joins the testability family.
      result_.candidate_psis.push_back(
          priors_.MinAchievablePValue(PackedSlice{x, width_}));
    }
    const double p_value = Evaluate(x, static_cast<int64_t>(s.size()));
    if (p_value <= emit_bound_) {
      SignificantVector sv;
      sv.vector = features::UnpackWords(x, width_);
      sv.supporting.assign(s.begin(), s.end());
      sv.support = static_cast<int64_t>(s.size());
      sv.p_value = p_value;
      result_.vectors.push_back(std::move(sv));
      if (result_.vectors.size() >= config_.max_results) {
        stopped_ = true;
        return;
      }
    }

    for (size_t i = b; i < width_; ++i) {
      // S' = vectors of S strictly above x on feature i.
      ++support_checks_;
      const util::Arena::Mark mark = arena_.Position();
      int32_t* s_prime = arena_.AllocateArray<int32_t>(s.size());
      size_t s_prime_size = 0;
      const int16_t x_i = PackedSlice{x, width_}.slot(i);
      for (int32_t idx : s) {
        if (population_.at(idx, i) > x_i) s_prime[s_prime_size++] = idx;
      }
      if (static_cast<int64_t>(s_prime_size) < config_.min_support) {
        arena_.Rewind(mark);
        continue;
      }
      uint64_t* x_prime = arena_.AllocateArray<uint64_t>(words_);
      population_.FloorInto({s_prime, s_prime_size}, x_prime, &ops_);
      // Duplicate state: if the floor also rose on a feature before i,
      // this state is reachable from an earlier branch. Since S' ⊆ S,
      // x' >= x lane-wise, so "rose" is just "differs" — one XOR per
      // word covers 16 slots.
      bool duplicate = false;
      const size_t full_words = i / features::kPackedSlotsPerWord;
      for (size_t w = 0; w < full_words; ++w) {
        ++ops_.words_compared;
        if (x_prime[w] != x[w]) {
          duplicate = true;
          break;
        }
      }
      const size_t partial = i % features::kPackedSlotsPerWord;
      if (!duplicate && partial != 0) {
        ++ops_.words_compared;
        const uint64_t mask = features::PackedLowSlotsMask(partial);
        duplicate = ((x_prime[full_words] ^ x[full_words]) & mask) != 0;
      }
      if (duplicate) {
        ++duplicate_prunes_;
        arena_.Rewind(mark);
        continue;
      }
      if (config_.use_ceiling_prune) {
        // Optimistic bound: no descendant can beat the ceiling's p-value
        // at the current support. The ceiling is consumed immediately,
        // so one buffer serves every Search call.
        population_.CeilingInto({s_prime, s_prime_size},
                                ceiling_buffer_.data(), &ops_);
        if (tarone_) {
          // Tarone prune: psi is monotone under vector growth, so the
          // ceiling's psi lower-bounds every descendant's. A subtree
          // whose ceiling is untestable at alpha holds no testable (or
          // reportable) state and may leave the family uncounted.
          const double psi_ceiling = priors_.MinAchievablePValue(
              PackedSlice{ceiling_buffer_.data(), width_});
          if (psi_ceiling > config_.tarone_alpha) {
            ++ceiling_prunes_;
            arena_.Rewind(mark);
            continue;
          }
        } else {
          const double best_possible =
              Evaluate(ceiling_buffer_.data(),
                       static_cast<int64_t>(s_prime_size));
          if (best_possible >= config_.max_pvalue) {
            ++ceiling_prunes_;
            arena_.Rewind(mark);
            continue;
          }
        }
      }
      Search(x_prime, {s_prime, s_prime_size}, i);
      arena_.Rewind(mark);
      if (stopped_) return;
    }
  }

  const PackedVectorSet& population_;
  const stats::FeaturePriors& priors_;
  const FvMineConfig config_;
  size_t width_;
  size_t words_;
  FvMineResult result_;
  util::WallTimer timer_;
  util::Arena arena_;
  std::vector<uint64_t> ceiling_buffer_;
  bool tarone_ = false;
  double emit_bound_ = 1.0;
  bool stopped_ = false;
  // Local work tallies, flushed to the registry once in Run().
  uint64_t support_checks_ = 0;
  uint64_t ceiling_prunes_ = 0;
  uint64_t duplicate_prunes_ = 0;
  features::PackedOpStats ops_;
};

}  // namespace

FvMineResult FvMine(const features::PackedVectorSet& population,
                    const stats::FeaturePriors& priors,
                    const FvMineConfig& config) {
  Searcher searcher(population, priors, config);
  return searcher.Run();
}

}  // namespace graphsig::fvmine
