#ifndef GRAPHSIG_FVMINE_FVMINE_H_
#define GRAPHSIG_FVMINE_FVMINE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "features/feature_vector.h"
#include "features/packed_vector_set.h"
#include "stats/pvalue_model.h"

namespace graphsig::fvmine {

struct FvMineConfig {
  int64_t min_support = 1;  // minSup of Algorithm 1
  double max_pvalue = 0.1;  // maxPvalue of Algorithm 1
  size_t max_results = std::numeric_limits<size_t>::max();
  double budget_seconds = std::numeric_limits<double>::infinity();
  // Line 10's optimistic prune (p-value of the ceiling at the current
  // support). Disabling it is an ablation: same output, more states.
  bool use_ceiling_prune = true;
  // Section III-B's hybrid evaluation: use the normal approximation when
  // m*P and m*(1-P) are large (threshold 50), the exact tail otherwise.
  bool use_normal_approximation = false;
  // Tarone testability mode (> 0 enables; stream/tarone.h). The search
  // then (a) emits candidates against min(max_pvalue, tarone_alpha),
  // (b) records the testability statistic psi of every evaluated state
  // into FvMineResult::candidate_psis so the caller can solve for the
  // family-wise threshold delta* across groups, and (c) replaces the
  // optimistic ceiling prune with the weaker-but-sound Tarone prune: a
  // subtree is cut only when psi(ceiling) > tarone_alpha, i.e. when no
  // descendant could ever be testable (psi is monotone under growth, so
  // every descendant's psi is >= the ceiling's). Cutting on the plain
  // optimistic bound would silently drop testable states from the
  // family and bias delta* upward.
  double tarone_alpha = 0.0;
};

// A closed significant sub-feature vector found by FVMine.
struct SignificantVector {
  features::FeatureVec vector;      // floor of the supporting set
  std::vector<int32_t> supporting;  // ascending indices into the population
  int64_t support = 0;
  double p_value = 1.0;
};

struct FvMineResult {
  std::vector<SignificantVector> vectors;
  uint64_t states_explored = 0;
  bool completed = true;
  // Tarone mode only (tarone_alpha > 0): psi of every evaluated state,
  // in DFS order — the group's contribution to the testability family.
  std::vector<double> candidate_psis;
};

// Mines every closed sub-feature vector of `population` whose support is
// >= min_support and whose p-value (under `priors`, which must be built
// over this same population) is <= max_pvalue. Bottom-up depth-first
// search with support, duplicate-state, and optimistic-ceiling pruning
// (Algorithm 1 of the paper / He & Singh's FVMine).
//
// The recursion runs entirely on the packed SWAR kernels and a per-call
// monotonic arena — zero steady-state heap allocations (DESIGN.md §14).
FvMineResult FvMine(const features::PackedVectorSet& population,
                    const stats::FeaturePriors& priors,
                    const FvMineConfig& config);

}  // namespace graphsig::fvmine

#endif  // GRAPHSIG_FVMINE_FVMINE_H_
