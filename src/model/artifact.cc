#include "model/artifact.h"

#include <fstream>
#include <sstream>

#include "graph/serialize.h"
#include "util/binary.h"
#include "util/strings.h"

namespace graphsig::model {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::Result;
using util::Status;

enum SectionId : uint32_t {
  kSectionDatabase = 1,
  kSectionFeatureSpace = 2,
  kSectionCatalog = 3,
  kSectionClassifier = 4,
  kSectionStream = 5,
};

constexpr size_t kMagicSize = 8;
// magic + version + section count.
constexpr size_t kHeaderSize = kMagicSize + 4 + 4;
constexpr size_t kTableEntrySize = 4 + 8 + 8;
constexpr size_t kChecksumSize = 4;

// --- field codecs -----------------------------------------------------

void EncodeFeatureVec(const features::FeatureVec& vec, ByteWriter* w) {
  w->WriteU32(static_cast<uint32_t>(vec.size()));
  for (int16_t v : vec) w->WriteI16(v);
}

Status DecodeFeatureVec(ByteReader* r, features::FeatureVec* out) {
  uint32_t size;
  GS_RETURN_IF_ERROR(r->ReadU32(&size));
  if (size > r->remaining() / 2) {
    return Status::ParseError(util::StrPrintf(
        "implausible feature-vector length %u", size));
  }
  out->clear();
  out->reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    int16_t v;
    GS_RETURN_IF_ERROR(r->ReadI16(&v));
    out->push_back(v);
  }
  return Status::Ok();
}

void EncodeFeatureSpace(const features::FeatureSpace& space, ByteWriter* w) {
  w->WriteU32(static_cast<uint32_t>(space.num_vertex_features()));
  for (graph::Label label : space.vertex_features()) w->WriteI32(label);
  w->WriteU32(static_cast<uint32_t>(space.num_edge_features()));
  for (const features::EdgeType& e : space.edge_features()) {
    w->WriteI32(e.a);
    w->WriteI32(e.b);
    w->WriteI32(e.edge_label);
  }
}

Status DecodeFeatureSpace(ByteReader* r, features::FeatureSpace* out) {
  uint32_t num_vertex;
  GS_RETURN_IF_ERROR(r->ReadU32(&num_vertex));
  if (num_vertex > r->remaining() / 4) {
    return Status::ParseError("implausible vertex-feature count");
  }
  features::FeatureSpace space;
  for (uint32_t i = 0; i < num_vertex; ++i) {
    int32_t label;
    GS_RETURN_IF_ERROR(r->ReadI32(&label));
    space.AddVertexFeature(label);
  }
  uint32_t num_edge;
  GS_RETURN_IF_ERROR(r->ReadU32(&num_edge));
  if (num_edge > r->remaining() / 12) {
    return Status::ParseError("implausible edge-feature count");
  }
  for (uint32_t i = 0; i < num_edge; ++i) {
    int32_t a, b, edge_label;
    GS_RETURN_IF_ERROR(r->ReadI32(&a));
    GS_RETURN_IF_ERROR(r->ReadI32(&b));
    GS_RETURN_IF_ERROR(r->ReadI32(&edge_label));
    space.AddEdgeFeature(a, b, edge_label);
  }
  // AddVertexFeature/AddEdgeFeature silently dedupe; a well-formed
  // section has no duplicates, so a size mismatch means corruption.
  if (space.num_vertex_features() != num_vertex ||
      space.num_edge_features() != num_edge) {
    return Status::ParseError("duplicate features in feature-space section");
  }
  *out = std::move(space);
  return Status::Ok();
}

void EncodeCatalog(const std::vector<core::SignificantSubgraph>& catalog,
                   ByteWriter* w) {
  w->WriteU64(catalog.size());
  for (const core::SignificantSubgraph& sg : catalog) {
    graph::EncodeGraph(sg.subgraph, w);
    EncodeFeatureVec(sg.vector, w);
    w->WriteF64(sg.vector_pvalue);
    w->WriteI64(sg.vector_support);
    w->WriteI32(sg.anchor_label);
    w->WriteI64(sg.set_size);
    w->WriteI64(sg.set_support);
    w->WriteI64(sg.db_frequency);
  }
}

Status DecodeCatalog(ByteReader* r,
                     std::vector<core::SignificantSubgraph>* out) {
  uint64_t count;
  GS_RETURN_IF_ERROR(r->ReadU64(&count));
  // Each entry is at least an empty graph + empty vector + 5 scalars.
  if (count > r->remaining() / 60) {
    return Status::ParseError("implausible catalog size");
  }
  out->clear();
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    core::SignificantSubgraph sg;
    GS_ASSIGN_OR_RETURN(sg.subgraph, graph::DecodeGraph(r));
    GS_RETURN_IF_ERROR(DecodeFeatureVec(r, &sg.vector));
    GS_RETURN_IF_ERROR(r->ReadF64(&sg.vector_pvalue));
    GS_RETURN_IF_ERROR(r->ReadI64(&sg.vector_support));
    GS_RETURN_IF_ERROR(r->ReadI32(&sg.anchor_label));
    GS_RETURN_IF_ERROR(r->ReadI64(&sg.set_size));
    GS_RETURN_IF_ERROR(r->ReadI64(&sg.set_support));
    GS_RETURN_IF_ERROR(r->ReadI64(&sg.db_frequency));
    out->push_back(std::move(sg));
  }
  return Status::Ok();
}

void EncodeClassifier(const classify::SigKnnModel& model, ByteWriter* w) {
  w->WriteU8(model.empty() ? 0 : 1);
  if (model.empty()) return;
  w->WriteI32(model.k);
  w->WriteF64(model.delta);
  w->WriteF64(model.rwr.restart_prob);
  w->WriteF64(model.rwr.epsilon);
  w->WriteI32(model.rwr.max_iterations);
  w->WriteI32(model.rwr.bins);
  w->WriteI32(model.rwr.radius);
  w->WriteU8(static_cast<uint8_t>(model.rwr.featurizer));
  EncodeFeatureSpace(model.space, w);
  w->WriteU64(model.positive.size());
  for (const features::FeatureVec& v : model.positive) {
    EncodeFeatureVec(v, w);
  }
  w->WriteU64(model.negative.size());
  for (const features::FeatureVec& v : model.negative) {
    EncodeFeatureVec(v, w);
  }
}

Status DecodeVectorSet(ByteReader* r,
                       std::vector<features::FeatureVec>* out) {
  uint64_t count;
  GS_RETURN_IF_ERROR(r->ReadU64(&count));
  if (count > r->remaining() / 4) {
    return Status::ParseError("implausible vector-set size");
  }
  out->clear();
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    features::FeatureVec v;
    GS_RETURN_IF_ERROR(DecodeFeatureVec(r, &v));
    out->push_back(std::move(v));
  }
  return Status::Ok();
}

Status DecodeClassifier(ByteReader* r, classify::SigKnnModel* out) {
  uint8_t present;
  GS_RETURN_IF_ERROR(r->ReadU8(&present));
  if (present == 0) {
    *out = classify::SigKnnModel{};
    out->space = features::FeatureSpace();
    return Status::Ok();
  }
  if (present != 1) {
    return Status::ParseError("bad classifier presence flag");
  }
  classify::SigKnnModel model;
  GS_RETURN_IF_ERROR(r->ReadI32(&model.k));
  GS_RETURN_IF_ERROR(r->ReadF64(&model.delta));
  GS_RETURN_IF_ERROR(r->ReadF64(&model.rwr.restart_prob));
  GS_RETURN_IF_ERROR(r->ReadF64(&model.rwr.epsilon));
  GS_RETURN_IF_ERROR(r->ReadI32(&model.rwr.max_iterations));
  GS_RETURN_IF_ERROR(r->ReadI32(&model.rwr.bins));
  GS_RETURN_IF_ERROR(r->ReadI32(&model.rwr.radius));
  uint8_t featurizer;
  GS_RETURN_IF_ERROR(r->ReadU8(&featurizer));
  if (featurizer > static_cast<uint8_t>(features::Featurizer::kWindowCount)) {
    return Status::ParseError("bad featurizer id in classifier section");
  }
  model.rwr.featurizer = static_cast<features::Featurizer>(featurizer);
  GS_RETURN_IF_ERROR(DecodeFeatureSpace(r, &model.space));
  if (model.space.size() == 0) {
    return Status::ParseError("classifier marked present but space empty");
  }
  GS_RETURN_IF_ERROR(DecodeVectorSet(r, &model.positive));
  GS_RETURN_IF_ERROR(DecodeVectorSet(r, &model.negative));
  *out = std::move(model);
  return Status::Ok();
}

void EncodeStreamSection(const ModelArtifact& artifact, ByteWriter* w) {
  w->WriteU64(artifact.generation);
  w->WriteF64(artifact.tarone_alpha);
  w->WriteF64(artifact.tarone_delta_star);
  w->WriteU64(artifact.tarone_family_size);
  w->WriteU64(artifact.tarone_filtered);
}

Status DecodeStreamSection(ByteReader* r, ModelArtifact* out) {
  GS_RETURN_IF_ERROR(r->ReadU64(&out->generation));
  if (out->generation == 0) {
    return Status::ParseError("stream section with generation 0");
  }
  GS_RETURN_IF_ERROR(r->ReadF64(&out->tarone_alpha));
  GS_RETURN_IF_ERROR(r->ReadF64(&out->tarone_delta_star));
  GS_RETURN_IF_ERROR(r->ReadU64(&out->tarone_family_size));
  GS_RETURN_IF_ERROR(r->ReadU64(&out->tarone_filtered));
  return Status::Ok();
}

const char* SectionName(uint32_t id) {
  switch (id) {
    case kSectionDatabase:
      return "database section";
    case kSectionFeatureSpace:
      return "feature-space section";
    case kSectionCatalog:
      return "catalog section";
    case kSectionClassifier:
      return "classifier section";
    case kSectionStream:
      return "stream section";
    default:
      return "unknown section";
  }
}

Status DecodeSection(uint32_t id, std::string_view payload,
                     ModelArtifact* artifact) {
  ByteReader reader(payload, SectionName(id));
  switch (id) {
    case kSectionDatabase: {
      GS_ASSIGN_OR_RETURN(artifact->database,
                          graph::DecodeDatabase(&reader));
      break;
    }
    case kSectionFeatureSpace:
      GS_RETURN_IF_ERROR(DecodeFeatureSpace(&reader,
                                            &artifact->feature_space));
      break;
    case kSectionCatalog:
      GS_RETURN_IF_ERROR(DecodeCatalog(&reader, &artifact->catalog));
      break;
    case kSectionClassifier:
      GS_RETURN_IF_ERROR(DecodeClassifier(&reader, &artifact->classifier));
      break;
    case kSectionStream:
      GS_RETURN_IF_ERROR(DecodeStreamSection(&reader, artifact));
      break;
    default:
      // Unknown section: written by a same-major future revision; skip.
      return Status::Ok();
  }
  if (!reader.exhausted()) {
    return Status::ParseError(util::StrPrintf(
        "%s has %zu trailing bytes at offset %zu", SectionName(id),
        reader.remaining(), reader.position()));
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeArtifact(const ModelArtifact& artifact) {
  // Encode each section payload first so the table offsets are known.
  struct Section {
    uint32_t id;
    std::string payload;
  };
  std::vector<Section> sections;
  {
    ByteWriter w;
    graph::EncodeDatabase(artifact.database, &w);
    sections.push_back({kSectionDatabase, std::move(w.TakeBuffer())});
  }
  {
    ByteWriter w;
    EncodeFeatureSpace(artifact.feature_space, &w);
    sections.push_back({kSectionFeatureSpace, std::move(w.TakeBuffer())});
  }
  {
    ByteWriter w;
    EncodeCatalog(artifact.catalog, &w);
    sections.push_back({kSectionCatalog, std::move(w.TakeBuffer())});
  }
  {
    ByteWriter w;
    EncodeClassifier(artifact.classifier, &w);
    sections.push_back({kSectionClassifier, std::move(w.TakeBuffer())});
  }
  if (artifact.generation > 0) {
    ByteWriter w;
    EncodeStreamSection(artifact, &w);
    sections.push_back({kSectionStream, std::move(w.TakeBuffer())});
  }

  ByteWriter out;
  out.WriteBytes(std::string_view(kMagic, kMagicSize));
  out.WriteU32(kFormatVersion);
  out.WriteU32(static_cast<uint32_t>(sections.size()));
  uint64_t offset = kHeaderSize + sections.size() * kTableEntrySize;
  for (const Section& s : sections) {
    out.WriteU32(s.id);
    out.WriteU64(offset);
    out.WriteU64(s.payload.size());
    offset += s.payload.size();
  }
  for (const Section& s : sections) out.WriteBytes(s.payload);
  out.WriteU32(util::Crc32(out.buffer()));
  return std::move(out.TakeBuffer());
}

Result<ModelArtifact> DecodeArtifact(std::string_view bytes) {
  if (bytes.size() < kHeaderSize + kChecksumSize) {
    return Status::ParseError(util::StrPrintf(
        "artifact too short: %zu bytes", bytes.size()));
  }
  if (bytes.substr(0, kMagicSize) != std::string_view(kMagic, kMagicSize)) {
    return Status::ParseError("bad magic: not a GraphSig model artifact");
  }
  // Integrity first: a checksum mismatch means nothing else in the file
  // can be trusted, including the version and section table.
  const std::string_view body = bytes.substr(0, bytes.size() - kChecksumSize);
  ByteReader tail(bytes.substr(bytes.size() - kChecksumSize), "checksum");
  uint32_t stored_crc = 0;
  GS_RETURN_IF_ERROR(tail.ReadU32(&stored_crc));
  const uint32_t actual_crc = util::Crc32(body);
  if (stored_crc != actual_crc) {
    return Status::ParseError(util::StrPrintf(
        "checksum mismatch: stored %08x, computed %08x (corrupt or "
        "truncated artifact)", stored_crc, actual_crc));
  }

  ByteReader reader(body, "header");
  GS_RETURN_IF_ERROR(reader.Seek(kMagicSize));
  uint32_t version = 0, section_count = 0;
  GS_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version > kFormatVersion) {
    return Status::FailedPrecondition(util::StrPrintf(
        "artifact format version %u is newer than supported version %u; "
        "rebuild with this binary or upgrade", version, kFormatVersion));
  }
  if (version == 0) {
    return Status::ParseError("artifact format version 0 is invalid");
  }
  GS_RETURN_IF_ERROR(reader.ReadU32(&section_count));
  if (section_count > (body.size() - kHeaderSize) / kTableEntrySize) {
    return Status::ParseError("section table larger than file");
  }

  ModelArtifact artifact;
  reader.set_section("section table");
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t id = 0;
    uint64_t offset = 0, size = 0;
    GS_RETURN_IF_ERROR(reader.ReadU32(&id));
    GS_RETURN_IF_ERROR(reader.ReadU64(&offset));
    GS_RETURN_IF_ERROR(reader.ReadU64(&size));
    const uint64_t table_end =
        kHeaderSize + static_cast<uint64_t>(section_count) * kTableEntrySize;
    if (offset < table_end || offset > body.size() ||
        size > body.size() - offset) {
      return Status::ParseError(util::StrPrintf(
          "section %u out of bounds: offset %llu size %llu in %zu-byte "
          "body", id, static_cast<unsigned long long>(offset),
          static_cast<unsigned long long>(size), body.size()));
    }
    GS_RETURN_IF_ERROR(DecodeSection(
        id, body.substr(static_cast<size_t>(offset),
                        static_cast<size_t>(size)),
        &artifact));
  }
  return artifact;
}

Status SaveArtifact(const ModelArtifact& artifact, const std::string& path) {
  const std::string bytes = EncodeArtifact(artifact);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  // Flush before checking: a short write can sit in the stream buffer
  // and only fail at close, which the destructor would swallow.
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<ModelArtifact> LoadArtifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) return Status::IoError("read failed: " + path);
  return DecodeArtifact(buffer.str());
}

}  // namespace graphsig::model
