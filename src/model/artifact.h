#ifndef GRAPHSIG_MODEL_ARTIFACT_H_
#define GRAPHSIG_MODEL_ARTIFACT_H_

// The mine-once model artifact: everything the query-serving subsystem
// (src/serve/) needs, produced offline by graphsig_index and loaded in
// O(file size) with no re-mining.
//
// Binary layout (all integers little-endian; full spec in DESIGN.md):
//
//   offset 0   magic "GSIGMDL1" (8 bytes)
//   offset 8   u32 format version (kFormatVersion)
//   offset 12  u32 section count
//   offset 16  section table: count x { u32 id, u64 offset, u64 size }
//   ...        section payloads (offsets are absolute, sizes in bytes)
//   last 4     u32 CRC-32 of every preceding byte
//
// Sections: database (1), feature space (2), significant-subgraph
// catalog (3), classifier model (4), stream provenance (5). Section 5
// records the ingest-log generation the artifact was mined at plus the
// Tarone correction parameters (DESIGN.md §16); it is only written when
// generation > 0, so artifacts from the batch pipeline are byte-for-byte
// what they always were. Unknown section ids are ignored on load so
// later format revisions can add sections without breaking old readers;
// files declaring a version newer than kFormatVersion are rejected
// outright. Loading never crashes on hostile input: corrupt,
// truncated, or wrong-version files come back as util::Status errors.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "classify/sig_knn.h"
#include "core/graphsig.h"
#include "features/feature_space.h"
#include "graph/graph_database.h"
#include "util/status.h"

namespace graphsig::model {

// Current writer version. Readers accept any version <= this.
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr char kMagic[] = "GSIGMDL1";  // 8 bytes, no terminator

struct ModelArtifact {
  // The database the catalog was mined from (provenance + retraining).
  graph::GraphDatabase database;
  // The feature space the catalog's evidence vectors live in.
  features::FeatureSpace feature_space;
  // The significant-subgraph catalog: patterns with their full evidence
  // trail (vector, p-value, supports, anchor label, db frequency).
  std::vector<core::SignificantSubgraph> catalog;
  // Trained k-NN activity model; may be empty() when the training data
  // had only one class.
  classify::SigKnnModel classifier;
  // Stream provenance (section 5). `generation` is the ingest-log
  // generation the catalog reflects; 0 means "not from the streaming
  // pipeline" and suppresses the section entirely. The Tarone fields
  // mirror GraphSigStats for the mine that produced the catalog.
  uint64_t generation = 0;
  double tarone_alpha = 0.0;
  double tarone_delta_star = 0.0;
  uint64_t tarone_family_size = 0;
  uint64_t tarone_filtered = 0;
};

// Serializes to the artifact wire format.
std::string EncodeArtifact(const ModelArtifact& artifact);

// Parses and validates (magic, version, checksum, section bounds).
util::Result<ModelArtifact> DecodeArtifact(std::string_view bytes);

// File variants (binary mode).
util::Status SaveArtifact(const ModelArtifact& artifact,
                          const std::string& path);
util::Result<ModelArtifact> LoadArtifact(const std::string& path);

}  // namespace graphsig::model

#endif  // GRAPHSIG_MODEL_ARTIFACT_H_
