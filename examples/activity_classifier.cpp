// Graph classification scenario (the paper's Section V / VI-D): train
// the significant-pattern k-NN classifier on a balanced sample of a
// cancer screen, score the held-out compounds, and report AUC next to
// the LEAP-style pattern baseline.
//
//   $ ./activity_classifier [--size=N] [--screen=NAME]

#include <cstdio>
#include <string>

#include "classify/auc.h"
#include "classify/evaluation.h"
#include "classify/leap.h"
#include "classify/sig_knn.h"
#include "data/datasets.h"
#include "util/strings.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace graphsig;
  size_t size = 400;
  std::string screen = "MCF-7";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (util::StartsWith(arg, "--size=")) {
      auto v = util::ParseInt(std::string(arg.substr(7)));
      if (v.ok()) size = static_cast<size_t>(v.value());
    } else if (util::StartsWith(arg, "--screen=")) {
      screen = std::string(arg.substr(9));
    }
  }

  data::DatasetOptions options;
  options.size = size;
  options.seed = 17;
  options.active_fraction = 0.10;
  graph::GraphDatabase db = data::MakeCancerScreen(screen, options);
  std::printf("%s screen: %zu compounds (%zu active)\n\n", screen.c_str(),
              db.size(), db.FilterByTag(1).size());

  // Balanced training sample (the paper's protocol: a fraction of the
  // actives plus an equal number of inactives).
  graph::GraphDatabase train = classify::BalancedTrainingSample(db, 0.5, 3);
  std::printf("balanced training sample: %zu graphs\n", train.size());

  // GraphSig classifier.
  classify::SigKnnConfig sig_config;
  sig_config.mining.cutoff_radius = 4;
  sig_config.mining.min_freq_percent = 2.0;
  classify::GraphSigClassifier sig(sig_config);
  util::WallTimer sig_timer;
  sig.Train(train);
  std::printf("GraphSig: %zu positive / %zu negative significant vectors "
              "(train %.2fs)\n",
              sig.positive_vectors().size(), sig.negative_vectors().size(),
              sig_timer.ElapsedSeconds());

  // LEAP-style baseline.
  classify::LeapConfig leap_config;
  leap_config.min_support_percent = 10.0;
  leap_config.max_edges = 6;
  classify::LeapClassifier leap(leap_config);
  util::WallTimer leap_timer;
  leap.Train(train);
  std::printf("LEAP: %zu discriminative patterns (train %.2fs)\n\n",
              leap.patterns().size(), leap_timer.ElapsedSeconds());

  // Score every compound and report AUC for both.
  std::vector<classify::ScoredExample> sig_scored, leap_scored;
  for (const graph::Graph& g : db.graphs()) {
    sig_scored.push_back({sig.Score(g), g.tag() == 1});
    leap_scored.push_back({leap.Score(g), g.tag() == 1});
  }
  std::printf("AUC  GraphSig: %.3f   LEAP: %.3f\n",
              classify::AreaUnderRoc(sig_scored),
              classify::AreaUnderRoc(leap_scored));

  // Classify a few individual compounds.
  std::printf("\nsample decisions (GraphSig):\n");
  int shown = 0;
  for (const graph::Graph& g : db.graphs()) {
    if (shown >= 6) break;
    if (shown % 2 == 0 && g.tag() != 1) continue;  // alternate classes
    if (shown % 2 == 1 && g.tag() != 0) continue;
    std::printf("  compound %lld: truth=%s predicted=%s (score %+.3f)\n",
                static_cast<long long>(g.id()),
                g.tag() == 1 ? "active" : "inactive",
                sig.Classify(g) ? "active" : "inactive", sig.Score(g));
    ++shown;
  }
  return 0;
}
