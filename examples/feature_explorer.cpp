// Feature-space explorer (the paper's Section II): inspect how a graph
// database turns into GraphSig's feature space — the Fig. 4 atom-
// coverage analysis, the selected feature set, and the RWR vector of a
// single molecule's nodes, side by side with the plain window-count
// ablation.
//
//   $ ./feature_explorer [--size=N]

#include <cstdio>
#include <iostream>
#include <string>

#include "data/datasets.h"
#include "data/elements.h"
#include "features/feature_space.h"
#include "features/rwr.h"
#include "features/selection.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace graphsig;
  size_t size = 500;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (util::StartsWith(arg, "--size=")) {
      auto v = util::ParseInt(std::string(arg.substr(7)));
      if (v.ok()) size = static_cast<size_t>(v.value());
    }
  }

  data::DatasetOptions options;
  options.size = size;
  options.seed = 5;
  graph::GraphDatabase db = data::MakeAidsLike(options);

  // --- Fig. 4-style coverage analysis.
  auto coverage = features::CumulativeAtomCoverage(db);
  std::printf("atom types: %zu\n", coverage.size());
  util::TablePrinter coverage_table({"rank", "atom", "count", "cum %"});
  for (size_t i = 0; i < coverage.size() && i < 8; ++i) {
    coverage_table.AddRow(
        {std::to_string(i + 1), data::AtomSymbol(coverage[i].label),
         std::to_string(coverage[i].count),
         util::TablePrinter::Num(coverage[i].cumulative_percent, 2)});
  }
  coverage_table.Print(std::cout);

  // --- The selected feature set (Section II-B recipe).
  features::FeatureSpace fs = features::FeatureSpace::ForChemicalDatabase(
      db, /*top_k_atoms=*/5);
  std::printf("\nfeature set: %zu features (%zu atom features + %zu edge "
              "features between the top-5 atoms)\n",
              fs.size(), fs.num_vertex_features(), fs.num_edge_features());
  std::printf("edge features:");
  for (size_t s = fs.num_vertex_features(); s < fs.size(); ++s) {
    std::printf(" %s", fs.FeatureName(s).c_str());
  }
  std::printf("\n\n");

  // --- RWR vectors of one molecule vs the counting ablation.
  const graph::Graph& molecule = db.graph(0);
  std::printf("molecule 0: %d atoms, %d bonds\n", molecule.num_vertices(),
              molecule.num_edges());
  features::RwrConfig rwr;
  features::RwrConfig counting = rwr;
  counting.featurizer = features::Featurizer::kWindowCount;
  counting.radius = 2;

  util::TablePrinter vec_table({"node", "atom", "RWR vector (non-zero)",
                                "count vector (non-zero)"});
  auto rwr_vectors = features::GraphToVectors(molecule, 0, fs, rwr);
  auto cnt_vectors = features::GraphToVectors(molecule, 0, fs, counting);
  auto summarize = [&](const features::FeatureVec& v) {
    std::string out;
    for (size_t s = 0; s < v.size(); ++s) {
      if (v[s] > 0) {
        out += util::StrPrintf("%s=%d ", fs.FeatureName(s).c_str(), v[s]);
      }
    }
    return out.empty() ? std::string("-") : out;
  };
  for (graph::VertexId v = 0; v < molecule.num_vertices() && v < 6; ++v) {
    vec_table.AddRow({std::to_string(v),
                      data::AtomSymbol(molecule.vertex_label(v)),
                      summarize(rwr_vectors[v].values),
                      summarize(cnt_vectors[v].values)});
  }
  vec_table.Print(std::cout);
  std::printf(
      "\nNote how the RWR vector weights nearby features more than distant\n"
      "ones, while the count vector is the same for every node of the\n"
      "molecule when the window covers it all — the structure loss the\n"
      "paper's Table II discussion points out.\n");
  return 0;
}
