// Quickstart: build a tiny graph database in code, mine its significant
// subgraphs with GraphSig, and print what came back.
//
//   $ ./quickstart
//
// The database below contains 30 random molecule-like graphs; a third of
// them carry a planted "active core". GraphSig finds the core as a
// low-p-value pattern even though it never sees the plant labels.

#include <cstdio>

#include "core/graphsig.h"
#include "data/elements.h"
#include "data/generator.h"
#include "data/motifs.h"
#include "util/rng.h"

int main() {
  using namespace graphsig;

  // 1. Build a database. Graph/GraphDatabase are plain value types; any
  //    vertex- and edge-labeled undirected graphs work (here: molecules,
  //    atoms as vertex labels, bond types as edge labels).
  util::Rng rng(2024);
  data::MoleculeGenConfig gen;
  gen.min_atoms = 10;
  gen.max_atoms = 18;
  const graph::Graph core = data::FdtCoreMotif();

  graph::GraphDatabase db;
  for (int i = 0; i < 30; ++i) {
    graph::Graph molecule = data::GenerateMolecule(gen, &rng);
    molecule.set_id(i);
    if (i % 3 == 0) data::PlantMotif(&molecule, core, &rng);
    db.Add(std::move(molecule));
  }
  std::printf("database: %zu graphs, %lld vertices, %lld edges\n",
              db.size(), static_cast<long long>(db.TotalVertices()),
              static_cast<long long>(db.TotalEdges()));

  // 2. Configure GraphSig. Defaults follow the paper (alpha = 0.25,
  //    maxPvalue = 0.1, fsgFreq = 80%); we shrink the cut radius and
  //    raise the vector-frequency floor because this database is tiny.
  core::GraphSigConfig config;
  config.cutoff_radius = 3;
  config.min_freq_percent = 3.0;
  config.max_pvalue = 0.05;

  // 3. Mine.
  core::GraphSig miner(config);
  core::GraphSigResult result = miner.Mine(db);

  std::printf("feature space: %zu features | node vectors: %lld | "
              "significant vectors: %lld\n",
              result.feature_space.size(),
              static_cast<long long>(result.stats.num_vectors),
              static_cast<long long>(result.stats.num_significant_vectors));
  std::printf("significant subgraphs: %zu\n\n", result.subgraphs.size());

  // 4. Inspect the top patterns (sorted by p-value).
  int shown = 0;
  for (const core::SignificantSubgraph& sg : result.subgraphs) {
    if (shown >= 3) break;
    std::printf("pattern #%d  p=%.3e  set %lld/%lld  db-frequency %lld/%zu\n",
                shown, sg.vector_pvalue,
                static_cast<long long>(sg.set_support),
                static_cast<long long>(sg.set_size),
                static_cast<long long>(sg.db_frequency), db.size());
    for (graph::VertexId v = 0; v < sg.subgraph.num_vertices(); ++v) {
      std::printf("  v%d %s\n", v,
                  data::AtomSymbol(sg.subgraph.vertex_label(v)).c_str());
    }
    for (const graph::EdgeRecord& e : sg.subgraph.edges()) {
      std::printf("  %d %s %d\n", e.u,
                  data::BondSymbol(e.label).c_str(), e.v);
    }
    std::printf("\n");
    ++shown;
  }
  return 0;
}
