// Pattern inspector: "is this substructure significant in my screen?"
// Takes a SMILES pattern, scores it against a dataset with GraphSig's
// analytic feature-space model AND the Milo-style randomization
// baseline, and emits a Graphviz rendering of the pattern.
//
//   $ ./pattern_inspector [--pattern=SMILES] [--size=N]
//
// Defaults inspect the phosphonium core against a UACC-257-like screen.

#include <cstdio>
#include <string>

#include "core/pattern_score.h"
#include "data/datasets.h"
#include "data/elements.h"
#include "data/motifs.h"
#include "data/smiles.h"
#include "graph/dot.h"
#include "stats/simulation.h"
#include "util/strings.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace graphsig;
  std::string pattern_smiles;
  size_t size = 400;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (util::StartsWith(arg, "--pattern=")) {
      pattern_smiles = std::string(arg.substr(10));
    } else if (util::StartsWith(arg, "--size=")) {
      auto v = util::ParseInt(std::string(arg.substr(7)));
      if (v.ok()) size = static_cast<size_t>(v.value());
    }
  }

  graph::Graph pattern;
  if (pattern_smiles.empty()) {
    pattern = data::PhosphoniumMotif();
    pattern_smiles = data::WriteSmiles(pattern);
  } else {
    auto parsed = data::ParseSmiles(pattern_smiles);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    pattern = std::move(parsed).value();
  }
  std::printf("pattern: %s (%d atoms, %d bonds)\n", pattern_smiles.c_str(),
              pattern.num_vertices(), pattern.num_edges());

  data::DatasetOptions options;
  options.size = size;
  options.seed = 23;
  options.active_fraction = 0.10;
  graph::GraphDatabase db = data::MakeCancerScreen("UACC-257", options);
  std::printf("screen: UACC-257-like, %zu molecules\n\n", db.size());

  // Analytic feature-space p-value (the GraphSig/GraphRank direction).
  core::GraphSigConfig config;
  util::WallTimer analytic_timer;
  core::PatternScore analytic = core::ScorePattern(db, pattern, config);
  const double analytic_seconds = analytic_timer.ElapsedSeconds();
  if (!analytic.found) {
    std::printf("the pattern does not occur in the screen.\n");
    return 0;
  }
  std::printf("occurrences: %lld/%zu molecules (%.2f%%)\n",
              static_cast<long long>(analytic.frequency), db.size(),
              100.0 * static_cast<double>(analytic.frequency) / db.size());
  std::printf("analytic p-value: %.3e  (%.3fs)\n", analytic.p_value,
              analytic_seconds);

  // Randomization baseline (degree-preserving rewiring).
  auto simulated = stats::SimulatePatternPValue(db, pattern,
                                                /*num_databases=*/49,
                                                /*seed=*/101);
  std::printf("simulated p-value: %.3f over 49 random databases (%.3fs; "
              "floor 1/50 = 0.020)\n\n",
              simulated.p_value, simulated.seconds);

  std::printf("Graphviz rendering (pipe into `dot -Tpng`):\n%s",
              graph::ToDot(pattern, "pattern", data::AtomSymbol,
                           data::BondSymbol)
                  .c_str());
  return 0;
}
