// Drug-discovery scenario (the paper's Section VI-C): take the set of
// compounds that screened ACTIVE against a disease, mine it for
// significant substructures, and inspect the cores that emerge. On the
// synthetic AIDS-like screen, the planted AZT/FDT cores (Fig. 13) come
// back as the most significant patterns, and the ubiquitous benzene ring
// does not.
//
//   $ ./drug_discovery [--size=N]

#include <cstdio>
#include <string>

#include "core/graphsig.h"
#include "data/datasets.h"
#include "data/elements.h"
#include "data/motifs.h"
#include "graph/isomorphism.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace graphsig;
  size_t size = 600;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (util::StartsWith(arg, "--size=")) {
      auto v = util::ParseInt(std::string(arg.substr(7)));
      if (v.ok()) size = static_cast<size_t>(v.value());
    }
  }

  data::DatasetOptions options;
  options.size = size;
  options.seed = 7;
  options.active_fraction = 0.10;
  graph::GraphDatabase db = data::MakeAidsLike(options);
  graph::GraphDatabase actives = db.FilterByTag(1);
  std::printf("AIDS-like screen: %zu compounds, %zu active\n\n", db.size(),
              actives.size());

  core::GraphSigConfig config;
  config.cutoff_radius = 4;
  config.min_freq_percent = 2.0;
  core::GraphSig miner(config);
  core::GraphSigResult result = miner.Mine(actives);
  std::printf("significant substructures in the active set: %zu\n\n",
              result.subgraphs.size());

  // Compare against the known drug cores.
  const graph::Graph azt = data::AztCoreMotif();
  const graph::Graph fdt = data::FdtCoreMotif();
  const graph::Graph benzene = data::BenzeneMotif();
  int azt_hits = 0, fdt_hits = 0, benzene_hits = 0;
  for (const core::SignificantSubgraph& sg : result.subgraphs) {
    if (sg.subgraph.num_edges() >= 4 &&
        (graph::IsSubgraphIsomorphic(sg.subgraph, azt) ||
         graph::IsSubgraphIsomorphic(azt, sg.subgraph))) {
      ++azt_hits;
    }
    if (sg.subgraph.num_edges() >= 4 &&
        (graph::IsSubgraphIsomorphic(sg.subgraph, fdt) ||
         graph::IsSubgraphIsomorphic(fdt, sg.subgraph))) {
      ++fdt_hits;
    }
    if (graph::AreIsomorphic(sg.subgraph, benzene)) ++benzene_hits;
  }
  std::printf("patterns matching the AZT core (azido-pyrimidine): %d\n",
              azt_hits);
  std::printf("patterns matching the FDT core (fluorinated analog): %d\n",
              fdt_hits);
  std::printf("patterns that are just benzene: %d (expected 0 — frequent "
              "but not significant)\n\n",
              benzene_hits);

  // Print the single most significant pattern as a structure diagram.
  if (!result.subgraphs.empty()) {
    const core::SignificantSubgraph& top = result.subgraphs.front();
    std::printf("most significant pattern (p=%.3e, global frequency "
                "%lld/%zu):\n",
                top.vector_pvalue,
                static_cast<long long>(top.db_frequency), actives.size());
    for (const graph::EdgeRecord& e : top.subgraph.edges()) {
      std::printf("  %s(%d) %s %s(%d)\n",
                  data::AtomSymbol(top.subgraph.vertex_label(e.u)).c_str(),
                  e.u, data::BondSymbol(e.label).c_str(),
                  data::AtomSymbol(top.subgraph.vertex_label(e.v)).c_str(),
                  e.v);
    }
  }
  return 0;
}
