#include <gtest/gtest.h>

#include "core/graphsig.h"
#include "data/datasets.h"
#include "fsm/dfs_code.h"
#include "graph/statistics.h"
#include "stats/pvalue_model.h"
#include "util/rng.h"

namespace graphsig {
namespace {

TEST(StatisticsTest, ComputesPaperStyleSummary) {
  data::DatasetOptions options;
  options.size = 200;
  options.seed = 91;
  graph::GraphDatabase db = data::MakeAidsLike(options);
  graph::DatabaseStatistics s = graph::ComputeStatistics(db);
  EXPECT_EQ(s.num_graphs, 200u);
  EXPECT_EQ(s.num_tagged_positive, 10u);  // 5% actives
  EXPECT_NEAR(s.mean_vertices, 28.0, 4.0);  // molecules + planted motifs
  EXPECT_GT(s.mean_edges, s.mean_vertices * 0.95);
  EXPECT_GE(s.top5_vertex_label_coverage_percent, 95.0);
  EXPECT_GT(s.num_vertex_labels, 5u);
  EXPECT_GE(s.num_edge_labels, 3u);
  EXPECT_GE(s.max_vertices, 30);

  std::string text = graph::DescribeDatabase(db);
  EXPECT_NE(text.find("200 graphs"), std::string::npos);
  EXPECT_NE(text.find("10 positive"), std::string::npos);
}

TEST(StatisticsTest, EmptyDatabase) {
  graph::GraphDatabase db;
  graph::DatabaseStatistics s = graph::ComputeStatistics(db);
  EXPECT_EQ(s.num_graphs, 0u);
  EXPECT_EQ(s.mean_vertices, 0.0);
  EXPECT_EQ(s.top5_vertex_label_coverage_percent, 0.0);
}

TEST(PValueAutoTest, MatchesExactInSmallRegimeAndNormalInLarge) {
  util::Rng rng(92);
  std::vector<features::FeatureVec> population;
  for (int i = 0; i < 2000; ++i) {
    features::FeatureVec v(8);
    for (auto& x : v) {
      x = rng.NextBernoulli(0.4)
              ? static_cast<int16_t>(1 + rng.NextBounded(9))
              : 0;
    }
    population.push_back(std::move(v));
  }
  stats::FeaturePriors priors(population, 10);

  // Common vector (large m*P): auto == normal, and both close to exact.
  features::FeatureVec common(8, 0);
  common[0] = 1;
  const double p_common = priors.ProbRandomSuperVector(common);
  ASSERT_GT(p_common * 2000, 50.0);
  EXPECT_DOUBLE_EQ(priors.PValueAuto(common, 900),
                   priors.PValueNormal(common, 900));
  EXPECT_NEAR(priors.PValueAuto(common, 900), priors.PValue(common, 900),
              0.02);

  // Rare vector (small m*P): auto == exact.
  features::FeatureVec rare(8, 9);
  const double p_rare = priors.ProbRandomSuperVector(rare);
  ASSERT_LT(p_rare * 2000, 50.0);
  EXPECT_DOUBLE_EQ(priors.PValueAuto(rare, 3), priors.PValue(rare, 3));
}

// Golden regression: a fixed seed and configuration must keep producing
// the same mining result — catches silent behavioural drift anywhere in
// the pipeline (RWR, priors, FVMine, gSpan, dedup).
TEST(GoldenTest, FixedSeedMiningIsStable) {
  data::DatasetOptions options;
  options.size = 80;
  options.seed = 4242;
  options.active_fraction = 0.15;
  options.molecule.min_atoms = 8;
  options.molecule.max_atoms = 14;
  graph::GraphDatabase db = data::MakeCancerScreen("SF-295", options);

  core::GraphSigConfig config;
  config.cutoff_radius = 3;
  config.min_freq_percent = 3.0;
  config.max_pvalue = 0.05;
  core::GraphSig miner(config);
  core::GraphSigResult a = miner.Mine(db);
  core::GraphSigResult b = miner.Mine(db);

  // Self-consistency (exact determinism).
  ASSERT_EQ(a.subgraphs.size(), b.subgraphs.size());
  for (size_t i = 0; i < a.subgraphs.size(); ++i) {
    EXPECT_EQ(fsm::CanonicalCode(a.subgraphs[i].subgraph),
              fsm::CanonicalCode(b.subgraphs[i].subgraph));
    EXPECT_EQ(a.subgraphs[i].vector_pvalue, b.subgraphs[i].vector_pvalue);
  }
  // Coarse golden anchors (stable across platforms: integer counts).
  EXPECT_GT(a.subgraphs.size(), 0u);
  EXPECT_EQ(a.stats.num_vectors, db.TotalVertices());
  EXPECT_GT(a.stats.num_significant_vectors, 0);
}

}  // namespace
}  // namespace graphsig
