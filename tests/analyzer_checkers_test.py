#!/usr/bin/env python3
"""Unit tests for the analyzer's policy layer (tools/analyze/checkers.py)
and the suppression-file semantics.

These run over hand-built Facts, so they exercise the checkers
independently of either frontend and run on any machine.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "tools", "analyze"))

import checkers  # noqa: E402
import driver  # noqa: E402
from facts import (  # noqa: E402
    OP_COMMUTATIVE,
    OP_OTHER,
    OP_SORTED_DRAIN,
    ArenaAllocFact,
    Facts,
    FieldFact,
    Finding,
    LoopFact,
    OrderedKeyFact,
    RecordFact,
    SortCallFact,
    SortKeyFact,
)


def _loop(ops, unordered=True, **kw):
    defaults = dict(file="src/x.cc", line=10, function="F",
                    range_text="m", range_type="std::unordered_map<int,int>",
                    is_unordered=unordered, body_ops=ops, body_detail="",
                    enclosing_sinks=[])
    defaults.update(kw)
    return LoopFact(**defaults)


class UnorderedOrderTest(unittest.TestCase):
    def _run(self, loop):
        f = Facts()
        f.loops.append(loop)
        return [x for x in checkers.run_checkers(f)
                if x.checker == "unordered-order"]

    def test_escaping_body_fires(self):
        self.assertEqual(len(self._run(_loop([OP_OTHER]))), 1)

    def test_commutative_body_allowed(self):
        self.assertEqual(self._run(_loop([OP_COMMUTATIVE])), [])

    def test_sorted_drain_allowed(self):
        self.assertEqual(self._run(_loop([OP_SORTED_DRAIN])), [])

    def test_mixed_body_fires(self):
        self.assertEqual(
            len(self._run(_loop([OP_COMMUTATIVE, OP_OTHER]))), 1)

    def test_ordered_container_ignored(self):
        self.assertEqual(
            self._run(_loop([OP_OTHER], unordered=False,
                            range_type="std::map<int,int>")), [])

    def test_key_is_stable(self):
        (finding,) = self._run(_loop([OP_OTHER]))
        self.assertEqual(finding.key, "F@m")


class PointerKeyTest(unittest.TestCase):
    def test_pointer_comparator_fires(self):
        f = Facts()
        f.sort_calls.append(SortCallFact(
            file="src/x.cc", line=5, function="F", algorithm="std::sort",
            keys=[SortKeyFact(text="a", type="const Item *",
                              is_pointer=True)]))
        got = [x for x in checkers.run_checkers(f)
               if x.checker == "pointer-key-order"]
        self.assertEqual(len(got), 1)

    def test_value_comparator_silent(self):
        f = Facts()
        f.sort_calls.append(SortCallFact(
            file="src/x.cc", line=5, function="F", algorithm="std::sort",
            keys=[SortKeyFact(text="weight", type="int",
                              is_pointer=False)]))
        self.assertEqual([x for x in checkers.run_checkers(f)
                          if x.checker == "pointer-key-order"], [])

    def test_default_compare_pointer_set_fires(self):
        f = Facts()
        f.ordered_keys.append(OrderedKeyFact(
            file="src/x.cc", line=7, container="std::set",
            key_type="Item*", has_custom_compare=False))
        got = [x for x in checkers.run_checkers(f)
               if x.checker == "pointer-key-order"]
        self.assertEqual(len(got), 1)

    def test_custom_compare_pointer_set_silent(self):
        f = Facts()
        f.ordered_keys.append(OrderedKeyFact(
            file="src/x.cc", line=7, container="std::set",
            key_type="Item*", has_custom_compare=True))
        self.assertEqual([x for x in checkers.run_checkers(f)
                          if x.checker == "pointer-key-order"], [])


class ArenaPodTest(unittest.TestCase):
    def _facts(self, type_text, rec=None):
        f = Facts()
        if rec is not None:
            f.records.append(rec)
        f.arena_allocs.append(ArenaAllocFact(
            file="src/x.cc", line=3, function="F", type=type_text,
            form="placement_new"))
        return f

    def _run(self, f):
        return [x for x in checkers.run_checkers(f)
                if x.checker == "arena-pod"]

    def test_std_string_fires(self):
        self.assertEqual(len(self._run(self._facts("std::string"))), 1)

    def test_fundamental_silent(self):
        self.assertEqual(self._run(self._facts("uint64_t")), [])

    def test_user_dtor_record_fires(self):
        rec = RecordFact(name="Owns", file="src/x.cc", line=1,
                         has_user_dtor=True)
        self.assertEqual(len(self._run(self._facts("Owns", rec))), 1)

    def test_pod_record_silent(self):
        rec = RecordFact(name="Pod", file="src/x.cc", line=1)
        rec.fields.append(FieldFact(name="a", type="int32_t", line=2))
        self.assertEqual(self._run(self._facts("Pod", rec)), [])

    def test_unknown_type_stays_silent(self):
        self.assertEqual(self._run(self._facts("mystery::Type")), [])

    def test_same_file_record_wins_over_name_collision(self):
        # Two anonymous-namespace `Emb`s: POD in the allocating file,
        # non-POD elsewhere. The allocating file's definition decides.
        f = Facts()
        other = RecordFact(name="Emb", file="src/other.cc", line=1,
                           has_user_dtor=True)
        local = RecordFact(name="Emb", file="src/x.cc", line=1)
        local.fields.append(FieldFact(name="n", type="int32_t", line=2))
        f.records.extend([other, local])
        f.arena_allocs.append(ArenaAllocFact(
            file="src/x.cc", line=3, function="F", type="Emb",
            form="AllocateArray"))
        self.assertEqual(self._run(f), [])


class LockCoverageTest(unittest.TestCase):
    def _rec(self, field):
        rec = RecordFact(name="C", file="src/x.h", line=1)
        rec.fields.append(FieldFact(name="mu_", type="util::Mutex",
                                    line=2, is_mutex=True))
        rec.fields.append(field)
        f = Facts()
        f.records.append(rec)
        return [x for x in checkers.run_checkers(f)
                if x.checker == "lock-coverage"]

    def test_bare_field_fires(self):
        got = self._rec(FieldFact(name="n_", type="int64_t", line=3))
        self.assertEqual([x.key for x in got], ["C.n_"])

    def test_guarded_field_silent(self):
        self.assertEqual(
            self._rec(FieldFact(name="n_", type="int64_t", line=3,
                                guarded=True)), [])

    def test_unguarded_by_design_silent(self):
        self.assertEqual(
            self._rec(FieldFact(name="n_", type="int64_t", line=3,
                                unguarded=True)), [])

    def test_const_and_atomic_silent(self):
        self.assertEqual(
            self._rec(FieldFact(name="n_", type="int64_t", line=3,
                                is_const=True)), [])
        self.assertEqual(
            self._rec(FieldFact(name="n_", type="std::atomic<int>",
                                line=3, is_sync=True)), [])

    def test_mutexless_class_silent(self):
        rec = RecordFact(name="C", file="src/x.h", line=1)
        rec.fields.append(FieldFact(name="n_", type="int64_t", line=2))
        f = Facts()
        f.records.append(rec)
        self.assertEqual([x for x in checkers.run_checkers(f)
                          if x.checker == "lock-coverage"], [])


class MetricLiteralTest(unittest.TestCase):
    def _run(self, literal):
        from facts import MetricCallFact
        f = Facts()
        f.metric_calls.append(MetricCallFact(
            file="src/x.cc", line=4, function="F", api="GetCounter",
            arg_text="name", arg_is_literal=literal))
        return [x for x in checkers.run_checkers(f)
                if x.checker == "metric-literal"]

    def test_dynamic_name_fires(self):
        self.assertEqual(len(self._run(False)), 1)

    def test_literal_name_silent(self):
        self.assertEqual(self._run(True), [])


class SuppressionsTest(unittest.TestCase):
    def _load(self, text):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".txt", delete=False) as fh:
            fh.write(text)
            path = fh.name
        try:
            return driver.Suppressions.load(path)
        finally:
            os.unlink(path)

    def _finding(self, **kw):
        defaults = dict(checker="lock-coverage", file="src/x.h", line=3,
                        message="m", key="C.n_")
        defaults.update(kw)
        return Finding(**defaults)

    def test_match_marks_used(self):
        supp = self._load(
            "lock-coverage src/x.h C.n_ -- justified reason\n")
        self.assertTrue(supp.matches(self._finding()))
        self.assertEqual(supp.unused(), [])

    def test_unused_entry_reported(self):
        supp = self._load(
            "lock-coverage src/x.h C.gone_ -- stale entry\n")
        self.assertFalse(supp.matches(self._finding()))
        self.assertEqual(len(supp.unused()), 1)

    def test_missing_justification_rejected(self):
        with self.assertRaises(SystemExit):
            self._load("lock-coverage src/x.h C.n_\n")

    def test_empty_justification_rejected(self):
        with self.assertRaises(SystemExit):
            self._load("lock-coverage src/x.h C.n_ --   \n")

    def test_comments_and_blanks_ignored(self):
        supp = self._load("# comment\n\n")
        self.assertEqual(supp.entries, [])

    def test_key_does_not_match_other_checker(self):
        supp = self._load("arena-pod src/x.h C.n_ -- wrong checker\n")
        self.assertFalse(supp.matches(self._finding()))


class DedupeTest(unittest.TestCase):
    def test_findings_deduped_and_sorted(self):
        f = Facts()
        for _ in range(2):
            f.loops.append(_loop([OP_OTHER]))
        got = [x for x in checkers.run_checkers(f)
               if x.checker == "unordered-order"]
        self.assertEqual(len(got), 1)


if __name__ == "__main__":
    unittest.main()
