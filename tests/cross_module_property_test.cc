#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "classify/sig_knn.h"
#include "data/datasets.h"
#include "data/generator.h"
#include "features/rwr.h"
#include "features/selection.h"
#include "fsm/dfs_code.h"
#include "fsm/miner.h"
#include "graph/io.h"
#include "util/rng.h"

namespace graphsig {
namespace {

// --- gSpan-format I/O round-trips on random molecule databases.
class GSpanIoRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(GSpanIoRoundTripTest, RandomDatabaseRoundTrips) {
  data::DatasetOptions options;
  options.size = 12;
  options.seed = 7100 + GetParam();
  options.active_fraction = 0.25;
  graph::GraphDatabase db = data::MakeAidsLike(options);
  std::ostringstream os;
  graph::WriteGSpanText(db, os);
  auto back = graph::ParseGSpanText(os.str(), nullptr, nullptr);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(back.value().graph(i), db.graph(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GSpanIoRoundTripTest,
                         ::testing::Range(0, 8));

// --- RWR invariants across the alpha / bins / radius parameter space.
class RwrInvariantTest
    : public ::testing::TestWithParam<std::tuple<double, int, int>> {};

TEST_P(RwrInvariantTest, DistributionAndDiscretizationInvariants) {
  const auto [alpha, bins, radius] = GetParam();
  util::Rng rng(7300);
  data::MoleculeGenConfig gen;
  graph::Graph g = data::GenerateMolecule(gen, &rng);
  graph::GraphDatabase db;
  db.Add(g);
  auto fs = features::FeatureSpace::ForChemicalDatabase(db, 5);
  features::RwrConfig config;
  config.restart_prob = alpha;
  config.bins = bins;
  config.radius = radius;
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 3) {
    auto p = features::RwrStationaryDistribution(g, v, config);
    const double mass = std::accumulate(p.begin(), p.end(), 0.0);
    EXPECT_NEAR(mass, 1.0, 1e-6);
    for (double x : p) EXPECT_GE(x, 0.0);
    // Source retains the largest stationary share when the walk is
    // unconfined (window confinement can concentrate mass on low-degree
    // boundary nodes at small alpha).
    if (alpha >= 0.25 && radius == 0) {
      for (graph::VertexId u = 0; u < g.num_vertices(); ++u) {
        EXPECT_LE(p[u], p[v] + 1e-9);
      }
    }
    auto dist = features::RwrFeatureDistribution(g, v, fs, config);
    const double dmass = std::accumulate(dist.begin(), dist.end(), 0.0);
    EXPECT_TRUE(dmass == 0.0 || std::abs(dmass - 1.0) < 1e-6);
    auto vec = features::Discretize(dist, bins);
    for (int16_t x : vec) {
      EXPECT_GE(x, 0);
      EXPECT_LE(x, bins);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RwrInvariantTest,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.5, 0.9),
                       ::testing::Values(5, 10, 20),
                       ::testing::Values(0, 2)));

// --- Miners agree on molecule-shaped databases too (beyond the uniform
// random graphs of fsm_test).
class MoleculeMinerAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(MoleculeMinerAgreementTest, GSpanEqualsApriori) {
  data::DatasetOptions options;
  options.size = 12;
  options.seed = 7400 + GetParam();
  graph::GraphDatabase db = data::MakeAidsLike(options);
  fsm::MinerConfig config;
  config.min_support = 6;
  config.max_edges = 3;
  auto canon = [](const fsm::MineResult& r) {
    std::map<std::string, int64_t> out;
    for (const fsm::Pattern& p : r.patterns) {
      out[fsm::CanonicalCode(p.graph)] = p.support;
    }
    return out;
  };
  EXPECT_EQ(canon(fsm::MineFrequentGSpan(db, config)),
            canon(fsm::MineFrequentApriori(db, config)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoleculeMinerAgreementTest,
                         ::testing::Range(0, 6));

// --- Swapping the class tags swaps the learned vector sets exactly
// (scores are NOT exactly negated because Algorithm 3 tie-breaks toward
// the positive class), and training is deterministic.
TEST(ClassifierPropertyTest, SwappingClassesSwapsVectorSets) {
  data::DatasetOptions options;
  options.size = 120;
  options.seed = 7500;
  options.active_fraction = 0.3;
  options.molecule.min_atoms = 8;
  options.molecule.max_atoms = 14;
  graph::GraphDatabase db = data::MakeCancerScreen("P388", options);

  graph::GraphDatabase swapped = db;
  for (size_t i = 0; i < swapped.size(); ++i) {
    swapped.mutable_graph(i).set_tag(1 - swapped.mutable_graph(i).tag());
  }
  classify::SigKnnConfig config;
  config.mining.cutoff_radius = 3;
  config.mining.min_freq_percent = 3.0;
  classify::GraphSigClassifier normal(config);
  normal.Train(db);
  classify::GraphSigClassifier flipped(config);
  flipped.Train(swapped);
  auto sorted = [](std::vector<features::FeatureVec> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(normal.positive_vectors()),
            sorted(flipped.negative_vectors()));
  EXPECT_EQ(sorted(normal.negative_vectors()),
            sorted(flipped.positive_vectors()));

  classify::GraphSigClassifier again(config);
  again.Train(db);
  for (size_t i = 0; i < db.size(); i += 11) {
    EXPECT_DOUBLE_EQ(normal.Score(db.graph(i)), again.Score(db.graph(i)));
  }
}

// --- Eq. 2 subgraph feature selection.
TEST(SubgraphFeatureSelectionTest, SelectsFrequentDiverseFeatures) {
  data::DatasetOptions options;
  options.size = 60;
  options.seed = 7600;
  graph::GraphDatabase db = data::MakeAidsLike(options);
  features::SubgraphFeatureOptions sel;
  sel.min_support_percent = 20.0;
  sel.max_edges = 3;
  sel.k = 8;
  auto selected = features::SelectSubgraphFeatures(db, sel);
  ASSERT_FALSE(selected.empty());
  EXPECT_LE(selected.size(), 8u);
  std::set<std::vector<int32_t>> signatures;
  for (const fsm::Pattern& p : selected) {
    EXPECT_GE(p.support, fsm::SupportFromPercent(20.0, db.size()));
    signatures.insert(p.supporting);
  }
  // The redundancy penalty must prevent k copies of one support set.
  EXPECT_GT(signatures.size(), 1u);
  // First pick is the single most frequent candidate.
  for (const fsm::Pattern& p : selected) {
    EXPECT_LE(p.support, selected[0].support);
  }
}

TEST(SubgraphFeatureSelectionTest, EmptyWhenNothingFrequent) {
  graph::GraphDatabase db;
  graph::Graph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddEdge(0, 1, 0);
  db.Add(g);
  features::SubgraphFeatureOptions sel;
  sel.min_support_percent = 200.0;  // unattainable
  EXPECT_TRUE(features::SelectSubgraphFeatures(db, sel).empty());
}

}  // namespace
}  // namespace graphsig
