#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "classify/oa_kernel.h"
#include "core/graphsig.h"
#include "data/datasets.h"
#include "features/rwr.h"
#include "util/parallel.h"

namespace graphsig::util {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    ParallelFor(threads, hits.size(), [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelForTest, ZeroAndOneCountWork) {
  int calls = 0;
  ParallelFor(4, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(4, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int64_t> sum{0};
  ParallelFor(16, 5, [&](size_t i) { sum += static_cast<int64_t>(i); });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ParallelForTest, HardwareThreadsPositive) {
  EXPECT_GE(HardwareThreads(), 1);
}

TEST(ParallelFeaturizationTest, ThreadedMatchesSerial) {
  data::DatasetOptions options;
  options.size = 40;
  options.seed = 77;
  graph::GraphDatabase db = data::MakeAidsLike(options);
  auto fs = features::FeatureSpace::ForChemicalDatabase(db, 5);
  features::RwrConfig config;
  auto serial = features::DatabaseToVectors(db, fs, config, 1);
  auto threaded = features::DatabaseToVectors(db, fs, config, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].graph_index, threaded[i].graph_index);
    EXPECT_EQ(serial[i].node, threaded[i].node);
    EXPECT_EQ(serial[i].values, threaded[i].values);
  }
}

// The acceptance bar for the parallel pipeline: Mine() is bit-identical
// for every thread count, across every field of every report, in the
// same order. Exercises parallel FVMine groups, the region-cut cache,
// per-vector graph-space tasks, and the deterministic merges.
TEST(ParallelFeaturizationTest, MineBitIdenticalAcrossThreadCounts) {
  data::DatasetOptions options;
  options.size = 60;
  options.seed = 78;
  options.active_fraction = 0.2;
  graph::GraphDatabase db = data::MakeAidsLike(options);
  core::GraphSigConfig config;
  config.cutoff_radius = 3;
  config.min_freq_percent = 2.0;
  core::GraphSigResult serial = core::GraphSig(config).Mine(db);
  EXPECT_GT(serial.subgraphs.size(), 0u);
  for (int threads : {4, 8}) {
    config.num_threads = threads;
    core::GraphSigResult threaded = core::GraphSig(config).Mine(db);
    ASSERT_EQ(serial.subgraphs.size(), threaded.subgraphs.size())
        << "threads=" << threads;
    for (size_t i = 0; i < serial.subgraphs.size(); ++i) {
      const core::SignificantSubgraph& a = serial.subgraphs[i];
      const core::SignificantSubgraph& b = threaded.subgraphs[i];
      EXPECT_EQ(a.subgraph, b.subgraph) << "threads=" << threads;
      EXPECT_EQ(a.vector, b.vector);
      EXPECT_EQ(a.vector_pvalue, b.vector_pvalue);
      EXPECT_EQ(a.vector_support, b.vector_support);
      EXPECT_EQ(a.anchor_label, b.anchor_label);
      EXPECT_EQ(a.set_size, b.set_size);
      EXPECT_EQ(a.set_support, b.set_support);
      EXPECT_EQ(a.db_frequency, b.db_frequency);
    }
    EXPECT_EQ(serial.stats.num_vectors, threaded.stats.num_vectors);
    EXPECT_EQ(serial.stats.num_groups, threaded.stats.num_groups);
    EXPECT_EQ(serial.stats.num_significant_vectors,
              threaded.stats.num_significant_vectors);
    EXPECT_EQ(serial.stats.num_sets_mined, threaded.stats.num_sets_mined);
    EXPECT_EQ(serial.stats.num_sets_filtered,
              threaded.stats.num_sets_filtered);
    EXPECT_EQ(serial.stats.num_region_requests,
              threaded.stats.num_region_requests);
    EXPECT_EQ(serial.stats.num_unique_regions,
              threaded.stats.num_unique_regions);
  }
  // The cache only pays off if cuts are actually shared across vectors.
  EXPECT_LT(serial.stats.num_unique_regions,
            serial.stats.num_region_requests);
}

TEST(ParallelOaTest, ThreadedGramMatchesSerial) {
  data::DatasetOptions options;
  options.size = 40;
  options.seed = 79;
  options.active_fraction = 0.3;
  graph::GraphDatabase db = data::MakeAidsLike(options);

  classify::OaKernelConfig serial_config;
  classify::OaKernelClassifier serial(serial_config);
  serial.Train(db);

  classify::OaKernelConfig threaded_config;
  threaded_config.num_threads = 4;
  classify::OaKernelClassifier threaded(threaded_config);
  threaded.Train(db);

  for (size_t i = 0; i < db.size(); i += 7) {
    EXPECT_DOUBLE_EQ(serial.Score(db.graph(i)),
                     threaded.Score(db.graph(i)));
  }
}

}  // namespace
}  // namespace graphsig::util
