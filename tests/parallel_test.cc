#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "classify/oa_kernel.h"
#include "core/graphsig.h"
#include "data/datasets.h"
#include "features/rwr.h"
#include "util/parallel.h"

namespace graphsig::util {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    ParallelFor(threads, hits.size(), [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelForTest, ZeroAndOneCountWork) {
  int calls = 0;
  ParallelFor(4, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(4, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int64_t> sum{0};
  ParallelFor(16, 5, [&](size_t i) { sum += static_cast<int64_t>(i); });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ParallelForTest, HardwareThreadsPositive) {
  EXPECT_GE(HardwareThreads(), 1);
}

TEST(ParallelFeaturizationTest, ThreadedMatchesSerial) {
  data::DatasetOptions options;
  options.size = 40;
  options.seed = 77;
  graph::GraphDatabase db = data::MakeAidsLike(options);
  auto fs = features::FeatureSpace::ForChemicalDatabase(db, 5);
  features::RwrConfig config;
  auto serial = features::DatabaseToVectors(db, fs, config, 1);
  auto threaded = features::DatabaseToVectors(db, fs, config, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].graph_index, threaded[i].graph_index);
    EXPECT_EQ(serial[i].node, threaded[i].node);
    EXPECT_EQ(serial[i].values, threaded[i].values);
  }
}

TEST(ParallelFeaturizationTest, GraphSigResultsIdentical) {
  data::DatasetOptions options;
  options.size = 60;
  options.seed = 78;
  options.active_fraction = 0.2;
  graph::GraphDatabase db = data::MakeAidsLike(options);
  core::GraphSigConfig config;
  config.cutoff_radius = 3;
  config.min_freq_percent = 2.0;
  core::GraphSig serial(config);
  config.num_threads = 4;
  core::GraphSig threaded(config);
  auto a = serial.Mine(db);
  auto b = threaded.Mine(db);
  ASSERT_EQ(a.subgraphs.size(), b.subgraphs.size());
  for (size_t i = 0; i < a.subgraphs.size(); ++i) {
    EXPECT_EQ(a.subgraphs[i].subgraph, b.subgraphs[i].subgraph);
    EXPECT_EQ(a.subgraphs[i].vector_pvalue, b.subgraphs[i].vector_pvalue);
    EXPECT_EQ(a.subgraphs[i].db_frequency, b.subgraphs[i].db_frequency);
  }
}

TEST(ParallelOaTest, ThreadedGramMatchesSerial) {
  data::DatasetOptions options;
  options.size = 40;
  options.seed = 79;
  options.active_fraction = 0.3;
  graph::GraphDatabase db = data::MakeAidsLike(options);

  classify::OaKernelConfig serial_config;
  classify::OaKernelClassifier serial(serial_config);
  serial.Train(db);

  classify::OaKernelConfig threaded_config;
  threaded_config.num_threads = 4;
  classify::OaKernelClassifier threaded(threaded_config);
  threaded.Train(db);

  for (size_t i = 0; i < db.size(); i += 7) {
    EXPECT_DOUBLE_EQ(serial.Score(db.graph(i)),
                     threaded.Score(db.graph(i)));
  }
}

}  // namespace
}  // namespace graphsig::util
