#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/isomorphism.h"
#include "util/rng.h"

namespace graphsig::graph {
namespace {

Graph Triangle(Label a, Label b, Label c, Label e = 0) {
  Graph g;
  g.AddVertex(a);
  g.AddVertex(b);
  g.AddVertex(c);
  g.AddEdge(0, 1, e);
  g.AddEdge(1, 2, e);
  g.AddEdge(2, 0, e);
  return g;
}

Graph Path(std::vector<Label> vlabels, std::vector<Label> elabels) {
  Graph g;
  for (Label l : vlabels) g.AddVertex(l);
  for (size_t i = 0; i < elabels.size(); ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1),
              elabels[i]);
  }
  return g;
}

TEST(IsomorphismTest, PathInTriangle) {
  Graph pattern = Path({1, 2}, {0});
  Graph target = Triangle(1, 2, 3);
  EXPECT_TRUE(IsSubgraphIsomorphic(pattern, target));
}

TEST(IsomorphismTest, LabelMismatchFails) {
  Graph pattern = Path({1, 9}, {0});
  Graph target = Triangle(1, 2, 3);
  EXPECT_FALSE(IsSubgraphIsomorphic(pattern, target));
}

TEST(IsomorphismTest, EdgeLabelMismatchFails) {
  Graph pattern = Path({1, 2}, {7});
  Graph target = Triangle(1, 2, 3, 0);
  EXPECT_FALSE(IsSubgraphIsomorphic(pattern, target));
}

TEST(IsomorphismTest, NonInducedSemantics) {
  // A path a-b-c embeds in a triangle a-b-c even though the triangle has
  // the extra closing edge (monomorphism, not induced isomorphism).
  Graph pattern = Path({1, 2, 3}, {0, 0});
  Graph target = Triangle(1, 2, 3);
  EXPECT_TRUE(IsSubgraphIsomorphic(pattern, target));
}

TEST(IsomorphismTest, TriangleNotInPath) {
  Graph pattern = Triangle(1, 2, 3);
  Graph target = Path({1, 2, 3}, {0, 0});
  EXPECT_FALSE(IsSubgraphIsomorphic(pattern, target));
}

TEST(IsomorphismTest, EmptyPatternMatches) {
  Graph pattern;
  Graph target = Triangle(1, 2, 3);
  EXPECT_TRUE(IsSubgraphIsomorphic(pattern, target));
}

TEST(IsomorphismTest, FindEmbeddingIsValid) {
  Graph pattern = Path({1, 2, 3}, {0, 0});
  Graph target = Triangle(1, 2, 3);
  auto emb = FindEmbedding(pattern, target);
  ASSERT_TRUE(emb.has_value());
  ASSERT_EQ(emb->size(), 3u);
  for (VertexId pv = 0; pv < pattern.num_vertices(); ++pv) {
    EXPECT_EQ(pattern.vertex_label(pv), target.vertex_label((*emb)[pv]));
  }
  for (const EdgeRecord& e : pattern.edges()) {
    EXPECT_EQ(target.EdgeLabelBetween((*emb)[e.u], (*emb)[e.v]), e.label);
  }
}

TEST(IsomorphismTest, CountEmbeddingsOnSymmetricTarget) {
  // Pattern a-a in a triangle of all-a: each undirected edge matched in
  // both directions -> 6 embeddings.
  Graph pattern = Path({5, 5}, {0});
  Graph target = Triangle(5, 5, 5);
  EXPECT_EQ(CountEmbeddings(pattern, target), 6u);
  EXPECT_EQ(CountEmbeddings(pattern, target, 2), 2u);
}

TEST(IsomorphismTest, FindAllEmbeddingsMatchesCount) {
  Graph pattern = Path({5, 5}, {0});
  Graph target = Triangle(5, 5, 5);
  auto all = FindAllEmbeddings(pattern, target);
  EXPECT_EQ(all.size(), 6u);
  auto capped = FindAllEmbeddings(pattern, target, 3);
  EXPECT_EQ(capped.size(), 3u);
}

TEST(IsomorphismTest, AreIsomorphicRelabeling) {
  Graph a = Triangle(1, 2, 3);
  // Same triangle constructed in a different vertex order.
  Graph b;
  b.AddVertex(3);
  b.AddVertex(1);
  b.AddVertex(2);
  b.AddEdge(0, 1, 0);
  b.AddEdge(1, 2, 0);
  b.AddEdge(2, 0, 0);
  EXPECT_TRUE(AreIsomorphic(a, b));
}

TEST(IsomorphismTest, AreIsomorphicRejectsDifferentEdgeCounts) {
  Graph a = Triangle(1, 1, 1);
  Graph b = Path({1, 1, 1}, {0, 0});
  EXPECT_FALSE(AreIsomorphic(a, b));
  EXPECT_FALSE(AreIsomorphic(b, a));
}

TEST(IsomorphismTest, DisconnectedPatternSupported) {
  Graph pattern;
  pattern.AddVertex(1);
  pattern.AddVertex(2);  // two isolated labeled vertices
  Graph target = Path({1, 3, 2}, {0, 0});
  EXPECT_TRUE(IsSubgraphIsomorphic(pattern, target));
  Graph target2 = Path({1, 3, 3}, {0, 0});
  EXPECT_FALSE(IsSubgraphIsomorphic(pattern, target2));
}

// Property sweep: random connected subgraphs of a random host must always
// be found; the host must not be found in a strictly smaller pattern.
class IsomorphismPropertyTest : public ::testing::TestWithParam<int> {};

Graph RandomConnectedGraph(util::Rng* rng, int n, int extra_edges,
                           int vlabels, int elabels) {
  Graph g;
  for (int i = 0; i < n; ++i) {
    g.AddVertex(static_cast<Label>(rng->NextBounded(vlabels)));
  }
  // Random spanning tree.
  for (int i = 1; i < n; ++i) {
    VertexId parent = static_cast<VertexId>(rng->NextBounded(i));
    g.AddEdge(parent, i, static_cast<Label>(rng->NextBounded(elabels)));
  }
  for (int k = 0; k < extra_edges; ++k) {
    VertexId u = static_cast<VertexId>(rng->NextBounded(n));
    VertexId v = static_cast<VertexId>(rng->NextBounded(n));
    if (u == v || g.HasEdge(u, v)) continue;
    g.AddEdge(u, v, static_cast<Label>(rng->NextBounded(elabels)));
  }
  return g;
}

TEST_P(IsomorphismPropertyTest, RandomSubgraphAlwaysFound) {
  util::Rng rng(1000 + GetParam());
  Graph host = RandomConnectedGraph(&rng, 12, 5, 3, 2);
  // Take a BFS ball as a connected subgraph.
  VertexId center = static_cast<VertexId>(rng.NextBounded(12));
  auto ball = host.VerticesWithinRadius(center, 2);
  Graph pattern = host.InducedSubgraph(ball);
  EXPECT_TRUE(IsSubgraphIsomorphic(pattern, host));
}

TEST_P(IsomorphismPropertyTest, HostNotInProperSubgraph) {
  util::Rng rng(2000 + GetParam());
  Graph host = RandomConnectedGraph(&rng, 10, 4, 3, 2);
  std::vector<VertexId> most;
  for (VertexId v = 0; v + 1 < host.num_vertices(); ++v) most.push_back(v);
  Graph smaller = host.InducedSubgraph(most);
  EXPECT_FALSE(IsSubgraphIsomorphic(host, smaller));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsomorphismPropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace graphsig::graph
