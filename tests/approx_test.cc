// Approximate mining tier tests (src/approx). The two load-bearing
// properties, per DESIGN.md §13:
//   1. Calibration — over many seeds, the nominal 95% confidence
//      intervals actually contain the brute-force truth at a rate near
//      nominal (asserted >= 90%, leaving slack for CLT approximation).
//   2. Determinism — for a fixed seed, results AND work counters are
//      byte-identical across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "approx/ci.h"
#include "approx/estimators.h"
#include "data/datasets.h"
#include "graph/isomorphism.h"
#include "obs/metrics.h"
#include "util/strings.h"

namespace graphsig::approx {
namespace {

graph::GraphDatabase TestScreen() {
  data::DatasetOptions options;
  options.size = 30;
  options.seed = 99;
  options.active_fraction = 0.3;
  return data::MakeCancerScreen("MCF-7", options);
}

// A small connected pattern cut out of the database itself (a vertex,
// one of its neighbors, and one more BFS vertex), so it has nontrivial
// support without being universal.
graph::Graph SmallPattern(const graph::GraphDatabase& db) {
  const graph::Graph& g = db.graph(0);
  std::vector<graph::VertexId> verts = g.VerticesWithinRadius(0, 1);
  verts.resize(std::min<size_t>(verts.size(), 3));
  return g.InducedSubgraph(verts);
}

// ---------------------------------------------------------------------
// Interval math.

TEST(ApproxCiTest, NormalQuantileMatchesKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.995), 2.575829, 1e-5);
}

TEST(ApproxCiTest, WilsonIntervalBracketsTheObservedFraction) {
  const ConfidenceInterval ci = WilsonInterval(30, 100, 0.95);
  EXPECT_TRUE(ci.Contains(0.3));
  EXPECT_GT(ci.lo, 0.0);
  EXPECT_LT(ci.hi, 1.0);
  // Extremes stay clamped to the unit interval.
  EXPECT_EQ(WilsonInterval(0, 50, 0.95).lo, 0.0);
  EXPECT_EQ(WilsonInterval(50, 50, 0.95).hi, 1.0);
  // Higher confidence can only widen the interval.
  const ConfidenceInterval wider = WilsonInterval(30, 100, 0.99);
  EXPECT_LE(wider.lo, ci.lo);
  EXPECT_GE(wider.hi, ci.hi);
}

TEST(ApproxCiTest, MeanIntervalDegeneratesWithoutVariance) {
  const ConfidenceInterval point = MeanInterval(5.0, 0.0, 100, 0.95);
  EXPECT_EQ(point.lo, 5.0);
  EXPECT_EQ(point.hi, 5.0);
  const ConfidenceInterval ci = MeanInterval(5.0, 4.0, 100, 0.95);
  EXPECT_NEAR(ci.lo, 5.0 - 1.959964 * 0.2, 1e-4);
  EXPECT_NEAR(ci.hi, 5.0 + 1.959964 * 0.2, 1e-4);
}

// ---------------------------------------------------------------------
// Calibration against brute force.

TEST(ApproxCoverageTest, SupportIntervalsCoverTheExactCount) {
  const graph::GraphDatabase db = TestScreen();
  const graph::Graph pattern = SmallPattern(db);
  int64_t true_support = 0;
  for (size_t g = 0; g < db.size(); ++g) {
    if (graph::IsSubgraphIsomorphic(pattern, db.graph(g))) ++true_support;
  }
  // The pattern must discriminate for the test to mean anything.
  ASSERT_GT(true_support, 0);

  int covered = 0;
  const int kSeeds = 100;
  for (int seed = 0; seed < kSeeds; ++seed) {
    SupportConfig config;
    config.seed = 1000 + static_cast<uint64_t>(seed);
    config.num_samples = 200;
    config.confidence = 0.95;
    auto estimate = EstimateSupport(db, pattern, config);
    ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
    if (estimate.value().support_ci.Contains(
            static_cast<double>(true_support))) {
      ++covered;
    }
  }
  // Nominal coverage is 95%; 90/100 leaves room for the normal
  // approximation inside Wilson without letting a broken interval pass.
  EXPECT_GE(covered, 90) << "of " << kSeeds;
}

TEST(ApproxCoverageTest, FrequencyIntervalsCoverTheExactEmbeddingCount) {
  const graph::GraphDatabase db = TestScreen();
  const graph::Graph pattern = SmallPattern(db);
  double true_embeddings = 0.0;
  for (size_t g = 0; g < db.size(); ++g) {
    true_embeddings +=
        static_cast<double>(graph::CountEmbeddings(pattern, db.graph(g)));
  }
  ASSERT_GT(true_embeddings, 0.0);

  int covered = 0;
  const int kSeeds = 100;
  for (int seed = 0; seed < kSeeds; ++seed) {
    FrequencyConfig config;
    config.seed = 2000 + static_cast<uint64_t>(seed);
    config.num_walks = 4000;
    config.confidence = 0.95;
    auto estimate = EstimateFrequency(db, pattern, config);
    ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
    if (estimate.value().ci.Contains(true_embeddings)) ++covered;
  }
  EXPECT_GE(covered, 90) << "of " << kSeeds;
}

// ---------------------------------------------------------------------
// Determinism across thread counts.

std::string Serialize(const SupportEstimate& e) {
  return util::StrPrintf(
      "hits=%lld n=%d fraction=%.17g support=%.17g fci=[%.17g,%.17g,%.17g] "
      "sci=[%.17g,%.17g,%.17g]",
      static_cast<long long>(e.hits), e.num_samples, e.fraction, e.support,
      e.fraction_ci.lo, e.fraction_ci.hi, e.fraction_ci.confidence,
      e.support_ci.lo, e.support_ci.hi, e.support_ci.confidence);
}

std::string Serialize(const FrequencyEstimate& e) {
  return util::StrPrintf(
      "embeddings=%.17g ci=[%.17g,%.17g,%.17g] hits=%lld walks=%d",
      e.embeddings, e.ci.lo, e.ci.hi, e.ci.confidence,
      static_cast<long long>(e.hits), e.num_walks);
}

std::string Serialize(const TopKResult& r) {
  std::string out = util::StrPrintf(
      "drawn=%lld kept=%lld distinct=%lld\n",
      static_cast<long long>(r.samples_drawn),
      static_cast<long long>(r.samples_kept),
      static_cast<long long>(r.distinct_patterns));
  for (const TopKCandidate& c : r.top) {
    out += util::StrPrintf("%lld %s | %s | %s\n",
                           static_cast<long long>(c.times_sampled),
                           c.canonical_key.c_str(),
                           c.pattern.ToString().c_str(),
                           Serialize(c.support).c_str());
  }
  return out;
}

std::string SerializeWorkCounters() {
  std::string out;
  for (const auto& [name, value] :
       obs::MetricsRegistry::Global().WorkValues()) {
    out += util::StrPrintf("%s=%llu\n", name.c_str(),
                           static_cast<unsigned long long>(value));
  }
  return out;
}

TEST(ApproxDeterminismTest, ResultsAndCountersAreThreadCountInvariant) {
  const graph::GraphDatabase db = TestScreen();
  const graph::Graph pattern = SmallPattern(db);

  // One serialized transcript per thread count: every estimator's full
  // result plus the global work counters after the runs. Byte equality
  // across thread counts is the contract the server relies on.
  std::vector<std::string> transcripts;
  for (const int threads : {1, 4, 8}) {
    obs::MetricsRegistry::Global().Reset();
    std::string transcript;

    SupportConfig support;
    support.seed = 42;
    support.num_samples = 300;
    support.num_threads = threads;
    auto support_estimate = EstimateSupport(db, pattern, support);
    ASSERT_TRUE(support_estimate.ok());
    transcript += Serialize(support_estimate.value()) + "\n";

    FrequencyConfig frequency;
    frequency.seed = 43;
    frequency.num_walks = 2000;
    frequency.num_threads = threads;
    auto frequency_estimate = EstimateFrequency(db, pattern, frequency);
    ASSERT_TRUE(frequency_estimate.ok());
    transcript += Serialize(frequency_estimate.value()) + "\n";

    TopKConfig topk;
    topk.seed = 44;
    topk.k = 5;
    topk.subgraph_edges = 3;
    topk.num_samples = 400;
    topk.support_samples = 64;
    topk.num_threads = threads;
    auto topk_result = SampleTopK(db, topk);
    ASSERT_TRUE(topk_result.ok());
    transcript += Serialize(topk_result.value());

    transcript += SerializeWorkCounters();
    transcripts.push_back(std::move(transcript));
  }
  EXPECT_EQ(transcripts[0], transcripts[1]);
  EXPECT_EQ(transcripts[0], transcripts[2]);
}

// ---------------------------------------------------------------------
// Top-k structure and input validation.

TEST(ApproxTopKTest, RanksDistinctPatternsByDrawCount) {
  const graph::GraphDatabase db = TestScreen();
  TopKConfig config;
  config.seed = 7;
  config.k = 8;
  config.subgraph_edges = 3;
  config.num_samples = 500;
  config.support_samples = 64;
  auto result = SampleTopK(db, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TopKResult& top = result.value();
  EXPECT_EQ(top.samples_drawn, 500);
  EXPECT_GT(top.samples_kept, 0);
  ASSERT_FALSE(top.top.empty());
  EXPECT_LE(top.top.size(), 8u);
  for (size_t i = 0; i < top.top.size(); ++i) {
    const TopKCandidate& c = top.top[i];
    EXPECT_EQ(c.pattern.num_edges(), 3) << i;
    EXPECT_GT(c.times_sampled, 0) << i;
    if (i > 0) {
      EXPECT_GE(top.top[i - 1].times_sampled, c.times_sampled) << i;
      EXPECT_NE(top.top[i - 1].canonical_key, c.canonical_key) << i;
    }
    // Each candidate carries a support estimate bracketing its point.
    EXPECT_EQ(c.support.num_samples, 64) << i;
    EXPECT_TRUE(c.support.support_ci.Contains(c.support.support)) << i;
  }
}

TEST(ApproxValidationTest, RejectsBadInputs) {
  const graph::GraphDatabase db = TestScreen();
  const graph::Graph pattern = SmallPattern(db);
  const graph::GraphDatabase empty;

  EXPECT_FALSE(EstimateSupport(empty, pattern, {}).ok());
  SupportConfig bad_confidence;
  bad_confidence.confidence = 1.0;
  EXPECT_FALSE(EstimateSupport(db, pattern, bad_confidence).ok());
  SupportConfig no_samples;
  no_samples.num_samples = 0;
  EXPECT_FALSE(EstimateSupport(db, pattern, no_samples).ok());

  // Frequency needs a non-empty, connected pattern.
  EXPECT_FALSE(EstimateFrequency(db, graph::Graph(), {}).ok());
  graph::Graph disconnected;
  disconnected.AddVertex(0);
  disconnected.AddVertex(0);
  EXPECT_FALSE(EstimateFrequency(db, disconnected, {}).ok());

  TopKConfig no_k;
  no_k.k = 0;
  EXPECT_FALSE(SampleTopK(db, no_k).ok());
  TopKConfig no_edges;
  no_edges.subgraph_edges = 0;
  EXPECT_FALSE(SampleTopK(db, no_edges).ok());
}

}  // namespace
}  // namespace graphsig::approx
