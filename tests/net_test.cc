// Wire-protocol and server tests: codec round-trips and decoder
// rejection cases (Wire*), then the server end to end over a loopback
// socket (NetServer*) — an in-thread Server on an ephemeral port, real
// Clients hammering it concurrently, and raw socket writes for the
// malformed/truncated/oversized attack shapes. The load-bearing
// property throughout: a reply over the wire is byte-identical to an
// in-process PatternCatalog::Query against the same artifact.
//
// The CI TSan job runs these suites with 8 concurrent clients — in a
// single-core container, correctness under the race detector is the
// evidence of thread-safety, not wall-clock speedup.

#include <gtest/gtest.h>

#include <cstring>

#include <atomic>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/graphsig.h"
#include "data/datasets.h"
#include "model/artifact.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "serve/catalog_handle.h"
#include "serve/pattern_catalog.h"
#include "serve/sharded_catalog.h"
#include "util/check.h"

namespace graphsig::net {
namespace {

// ---------------------------------------------------------------------
// Shared fixture: one small mined artifact + catalog for every test
// (mining dominates runtime, so pay it once).

struct Fixture {
  graph::GraphDatabase db;
  // shared_ptr because that is what a CatalogHandle publishes; tests
  // also query it directly for expected-bytes comparisons.
  std::shared_ptr<const serve::PatternCatalog> catalog;
  // optional<> because CatalogHandle is neither movable nor default-
  // constructible (it always points at a live catalog).
  std::optional<serve::CatalogHandle> handle;
};

const Fixture& SharedFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    data::DatasetOptions options;
    options.size = 40;
    options.seed = 77;
    options.active_fraction = 0.3;
    f->db = data::MakeCancerScreen("MCF-7", options);

    core::GraphSigConfig config;
    config.cutoff_radius = 3;
    config.min_freq_percent = 5.0;
    config.fsm_max_edges = 10;
    core::GraphSig miner(config);
    core::GraphSigResult mined = miner.Mine(f->db.FilterByTag(1));

    model::ModelArtifact artifact;
    artifact.database = f->db;
    artifact.feature_space = std::move(mined.feature_space);
    artifact.catalog = std::move(mined.subgraphs);
    auto catalog = serve::PatternCatalog::FromArtifact(std::move(artifact));
    GS_CHECK(catalog.ok());
    f->catalog = std::make_shared<const serve::PatternCatalog>(
        std::move(catalog).value());
    f->handle.emplace(f->catalog);
    return f;
  }();
  return *fixture;
}

// The bytes the server must produce for one Query frame: the in-process
// result projected onto the wire reply. Must mirror ProcessQuery's
// config exactly (num_threads = 1).
std::string ExpectedReplyBytes(const graph::Graph& query,
                               const wire::QueryOptions& options = {}) {
  serve::CatalogQueryConfig config;
  config.num_threads = 1;
  config.compute_matches = options.compute_matches;
  config.compute_score = options.compute_score;
  return wire::EncodeQueryReply(
      wire::ReplyFromResult(SharedFixture().catalog->Query(query, config)));
}

// Server on an ephemeral loopback port, event loop on its own thread.
// Serves the shared fixture's catalog unless a handle is passed in
// (the hot-swap tests bring their own so they can Swap() mid-load).
class TestServer {
 public:
  explicit TestServer(ServerConfig config = {},
                      const serve::CatalogHandle* handle = nullptr)
      : server_(handle != nullptr ? handle : &*SharedFixture().handle,
                std::move(config)) {
    GS_CHECK(server_.Start().ok());
    thread_ = std::thread([this] { serve_status_ = server_.Serve(); });
  }

  ~TestServer() { Shutdown(); }

  void Shutdown() {
    if (thread_.joinable()) {
      server_.RequestShutdown();
      thread_.join();
      EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
    }
  }

  uint16_t port() const { return server_.port(); }
  Server& server() { return server_; }

 private:
  Server server_;
  std::thread thread_;
  util::Status serve_status_;
};

ClientConfig MakeClientConfig(uint16_t port) {
  ClientConfig config;
  config.port = port;
  config.io_timeout_seconds = 30.0;
  return config;
}

// ---------------------------------------------------------------------
// Wire codec.

TEST(WireFrameTest, RoundTripWholeAndByteAtATime) {
  const std::string payload = "hello frame payload \x00\x01\x02 bytes";
  const std::string encoded =
      wire::EncodeFrame(wire::MessageType::kQueryReply, payload);
  ASSERT_EQ(encoded.size(), wire::kFrameHeaderBytes + payload.size());

  wire::FrameDecoder whole;
  whole.Append(encoded);
  auto frame = whole.Next();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(frame.value()->type, wire::MessageType::kQueryReply);
  EXPECT_EQ(frame.value()->payload, payload);
  auto drained = whole.Next();
  ASSERT_TRUE(drained.ok());
  EXPECT_FALSE(drained.value().has_value());

  // Byte-at-a-time segmentation must produce the identical frame.
  wire::FrameDecoder dripped;
  for (size_t i = 0; i < encoded.size(); ++i) {
    dripped.Append(std::string_view(encoded).substr(i, 1));
    auto next = dripped.Next();
    ASSERT_TRUE(next.ok());
    if (i + 1 < encoded.size()) {
      EXPECT_FALSE(next.value().has_value());
    } else {
      ASSERT_TRUE(next.value().has_value());
      EXPECT_EQ(next.value()->payload, payload);
    }
  }
}

TEST(WireFrameTest, BackToBackFramesSplitCleanly) {
  const std::string stream =
      wire::EncodeFrame(wire::MessageType::kHealth, "") +
      wire::EncodeFrame(wire::MessageType::kStats, "") +
      wire::EncodeFrame(wire::MessageType::kRetryLater, "");
  wire::FrameDecoder decoder;
  decoder.Append(stream);
  std::vector<wire::MessageType> types;
  while (true) {
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok());
    if (!next.value().has_value()) break;
    types.push_back(next.value()->type);
  }
  EXPECT_EQ(types,
            (std::vector<wire::MessageType>{wire::MessageType::kHealth,
                                            wire::MessageType::kStats,
                                            wire::MessageType::kRetryLater}));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WireFrameTest, RejectsCorruptHeaders) {
  const std::string good = wire::EncodeFrame(wire::MessageType::kHealth, "ok");

  {  // Bad magic.
    std::string bad = good;
    bad[0] ^= 0xFF;
    wire::FrameDecoder decoder;
    decoder.Append(bad);
    EXPECT_FALSE(decoder.Next().ok());
  }
  {  // Unsupported version.
    std::string bad = good;
    bad[4] = 9;
    wire::FrameDecoder decoder;
    decoder.Append(bad);
    EXPECT_FALSE(decoder.Next().ok());
  }
  {  // Unknown message type.
    std::string bad = good;
    bad[5] = static_cast<char>(200);
    wire::FrameDecoder decoder;
    decoder.Append(bad);
    EXPECT_FALSE(decoder.Next().ok());
  }
  {  // Nonzero reserved bits.
    std::string bad = good;
    bad[6] = 1;
    wire::FrameDecoder decoder;
    decoder.Append(bad);
    EXPECT_FALSE(decoder.Next().ok());
  }
  {  // Payload corruption flips the CRC check.
    std::string bad = good;
    bad[wire::kFrameHeaderBytes] ^= 0x01;
    wire::FrameDecoder decoder;
    decoder.Append(bad);
    EXPECT_FALSE(decoder.Next().ok());
  }
}

TEST(WireFrameTest, OversizedAnnouncementIsAnErrorNotAnAllocation) {
  // Header announcing a payload beyond the decoder's max: rejected as
  // soon as the header is complete, without waiting for payload bytes.
  std::string frame = wire::EncodeFrame(wire::MessageType::kQuery,
                                        std::string(1024, 'x'));
  wire::FrameDecoder decoder(/*max_payload_bytes=*/512);
  decoder.Append(frame.substr(0, wire::kFrameHeaderBytes));
  auto next = decoder.Next();
  EXPECT_FALSE(next.ok());
}

TEST(WireFrameTest, TruncatedFrameParksAsNeedsMore) {
  const std::string encoded =
      wire::EncodeFrame(wire::MessageType::kHealth, "payload");
  wire::FrameDecoder decoder;
  decoder.Append(encoded.substr(0, encoded.size() - 1));
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next.value().has_value());
  decoder.Append(encoded.substr(encoded.size() - 1));
  auto completed = decoder.Next();
  ASSERT_TRUE(completed.ok());
  ASSERT_TRUE(completed.value().has_value());
  EXPECT_EQ(completed.value()->payload, "payload");
}

// ---------------------------------------------------------------------
// Wire versioning (v2 added the stats work-counter extension). Frames
// carry the LOWEST version whose decoder understands the payload, so a
// v1 peer keeps interoperating until someone explicitly asks for v2.

TEST(WireVersionTest, FrameCarriesItsVersion) {
  const std::string v1 = wire::EncodeFrame(wire::MessageType::kHealth, "x");
  const std::string v2 =
      wire::EncodeFrame(wire::MessageType::kStats, "y", /*version=*/2);
  wire::FrameDecoder decoder;
  decoder.Append(v1);
  decoder.Append(v2);
  auto first = decoder.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().has_value());
  EXPECT_EQ(first.value()->version, wire::kBaseWireVersion);
  auto second = decoder.Next();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value().has_value());
  EXPECT_EQ(second.value()->version, 2);
}

TEST(WireVersionTest, RejectsVersionsOutsideTheSupportedRange) {
  std::string frame = wire::EncodeFrame(wire::MessageType::kHealth, "ok");
  {  // Above kWireVersion (a future sender): refuse rather than guess.
    std::string bad = frame;
    bad[4] = static_cast<char>(wire::kWireVersion + 1);
    wire::FrameDecoder decoder;
    decoder.Append(bad);
    EXPECT_FALSE(decoder.Next().ok());
  }
  {  // Below kBaseWireVersion: version 0 never existed on this wire.
    std::string bad = frame;
    bad[4] = 0;
    wire::FrameDecoder decoder;
    decoder.Append(bad);
    EXPECT_FALSE(decoder.Next().ok());
  }
}

TEST(WireVersionTest, StatsRequestEncodesCanonically) {
  // The v1 request is the empty payload a pre-v2 client sends.
  wire::StatsRequest v1;
  EXPECT_EQ(wire::EncodeStatsRequest(v1), "");
  auto v1_again = wire::DecodeStatsRequest("");
  ASSERT_TRUE(v1_again.ok());
  EXPECT_EQ(v1_again.value().version, wire::kBaseWireVersion);

  wire::StatsRequest v2;
  v2.version = 2;
  const std::string encoded = wire::EncodeStatsRequest(v2);
  ASSERT_EQ(encoded.size(), 1u);
  auto v2_again = wire::DecodeStatsRequest(encoded);
  ASSERT_TRUE(v2_again.ok());
  EXPECT_EQ(v2_again.value().version, 2);

  // A spelled-out v1 version byte is non-canonical (v1 is the empty
  // payload); accepting both spellings would break the fuzzer's
  // encode(decode(x)) == x pinning.
  EXPECT_FALSE(wire::DecodeStatsRequest(std::string(1, '\x01')).ok());
}

TEST(WireVersionTest, StatsReplyBackwardCompatibleDecode) {
  wire::StatsReply reply;
  reply.serving.queries = 3;
  reply.connections_accepted = 1;
  reply.frames_received = 5;
  reply.requests_served = 3;

  // Without work counters the encoding IS the v1 payload: an old client
  // decodes it unchanged, and the frame is stamped v1.
  EXPECT_EQ(wire::StatsReplyWireVersion(reply), wire::kBaseWireVersion);
  const std::string v1_bytes = wire::EncodeStatsReply(reply);
  auto v1_again = wire::DecodeStatsReply(v1_bytes);
  ASSERT_TRUE(v1_again.ok());
  EXPECT_TRUE(v1_again.value().work_counters.empty());
  EXPECT_EQ(v1_again.value().serving.queries, 3);

  reply.work_counters = {{"fvmine/expansions", 42}, {"rwr/float_ops", 7}};
  EXPECT_EQ(wire::StatsReplyWireVersion(reply), 2);
  const std::string v2_bytes = wire::EncodeStatsReply(reply);
  // The v2 encoding extends the v1 payload in place: same prefix, the
  // counter section appended after it.
  ASSERT_GT(v2_bytes.size(), v1_bytes.size());
  EXPECT_EQ(v2_bytes.substr(0, v1_bytes.size()), v1_bytes);
  auto v2_again = wire::DecodeStatsReply(v2_bytes);
  ASSERT_TRUE(v2_again.ok());
  EXPECT_EQ(v2_again.value().work_counters, reply.work_counters);

  // An explicit zero-count section is non-canonical (the canonical
  // spelling of "no counters" is the bare v1 payload) — reject it.
  std::string zero_section = v1_bytes + std::string(4, '\0');
  EXPECT_FALSE(wire::DecodeStatsReply(zero_section).ok());
}

TEST(WireVersionTest, StatsReplyGenerationTrailer) {
  wire::StatsReply reply;
  reply.requests_served = 3;
  reply.has_generation = true;
  reply.generation = 42;

  // Without a counter section the generation has no carrier: the
  // canonical encoding drops it and the frame is stamped v1. (A bare
  // trailing u64 after the fixed v1 fields would be indistinguishable
  // from garbage, so the trailer only ever rides behind a non-empty
  // counter section.)
  EXPECT_EQ(wire::StatsReplyWireVersion(reply), wire::kBaseWireVersion);
  auto bare = wire::DecodeStatsReply(wire::EncodeStatsReply(reply));
  ASSERT_TRUE(bare.ok());
  EXPECT_FALSE(bare.value().has_generation);

  // With counters the trailer encodes and the frame is stamped v4.
  reply.work_counters = {{"serve/queries", 3}};
  EXPECT_EQ(wire::StatsReplyWireVersion(reply),
            wire::kStatsGenerationWireVersion);
  const std::string v4_bytes = wire::EncodeStatsReply(reply);
  auto v4_again = wire::DecodeStatsReply(v4_bytes);
  ASSERT_TRUE(v4_again.ok()) << v4_again.status().ToString();
  EXPECT_TRUE(v4_again.value().has_generation);
  EXPECT_EQ(v4_again.value().generation, 42u);
  EXPECT_EQ(v4_again.value().work_counters, reply.work_counters);

  // The v4 encoding extends the v2 payload in place: same prefix, the
  // u64 generation appended after the counter section.
  wire::StatsReply v2 = reply;
  v2.has_generation = false;
  const std::string v2_bytes = wire::EncodeStatsReply(v2);
  EXPECT_EQ(wire::StatsReplyWireVersion(v2), 2);
  ASSERT_EQ(v4_bytes.size(), v2_bytes.size() + 8);
  EXPECT_EQ(v4_bytes.substr(0, v2_bytes.size()), v2_bytes);

  // Generation zero is a valid stamp (a batch-mined catalog) and must
  // survive the round trip — absence is signaled by length, not value.
  reply.generation = 0;
  auto zero = wire::DecodeStatsReply(wire::EncodeStatsReply(reply));
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero.value().has_generation);
  EXPECT_EQ(zero.value().generation, 0u);

  // A partial trailer (1..7 bytes after the counter section) is
  // corruption, not a shorter version.
  std::string truncated = v4_bytes;
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(wire::DecodeStatsReply(truncated).ok());
  // And bytes beyond the trailer are rejected outright.
  std::string oversized = v4_bytes;
  oversized.push_back('\0');
  EXPECT_FALSE(wire::DecodeStatsReply(oversized).ok());
}

TEST(WireVersionTest, StatsReplyShardsTrailer) {
  wire::StatsReply reply;
  reply.requests_served = 3;
  reply.work_counters = {{"serve/queries", 3}};
  reply.has_generation = true;
  reply.generation = 42;
  const std::string v4_bytes = wire::EncodeStatsReply(reply);

  // The shard count rides only behind the generation trailer: the v5
  // encoding is the v4 payload plus one trailing u32.
  reply.has_shards = true;
  reply.num_shards = 4;
  EXPECT_EQ(wire::StatsReplyWireVersion(reply),
            wire::kStatsShardsWireVersion);
  const std::string v5_bytes = wire::EncodeStatsReply(reply);
  ASSERT_EQ(v5_bytes.size(), v4_bytes.size() + 4);
  EXPECT_EQ(v5_bytes.substr(0, v4_bytes.size()), v4_bytes);
  auto again = wire::DecodeStatsReply(v5_bytes);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again.value().has_shards);
  EXPECT_EQ(again.value().num_shards, 4u);
  EXPECT_EQ(again.value().generation, 42u);

  // A v4 payload still decodes as v4: absence is signaled by length.
  auto v4_again = wire::DecodeStatsReply(v4_bytes);
  ASSERT_TRUE(v4_again.ok());
  EXPECT_FALSE(v4_again.value().has_shards);

  // num_shards == 0 never encodes (the canonical form drops the
  // trailer and stamps v4), so a zero on the wire is non-canonical
  // bytes, not an empty server.
  wire::StatsReply zero_shards = reply;
  zero_shards.num_shards = 0;
  EXPECT_EQ(wire::StatsReplyWireVersion(zero_shards),
            wire::kStatsGenerationWireVersion);
  EXPECT_EQ(wire::EncodeStatsReply(zero_shards), v4_bytes);
  std::string forged_zero = v4_bytes;
  forged_zero.append(4, '\0');
  EXPECT_FALSE(wire::DecodeStatsReply(forged_zero).ok());

  // Without the generation carrier the shard count has nothing to ride
  // behind: the canonical encoding drops both trailers.
  wire::StatsReply no_generation = reply;
  no_generation.has_generation = false;
  EXPECT_EQ(wire::StatsReplyWireVersion(no_generation), 2);
  auto bare = wire::DecodeStatsReply(wire::EncodeStatsReply(no_generation));
  ASSERT_TRUE(bare.ok());
  EXPECT_FALSE(bare.value().has_shards);

  // Partial or surplus trailer bytes are corruption.
  std::string torn = v5_bytes;
  torn.resize(torn.size() - 2);
  EXPECT_FALSE(wire::DecodeStatsReply(torn).ok());
  std::string surplus = v5_bytes;
  surplus.push_back('\0');
  EXPECT_FALSE(wire::DecodeStatsReply(surplus).ok());
}

TEST(WireCodecTest, TypedMessagesRoundTrip) {
  const Fixture& f = SharedFixture();

  wire::QueryRequest query;
  query.options.compute_score = false;
  query.query = f.db.graph(0);
  auto query_again = wire::DecodeQueryRequest(wire::EncodeQueryRequest(query));
  ASSERT_TRUE(query_again.ok());
  EXPECT_TRUE(query_again.value() == query);

  wire::BatchQueryRequest batch;
  batch.queries = {f.db.graph(0), f.db.graph(1)};
  auto batch_again =
      wire::DecodeBatchQueryRequest(wire::EncodeBatchQueryRequest(batch));
  ASSERT_TRUE(batch_again.ok());
  EXPECT_TRUE(batch_again.value() == batch);

  wire::QueryReply reply;
  reply.matched_patterns = {1, 5, 9};
  reply.has_score = true;
  reply.score = -0.75;
  reply.iso_calls = 4;
  reply.pruned = 11;
  auto reply_again = wire::DecodeQueryReply(wire::EncodeQueryReply(reply));
  ASSERT_TRUE(reply_again.ok());
  EXPECT_TRUE(reply_again.value() == reply);

  auto batch_reply_again =
      wire::DecodeBatchQueryReply(wire::EncodeBatchQueryReply({reply, {}}));
  ASSERT_TRUE(batch_reply_again.ok());
  ASSERT_EQ(batch_reply_again.value().size(), 2u);
  EXPECT_TRUE(batch_reply_again.value()[0] == reply);

  wire::StatsReply stats;
  stats.serving.queries = 7;
  stats.serving.total_latency_ms = 3.25;
  stats.serving.max_latency_ms = 1.5;
  stats.serving.iso_calls = 20;
  stats.serving.pruned = 80;
  stats.serving.pattern_matches = 13;
  stats.connections_accepted = 2;
  stats.frames_received = 9;
  stats.requests_served = 7;
  auto stats_again = wire::DecodeStatsReply(wire::EncodeStatsReply(stats));
  ASSERT_TRUE(stats_again.ok());
  EXPECT_EQ(stats_again.value().serving.queries, 7);
  EXPECT_EQ(stats_again.value().serving.total_latency_ms, 3.25);
  EXPECT_EQ(stats_again.value().frames_received, 9u);

  wire::HealthReply health;
  health.ok = true;
  health.draining = true;
  health.num_patterns = 42;
  health.has_classifier = true;
  auto health_again = wire::DecodeHealthReply(wire::EncodeHealthReply(health));
  ASSERT_TRUE(health_again.ok());
  EXPECT_TRUE(health_again.value() == health);

  wire::ErrorReply error;
  error.code = util::StatusCode::kInvalidArgument;
  error.message = "bad query";
  auto error_again = wire::DecodeErrorReply(wire::EncodeErrorReply(error));
  ASSERT_TRUE(error_again.ok());
  EXPECT_TRUE(error_again.value() == error);
  EXPECT_EQ(error_again.value().ToStatus().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(WireCodecTest, TrailingBytesAreRejected) {
  wire::QueryReply reply;
  reply.matched_patterns = {3};
  std::string payload = wire::EncodeQueryReply(reply);
  payload.push_back('\0');
  EXPECT_FALSE(wire::DecodeQueryReply(payload).ok());
}

TEST(WireCodecTest, ApproxMessagesRoundTrip) {
  const Fixture& f = SharedFixture();

  wire::ApproxRequest request;
  request.mode = 1;
  request.seed = 0xDEADBEEFCAFEull;
  request.samples = 512;
  request.confidence = 0.99;
  request.pattern = f.db.graph(2);
  auto request_again =
      wire::DecodeApproxRequest(wire::EncodeApproxRequest(request));
  ASSERT_TRUE(request_again.ok()) << request_again.status().ToString();
  EXPECT_TRUE(request_again.value() == request);

  wire::ApproxReply reply;
  reply.mode = 0;
  reply.samples = 200;
  reply.hits = 137;
  reply.db_size = 40;
  reply.estimate = 27.4;
  reply.ci_lo = 24.1;
  reply.ci_hi = 30.0;
  reply.confidence = 0.95;
  auto reply_again = wire::DecodeApproxReply(wire::EncodeApproxReply(reply));
  ASSERT_TRUE(reply_again.ok()) << reply_again.status().ToString();
  EXPECT_TRUE(reply_again.value() == reply);
}

TEST(WireCodecTest, ApproxNonCanonicalEncodingsRejected) {
  const Fixture& f = SharedFixture();
  wire::ApproxRequest request;
  request.pattern = f.db.graph(0);
  const std::string good = wire::EncodeApproxRequest(request);
  ASSERT_TRUE(wire::DecodeApproxRequest(good).ok());

  {  // Trailing bytes.
    std::string bad = good;
    bad.push_back('\0');
    EXPECT_FALSE(wire::DecodeApproxRequest(bad).ok());
  }
  {  // Unknown mode.
    wire::ApproxRequest bad = request;
    bad.mode = 2;
    EXPECT_FALSE(
        wire::DecodeApproxRequest(wire::EncodeApproxRequest(bad)).ok());
  }
  {  // Zero samples would buy zero work — refused at the wire.
    wire::ApproxRequest bad = request;
    bad.samples = 0;
    EXPECT_FALSE(
        wire::DecodeApproxRequest(wire::EncodeApproxRequest(bad)).ok());
  }
  {  // Confidence outside (0, 1) — including NaN, which fails every
    // ordered comparison and must not sneak through a negated check.
    wire::ApproxRequest bad = request;
    bad.confidence = 1.0;
    EXPECT_FALSE(
        wire::DecodeApproxRequest(wire::EncodeApproxRequest(bad)).ok());
    bad.confidence = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(
        wire::DecodeApproxRequest(wire::EncodeApproxRequest(bad)).ok());
  }

  wire::ApproxReply reply;
  reply.samples = 10;
  reply.hits = 11;  // hits > samples is unrepresentable estimator state
  EXPECT_FALSE(wire::DecodeApproxReply(wire::EncodeApproxReply(reply)).ok());
  reply.hits = 10;
  std::string reply_bytes = wire::EncodeApproxReply(reply);
  ASSERT_TRUE(wire::DecodeApproxReply(reply_bytes).ok());
  reply_bytes.push_back('x');
  EXPECT_FALSE(wire::DecodeApproxReply(reply_bytes).ok());
}

// ---------------------------------------------------------------------
// Loopback end-to-end.

TEST(NetServerTest, ConcurrentClientsMatchInProcessByteForByte) {
  const Fixture& f = SharedFixture();
  TestServer server;

  constexpr int kClients = 8;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(MakeClientConfig(server.port()));
      util::Status connected = client.Connect();
      if (!connected.ok()) {
        failures[c] = connected.ToString();
        return;
      }
      // Each client walks the database at a different stride so the
      // in-flight mix differs across clients.
      for (size_t i = 0; i < f.db.size(); ++i) {
        const size_t g = (i * (c + 1)) % f.db.size();
        auto reply = client.Query(f.db.graph(g));
        if (!reply.ok()) {
          failures[c] = reply.status().ToString();
          return;
        }
        if (wire::EncodeQueryReply(reply.value()) !=
            ExpectedReplyBytes(f.db.graph(g))) {
          failures[c] = "reply bytes diverge from in-process Query";
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
}

TEST(NetServerTest, QueryOptionsFlagsReachTheCatalog) {
  const Fixture& f = SharedFixture();
  TestServer server;
  Client client(MakeClientConfig(server.port()));
  ASSERT_TRUE(client.Connect().ok());

  wire::QueryOptions score_only;
  score_only.compute_matches = false;
  auto reply = client.Query(f.db.graph(0), score_only);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply.value().matched_patterns.empty());
  EXPECT_EQ(wire::EncodeQueryReply(reply.value()),
            ExpectedReplyBytes(f.db.graph(0), score_only));

  wire::QueryOptions match_only;
  match_only.compute_score = false;
  auto matches = client.Query(f.db.graph(0), match_only);
  ASSERT_TRUE(matches.ok());
  EXPECT_FALSE(matches.value().has_score);
  EXPECT_EQ(wire::EncodeQueryReply(matches.value()),
            ExpectedReplyBytes(f.db.graph(0), match_only));
}

TEST(NetServerTest, BatchAndPipelineAgreeWithSingles) {
  const Fixture& f = SharedFixture();
  TestServer server;
  Client client(MakeClientConfig(server.port()));
  ASSERT_TRUE(client.Connect().ok());

  std::vector<graph::Graph> queries;
  for (size_t g = 0; g < 10 && g < f.db.size(); ++g) {
    queries.push_back(f.db.graph(g));
  }
  auto batched = client.BatchQuery(queries);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  auto pipelined = client.PipelineQueries(queries);
  ASSERT_TRUE(pipelined.ok()) << pipelined.status().ToString();
  ASSERT_EQ(batched.value().size(), queries.size());
  ASSERT_EQ(pipelined.value().size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const std::string expected = ExpectedReplyBytes(queries[i]);
    EXPECT_EQ(wire::EncodeQueryReply(batched.value()[i]), expected) << i;
    EXPECT_EQ(wire::EncodeQueryReply(pipelined.value()[i]), expected) << i;
  }
}

TEST(NetServerTest, StatsAndHealthServeInline) {
  const Fixture& f = SharedFixture();
  TestServer server;
  Client client(MakeClientConfig(server.port()));
  ASSERT_TRUE(client.Connect().ok());

  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_TRUE(health.value().ok);
  EXPECT_FALSE(health.value().draining);
  EXPECT_EQ(health.value().wire_version, wire::kWireVersion);
  EXPECT_EQ(health.value().num_patterns, f.catalog->num_patterns());
  EXPECT_EQ(health.value().has_classifier, f.catalog->has_classifier());

  ASSERT_TRUE(client.Query(f.db.graph(0)).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.value().requests_served, 1u);
  EXPECT_GE(stats.value().frames_received, 2u);
  EXPECT_EQ(stats.value().protocol_errors, 0u);
  EXPECT_GE(stats.value().connections_active, 1u);
}

TEST(NetServerTest, StatsVersionNegotiation) {
  const Fixture& f = SharedFixture();
  TestServer server;
  Client client(MakeClientConfig(server.port()));
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Query(f.db.graph(0)).ok());

  // A v1 request (what a pre-v2 client puts on the wire) gets the v1
  // reply shape: no work-counter section, everything else filled in.
  auto v1 = client.Stats(wire::kBaseWireVersion);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_TRUE(v1.value().work_counters.empty());
  EXPECT_GE(v1.value().requests_served, 1u);

  // The default (v2) request returns the server's named work counters,
  // including the registry entries this very workload just bumped.
  auto v2 = client.Stats();
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  ASSERT_FALSE(v2.value().work_counters.empty());
  uint64_t serve_queries = 0, stats_frames = 0;
  bool saw_queries = false, saw_stats_frames = false;
  for (const auto& [name, value] : v2.value().work_counters) {
    if (name == "serve/queries") {
      serve_queries = value;
      saw_queries = true;
    }
    if (name == "net/frames/stats") {
      stats_frames = value;
      saw_stats_frames = true;
    }
  }
  EXPECT_TRUE(saw_queries);
  EXPECT_GE(serve_queries, 1u);
  EXPECT_TRUE(saw_stats_frames);
  EXPECT_GE(stats_frames, 2u);  // the v1 request above plus this one
}

TEST(NetServerTest, StatsReportsActiveGeneration) {
  TestServer server;
  Client client(MakeClientConfig(server.port()));
  ASSERT_TRUE(client.Connect().ok());

  // The default request is v4: the reply carries the active catalog's
  // generation — 0 here, the shared fixture's batch-mined artifact.
  auto v4 = client.Stats();
  ASSERT_TRUE(v4.ok()) << v4.status().ToString();
  EXPECT_TRUE(v4.value().has_generation);
  EXPECT_EQ(v4.value().generation, 0u);

  // A v2 client never sees the trailer.
  auto v2 = client.Stats(2);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_FALSE(v2.value().has_generation);
}

// The streaming pipeline's serving contract: a generation swap while
// clients are mid-flight drops nothing — every request is answered by
// exactly one catalog snapshot (the old one stays alive until its last
// in-flight reply is written), and the next Stats reports the new
// generation. The CI TSan job runs this under the race detector.
TEST(NetServerTest, GenerationHotSwapDropsNoQueries) {
  const Fixture& f = SharedFixture();

  // Two generations of one mined catalog, differing only in the stream
  // provenance stamp — so replies are byte-identical across the swap
  // and any divergence is a server bug, not a data difference.
  core::GraphSigConfig config;
  config.cutoff_radius = 3;
  config.min_freq_percent = 5.0;
  config.fsm_max_edges = 10;
  core::GraphSigResult mined =
      core::GraphSig(config).Mine(f.db.FilterByTag(1));
  auto catalog_at = [&](uint64_t generation) {
    model::ModelArtifact artifact;
    artifact.database = f.db;
    artifact.feature_space = mined.feature_space;
    artifact.catalog = mined.subgraphs;
    artifact.generation = generation;
    auto catalog = serve::PatternCatalog::FromArtifact(std::move(artifact));
    GS_CHECK(catalog.ok());
    return std::make_shared<const serve::PatternCatalog>(
        std::move(catalog).value());
  };

  serve::CatalogHandle handle(catalog_at(1));
  TestServer server({}, &handle);

  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> completed{0};
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(MakeClientConfig(server.port()));
      util::Status connected = client.Connect();
      if (!connected.ok()) {
        failures[c] = connected.ToString();
        return;
      }
      for (size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const size_t g = (i * (c + 1)) % f.db.size();
        auto reply = client.Query(f.db.graph(g));
        if (!reply.ok()) {
          failures[c] = reply.status().ToString();
          return;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      // The connection opened against generation 1 sees generation 2
      // on its very next Stats — the handle is read per-request, not
      // per-connection.
      auto stats = client.Stats();
      if (!stats.ok()) {
        failures[c] = stats.status().ToString();
        return;
      }
      if (!stats.value().has_generation || stats.value().generation != 2) {
        failures[c] = "post-swap stats did not report generation 2";
      }
    });
  }

  // Let the load ramp, swap mid-flight, let it keep running against
  // the new generation, then stop.
  while (completed.load(std::memory_order_relaxed) < kClients * 3) {
    std::this_thread::yield();
  }
  std::shared_ptr<const serve::ShardedCatalog> old =
      handle.Swap(catalog_at(2));
  EXPECT_EQ(old->generation(), 1u);
  const int at_swap = completed.load(std::memory_order_relaxed);
  while (completed.load(std::memory_order_relaxed) < at_swap + kClients) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
  EXPECT_EQ(handle.Current()->generation(), 2u);
}

// Multiple event loops with round-robin accept sharding must be
// invisible to clients: every reply byte-identical to the in-process
// answer, regardless of which loop owns the connection. The CI TSan
// job runs this under the race detector.
TEST(NetServerTest, MultiLoopServerMatchesByteForByte) {
  const Fixture& f = SharedFixture();
  ServerConfig config;
  config.num_loops = 2;
  config.workers_per_loop = 1;
  TestServer server(config);
  EXPECT_EQ(server.server().num_loops(), 2);

  // More clients than loops so both loops own several connections.
  constexpr int kClients = 5;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(MakeClientConfig(server.port()));
      util::Status connected = client.Connect();
      if (!connected.ok()) {
        failures[c] = connected.ToString();
        return;
      }
      for (size_t i = 0; i < f.db.size(); i += 2) {
        const size_t g = (i + c) % f.db.size();
        auto reply = client.Query(f.db.graph(g));
        if (!reply.ok()) {
          failures[c] = reply.status().ToString();
          return;
        }
        if (wire::EncodeQueryReply(reply.value()) !=
            ExpectedReplyBytes(f.db.graph(g))) {
          failures[c] = "reply bytes diverge from in-process Query";
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
}

TEST(NetServerTest, StatsReportsShardCount) {
  const Fixture& f = SharedFixture();
  serve::CatalogHandle handle(
      std::make_shared<const serve::ShardedCatalog>(f.catalog, 4));
  TestServer server({}, &handle);
  Client client(MakeClientConfig(server.port()));
  ASSERT_TRUE(client.Connect().ok());

  // The default request is v5: the reply carries the shard count.
  auto v5 = client.Stats();
  ASSERT_TRUE(v5.ok()) << v5.status().ToString();
  EXPECT_TRUE(v5.value().has_shards);
  EXPECT_EQ(v5.value().num_shards, 4u);
  EXPECT_TRUE(v5.value().has_generation);

  // A v4 client gets the generation trailer but never the shard count.
  auto v4 = client.Stats(wire::kStatsGenerationWireVersion);
  ASSERT_TRUE(v4.ok()) << v4.status().ToString();
  EXPECT_TRUE(v4.value().has_generation);
  EXPECT_FALSE(v4.value().has_shards);
}

TEST(NetServerTest, UnshardedHandleReportsOneShard) {
  const Fixture& f = SharedFixture();
  // The PatternCatalog convenience ctor wraps a 1-shard set.
  serve::CatalogHandle handle(f.catalog);
  TestServer server({}, &handle);
  Client client(MakeClientConfig(server.port()));
  ASSERT_TRUE(client.Connect().ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.value().has_shards);
  EXPECT_EQ(stats.value().num_shards, 1u);
}

// The sharded variant of the hot-swap contract: a whole 4-shard set
// swaps as one generation while multi-loop, shard-fanned queries are
// in flight — no drops, no mixed-generation replies, and the next
// Stats reports the new generation with the same shard count.
TEST(NetServerTest, ShardedHotSwapDropsNoQueries) {
  const Fixture& f = SharedFixture();

  core::GraphSigConfig config;
  config.cutoff_radius = 3;
  config.min_freq_percent = 5.0;
  config.fsm_max_edges = 10;
  core::GraphSigResult mined =
      core::GraphSig(config).Mine(f.db.FilterByTag(1));
  auto shard_set_at = [&](uint64_t generation) {
    model::ModelArtifact artifact;
    artifact.database = f.db;
    artifact.feature_space = mined.feature_space;
    artifact.catalog = mined.subgraphs;
    artifact.generation = generation;
    auto catalog = serve::PatternCatalog::FromArtifact(std::move(artifact));
    GS_CHECK(catalog.ok());
    return std::make_shared<const serve::ShardedCatalog>(
        std::make_shared<const serve::PatternCatalog>(
            std::move(catalog).value()),
        4);
  };

  serve::CatalogHandle handle(shard_set_at(1));
  ServerConfig server_config;
  server_config.num_loops = 2;
  server_config.query_threads = 2;
  TestServer server(server_config, &handle);

  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> completed{0};
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(MakeClientConfig(server.port()));
      util::Status connected = client.Connect();
      if (!connected.ok()) {
        failures[c] = connected.ToString();
        return;
      }
      for (size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const size_t g = (i * (c + 1)) % f.db.size();
        auto reply = client.Query(f.db.graph(g));
        if (!reply.ok()) {
          failures[c] = reply.status().ToString();
          return;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      auto stats = client.Stats();
      if (!stats.ok()) {
        failures[c] = stats.status().ToString();
        return;
      }
      if (!stats.value().has_generation || stats.value().generation != 2) {
        failures[c] = "post-swap stats did not report generation 2";
        return;
      }
      if (!stats.value().has_shards || stats.value().num_shards != 4) {
        failures[c] = "post-swap stats did not report 4 shards";
      }
    });
  }

  while (completed.load(std::memory_order_relaxed) < kClients * 3) {
    std::this_thread::yield();
  }
  std::shared_ptr<const serve::ShardedCatalog> old =
      handle.Swap(shard_set_at(2));
  EXPECT_EQ(old->generation(), 1u);
  EXPECT_EQ(old->num_shards(), 4u);
  const int at_swap = completed.load(std::memory_order_relaxed);
  while (completed.load(std::memory_order_relaxed) < at_swap + kClients) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
  EXPECT_EQ(handle.Current()->generation(), 2u);
  EXPECT_EQ(handle.Current()->num_shards(), 4u);
}

// Writes raw bytes and expects an Error frame followed by EOF — the
// server's contract for a protocol violation.
void ExpectErrorThenClose(uint16_t port, const std::string& bytes) {
  auto socket = ConnectTcp("127.0.0.1", port, 5.0);
  ASSERT_TRUE(socket.ok()) << socket.status().ToString();
  const int fd = socket.value().fd();
  ASSERT_TRUE(SetIoTimeout(fd, 10.0).ok());
  ASSERT_TRUE(WriteAll(fd, bytes).ok());

  std::string header;
  ASSERT_TRUE(ReadExact(fd, wire::kFrameHeaderBytes, &header).ok());
  wire::FrameDecoder decoder;
  decoder.Append(header);
  auto peek = decoder.Next();
  ASSERT_TRUE(peek.ok());
  ASSERT_FALSE(peek.value().has_value());  // header only so far
  // Payload size sits at offset 8 of the (valid, server-sent) header.
  uint32_t payload_size = 0;
  std::memcpy(&payload_size, header.data() + 8, sizeof(payload_size));
  std::string payload;
  ASSERT_TRUE(ReadExact(fd, payload_size, &payload).ok());
  decoder.Append(payload);
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(frame.value()->type, wire::MessageType::kError);

  // Then the server closes: the next read sees EOF, not a hang.
  std::string rest;
  util::Status eof = ReadExact(fd, 1, &rest);
  EXPECT_FALSE(eof.ok());
}

TEST(NetServerTest, ApproxQueriesServeOverTheWire) {
  const Fixture& f = SharedFixture();
  TestServer server;
  Client client(MakeClientConfig(server.port()));
  ASSERT_TRUE(client.Connect().ok());

  for (const uint8_t mode : {uint8_t{0}, uint8_t{1}}) {
    wire::ApproxRequest request;
    request.mode = mode;
    request.seed = 99 + mode;
    request.samples = 64;
    request.confidence = 0.95;
    request.pattern = f.db.graph(3);
    auto reply = client.Approx(request);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();

    // The wire reply must be byte-identical to the in-process estimate
    // under ProcessApprox's config (num_threads = 1).
    serve::ApproxQueryConfig config;
    config.mode = static_cast<approx::ApproxMode>(request.mode);
    config.seed = request.seed;
    config.samples = static_cast<int32_t>(request.samples);
    config.confidence = request.confidence;
    config.num_threads = 1;
    auto expected = f.catalog->ApproxQuery(request.pattern, config);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    EXPECT_EQ(
        wire::EncodeApproxReply(reply.value()),
        wire::EncodeApproxReply(wire::ReplyFromApprox(expected.value())));
    EXPECT_EQ(reply.value().db_size, f.db.size());
  }

  // A sample count above the serving cap is refused with an error reply,
  // not served; the connection stays usable afterwards.
  wire::ApproxRequest oversized;
  oversized.samples =
      static_cast<uint32_t>(serve::kMaxApproxSamplesPerQuery) + 1;
  oversized.pattern = f.db.graph(0);
  EXPECT_FALSE(client.Approx(oversized).ok());
  wire::ApproxRequest again;
  again.pattern = f.db.graph(0);
  EXPECT_TRUE(client.Approx(again).ok());
}

TEST(NetServerTest, MalformedFrameGetsErrorReplyThenClose) {
  const Fixture& f = SharedFixture();
  TestServer server;

  ExpectErrorThenClose(server.port(), "this is not a GSW1 frame at all");

  const uint64_t errors_before = server.server().counters().protocol_errors;
  EXPECT_GE(errors_before, 1u);

  // A frame with a corrupted payload (CRC mismatch) is also fatal.
  std::string corrupt = wire::EncodeFrame(
      wire::MessageType::kQuery,
      wire::EncodeQueryRequest({{}, f.db.graph(0)}));
  corrupt[wire::kFrameHeaderBytes] ^= 0x40;
  ExpectErrorThenClose(server.port(), corrupt);

  // The server survives both: a fresh client still gets served.
  Client client(MakeClientConfig(server.port()));
  ASSERT_TRUE(client.Connect().ok());
  auto reply = client.Query(f.db.graph(0));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(wire::EncodeQueryReply(reply.value()),
            ExpectedReplyBytes(f.db.graph(0)));
  EXPECT_GE(server.server().counters().protocol_errors, errors_before + 1);
}

TEST(NetServerTest, OversizedFrameAnnouncementIsRejected) {
  ServerConfig config;
  config.max_frame_bytes = 1024;
  TestServer server(config);

  // A header announcing 1 MiB against a 1 KiB cap: the server must
  // reject on the header alone — no buffering of the announced size.
  ExpectErrorThenClose(server.port(),
                       wire::EncodeFrame(wire::MessageType::kQuery,
                                         std::string(1 << 20, 'x'))
                           .substr(0, wire::kFrameHeaderBytes));
}

TEST(NetServerTest, TruncatedWriteThenDisconnectIsSurvivable) {
  const Fixture& f = SharedFixture();
  TestServer server;

  {
    // Half a frame, then the peer vanishes.
    auto socket = ConnectTcp("127.0.0.1", server.port(), 5.0);
    ASSERT_TRUE(socket.ok());
    const std::string frame = wire::EncodeFrame(
        wire::MessageType::kQuery,
        wire::EncodeQueryRequest({{}, f.db.graph(0)}));
    ASSERT_TRUE(WriteAll(socket.value().fd(),
                         frame.substr(0, frame.size() / 2))
                    .ok());
  }  // socket closes here

  // The server shrugs it off and keeps serving.
  Client client(MakeClientConfig(server.port()));
  ASSERT_TRUE(client.Connect().ok());
  auto reply = client.Query(f.db.graph(1));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(wire::EncodeQueryReply(reply.value()),
            ExpectedReplyBytes(f.db.graph(1)));
}

TEST(NetServerTest, AdmissionFullAnswersRetryLater) {
  const Fixture& f = SharedFixture();
  ServerConfig config;
  config.max_inflight_requests = 0;  // every query over budget
  TestServer server(config);

  Client client(MakeClientConfig(server.port()));
  ASSERT_TRUE(client.Connect().ok());
  auto reply = client.Query(f.db.graph(0));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), util::StatusCode::kUnavailable);

  // Backpressure is per-request, not per-connection: the same
  // connection still answers Stats/Health (served inline) afterwards.
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_TRUE(health.value().ok);
  EXPECT_GE(server.server().counters().retries_sent, 1u);
}

TEST(NetServerTest, DrainFlushesInflightRepliesBeforeExit) {
  const Fixture& f = SharedFixture();
  TestServer server;

  // Pipeline a burst of queries raw, then request shutdown while they
  // are (potentially) still in flight. Drain semantics: every accepted
  // request's reply must still arrive, then the connection closes.
  constexpr int kBurst = 16;
  auto socket = ConnectTcp("127.0.0.1", server.port(), 5.0);
  ASSERT_TRUE(socket.ok());
  const int fd = socket.value().fd();
  ASSERT_TRUE(SetIoTimeout(fd, 30.0).ok());
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    burst += wire::EncodeFrame(
        wire::MessageType::kQuery,
        wire::EncodeQueryRequest(
            {{}, f.db.graph(static_cast<size_t>(i) % f.db.size())}));
  }
  ASSERT_TRUE(WriteAll(fd, burst).ok());
  // Wait until the loop has read and dispatched the whole burst, then
  // start the drain while (some of) those requests are still in flight.
  // Drain stops *reads*, not dispatched work: every accepted request's
  // reply must still arrive.
  while (server.server().counters().frames_received <
         static_cast<uint64_t>(kBurst)) {
    std::this_thread::yield();
  }
  server.server().RequestShutdown();

  // Read replies frame by frame: header first (to learn the size), then
  // the payload. The socket is blocking with a generous timeout.
  int replies = 0;
  for (; replies < kBurst; ++replies) {
    std::string header;
    ASSERT_TRUE(ReadExact(fd, wire::kFrameHeaderBytes, &header).ok())
        << "connection died after " << replies << " replies";
    uint32_t payload_size = 0;
    std::memcpy(&payload_size, header.data() + 8, sizeof(payload_size));
    std::string payload;
    ASSERT_TRUE(ReadExact(fd, payload_size, &payload).ok());
    wire::FrameDecoder decoder;
    decoder.Append(header + payload);
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.ok());
    ASSERT_TRUE(frame.value().has_value());
    ASSERT_EQ(frame.value()->type, wire::MessageType::kQueryReply);
    auto decoded = wire::DecodeQueryReply(frame.value()->payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(wire::EncodeQueryReply(decoded.value()),
              ExpectedReplyBytes(
                  f.db.graph(static_cast<size_t>(replies) % f.db.size())));
  }
  EXPECT_EQ(replies, kBurst);

  // After the last reply the server closes the connection and Serve()
  // returns (TestServer::Shutdown checks its status).
  server.Shutdown();
}

TEST(NetServerTest, NewConnectionsRefusedWhileDraining) {
  TestServer server;
  const uint16_t port = server.port();
  server.Shutdown();  // full drain: listener closed

  Client client(MakeClientConfig(port));
  util::Status connected = client.Connect();
  EXPECT_FALSE(connected.ok());
}

}  // namespace
}  // namespace graphsig::net
