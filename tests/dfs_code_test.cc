#include <gtest/gtest.h>

#include <set>

#include "fsm/dfs_code.h"
#include "graph/isomorphism.h"
#include "util/rng.h"

namespace graphsig::fsm {
namespace {

using graph::Graph;
using graph::Label;
using graph::VertexId;

TEST(DfsCodeTest, ToGraphRoundTrip) {
  DfsCode code;
  code.Push({0, 1, 5, 1, 6});
  code.Push({1, 2, 6, 2, 7});
  code.Push({2, 0, 7, 3, 5});  // backward closes a triangle
  Graph g = code.ToGraph();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.vertex_label(0), 5);
  EXPECT_EQ(g.vertex_label(2), 7);
  EXPECT_EQ(g.EdgeLabelBetween(2, 0), 3);
}

TEST(DfsCodeTest, RmPathFollowsForwardChain) {
  DfsCode code;
  code.Push({0, 1, 0, 0, 0});
  code.Push({1, 2, 0, 0, 0});
  code.Push({2, 0, 0, 0, 0});  // backward
  code.Push({2, 3, 0, 0, 0});
  auto rmpath = code.BuildRmPath();
  // Rightmost vertex is 3; path edges: (2,3) then (1,2) then (0,1).
  ASSERT_EQ(rmpath.size(), 3u);
  EXPECT_EQ(rmpath[0], 3);
  EXPECT_EQ(rmpath[1], 1);
  EXPECT_EQ(rmpath[2], 0);
}

TEST(DfsCodeTest, SingleVertexCanonical) {
  Graph g;
  g.AddVertex(4);
  EXPECT_EQ(CanonicalCode(g), "v4");
}

TEST(DfsCodeTest, MinCodeOfSingleEdgeOrdersLabels) {
  Graph g;
  g.AddVertex(9);
  g.AddVertex(2);
  g.AddEdge(0, 1, 5);
  DfsCode code = BuildMinDfsCode(g);
  ASSERT_EQ(code.size(), 1u);
  EXPECT_EQ(code[0].from_label, 2);
  EXPECT_EQ(code[0].to_label, 9);
}

TEST(DfsCodeTest, IsomorphicGraphsShareCanonicalCode) {
  // Benzene-like ring with one substituent, built in two vertex orders.
  Graph a;
  for (int i = 0; i < 6; ++i) a.AddVertex(0);
  a.AddVertex(1);
  for (int i = 0; i < 6; ++i) a.AddEdge(i, (i + 1) % 6, 0);
  a.AddEdge(3, 6, 1);

  Graph b;
  b.AddVertex(1);
  for (int i = 0; i < 6; ++i) b.AddVertex(0);
  for (int i = 1; i <= 6; ++i) {
    b.AddEdge(i, i % 6 + 1, 0);
  }
  b.AddEdge(0, 4, 1);

  ASSERT_TRUE(graph::AreIsomorphic(a, b));
  EXPECT_EQ(CanonicalCode(a), CanonicalCode(b));
}

TEST(DfsCodeTest, DifferentGraphsGetDifferentCodes) {
  Graph path;
  path.AddVertex(0);
  path.AddVertex(0);
  path.AddVertex(0);
  path.AddEdge(0, 1, 0);
  path.AddEdge(1, 2, 0);

  Graph triangle;
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddEdge(0, 1, 0);
  triangle.AddEdge(1, 2, 0);
  triangle.AddEdge(2, 0, 0);

  EXPECT_NE(CanonicalCode(path), CanonicalCode(triangle));
}

TEST(DfsCodeTest, MinCodeIsMinimal) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddVertex(i % 2);
  g.AddEdge(0, 1, 0);
  g.AddEdge(1, 2, 1);
  g.AddEdge(2, 3, 0);
  g.AddEdge(3, 4, 1);
  g.AddEdge(4, 0, 0);
  DfsCode code = BuildMinDfsCode(g);
  EXPECT_TRUE(IsMinimalDfsCode(code));
  EXPECT_EQ(code.size(), 5u);
  EXPECT_TRUE(graph::AreIsomorphic(code.ToGraph(), g));
}

TEST(DfsCodeTest, NonMinimalCodeDetected) {
  // A path a(0)-b(1)-c(2): starting the DFS at the 'c' end yields a
  // non-minimal code because (0,1,2,...) > (0,1,0,...).
  DfsCode bad;
  bad.Push({0, 1, 2, 0, 1});
  bad.Push({1, 2, 1, 0, 0});
  EXPECT_FALSE(IsMinimalDfsCode(bad));
  DfsCode good;
  good.Push({0, 1, 0, 0, 1});
  good.Push({1, 2, 1, 0, 2});
  EXPECT_TRUE(IsMinimalDfsCode(good));
}

// Property: the canonical code is invariant under random vertex
// permutations, and distinct small graphs collide only when isomorphic.
class CanonicalPropertyTest : public ::testing::TestWithParam<int> {};

Graph RandomConnected(util::Rng* rng, int n, int extra, int vl, int el) {
  Graph g;
  for (int i = 0; i < n; ++i) {
    g.AddVertex(static_cast<Label>(rng->NextBounded(vl)));
  }
  for (int i = 1; i < n; ++i) {
    g.AddEdge(static_cast<VertexId>(rng->NextBounded(i)), i,
              static_cast<Label>(rng->NextBounded(el)));
  }
  for (int k = 0; k < extra; ++k) {
    VertexId u = static_cast<VertexId>(rng->NextBounded(n));
    VertexId v = static_cast<VertexId>(rng->NextBounded(n));
    if (u != v && !g.HasEdge(u, v)) {
      g.AddEdge(u, v, static_cast<Label>(rng->NextBounded(el)));
    }
  }
  return g;
}

Graph Permute(const Graph& g, util::Rng* rng) {
  std::vector<VertexId> perm(g.num_vertices());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<VertexId>(i);
  rng->Shuffle(&perm);
  Graph out;
  std::vector<VertexId> pos(g.num_vertices());
  for (size_t i = 0; i < perm.size(); ++i) pos[perm[i]] = static_cast<VertexId>(i);
  for (size_t i = 0; i < perm.size(); ++i) {
    out.AddVertex(g.vertex_label(perm[i]));
  }
  for (const graph::EdgeRecord& e : g.edges()) {
    out.AddEdge(pos[e.u], pos[e.v], e.label);
  }
  return out;
}

TEST_P(CanonicalPropertyTest, InvariantUnderPermutation) {
  util::Rng rng(3000 + GetParam());
  Graph g = RandomConnected(&rng, 8, 4, 3, 2);
  std::string base = CanonicalCode(g);
  for (int t = 0; t < 5; ++t) {
    Graph p = Permute(g, &rng);
    EXPECT_EQ(CanonicalCode(p), base);
  }
}

TEST_P(CanonicalPropertyTest, CodeAgreesWithIsomorphism) {
  util::Rng rng(4000 + GetParam());
  Graph a = RandomConnected(&rng, 7, 3, 2, 2);
  Graph b = RandomConnected(&rng, 7, 3, 2, 2);
  EXPECT_EQ(CanonicalCode(a) == CanonicalCode(b),
            graph::AreIsomorphic(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace graphsig::fsm
