#include <gtest/gtest.h>

#include <map>

#include "classify/auc.h"
#include "classify/evaluation.h"
#include "classify/frequent_baseline.h"
#include "classify/sig_knn.h"
#include "data/datasets.h"
#include "fsm/dfs_code.h"
#include "fsm/maximal.h"
#include "graph/isomorphism.h"

namespace graphsig {
namespace {

using graph::Graph;
using graph::GraphDatabase;
using graph::Label;
using graph::VertexId;

Graph Path(std::vector<Label> vlabels, std::vector<Label> elabels) {
  Graph g;
  for (Label l : vlabels) g.AddVertex(l);
  for (size_t i = 0; i < elabels.size(); ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1),
              elabels[i]);
  }
  return g;
}

TEST(ClosedFilterTest, AbsorbsEqualSupportSubPatterns) {
  // DB: two copies of path 0-1-2. Every sub-path has support 2, so only
  // the full path is closed.
  GraphDatabase db;
  db.Add(Path({0, 1, 2}, {0, 0}));
  db.Add(Path({0, 1, 2}, {0, 0}));
  fsm::MinerConfig config;
  config.min_support = 2;
  fsm::MineResult closed = fsm::MineClosedGSpan(db, config);
  ASSERT_EQ(closed.patterns.size(), 1u);
  EXPECT_EQ(closed.patterns[0].graph.num_edges(), 2);
}

TEST(ClosedFilterTest, KeepsSubPatternWithHigherSupport) {
  // Edge 0-1 occurs in 3 graphs; path 0-1-2 in 2: both are closed.
  GraphDatabase db;
  db.Add(Path({0, 1, 2}, {0, 0}));
  db.Add(Path({0, 1, 2}, {0, 0}));
  db.Add(Path({0, 1}, {0}));
  fsm::MinerConfig config;
  config.min_support = 2;
  fsm::MineResult closed = fsm::MineClosedGSpan(db, config);
  std::map<std::string, int64_t> by_code;
  for (const fsm::Pattern& p : closed.patterns) {
    by_code[fsm::CanonicalCode(p.graph)] = p.support;
  }
  EXPECT_EQ(by_code.size(), 2u);
  EXPECT_EQ(by_code[fsm::CanonicalCode(Path({0, 1}, {0}))], 3);
  EXPECT_EQ(by_code[fsm::CanonicalCode(Path({0, 1, 2}, {0, 0}))], 2);
}

TEST(ClosedFilterTest, ClosedSetIsLossless) {
  // Every frequent pattern must be contained in some closed pattern of
  // the same support.
  data::DatasetOptions options;
  options.size = 25;
  options.seed = 91;
  GraphDatabase db = data::MakeAidsLike(options);
  fsm::MinerConfig config;
  config.min_support = 5;
  config.max_edges = 4;
  fsm::MineResult all = fsm::MineFrequentGSpan(db, config);
  fsm::MineResult closed = fsm::MineClosedGSpan(db, config);
  EXPECT_LE(closed.patterns.size(), all.patterns.size());
  for (const fsm::Pattern& p : all.patterns) {
    bool covered = false;
    for (const fsm::Pattern& c : closed.patterns) {
      if (c.support == p.support &&
          graph::IsSubgraphIsomorphic(p.graph, c.graph)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered);
  }
}

TEST(FrequentBaselineTest, TrainsAndScores) {
  data::DatasetOptions options;
  options.size = 160;
  options.seed = 92;
  options.active_fraction = 0.25;
  GraphDatabase db = data::MakeCancerScreen("MCF-7", options);
  GraphDatabase train = classify::BalancedTrainingSample(db, 0.5, 4);
  classify::FrequentPatternClassifier freq;
  freq.Train(train);
  EXPECT_FALSE(freq.patterns().empty());
  // Frequent patterns are frequent: each occurs in a healthy share of
  // the training set.
  for (const Graph& p : freq.patterns()) {
    int64_t support = 0;
    for (const Graph& g : train.graphs()) {
      support += graph::IsSubgraphIsomorphic(p, g);
    }
    EXPECT_GE(support, static_cast<int64_t>(train.size()) / 10);
  }
}

TEST(FrequentBaselineTest, SignificantPatternsBeatFrequentOnes) {
  // The paper's Section V claim: frequency is not discriminativeness.
  data::DatasetOptions options;
  options.size = 260;
  options.seed = 93;
  options.active_fraction = 0.20;
  options.molecule.min_atoms = 8;
  options.molecule.max_atoms = 16;
  GraphDatabase db = data::MakeCancerScreen("SW-620", options);
  GraphDatabase train = classify::BalancedTrainingSample(db, 0.5, 5);

  classify::SigKnnConfig sig_config;
  sig_config.mining.cutoff_radius = 4;
  sig_config.mining.min_freq_percent = 2.0;
  classify::GraphSigClassifier sig(sig_config);
  sig.Train(train);

  classify::FrequentPatternClassifier freq;
  freq.Train(train);

  std::vector<classify::ScoredExample> sig_scored, freq_scored;
  for (const Graph& g : db.graphs()) {
    sig_scored.push_back({sig.Score(g), g.tag() == 1});
    freq_scored.push_back({freq.Score(g), g.tag() == 1});
  }
  const double sig_auc = classify::AreaUnderRoc(sig_scored);
  const double freq_auc = classify::AreaUnderRoc(freq_scored);
  EXPECT_GT(sig_auc, freq_auc);
  EXPECT_GT(sig_auc, 0.7);
}

}  // namespace
}  // namespace graphsig
