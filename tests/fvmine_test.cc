#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "fvmine/fvmine.h"
#include "util/rng.h"

namespace graphsig::fvmine {
namespace {

using features::FeatureVec;

// Scalar reference floor over population[indices].
FeatureVec FloorOf(const std::vector<FeatureVec>& population,
                   const std::vector<int32_t>& indices) {
  FeatureVec out;
  features::FloorInto(population.data(), indices, &out);
  return out;
}

// Ground truth by exhaustive subset enumeration: a closed vector is the
// floor of its own supporting set; candidates are floors of all subsets.
std::map<FeatureVec, std::vector<int32_t>> BruteForceClosedSignificant(
    const std::vector<FeatureVec>& population,
    const stats::FeaturePriors& priors, int64_t min_support,
    double max_pvalue) {
  const size_t n = population.size();
  std::map<FeatureVec, std::vector<int32_t>> out;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<int32_t> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.push_back(static_cast<int32_t>(i));
    }
    FeatureVec floor = FloorOf(population, subset);
    // Supporting set of the floor over the whole population.
    std::vector<int32_t> supporting;
    for (size_t i = 0; i < n; ++i) {
      if (features::IsSubVector(floor, population[i])) {
        supporting.push_back(static_cast<int32_t>(i));
      }
    }
    // Closedness: floor of the supporting set must be the vector itself.
    if (FloorOf(population, supporting) != floor) continue;
    if (static_cast<int64_t>(supporting.size()) < min_support) continue;
    if (priors.PValue(floor, static_cast<int64_t>(supporting.size())) >
        max_pvalue) {
      continue;
    }
    out[floor] = supporting;
  }
  return out;
}

std::vector<FeatureVec> RandomPopulation(uint64_t seed, size_t n,
                                         size_t width, int max_value) {
  util::Rng rng(seed);
  std::vector<FeatureVec> population;
  for (size_t i = 0; i < n; ++i) {
    FeatureVec v(width);
    for (auto& x : v) {
      // Skewed values: mostly 0 so floors are informative.
      x = rng.NextBernoulli(0.4)
              ? static_cast<int16_t>(1 + rng.NextBounded(max_value))
              : 0;
    }
    population.push_back(std::move(v));
  }
  return population;
}

TEST(FvMineTest, FindsSharedSubVector) {
  // Three vectors share the floor {1, 1, 0}; one outlier does not.
  std::vector<FeatureVec> population = {
      {2, 1, 0}, {1, 2, 0}, {1, 1, 3}, {0, 0, 5}};
  auto packed = features::PackedVectorSet::FromVectors(population);
  stats::FeaturePriors priors(population, 10);
  FvMineConfig config;
  config.min_support = 3;
  config.max_pvalue = 0.9;
  FvMineResult result = FvMine(packed, priors, config);
  bool found = false;
  for (const auto& sv : result.vectors) {
    if (sv.vector == FeatureVec{1, 1, 0}) {
      found = true;
      EXPECT_EQ(sv.supporting, (std::vector<int32_t>{0, 1, 2}));
      EXPECT_EQ(sv.support, 3);
    }
  }
  EXPECT_TRUE(found);
}

TEST(FvMineTest, EmittedVectorsAreClosedWithExactSupport) {
  auto population = RandomPopulation(42, 12, 5, 3);
  auto packed = features::PackedVectorSet::FromVectors(population);
  stats::FeaturePriors priors(population, 10);
  FvMineConfig config;
  config.min_support = 2;
  config.max_pvalue = 0.8;
  FvMineResult result = FvMine(packed, priors, config);
  for (const auto& sv : result.vectors) {
    // Supporting set is exactly the dominators.
    std::vector<int32_t> expected;
    for (size_t i = 0; i < population.size(); ++i) {
      if (features::IsSubVector(sv.vector, population[i])) {
        expected.push_back(static_cast<int32_t>(i));
      }
    }
    EXPECT_EQ(sv.supporting, expected);
    // Closed: floor of supporters equals the vector.
    EXPECT_EQ(FloorOf(population, sv.supporting), sv.vector);
    // Thresholds hold.
    EXPECT_GE(sv.support, config.min_support);
    EXPECT_LE(sv.p_value, config.max_pvalue);
  }
}

TEST(FvMineTest, NoDuplicateVectorsEmitted) {
  auto population = RandomPopulation(43, 12, 5, 3);
  auto packed = features::PackedVectorSet::FromVectors(population);
  stats::FeaturePriors priors(population, 10);
  FvMineConfig config;
  config.min_support = 2;
  config.max_pvalue = 0.8;
  FvMineResult result = FvMine(packed, priors, config);
  std::set<FeatureVec> seen;
  for (const auto& sv : result.vectors) {
    EXPECT_TRUE(seen.insert(sv.vector).second)
        << "duplicate closed vector emitted";
  }
}

TEST(FvMineTest, SupportThresholdPrunes) {
  std::vector<FeatureVec> population = {{3, 0}, {3, 0}, {0, 3}};
  auto packed = features::PackedVectorSet::FromVectors(population);
  stats::FeaturePriors priors(population, 10);
  FvMineConfig config;
  config.min_support = 3;
  config.max_pvalue = 1.0;
  FvMineResult result = FvMine(packed, priors, config);
  for (const auto& sv : result.vectors) {
    EXPECT_GE(sv.support, 3);
  }
}

TEST(FvMineTest, MaxResultsCapStops) {
  auto population = RandomPopulation(44, 14, 6, 3);
  auto packed = features::PackedVectorSet::FromVectors(population);
  stats::FeaturePriors priors(population, 10);
  FvMineConfig config;
  config.min_support = 1;
  config.max_pvalue = 0.99;
  config.max_results = 2;
  FvMineResult result = FvMine(packed, priors, config);
  EXPECT_LE(result.vectors.size(), 2u);
  EXPECT_FALSE(result.completed);
}

// Exhaustive cross-validation against subset enumeration, with and
// without the ceiling prune (the prune must not change the output).
class FvMinePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FvMinePropertyTest, MatchesBruteForce) {
  auto population = RandomPopulation(6000 + GetParam(), 10, 4, 3);
  auto packed = features::PackedVectorSet::FromVectors(population);
  stats::FeaturePriors priors(population, 10);
  FvMineConfig config;
  config.min_support = 2;
  config.max_pvalue = 0.75;

  auto truth = BruteForceClosedSignificant(population, priors,
                                           config.min_support,
                                           config.max_pvalue);

  for (bool prune : {true, false}) {
    config.use_ceiling_prune = prune;
    FvMineResult result = FvMine(packed, priors, config);
    std::map<FeatureVec, std::vector<int32_t>> mined;
    for (const auto& sv : result.vectors) {
      mined[sv.vector] = sv.supporting;
    }
    EXPECT_EQ(mined, truth) << "prune=" << prune;
  }
}

TEST_P(FvMinePropertyTest, CeilingPruneOnlyReducesWork) {
  auto population = RandomPopulation(7000 + GetParam(), 12, 5, 3);
  auto packed = features::PackedVectorSet::FromVectors(population);
  stats::FeaturePriors priors(population, 10);
  FvMineConfig config;
  config.min_support = 2;
  config.max_pvalue = 0.5;
  config.use_ceiling_prune = true;
  auto pruned = FvMine(packed, priors, config);
  config.use_ceiling_prune = false;
  auto full = FvMine(packed, priors, config);
  EXPECT_LE(pruned.states_explored, full.states_explored);
  EXPECT_EQ(pruned.vectors.size(), full.vectors.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FvMinePropertyTest, ::testing::Range(0, 15));

TEST(FvMineTest, NormalApproximationAgreesOnLargePopulations) {
  // On a large population the Section III-B hybrid must emit nearly the
  // same closed-vector set as the exact binomial tail (only borderline
  // p-values can flip).
  auto population = RandomPopulation(99, 400, 6, 3);
  auto packed = features::PackedVectorSet::FromVectors(population);
  stats::FeaturePriors priors(population, 10);
  FvMineConfig config;
  config.min_support = 8;
  config.max_pvalue = 1e-3;
  FvMineResult exact = FvMine(packed, priors, config);
  config.use_normal_approximation = true;
  FvMineResult approx = FvMine(packed, priors, config);

  std::set<FeatureVec> exact_set, approx_set;
  for (const auto& sv : exact.vectors) exact_set.insert(sv.vector);
  for (const auto& sv : approx.vectors) approx_set.insert(sv.vector);
  std::set<FeatureVec> both;
  std::set_intersection(exact_set.begin(), exact_set.end(),
                        approx_set.begin(), approx_set.end(),
                        std::inserter(both, both.begin()));
  const size_t unions =
      exact_set.size() + approx_set.size() - both.size();
  ASSERT_GT(unions, 0u);
  EXPECT_GE(static_cast<double>(both.size()) / unions, 0.9);
}

}  // namespace
}  // namespace graphsig::fvmine
