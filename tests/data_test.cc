#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "data/datasets.h"
#include "data/elements.h"
#include "data/generator.h"
#include "data/motifs.h"
#include "graph/isomorphism.h"

namespace graphsig::data {
namespace {

TEST(ElementsTest, AbundanceIsDistributionWithTopFiveDominant) {
  const auto& a = AtomAbundance();
  ASSERT_EQ(a.size(), static_cast<size_t>(kNumAtomTypes));
  double total = std::accumulate(a.begin(), a.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  double top5 = a[kCarbon] + a[kOxygen] + a[kNitrogen] + a[kSulfur] +
                a[kChlorine];
  EXPECT_GE(top5, 0.98);
  for (double x : a) EXPECT_GT(x, 0.0);
  EXPECT_GT(a[kCarbon], a[kOxygen]);
}

TEST(ElementsTest, SymbolsAreDistinct) {
  std::set<std::string> symbols;
  for (int l = 0; l < kNumAtomTypes; ++l) {
    EXPECT_TRUE(symbols.insert(AtomSymbol(l)).second) << l;
  }
  EXPECT_EQ(AtomSymbol(kAntimony), "Sb");
  EXPECT_EQ(AtomSymbol(kBismuth), "Bi");
  EXPECT_EQ(BondSymbol(kDoubleBond), "=");
}

TEST(MotifsTest, AllMotifsAreConnectedAndNonTrivial) {
  for (const NamedMotif& m : AllNamedMotifs()) {
    EXPECT_TRUE(m.graph.IsConnected()) << m.name;
    EXPECT_GE(m.graph.num_vertices(), 5) << m.name;
    EXPECT_GE(m.graph.num_edges(), 5) << m.name;
  }
}

TEST(MotifsTest, AztAndFdtShareScaffoldButDiffer) {
  graph::Graph azt = AztCoreMotif();
  graph::Graph fdt = FdtCoreMotif();
  EXPECT_FALSE(graph::AreIsomorphic(azt, fdt));
  // FDT carries fluorine; AZT carries the triple-nitrogen tail.
  auto has_label = [](const graph::Graph& g, graph::Label l) {
    for (graph::Label x : g.vertex_labels()) {
      if (x == l) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_label(fdt, kFluorine));
  EXPECT_FALSE(has_label(azt, kFluorine));
}

TEST(MotifsTest, SbAndBiCoresAreAnalogs) {
  graph::Graph sb = MetalloidMotif(kAntimony);
  graph::Graph bi = MetalloidMotif(kBismuth);
  EXPECT_FALSE(graph::AreIsomorphic(sb, bi));
  // Relabeling the metal makes them identical — the Fig. 15 analog pair.
  graph::Graph sb_relabeled;
  for (graph::Label l : sb.vertex_labels()) {
    sb_relabeled.AddVertex(l == kAntimony ? kBismuth : l);
  }
  for (const graph::EdgeRecord& e : sb.edges()) {
    sb_relabeled.AddEdge(e.u, e.v, e.label);
  }
  EXPECT_TRUE(graph::AreIsomorphic(sb_relabeled, bi));
}

TEST(GeneratorTest, MoleculesAreConnectedAndSized) {
  util::Rng rng(101);
  MoleculeGenConfig config;
  for (int i = 0; i < 50; ++i) {
    graph::Graph g = GenerateMolecule(config, &rng);
    EXPECT_TRUE(g.IsConnected());
    EXPECT_GE(g.num_vertices(), config.min_atoms);
    EXPECT_LE(g.num_vertices(), config.max_atoms);
    EXPECT_GE(g.num_edges(), g.num_vertices() - 1);
  }
}

TEST(GeneratorTest, StatisticsMatchNciCalibration) {
  util::Rng rng(202);
  MoleculeGenConfig config;
  int64_t atoms = 0, bonds = 0, carbons = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    graph::Graph g = GenerateMolecule(config, &rng);
    atoms += g.num_vertices();
    bonds += g.num_edges();
    for (graph::Label l : g.vertex_labels()) carbons += (l == kCarbon);
  }
  const double mean_atoms = static_cast<double>(atoms) / n;
  const double bond_ratio = static_cast<double>(bonds) / atoms;
  EXPECT_NEAR(mean_atoms, 25.0, 2.0);       // paper: 25.4
  EXPECT_NEAR(bond_ratio, 1.06, 0.05);      // paper: 27.3/25.4 = 1.075
  EXPECT_NEAR(static_cast<double>(carbons) / atoms, 0.660, 0.03);
}

TEST(GeneratorTest, ValenceRespected) {
  util::Rng rng(303);
  MoleculeGenConfig config;
  for (int i = 0; i < 20; ++i) {
    graph::Graph g = GenerateMolecule(config, &rng);
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_LE(g.degree(v), config.max_valence);
    }
  }
}

TEST(GeneratorTest, PlantedMotifRemainsSubgraph) {
  util::Rng rng(404);
  MoleculeGenConfig config;
  graph::Graph motif = AztCoreMotif();
  for (int i = 0; i < 20; ++i) {
    graph::Graph g = GenerateMolecule(config, &rng);
    PlantMotif(&g, motif, &rng);
    EXPECT_TRUE(g.IsConnected());
    EXPECT_TRUE(graph::IsSubgraphIsomorphic(motif, g));
  }
}

TEST(DatasetsTest, NamesAndSizes) {
  EXPECT_EQ(CancerScreenNames().size(), 11u);
  EXPECT_EQ(PaperDatasetSize("AIDS"), 43905u);
  EXPECT_EQ(PaperDatasetSize("Yeast"), 83933u);
}

TEST(DatasetsTest, DeterministicBySeed) {
  DatasetOptions options;
  options.size = 30;
  options.seed = 7;
  auto a = MakeAidsLike(options);
  auto b = MakeAidsLike(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.graph(i), b.graph(i));
  }
  options.seed = 8;
  auto c = MakeAidsLike(options);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a.graph(i) == c.graph(i))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(DatasetsTest, ActiveFractionAndPlantRates) {
  DatasetOptions options;
  options.size = 600;
  options.seed = 11;
  graph::GraphDatabase db = MakeAidsLike(options);
  ASSERT_EQ(db.size(), 600u);

  const graph::Graph azt = AztCoreMotif();
  const graph::Graph benzene = BenzeneMotif();
  int actives = 0, actives_with_azt = 0, inactives_with_azt = 0;
  int with_benzene = 0;
  for (const graph::Graph& g : db.graphs()) {
    const bool has_azt = graph::IsSubgraphIsomorphic(azt, g);
    if (g.tag() == 1) {
      ++actives;
      actives_with_azt += has_azt;
    } else {
      inactives_with_azt += has_azt;
    }
    with_benzene += graph::IsSubgraphIsomorphic(benzene, g);
  }
  EXPECT_NEAR(actives / 600.0, 0.05, 0.001);
  // AZT planted in ~33% of actives (0.55 * 0.6); random occurrence of a
  // 10-atom rare-labeled core elsewhere is essentially impossible.
  EXPECT_GT(actives_with_azt, actives / 5);
  EXPECT_LT(inactives_with_azt / 570.0, 0.03);
  EXPECT_NEAR(with_benzene / 600.0, 0.70, 0.10);
}

TEST(DatasetsTest, MoltFourPlantsRareAnalogsBelowOnePercent) {
  DatasetOptions options;
  options.size = 800;
  options.seed = 13;
  graph::GraphDatabase db = MakeCancerScreen("MOLT-4", options);
  const graph::Graph sb = MetalloidMotif(kAntimony);
  const graph::Graph bi = MetalloidMotif(kBismuth);
  int sb_count = 0, bi_count = 0;
  for (const graph::Graph& g : db.graphs()) {
    sb_count += graph::IsSubgraphIsomorphic(sb, g);
    bi_count += graph::IsSubgraphIsomorphic(bi, g);
  }
  // Rare but present: global frequency should land below ~1.5%.
  EXPECT_GT(sb_count, 0);
  EXPECT_GT(bi_count, 0);
  EXPECT_LT(sb_count / 800.0, 0.015);
  EXPECT_LT(bi_count / 800.0, 0.015);
}

TEST(DatasetsTest, SignatureMotifsDifferAcrossScreens) {
  std::set<std::string> canonicals;
  for (const std::string& name : CancerScreenNames()) {
    graph::Graph sig = SignatureMotif(name);
    EXPECT_TRUE(sig.IsConnected()) << name;
  }
  // UACC-257's signature is the phosphonium core.
  EXPECT_TRUE(graph::AreIsomorphic(SignatureMotif("UACC-257"),
                                   PhosphoniumMotif()));
  EXPECT_TRUE(
      graph::AreIsomorphic(SignatureMotif("AIDS"), AztCoreMotif()));
}

}  // namespace
}  // namespace graphsig::data
