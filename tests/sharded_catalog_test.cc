// ShardedCatalog is a pure re-partitioning of PatternCatalog's anchor
// index: for every shard count and fan-out width the wire-encoded reply
// must be byte-identical to the unsharded answer, and the deterministic
// serving counters must land on the same totals. These tests pin that
// contract at shard counts {1, 2, 4, 8} x threads {1, 4}.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/graphsig.h"
#include "data/datasets.h"
#include "model/artifact.h"
#include "net/wire.h"
#include "serve/pattern_catalog.h"
#include "serve/sharded_catalog.h"
#include "util/check.h"

namespace graphsig::serve {
namespace {

namespace wire = net::wire;

core::GraphSigConfig FastMiningConfig() {
  core::GraphSigConfig config;
  config.cutoff_radius = 3;
  config.min_freq_percent = 3.0;
  config.fsm_max_edges = 12;
  return config;
}

graph::GraphDatabase TestScreen(uint64_t seed, size_t size) {
  data::DatasetOptions options;
  options.size = size;
  options.seed = seed;
  options.active_fraction = 0.25;
  options.molecule.min_atoms = 8;
  options.molecule.max_atoms = 16;
  return data::MakeCancerScreen("MCF-7", options);
}

struct Fixture {
  graph::GraphDatabase db;
  graph::GraphDatabase holdout;
  std::shared_ptr<const PatternCatalog> catalog;
};

const Fixture& SharedFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    f->db = TestScreen(4242, 80);
    f->holdout = TestScreen(911, 24);

    core::GraphSig miner(FastMiningConfig());
    core::GraphSigResult mined = miner.Mine(f->db.FilterByTag(1));
    model::ModelArtifact artifact;
    artifact.feature_space = std::move(mined.feature_space);
    artifact.catalog = std::move(mined.subgraphs);
    artifact.database = f->db;
    auto built = PatternCatalog::FromArtifact(std::move(artifact));
    GS_CHECK(built.ok());
    f->catalog = std::make_shared<const PatternCatalog>(
        std::move(built).value());
    return f;
  }();
  return *fixture;
}

wire::QueryReply ToWire(const QueryResult& result) {
  wire::QueryReply reply;
  reply.matched_patterns = result.matched_patterns;
  reply.has_score = result.has_score;
  reply.score = result.score;
  reply.iso_calls = result.iso_calls;
  reply.pruned = result.pruned;
  return reply;
}

TEST(ShardedCatalogTest, PartitionCoversEveryAnchorExactlyOnce) {
  const Fixture& f = SharedFixture();
  for (int shards : {1, 2, 4, 8}) {
    ShardedCatalog sharded(f.catalog, shards);
    ASSERT_EQ(sharded.num_shards(), static_cast<size_t>(shards));
    std::map<graph::Label, std::vector<int32_t>> merged;
    size_t total_patterns = 0;
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      total_patterns += sharded.shard_num_patterns(s);
      for (const auto& [label, patterns] : sharded.shard_anchors(s)) {
        // No anchor label may appear in two shards.
        ASSERT_TRUE(merged.emplace(label, patterns).second)
            << "anchor label " << label << " split across shards";
      }
    }
    EXPECT_EQ(merged, f.catalog->patterns_by_anchor())
        << shards << " shards";
    EXPECT_EQ(total_patterns, f.catalog->num_patterns());
  }
}

TEST(ShardedCatalogTest, RepliesByteIdenticalToUnshardedAcrossShardCounts) {
  const Fixture& f = SharedFixture();
  CatalogQueryConfig config;
  config.compute_score = false;

  std::vector<std::string> baseline;
  for (const graph::Graph& g : f.holdout.graphs()) {
    baseline.push_back(
        wire::EncodeQueryReply(ToWire(f.catalog->Query(g, config))));
  }

  for (int shards : {1, 2, 4, 8}) {
    ShardedCatalog sharded(f.catalog, shards);
    for (int threads : {1, 4}) {
      CatalogQueryConfig sharded_config = config;
      sharded_config.num_threads = threads;
      for (size_t i = 0; i < f.holdout.size(); ++i) {
        const QueryResult r =
            sharded.Query(f.holdout.graph(i), sharded_config);
        EXPECT_EQ(wire::EncodeQueryReply(ToWire(r)), baseline[i])
            << "query " << i << ", " << shards << " shards, " << threads
            << " threads";
        // The pruning identity survives sharding: every pattern either
        // reached the matcher in some shard or was pruned.
        EXPECT_EQ(r.iso_calls + r.pruned,
                  static_cast<int32_t>(f.catalog->num_patterns()));
      }
    }
  }
}

TEST(ShardedCatalogTest, ServingStatsTotalsMatchUnsharded) {
  const Fixture& f = SharedFixture();
  CatalogQueryConfig config;
  config.compute_score = false;

  f.catalog->ResetStats();
  for (const graph::Graph& g : f.holdout.graphs()) {
    (void)f.catalog->Query(g, config);
  }
  const ServingStats unsharded = f.catalog->Snapshot();

  for (int shards : {2, 8}) {
    ShardedCatalog sharded(f.catalog, shards);
    sharded.ResetStats();
    CatalogQueryConfig sharded_config = config;
    sharded_config.num_threads = 4;
    for (const graph::Graph& g : f.holdout.graphs()) {
      (void)sharded.Query(g, sharded_config);
    }
    const ServingStats stats = sharded.Snapshot();
    EXPECT_EQ(stats.queries, unsharded.queries) << shards << " shards";
    EXPECT_EQ(stats.iso_calls, unsharded.iso_calls) << shards << " shards";
    EXPECT_EQ(stats.pruned, unsharded.pruned) << shards << " shards";
    EXPECT_EQ(stats.pattern_matches, unsharded.pattern_matches)
        << shards << " shards";
  }
}

TEST(ShardedCatalogTest, QueryBatchMatchesPerQueryAcrossThreadCounts) {
  const Fixture& f = SharedFixture();
  ShardedCatalog sharded(f.catalog, 4);

  CatalogQueryConfig config;
  config.compute_score = false;
  config.num_threads = 1;
  std::vector<std::string> serial;
  for (const graph::Graph& g : f.holdout.graphs()) {
    serial.push_back(
        wire::EncodeQueryReply(ToWire(sharded.Query(g, config))));
  }
  for (int threads : {1, 4}) {
    CatalogQueryConfig batch_config = config;
    batch_config.num_threads = threads;
    const std::vector<QueryResult> batch =
        sharded.QueryBatch(f.holdout.graphs(), batch_config);
    ASSERT_EQ(batch.size(), f.holdout.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(wire::EncodeQueryReply(ToWire(batch[i])), serial[i])
          << "query " << i << " at " << threads << " threads";
    }
  }
}

TEST(ShardedCatalogTest, DelegatesCatalogMetadata) {
  const Fixture& f = SharedFixture();
  ShardedCatalog sharded(f.catalog, 3);
  EXPECT_EQ(sharded.num_patterns(), f.catalog->num_patterns());
  EXPECT_EQ(sharded.generation(), f.catalog->generation());
  EXPECT_EQ(sharded.has_classifier(), f.catalog->has_classifier());
  EXPECT_EQ(&sharded.catalog(), f.catalog.get());
}

TEST(ShardedCatalogTest, ShardCountClampedToAtLeastOne) {
  const Fixture& f = SharedFixture();
  ShardedCatalog sharded(f.catalog, 0);
  EXPECT_EQ(sharded.num_shards(), 1u);
}

TEST(ShardedCatalogTest, MoreShardsThanAnchorsLeavesEmptyShards) {
  const Fixture& f = SharedFixture();
  const size_t anchors = f.catalog->patterns_by_anchor().size();
  const int shards = static_cast<int>(anchors) + 5;
  ShardedCatalog sharded(f.catalog, shards);
  ASSERT_EQ(sharded.num_shards(), static_cast<size_t>(shards));
  size_t total = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    total += sharded.shard_num_patterns(s);
  }
  EXPECT_EQ(total, f.catalog->num_patterns());

  // Queries still answer correctly through the padding shards.
  CatalogQueryConfig config;
  config.compute_score = false;
  const QueryResult direct = f.catalog->Query(f.holdout.graph(0), config);
  const QueryResult shardy = sharded.Query(f.holdout.graph(0), config);
  EXPECT_EQ(wire::EncodeQueryReply(ToWire(shardy)),
            wire::EncodeQueryReply(ToWire(direct)));
}

}  // namespace
}  // namespace graphsig::serve
