// Robustness tests for the untrusted decoders, complementing the fuzz
// harnesses under fuzz/ with deterministic, exhaustive checks:
//
//  * a corruption sweep that flips every bit of the artifact header and
//    section table and requires a clean ParseError/FailedPrecondition —
//    never a crash, never a silent OK past the integrity gate;
//  * a seeded property test that round-trips randomly generated graphs
//    through the binary codec and requires byte-identical re-encoding;
//  * checks that ByteReader decode failures name the section being
//    decoded and the byte offset of the failed read.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "features/feature_space.h"
#include "graph/graph.h"
#include "graph/graph_database.h"
#include "graph/serialize.h"
#include "model/artifact.h"
#include "util/binary.h"
#include "util/rng.h"
#include "util/status.h"

namespace graphsig {
namespace {

using graph::Graph;
using graph::GraphDatabase;
using util::ByteReader;
using util::ByteWriter;
using util::StatusCode;

// Mirrors the wire layout in src/model/artifact.cc: 8-byte magic +
// u32 version + u32 section count, then count x {u32 id, u64 off, u64
// size} table entries. EncodeArtifact always writes all four sections.
constexpr size_t kHeaderSize = 8 + 4 + 4;
constexpr size_t kTableEntrySize = 4 + 8 + 8;
constexpr size_t kSectionCount = 4;
constexpr size_t kChecksumSize = 4;

model::ModelArtifact GoldenArtifact() {
  data::DatasetOptions options;
  options.size = 6;
  options.seed = 1;
  model::ModelArtifact artifact;
  artifact.database = data::MakeAidsLike(options);
  artifact.feature_space =
      features::FeatureSpace::ForChemicalDatabase(artifact.database, 4);
  core::SignificantSubgraph sg;
  sg.subgraph = artifact.database.graph(0);
  sg.vector = {1, 0, 2, 1};
  sg.vector_pvalue = 0.01;
  sg.vector_support = 3;
  sg.anchor_label = artifact.database.graph(0).vertex_label(0);
  sg.set_size = 3;
  sg.set_support = 2;
  artifact.catalog.push_back(sg);
  return artifact;
}

// Rewrites the trailing CRC so corruption upstream of it survives the
// integrity gate and reaches the header/section-table validators.
std::string RestampChecksum(std::string bytes) {
  const uint32_t crc = util::Crc32(
      std::string_view(bytes).substr(0, bytes.size() - kChecksumSize));
  for (size_t i = 0; i < kChecksumSize; ++i) {
    bytes[bytes.size() - kChecksumSize + i] =
        static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  return bytes;
}

TEST(ArtifactCorruptionSweep, EveryHeaderAndTableBitFlipIsACleanError) {
  const std::string golden = model::EncodeArtifact(GoldenArtifact());
  const size_t sweep_end = kHeaderSize + kSectionCount * kTableEntrySize;
  ASSERT_LT(sweep_end, golden.size() - kChecksumSize);
  ASSERT_TRUE(model::DecodeArtifact(golden).ok());

  for (size_t pos = 0; pos < sweep_end; ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = golden;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1u << bit));
      const auto result = model::DecodeArtifact(corrupt);
      ASSERT_FALSE(result.ok())
          << "flip of byte " << pos << " bit " << bit << " decoded OK";
      const StatusCode code = result.status().code();
      ASSERT_TRUE(code == StatusCode::kParseError ||
                  code == StatusCode::kFailedPrecondition)
          << "flip of byte " << pos << " bit " << bit
          << " produced unexpected status "
          << result.status().ToString();
      ASSERT_FALSE(result.status().message().empty());
    }
  }
}

TEST(ArtifactCorruptionSweep, RestampedFlipsReachValidatorsCleanly) {
  // With the CRC re-stamped after each flip, corruption is no longer
  // caught by the integrity gate — it exercises the magic/version/
  // section-bounds validators and the per-section decoders directly.
  // A flip may legitimately decode OK (e.g. a section id mutated into
  // an unknown id is skipped by design); what is required is no crash
  // and, on failure, a classified error. OutOfRange joins the accepted
  // set here: shrinking a section-table size field truncates a payload
  // mid-read, which ByteReader reports as OutOfRange.
  const std::string golden = model::EncodeArtifact(GoldenArtifact());
  const size_t sweep_end = kHeaderSize + kSectionCount * kTableEntrySize;

  for (size_t pos = 0; pos < sweep_end; ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = golden;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1u << bit));
      const auto result = model::DecodeArtifact(RestampChecksum(corrupt));
      if (result.ok()) continue;
      const StatusCode code = result.status().code();
      ASSERT_TRUE(code == StatusCode::kParseError ||
                  code == StatusCode::kFailedPrecondition ||
                  code == StatusCode::kOutOfRange)
          << "restamped flip of byte " << pos << " bit " << bit
          << " produced unexpected status "
          << result.status().ToString();
    }
  }
}

TEST(ArtifactCorruptionSweep, TruncationAtEveryPrefixIsACleanError) {
  const std::string golden = model::EncodeArtifact(GoldenArtifact());
  for (size_t len = 0; len < golden.size(); ++len) {
    const auto result =
        model::DecodeArtifact(std::string_view(golden).substr(0, len));
    ASSERT_FALSE(result.ok()) << "prefix of " << len << " bytes decoded OK";
    ASSERT_EQ(result.status().code(), StatusCode::kParseError)
        << result.status().ToString();
  }
}

Graph RandomGraph(util::Rng* rng, int trial) {
  Graph g(trial);
  g.set_tag(trial % 2);
  const int n = static_cast<int>(rng->NextInt(0, 12));
  for (int v = 0; v < n; ++v) {
    g.AddVertex(static_cast<graph::Label>(rng->NextInt(0, 20)));
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng->NextBernoulli(0.3)) {
        g.AddEdge(u, v, static_cast<graph::Label>(rng->NextInt(0, 5)));
      }
    }
  }
  return g;
}

TEST(GraphCodecProperty, RandomGraphsRoundTripByteIdentically) {
  util::Rng rng(0xC0DEC5EEDull);
  GraphDatabase db;
  for (int trial = 0; trial < 200; ++trial) {
    const Graph g = RandomGraph(&rng, trial);

    ByteWriter w;
    graph::EncodeGraph(g, &w);
    const std::string first = w.buffer();

    ByteReader r(first);
    const auto decoded = graph::DecodeGraph(&r);
    ASSERT_TRUE(decoded.ok()) << "trial " << trial << ": "
                              << decoded.status().ToString();
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(decoded.value(), g) << "trial " << trial;

    // Encoding is a pure function of the value: a decode/re-encode
    // cycle must reproduce the original bytes exactly.
    ByteWriter w2;
    graph::EncodeGraph(decoded.value(), &w2);
    EXPECT_EQ(w2.buffer(), first) << "trial " << trial;

    db.Add(g);
  }

  ByteWriter w;
  graph::EncodeDatabase(db, &w);
  ByteReader r(w.buffer());
  const auto decoded = graph::DecodeDatabase(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(decoded.value().graph(i), db.graph(i)) << "graph " << i;
  }
}

TEST(ByteReaderMessages, TruncationNamesSectionAndOffset) {
  const std::string bytes("\x01\x02\x03", 3);
  ByteReader reader(bytes, "catalog section");
  uint8_t b = 0;
  ASSERT_TRUE(reader.ReadU8(&b).ok());
  ASSERT_TRUE(reader.ReadU8(&b).ok());

  uint32_t v = 0;
  const util::Status truncated = reader.ReadU32(&v);
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.message().find("catalog section"), std::string::npos)
      << truncated.message();
  EXPECT_NE(truncated.message().find("offset 2"), std::string::npos)
      << truncated.message();
  // The failed read leaves the cursor where it was.
  EXPECT_EQ(reader.position(), 2u);

  reader.set_section("classifier section");
  uint64_t w = 0;
  const util::Status relabeled = reader.ReadU64(&w);
  ASSERT_FALSE(relabeled.ok());
  EXPECT_NE(relabeled.message().find("classifier section"),
            std::string::npos)
      << relabeled.message();
}

TEST(ByteReaderMessages, GraphDecodeFailureNamesSectionAndOffset) {
  // End-to-end through a real decoder: a truncated graph payload must
  // report the section label and the offset of the failed read.
  Graph g(7);
  g.AddVertex(1);
  g.AddVertex(2);
  ASSERT_GE(g.AddEdge(0, 1, 3), 0);
  ByteWriter w;
  graph::EncodeGraph(g, &w);

  const std::string_view whole = w.buffer();
  ByteReader reader(whole.substr(0, whole.size() / 2), "database section");
  const auto result = graph::DecodeGraph(&reader);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("database section"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("offset"), std::string::npos)
      << result.status().ToString();
}

}  // namespace
}  // namespace graphsig
