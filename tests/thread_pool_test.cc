#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/parallel.h"

namespace graphsig::util {
namespace {

TEST(ThreadPoolTest, GlobalPoolIsPersistent) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_workers(), 1);
  EXPECT_FALSE(a.OnWorkerThread());  // the test thread is not a worker
}

TEST(ThreadPoolTest, TaskGroupRunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::atomic<int> on_worker{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&] {
      if (pool.OnWorkerThread()) ++on_worker;
      ++ran;
    });
  }
  // Drain before Wait(): Wait helps by running tasks on this thread, so
  // letting the pool finish first proves workers execute submissions.
  while (ran.load() < 100) std::this_thread::yield();
  group.Wait();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(on_worker.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  TaskGroup group;
  group.Wait();
}

TEST(ThreadPoolTest, TaskGroupPropagatesException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Run([] { throw std::runtime_error("task boom"); });
  try {
    group.Wait();
    FAIL() << "Wait() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "task boom");
  }
}

TEST(ThreadPoolTest, FailedFlagDrainsRemainingWork) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Run([] { throw std::runtime_error("first"); });
  // Later tasks can poll failed() to drain fast; every task still runs
  // to completion before Wait returns, and exactly one exception lands.
  std::atomic<int> completed{0};
  for (int i = 0; i < 50; ++i) {
    group.Run([&] { ++completed; });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 50);
  EXPECT_FALSE(group.failed());  // consumed by Wait's rethrow
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstExceptionOnCaller) {
  std::atomic<int> ran{0};
  try {
    ParallelFor(4, 1000, [&](size_t i) {
      if (i == 13) throw std::runtime_error("index 13");
      ++ran;
    });
    FAIL() << "ParallelFor should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "index 13");
  }
  // The failure drains remaining indices instead of running them all.
  EXPECT_LT(ran.load(), 1000);
}

TEST(ThreadPoolTest, ParallelForInlinePathPropagatesToo) {
  EXPECT_THROW(
      ParallelFor(1, 5, [](size_t i) {
        if (i == 3) throw std::out_of_range("inline");
      }),
      std::out_of_range);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  std::atomic<int64_t> total{0};
  ParallelFor(4, 8, [&](size_t) {
    ParallelFor(4, 16, [&](size_t j) {
      total.fetch_add(static_cast<int64_t>(j) + 1);
    });
  });
  // 8 outer x sum(1..16) inner.
  EXPECT_EQ(total.load(), 8 * (16 * 17 / 2));
}

TEST(ThreadPoolTest, NestedExceptionCrossesBothLevels) {
  EXPECT_THROW(ParallelFor(2, 4,
                           [&](size_t) {
                             ParallelFor(2, 4, [](size_t j) {
                               if (j == 2) {
                                 throw std::runtime_error("inner");
                               }
                             });
                           }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ZeroAndOneItemCounts) {
  int calls = 0;
  ParallelFor(8, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(8, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  TaskGroup group;
  std::atomic<int> one{0};
  group.Run([&] { ++one; });
  group.Wait();
  EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPoolTest, RunOneTaskFromOutsideHelps) {
  ThreadPool pool(1);
  // Saturate the single worker with a task that waits for the main
  // thread's help, proving outside threads can steal queued work.
  std::atomic<bool> helped{false};
  TaskGroup group(&pool);
  group.Run([&] {
    while (!helped.load()) {
      // busy-wait until main runs the second task
    }
  });
  group.Run([&] { helped.store(true); });
  while (!helped.load()) {
    pool.RunOneTask();
  }
  group.Wait();
  EXPECT_TRUE(helped.load());
}

TEST(ThreadPoolTest, ManyGroupsReuseOneGlobalPool) {
  // Back-to-back parallel regions (the mining pipeline's shape) must not
  // accumulate threads: the pool width is fixed at construction.
  const int before = ThreadPool::Global().num_workers();
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    ParallelFor(8, 64, [&](size_t) { ++ran; });
    ASSERT_EQ(ran.load(), 64);
  }
  EXPECT_EQ(ThreadPool::Global().num_workers(), before);
}

}  // namespace
}  // namespace graphsig::util
