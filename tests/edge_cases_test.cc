#include <gtest/gtest.h>

#include <cmath>

#include "classify/sig_knn.h"
#include "data/elements.h"
#include "data/smiles.h"
#include "features/feature_space.h"
#include "fsm/dfs_code.h"
#include "graph/graph.h"
#include "util/status.h"

namespace graphsig {
namespace {

TEST(StatusCodeTest, EveryCodeHasAName) {
  using util::StatusCode;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kIoError,
        StatusCode::kParseError}) {
    EXPECT_NE(std::string(util::StatusCodeName(code)), "Unknown");
  }
}

TEST(GraphEdgeCaseTest, EdgeLabelBetweenOutOfRange) {
  graph::Graph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddEdge(0, 1, 7);
  EXPECT_EQ(g.EdgeLabelBetween(-1, 0), -1);
  EXPECT_EQ(g.EdgeLabelBetween(0, 9), -1);
  EXPECT_EQ(g.EdgeLabelBetween(0, 1), 7);
}

TEST(GraphEdgeCaseTest, ToStringMentionsStructure) {
  graph::Graph g(42);
  g.set_tag(1);
  g.AddVertex(3);
  g.AddVertex(4);
  g.AddEdge(0, 1, 5);
  const std::string s = g.ToString();
  EXPECT_NE(s.find("id=42"), std::string::npos);
  EXPECT_NE(s.find("tag=1"), std::string::npos);
  EXPECT_NE(s.find("v 0 3"), std::string::npos);
  EXPECT_NE(s.find("e 0 1 5"), std::string::npos);
}

TEST(DfsEdgeLessTest, BackwardBeforeForwardAndWithinCategoryOrder) {
  using fsm::DfsEdge;
  const DfsEdge backward_a{3, 0, 1, 0, 1};
  const DfsEdge backward_b{3, 1, 1, 0, 1};
  const DfsEdge backward_b_heavier{3, 1, 1, 2, 1};
  const DfsEdge forward_from_rm{3, 4, 1, 0, 1};
  const DfsEdge forward_from_root{0, 4, 1, 0, 1};

  // Backward precedes forward.
  EXPECT_TRUE(fsm::DfsEdgeLess(backward_a, forward_from_rm));
  EXPECT_FALSE(fsm::DfsEdgeLess(forward_from_rm, backward_a));
  // Backward: smaller 'to' first, then edge label.
  EXPECT_TRUE(fsm::DfsEdgeLess(backward_a, backward_b));
  EXPECT_TRUE(fsm::DfsEdgeLess(backward_b, backward_b_heavier));
  // Forward: larger 'from' first.
  EXPECT_TRUE(fsm::DfsEdgeLess(forward_from_rm, forward_from_root));
}

TEST(FeatureSpaceEdgeCaseTest, AllEdgeTypesConfiguration) {
  graph::GraphDatabase db;
  graph::Graph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(0);
  g.AddEdge(0, 1, 0);
  g.AddEdge(1, 2, 1);
  db.Add(g);
  auto fs = features::FeatureSpace::AllEdgeTypes(db);
  EXPECT_EQ(fs.num_vertex_features(), 0u);
  EXPECT_EQ(fs.num_edge_features(), 2u);
  EXPECT_GE(fs.EdgeFeature(0, 1, 0), 0);
  EXPECT_GE(fs.EdgeFeature(1, 0, 1), 0);
  EXPECT_EQ(fs.EdgeFeature(0, 0, 0), -1);
  EXPECT_EQ(fs.VertexFeature(0), -1);
}

TEST(MinDistEdgeCaseTest, EmptySetIsInfinity) {
  features::FeatureVec x = {1, 2, 3};
  EXPECT_TRUE(std::isinf(classify::MinDistToSubVector(x, {})));
}

TEST(MinDistEdgeCaseTest, ExactMatchIsZero) {
  features::FeatureVec x = {1, 2, 3};
  std::vector<features::FeatureVec> set = {{1, 2, 3}};
  EXPECT_EQ(classify::MinDistToSubVector(x, set), 0.0);
}

TEST(SmilesEdgeCaseTest, SingleAtomForms) {
  auto c = data::ParseSmiles("C");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().num_vertices(), 1);
  EXPECT_EQ(data::WriteSmiles(c.value()), "C");

  graph::Graph sb;
  sb.AddVertex(data::kAntimony);
  EXPECT_EQ(data::WriteSmiles(sb), "[Sb]");
  auto back = data::ParseSmiles("[Sb]");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().vertex_label(0), data::kAntimony);
}

TEST(SmilesEdgeCaseTest, WhitespaceTrimmedAndTrailingIgnored) {
  auto r = data::ParseSmiles("  CCO  ");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_vertices(), 3);
}

TEST(CanonicalEdgeCaseTest, TwoVertexSameLabelGraph) {
  graph::Graph g;
  g.AddVertex(5);
  g.AddVertex(5);
  g.AddEdge(0, 1, 2);
  fsm::DfsCode code = fsm::BuildMinDfsCode(g);
  ASSERT_EQ(code.size(), 1u);
  EXPECT_EQ(code[0].from_label, 5);
  EXPECT_EQ(code[0].to_label, 5);
  EXPECT_EQ(code[0].edge_label, 2);
  EXPECT_TRUE(fsm::IsMinimalDfsCode(code));
}

}  // namespace
}  // namespace graphsig
