#include <gtest/gtest.h>

#include <string>

#include "classify/sig_knn.h"
#include "core/graphsig.h"
#include "data/datasets.h"
#include "graph/serialize.h"
#include "model/artifact.h"
#include "util/binary.h"

namespace graphsig::model {
namespace {

// --- wire primitives --------------------------------------------------

TEST(BinaryTest, WriterReaderRoundTrip) {
  util::ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0xbeef);
  w.WriteU32(0xdeadbeefu);
  w.WriteU64(0x0123456789abcdefull);
  w.WriteI32(-42);
  w.WriteI64(-1234567890123ll);
  w.WriteF64(-2.5e-11);
  w.WriteString("hello");

  util::ByteReader r(w.buffer());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  double f64;
  std::string s;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU16(&u16).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI32(&i32).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadF64(&f64).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0xbeef);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123ll);
  EXPECT_EQ(f64, -2.5e-11);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(BinaryTest, ReadsPastEndFailCleanly) {
  util::ByteWriter w;
  w.WriteU16(7);
  util::ByteReader r(w.buffer());
  uint32_t u32;
  EXPECT_FALSE(r.ReadU32(&u32).ok());
  // The failed read leaves the cursor unchanged.
  uint16_t u16;
  EXPECT_TRUE(r.ReadU16(&u16).ok());
  EXPECT_EQ(u16, 7);
}

TEST(BinaryTest, TruncatedStringFails) {
  util::ByteWriter w;
  w.WriteU64(1000);  // declares far more bytes than present
  w.WriteBytes("xy");
  util::ByteReader r(w.buffer());
  std::string s;
  EXPECT_FALSE(r.ReadString(&s).ok());
}

TEST(BinaryTest, Crc32KnownVector) {
  // The standard CRC-32 check value.
  EXPECT_EQ(util::Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(util::Crc32(""), 0u);
}

// --- graph codec ------------------------------------------------------

graph::Graph SampleGraph() {
  graph::Graph g(77);
  g.set_tag(1);
  graph::VertexId a = g.AddVertex(6);
  graph::VertexId b = g.AddVertex(7);
  graph::VertexId c = g.AddVertex(8);
  graph::VertexId d = g.AddVertex(6);
  g.AddEdge(a, b, 1);
  g.AddEdge(b, c, 2);
  g.AddEdge(c, d, 1);
  g.AddEdge(d, a, 3);
  return g;
}

TEST(GraphCodecTest, RoundTripPreservesEverything) {
  const graph::Graph g = SampleGraph();
  util::ByteWriter w;
  graph::EncodeGraph(g, &w);
  util::ByteReader r(w.buffer());
  auto decoded = graph::DecodeGraph(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), g);
  EXPECT_TRUE(r.exhausted());
}

TEST(GraphCodecTest, EncodingIsDeterministic) {
  const graph::Graph g = SampleGraph();
  util::ByteWriter w1, w2;
  graph::EncodeGraph(g, &w1);
  graph::EncodeGraph(g, &w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
}

TEST(GraphCodecTest, DatabaseRoundTrip) {
  graph::GraphDatabase db;
  db.Add(SampleGraph());
  graph::Graph single(3);
  single.AddVertex(16);
  db.Add(single);
  util::ByteWriter w;
  graph::EncodeDatabase(db, &w);
  util::ByteReader r(w.buffer());
  auto decoded = graph::DecodeDatabase(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().graphs(), db.graphs());
}

TEST(GraphCodecTest, RejectsMalformedEdgesWithoutCrashing) {
  // Hand-assemble a graph record with an out-of-range endpoint.
  auto encode_bad = [](int32_t u, int32_t v) {
    util::ByteWriter w;
    w.WriteI64(1);   // id
    w.WriteI32(0);   // tag
    w.WriteU32(2);   // vertices
    w.WriteI32(6);
    w.WriteI32(6);
    w.WriteU32(1);   // edges
    w.WriteI32(u);
    w.WriteI32(v);
    w.WriteI32(1);
    return w.TakeBuffer();
  };
  for (auto [u, v] : {std::pair<int32_t, int32_t>{0, 5},
                      {-1, 1},
                      {1, 1}}) {
    const std::string bytes = encode_bad(u, v);
    util::ByteReader r(bytes);
    auto decoded = graph::DecodeGraph(&r);
    EXPECT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), util::StatusCode::kParseError);
  }
}

TEST(GraphCodecTest, RejectsImplausibleCounts) {
  util::ByteWriter w;
  w.WriteI64(1);
  w.WriteI32(0);
  w.WriteU32(0xffffffffu);  // 4 billion vertices in a 20-byte record
  const std::string bytes = w.TakeBuffer();
  util::ByteReader r(bytes);
  auto decoded = graph::DecodeGraph(&r);
  EXPECT_FALSE(decoded.ok());
}

// --- artifact ---------------------------------------------------------

// A small mined-and-trained artifact shared by the round-trip tests.
// Built once: mining dominates the suite's runtime.
const ModelArtifact& TestArtifact() {
  static const ModelArtifact* artifact = [] {
    data::DatasetOptions options;
    options.size = 70;
    options.seed = 411;
    options.active_fraction = 0.25;
    options.molecule.min_atoms = 8;
    options.molecule.max_atoms = 16;
    graph::GraphDatabase db = data::MakeCancerScreen("MCF-7", options);

    core::GraphSigConfig mining;
    mining.cutoff_radius = 3;
    mining.min_freq_percent = 3.0;
    mining.fsm_max_edges = 12;

    auto* result = new ModelArtifact();
    core::GraphSig miner(mining);
    core::GraphSigResult mined = miner.Mine(db.FilterByTag(1));
    result->feature_space = std::move(mined.feature_space);
    result->catalog = std::move(mined.subgraphs);

    classify::SigKnnConfig knn;
    knn.mining = mining;
    classify::GraphSigClassifier classifier(knn);
    classifier.Train(db);
    result->classifier = classifier.ExportModel();
    result->database = std::move(db);
    return result;
  }();
  return *artifact;
}

void ExpectArtifactsEqual(const ModelArtifact& a, const ModelArtifact& b) {
  EXPECT_EQ(a.database.graphs(), b.database.graphs());
  EXPECT_EQ(a.feature_space, b.feature_space);
  ASSERT_EQ(a.catalog.size(), b.catalog.size());
  for (size_t i = 0; i < a.catalog.size(); ++i) {
    const core::SignificantSubgraph& x = a.catalog[i];
    const core::SignificantSubgraph& y = b.catalog[i];
    EXPECT_EQ(x.subgraph, y.subgraph);
    EXPECT_EQ(x.vector, y.vector);
    EXPECT_EQ(x.vector_pvalue, y.vector_pvalue);  // bit-exact
    EXPECT_EQ(x.vector_support, y.vector_support);
    EXPECT_EQ(x.anchor_label, y.anchor_label);
    EXPECT_EQ(x.set_size, y.set_size);
    EXPECT_EQ(x.set_support, y.set_support);
    EXPECT_EQ(x.db_frequency, y.db_frequency);
  }
  EXPECT_EQ(a.classifier.empty(), b.classifier.empty());
  EXPECT_EQ(a.classifier.k, b.classifier.k);
  EXPECT_EQ(a.classifier.delta, b.classifier.delta);
  EXPECT_EQ(a.classifier.rwr.restart_prob, b.classifier.rwr.restart_prob);
  EXPECT_EQ(a.classifier.rwr.epsilon, b.classifier.rwr.epsilon);
  EXPECT_EQ(a.classifier.rwr.max_iterations,
            b.classifier.rwr.max_iterations);
  EXPECT_EQ(a.classifier.rwr.bins, b.classifier.rwr.bins);
  EXPECT_EQ(a.classifier.rwr.radius, b.classifier.rwr.radius);
  EXPECT_EQ(a.classifier.rwr.featurizer, b.classifier.rwr.featurizer);
  EXPECT_EQ(a.classifier.space, b.classifier.space);
  EXPECT_EQ(a.classifier.positive, b.classifier.positive);
  EXPECT_EQ(a.classifier.negative, b.classifier.negative);
}

TEST(ModelArtifactTest, EncodeDecodeRoundTrip) {
  const ModelArtifact& artifact = TestArtifact();
  ASSERT_FALSE(artifact.catalog.empty());
  ASSERT_FALSE(artifact.classifier.empty());
  const std::string bytes = EncodeArtifact(artifact);
  auto decoded = DecodeArtifact(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectArtifactsEqual(artifact, decoded.value());
}

TEST(ModelArtifactTest, EncodingIsDeterministic) {
  const ModelArtifact& artifact = TestArtifact();
  EXPECT_EQ(EncodeArtifact(artifact), EncodeArtifact(artifact));
}

TEST(ModelArtifactTest, FileRoundTrip) {
  const ModelArtifact& artifact = TestArtifact();
  const std::string path = testing::TempDir() + "/model_roundtrip.gsig";
  ASSERT_TRUE(SaveArtifact(artifact, path).ok());
  auto loaded = LoadArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectArtifactsEqual(artifact, loaded.value());
}

TEST(ModelArtifactTest, EmptyArtifactRoundTrips) {
  ModelArtifact empty;
  const std::string bytes = EncodeArtifact(empty);
  auto decoded = DecodeArtifact(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value().database.empty());
  EXPECT_TRUE(decoded.value().catalog.empty());
  EXPECT_TRUE(decoded.value().classifier.empty());
  EXPECT_EQ(decoded.value().feature_space.size(), 0u);
}

// Re-stamps the trailing CRC after a deliberate mutation, so the test
// reaches the check the mutation targets instead of the checksum.
std::string RestampChecksum(std::string bytes) {
  util::ByteWriter w;
  w.WriteBytes(bytes);
  const uint32_t crc = util::Crc32(
      std::string_view(bytes).substr(0, bytes.size() - 4));
  w.PatchU32(bytes.size() - 4, crc);
  return std::move(w.TakeBuffer());
}

TEST(ModelArtifactTest, RejectsTruncationAtEveryCoarsePrefix) {
  const std::string bytes = EncodeArtifact(TestArtifact());
  ASSERT_GT(bytes.size(), 64u);
  // Every strict prefix must be rejected; step keeps the loop fast.
  for (size_t len : {size_t{0}, size_t{7}, size_t{15}, size_t{16},
                     bytes.size() / 4, bytes.size() / 2,
                     bytes.size() - 5, bytes.size() - 1}) {
    auto decoded = DecodeArtifact(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes accepted";
  }
}

TEST(ModelArtifactTest, RejectsBitFlipAnywhere) {
  const std::string pristine = EncodeArtifact(TestArtifact());
  for (size_t pos : {size_t{0}, size_t{9}, size_t{20},
                     pristine.size() / 2, pristine.size() - 1}) {
    std::string bytes = pristine;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x40);
    auto decoded = DecodeArtifact(bytes);
    EXPECT_FALSE(decoded.ok()) << "flip at " << pos << " accepted";
  }
}

TEST(ModelArtifactTest, RejectsBadMagic) {
  std::string bytes = EncodeArtifact(TestArtifact());
  bytes[0] = 'X';
  auto decoded = DecodeArtifact(RestampChecksum(std::move(bytes)));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(decoded.status().message().find("magic"), std::string::npos);
}

TEST(ModelArtifactTest, RejectsFutureVersion) {
  std::string bytes = EncodeArtifact(TestArtifact());
  util::ByteWriter w;
  w.WriteBytes(bytes);
  w.PatchU32(8, kFormatVersion + 1);  // version field follows the magic
  auto decoded = DecodeArtifact(RestampChecksum(std::move(w.TakeBuffer())));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_NE(decoded.status().message().find("newer"), std::string::npos);
}

TEST(ModelArtifactTest, IgnoresUnknownSections) {
  // Rewrite the database section's id to an unassigned value: the loader
  // must skip it (future-revision compatibility) and still decode the
  // rest, leaving the database empty.
  std::string bytes = EncodeArtifact(TestArtifact());
  util::ByteWriter w;
  w.WriteBytes(bytes);
  w.PatchU32(16, 999);  // first table entry's id (database)
  auto decoded = DecodeArtifact(RestampChecksum(std::move(w.TakeBuffer())));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value().database.empty());
  EXPECT_EQ(decoded.value().catalog.size(), TestArtifact().catalog.size());
}

TEST(ModelArtifactTest, MissingFileIsIoError) {
  auto loaded = LoadArtifact("/nonexistent/path/model.gsig");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
}

TEST(ModelArtifactTest, ClassifierScoresSurviveRoundTrip) {
  const ModelArtifact& artifact = TestArtifact();
  auto decoded = DecodeArtifact(EncodeArtifact(artifact));
  ASSERT_TRUE(decoded.ok());
  auto original =
      classify::GraphSigClassifier::FromModel(artifact.classifier);
  auto restored =
      classify::GraphSigClassifier::FromModel(decoded.value().classifier);
  for (size_t i = 0; i < artifact.database.size(); i += 7) {
    const graph::Graph& g = artifact.database.graph(i);
    EXPECT_EQ(original.Score(g), restored.Score(g));
  }
}

}  // namespace
}  // namespace graphsig::model
