// Streaming-ingest subsystem tests (src/stream, DESIGN.md §16): the
// append-only IngestLog (round trips, torn-tail recovery, corruption
// rejection), the generation-keyed region-cut cache, MineState
// checkpoint round trips, and the subsystem's headline guarantee —
// incremental mining after N appends is byte-identical (artifact bytes
// AND deterministic work-counter dump) to a cold mine of the final
// database, across thread counts and batch splits.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/graphsig.h"
#include "data/datasets.h"
#include "graph/graph_database.h"
#include "model/artifact.h"
#include "obs/metrics.h"
#include "stream/incremental.h"
#include "stream/ingest_log.h"
#include "stream/mine_state.h"
#include "stream/region_cut_cache.h"
#include "util/binary.h"

namespace graphsig::stream {
namespace {

graph::GraphDatabase SmallScreen(size_t size, uint64_t seed) {
  data::DatasetOptions options;
  options.size = size;
  options.seed = seed;
  options.active_fraction = 0.3;
  return data::MakeCancerScreen("MCF-7", options);
}

core::GraphSigConfig SmallConfig(int num_threads) {
  core::GraphSigConfig config;
  config.cutoff_radius = 3;
  config.min_freq_percent = 5.0;
  config.fsm_max_edges = 8;
  config.num_threads = num_threads;
  return config;
}

// ---------------------------------------------------------------------
// IngestLog.

TEST(IngestLogTest, OpenAppendReopenRoundTrip) {
  const std::string path = testing::TempDir() + "/ingest_roundtrip.gsl";
  ::remove(path.c_str());
  const graph::GraphDatabase db = SmallScreen(6, 3);

  {
    auto log = IngestLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_EQ(log.value().last_generation(), 0u);
    auto g1 = log.value().AppendBatch(
        {db.graphs().begin(), db.graphs().begin() + 4});
    ASSERT_TRUE(g1.ok());
    EXPECT_EQ(g1.value(), 1u);
    auto g2 = log.value().AppendBatch(
        {db.graphs().begin() + 4, db.graphs().end()});
    ASSERT_TRUE(g2.ok());
    EXPECT_EQ(g2.value(), 2u);
    ASSERT_TRUE(log.value().AppendCheckpoint(2, "opaque state").ok());
  }

  auto reopened = IngestLog::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const IngestLogContents& contents = reopened.value().contents();
  ASSERT_EQ(contents.batches.size(), 2u);
  EXPECT_EQ(contents.batches[0].generation, 1u);
  EXPECT_EQ(contents.batches[0].graphs.size(), 4u);
  EXPECT_EQ(contents.batches[1].generation, 2u);
  EXPECT_EQ(contents.batches[1].graphs.size(), 2u);
  EXPECT_EQ(contents.checkpoint_generation, 2u);
  EXPECT_EQ(contents.checkpoint, "opaque state");

  const graph::GraphDatabase replayed = reopened.value().ReplayDatabase();
  ASSERT_EQ(replayed.size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(replayed.graph(i).num_vertices(), db.graph(i).num_vertices());
    EXPECT_EQ(replayed.graph(i).num_edges(), db.graph(i).num_edges());
  }
}

TEST(IngestLogTest, CheckpointLastOneWins) {
  const graph::GraphDatabase db = SmallScreen(4, 4);
  std::string image(kLogMagic, 8);
  {
    util::ByteWriter w;
    w.WriteU32(kLogFormatVersion);
    image += w.buffer();
  }
  image += EncodeBatchRecord(1, db.graphs());
  image += EncodeCheckpointRecord(1, "first");
  image += EncodeCheckpointRecord(1, "second");
  auto contents = DecodeIngestLog(image);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents.value().checkpoint, "second");
}

TEST(IngestLogTest, TornTailRecoversValidPrefixAndTruncates) {
  const std::string path = testing::TempDir() + "/ingest_torn.gsl";
  ::remove(path.c_str());
  const graph::GraphDatabase db = SmallScreen(5, 5);
  {
    auto log = IngestLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value().AppendBatch(db.graphs()).ok());
  }
  // Simulate a crash mid-append: a second record missing its tail.
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    full = buffer.str();
  }
  const std::string record = EncodeBatchRecord(2, db.graphs());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(record.data(),
              static_cast<std::streamsize>(record.size() / 2));
  }

  auto reopened = IngestLog::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().last_generation(), 1u);
  // Open truncated the torn tail: the next append must land cleanly
  // and a further reopen must see both generations.
  ASSERT_TRUE(reopened.value().AppendBatch(db.graphs()).ok());
  auto again = IngestLog::Open(path);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().last_generation(), 2u);
}

TEST(IngestLogTest, RejectsCorruptionInsideRecords) {
  const graph::GraphDatabase db = SmallScreen(4, 6);
  std::string header(kLogMagic, 8);
  {
    util::ByteWriter w;
    w.WriteU32(kLogFormatVersion);
    header += w.buffer();
  }
  // CRC mismatch: flip a payload byte of a fully present record.
  {
    std::string image = header + EncodeBatchRecord(1, db.graphs());
    image[image.size() - 1] ^= 0x01;
    EXPECT_FALSE(DecodeIngestLog(image).ok());
  }
  // Out-of-order generation (first batch must be generation 1).
  {
    const std::string image = header + EncodeBatchRecord(2, db.graphs());
    EXPECT_FALSE(DecodeIngestLog(image).ok());
  }
  // Checkpoint ahead of the last appended batch.
  {
    const std::string image = header + EncodeBatchRecord(1, db.graphs()) +
                              EncodeCheckpointRecord(5, "state");
    EXPECT_FALSE(DecodeIngestLog(image).ok());
  }
  // Bad magic.
  {
    std::string image = header + EncodeBatchRecord(1, db.graphs());
    image[0] ^= 0x01;
    EXPECT_FALSE(DecodeIngestLog(image).ok());
  }
}

// ---------------------------------------------------------------------
// RegionCutCache generation keying.

TEST(RegionCutCacheTest, StaleGenerationLookupMisses) {
  RegionCutCache cache;
  graph::Graph cut;
  cut.AddVertex(7);
  cache.Insert({.generation = 1, .graph_index = 0, .node = 2},
               std::move(cut));
  ASSERT_EQ(cache.size(), 1u);

  // Same (graph, node) under the generation that introduced the graph:
  // hit.
  EXPECT_NE(cache.Lookup({.generation = 1, .graph_index = 0, .node = 2}),
            nullptr);
  // Same (graph, node) under a different lineage: miss — a restored
  // state whose stamps disagree must never be served another log's
  // cuts.
  EXPECT_EQ(cache.Lookup({.generation = 2, .graph_index = 0, .node = 2}),
            nullptr);
  EXPECT_EQ(cache.Lookup({.generation = 1, .graph_index = 1, .node = 2}),
            nullptr);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup({.generation = 1, .graph_index = 0, .node = 2}),
            nullptr);
}

// ---------------------------------------------------------------------
// MineState checkpoints.

TEST(MineStateTest, CheckpointRoundTripsThroughRestore) {
  const graph::GraphDatabase db = SmallScreen(10, 7);
  const core::GraphSigConfig config = SmallConfig(2);

  IncrementalMiner miner(config);
  std::vector<uint64_t> generations(db.size(), 1);
  core::GraphSigResult first = miner.Mine(db, generations, 1);
  const std::string checkpoint = miner.Checkpoint();

  // Same config: restore succeeds and the state round-trips exactly.
  IncrementalMiner restored(config);
  auto ok = restored.Restore(checkpoint);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok.value());
  EXPECT_EQ(restored.state().generation, 1u);
  EXPECT_EQ(restored.state().node_vectors.size(),
            miner.state().node_vectors.size());
  EXPECT_EQ(restored.Checkpoint(), checkpoint);

  // Changed mining config: fingerprint mismatch, miner starts cold
  // (false, not an error).
  core::GraphSigConfig other = config;
  other.max_pvalue = 0.05;
  IncrementalMiner cold(other);
  auto mismatch = cold.Restore(checkpoint);
  ASSERT_TRUE(mismatch.ok()) << mismatch.status().ToString();
  EXPECT_FALSE(mismatch.value());

  // Thread count is NOT part of the fingerprint: a checkpoint written
  // at 2 threads restores at 8.
  core::GraphSigConfig threads = config;
  threads.num_threads = 8;
  IncrementalMiner rethreaded(threads);
  auto portable = rethreaded.Restore(checkpoint);
  ASSERT_TRUE(portable.ok());
  EXPECT_TRUE(portable.value());

  // Corrupt bytes are a hard error, not a cold start.
  std::string corrupt = checkpoint;
  corrupt.resize(corrupt.size() / 2);
  EXPECT_FALSE(IncrementalMiner(config).Restore(corrupt).ok());
}

// ---------------------------------------------------------------------
// The headline guarantee: incremental == cold, byte for byte.

// Deterministic work counters with the stream/* ingest-accounting
// names stripped — the one documented divergence between modes.
std::map<std::string, uint64_t> NonStreamWorkValues() {
  std::map<std::string, uint64_t> values;
  for (const auto& [name, value] :
       obs::MetricsRegistry::Global().WorkValues()) {
    if (name.rfind("stream/", 0) == 0) continue;
    values.emplace(name, value);
  }
  return values;
}

std::string ArtifactBytes(core::GraphSigResult result,
                          const graph::GraphDatabase& db) {
  model::ModelArtifact artifact;
  artifact.database = db;
  artifact.feature_space = std::move(result.feature_space);
  artifact.catalog = std::move(result.subgraphs);
  return model::EncodeArtifact(artifact);
}

void CheckIncrementalMatchesCold(int num_threads, size_t num_batches) {
  SCOPED_TRACE("threads=" + std::to_string(num_threads) +
               " batches=" + std::to_string(num_batches));
  const graph::GraphDatabase db = SmallScreen(20, 11);
  const core::GraphSigConfig config = SmallConfig(num_threads);

  // Incremental: mine after every append; only the final mine's
  // counters are compared (Reset() zeroes values but keeps every
  // registered name, so both modes dump the same key set).
  IncrementalMiner miner(config);
  graph::GraphDatabase cumulative;
  std::vector<uint64_t> generations;
  core::GraphSigResult incremental;
  const size_t per_batch = (db.size() + num_batches - 1) / num_batches;
  size_t next = 0;
  for (size_t b = 0; b < num_batches; ++b) {
    const uint64_t generation = b + 1;
    for (size_t i = 0; i < per_batch && next < db.size(); ++i, ++next) {
      cumulative.Add(db.graph(next));
      generations.push_back(generation);
    }
    if (b + 1 < num_batches) {
      miner.Mine(cumulative, generations, generation);
      // Exercise the checkpoint path mid-stream: the final mine runs
      // from a restored state, exactly like a graphsig_ingest restart.
      IncrementalMiner restored(config);
      auto ok = restored.Restore(miner.Checkpoint());
      ASSERT_TRUE(ok.ok()) << ok.status().ToString();
      ASSERT_TRUE(ok.value());
      miner = std::move(restored);
    } else {
      obs::MetricsRegistry::Global().Reset();
      incremental = miner.Mine(cumulative, generations, generation);
    }
  }
  const std::map<std::string, uint64_t> inc_counters =
      NonStreamWorkValues();
  const std::string inc_bytes = ArtifactBytes(std::move(incremental), db);

  // Cold: one full mine of the final database.
  obs::MetricsRegistry::Global().Reset();
  core::GraphSig cold(config);
  core::GraphSigResult full = cold.Mine(db);
  const std::map<std::string, uint64_t> cold_counters =
      NonStreamWorkValues();
  const std::string cold_bytes = ArtifactBytes(std::move(full), db);

  EXPECT_EQ(inc_bytes, cold_bytes);
  EXPECT_EQ(inc_counters, cold_counters);
}

TEST(IncrementalMineTest, MatchesColdMineSingleThread) {
  CheckIncrementalMatchesCold(1, 1);
  CheckIncrementalMatchesCold(1, 2);
  CheckIncrementalMatchesCold(1, 5);
}

TEST(IncrementalMineTest, MatchesColdMineFourThreads) {
  CheckIncrementalMatchesCold(4, 1);
  CheckIncrementalMatchesCold(4, 2);
  CheckIncrementalMatchesCold(4, 5);
}

TEST(IncrementalMineTest, MatchesColdMineEightThreads) {
  CheckIncrementalMatchesCold(8, 1);
  CheckIncrementalMatchesCold(8, 2);
  CheckIncrementalMatchesCold(8, 5);
}

// Tarone mode rides the same guarantee: the solved threshold is a pure
// function of the family, so incremental and cold agree byte for byte
// with the correction on.
TEST(IncrementalMineTest, MatchesColdMineWithTarone) {
  const graph::GraphDatabase db = SmallScreen(16, 13);
  core::GraphSigConfig config = SmallConfig(4);
  config.tarone_alpha = 0.1;

  IncrementalMiner miner(config);
  graph::GraphDatabase cumulative;
  std::vector<uint64_t> generations;
  for (size_t i = 0; i < db.size() / 2; ++i) {
    cumulative.Add(db.graph(i));
    generations.push_back(1);
  }
  miner.Mine(cumulative, generations, 1);
  for (size_t i = db.size() / 2; i < db.size(); ++i) {
    cumulative.Add(db.graph(i));
    generations.push_back(2);
  }
  obs::MetricsRegistry::Global().Reset();
  core::GraphSigResult incremental = miner.Mine(cumulative, generations, 2);
  const auto inc_counters = NonStreamWorkValues();

  obs::MetricsRegistry::Global().Reset();
  core::GraphSigResult full = core::GraphSig(config).Mine(db);
  const auto cold_counters = NonStreamWorkValues();

  EXPECT_EQ(incremental.stats.tarone_delta_star,
            full.stats.tarone_delta_star);
  EXPECT_EQ(incremental.stats.tarone_family_size,
            full.stats.tarone_family_size);
  EXPECT_EQ(ArtifactBytes(std::move(incremental), db),
            ArtifactBytes(std::move(full), db));
  EXPECT_EQ(inc_counters, cold_counters);
}

// Reuse accounting: a second mine over an unchanged-feature-space
// append reuses the previously featurized graphs.
TEST(IncrementalMineTest, ReusesFeaturizationWhenSpaceStable) {
  const graph::GraphDatabase db = SmallScreen(12, 17);
  const core::GraphSigConfig config = SmallConfig(2);

  IncrementalMiner miner(config);
  graph::GraphDatabase cumulative;
  std::vector<uint64_t> generations;
  for (const graph::Graph& g : db.graphs()) {
    cumulative.Add(g);
    generations.push_back(1);
  }
  miner.Mine(cumulative, generations, 1);

  // Appending the same batch again scales every label count by the
  // same factor, so the frequency-ordered feature space is unchanged
  // and the first batch's RWR vectors replay instead of recomputing.
  for (const graph::Graph& g : db.graphs()) {
    cumulative.Add(g);
    generations.push_back(2);
  }
  IncrementalMineStats stats;
  miner.Mine(cumulative, generations, 2, &stats);
  EXPECT_FALSE(stats.invalidated_feature_space);
  EXPECT_EQ(stats.graphs_reused, static_cast<int64_t>(db.size()));
  EXPECT_EQ(stats.graphs_featurized, static_cast<int64_t>(db.size()));
}

}  // namespace
}  // namespace graphsig::stream
