#include <gtest/gtest.h>

#include <string>

#include "classify/sig_knn.h"
#include "core/graphsig.h"
#include "data/datasets.h"
#include "graph/isomorphism.h"
#include "model/artifact.h"
#include "serve/pattern_catalog.h"

namespace graphsig::serve {
namespace {

core::GraphSigConfig FastMiningConfig() {
  core::GraphSigConfig config;
  config.cutoff_radius = 3;
  config.min_freq_percent = 3.0;
  config.fsm_max_edges = 12;
  return config;
}

graph::GraphDatabase TestScreen(uint64_t seed, size_t size) {
  data::DatasetOptions options;
  options.size = size;
  options.seed = seed;
  options.active_fraction = 0.25;
  options.molecule.min_atoms = 8;
  options.molecule.max_atoms = 16;
  return data::MakeCancerScreen("MCF-7", options);
}

// One indexed screen shared by the suite (mining dominates runtime).
struct Fixture {
  graph::GraphDatabase db;
  model::ModelArtifact artifact;
  classify::GraphSigClassifier direct_classifier;
};

const Fixture& SharedFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    f->db = TestScreen(2024, 80);

    core::GraphSig miner(FastMiningConfig());
    core::GraphSigResult mined = miner.Mine(f->db.FilterByTag(1));
    f->artifact.feature_space = std::move(mined.feature_space);
    f->artifact.catalog = std::move(mined.subgraphs);

    classify::SigKnnConfig knn;
    knn.mining = FastMiningConfig();
    f->direct_classifier = classify::GraphSigClassifier(knn);
    f->direct_classifier.Train(f->db);
    f->artifact.classifier = f->direct_classifier.ExportModel();
    f->artifact.database = f->db;
    return f;
  }();
  return *fixture;
}

TEST(PatternCatalogTest, MatchesEqualBruteForce) {
  const Fixture& f = SharedFixture();
  auto catalog = PatternCatalog::FromArtifact(f.artifact);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  ASSERT_GT(catalog.value().num_patterns(), 0u);

  CatalogQueryConfig config;
  config.compute_score = false;
  for (size_t i = 0; i < f.db.size(); i += 3) {
    const graph::Graph& query = f.db.graph(i);
    const QueryResult result = catalog.value().Query(query, config);
    std::vector<int32_t> expected;
    for (size_t p = 0; p < f.artifact.catalog.size(); ++p) {
      if (graph::IsSubgraphIsomorphic(f.artifact.catalog[p].subgraph,
                                      query)) {
        expected.push_back(static_cast<int32_t>(p));
      }
    }
    EXPECT_EQ(result.matched_patterns, expected) << "query " << i;
    // The pruning layers only reject, never accept: every pattern either
    // reached the isomorphism test or was pruned.
    EXPECT_EQ(result.iso_calls + result.pruned,
              static_cast<int32_t>(f.artifact.catalog.size()));
  }
}

TEST(PatternCatalogTest, PruningRejectsMostCandidates) {
  const Fixture& f = SharedFixture();
  auto catalog = PatternCatalog::FromArtifact(f.artifact);
  ASSERT_TRUE(catalog.ok());
  CatalogQueryConfig config;
  config.compute_score = false;
  int64_t iso = 0, pruned = 0;
  for (const graph::Graph& query : f.db.graphs()) {
    const QueryResult r = catalog.value().Query(query, config);
    iso += r.iso_calls;
    pruned += r.pruned;
  }
  // The point of the index: most candidates never reach the matcher.
  EXPECT_GT(pruned, iso);
}

TEST(PatternCatalogTest, ScoresMatchDirectClassifier) {
  const Fixture& f = SharedFixture();
  auto catalog = PatternCatalog::FromArtifact(f.artifact);
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog.value().has_classifier());
  for (size_t i = 0; i < f.db.size(); i += 5) {
    const graph::Graph& g = f.db.graph(i);
    const QueryResult r = catalog.value().Query(g);
    ASSERT_TRUE(r.has_score);
    EXPECT_EQ(r.score, f.direct_classifier.Score(g)) << "query " << i;
  }
}

// The acceptance-criteria golden test: an artifact saved to disk and
// served back answers exactly what the in-process mine + train + score
// pipeline answers — same matched patterns, same classifier scores.
TEST(PatternCatalogTest, GoldenFileRoundTripReproducesInProcessRun) {
  const Fixture& f = SharedFixture();
  const std::string path = testing::TempDir() + "/serve_golden.gsig";
  ASSERT_TRUE(model::SaveArtifact(f.artifact, path).ok());

  auto catalog = PatternCatalog::LoadFromFile(path);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  EXPECT_EQ(catalog.value().num_patterns(), f.artifact.catalog.size());

  // Queries the served run never saw at mining time.
  graph::GraphDatabase holdout = TestScreen(777, 40);
  const std::vector<QueryResult> served =
      catalog.value().QueryBatch(holdout.graphs());
  ASSERT_EQ(served.size(), holdout.size());
  for (size_t i = 0; i < holdout.size(); ++i) {
    const graph::Graph& g = holdout.graph(i);
    ASSERT_TRUE(served[i].has_score);
    EXPECT_EQ(served[i].score, f.direct_classifier.Score(g))
        << "holdout " << i;
    std::vector<int32_t> expected;
    for (size_t p = 0; p < f.artifact.catalog.size(); ++p) {
      if (graph::IsSubgraphIsomorphic(f.artifact.catalog[p].subgraph, g)) {
        expected.push_back(static_cast<int32_t>(p));
      }
    }
    EXPECT_EQ(served[i].matched_patterns, expected) << "holdout " << i;
  }
}

TEST(PatternCatalogTest, BatchMatchesSerialAcrossThreadCounts) {
  const Fixture& f = SharedFixture();
  auto catalog = PatternCatalog::FromArtifact(f.artifact);
  ASSERT_TRUE(catalog.ok());
  graph::GraphDatabase holdout = TestScreen(888, 24);

  std::vector<QueryResult> serial;
  for (const graph::Graph& g : holdout.graphs()) {
    serial.push_back(catalog.value().Query(g));
  }
  for (int threads : {1, 3}) {
    CatalogQueryConfig config;
    config.num_threads = threads;
    const std::vector<QueryResult> batch =
        catalog.value().QueryBatch(holdout.graphs(), config);
    ASSERT_EQ(batch.size(), serial.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].matched_patterns, serial[i].matched_patterns);
      EXPECT_EQ(batch[i].score, serial[i].score);
    }
  }
}

TEST(PatternCatalogTest, ArtifactWithoutClassifierServesMatchesOnly) {
  const Fixture& f = SharedFixture();
  model::ModelArtifact artifact = f.artifact;
  artifact.classifier = classify::SigKnnModel{};
  auto catalog = PatternCatalog::FromArtifact(std::move(artifact));
  ASSERT_TRUE(catalog.ok());
  EXPECT_FALSE(catalog.value().has_classifier());
  const QueryResult r = catalog.value().Query(f.db.graph(0));
  EXPECT_FALSE(r.has_score);
  EXPECT_EQ(r.score, 0.0);
}

TEST(PatternCatalogTest, RejectsEmptyPatternGraph) {
  model::ModelArtifact artifact;
  artifact.catalog.emplace_back();  // empty subgraph
  auto catalog = PatternCatalog::FromArtifact(std::move(artifact));
  ASSERT_FALSE(catalog.ok());
  EXPECT_EQ(catalog.status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(LatencySummaryTest, NearestRankPercentiles) {
  std::vector<double> latencies;
  for (int i = 100; i >= 1; --i) latencies.push_back(i);  // 1..100 shuffled
  const LatencySummary s = SummarizeLatencies(latencies, 2.0);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.p50_ms, 50.0);
  EXPECT_EQ(s.p95_ms, 95.0);
  EXPECT_EQ(s.max_ms, 100.0);
  EXPECT_EQ(s.qps, 50.0);
  EXPECT_EQ(s.wall_seconds, 2.0);
}

TEST(LatencySummaryTest, EmptyAndSingle) {
  const LatencySummary empty = SummarizeLatencies({}, 1.0);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.qps, 0.0);
  const LatencySummary one = SummarizeLatencies({3.5}, 0.0);
  EXPECT_EQ(one.count, 1u);
  EXPECT_EQ(one.p50_ms, 3.5);
  EXPECT_EQ(one.p95_ms, 3.5);
  EXPECT_EQ(one.qps, 0.0);
}

}  // namespace
}  // namespace graphsig::serve
