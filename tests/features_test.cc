#include <gtest/gtest.h>

#include <numeric>

#include "features/feature_space.h"
#include "features/feature_vector.h"
#include "features/packed_vector_set.h"
#include "features/rwr.h"
#include "features/selection.h"
#include "util/rng.h"

namespace graphsig::features {
namespace {

using graph::Graph;
using graph::GraphDatabase;
using graph::Label;
using graph::VertexId;

// Labels: 0 = C, 1 = N, 2 = O, 3 = S. Edge labels: 0 = single, 1 = double.
GraphDatabase ToyChemDb() {
  GraphDatabase db;
  // C-C-N with a double bond to O on the middle C.
  Graph g1(0);
  g1.AddVertex(0);
  g1.AddVertex(0);
  g1.AddVertex(1);
  g1.AddVertex(2);
  g1.AddEdge(0, 1, 0);
  g1.AddEdge(1, 2, 0);
  g1.AddEdge(1, 3, 1);
  db.Add(g1);
  // C-S chain: S is rare.
  Graph g2(1);
  g2.AddVertex(0);
  g2.AddVertex(3);
  g2.AddEdge(0, 1, 0);
  db.Add(g2);
  return db;
}

TEST(FeatureSpaceTest, ChemicalRecipeIncludesAllAtomsAndTopKEdges) {
  GraphDatabase db = ToyChemDb();
  FeatureSpace fs = FeatureSpace::ForChemicalDatabase(db, /*top_k_atoms=*/2);
  // 4 atom types.
  EXPECT_EQ(fs.num_vertex_features(), 4u);
  // Top-2 atoms are C (3 occurrences) and N or O (1 each; N=1 wins by
  // label order). Edge types among {C, N}: C-C single, C-N single.
  EXPECT_GE(fs.num_edge_features(), 2u);
  EXPECT_GE(fs.VertexFeature(0), 0);
  EXPECT_GE(fs.VertexFeature(3), 0);
  EXPECT_EQ(fs.VertexFeature(99), -1);
  EXPECT_GE(fs.EdgeFeature(0, 0, 0), 0);
  EXPECT_GE(fs.EdgeFeature(1, 0, 0), 0);  // order-insensitive
  EXPECT_EQ(fs.EdgeFeature(0, 3, 0), -1);  // S not in top-2
}

TEST(FeatureSpaceTest, SlotLayoutIsStable) {
  GraphDatabase db = ToyChemDb();
  FeatureSpace fs = FeatureSpace::ForChemicalDatabase(db, 2);
  // Vertex features occupy [0, num_vertex); edge features after.
  for (Label l : {0, 1, 2, 3}) {
    int slot = fs.VertexFeature(l);
    ASSERT_GE(slot, 0);
    EXPECT_LT(slot, static_cast<int>(fs.num_vertex_features()));
  }
  int eslot = fs.EdgeFeature(0, 0, 0);
  EXPECT_GE(eslot, static_cast<int>(fs.num_vertex_features()));
  EXPECT_LT(eslot, static_cast<int>(fs.size()));
}

TEST(FeatureSpaceTest, FeatureNamesAreReadable) {
  GraphDatabase db = ToyChemDb();
  FeatureSpace fs = FeatureSpace::ForChemicalDatabase(db, 2);
  bool saw_atom = false, saw_edge = false;
  for (size_t s = 0; s < fs.size(); ++s) {
    std::string name = fs.FeatureName(s);
    saw_atom |= name.rfind("atom:", 0) == 0;
    saw_edge |= name.rfind("edge:", 0) == 0;
  }
  EXPECT_TRUE(saw_atom);
  EXPECT_TRUE(saw_edge);
}

TEST(FeatureVectorTest, SubVectorDefinition) {
  FeatureVec x = {1, 0, 2};
  FeatureVec y = {1, 1, 2};
  EXPECT_TRUE(IsSubVector(x, y));
  EXPECT_FALSE(IsSubVector(y, x));
  EXPECT_TRUE(IsSubVector(x, x));
}

TEST(FeatureVectorTest, PaperTableIExamples) {
  // Table I: v4 ⊆ v3 but v2 ⊄ v3.
  FeatureVec v2 = {1, 1, 0, 2};
  FeatureVec v3 = {2, 0, 1, 2};
  FeatureVec v4 = {1, 0, 1, 0};
  EXPECT_TRUE(IsSubVector(v4, v3));
  EXPECT_FALSE(IsSubVector(v2, v3));
}

TEST(FeatureVectorTest, FloorAndCeiling) {
  std::vector<FeatureVec> vs = {{1, 4, 0}, {2, 1, 3}};
  std::vector<int32_t> both = {0, 1};
  FeatureVec floor, ceiling;
  FloorInto(vs.data(), both, &floor);
  CeilingInto(vs.data(), both, &ceiling);
  EXPECT_EQ(floor, (FeatureVec{1, 1, 0}));
  EXPECT_EQ(ceiling, (FeatureVec{2, 4, 3}));
}

// ---------------------------------------------------------------------------
// PackedVectorSet: the word-parallel kernels must agree with the scalar
// reference (IsSubVector / FloorInto / CeilingInto) on every input.
// ---------------------------------------------------------------------------

std::vector<FeatureVec> RandomVectors(uint64_t seed, size_t n, size_t width,
                                      int max_value) {
  util::Rng rng(seed);
  std::vector<FeatureVec> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    FeatureVec v(width);
    for (auto& x : v) {
      x = static_cast<int16_t>(rng.NextBounded(max_value + 1));
    }
    out.push_back(std::move(v));
  }
  return out;
}

TEST(PackedVectorSetTest, RoundTripPreservesValues) {
  for (size_t width : {1u, 5u, 15u, 16u, 17u, 31u, 32u, 48u}) {
    auto vs = RandomVectors(100 + width, 20, width, 15);
    auto packed = PackedVectorSet::FromVectors(vs);
    ASSERT_EQ(packed.size(), vs.size());
    ASSERT_EQ(packed.width(), width);
    for (size_t i = 0; i < vs.size(); ++i) {
      EXPECT_EQ(packed.Unpack(static_cast<int32_t>(i)), vs[i])
          << "width=" << width << " i=" << i;
      for (size_t s = 0; s < width; ++s) {
        EXPECT_EQ(packed.at(static_cast<int32_t>(i), s), vs[i][s]);
      }
    }
  }
}

TEST(PackedVectorSetTest, DominatesMatchesScalarReference) {
  // 1k seeded random pairs across widths, plus the degenerate extremes.
  for (size_t width : {1u, 7u, 16u, 23u, 48u}) {
    auto vs = RandomVectors(200 + width, 200, width, 3);
    vs.push_back(FeatureVec(width, 0));   // all-zero dominates everything
    vs.push_back(FeatureVec(width, 15));  // all-max dominated by nothing else
    auto packed = PackedVectorSet::FromVectors(vs);
    PackedOpStats stats;
    for (size_t i = 0; i < vs.size(); ++i) {
      for (size_t j = 0; j < vs.size(); ++j) {
        const bool expected = IsSubVector(vs[i], vs[j]);
        const bool got = packed.Dominates(
            packed.row(static_cast<int32_t>(i)), static_cast<int32_t>(j),
            &stats);
        ASSERT_EQ(got, expected)
            << "width=" << width << " i=" << i << " j=" << j;
      }
    }
    EXPECT_GT(stats.words_compared, 0u);
  }
}

TEST(PackedVectorSetTest, FloorCeilingMatchScalarReference) {
  util::Rng rng(77);
  for (int trial = 0; trial < 1000; ++trial) {
    const size_t width = 1 + rng.NextBounded(40);
    const size_t n = 2 + rng.NextBounded(10);
    auto vs = RandomVectors(3000 + trial, n, width, 15);
    auto packed = PackedVectorSet::FromVectors(vs);

    std::vector<int32_t> indices;
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBernoulli(0.6)) indices.push_back(static_cast<int32_t>(i));
    }
    if (indices.empty()) indices.push_back(0);

    FeatureVec want_floor, want_ceiling;
    FloorInto(vs.data(), indices, &want_floor);
    CeilingInto(vs.data(), indices, &want_ceiling);

    PackedOpStats stats;
    std::vector<uint64_t> floor_words(packed.words_per_vector());
    std::vector<uint64_t> ceiling_words(packed.words_per_vector());
    packed.FloorInto(indices, floor_words.data(), &stats);
    packed.CeilingInto(indices, ceiling_words.data(), &stats);
    EXPECT_EQ(UnpackWords(floor_words.data(), width), want_floor)
        << "trial=" << trial;
    EXPECT_EQ(UnpackWords(ceiling_words.data(), width), want_ceiling)
        << "trial=" << trial;
  }
}

TEST(PackedVectorSetTest, AllZeroAndAllMaxExtremes) {
  for (size_t width : {1u, 15u, 16u, 17u}) {
    std::vector<FeatureVec> vs = {FeatureVec(width, 0),
                                  FeatureVec(width, 15)};
    auto packed = PackedVectorSet::FromVectors(vs);
    PackedOpStats stats;
    EXPECT_TRUE(packed.Dominates(packed.row(0), 1, &stats));
    EXPECT_TRUE(packed.Dominates(packed.row(0), 0, &stats));
    EXPECT_TRUE(packed.Dominates(packed.row(1), 1, &stats));
    if (width > 0) {
      EXPECT_FALSE(packed.Dominates(packed.row(1), 0, &stats));
    }
    std::vector<int32_t> both = {0, 1};
    std::vector<uint64_t> floor_words(packed.words_per_vector());
    std::vector<uint64_t> ceiling_words(packed.words_per_vector());
    packed.FloorInto(both, floor_words.data(), &stats);
    packed.CeilingInto(both, ceiling_words.data(), &stats);
    EXPECT_EQ(UnpackWords(floor_words.data(), width), FeatureVec(width, 0));
    EXPECT_EQ(UnpackWords(ceiling_words.data(), width),
              FeatureVec(width, 15));
  }
}

TEST(PackedVectorSetTest, WordwisePruneCounterFires) {
  // Vectors that differ in the first word prune before later words are
  // touched; the counter must record it.
  const size_t width = 48;  // 3 words
  std::vector<FeatureVec> vs = {FeatureVec(width, 0), FeatureVec(width, 0)};
  vs[0][0] = 5;  // first slot of row 0 exceeds row 1
  auto packed = PackedVectorSet::FromVectors(vs);
  PackedOpStats stats;
  EXPECT_FALSE(packed.Dominates(packed.row(0), 1, &stats));
  EXPECT_EQ(stats.words_compared, 1u);
  EXPECT_EQ(stats.vectors_pruned_wordwise, 1u);
}

TEST(RwrTest, StationaryDistributionIsProbability) {
  GraphDatabase db = ToyChemDb();
  RwrConfig config;
  auto p = RwrStationaryDistribution(db.graph(0), 1, config);
  double sum = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  for (double v : p) EXPECT_GE(v, 0.0);
  // The source holds the largest share.
  EXPECT_GT(p[1], p[0]);
  EXPECT_GT(p[1], p[3]);
}

TEST(RwrTest, SymmetricNeighborsGetEqualMass) {
  // Star: center 0, leaves 1..3, all same labels/edges.
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddVertex(0);
  g.AddEdge(0, 1, 0);
  g.AddEdge(0, 2, 0);
  g.AddEdge(0, 3, 0);
  RwrConfig config;
  auto p = RwrStationaryDistribution(g, 0, config);
  EXPECT_NEAR(p[1], p[2], 1e-9);
  EXPECT_NEAR(p[2], p[3], 1e-9);
}

TEST(RwrTest, RadiusConfinesTheWalk) {
  // Path 0-1-2-3; radius 1 from node 0 must leave nodes 2,3 untouched.
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddVertex(0);
  g.AddEdge(0, 1, 0);
  g.AddEdge(1, 2, 0);
  g.AddEdge(2, 3, 0);
  RwrConfig config;
  config.radius = 1;
  auto p = RwrStationaryDistribution(g, 0, config);
  EXPECT_GT(p[0], 0.0);
  EXPECT_GT(p[1], 0.0);
  EXPECT_EQ(p[2], 0.0);
  EXPECT_EQ(p[3], 0.0);
}

TEST(RwrTest, IsolatedNodeKeepsAllMass) {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(1);  // no edges
  RwrConfig config;
  auto p = RwrStationaryDistribution(g, 0, config);
  EXPECT_NEAR(p[0], 1.0, 1e-9);
  EXPECT_EQ(p[1], 0.0);
}

TEST(RwrTest, CloserFeaturesGetMoreMass) {
  // Path: source C(0) - N(1) - ... - N(5): the near N arrival mass must
  // exceed the far one; RWR preserves proximity (Section II-C).
  Graph g;
  g.AddVertex(0);
  for (int i = 1; i <= 5; ++i) g.AddVertex(1);
  for (int i = 0; i < 5; ++i) g.AddEdge(i, i + 1, 0);
  GraphDatabase db;
  db.Add(g);
  FeatureSpace fs = FeatureSpace::VertexLabelsOnly(db);
  RwrConfig config;
  // Compare against a modified graph where the N chain is pushed one hop
  // further (insert a C): total N mass must drop.
  auto near_dist = RwrFeatureDistribution(g, 0, fs, config);

  Graph far;
  far.AddVertex(0);
  far.AddVertex(0);
  for (int i = 2; i <= 6; ++i) far.AddVertex(1);
  for (int i = 0; i < 6; ++i) far.AddEdge(i, i + 1, 0);
  auto far_dist = RwrFeatureDistribution(far, 0, fs, config);
  int n_slot = fs.VertexFeature(1);
  ASSERT_GE(n_slot, 0);
  EXPECT_GT(near_dist[n_slot], far_dist[n_slot]);
}

TEST(RwrTest, EdgeFeatureAbsorbsMassFromAtomFeature) {
  // With the C-C edge type as a feature, traversals of C-C edges must
  // feed the edge slot, not the C atom slot.
  Graph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddEdge(0, 1, 0);
  GraphDatabase db;
  db.Add(g);
  FeatureSpace with_edge = FeatureSpace::ForChemicalDatabase(db, 2);
  RwrConfig config;
  auto dist = RwrFeatureDistribution(g, 0, with_edge, config);
  int c_slot = with_edge.VertexFeature(0);
  int e_slot = with_edge.EdgeFeature(0, 0, 0);
  ASSERT_GE(c_slot, 0);
  ASSERT_GE(e_slot, 0);
  EXPECT_EQ(dist[c_slot], 0.0);
  EXPECT_NEAR(dist[e_slot], 1.0, 1e-9);
}

TEST(RwrTest, DiscretizeMatchesPaperExamples) {
  // Paper: 0.07 -> 1 and 0.34 -> 3 with 10 bins.
  FeatureVec v = Discretize({0.07, 0.34, 0.0, 1.0, 0.96}, 10);
  EXPECT_EQ(v, (FeatureVec{1, 3, 0, 10, 10}));
}

TEST(RwrTest, DatabaseToVectorsProvenance) {
  GraphDatabase db = ToyChemDb();
  FeatureSpace fs = FeatureSpace::ForChemicalDatabase(db, 2);
  RwrConfig config;
  auto vectors = DatabaseToVectors(db, fs, config);
  ASSERT_EQ(vectors.size(), 6u);  // 4 + 2 nodes
  EXPECT_EQ(vectors[0].graph_index, 0);
  EXPECT_EQ(vectors[5].graph_index, 1);
  EXPECT_EQ(vectors[5].node, 1);
  EXPECT_EQ(vectors[5].node_label, 3);
  for (const NodeVector& nv : vectors) {
    EXPECT_EQ(nv.values.size(), fs.size());
  }
}

TEST(RwrTest, CountFeaturizerIgnoresProximity) {
  // The count featurizer gives near and far N chains identical mass —
  // exactly the structure loss RWR avoids (compare with
  // CloserFeaturesGetMoreMass above).
  Graph g;
  g.AddVertex(0);
  for (int i = 1; i <= 3; ++i) g.AddVertex(1);
  for (int i = 0; i < 3; ++i) g.AddEdge(i, i + 1, 0);
  GraphDatabase db;
  db.Add(g);
  FeatureSpace fs = FeatureSpace::VertexLabelsOnly(db);
  auto from0 = CountFeatureDistribution(g, 0, fs, 0);
  auto from3 = CountFeatureDistribution(g, 3, fs, 0);
  EXPECT_EQ(from0, from3);  // whole-graph counts are source-independent
}

TEST(SelectionTest, CumulativeCoverageEndsAtHundred) {
  GraphDatabase db = ToyChemDb();
  auto coverage = CumulativeAtomCoverage(db);
  ASSERT_EQ(coverage.size(), 4u);
  EXPECT_EQ(coverage[0].label, 0);  // C most frequent
  EXPECT_NEAR(coverage.back().cumulative_percent, 100.0, 1e-9);
  for (size_t i = 1; i < coverage.size(); ++i) {
    EXPECT_GE(coverage[i].cumulative_percent,
              coverage[i - 1].cumulative_percent);
    EXPECT_GE(coverage[i - 1].count, coverage[i].count);
  }
}

TEST(SelectionTest, TopKAtoms) {
  GraphDatabase db = ToyChemDb();
  auto top1 = TopKAtoms(db, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0], 0);
  EXPECT_EQ(TopKAtoms(db, 100).size(), 4u);
}

TEST(SelectionTest, GreedyImportanceOnly) {
  std::vector<double> imp = {0.1, 0.9, 0.5};
  auto chosen = GreedySelect(
      3, 2, [&](size_t i) { return imp[i]; },
      [](size_t, size_t) { return 0.0; });
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_EQ(chosen[0], 1u);
  EXPECT_EQ(chosen[1], 2u);
}

TEST(SelectionTest, GreedyPenalizesRedundancy) {
  // Items 0 and 1 are near-duplicates with top importance; item 2 is
  // slightly worse but dissimilar — Eq. 2 must pick {0 or 1} then 2.
  std::vector<double> imp = {1.0, 0.99, 0.8};
  auto sim = [](size_t a, size_t b) {
    if ((a == 0 && b == 1) || (a == 1 && b == 0)) return 1.0;
    return 0.0;
  };
  auto chosen = GreedySelect(3, 2, [&](size_t i) { return imp[i]; }, sim,
                             1.0, 1.0);
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_EQ(chosen[0], 0u);
  EXPECT_EQ(chosen[1], 2u);
}

}  // namespace
}  // namespace graphsig::features
