#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/graphsig.h"
#include "data/datasets.h"
#include "data/elements.h"
#include "data/generator.h"
#include "data/motifs.h"
#include "fsm/dfs_code.h"
#include "graph/isomorphism.h"

namespace graphsig::core {
namespace {

// A compact planted database: `planted` of the `total` molecules carry
// the motif; all molecules are small so the pipeline runs in ms.
graph::GraphDatabase PlantedDb(const graph::Graph& motif, int total,
                               int planted, uint64_t seed) {
  util::Rng rng(seed);
  data::MoleculeGenConfig gen;
  gen.min_atoms = 8;
  gen.max_atoms = 14;
  graph::GraphDatabase db;
  for (int i = 0; i < total; ++i) {
    graph::Graph g = data::GenerateMolecule(gen, &rng);
    g.set_id(i);
    if (i < planted) {
      data::PlantMotif(&g, motif, &rng);
      g.set_tag(1);
    }
    db.Add(std::move(g));
  }
  return db;
}

GraphSigConfig FastConfig() {
  GraphSigConfig config;
  config.cutoff_radius = 4;
  config.min_freq_percent = 1.0;
  config.max_pvalue = 0.05;
  config.fsm_max_edges = 15;
  return config;
}

TEST(GraphSigTest, RecoversPlantedMotif) {
  const graph::Graph motif = data::AztCoreMotif();
  graph::GraphDatabase db = PlantedDb(motif, 80, 16, 555);
  GraphSig miner(FastConfig());
  GraphSigResult result = miner.Mine(db);
  ASSERT_FALSE(result.subgraphs.empty());
  // Some mined significant subgraph must capture the planted core: a
  // pattern of >= 4 edges contained in the motif or containing it.
  bool recovered = false;
  for (const SignificantSubgraph& sg : result.subgraphs) {
    if (sg.subgraph.num_edges() < 4) continue;
    if (graph::IsSubgraphIsomorphic(sg.subgraph, motif) ||
        graph::IsSubgraphIsomorphic(motif, sg.subgraph)) {
      recovered = true;
      break;
    }
  }
  EXPECT_TRUE(recovered);
}

TEST(GraphSigTest, ResultInvariantsHold) {
  const graph::Graph motif = data::FdtCoreMotif();
  graph::GraphDatabase db = PlantedDb(motif, 60, 12, 556);
  GraphSigConfig config = FastConfig();
  GraphSig miner(config);
  GraphSigResult result = miner.Mine(db);

  std::set<std::string> canonicals;
  for (const SignificantSubgraph& sg : result.subgraphs) {
    // Deduplicated by canonical form.
    EXPECT_TRUE(canonicals.insert(fsm::CanonicalCode(sg.subgraph)).second);
    // Vector evidence respects the thresholds.
    EXPECT_LE(sg.vector_pvalue, config.max_pvalue);
    EXPECT_GE(sg.vector_support, 1);
    // Set support honors the 80% relative threshold.
    EXPECT_GE(sg.set_support,
              std::max<int64_t>(2, static_cast<int64_t>(
                  std::ceil(0.8 * sg.set_size))));
    EXPECT_TRUE(sg.subgraph.IsConnected());
    EXPECT_GE(sg.subgraph.num_edges(), 1);
  }
  // Sorted by ascending p-value.
  for (size_t i = 1; i < result.subgraphs.size(); ++i) {
    EXPECT_LE(result.subgraphs[i - 1].vector_pvalue,
              result.subgraphs[i].vector_pvalue);
  }
  // Profile and stats sanity.
  EXPECT_GT(result.profile.rwr_seconds, 0.0);
  EXPECT_GE(result.profile.feature_seconds, 0.0);
  EXPECT_GE(result.profile.fsm_seconds, 0.0);
  EXPECT_GE(result.profile.total_seconds,
            result.profile.rwr_seconds + result.profile.feature_seconds);
  EXPECT_GT(result.stats.num_vectors, 0);
  EXPECT_GT(result.stats.num_groups, 0);
  EXPECT_GE(result.stats.num_sets_mined, result.stats.num_sets_filtered);
}

TEST(GraphSigTest, DbFrequencyIsExact) {
  const graph::Graph motif = data::MetalloidMotif(data::kAntimony);
  graph::GraphDatabase db = PlantedDb(motif, 50, 10, 557);
  GraphSig miner(FastConfig());
  GraphSigResult result = miner.Mine(db);
  int checked = 0;
  for (const SignificantSubgraph& sg : result.subgraphs) {
    if (checked >= 5) break;
    int64_t expected = 0;
    for (const graph::Graph& g : db.graphs()) {
      expected += graph::IsSubgraphIsomorphic(sg.subgraph, g);
    }
    EXPECT_EQ(sg.db_frequency, expected);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(GraphSigTest, FrequencyComputationIsOptional) {
  const graph::Graph motif = data::FdtCoreMotif();
  graph::GraphDatabase db = PlantedDb(motif, 40, 8, 558);
  GraphSigConfig config = FastConfig();
  config.compute_db_frequency = false;
  GraphSig miner(config);
  GraphSigResult result = miner.Mine(db);
  for (const SignificantSubgraph& sg : result.subgraphs) {
    EXPECT_EQ(sg.db_frequency, -1);
  }
}

TEST(GraphSigTest, SignificantVectorsSupportingSetsAreDominators) {
  const graph::Graph motif = data::AztCoreMotif();
  graph::GraphDatabase db = PlantedDb(motif, 40, 10, 559);
  GraphSigConfig config = FastConfig();
  GraphSig miner(config);
  GraphSigProfile profile;
  auto significant = miner.MineSignificantVectors(db, &profile);
  EXPECT_GT(profile.rwr_seconds, 0.0);

  // Recompute the node vectors to validate the supporting indices.
  auto fs = features::FeatureSpace::ForChemicalDatabase(db,
                                                        config.top_k_atoms);
  auto node_vectors = features::DatabaseToVectors(db, fs, config.rwr);
  for (const auto& [label, sv] : significant) {
    EXPECT_LE(sv.p_value, config.max_pvalue);
    for (int32_t idx : sv.supporting) {
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, static_cast<int32_t>(node_vectors.size()));
      EXPECT_EQ(node_vectors[idx].node_label, label);
      EXPECT_TRUE(features::IsSubVector(sv.vector, node_vectors[idx].values));
    }
  }
}

TEST(GraphSigTest, BenzeneIsNotSignificant) {
  // Benzene is planted everywhere (70%): frequent but expected, so the
  // priors absorb it and it must not surface as a low-p-value pattern.
  data::DatasetOptions options;
  options.size = 120;
  options.seed = 21;
  graph::GraphDatabase db = data::MakeAidsLike(options);
  GraphSigConfig config = FastConfig();
  GraphSig miner(config);
  GraphSigResult result = miner.Mine(db);
  const graph::Graph benzene = data::BenzeneMotif();
  for (const SignificantSubgraph& sg : result.subgraphs) {
    EXPECT_FALSE(graph::AreIsomorphic(sg.subgraph, benzene));
  }
}

}  // namespace
}  // namespace graphsig::core
