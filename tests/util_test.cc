#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>

#include "util/arena.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table.h"

namespace graphsig::util {
namespace {

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena(64);
  for (size_t align : {1u, 2u, 4u, 8u, 16u}) {
    void* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
  EXPECT_EQ(arena.allocations(), 5u);
}

TEST(ArenaTest, AllocateArrayIsUsableStorage) {
  Arena arena;
  int64_t* xs = arena.AllocateArray<int64_t>(100);
  for (int i = 0; i < 100; ++i) xs[i] = i * i;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(xs[i], i * i);
}

TEST(ArenaTest, GrowsAcrossChunks) {
  Arena arena(32);  // tiny chunks force growth
  for (int i = 0; i < 50; ++i) {
    char* p = static_cast<char*>(arena.Allocate(24, 8));
    p[0] = static_cast<char>(i);  // must be writable
  }
  EXPECT_GE(arena.capacity_bytes(), 50u * 24u);
  EXPECT_EQ(arena.allocations(), 50u);
  EXPECT_EQ(arena.bytes_requested(), 50u * 24u);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena(16);
  void* p = arena.Allocate(1000, 8);
  ASSERT_NE(p, nullptr);
  static_cast<char*>(p)[999] = 'x';
}

TEST(ArenaTest, RewindReusesMemory) {
  Arena arena(128);
  const Arena::Mark start = arena.Position();
  void* first = arena.Allocate(64, 8);
  arena.Rewind(start);
  void* second = arena.Allocate(64, 8);
  EXPECT_EQ(first, second);  // same chunk offset after rewind
}

TEST(ArenaTest, CountersAreMonotonicAcrossRewinds) {
  // bytes_requested / allocations tally every request ever made — they
  // never decrease on Rewind/Reset, which makes them valid deterministic
  // work counters (DESIGN.md §12).
  Arena arena(64);
  const Arena::Mark start = arena.Position();
  arena.Allocate(48, 8);
  const uint64_t bytes_after_one = arena.bytes_requested();
  arena.Rewind(start);
  EXPECT_EQ(arena.bytes_requested(), bytes_after_one);
  arena.Allocate(48, 8);
  EXPECT_EQ(arena.bytes_requested(), 2 * bytes_after_one);
  EXPECT_EQ(arena.allocations(), 2u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_requested(), 2 * bytes_after_one);
}

TEST(ArenaTest, NestedMarksRewindInLifoOrder) {
  Arena arena(64);
  const Arena::Mark outer = arena.Position();
  arena.Allocate(40, 8);
  const Arena::Mark inner = arena.Position();
  arena.Allocate(40, 8);  // spills into a second chunk
  arena.Allocate(40, 8);
  arena.Rewind(inner);
  void* p = arena.Allocate(40, 8);
  ASSERT_NE(p, nullptr);
  arena.Rewind(outer);
  // After a full rewind the original offset is available again.
  arena.Allocate(40, 8);
  EXPECT_EQ(arena.allocations(), 5u);
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValueOnSuccess) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatusOnError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(StringsTest, SplitTokensSkipsRepeatedDelimiters) {
  auto parts = SplitTokens("  a\t b  c \n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitFieldsPreservesEmpties) {
  auto parts = SplitFields("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimStripsBothEnds) {
  EXPECT_EQ(Trim("  x y\t"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
}

TEST(StringsTest, ParseIntStrict) {
  auto ok = ParseInt("-123");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), -123);
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(StringsTest, ParseDoubleStrict) {
  auto ok = ParseDouble("2.5e-3");
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok.value(), 2.5e-3);
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(StringsTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
}

TEST(RngTest, Deterministic) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.25);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(TableTest, PrintsAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecials) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.WriteRow({"a,b", "say \"hi\"", "plain"});
  EXPECT_EQ(os.str(), "\"a,b\",\"say \"\"hi\"\"\",plain\n");
}

}  // namespace
}  // namespace graphsig::util
