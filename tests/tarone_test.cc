// Calibration of the Tarone testability correction (src/stream/tarone.h,
// DESIGN.md §16): over randomized candidate families the solved
// threshold must (a) control the family-wise budget — delta* <= alpha on
// every family, (b) never fall below the Bonferroni floor alpha / N, and
// (c) dominate Bonferroni in yield — every pattern Bonferroni accepts,
// Tarone accepts, and on the vast majority of families Tarone accepts
// strictly more. The end-to-end test pins the same contract through
// core::GraphSig::Mine with tarone_alpha set.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/graphsig.h"
#include "data/datasets.h"
#include "graph/graph_database.h"
#include "stream/tarone.h"
#include "util/rng.h"

namespace graphsig::stream {
namespace {

constexpr double kAlpha = 0.05;

// One randomized candidate family, shaped like an FVMine psi family:
// mostly untestable members (psi near 1 — rare vectors whose most
// extreme outcome still isn't significant), a handful of marginal
// members with psi log-uniform between the Bonferroni floor and alpha,
// and a few strongly testable ones far below the floor. The marginal
// band is where Tarone and Bonferroni disagree: those members are
// testable at delta* but not at alpha / N.
struct Family {
  std::vector<double> psis;
  // Observed p-value per member; p >= psi always (psi is the floor).
  std::vector<double> pvalues;
};

Family MakeFamily(util::Rng* rng) {
  Family family;
  const int untestable = rng->NextInt(40, 120);
  const int marginal = rng->NextInt(6, 12);
  const int strong = rng->NextInt(2, 6);
  const int n = untestable + marginal + strong;
  const double floor = kAlpha / n;
  for (int i = 0; i < untestable; ++i) {
    const double psi = 0.2 + 0.8 * rng->NextDouble();
    family.psis.push_back(psi);
    family.pvalues.push_back(psi + (1.0 - psi) * rng->NextDouble());
  }
  for (int i = 0; i < marginal; ++i) {
    // Log-uniform in [floor / 2, alpha]: straddles the Bonferroni
    // threshold from below and above.
    const double lo = std::log(floor / 2), hi = std::log(kAlpha);
    const double psi = std::exp(lo + (hi - lo) * rng->NextDouble());
    family.psis.push_back(psi);
    // The member attained its most extreme outcome: p = psi. These are
    // the discoveries a threshold either admits or loses.
    family.pvalues.push_back(psi);
  }
  for (int i = 0; i < strong; ++i) {
    const double psi = floor * 1e-4 * rng->NextDouble();
    family.psis.push_back(psi);
    family.pvalues.push_back(psi);
  }
  return family;
}

size_t Yield(const std::vector<double>& pvalues, double threshold) {
  return static_cast<size_t>(std::count_if(
      pvalues.begin(), pvalues.end(),
      [threshold](double p) { return p <= threshold; }));
}

TEST(TaroneThresholdTest, CalibrationOverRandomFamilies) {
  int strictly_better = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    util::Rng rng(seed);
    const Family family = MakeFamily(&rng);
    const size_t n = family.psis.size();
    const double bonferroni = kAlpha / static_cast<double>(n);

    const TaroneResult r = TaroneThreshold::Compute(family.psis, kAlpha);

    // FWER control: never looser than alpha, never tighter than
    // Bonferroni.
    EXPECT_LE(r.delta_star, kAlpha) << "seed " << seed;
    EXPECT_GE(r.delta_star, bonferroni) << "seed " << seed;
    EXPECT_EQ(r.family_size, n);
    EXPECT_GE(r.k_tarone, 1u);
    EXPECT_LE(r.k_tarone, n);
    // delta* is exactly alpha / k_T.
    EXPECT_DOUBLE_EQ(r.delta_star, kAlpha / static_cast<double>(r.k_tarone));
    // The fixed point: at most k_T members are testable at alpha / k_T.
    EXPECT_LE(r.testable, r.k_tarone) << "seed " << seed;

    // Yield dominance: delta* >= alpha/N means Tarone accepts a
    // superset of Bonferroni's discoveries on every family.
    const size_t tarone_yield = Yield(family.pvalues, r.delta_star);
    const size_t bonferroni_yield = Yield(family.pvalues, bonferroni);
    EXPECT_GE(tarone_yield, bonferroni_yield) << "seed " << seed;
    if (tarone_yield > bonferroni_yield) ++strictly_better;
  }
  // The marginal band makes a strict win overwhelmingly likely per
  // family; require it on at least 90 of the 100 seeds.
  EXPECT_GE(strictly_better, 90);
}

TEST(TaroneThresholdTest, EdgeCases) {
  // Empty family: nothing to test, threshold degenerates to alpha.
  const TaroneResult empty = TaroneThreshold::Compute({}, kAlpha);
  EXPECT_EQ(empty.family_size, 0u);
  EXPECT_LE(empty.delta_star, kAlpha);

  // All untestable: k_T = 1, delta* = alpha (no correction needed).
  const TaroneResult loose =
      TaroneThreshold::Compute({0.9, 0.8, 0.99}, kAlpha);
  EXPECT_DOUBLE_EQ(loose.delta_star, kAlpha);
  EXPECT_EQ(loose.k_tarone, 1u);
  EXPECT_EQ(loose.testable, 0u);

  // All maximally testable (psi = 0): Tarone collapses to Bonferroni.
  const TaroneResult tight =
      TaroneThreshold::Compute({0.0, 0.0, 0.0, 0.0}, kAlpha);
  EXPECT_DOUBLE_EQ(tight.delta_star, kAlpha / 4.0);
  EXPECT_EQ(tight.k_tarone, 4u);
  EXPECT_EQ(tight.testable, 4u);
}

// End to end through the mining pipeline: with tarone_alpha set, every
// reported pattern's p-value respects the solved family-wise threshold
// and the threshold itself respects alpha.
TEST(TaroneThresholdTest, MineNeverReportsAboveDeltaStar) {
  data::DatasetOptions options;
  options.size = 30;
  options.seed = 21;
  options.active_fraction = 0.3;
  const graph::GraphDatabase db = data::MakeCancerScreen("MCF-7", options);

  core::GraphSigConfig config;
  config.cutoff_radius = 3;
  config.min_freq_percent = 5.0;
  config.fsm_max_edges = 8;
  config.num_threads = 2;
  config.tarone_alpha = 0.1;

  const core::GraphSigResult result = core::GraphSig(config).Mine(db);
  ASSERT_GT(result.stats.tarone_family_size, 0u);
  EXPECT_GT(result.stats.tarone_delta_star, 0.0);
  EXPECT_LE(result.stats.tarone_delta_star, config.tarone_alpha);
  for (const core::SignificantSubgraph& s : result.subgraphs) {
    EXPECT_LE(s.vector_pvalue, result.stats.tarone_delta_star);
  }
}

}  // namespace
}  // namespace graphsig::stream
