// Lint fixture: a waived raw-mutex violation. The waiver sits on the
// matching line, so lint.py must accept it (no finding, not stale).
#include <mutex>

namespace fixture {
std::mutex g_waived_mutex;  // lint:allow=raw-mutex
}  // namespace fixture
