// Lint fixture: a stale waiver. The line carries lint:allow=raw-mutex
// but no longer contains anything the raw-mutex rule matches, so
// lint.py must report stale-waiver.
#include <cstdint>

namespace fixture {
int64_t g_counter = 0;  // lint:allow=raw-mutex
}  // namespace fixture
