// Lint fixture: an unwaived raw-mutex violation (std::mutex outside
// src/util/sync.h) that lint.py must report.
#include <mutex>

namespace fixture {
std::mutex g_bad_mutex;
}  // namespace fixture
