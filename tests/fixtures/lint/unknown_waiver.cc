// Lint fixture: a waiver naming a rule that does not exist; lint.py
// must report stale-waiver for the unknown name.
#include <cstdint>

namespace fixture {
int64_t g_other = 0;  // lint:allow=no-such-rule
}  // namespace fixture
