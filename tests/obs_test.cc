#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/graphsig.h"
#include "data/datasets.h"
#include "data/generator.h"
#include "data/motifs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace graphsig::obs {
namespace {

// ---------------------------------------------------------------------
// Counter concurrency: 8 threads x 10000 increments must land on the
// exact total (run under TSan in CI; a data race or a lost update shows
// up here).

TEST(ObsCounterTest, ConcurrentAddsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test/concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ObsCounterTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test/one");
  Counter* b = registry.GetCounter("test/one");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);
  // Advisory namespace is separate from the work-counter namespace.
  Counter* advisory = registry.GetAdvisoryCounter("test/advisory");
  EXPECT_NE(advisory, a);
}

TEST(ObsCounterTallyTest, FlushPublishesOnceAndDestructorIsIdempotent) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test/tally");
  {
    CounterTally tally(counter);
    tally.Add(5);
    tally.Increment();
    EXPECT_EQ(tally.pending(), 6u);
    // Nothing published until the tally flushes.
    EXPECT_EQ(counter->value(), 0u);
    tally.Flush();
    EXPECT_EQ(counter->value(), 6u);
    EXPECT_EQ(tally.pending(), 0u);
    tally.Add(2);
    // Destructor flushes the remainder exactly once.
  }
  EXPECT_EQ(counter->value(), 8u);
}

TEST(ObsCounterTallyTest, EmptyTallyNeverTouchesCounter) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test/tally_empty");
  { CounterTally tally(counter); }
  EXPECT_EQ(counter->value(), 0u);
}

TEST(ObsGaugeTest, UpdateMaxIsMonotonic) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test/hwm");
  gauge->UpdateMax(5);
  gauge->UpdateMax(3);  // below the high-water mark: ignored
  EXPECT_EQ(gauge->value(), 5);
  gauge->UpdateMax(9);
  EXPECT_EQ(gauge->value(), 9);
  gauge->Set(-2);
  EXPECT_EQ(gauge->value(), -2);
}

// ---------------------------------------------------------------------
// Histogram bucket boundaries: bucket i counts v <= bounds[i], with one
// overflow bucket past bounds.back().

TEST(ObsHistogramTest, BucketBoundariesAreInclusive) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test/hist", {10, 100});
  h->Observe(0);    // bucket 0 (v <= 10)
  h->Observe(10);   // bucket 0: boundary value stays in its bucket
  h->Observe(11);   // bucket 1 (10 < v <= 100)
  h->Observe(100);  // bucket 1
  h->Observe(101);  // overflow bucket
  EXPECT_EQ(h->bucket_count(0), 2u);
  EXPECT_EQ(h->bucket_count(1), 2u);
  EXPECT_EQ(h->bucket_count(2), 1u);
  EXPECT_EQ(h->total_count(), 5u);
  EXPECT_EQ(h->sum(), 0u + 10 + 11 + 100 + 101);
  // Re-registration with identical bounds returns the same histogram.
  EXPECT_EQ(registry.GetHistogram("test/hist", {10, 100}), h);
}

// ---------------------------------------------------------------------
// Trace spans: the macro registers the path once, aggregates calls and
// work across invocations, and nested spans each report to their own
// path (paths are literals, not derived from runtime nesting — that is
// what keeps them identical across thread counts).

void InnerTracedFunction(MetricsRegistry* /*unused*/) {
  GS_TRACE_SPAN("test/outer/inner");
}

uint64_t OuterTracedFunction() {
  GS_TRACE_SPAN_NAMED(span, "test/outer");
  InnerTracedFunction(nullptr);
  InnerTracedFunction(nullptr);
  span.AddWork(7);
  return 7;
}

TEST(ObsTraceTest, SpansAggregateCallsAndWork) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  OuterTracedFunction();
  OuterTracedFunction();
  SpanStats* outer = registry.GetSpan("test/outer");
  SpanStats* inner = registry.GetSpan("test/outer/inner");
  EXPECT_EQ(outer->calls(), 2u);
  EXPECT_EQ(outer->work(), 14u);
  EXPECT_EQ(inner->calls(), 4u);
  EXPECT_EQ(inner->work(), 0u);
  // Wall time is advisory and scheduling-dependent, but a completed
  // span records a nonnegative duration and one RecordCall per scope.
  registry.Reset();
  EXPECT_EQ(outer->calls(), 0u);
  EXPECT_EQ(outer->work(), 0u);
}

// ---------------------------------------------------------------------
// JSON dump: byte-stable golden on a private registry.

TEST(ObsDumpTest, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("b/two")->Add(5);
  registry.GetCounter("a/one")->Add(1);
  registry.GetSpan("phase")->RecordCall(/*wall_ns=*/0, /*work=*/9);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"a/one\": 1,\n"
      "    \"b/two\": 5\n"
      "  },\n"
      "  \"spans\": {\n"
      "    \"phase\": {\"calls\": 1, \"work\": 9}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(registry.DumpJson({/*include_advisory=*/false}), expected);
}

TEST(ObsDumpTest, AdvisorySectionIsFenced) {
  MetricsRegistry registry;
  registry.GetCounter("work/units")->Add(2);
  registry.GetAdvisoryCounter("sched/tasks")->Add(3);
  registry.GetGauge("sched/depth")->Set(4);
  registry.GetHistogram("sched/lat", {10})->Observe(7);

  const std::string with = registry.DumpJson();
  EXPECT_NE(with.find("\"advisory\""), std::string::npos);
  EXPECT_NE(with.find("\"sched/tasks\": 3"), std::string::npos);
  EXPECT_NE(with.find("\"sched/depth\": 4"), std::string::npos);
  EXPECT_NE(with.find("\"sched/lat\""), std::string::npos);

  const std::string without = registry.DumpJson({false});
  EXPECT_EQ(without.find("\"advisory\""), std::string::npos);
  EXPECT_EQ(without.find("sched/"), std::string::npos);
  EXPECT_NE(without.find("\"work/units\": 2"), std::string::npos);

  // WorkValues flattens the same deterministic view.
  auto values = registry.WorkValues();
  EXPECT_EQ(values.size(), 1u);
  EXPECT_EQ(values.at("work/units"), 2u);
}

// ---------------------------------------------------------------------
// The headline contract: for a fixed seed, the deterministic dump of a
// full mining run is byte-identical across thread counts. This is what
// lets scripts/check_counters.py gate CI on a single-core runner.

graph::GraphDatabase SeededDb() {
  util::Rng rng(4242);
  data::MoleculeGenConfig gen;
  gen.min_atoms = 8;
  gen.max_atoms = 14;
  const graph::Graph motif = data::AztCoreMotif();
  graph::GraphDatabase db;
  for (int i = 0; i < 40; ++i) {
    graph::Graph g = data::GenerateMolecule(gen, &rng);
    g.set_id(i);
    if (i < 10) {
      data::PlantMotif(&g, motif, &rng);
      g.set_tag(1);
    }
    db.Add(std::move(g));
  }
  return db;
}

std::string MineAndDump(const graph::GraphDatabase& db, int threads) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  core::GraphSigConfig config;
  config.cutoff_radius = 4;
  config.min_freq_percent = 1.0;
  config.max_pvalue = 0.05;
  config.fsm_max_edges = 15;
  config.num_threads = threads;
  core::GraphSig miner(config);
  miner.Mine(db);
  return registry.DumpJson({/*include_advisory=*/false});
}

TEST(ObsDeterminismTest, WorkCountersIdenticalAcrossThreadCounts) {
  const graph::GraphDatabase db = SeededDb();
  const std::string dump1 = MineAndDump(db, 1);
  const std::string dump4 = MineAndDump(db, 4);
  const std::string dump8 = MineAndDump(db, 8);
  EXPECT_EQ(dump1, dump4);
  EXPECT_EQ(dump1, dump8);
  // The dump is not trivially empty: the mine must have reported work.
  EXPECT_NE(dump1.find("fvmine/expansions"), std::string::npos);
  EXPECT_NE(dump1.find("rwr/power_iterations"), std::string::npos);
  EXPECT_NE(dump1.find("mine/region_cache_misses"), std::string::npos);
  EXPECT_NE(dump1.find("\"mine/fsm/gspan\""), std::string::npos);
}

}  // namespace
}  // namespace graphsig::obs
