#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "classify/auc.h"
#include "classify/evaluation.h"
#include "classify/hungarian.h"
#include "classify/leap.h"
#include "classify/oa_kernel.h"
#include "classify/sig_knn.h"
#include "classify/svm.h"
#include "data/datasets.h"
#include "util/rng.h"

namespace graphsig::classify {
namespace {

TEST(AucTest, PerfectAndInvertedRanking) {
  std::vector<ScoredExample> perfect = {
      {0.9, true}, {0.8, true}, {0.2, false}, {0.1, false}};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(perfect), 1.0);
  std::vector<ScoredExample> inverted = {
      {0.9, false}, {0.8, false}, {0.2, true}, {0.1, true}};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(inverted), 0.0);
}

TEST(AucTest, AllTiedScoresGiveHalf) {
  std::vector<ScoredExample> tied = {
      {0.5, true}, {0.5, false}, {0.5, true}, {0.5, false}};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(tied), 0.5);
}

TEST(AucTest, HandComputedMixedCase) {
  // Positives at 0.8, 0.4; negatives at 0.6, 0.2.
  // Pairs won: (0.8 vs both) = 2, (0.4 vs 0.2) = 1 -> 3/4.
  std::vector<ScoredExample> mixed = {
      {0.8, true}, {0.6, false}, {0.4, true}, {0.2, false}};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(mixed), 0.75);
}

TEST(AucTest, RandomScoresNearHalf) {
  util::Rng rng(77);
  std::vector<ScoredExample> examples;
  for (int i = 0; i < 4000; ++i) {
    examples.push_back({rng.NextDouble(), rng.NextBernoulli(0.3)});
  }
  EXPECT_NEAR(AreaUnderRoc(examples), 0.5, 0.03);
}

TEST(AucTest, RocCurveEndpoints) {
  std::vector<ScoredExample> examples = {
      {0.9, true}, {0.7, false}, {0.5, true}, {0.1, false}};
  auto curve = RocCurve(examples);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().false_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 1.0);
  // Monotone non-decreasing in both axes.
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].false_positive_rate,
              curve[i - 1].false_positive_rate);
    EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
  }
}

TEST(HungarianTest, KnownOptimum) {
  // Max-weight assignment must pick the anti-diagonal here.
  std::vector<std::vector<double>> scores = {
      {1.0, 5.0},
      {5.0, 1.0},
  };
  auto assignment = MaxWeightAssignment(scores);
  EXPECT_EQ(assignment[0], 1);
  EXPECT_EQ(assignment[1], 0);
  EXPECT_DOUBLE_EQ(AssignmentValue(scores, assignment), 10.0);
}

TEST(HungarianTest, MatchesBruteForceOnRandomMatrices) {
  util::Rng rng(88);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBounded(5));
    std::vector<std::vector<double>> scores(n, std::vector<double>(n));
    for (auto& row : scores) {
      for (double& x : row) x = rng.NextDouble();
    }
    auto assignment = MaxWeightAssignment(scores);
    const double got = AssignmentValue(scores, assignment);
    // Brute force over all permutations.
    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) perm[i] = i;
    double best = -1.0;
    do {
      double value = 0.0;
      for (int i = 0; i < n; ++i) value += scores[i][perm[i]];
      best = std::max(best, value);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(got, best, 1e-9) << "n=" << n << " trial=" << trial;
  }
}

TEST(SvmTest, SeparatesLinearlySeparableData) {
  // Points on a line: x > 0 positive, x < 0 negative.
  std::vector<std::vector<double>> examples;
  std::vector<int> labels;
  util::Rng rng(99);
  for (int i = 0; i < 60; ++i) {
    const double x = rng.NextDouble() * 2.0 - 1.0;
    const double y = rng.NextDouble();
    if (std::fabs(x) < 0.1) continue;  // margin gap
    examples.push_back({x, y});
    labels.push_back(x > 0 ? 1 : -1);
  }
  LinearSvm svm;
  svm.Train(examples, labels);
  int correct = 0;
  for (size_t i = 0; i < examples.size(); ++i) {
    correct += (svm.Decision(examples[i]) > 0) == (labels[i] > 0);
  }
  EXPECT_GE(static_cast<double>(correct) / examples.size(), 0.95);
}

TEST(SvmTest, KernelSvmWithPrecomputedGram) {
  // 1-D separable data through an explicit linear gram matrix.
  std::vector<double> xs = {-2.0, -1.5, -1.0, 1.0, 1.5, 2.0};
  std::vector<int> labels = {-1, -1, -1, 1, 1, 1};
  const size_t n = xs.size();
  std::vector<std::vector<double>> gram(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) gram[i][j] = xs[i] * xs[j];
  }
  KernelSvm svm;
  svm.Train(gram, labels);
  for (size_t q = 0; q < n; ++q) {
    std::vector<double> row(n);
    for (size_t i = 0; i < n; ++i) row[i] = xs[q] * xs[i];
    EXPECT_EQ(svm.Decision(row) > 0, labels[q] > 0) << q;
  }
}

TEST(GTestScoreTest, ZeroWhenRatesEqualAndGrowsWithGap) {
  EXPECT_NEAR(GTestScore(0.3, 0.3, 100), 0.0, 1e-9);
  const double small_gap = GTestScore(0.4, 0.3, 100);
  const double large_gap = GTestScore(0.8, 0.1, 100);
  EXPECT_GT(small_gap, 0.0);
  EXPECT_GT(large_gap, small_gap);
  // Symmetric-ish in direction: discriminative either way scores > 0.
  EXPECT_GT(GTestScore(0.1, 0.8, 100), 0.0);
}

TEST(MinDistTest, PaperWorkedExample) {
  // Table I query vectors vs Table III training vectors.
  features::FeatureVec v1 = {1, 0, 0, 2};
  features::FeatureVec v2 = {1, 1, 0, 2};
  features::FeatureVec v3 = {2, 0, 1, 2};
  features::FeatureVec v4 = {1, 0, 1, 0};
  std::vector<features::FeatureVec> neg = {
      {0, 0, 1, 1}, {0, 1, 0, 0}, {1, 1, 0, 1}};
  std::vector<features::FeatureVec> pos = {
      {2, 0, 1, 3}, {1, 0, 0, 0}, {0, 0, 0, 1}};
  // v1: no negative is a sub-vector; P2 and P3 are both at distance 2.
  EXPECT_TRUE(std::isinf(MinDistToSubVector(v1, neg)));
  EXPECT_DOUBLE_EQ(MinDistToSubVector(v1, pos), 2.0);
  // v2: N3 is a sub-vector at distance 1 (the paper's closest).
  EXPECT_DOUBLE_EQ(MinDistToSubVector(v2, neg), 1.0);
  EXPECT_DOUBLE_EQ(MinDistToSubVector(v2, pos), 3.0);
  // v4: P2 at distance 1; no negative applies.
  EXPECT_DOUBLE_EQ(MinDistToSubVector(v4, pos), 1.0);
  EXPECT_TRUE(std::isinf(MinDistToSubVector(v4, neg)));
  // v3: N1 at distance 3 beats the positives at 4.
  EXPECT_DOUBLE_EQ(MinDistToSubVector(v3, neg), 3.0);
  EXPECT_DOUBLE_EQ(MinDistToSubVector(v3, pos), 4.0);
}

// --- End-to-end classifier quality on a planted dataset.

graph::GraphDatabase SmallScreen(uint64_t seed, size_t size) {
  data::DatasetOptions options;
  options.size = size;
  options.seed = seed;
  options.active_fraction = 0.20;  // denser actives keep the test small
  options.molecule.min_atoms = 8;
  options.molecule.max_atoms = 16;
  return data::MakeCancerScreen("MCF-7", options);
}

SigKnnConfig FastSigConfig() {
  SigKnnConfig config;
  config.mining.cutoff_radius = 4;
  config.mining.min_freq_percent = 2.0;
  config.mining.max_pvalue = 0.1;
  return config;
}

TEST(GraphSigClassifierTest, LearnsPlantedSignal) {
  graph::GraphDatabase db = SmallScreen(321, 240);
  graph::GraphDatabase train = BalancedTrainingSample(db, 0.5, 9);
  GraphSigClassifier classifier(FastSigConfig());
  classifier.Train(train);
  EXPECT_FALSE(classifier.positive_vectors().empty());

  std::vector<ScoredExample> scored;
  for (const graph::Graph& g : db.graphs()) {
    scored.push_back({classifier.Score(g), g.tag() == 1});
  }
  EXPECT_GT(AreaUnderRoc(scored), 0.70);
}

TEST(LeapClassifierTest, LearnsPlantedSignal) {
  graph::GraphDatabase db = SmallScreen(322, 200);
  graph::GraphDatabase train = BalancedTrainingSample(db, 0.5, 10);
  LeapConfig config;
  config.min_support_percent = 10.0;
  config.max_edges = 6;
  LeapClassifier classifier(config);
  classifier.Train(train);
  EXPECT_FALSE(classifier.patterns().empty());
  EXPECT_LE(classifier.patterns().size(), config.top_k_patterns);

  std::vector<ScoredExample> scored;
  for (const graph::Graph& g : db.graphs()) {
    scored.push_back({classifier.Score(g), g.tag() == 1});
  }
  EXPECT_GT(AreaUnderRoc(scored), 0.65);
}

TEST(OaKernelClassifierTest, LearnsPlantedSignal) {
  graph::GraphDatabase db = SmallScreen(323, 120);
  graph::GraphDatabase train = BalancedTrainingSample(db, 0.4, 11);
  OaKernelClassifier classifier;
  classifier.Train(train);

  std::vector<ScoredExample> scored;
  for (const graph::Graph& g : db.graphs()) {
    scored.push_back({classifier.Score(g), g.tag() == 1});
  }
  EXPECT_GT(AreaUnderRoc(scored), 0.60);
}

TEST(OaKernelTest, KernelProperties) {
  graph::GraphDatabase db = SmallScreen(324, 20);
  auto space = features::FeatureSpace::ForChemicalDatabase(db, 5);
  features::RwrConfig rwr;
  auto describe = [&](const graph::Graph& g) {
    GraphDescriptor d;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      d.push_back({g.vertex_label(v),
                   features::RwrFeatureDistribution(g, v, space, rwr)});
    }
    return d;
  };
  auto a = describe(db.graph(0));
  auto b = describe(db.graph(1));
  const double kab = OaKernelValue(a, b, 8.0);
  const double kba = OaKernelValue(b, a, 8.0);
  EXPECT_NEAR(kab, kba, 1e-9);  // symmetry
  const double kaa = OaKernelValue(a, a, 8.0);
  // Self-assignment is ideal: every node matches itself with score 1.
  EXPECT_NEAR(kaa, static_cast<double>(a.size()) / a.size(), 1e-9);
  EXPECT_LE(kab, 1.0 + 1e-9);
  EXPECT_GE(kab, 0.0);
}

TEST(EvaluationTest, CrossValidateShapesAndDeterminism) {
  graph::GraphDatabase db = SmallScreen(325, 150);
  EvalOptions options;
  options.folds = 3;
  options.active_train_fraction = 0.5;
  options.seed = 5;
  auto factory = [] {
    return std::make_unique<GraphSigClassifier>(FastSigConfig());
  };
  EvalSummary a = CrossValidate(db, factory, options);
  ASSERT_EQ(a.folds.size(), 3u);
  for (const FoldOutcome& f : a.folds) {
    EXPECT_GT(f.train_size, 0u);
    EXPECT_GT(f.test_size, 0u);
    EXPECT_GE(f.auc, 0.0);
    EXPECT_LE(f.auc, 1.0);
  }
  EXPECT_GE(a.mean_auc, 0.5);  // planted signal, should beat chance
  EvalSummary b = CrossValidate(db, factory, options);
  EXPECT_DOUBLE_EQ(a.mean_auc, b.mean_auc);  // same seed, same folds
}

TEST(EvaluationTest, BalancedSampleIsBalanced) {
  graph::GraphDatabase db = SmallScreen(326, 200);
  graph::GraphDatabase sample = BalancedTrainingSample(db, 0.3, 17);
  size_t pos = 0, neg = 0;
  for (const graph::Graph& g : sample.graphs()) {
    (g.tag() == 1 ? pos : neg) += 1;
  }
  EXPECT_EQ(pos, neg);
  EXPECT_GT(pos, 0u);
}

}  // namespace
}  // namespace graphsig::classify
