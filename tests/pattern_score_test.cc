#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/pattern_score.h"
#include "core/report.h"
#include "data/datasets.h"
#include "data/generator.h"
#include "data/elements.h"
#include "data/motifs.h"
#include "graph/dot.h"
#include "stats/simulation.h"
#include "util/rng.h"

namespace graphsig {
namespace {

graph::GraphDatabase PlantedDb(const graph::Graph& motif, int total,
                               int planted, uint64_t seed) {
  util::Rng rng(seed);
  data::MoleculeGenConfig gen;
  gen.min_atoms = 8;
  gen.max_atoms = 14;
  graph::GraphDatabase db;
  for (int i = 0; i < total; ++i) {
    graph::Graph g = data::GenerateMolecule(gen, &rng);
    g.set_id(i);
    if (i < planted) data::PlantMotif(&g, motif, &rng);
    db.Add(std::move(g));
  }
  return db;
}

TEST(PatternScoreTest, PlantedMotifIsSignificant) {
  const graph::Graph motif = data::AztCoreMotif();
  graph::GraphDatabase db = PlantedDb(motif, 80, 12, 661);
  core::GraphSigConfig config;
  core::PatternScore score = core::ScorePattern(db, motif, config);
  ASSERT_TRUE(score.found);
  EXPECT_EQ(score.frequency, 12);
  EXPECT_LT(score.p_value, 0.01);
}

TEST(PatternScoreTest, UbiquitousBenzeneIsNotSignificant) {
  // Plant benzene in 70% of molecules: frequent, fully expected.
  const graph::Graph benzene = data::BenzeneMotif();
  graph::GraphDatabase db = PlantedDb(benzene, 100, 70, 662);
  core::GraphSigConfig config;
  core::PatternScore score = core::ScorePattern(db, benzene, config);
  ASSERT_TRUE(score.found);
  EXPECT_GE(score.frequency, 70);
  const graph::Graph rare = data::MetalloidMotif(data::kAntimony);
  graph::GraphDatabase db2 = PlantedDb(rare, 100, 6, 663);
  core::PatternScore rare_score = core::ScorePattern(db2, rare, config);
  ASSERT_TRUE(rare_score.found);
  // The rare planted core must be far more significant than benzene.
  EXPECT_LT(rare_score.p_value, score.p_value);
}

TEST(PatternScoreTest, AbsentPatternNotFound) {
  graph::GraphDatabase db = PlantedDb(data::BenzeneMotif(), 20, 5, 664);
  core::GraphSigConfig config;
  core::PatternScore score =
      core::ScorePattern(db, data::MetalloidMotif(data::kBismuth), config);
  EXPECT_FALSE(score.found);
  EXPECT_EQ(score.frequency, 0);
}

TEST(RandomizeTest, PreservesDegreesAndLabels) {
  util::Rng rng(665);
  data::MoleculeGenConfig gen;
  for (int trial = 0; trial < 10; ++trial) {
    graph::Graph g = data::GenerateMolecule(gen, &rng);
    graph::Graph r = stats::RandomizeGraph(g, &rng);
    ASSERT_EQ(r.num_vertices(), g.num_vertices());
    ASSERT_EQ(r.num_edges(), g.num_edges());
    EXPECT_EQ(r.vertex_labels(), g.vertex_labels());
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(r.degree(v), g.degree(v)) << "trial " << trial;
    }
    // Edge-label multiset preserved.
    std::multiset<graph::Label> before, after;
    for (const auto& e : g.edges()) before.insert(e.label);
    for (const auto& e : r.edges()) after.insert(e.label);
    EXPECT_EQ(before, after);
  }
}

TEST(RandomizeTest, ActuallyRewires) {
  util::Rng rng(666);
  data::MoleculeGenConfig gen;
  gen.min_atoms = 20;
  gen.max_atoms = 30;
  int changed = 0;
  for (int trial = 0; trial < 10; ++trial) {
    graph::Graph g = data::GenerateMolecule(gen, &rng);
    graph::Graph r = stats::RandomizeGraph(g, &rng);
    if (!(r == g)) ++changed;
  }
  EXPECT_GE(changed, 8);  // swaps should nearly always land
}

TEST(SimulationTest, RarePlantedPatternGetsSmallPValue) {
  const graph::Graph motif = data::MetalloidMotif(data::kAntimony);
  graph::GraphDatabase db = PlantedDb(motif, 40, 6, 667);
  auto sim = stats::SimulatePatternPValue(db, motif, 19, 668);
  EXPECT_EQ(sim.observed_support, 6);
  // A 7-edge rare-atom core should essentially never survive rewiring.
  EXPECT_LE(sim.p_value, 2.0 / 20.0);
  // Resolution limit: can never report below 1/(N+1).
  EXPECT_GE(sim.p_value, 1.0 / 20.0);
}

TEST(SimulationTest, SingleEdgePatternIsNotSignificant) {
  // A single C-C edge survives any degree-preserving rewiring with
  // probability ~1, so its simulated p-value is ~1.
  graph::GraphDatabase db = PlantedDb(data::BenzeneMotif(), 30, 20, 669);
  graph::Graph edge;
  edge.AddVertex(data::kCarbon);
  edge.AddVertex(data::kCarbon);
  edge.AddEdge(0, 1, data::kSingleBond);
  auto sim = stats::SimulatePatternPValue(db, edge, 9, 670);
  EXPECT_GT(sim.p_value, 0.8);
}

TEST(DotTest, RendersNodesAndEdges) {
  graph::Graph g = data::BenzeneMotif();
  std::string dot = graph::ToDot(g, "benzene", data::AtomSymbol,
                                 data::BondSymbol);
  EXPECT_NE(dot.find("graph benzene {"), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"C\"]"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1 [label=\":\"]"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
  // Default numeric labels.
  std::string numeric = graph::ToDot(g);
  EXPECT_NE(numeric.find("[label=\"0\"]"), std::string::npos);
}

TEST(ReportTest, HumanAndCsvOutputs) {
  const graph::Graph motif = data::FdtCoreMotif();
  graph::GraphDatabase db = PlantedDb(motif, 60, 12, 671);
  core::GraphSigConfig config;
  config.cutoff_radius = 4;
  config.min_freq_percent = 2.0;
  core::GraphSig miner(config);
  core::GraphSigResult result = miner.Mine(db);
  ASSERT_FALSE(result.subgraphs.empty());

  std::ostringstream report;
  core::WriteReport(result, db.size(), report, 5);
  EXPECT_NE(report.str().find("GraphSig result"), std::string::npos);
  EXPECT_NE(report.str().find("p="), std::string::npos);

  std::ostringstream csv;
  core::WriteCsv(result, csv);
  // Header + one line per subgraph.
  size_t lines = 0;
  for (char c : csv.str()) lines += (c == '\n');
  EXPECT_EQ(lines, result.subgraphs.size() + 1);
  EXPECT_NE(csv.str().find("rank,p_value"), std::string::npos);
}

}  // namespace
}  // namespace graphsig
