#include <gtest/gtest.h>

#include <thread>

#include "data/datasets.h"
#include "features/feature_vector.h"
#include "fsm/miner.h"
#include "fvmine/fvmine.h"
#include "stats/pvalue_model.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace graphsig {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  util::WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedSeconds() * 50);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.015);
}

TEST(TimerTest, StageTimerAccumulates) {
  util::StageTimer stage;
  EXPECT_EQ(stage.total_seconds(), 0.0);
  stage.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stage.Stop();
  const double first = stage.total_seconds();
  EXPECT_GT(first, 0.0);
  stage.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stage.Stop();
  EXPECT_GT(stage.total_seconds(), first);
  stage.Reset();
  EXPECT_EQ(stage.total_seconds(), 0.0);
}

TEST(LoggingTest, LevelFilterRoundTrips) {
  const util::LogLevel before = util::GetLogLevel();
  util::SetLogLevel(util::LogLevel::kError);
  EXPECT_EQ(util::GetLogLevel(), util::LogLevel::kError);
  // Filtered and unfiltered calls must both be safe to make.
  util::LogDebug("dropped");
  util::LogInfo("dropped");
  util::LogWarning("dropped");
  util::SetLogLevel(before);
}

TEST(MinerBudgetTest, GSpanBudgetStopsAndFlagsIncomplete) {
  data::DatasetOptions options;
  options.size = 400;
  options.seed = 55;
  graph::GraphDatabase db = data::MakeAidsLike(options);
  fsm::MinerConfig config;
  config.min_support = 2;  // explosive
  config.budget_seconds = 0.1;
  util::WallTimer timer;
  fsm::MineResult result = fsm::MineFrequentGSpan(db, config);
  EXPECT_FALSE(result.completed);
  EXPECT_LT(timer.ElapsedSeconds(), 5.0);  // stopped promptly
}

TEST(MinerBudgetTest, AprioriBudgetStopsAndFlagsIncomplete) {
  data::DatasetOptions options;
  options.size = 300;
  options.seed = 56;
  graph::GraphDatabase db = data::MakeAidsLike(options);
  fsm::MinerConfig config;
  config.min_support = 3;
  config.budget_seconds = 0.1;
  util::WallTimer timer;
  fsm::MineResult result = fsm::MineFrequentApriori(db, config);
  EXPECT_FALSE(result.completed);
  EXPECT_LT(timer.ElapsedSeconds(), 10.0);
}

TEST(FvMineBudgetTest, BudgetStopsSearch) {
  // A wide population with a permissive threshold explodes; the budget
  // must stop it and mark the result incomplete.
  util::Rng rng(57);
  std::vector<features::FeatureVec> population;
  for (int i = 0; i < 200; ++i) {
    features::FeatureVec v(24);
    for (auto& x : v) {
      x = rng.NextBernoulli(0.5)
              ? static_cast<int16_t>(1 + rng.NextBounded(9))
              : 0;
    }
    population.push_back(std::move(v));
  }
  auto packed = features::PackedVectorSet::FromVectors(population);
  stats::FeaturePriors priors(population, 10);
  fvmine::FvMineConfig config;
  config.min_support = 2;
  config.max_pvalue = 0.999;
  config.budget_seconds = 0.05;
  util::WallTimer timer;
  fvmine::FvMineResult result = fvmine::FvMine(packed, priors, config);
  EXPECT_LT(timer.ElapsedSeconds(), 5.0);
  // Either the search was genuinely small or the budget fired.
  if (!result.completed) {
    EXPECT_GT(result.states_explored, 0u);
  }
}

}  // namespace
}  // namespace graphsig
