#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/elements.h"
#include "data/generator.h"
#include "data/molfile.h"
#include "data/motifs.h"
#include "data/smiles.h"
#include "graph/isomorphism.h"
#include "util/rng.h"

namespace graphsig::data {
namespace {

TEST(SmilesParseTest, LinearChain) {
  auto r = ParseSmiles("CCO");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const graph::Graph& g = r.value();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.vertex_label(0), kCarbon);
  EXPECT_EQ(g.vertex_label(2), kOxygen);
  EXPECT_EQ(g.edge(0).label, kSingleBond);
}

TEST(SmilesParseTest, ExplicitBonds) {
  auto r = ParseSmiles("C=C#N");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().EdgeLabelBetween(0, 1), kDoubleBond);
  EXPECT_EQ(r.value().EdgeLabelBetween(1, 2), kTripleBond);
}

TEST(SmilesParseTest, BranchesAndRings) {
  // Cyclohexanone-like: ring of 6 C with =O branch.
  auto r = ParseSmiles("C1CCCCC1=O");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const graph::Graph& g = r.value();
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 7);
  EXPECT_TRUE(g.HasEdge(0, 5));  // ring closure
  EXPECT_EQ(g.EdgeLabelBetween(5, 6), kDoubleBond);
}

TEST(SmilesParseTest, AromaticLowercase) {
  auto r = ParseSmiles("c1ccccc1");  // benzene
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(graph::AreIsomorphic(r.value(), BenzeneMotif()));
}

TEST(SmilesParseTest, BracketAtoms) {
  auto r = ParseSmiles("C[Sb](C)[Bi]");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().vertex_label(1), kAntimony);
  EXPECT_EQ(r.value().vertex_label(3), kBismuth);
  auto x = ParseSmiles("[X12]C");
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  EXPECT_EQ(x.value().vertex_label(0), 12);
  auto h = ParseSmiles("[NH2]C");  // H-counts ignored
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(h.value().vertex_label(0), kNitrogen);
}

TEST(SmilesParseTest, PercentRingClosure) {
  auto r = ParseSmiles("C%12CCC%12");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_edges(), 4);
}

TEST(SmilesParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseSmiles("").ok());
  EXPECT_FALSE(ParseSmiles("C(").ok());
  EXPECT_FALSE(ParseSmiles("C)").ok());
  EXPECT_FALSE(ParseSmiles("C1CC").ok());        // unclosed ring
  EXPECT_FALSE(ParseSmiles("C11").ok());         // self ring
  EXPECT_FALSE(ParseSmiles("C=").ok());          // dangling bond
  EXPECT_FALSE(ParseSmiles("=C").ok());          // leading bond
  EXPECT_FALSE(ParseSmiles("C.C").ok());         // components
  EXPECT_FALSE(ParseSmiles("C/C=C/C").ok());     // stereo
  EXPECT_FALSE(ParseSmiles("[Qq]").ok());        // unknown symbol
  EXPECT_FALSE(ParseSmiles("C=#C").ok());        // double bond symbol
  EXPECT_FALSE(ParseSmiles("Zz").ok());          // must be bracketed
}

TEST(SmilesParseTest, RingBondSymbolEitherSide) {
  auto a = ParseSmiles("C=1CCCCC=1");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a.value().EdgeLabelBetween(0, 5), kDoubleBond);
  auto conflict = ParseSmiles("C=1CCCCC#1");
  EXPECT_FALSE(conflict.ok());
}

TEST(SmilesWriteTest, KnownMolecules) {
  // Writer output must re-parse to an isomorphic graph.
  for (const NamedMotif& m : AllNamedMotifs()) {
    std::string smiles = WriteSmiles(m.graph);
    auto back = ParseSmiles(smiles);
    ASSERT_TRUE(back.ok()) << m.name << ": " << smiles << " -> "
                           << back.status().ToString();
    EXPECT_TRUE(graph::AreIsomorphic(back.value(), m.graph))
        << m.name << ": " << smiles;
  }
}

class SmilesRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(SmilesRoundTripTest, RandomMoleculeRoundTrips) {
  util::Rng rng(8800 + GetParam());
  MoleculeGenConfig config;
  graph::Graph g = GenerateMolecule(config, &rng);
  if (GetParam() % 2 == 0) {
    PlantMotif(&g, AllNamedMotifs()[GetParam() % 6].graph, &rng);
  }
  std::string smiles = WriteSmiles(g);
  auto back = ParseSmiles(smiles);
  ASSERT_TRUE(back.ok()) << smiles << " -> " << back.status().ToString();
  EXPECT_TRUE(graph::AreIsomorphic(back.value(), g)) << smiles;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmilesRoundTripTest,
                         ::testing::Range(0, 30));

TEST(SmilesLinesTest, ParsesTagsAndIds) {
  const char* text =
      "# comment\n"
      "CCO 1 42\n"
      "\n"
      "c1ccccc1 0\n"
      "CC\n";
  auto db = ParseSmilesLines(text);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db.value().size(), 3u);
  EXPECT_EQ(db.value().graph(0).tag(), 1);
  EXPECT_EQ(db.value().graph(0).id(), 42);
  EXPECT_EQ(db.value().graph(1).tag(), 0);
  EXPECT_EQ(db.value().graph(2).tag(), 0);
}

TEST(SmilesLinesTest, RoundTripDatabase) {
  DatasetOptions options;
  options.size = 25;
  options.seed = 31;
  graph::GraphDatabase db = MakeAidsLike(options);
  std::string text = WriteSmilesLines(db);
  auto back = ParseSmilesLines(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_TRUE(graph::AreIsomorphic(back.value().graph(i), db.graph(i)));
    EXPECT_EQ(back.value().graph(i).tag(), db.graph(i).tag());
    EXPECT_EQ(back.value().graph(i).id(), db.graph(i).id());
  }
}

TEST(MolfileTest, RoundTripSingleBlock) {
  graph::Graph g = AztCoreMotif();
  std::string block = WriteMolBlock(g, "azt");
  auto back = ParseMolBlock(block);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(graph::AreIsomorphic(back.value(), g));
}

TEST(MolfileTest, ParsesHandWrittenBlock) {
  const char* block =
      "ethanol\n"
      "  test\n"
      "\n"
      "  3  2  0  0  0  0  0  0  0  0999 V2000\n"
      "    0.0000    0.0000    0.0000 C   0  0\n"
      "    1.0000    0.0000    0.0000 C   0  0\n"
      "    2.0000    0.0000    0.0000 O   0  0\n"
      "  1  2  1  0\n"
      "  2  3  1  0\n"
      "M  END\n";
  auto r = ParseMolBlock(block);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_vertices(), 3);
  EXPECT_EQ(r.value().vertex_label(2), kOxygen);
}

TEST(MolfileTest, RejectsMalformedBlocks) {
  EXPECT_FALSE(ParseMolBlock("tiny\n").ok());
  const char* v3000 =
      "x\n\n\n  0  0  0  0  0  0  0  0  0  0999 V3000\nM  END\n";
  EXPECT_FALSE(ParseMolBlock(v3000).ok());
  const char* bad_bond =
      "x\n\n\n  2  1  0  0  0  0  0  0  0  0999 V2000\n"
      "    0 0 0 C 0\n    0 0 0 C 0\n  1  2  9  0\nM  END\n";
  EXPECT_FALSE(ParseMolBlock(bad_bond).ok());
  const char* out_of_range =
      "x\n\n\n  2  1  0  0  0  0  0  0  0  0999 V2000\n"
      "    0 0 0 C 0\n    0 0 0 C 0\n  1  5  1  0\nM  END\n";
  EXPECT_FALSE(ParseMolBlock(out_of_range).ok());
}

TEST(MolfileTest, SdfRoundTripWithActivity) {
  DatasetOptions options;
  options.size = 15;
  options.seed = 33;
  options.active_fraction = 0.2;
  graph::GraphDatabase db = MakeCancerScreen("P388", options);
  std::string sdf = WriteSdf(db);
  auto back = ParseSdf(sdf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_TRUE(graph::AreIsomorphic(back.value().graph(i), db.graph(i)));
    EXPECT_EQ(back.value().graph(i).tag(), db.graph(i).tag());
  }
}

}  // namespace
}  // namespace graphsig::data
