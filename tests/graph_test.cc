#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "graph/io.h"

namespace graphsig::graph {
namespace {

Graph MakePath3() {
  // 0(a) -1- 1(b) -2- 2(c)
  Graph g(0);
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 2);
  return g;
}

TEST(GraphTest, AddVertexAndEdge) {
  Graph g = MakePath3();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.vertex_label(1), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(GraphTest, EdgeLabelBetween) {
  Graph g = MakePath3();
  EXPECT_EQ(g.EdgeLabelBetween(0, 1), 1);
  EXPECT_EQ(g.EdgeLabelBetween(1, 0), 1);
  EXPECT_EQ(g.EdgeLabelBetween(0, 2), -1);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(2, 0));
}

TEST(GraphTest, VerticesWithinRadius) {
  // Star with center 0 plus a pendant chain 1-4.
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddVertex(0);
  g.AddEdge(0, 1, 0);
  g.AddEdge(0, 2, 0);
  g.AddEdge(0, 3, 0);
  g.AddEdge(1, 4, 0);
  auto r0 = g.VerticesWithinRadius(0, 0);
  EXPECT_EQ(r0.size(), 1u);
  auto r1 = g.VerticesWithinRadius(0, 1);
  EXPECT_EQ(r1.size(), 4u);
  auto r2 = g.VerticesWithinRadius(0, 2);
  EXPECT_EQ(r2.size(), 5u);
  auto from4 = g.VerticesWithinRadius(4, 1);
  EXPECT_EQ(from4.size(), 2u);
}

TEST(GraphTest, InducedSubgraph) {
  Graph g = MakePath3();
  Graph sub = g.InducedSubgraph({1, 2});
  EXPECT_EQ(sub.num_vertices(), 2);
  EXPECT_EQ(sub.num_edges(), 1);
  EXPECT_EQ(sub.vertex_label(0), 1);
  EXPECT_EQ(sub.vertex_label(1), 2);
  EXPECT_EQ(sub.EdgeLabelBetween(0, 1), 2);
}

TEST(GraphTest, InducedSubgraphDropsOutsideEdges) {
  Graph g = MakePath3();
  Graph sub = g.InducedSubgraph({0, 2});
  EXPECT_EQ(sub.num_edges(), 0);
}

TEST(GraphTest, Connectivity) {
  Graph g = MakePath3();
  EXPECT_TRUE(g.IsConnected());
  g.AddVertex(9);
  EXPECT_FALSE(g.IsConnected());
  Graph empty;
  EXPECT_TRUE(empty.IsConnected());
}

TEST(GraphDatabaseTest, LabelCounts) {
  GraphDatabase db;
  db.Add(MakePath3());
  db.Add(MakePath3());
  auto vcounts = db.VertexLabelCounts();
  EXPECT_EQ(vcounts[0], 2);
  EXPECT_EQ(vcounts[1], 2);
  auto ecounts = db.EdgeLabelCounts();
  EXPECT_EQ(ecounts[1], 2);
  EXPECT_EQ(ecounts[2], 2);
  EXPECT_EQ(db.TotalVertices(), 6);
  EXPECT_EQ(db.TotalEdges(), 4);
}

TEST(GraphDatabaseTest, SubsetAndFilterByTag) {
  GraphDatabase db;
  Graph a = MakePath3();
  a.set_tag(1);
  a.set_id(10);
  Graph b = MakePath3();
  b.set_id(20);
  db.Add(a);
  db.Add(b);
  GraphDatabase active = db.FilterByTag(1);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active.graph(0).id(), 10);
  GraphDatabase sub = db.Subset({1});
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_EQ(sub.graph(0).id(), 20);
}

TEST(IoTest, RoundTripNumericLabels) {
  GraphDatabase db;
  Graph g = MakePath3();
  g.set_id(5);
  g.set_tag(1);
  db.Add(g);
  std::ostringstream os;
  WriteGSpanText(db, os);
  auto parsed = ParseGSpanText(os.str(), nullptr, nullptr);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value().graph(0), g);
}

TEST(IoTest, SymbolicLabelsInterned) {
  const char* text =
      "t # 0\n"
      "v 0 C\n"
      "v 1 N\n"
      "e 0 1 single\n";
  LabelDictionary vdict, edict;
  auto parsed = ParseGSpanText(text, &vdict, &edict);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Graph& g = parsed.value().graph(0);
  EXPECT_EQ(vdict.Name(g.vertex_label(0)), "C");
  EXPECT_EQ(vdict.Name(g.vertex_label(1)), "N");
  EXPECT_EQ(edict.Name(g.edge(0).label), "single");
}

TEST(IoTest, RejectsMalformedInput) {
  LabelDictionary vd, ed;
  EXPECT_FALSE(ParseGSpanText("v 0 C\n", &vd, &ed).ok());  // v before t
  EXPECT_FALSE(ParseGSpanText("t # 0\nv 1 C\n", &vd, &ed).ok());  // not dense
  EXPECT_FALSE(
      ParseGSpanText("t # 0\nv 0 C\ne 0 0 1\n", &vd, &ed).ok());  // loop
  EXPECT_FALSE(
      ParseGSpanText("t # 0\nv 0 C\nv 1 C\ne 0 1 1\ne 1 0 1\n", &vd, &ed)
          .ok());  // duplicate edge
  EXPECT_FALSE(
      ParseGSpanText("t # 0\nv 0 C\nv 1 C\ne 0 5 1\n", &vd, &ed).ok());
  EXPECT_FALSE(ParseGSpanText("x 1 2\n", &vd, &ed).ok());
  EXPECT_FALSE(ParseGSpanText("t # 0\nv 0 C\n", nullptr, nullptr).ok());
}

TEST(IoTest, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# header comment\n"
      "\n"
      "t # 3\n"
      "v 0 7\n"
      "\n"
      "# trailing\n";
  auto parsed = ParseGSpanText(text, nullptr, nullptr);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value().graph(0).id(), 3);
}

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary d;
  Label c = d.Intern("C");
  EXPECT_EQ(d.Intern("C"), c);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.Find("C").value(), c);
  EXPECT_FALSE(d.Find("Zz").has_value());
}

}  // namespace
}  // namespace graphsig::graph
