#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/graph_database.h"
#include "graph/io.h"
#include "util/rng.h"

namespace graphsig::graph {
namespace {

Graph MakePath3() {
  // 0(a) -1- 1(b) -2- 2(c)
  Graph g(0);
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 2);
  return g;
}

TEST(GraphTest, AddVertexAndEdge) {
  Graph g = MakePath3();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.vertex_label(1), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(GraphTest, EdgeLabelBetween) {
  Graph g = MakePath3();
  EXPECT_EQ(g.EdgeLabelBetween(0, 1), 1);
  EXPECT_EQ(g.EdgeLabelBetween(1, 0), 1);
  EXPECT_EQ(g.EdgeLabelBetween(0, 2), -1);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(2, 0));
}

TEST(GraphTest, VerticesWithinRadius) {
  // Star with center 0 plus a pendant chain 1-4.
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddVertex(0);
  g.AddEdge(0, 1, 0);
  g.AddEdge(0, 2, 0);
  g.AddEdge(0, 3, 0);
  g.AddEdge(1, 4, 0);
  auto r0 = g.VerticesWithinRadius(0, 0);
  EXPECT_EQ(r0.size(), 1u);
  auto r1 = g.VerticesWithinRadius(0, 1);
  EXPECT_EQ(r1.size(), 4u);
  auto r2 = g.VerticesWithinRadius(0, 2);
  EXPECT_EQ(r2.size(), 5u);
  auto from4 = g.VerticesWithinRadius(4, 1);
  EXPECT_EQ(from4.size(), 2u);
}

TEST(GraphTest, InducedSubgraph) {
  Graph g = MakePath3();
  Graph sub = g.InducedSubgraph({1, 2});
  EXPECT_EQ(sub.num_vertices(), 2);
  EXPECT_EQ(sub.num_edges(), 1);
  EXPECT_EQ(sub.vertex_label(0), 1);
  EXPECT_EQ(sub.vertex_label(1), 2);
  EXPECT_EQ(sub.EdgeLabelBetween(0, 1), 2);
}

TEST(GraphTest, InducedSubgraphDropsOutsideEdges) {
  Graph g = MakePath3();
  Graph sub = g.InducedSubgraph({0, 2});
  EXPECT_EQ(sub.num_edges(), 0);
}

TEST(GraphTest, Connectivity) {
  Graph g = MakePath3();
  EXPECT_TRUE(g.IsConnected());
  g.AddVertex(9);
  EXPECT_FALSE(g.IsConnected());
  Graph empty;
  EXPECT_TRUE(empty.IsConnected());
}

Graph RandomGraph(uint64_t seed, int n, double edge_prob, int num_vlabels,
                  int num_elabels) {
  util::Rng rng(seed);
  Graph g;
  for (int i = 0; i < n; ++i) {
    g.AddVertex(static_cast<Label>(rng.NextBounded(num_vlabels)));
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.NextBernoulli(edge_prob)) {
        g.AddEdge(u, v, static_cast<Label>(rng.NextBounded(num_elabels)));
      }
    }
  }
  return g;
}

TEST(GraphTest, CsrRoundTripPreservesAdjacencyOrder) {
  // The CSR flattening must reproduce the adjacency lists verbatim —
  // including neighbor ORDER, which downstream FP accumulation relies on.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Graph g = RandomGraph(900 + seed, 12, 0.3, 4, 3);
    CsrGraph csr(g);
    ASSERT_EQ(csr.num_vertices(), g.num_vertices());
    ASSERT_EQ(csr.num_edges(), g.num_edges());
    EXPECT_EQ(csr.vertex_labels(), g.vertex_labels());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(csr.vertex_label(v), g.vertex_label(v));
      EXPECT_EQ(csr.degree(v), g.degree(v));
      auto span = csr.neighbors(v);
      const auto& vec = g.neighbors(v);
      ASSERT_EQ(span.size(), vec.size());
      for (size_t k = 0; k < vec.size(); ++k) {
        EXPECT_EQ(span[k].to, vec[k].to);
        EXPECT_EQ(span[k].label, vec[k].label);
        EXPECT_EQ(span[k].edge_index, vec[k].edge_index);
      }
    }
  }
}

TEST(GraphTest, CsrEdgeLabelBetweenAgrees) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = RandomGraph(950 + seed, 10, 0.25, 3, 3);
    CsrGraph csr(g);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(csr.EdgeLabelBetween(u, v), g.EdgeLabelBetween(u, v))
            << "seed=" << seed << " u=" << u << " v=" << v;
      }
    }
  }
}

TEST(GraphTest, CsrVerticesWithinRadiusAgrees) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = RandomGraph(980 + seed, 14, 0.2, 3, 2);
    CsrGraph csr(g);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (int radius = 0; radius <= 3; ++radius) {
        EXPECT_EQ(csr.VerticesWithinRadius(v, radius),
                  g.VerticesWithinRadius(v, radius))
            << "seed=" << seed << " v=" << v << " r=" << radius;
      }
    }
  }
}

TEST(GraphTest, CsrEmptyAndEdgelessGraphs) {
  Graph empty;
  CsrGraph csr_empty(empty);
  EXPECT_EQ(csr_empty.num_vertices(), 0);
  EXPECT_EQ(csr_empty.num_edges(), 0);

  Graph lone;
  lone.AddVertex(7);
  CsrGraph csr_lone(lone);
  EXPECT_EQ(csr_lone.num_vertices(), 1);
  EXPECT_EQ(csr_lone.degree(0), 0);
  EXPECT_TRUE(csr_lone.neighbors(0).empty());
  EXPECT_EQ(csr_lone.vertex_label(0), 7);
}

TEST(GraphDatabaseTest, LabelCounts) {
  GraphDatabase db;
  db.Add(MakePath3());
  db.Add(MakePath3());
  auto vcounts = db.VertexLabelCounts();
  EXPECT_EQ(vcounts[0], 2);
  EXPECT_EQ(vcounts[1], 2);
  auto ecounts = db.EdgeLabelCounts();
  EXPECT_EQ(ecounts[1], 2);
  EXPECT_EQ(ecounts[2], 2);
  EXPECT_EQ(db.TotalVertices(), 6);
  EXPECT_EQ(db.TotalEdges(), 4);
}

TEST(GraphDatabaseTest, SubsetAndFilterByTag) {
  GraphDatabase db;
  Graph a = MakePath3();
  a.set_tag(1);
  a.set_id(10);
  Graph b = MakePath3();
  b.set_id(20);
  db.Add(a);
  db.Add(b);
  GraphDatabase active = db.FilterByTag(1);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active.graph(0).id(), 10);
  GraphDatabase sub = db.Subset({1});
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_EQ(sub.graph(0).id(), 20);
}

TEST(IoTest, RoundTripNumericLabels) {
  GraphDatabase db;
  Graph g = MakePath3();
  g.set_id(5);
  g.set_tag(1);
  db.Add(g);
  std::ostringstream os;
  WriteGSpanText(db, os);
  auto parsed = ParseGSpanText(os.str(), nullptr, nullptr);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value().graph(0), g);
}

TEST(IoTest, SymbolicLabelsInterned) {
  const char* text =
      "t # 0\n"
      "v 0 C\n"
      "v 1 N\n"
      "e 0 1 single\n";
  LabelDictionary vdict, edict;
  auto parsed = ParseGSpanText(text, &vdict, &edict);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Graph& g = parsed.value().graph(0);
  EXPECT_EQ(vdict.Name(g.vertex_label(0)), "C");
  EXPECT_EQ(vdict.Name(g.vertex_label(1)), "N");
  EXPECT_EQ(edict.Name(g.edge(0).label), "single");
}

TEST(IoTest, RejectsMalformedInput) {
  LabelDictionary vd, ed;
  EXPECT_FALSE(ParseGSpanText("v 0 C\n", &vd, &ed).ok());  // v before t
  EXPECT_FALSE(ParseGSpanText("t # 0\nv 1 C\n", &vd, &ed).ok());  // not dense
  EXPECT_FALSE(
      ParseGSpanText("t # 0\nv 0 C\ne 0 0 1\n", &vd, &ed).ok());  // loop
  EXPECT_FALSE(
      ParseGSpanText("t # 0\nv 0 C\nv 1 C\ne 0 1 1\ne 1 0 1\n", &vd, &ed)
          .ok());  // duplicate edge
  EXPECT_FALSE(
      ParseGSpanText("t # 0\nv 0 C\nv 1 C\ne 0 5 1\n", &vd, &ed).ok());
  EXPECT_FALSE(ParseGSpanText("x 1 2\n", &vd, &ed).ok());
  EXPECT_FALSE(ParseGSpanText("t # 0\nv 0 C\n", nullptr, nullptr).ok());
}

TEST(IoTest, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# header comment\n"
      "\n"
      "t # 3\n"
      "v 0 7\n"
      "\n"
      "# trailing\n";
  auto parsed = ParseGSpanText(text, nullptr, nullptr);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value().graph(0).id(), 3);
}

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary d;
  Label c = d.Intern("C");
  EXPECT_EQ(d.Intern("C"), c);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.Find("C").value(), c);
  EXPECT_FALSE(d.Find("Zz").has_value());
}

}  // namespace
}  // namespace graphsig::graph
